/**
 * @file
 * Command-line option parser shared by the igcn CLI and its tests.
 */

#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace igcn::cli {

/**
 * Minimal --key option parser.
 *
 * Grammar: every option is `--key value`, `--key=value`, or a bare
 * `--key` (a valueless presence flag such as --parallel). A token
 * that is neither an option nor consumed as a value is a parse error,
 * collected in errors() rather than thrown so the caller can print
 * all of them alongside usage. Asking a valueless flag for a value
 * (get / getInt / getDouble) throws, so a trailing `--nodes` or a
 * mid-line `--nodes --out f` fails loudly instead of silently running
 * with a bogus value.
 */
class Args
{
  public:
    /** Parse argv[first..argc); first defaults past "igcn <cmd>". */
    Args(int argc, char **argv, int first = 2)
    {
        for (int i = first; i < argc; ++i) {
            const std::string tok = argv[i];
            if (tok.rfind("--", 0) != 0) {
                parseErrors.push_back("unexpected argument '" + tok +
                                      "' (options are --key value)");
                continue;
            }
            std::string key = tok.substr(2);
            if (key.empty()) {
                parseErrors.push_back("empty option name '--'");
                continue;
            }
            const size_t eq = key.find('=');
            if (eq != std::string::npos) {
                // --key=value; --key= is an explicit empty value,
                // distinct from a bare presence flag.
                values[key.substr(0, eq)] = key.substr(eq + 1);
            } else if (i + 1 < argc &&
                       std::string(argv[i + 1]).rfind("--", 0) != 0) {
                values[key] = argv[++i];
            } else {
                values[key] = std::nullopt; // presence-only flag
            }
        }
    }

    /** Tokens that did not parse, in input order (empty = clean). */
    const std::vector<std::string> &errors() const
    {
        return parseErrors;
    }

    bool has(const std::string &key) const
    {
        return values.count(key) != 0;
    }

    /**
     * Value of --key; fallback when absent.
     * @throws std::runtime_error if --key was given without a value.
     */
    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = values.find(key);
        if (it == values.end())
            return fallback;
        if (!it->second)
            throw std::runtime_error("--" + key + " requires a value");
        return *it->second;
    }

    /**
     * Integer value of --key; fallback when absent.
     * @throws std::runtime_error on a valueless or non-integer value.
     */
    long
    getInt(const std::string &key, long fallback) const
    {
        auto it = values.find(key);
        if (it == values.end())
            return fallback;
        if (!it->second)
            throw std::runtime_error("--" + key + " requires a value");
        try {
            size_t pos = 0;
            const long v = std::stol(*it->second, &pos);
            if (pos != it->second->size())
                throw std::invalid_argument("trailing characters");
            return v;
        } catch (const std::exception &) {
            throw std::runtime_error("--" + key +
                                     " expects an integer, got '" +
                                     *it->second + "'");
        }
    }

    /**
     * Double value of --key; fallback when absent.
     * @throws std::runtime_error on a valueless or non-numeric value.
     */
    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = values.find(key);
        if (it == values.end())
            return fallback;
        if (!it->second)
            throw std::runtime_error("--" + key + " requires a value");
        try {
            size_t pos = 0;
            const double v = std::stod(*it->second, &pos);
            if (pos != it->second->size())
                throw std::invalid_argument("trailing characters");
            return v;
        } catch (const std::exception &) {
            throw std::runtime_error("--" + key +
                                     " expects a number, got '" +
                                     *it->second + "'");
        }
    }

  private:
    /** nullopt = flag given without a value (presence only). */
    std::map<std::string, std::optional<std::string>> values;
    std::vector<std::string> parseErrors;
};

} // namespace igcn::cli
