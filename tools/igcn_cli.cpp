/**
 * @file
 * igcn — command-line front end to the library.
 *
 * Subcommands:
 *   generate   synthesize a graph (hub-island / er / rmat) to a file
 *   info       print statistics of a graph file
 *   islandize  run runtime islandization, print stats, render plots
 *   reorder    apply a lightweight reordering, write the new graph
 *   simulate   run a platform timing model on a dataset or graph file
 *   serve      replay a synthetic request trace through the online
 *              inference server (deterministic virtual clock)
 *
 * Examples:
 *   igcn generate --type hubisland --nodes 5000 --out g.txt
 *   igcn islandize --in g.txt --render order.pgm
 *   igcn simulate --dataset cora --model gcn --net algo
 *   igcn simulate --in g.txt --platform awb
 *   igcn serve --trace --requests 10000 --updates 1000 --batch-cap 32
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "accel/awbgcn_model.hpp"
#include "accel/hygcn_model.hpp"
#include "accel/igcn_model.hpp"
#include "accel/platform_models.hpp"
#include "core/permute.hpp"
#include "gcn/reference.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "obs/export.hpp"
#include "obs/runtime.hpp"
#include "reorder/reorder.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

#include "args.hpp"
#include "cli_io.hpp"

using namespace igcn;
using igcn::cli::Args;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: igcn <command> [options]\n"
        "  generate  --type hubisland|er|rmat --nodes N [--seed S]\n"
        "            [--avg-degree D] --out FILE\n"
        "  info      --in FILE\n"
        "  islandize --in FILE [--cmax N] [--decay D] [--th0 T]\n"
        "            [--parallel] [--render FILE.pgm]\n"
        "  reorder   --in FILE --algo rabbit|dbg|hubsort|hubcluster|\n"
        "            dbg-hubsort|dbg-hubcluster --out FILE\n"
        "  simulate  (--dataset cora|citeseer|pubmed|nell|reddit|\n"
        "            nell-small [--scale F] | --in FILE)\n"
        "            [--model gcn|gs|gin] [--net algo|hy]\n"
        "            [--platform igcn|awb|hygcn|cpu|gpu|sigma]\n"
        "  serve     --trace [--dataset NAME [--scale F] |\n"
        "            --in FILE | --nodes N] [--requests R]\n"
        "            [--updates U] [--remove-frac F] [--batch-cap B]\n"
        "            [--max-wait-us W] [--features F] [--hidden H]\n"
        "            [--classes C] [--cmax N] [--seed S]\n"
        "            [--feature-density D] [--sparse-x]\n"
        "            [--pattern poisson|burst|diurnal]\n"
        "            [--zipf-alpha A] [--tenants T]\n"
        "            [--agg-cache]         epoch-keyed island-\n"
        "              aggregation cache (bit-identical results;\n"
        "              cache hits skip the layer-1 edge sweep)\n"
        "            [--agg-cache-mb N]    cache byte budget (LRU\n"
        "              eviction; default 64)\n"
        "            SLO mode (enables admission control + EDF):\n"
        "            [--qps-budget Q] [--queue-cap N]\n"
        "            [--staleness K] [--deadline-us D]\n"
        "            [--strict-frac F]\n"
        "            Observability (DESIGN.md section 8):\n"
        "            [--trace-out FILE]    Perfetto/Chrome trace JSON\n"
        "              of the replay's span stream; byte-identical at\n"
        "              any IGCN_THREADS (load in ui.perfetto.dev)\n"
        "            [--metrics-out FILE]  Prometheus text snapshot of\n"
        "              the run's serve metrics + per-kernel runtime\n"
        "              timing\n");
    return 2;
}

int
cmdGenerate(const Args &args)
{
    const std::string type = args.get("type", "hubisland");
    const auto nodes =
        static_cast<NodeId>(args.getInt("nodes", 1000));
    const auto seed = static_cast<uint64_t>(args.getInt("seed", 42));
    const std::string out = args.get("out");
    if (out.empty())
        throw std::runtime_error("--out FILE is required");

    CsrGraph g;
    if (type == "hubisland") {
        HubIslandParams params;
        params.numNodes = nodes;
        params.seed = seed;
        g = hubAndIslandGraph(params).graph;
    } else if (type == "er") {
        g = erdosRenyi(nodes, args.getDouble("avg-degree", 8.0), seed);
    } else if (type == "rmat") {
        g = rmat(nodes,
                 static_cast<EdgeId>(
                     nodes * args.getDouble("avg-degree", 8.0)),
                 0.57, 0.19, 0.19, seed);
    } else {
        throw std::runtime_error("unknown --type " + type);
    }
    saveEdgeList(g, out);
    std::printf("wrote %s: %u nodes, %llu directed edges\n",
                out.c_str(), g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()));
    return 0;
}

int
cmdInfo(const Args &args)
{
    CsrGraph g = loadGraphArg(args);
    auto [comp, num_comps] = connectedComponents(g);
    std::printf("nodes %u\nedges %llu\navg degree %.2f\n"
                "max degree %u\nsymmetric %s\ncomponents %u\n",
                g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()),
                g.avgDegree(), g.maxDegree(),
                g.isSymmetric() ? "yes" : "no", num_comps);
    return 0;
}

int
cmdIslandize(const Args &args)
{
    CsrGraph g = loadGraphArg(args);
    LocatorConfig cfg;
    cfg.maxIslandSize =
        static_cast<NodeId>(args.getInt("cmax", cfg.maxIslandSize));
    cfg.decay = args.getDouble("decay", cfg.decay);
    cfg.initialThreshold =
        static_cast<NodeId>(args.getInt("th0", 0));
    cfg.parallelEngines = args.has("parallel");

    IslandizationResult isl = islandize(g, cfg);
    PruningReport pruning = countPruning(g, isl, {});
    ClusterCoverage cov = classifyCoverage(g, isl);

    std::printf("rounds %d\nhubs %u\nislands %zu\n"
                "inter-hub edges %zu\n",
                isl.numRounds, isl.numHubs(), isl.islands.size(),
                isl.interHubEdges.size());
    std::printf("coverage: L-shape %.2f%%, island blocks %.2f%%, "
                "outliers %llu\n",
                100.0 * cov.inHubLShape / std::max<EdgeId>(1, cov.total),
                100.0 * cov.inIslandBlock /
                    std::max<EdgeId>(1, cov.total),
                static_cast<unsigned long long>(cov.outliers));
    std::printf("aggregation pruning %.1f%% (baseline %llu ops -> "
                "%llu)\n",
                100.0 * pruning.aggPruningRate(),
                static_cast<unsigned long long>(
                    pruning.baselineAggOps()),
                static_cast<unsigned long long>(
                    pruning.optimizedAggOps()));

    const std::string render = args.get("render");
    if (!render.empty()) {
        constexpr int kGrid = 64;
        auto grid = renderDensityGrid(g, islandizationOrder(isl),
                                      kGrid);
        savePgm(grid, kGrid, kGrid, render);
        std::printf("wrote density plot %s\n", render.c_str());
    }
    return 0;
}

int
cmdReorder(const Args &args)
{
    CsrGraph g = loadGraphArg(args);
    const std::string name = args.get("algo", "rabbit");
    const std::string out = args.get("out");
    if (out.empty())
        throw std::runtime_error("--out FILE is required");

    for (ReorderAlgo algo : kAllReorderAlgos) {
        if (reorderAlgoName(algo) == name) {
            ReorderResult rr = reorderGraph(g, algo);
            saveEdgeList(g.permuted(rr.perm), out);
            std::printf("%s reordering took %.1f us; wrote %s\n",
                        name.c_str(), rr.reorderTimeUs, out.c_str());
            return 0;
        }
    }
    throw std::runtime_error("unknown --algo " + name);
}

Dataset
parseDatasetName(const std::string &name)
{
    if (name == "cora") return Dataset::Cora;
    if (name == "citeseer") return Dataset::Citeseer;
    if (name == "pubmed") return Dataset::Pubmed;
    if (name == "nell") return Dataset::Nell;
    if (name == "reddit") return Dataset::Reddit;
    if (name == "nell-small") return Dataset::NellSmall;
    throw std::runtime_error("unknown --dataset " + name);
}

int
cmdSimulate(const Args &args)
{
    DatasetGraph data;
    if (args.has("dataset")) {
        Dataset d = parseDatasetName(args.get("dataset"));
        data = buildDataset(d, args.getDouble("scale", 1.0));
    } else {
        CsrGraph g = loadGraphArg(args);
        data.info = {"custom", "CU", g.numNodes(), g.numEdges(),
                     static_cast<int>(args.getInt("features", 128)),
                     static_cast<int>(args.getInt("classes", 8)),
                     args.getDouble("density", 0.1), 1.0};
        data.featureNnz = static_cast<EdgeId>(
            static_cast<double>(g.numNodes()) * data.info.numFeatures *
            data.info.featureDensity);
        data.graph = std::move(g);
    }

    const std::string model_name = args.get("model", "gcn");
    Model m = model_name == "gs" ? Model::GraphSage
            : model_name == "gin" ? Model::GIN
            : Model::GCN;
    NetConfig net =
        args.get("net", "algo") == "hy" ? NetConfig::Hy
                                        : NetConfig::Algo;
    ModelConfig mc = modelConfig(m, net, data.info);

    const std::string platform = args.get("platform", "igcn");
    HwConfig hw;
    RunResult r;
    if (platform == "igcn") r = simulateIgcn(data, mc, hw);
    else if (platform == "awb") r = simulateAwbGcn(data, mc, hw);
    else if (platform == "hygcn") r = simulateHyGcn(data, mc);
    else if (platform == "cpu")
        r = simulateCpu(data, mc, Framework::PyG);
    else if (platform == "gpu")
        r = simulateGpu(data, mc, Framework::PyG);
    else if (platform == "sigma") r = simulateSigma(data, mc);
    else throw std::runtime_error("unknown --platform " + platform);

    std::printf("platform %s\ndataset %s\nmodel %s\n"
                "latency %.3f us\nenergy %.3f uJ\nEE %.3e Graph/kJ\n"
                "off-chip bytes %.3e\ncompute ops %.3e\n",
                r.platform.c_str(), r.dataset.c_str(),
                r.model.c_str(), r.latencyUs, r.energyUJ,
                r.graphsPerKJ, r.offchipBytes, r.computeOps);
    if (!r.stats.all().empty())
        std::printf("--- detail ---\n%s", r.stats.toString().c_str());
    return 0;
}

int
cmdServe(const Args &args)
{
    if (!args.has("trace"))
        throw std::runtime_error(
            "serve currently requires --trace (synthetic replay)");

    CsrGraph g;
    int default_features = 32;
    int default_classes = 8;
    double default_density = 1.0;
    if (args.has("dataset")) {
        // e.g. --dataset nell-small serves the 0.01-density NELL
        // surrogate with its published feature/class dimensions.
        DatasetGraph data = buildDataset(
            parseDatasetName(args.get("dataset")),
            args.getDouble("scale", 1.0));
        g = std::move(data.graph);
        default_features = data.info.numFeatures;
        default_classes = data.info.numClasses;
        default_density = data.info.featureDensity;
    } else if (args.has("in")) {
        g = loadGraphArg(args);
    } else {
        HubIslandParams params;
        params.numNodes =
            static_cast<NodeId>(args.getInt("nodes", 4000));
        params.seed = static_cast<uint64_t>(args.getInt("seed", 42));
        g = hubAndIslandGraph(params).graph;
    }

    const auto num_features =
        static_cast<int>(args.getInt("features", default_features));
    const auto hidden = static_cast<int>(args.getInt("hidden", 16));
    const auto classes =
        static_cast<int>(args.getInt("classes", default_classes));
    const auto seed = static_cast<uint64_t>(args.getInt("seed", 42));

    // --feature-density below the makeFeatures threshold (or an
    // explicit --sparse-x) serves CSR features end to end: the engine
    // gathers sparse rows per micro-batch instead of densifying.
    const double feature_density =
        args.getDouble("feature-density", default_density);
    // A named dataset at NELL-like density always serves CSR: the
    // surrogate exists to exercise the sparse path, and NellSmall's
    // cell count sits below makeFeatures' auto-sparse threshold.
    const bool force_sparse =
        args.has("sparse-x") ||
        (args.has("dataset") && feature_density < 0.05);
    Rng rng(seed);
    Features x = makeFeatures(g.numNodes(), num_features,
                              feature_density, rng, force_sparse);
    ModelConfig mc;
    mc.name = "serve-gcn";
    mc.layers = {{num_features, hidden}, {hidden, classes}};
    std::vector<DenseMatrix> weights = makeWeights(mc, rng);

    serve::TraceConfig tc;
    tc.numInference =
        static_cast<uint64_t>(args.getInt("requests", 10000));
    tc.numUpdates =
        static_cast<uint64_t>(args.getInt("updates", 1000));
    tc.removeFraction = args.getDouble("remove-frac", 0.2);
    tc.seed = seed;
    const std::string pattern = args.get("pattern", "poisson");
    if (pattern == "burst")
        tc.pattern = serve::ArrivalPattern::Burst;
    else if (pattern == "diurnal")
        tc.pattern = serve::ArrivalPattern::Diurnal;
    else if (pattern != "poisson")
        throw std::runtime_error("unknown --pattern " + pattern);
    tc.zipfAlpha = args.getDouble("zipf-alpha", 0.0);
    tc.numTenants =
        static_cast<uint32_t>(args.getInt("tenants", 1));
    tc.deadlineUs =
        static_cast<uint64_t>(args.getInt("deadline-us", 0));
    tc.strictFraction = args.getDouble("strict-frac", 0.0);
    std::vector<serve::Request> trace =
        serve::makeSyntheticTrace(g, tc);

    serve::ServerConfig sc;
    sc.scheduler.maxBatch =
        static_cast<uint32_t>(args.getInt("batch-cap", 32));
    sc.scheduler.maxWaitUs =
        static_cast<uint64_t>(args.getInt("max-wait-us", 200));
    sc.locator.maxIslandSize = static_cast<NodeId>(
        args.getInt("cmax", sc.locator.maxIslandSize));
    sc.aggCache.enabled =
        args.has("agg-cache") || args.has("agg-cache-mb");
    sc.aggCache.maxBytes = static_cast<size_t>(
                               args.getInt("agg-cache-mb", 64))
        << 20;
    // Any SLO knob switches the replay from FCFS to the admission-
    // controlled EDF path.
    if (args.has("qps-budget") || args.has("queue-cap") ||
        args.has("staleness") || args.has("deadline-us")) {
        sc.slo.enabled = true;
        sc.slo.qpsBudget = args.getDouble("qps-budget", 0.0);
        sc.slo.queueCap =
            static_cast<uint32_t>(args.getInt("queue-cap", 1024));
        sc.slo.stalenessBound =
            static_cast<uint32_t>(args.getInt("staleness", 0));
    }

    const std::string trace_out = args.get("trace-out");
    const std::string metrics_out = args.get("metrics-out");
    sc.obs.traceEnabled = !trace_out.empty();
    if (!metrics_out.empty())
        obs::enableRuntimeProfiling();

    std::printf("serve: %u nodes, %llu edges; trace %zu requests "
                "(%llu inference + %llu updates, %.0f%% deletions), "
                "batch cap %u, max wait %llu us\n",
                g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()),
                trace.size(),
                static_cast<unsigned long long>(tc.numInference),
                static_cast<unsigned long long>(tc.numUpdates),
                tc.removeFraction * 100.0,
                sc.scheduler.maxBatch,
                static_cast<unsigned long long>(
                    sc.scheduler.maxWaitUs));
    std::printf("features: %s, %zu x %zu, %llu nnz, %.1f KiB\n",
                x.sparse ? "csr" : "dense", x.rows(), x.cols(),
                static_cast<unsigned long long>(x.nnz()),
                static_cast<double>(x.storageBytes()) / 1024.0);

    serve::Server server(std::move(g), std::move(x),
                         std::move(weights), sc);
    const auto t0 = std::chrono::steady_clock::now();
    serve::ReplayReport rep = server.runTrace(std::move(trace));
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::printf("replayed %zu inference results, %zu update "
                "applications in %.2f s wall (%.0f req/s wall)\n",
                rep.inference.size(), rep.updates.size(), wall_s,
                static_cast<double>(rep.inference.size()) / wall_s);
    std::printf("final epoch %llu\n--- stats ---\n%s",
                static_cast<unsigned long long>(server.currentEpoch()),
                server.stats().summary().c_str());
    if (sc.slo.enabled) {
        std::printf("--- per-tenant admission ---\n%s",
                    server.stats().rejectionTable().c_str());
        std::printf("shed %zu requests (%.1f%% shed rate)\n",
                    rep.rejections.size(),
                    100.0 * server.stats().shedRate());
    }
    if (!trace_out.empty()) {
        if (!obs::writePerfettoTrace(server.traceRecorder(),
                                     trace_out))
            throw std::runtime_error("cannot write --trace-out " +
                                     trace_out);
        std::printf("wrote trace %s (%zu events)\n",
                    trace_out.c_str(),
                    server.traceRecorder().size());
    }
    if (!metrics_out.empty()) {
        obs::disableRuntimeProfiling();
        const std::string text = obs::prometheusText(
            {&server.stats().registry(), &obs::runtimeRegistry()});
        if (!obs::writeTextFile(text, metrics_out))
            throw std::runtime_error("cannot write --metrics-out " +
                                     metrics_out);
        std::printf("wrote metrics %s\n", metrics_out.c_str());
        const std::string table =
            obs::kernelTimingReport(obs::runtimeRegistry());
        if (!table.empty())
            std::printf("--- per-kernel timing ---\n%s",
                        table.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    Args args(argc, argv);
    if (!args.errors().empty()) {
        for (const std::string &e : args.errors())
            std::fprintf(stderr, "igcn %s: %s\n", cmd.c_str(),
                         e.c_str());
        return usage();
    }
    try {
        if (cmd == "generate") return cmdGenerate(args);
        if (cmd == "info") return cmdInfo(args);
        if (cmd == "islandize") return cmdIslandize(args);
        if (cmd == "reorder") return cmdReorder(args);
        if (cmd == "simulate") return cmdSimulate(args);
        if (cmd == "serve") return cmdServe(args);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "igcn %s: %s\n", cmd.c_str(), e.what());
        return 1;
    }
    return usage();
}
