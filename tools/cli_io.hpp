/**
 * @file
 * Graph-loading helpers shared by the igcn CLI and its tests.
 *
 * Every subcommand that takes `--in FILE` routes through
 * loadGraphArg(), so a missing flag, a valueless flag, an unopenable
 * path, or a malformed file all surface as one std::runtime_error
 * with a precise message (path, reason, and line number where
 * applicable) that main() prints before exiting nonzero — instead of
 * the silent truncation the raw stream-extraction loader used to
 * allow.
 */

#pragma once

#include <stdexcept>
#include <string>

#include "graph/io.hpp"

#include "args.hpp"

namespace igcn::cli {

/** Load the graph named by --in, with CLI-friendly diagnostics. */
inline CsrGraph
loadGraphArg(const Args &args)
{
    const std::string path = args.get("in");
    if (path.empty())
        throw std::runtime_error("--in FILE is required");
    return loadEdgeList(path);
}

} // namespace igcn::cli
