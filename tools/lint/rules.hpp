/**
 * @file
 * The determinism-contract linter (DESIGN.md section 7): a fast,
 * dependency-free scanner enforcing the repo-specific invariants the
 * compiler cannot see. Each rule is named, individually suppressible,
 * and exercised positively and negatively by tests/lint_fixtures/.
 *
 * Header-only on purpose: tools/lint/igcn_lint.cpp is the CLI driver
 * and tests/test_lint.cpp includes this directly, so the rule logic
 * has exactly one definition and the fixture tests run it in-process
 * with exact-message assertions.
 *
 * ## Rules
 *
 *  - `no-rand`            rand()/srand()/std::random_device in a
 *                         deterministic scope. All randomness must
 *                         come from the seeded igcn::Rng.
 *  - `no-wallclock`       std::chrono::system_clock in a
 *                         deterministic scope. Replay code computes
 *                         time from the virtual clock; wall-clock
 *                         reads make traces non-reproducible.
 *  - `no-unordered-iteration`
 *                         iterating a std::unordered_map/set in a
 *                         file tagged `// igcn-lint: deterministic`.
 *                         Hash-iteration order is
 *                         implementation-defined; deterministic
 *                         paths iterate ordered containers.
 *  - `csc-invalidate`     a file mutates a CsrMatrix's
 *                         rowPtr/colIdx/values through an object
 *                         (`m.values = `, `m.colIdx.push_back`, ...)
 *                         without calling invalidateCsc() on that
 *                         same object anywhere in the file: the
 *                         cached CSC adjunct would silently serve
 *                         stale non-zeros. Objects value-declared in
 *                         the same file (`CsrGraph g;` — fresh, no
 *                         cache to stale) are exempt; mutation
 *                         through a reference is not, and carries an
 *                         explicit allow() when it is provably fresh.
 *  - `no-mixed-accumulation`
 *                         a `double` accumulator declared inside a
 *                         loop body in a deterministic scope. Kernel
 *                         reductions accumulate in float; widening
 *                         some terms re-rounds differently and
 *                         breaks bit-identity across refactors.
 *  - `no-thread-outside-runtime`
 *                         std::thread outside src/runtime/. All
 *                         parallelism goes through the pool so
 *                         IGCN_THREADS governs every kernel;
 *                         ad-hoc threads escape the determinism
 *                         contract's reduction discipline.
 *  - `no-fast-math`       -ffast-math-style pragmas (`GCC optimize`,
 *                         `clang fp contract(fast)`, `FP_CONTRACT
 *                         ON`, `float_control` relaxations): they
 *                         re-associate float arithmetic and void the
 *                         bit-identity claims.
 *  - `nodiscard-factory`  a factory/builder declaration (static
 *                         `from*`, builder `with*`, `submit*`
 *                         returning ServeResult) in a header without
 *                         [[nodiscard]]: discarding the result of an
 *                         immutable builder is always a bug.
 *  - `clock-via-obs`      raw std::chrono::steady_clock::now() under
 *                         src/serve/. Real-time stamps must go
 *                         through the obs::RealClock seam
 *                         (obs/clock.hpp) so every serve-side clock
 *                         read shares one origin and traces/metrics
 *                         stay mutually consistent. Purely
 *                         path-scoped; the seam itself lives in
 *                         src/obs/ and is out of scope by
 *                         construction.
 *
 * ## Scopes
 *
 * A file is in **deterministic scope** when its repo-relative path
 * starts with src/spmm/, src/graph/, src/core/, src/gcn/ or
 * src/serve/, or when it carries the tag comment
 * `// igcn-lint: deterministic` anywhere in the file. The tag also
 * lets fixture files (and future out-of-tree code) opt into the
 * path-scoped rules.
 *
 * ## Suppression
 *
 * `// igcn-lint: allow(<rule>)` on the offending line or the line
 * directly above suppresses that one rule for that one line.
 * Suppressions are deliberate, reviewable exceptions — e.g. the
 * server's scheduler thread carries
 * `// igcn-lint: allow(no-thread-outside-runtime)`.
 */

#pragma once

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <regex>
#include <string>
#include <string_view>
#include <vector>

namespace igcn::lint {

/** One finding: file, 1-based line, rule name, message. */
struct Diagnostic
{
    std::string file;
    size_t line = 0;
    std::string rule;
    std::string message;

    /** The canonical `path:line: [rule] message` rendering. */
    std::string
    str() const
    {
        return file + ":" + std::to_string(line) + ": [" + rule +
               "] " + message;
    }
};

/** Every rule name, in catalogue order (the CI summary prints all). */
inline const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> rules = {
        "no-rand",
        "no-wallclock",
        "no-unordered-iteration",
        "csc-invalidate",
        "no-mixed-accumulation",
        "no-thread-outside-runtime",
        "no-fast-math",
        "nodiscard-factory",
        "clock-via-obs",
    };
    return rules;
}

namespace detail {

/** Split into lines; the trailing newline does not add a line. */
inline std::vector<std::string>
splitLines(std::string_view text)
{
    std::vector<std::string> lines;
    size_t start = 0;
    while (start <= text.size()) {
        const size_t nl = text.find('\n', start);
        if (nl == std::string_view::npos) {
            if (start < text.size())
                lines.emplace_back(text.substr(start));
            break;
        }
        lines.emplace_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

/**
 * The line with string/char literals and comments blanked (replaced
 * by spaces, preserving columns), given whether the line starts
 * inside a block comment; updates that flag. Keeps rule regexes from
 * matching inside literals, comments, and doc text.
 */
inline std::string
stripLiterals(const std::string &line, bool &in_block_comment)
{
    std::string out(line.size(), ' ');
    bool in_str = false, in_chr = false;
    for (size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        const char n = i + 1 < line.size() ? line[i + 1] : '\0';
        if (in_block_comment) {
            if (c == '*' && n == '/') {
                in_block_comment = false;
                ++i;
            }
            continue;
        }
        if (in_str) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_str = false;
            continue;
        }
        if (in_chr) {
            if (c == '\\')
                ++i;
            else if (c == '\'')
                in_chr = false;
            continue;
        }
        if (c == '/' && n == '/')
            break; // rest is a line comment
        if (c == '/' && n == '*') {
            in_block_comment = true;
            ++i;
            continue;
        }
        if (c == '"') {
            in_str = true;
            continue;
        }
        if (c == '\'') {
            // Digit separators (1'000'000) are not char literals.
            const bool digit_sep =
                i > 0 && std::isalnum(static_cast<unsigned char>(
                             line[i - 1])) &&
                i + 1 < line.size() &&
                std::isalnum(static_cast<unsigned char>(line[i + 1]));
            if (!digit_sep) {
                in_chr = true;
                continue;
            }
        }
        out[i] = c;
    }
    return out;
}

/** True when `line` (raw) carries `igcn-lint: allow(rule)`. */
inline bool
hasAllow(const std::string &line, const std::string &rule)
{
    const std::string needle = "igcn-lint: allow(" + rule + ")";
    return line.find(needle) != std::string::npos;
}

/** Rule-level suppression: the line itself or the one above. */
inline bool
suppressed(const std::vector<std::string> &raw, size_t idx,
           const std::string &rule)
{
    if (hasAllow(raw[idx], rule))
        return true;
    return idx > 0 && hasAllow(raw[idx - 1], rule);
}

inline bool
pathStartsWith(const std::string &path, std::string_view prefix)
{
    return path.rfind(prefix, 0) == 0;
}

} // namespace detail

/**
 * Lint one file's text. `rel_path` is the repo-relative path with
 * forward slashes (scope decisions key off it); diagnostics come out
 * in line order, rule-catalogue order within a line.
 */
inline std::vector<Diagnostic>
lintText(const std::string &rel_path, const std::string &text)
{
    using namespace detail;

    std::vector<Diagnostic> diags;
    const std::vector<std::string> raw = splitLines(text);

    // Code view: literals/comments blanked, for pattern matching.
    std::vector<std::string> code;
    code.reserve(raw.size());
    bool in_block = false;
    for (const std::string &line : raw)
        code.push_back(stripLiterals(line, in_block));

    // The tag must be a whole comment line, so source that merely
    // *mentions* the tag (this linter, its tests) is not tagged.
    bool tagged_deterministic = false;
    for (const std::string &line : raw) {
        const size_t first = line.find_first_not_of(" \t");
        if (first != std::string::npos &&
            line.compare(first, std::string::npos,
                         "// igcn-lint: deterministic") == 0) {
            tagged_deterministic = true;
            break;
        }
    }
    const bool deterministic_scope =
        tagged_deterministic ||
        pathStartsWith(rel_path, "src/spmm/") ||
        pathStartsWith(rel_path, "src/graph/") ||
        pathStartsWith(rel_path, "src/core/") ||
        pathStartsWith(rel_path, "src/gcn/") ||
        pathStartsWith(rel_path, "src/serve/");
    const bool in_runtime = pathStartsWith(rel_path, "src/runtime/");
    const bool in_serve = pathStartsWith(rel_path, "src/serve/");
    const bool in_src = pathStartsWith(rel_path, "src/");
    const bool is_header =
        rel_path.size() >= 4 &&
        (rel_path.ends_with(".hpp") || rel_path.ends_with(".h"));

    auto report = [&](size_t idx, const std::string &rule,
                      std::string msg) {
        if (!suppressed(raw, idx, rule))
            diags.push_back(
                {rel_path, idx + 1, rule, std::move(msg)});
    };

    // --- per-line regex rules -------------------------------------
    static const std::regex re_rand(
        R"((^|[^\w])((?:std::)?s?rand)\s*\(|std::random_device)");
    static const std::regex re_wallclock(R"(system_clock)");
    static const std::regex re_thread(R"(std::thread\b)");
    static const std::regex re_fastmath(
        R"(ffast-math|fast_math|#\s*pragma\s+GCC\s+optimize|#\s*pragma\s+clang\s+fp\s+contract\s*\(\s*fast\s*\)|FP_CONTRACT\s+ON|float_control\s*\(\s*precise\s*,\s*off\s*\))");
    static const std::regex re_unordered_decl(
        R"(std::unordered_(?:map|set)\s*<[^;=]*>\s+(\w+))");
    static const std::regex re_factory(
        R"(\b(?:from|with|submit)[A-Z]\w*\s*\()");
    static const std::regex re_mutation(
        R"((\w+)\.(rowPtr|colIdx|values)\s*(?:=[^=]|\.\s*(?:push_back|emplace_back|resize|clear|assign|insert|erase|swap|pop_back)\s*\())");
    static const std::regex re_double_decl(
        R"(^\s*(?:const\s+)?double\s+\w+\s*[={])");
    static const std::regex re_for_loop(R"(\b(?:for|while)\s*\()");
    static const std::regex re_steady_now(
        R"(steady_clock\s*::\s*now\s*\()");

    // Names of variables declared as unordered containers (file-local
    // heuristic; good enough for the flat scanner).
    std::vector<std::string> unordered_names;

    // csc-invalidate bookkeeping: every `obj.member` mutation site,
    // reported at end of file unless `obj.invalidateCsc()` appears
    // somewhere in the same file.
    struct Mutation
    {
        size_t idx;
        std::string object;
        std::string member;
    };
    std::vector<Mutation> pending_mutations;
    std::vector<std::string> invalidated_objects;
    // Objects value-declared in this file (`CsrGraph g;`): freshly
    // constructed, their cache has never been populated, so raw-array
    // writes during factory assembly cannot stale anything.
    std::vector<std::string> fresh_locals;
    static const std::regex re_fresh_decl(
        R"(^\s*(?:igcn::)?Csr\w+\s+(\w+)\s*[;={])");
    int brace_depth = 0;
    int loop_depth_floor = -1; // brace depth where a loop body began

    for (size_t i = 0; i < code.size(); ++i) {
        const std::string &line = code[i];
        std::smatch m;

        if (deterministic_scope) {
            if (std::regex_search(line, re_rand))
                report(i, "no-rand",
                       "non-deterministic randomness in a "
                       "deterministic scope; draw from the seeded "
                       "igcn::Rng instead");
            if (std::regex_search(line, re_wallclock))
                report(i, "no-wallclock",
                       "std::chrono::system_clock in a deterministic "
                       "scope; replay code must use the virtual "
                       "clock (steady_clock is allowed for "
                       "real-time-mode stamps)");
        }

        if (in_serve && std::regex_search(line, re_steady_now))
            report(i, "clock-via-obs",
                   "steady_clock::now() in src/serve/; real-time "
                   "stamps must go through the obs::RealClock seam "
                   "(obs/clock.hpp)");

        if (in_src && !in_runtime &&
            std::regex_search(line, re_thread))
            report(i, "no-thread-outside-runtime",
                   "std::thread outside src/runtime/; all "
                   "parallelism must go through the IGCN_THREADS "
                   "thread pool");

        if (std::regex_search(line, re_fastmath))
            report(i, "no-fast-math",
                   "fast-math-style pragma or flag; float "
                   "re-association voids the bit-identity contract");

        if (tagged_deterministic) {
            auto begin = std::sregex_iterator(line.begin(), line.end(),
                                              re_unordered_decl);
            for (auto it = begin; it != std::sregex_iterator(); ++it)
                unordered_names.push_back((*it)[1].str());
            for (const std::string &name : unordered_names) {
                const bool range_for =
                    std::regex_search(
                        line, std::regex(R"(\bfor\s*\([^)]*:\s*)" +
                                         name + R"(\s*\))")) ||
                    std::regex_search(
                        line,
                        std::regex("\\b" + name +
                                   R"(\s*\.\s*c?begin\s*\()"));
                if (range_for) {
                    report(i, "no-unordered-iteration",
                           "iteration over unordered container '" +
                               name +
                               "' in a deterministic file; "
                               "hash-iteration order is "
                               "implementation-defined");
                    break;
                }
            }
        }

        if (is_header && std::regex_search(line, m, re_factory)) {
            const bool marked =
                raw[i].find("[[nodiscard]]") != std::string::npos ||
                (i > 0 &&
                 raw[i - 1].find("[[nodiscard]]") !=
                     std::string::npos);
            // Declarations only: skip call sites (`x.withFoo(...)`,
            // `= fromBar(...)`) by requiring the match to look like
            // a declaration — a type name earlier on the line and no
            // object/scope qualifier directly before the name.
            const size_t pos = static_cast<size_t>(m.position(0));
            const char before = pos > 0 ? line[pos - 1] : ' ';
            const bool qualified = before == '.' || before == ':' ||
                                   before == '>' || before == '(';
            std::string head = line.substr(0, pos);
            const bool has_return_type = std::regex_search(
                head, std::regex(R"(\b[A-Za-z_]\w*\s+$)"));
            const bool is_assignment =
                head.find('=') != std::string::npos;
            if (!marked && !qualified && has_return_type &&
                !is_assignment)
                report(i, "nodiscard-factory",
                       "factory/builder declaration without "
                       "[[nodiscard]]; discarding a builder result "
                       "is always a bug");
        }

        // --- stateful rules (function / loop tracking) ------------
        if (deterministic_scope && loop_depth_floor >= 0 &&
            brace_depth >= loop_depth_floor &&
            std::regex_search(line, re_double_decl))
            report(i, "no-mixed-accumulation",
                   "double accumulator declared inside a loop in a "
                   "deterministic scope; kernel reductions must stay "
                   "in float to preserve bit-identity");

        if (std::regex_search(line, m, re_fresh_decl))
            fresh_locals.push_back(m[1].str());
        if (std::regex_search(line, m, re_mutation))
            pending_mutations.push_back({i, m[1].str(), m[2].str()});
        std::smatch inv;
        static const std::regex re_invalidate(
            R"((\w+)\.invalidateCsc\s*\()");
        if (std::regex_search(line, inv, re_invalidate))
            invalidated_objects.push_back(inv[1].str());

        const bool opens_loop = std::regex_search(line, re_for_loop);
        for (const char c : line) {
            if (c == '{') {
                ++brace_depth;
                if (opens_loop && loop_depth_floor < 0)
                    loop_depth_floor = brace_depth;
            } else if (c == '}') {
                --brace_depth;
                if (loop_depth_floor >= 0 &&
                    brace_depth < loop_depth_floor)
                    loop_depth_floor = -1;
                brace_depth = std::max(brace_depth, 0);
            }
        }
    }

    for (const Mutation &mu : pending_mutations) {
        const bool invalidated =
            std::find(invalidated_objects.begin(),
                      invalidated_objects.end(),
                      mu.object) != invalidated_objects.end();
        const bool fresh =
            std::find(fresh_locals.begin(), fresh_locals.end(),
                      mu.object) != fresh_locals.end();
        if (!invalidated && !fresh)
            report(mu.idx, "csc-invalidate",
                   "mutation of '" + mu.object + "." + mu.member +
                       "' without '" + mu.object +
                       ".invalidateCsc()' in this file; the cached "
                       "CSC adjunct would go stale");
    }

    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         return a.line < b.line;
                     });
    return diags;
}

} // namespace igcn::lint
