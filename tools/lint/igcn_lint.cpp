/**
 * @file
 * CLI driver of the determinism-contract linter (see rules.hpp for
 * the rule catalogue). Scans C++ sources under the given repo
 * subtrees, prints one `path:line: [rule] message` diagnostic per
 * violation plus a per-rule count summary, and exits nonzero when
 * anything fired — the CI `lint` job gates on that.
 *
 * Usage:
 *   igcn_lint [--root=DIR] [subtree...]
 *
 * `--root` is the repo root diagnostics are reported relative to
 * (default: the current directory); subtrees default to `src tools`.
 * Rule scoping (deterministic paths, src/runtime/ containment) keys
 * off the repo-relative path, so runs from a build directory must
 * pass --root.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace fs = std::filesystem;

namespace {

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" ||
           ext == ".cc";
}

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Repo-relative path with forward slashes. */
std::string
relPath(const fs::path &file, const fs::path &root)
{
    return fs::relative(file, root).generic_string();
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    std::vector<std::string> subtrees;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--root=", 0) == 0) {
            root = fs::path(arg.substr(7));
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: igcn_lint [--root=DIR] [subtree...]\n");
            return 0;
        } else {
            subtrees.push_back(arg);
        }
    }
    if (subtrees.empty())
        subtrees = {"src", "tools"};

    std::error_code ec;
    root = fs::canonical(root, ec);
    if (ec) {
        std::fprintf(stderr, "igcn_lint: bad --root: %s\n",
                     ec.message().c_str());
        return 2;
    }

    std::vector<fs::path> files;
    for (const std::string &sub : subtrees) {
        const fs::path dir = root / sub;
        if (!fs::exists(dir)) {
            std::fprintf(stderr, "igcn_lint: no such subtree: %s\n",
                         dir.string().c_str());
            return 2;
        }
        for (const auto &entry :
             fs::recursive_directory_iterator(dir)) {
            if (entry.is_regular_file() &&
                isSourceFile(entry.path()))
                files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());

    std::map<std::string, size_t> perRule;
    for (const std::string &rule : igcn::lint::allRules())
        perRule[rule] = 0;

    size_t total = 0;
    for (const fs::path &file : files) {
        const auto diags = igcn::lint::lintText(relPath(file, root),
                                                readFile(file));
        for (const auto &d : diags) {
            std::printf("%s\n", d.str().c_str());
            ++perRule[d.rule];
            ++total;
        }
    }

    std::printf("igcn_lint: %zu file(s) scanned, %zu violation(s)\n",
                files.size(), total);
    for (const auto &[rule, count] : perRule)
        std::printf("igcn_lint:   %-28s %zu\n", rule.c_str(), count);

    return total == 0 ? 0 : 1;
}
