/**
 * @file
 * Incremental islandization tests: after arbitrary edge additions,
 * the updated result must satisfy exactly the postconditions of a
 * fresh run (full classification, cmax bounds, edge coverage), while
 * islands untouched by the update survive verbatim and absorbed
 * updates do no work.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/incremental.hpp"
#include "core/permute.hpp"
#include "core/redundancy.hpp"
#include "graph/generators.hpp"

namespace igcn {
namespace {

/** Fresh-run postconditions on (g, isl). */
void
checkPostconditions(const CsrGraph &g, const IslandizationResult &isl,
                    const LocatorConfig &cfg)
{
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_NE(isl.role[v], NodeRole::Unclassified) << v;
    for (const Island &island : isl.islands) {
        EXPECT_GE(island.nodes.size(), 1u);
        EXPECT_LE(island.nodes.size(), cfg.maxIslandSize);
    }
    // Coverage: classifyCoverage finds zero outliers and the pruning
    // baseline identity holds (these jointly require the inter-hub
    // map and island hub lists to be complete).
    EXPECT_EQ(classifyCoverage(g, isl).outliers, 0u);
    PruningReport report = countPruning(g, isl, {});
    EXPECT_EQ(report.baselineAggOps(), g.numEdges() + g.numNodes());
}

/** Add edges to a graph, returning the new graph. */
CsrGraph
withEdges(const CsrGraph &g, const std::vector<Edge> &added)
{
    std::vector<Edge> all = g.toEdges();
    for (const auto &e : added)
        all.push_back(e);
    return CsrGraph::fromEdges(g.numNodes(), all, /*symmetrize=*/true);
}

TEST(Incremental, InternalIslandEdgeAbsorbed)
{
    auto hi = hubAndIslandGraph({.numNodes = 600, .seed = 4});
    LocatorConfig cfg;
    auto isl = islandize(hi.graph, cfg);

    // Find an island with >= 2 nodes and add an internal edge.
    const Island *target = nullptr;
    for (const Island &island : isl.islands)
        if (island.nodes.size() >= 3) {
            target = &island;
            break;
        }
    ASSERT_NE(target, nullptr);
    std::vector<Edge> added{{target->nodes[0], target->nodes[2]}};
    CsrGraph g2 = withEdges(hi.graph, added);

    IncrementalStats stats;
    auto updated = updateIslandization(g2, isl, added, cfg, &stats);
    EXPECT_EQ(stats.islandsDissolved, 0u);
    EXPECT_GE(stats.edgesAbsorbed, 1u);
    EXPECT_EQ(updated.islands.size(), isl.islands.size());
    checkPostconditions(g2, updated, cfg);
}

TEST(Incremental, CrossIslandEdgeRepairsLocally)
{
    auto hi = hubAndIslandGraph({.numNodes = 1200, .seed = 9});
    LocatorConfig cfg;
    auto isl = islandize(hi.graph, cfg);

    // Connect two distinct islands.
    uint32_t ia = IslandizationResult::kNoIsland;
    uint32_t ib = IslandizationResult::kNoIsland;
    NodeId u = 0, v = 0;
    for (NodeId n = 0; n < hi.graph.numNodes(); ++n) {
        if (isl.role[n] != NodeRole::IslandNode)
            continue;
        if (ia == IslandizationResult::kNoIsland) {
            ia = isl.islandOf[n];
            u = n;
        } else if (isl.islandOf[n] != ia) {
            ib = isl.islandOf[n];
            v = n;
            break;
        }
    }
    ASSERT_NE(ib, IslandizationResult::kNoIsland);

    std::vector<Edge> added{{u, v}};
    CsrGraph g2 = withEdges(hi.graph, added);
    IncrementalStats stats;
    auto updated = updateIslandization(g2, isl, added, cfg, &stats);
    EXPECT_EQ(stats.islandsDissolved, 2u);
    EXPECT_GT(stats.nodesReclassified, 0u);
    checkPostconditions(g2, updated, cfg);

    // Untouched islands survive verbatim: compare node multisets.
    std::set<std::vector<NodeId>> old_islands, new_islands;
    for (const Island &island : isl.islands)
        if (!island.nodes.empty())
            old_islands.insert(island.nodes);
    for (const Island &island : updated.islands)
        new_islands.insert(island.nodes);
    size_t preserved = 0;
    for (const auto &nodes : old_islands)
        if (new_islands.count(nodes))
            preserved++;
    EXPECT_GE(preserved, old_islands.size() - 4);
}

TEST(Incremental, HubHubEdgeIsInterHub)
{
    auto hi = hubAndIslandGraph({.numNodes = 800, .seed = 6});
    LocatorConfig cfg;
    auto isl = islandize(hi.graph, cfg);

    std::vector<NodeId> hubs;
    for (NodeId n = 0; n < hi.graph.numNodes(); ++n)
        if (isl.role[n] == NodeRole::Hub)
            hubs.push_back(n);
    ASSERT_GE(hubs.size(), 2u);
    // Pick a hub pair without an existing edge.
    NodeId h1 = hubs[0], h2 = hubs[1];
    for (size_t i = 1; i < hubs.size(); ++i) {
        if (!hi.graph.hasEdge(h1, hubs[i])) {
            h2 = hubs[i];
            break;
        }
    }
    std::vector<Edge> added{{h1, h2}};
    CsrGraph g2 = withEdges(hi.graph, added);
    IncrementalStats stats;
    auto updated = updateIslandization(g2, isl, added, cfg, &stats);
    EXPECT_EQ(stats.islandsDissolved, 0u);
    checkPostconditions(g2, updated, cfg);
}

TEST(Incremental, RandomEdgeStream)
{
    // Property test: apply batches of random edges; postconditions
    // hold after every batch.
    auto hi = hubAndIslandGraph({.numNodes = 900, .seed = 42});
    LocatorConfig cfg;
    CsrGraph g = hi.graph;
    auto isl = islandize(g, cfg);
    Rng rng(17);

    for (int batch = 0; batch < 6; ++batch) {
        std::vector<Edge> added;
        for (int e = 0; e < 12; ++e) {
            NodeId u = static_cast<NodeId>(
                rng.nextBounded(g.numNodes()));
            NodeId v = static_cast<NodeId>(
                rng.nextBounded(g.numNodes()));
            if (u != v)
                added.emplace_back(u, v);
        }
        CsrGraph g2 = withEdges(g, added);
        isl = updateIslandization(g2, isl, added, cfg);
        g = g2;
        checkPostconditions(g, isl, cfg);
    }
}

TEST(Incremental, BatchedMixedStreamEquivalentToOneBigBatch)
{
    // The serving subsystem's exact usage pattern: the update applier
    // feeds updateIslandization many small coalesced `std::span`
    // batches. Applying a mixed stream (intra-island, cross-island,
    // hub-hub, hub-island edges) as 12 batches of 5 must land on the
    // same final graph as one 60-edge batch, and both islandizations
    // must satisfy the full fresh-run postconditions with comparable
    // pruning quality.
    auto hi = hubAndIslandGraph({.numNodes = 1000, .seed = 31});
    LocatorConfig cfg;
    auto isl0 = islandize(hi.graph, cfg);

    Rng rng(8);
    std::vector<Edge> added;
    while (added.size() < 60) {
        const auto u = static_cast<NodeId>(
            rng.nextBounded(hi.graph.numNodes()));
        const auto v = static_cast<NodeId>(
            rng.nextBounded(hi.graph.numNodes()));
        if (u != v)
            added.emplace_back(u, v);
    }

    // One big batch.
    CsrGraph g_big = hi.graph.withAddedEdges(added);
    auto isl_big =
        updateIslandization(g_big, isl0, added, cfg);

    // Many small batches, graph evolving between them (subspans of
    // the same stream, as the scheduler's coalescing produces).
    CsrGraph g_small = hi.graph;
    auto isl_small = isl0;
    for (size_t i = 0; i < added.size(); i += 5) {
        std::span<const Edge> batch(added.data() + i, 5);
        g_small = g_small.withAddedEdges(batch);
        isl_small =
            updateIslandization(g_small, isl_small, batch, cfg);
        checkPostconditions(g_small, isl_small, cfg);
    }

    // Identical final graphs (merge-insertion is batch-size
    // invariant), and both valid islandizations of it.
    EXPECT_EQ(g_big, g_small);
    checkPostconditions(g_big, isl_big, cfg);
    checkPostconditions(g_small, isl_small, cfg);

    // Equivalent quality: the partitions may legitimately differ
    // (island discovery order differs), but neither path may degrade
    // the structure the consumer exploits.
    const double rate_big =
        countPruning(g_big, isl_big, {}).aggPruningRate();
    const double rate_small =
        countPruning(g_small, isl_small, {}).aggPruningRate();
    EXPECT_NEAR(rate_big, rate_small, 0.08);
}

TEST(Incremental, IntraIslandRemovalDissolvesTheIsland)
{
    // Deleting an edge *inside* an island may disconnect it, so the
    // island must be dissolved and re-derived, not patched.
    auto hi = hubAndIslandGraph({.numNodes = 600, .seed = 4});
    LocatorConfig cfg;
    auto isl = islandize(hi.graph, cfg);

    const Island *target = nullptr;
    Edge internal{0, 0};
    for (const Island &island : isl.islands) {
        for (NodeId u : island.nodes)
            for (NodeId v : island.nodes)
                if (u < v && hi.graph.hasEdge(u, v)) {
                    target = &island;
                    internal = {u, v};
                }
        if (target)
            break;
    }
    ASSERT_NE(target, nullptr);

    std::vector<Edge> removed{internal};
    CsrGraph g2 = hi.graph.withRemovedEdges(removed);
    IncrementalStats stats;
    auto updated =
        updateIslandization(g2, isl, {}, removed, cfg, &stats);
    EXPECT_GE(stats.islandsDissolved, 1u);
    EXPECT_GT(stats.nodesReclassified, 0u);
    checkPostconditions(g2, updated, cfg);
}

TEST(Incremental, HubHubRemovalOnlyErasesInterHubEntry)
{
    auto hi = hubAndIslandGraph({.numNodes = 800, .seed = 6});
    LocatorConfig cfg;
    auto isl = islandize(hi.graph, cfg);
    ASSERT_FALSE(isl.interHubEdges.empty());

    // Pick an inter-hub edge whose endpoints keep degree >= 2, so no
    // demotion cascades: the repair must be pure bookkeeping.
    Edge pick{0, 0};
    bool found = false;
    for (const Edge &e : isl.interHubEdges)
        if (hi.graph.degree(e.first) > 2 &&
            hi.graph.degree(e.second) > 2) {
            pick = e;
            found = true;
            break;
        }
    ASSERT_TRUE(found);

    std::vector<Edge> removed{pick};
    CsrGraph g2 = hi.graph.withRemovedEdges(removed);
    IncrementalStats stats;
    auto updated =
        updateIslandization(g2, isl, {}, removed, cfg, &stats);
    EXPECT_EQ(stats.islandsDissolved, 0u);
    EXPECT_EQ(stats.hubsDemoted, 0u);
    EXPECT_EQ(stats.edgesRemovedInterHub, 1u);
    EXPECT_EQ(stats.nodesReclassified, 0u);
    EXPECT_EQ(updated.islands.size(), isl.islands.size());
    EXPECT_EQ(updated.interHubEdges.size(),
              isl.interHubEdges.size() - 1);
    checkPostconditions(g2, updated, cfg);
}

TEST(Incremental, StarvedHubIsDemoted)
{
    // Remove all but one edge of a hub: it falls below the demotion
    // floor, every island listing it dissolves, and the repair
    // re-classifies the region with no stale hub-list entries.
    auto hi = hubAndIslandGraph({.numNodes = 700, .seed = 11});
    LocatorConfig cfg;
    auto isl = islandize(hi.graph, cfg);

    NodeId hub = 0;
    bool found = false;
    for (NodeId v = 0; v < hi.graph.numNodes() && !found; ++v)
        if (isl.role[v] == NodeRole::Hub && hi.graph.degree(v) >= 3)
        {
            hub = v;
            found = true;
        }
    ASSERT_TRUE(found);

    auto nbrs = hi.graph.neighbors(hub);
    std::vector<Edge> removed;
    for (size_t i = 0; i + 1 < nbrs.size(); ++i)
        removed.emplace_back(hub, nbrs[i]);

    CsrGraph g2 = hi.graph.withRemovedEdges(removed);
    ASSERT_EQ(g2.degree(hub), 1u);
    IncrementalStats stats;
    auto updated =
        updateIslandization(g2, isl, {}, removed, cfg, &stats);
    EXPECT_GE(stats.hubsDemoted, 1u);
    EXPECT_NE(updated.role[hub], NodeRole::Unclassified);
    checkPostconditions(g2, updated, cfg);
    // No island may still list the demoted node unless it
    // re-qualified as a hub during the repair.
    if (updated.role[hub] != NodeRole::Hub) {
        for (const Island &island : updated.islands) {
            EXPECT_FALSE(std::binary_search(island.hubs.begin(),
                                            island.hubs.end(), hub));
        }
    }
}

TEST(Incremental, MixedAddRemoveSpanMatchesPostconditions)
{
    // The applier's exact shape: one span carrying disjoint adds and
    // removes, applied in one updateIslandization call.
    auto hi = hubAndIslandGraph({.numNodes = 900, .seed = 15});
    LocatorConfig cfg;
    CsrGraph g = hi.graph;
    auto isl = islandize(g, cfg);
    Rng rng(27);

    for (int batch = 0; batch < 5; ++batch) {
        std::vector<Edge> adds, removes;
        std::set<Edge> touched;
        for (int e = 0; e < 8; ++e) {
            const auto u =
                static_cast<NodeId>(rng.nextBounded(g.numNodes()));
            const auto v =
                static_cast<NodeId>(rng.nextBounded(g.numNodes()));
            if (u == v)
                continue;
            const Edge ne{std::min(u, v), std::max(u, v)};
            if (!touched.insert(ne).second)
                continue;
            if (g.hasEdge(u, v))
                removes.push_back(ne);
            else
                adds.push_back(ne);
        }
        CsrGraph g2 = g.withAddedEdges(adds);
        if (!removes.empty())
            g2 = g2.withRemovedEdges(removes);
        isl = updateIslandization(g2, isl, adds, removes, cfg);
        g = g2;
        checkPostconditions(g, isl, cfg);
    }
}

TEST(Incremental, MatchesFreshPruningQuality)
{
    // Incremental repair shouldn't leave meaningfully less pruning
    // opportunity than a fresh run on the same final graph.
    auto hi = hubAndIslandGraph(
        {.numNodes = 1500, .intraIslandProb = 0.7, .seed = 23});
    LocatorConfig cfg;
    CsrGraph g = hi.graph;
    auto isl = islandize(g, cfg);
    Rng rng(5);
    std::vector<Edge> added;
    for (int e = 0; e < 40; ++e)
        added.emplace_back(
            static_cast<NodeId>(rng.nextBounded(g.numNodes())),
            static_cast<NodeId>(rng.nextBounded(g.numNodes())));
    std::erase_if(added, [](const Edge &e) {
        return e.first == e.second;
    });
    CsrGraph g2 = withEdges(g, added);
    auto incremental = updateIslandization(g2, isl, added, cfg);
    auto fresh = islandize(g2, cfg);
    double inc_rate =
        countPruning(g2, incremental, {}).aggPruningRate();
    double fresh_rate = countPruning(g2, fresh, {}).aggPruningRate();
    EXPECT_GT(inc_rate, fresh_rate - 0.08);
}

} // namespace
} // namespace igcn
