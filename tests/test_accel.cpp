/**
 * @file
 * Accelerator model tests: workload accounting identities, residency
 * planning, timing-model monotonicity (more MACs / bandwidth never
 * hurts), cross-platform ordering (the paper's headline shape), and
 * the area/energy models.
 */

#include <gtest/gtest.h>

#include "accel/area.hpp"
#include "accel/awbgcn_model.hpp"
#include "accel/energy.hpp"
#include "accel/hygcn_model.hpp"
#include "accel/igcn_model.hpp"
#include "accel/platform_models.hpp"

namespace igcn {
namespace {

/** Small Cora-like fixture shared by the model tests. */
class AccelTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        data = new DatasetGraph(buildDataset(Dataset::Cora, 0.5));
        model = new ModelConfig(
            modelConfig(Model::GCN, NetConfig::Algo, data->info));
    }

    static void
    TearDownTestSuite()
    {
        delete data;
        delete model;
        data = nullptr;
        model = nullptr;
    }

    static DatasetGraph *data;
    static ModelConfig *model;
};

DatasetGraph *AccelTest::data = nullptr;
ModelConfig *AccelTest::model = nullptr;

TEST_F(AccelTest, WorkloadAggBaselineIdentity)
{
    Workload wl = buildWorkload(*data, *model);
    for (const LayerWork &l : wl.layers) {
        EXPECT_EQ(l.aggregationOpsBase,
                  wl.adjacencyNnzWithSelf *
                      static_cast<uint64_t>(l.outChannels));
        EXPECT_EQ(l.aggregationOpsOptimized, l.aggregationOpsBase);
    }
    // Aggregation is a modest share of total ops in combination-first
    // order (paper: ~23% on average).
    EXPECT_LT(wl.aggregationOpShare(), 0.6);
    EXPECT_GT(wl.aggregationOpShare(), 0.01);
}

TEST_F(AccelTest, WorkloadOptimizedBelowBaselineWithIslands)
{
    auto isl = islandize(data->graph);
    Workload wl = buildWorkload(*data, *model, &isl);
    EXPECT_LT(wl.totalOpsOptimized(), wl.totalOpsBase());
}

TEST_F(AccelTest, ResidencyPlanRespectsBudget)
{
    Workload wl = buildWorkload(*data, *model);
    ResidencyPlan big = planResidency(wl, 1e12);
    EXPECT_TRUE(big.adjacency);
    EXPECT_TRUE(big.features);
    EXPECT_TRUE(big.weights);
    ResidencyPlan none = planResidency(wl, 16.0);
    EXPECT_FALSE(none.adjacency);
    EXPECT_FALSE(none.features);
    EXPECT_EQ(none.residentBytes, 0u);
}

TEST_F(AccelTest, IgcnFasterThanBaselines)
{
    HwConfig hw;
    auto ig = simulateIgcn(*data, *model, hw);
    auto awb = simulateAwbGcn(*data, *model, hw);
    auto hy = simulateHyGcn(*data, *model);
    auto cpu = simulateCpu(*data, *model, Framework::PyG);
    auto gpu = simulateGpu(*data, *model, Framework::PyG);

    // The paper's headline ordering.
    EXPECT_LT(ig.latencyUs, awb.latencyUs);
    EXPECT_LT(awb.latencyUs, hy.latencyUs);
    EXPECT_LT(hy.latencyUs, gpu.latencyUs);
    EXPECT_LT(gpu.latencyUs, cpu.latencyUs);
}

TEST_F(AccelTest, MoreMacsNeverSlower)
{
    HwConfig small, big;
    small.numMacs = 1024;
    big.numMacs = 8192;
    auto a = simulateIgcn(*data, *model, small);
    auto b = simulateIgcn(*data, *model, big);
    EXPECT_GE(a.latencyUs, b.latencyUs * 0.99);
}

TEST_F(AccelTest, MoreBandwidthNeverSlower)
{
    HwConfig slow, fast;
    slow.preloadOnChip = false;
    slow.dram.bandwidthGBps = 12.0;
    fast.preloadOnChip = false;
    fast.dram.bandwidthGBps = 200.0;
    auto a = simulateIgcn(*data, *model, slow);
    auto b = simulateIgcn(*data, *model, fast);
    EXPECT_GE(a.latencyUs, b.latencyUs * 0.99);
}

TEST_F(AccelTest, RingReductionHelps)
{
    HwConfig with_ring, without_ring;
    without_ring.ringReduction = false;
    auto a = simulateIgcn(*data, *model, with_ring);
    auto b = simulateIgcn(*data, *model, without_ring);
    EXPECT_LE(a.latencyUs, b.latencyUs * 1.001);
}

TEST_F(AccelTest, OffchipBytesIgcnCompetitive)
{
    HwConfig hw;
    auto ig = simulateIgcn(*data, *model, hw);
    auto cpu = simulateCpu(*data, *model, Framework::PyG);
    EXPECT_LT(ig.offchipBytes, cpu.offchipBytes);
}

TEST_F(AccelTest, UtilizationInRange)
{
    HwConfig hw;
    auto ig = simulateIgcn(*data, *model, hw);
    EXPECT_GT(ig.utilization, 0.0);
    EXPECT_LE(ig.utilization, 1.0);
}

TEST_F(AccelTest, EnergyPositiveAndConsistent)
{
    HwConfig hw;
    auto ig = simulateIgcn(*data, *model, hw);
    EXPECT_GT(ig.energyUJ, 0.0);
    EXPECT_GT(ig.graphsPerKJ, 0.0);
    // EE = 1 / (energy in kJ).
    EXPECT_NEAR(ig.graphsPerKJ, 1.0 / (ig.energyUJ * 1e-6 / 1e3),
                ig.graphsPerKJ * 1e-6);
}

TEST_F(AccelTest, SpeedupOverHelper)
{
    RunResult a, b;
    a.latencyUs = 2.0;
    b.latencyUs = 10.0;
    EXPECT_DOUBLE_EQ(speedupOver(a, b), 5.0);
    a.latencyUs = 0.0;
    EXPECT_THROW(speedupOver(a, b), std::invalid_argument);
}

TEST(Area, DefaultBreakdownMatchesFigure11)
{
    HwConfig hw; // 4K MACs, 64 TP-BFS engines: the paper's config
    AreaBreakdown bd = areaBreakdown(hw);
    EXPECT_GT(bd.totalAlms(), 0.0);
    const double locator = bd.groupShare("Locator");
    const double consumer = bd.groupShare("Consumer");
    EXPECT_NEAR(locator + consumer, 1.0, 1e-9);
    // Paper: Locator 34%, Consumer 66%.
    EXPECT_NEAR(locator, 0.34, 0.04);
}

TEST(Area, ScalesWithConfiguration)
{
    HwConfig base, more_macs, more_engines;
    more_macs.numMacs = 8192;
    more_engines.locator.p2 = 128;
    auto b = areaBreakdown(base);
    auto m = areaBreakdown(more_macs);
    auto e = areaBreakdown(more_engines);
    EXPECT_GT(m.groupAlms("Consumer"), b.groupAlms("Consumer"));
    EXPECT_DOUBLE_EQ(m.groupAlms("Locator"), b.groupAlms("Locator"));
    EXPECT_GT(e.groupAlms("Locator"), b.groupAlms("Locator"));
}

TEST(Energy, ComponentsAdditive)
{
    HwConfig hw;
    RunResult r;
    r.latencyUs = 100.0;
    fillEnergy(r, hw, /*ops=*/0.0, /*dram_bytes=*/0.0);
    double static_only = r.energyUJ;
    fillEnergy(r, hw, 1e9, 0.0);
    EXPECT_GT(r.energyUJ, static_only);
    double with_ops = r.energyUJ;
    fillEnergy(r, hw, 1e9, 1e9);
    EXPECT_GT(r.energyUJ, with_ops);
}

TEST(Platforms, CpuMeasurementIsPositive)
{
    double macs_per_s = hostSpmmMacsPerSecond();
    EXPECT_GT(macs_per_s, 1e6);
    // Memoized: second call returns the identical value.
    EXPECT_DOUBLE_EQ(hostSpmmMacsPerSecond(), macs_per_s);
}

TEST(Platforms, GpuPresetsDiffer)
{
    GpuConfig rtx = rtx8000Config();
    EXPECT_EQ(rtx.name, "RTX8000");
    EXPECT_NE(rtx.memoryGBps, GpuConfig{}.memoryGBps);
}

TEST(Report, TextTableFormatting)
{
    TextTable table({"a", "bb"});
    table.addRow({"1", "2"});
    std::string s = table.toString();
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_THROW(table.addRow({"only-one"}), std::invalid_argument);
}

TEST(Report, FormatEng)
{
    EXPECT_EQ(formatEng(0.0), "0");
    EXPECT_NE(formatEng(1234567.0).find("e"), std::string::npos);
    EXPECT_EQ(formatEng(1.5, 2), "1.50");
}

} // namespace
} // namespace igcn
