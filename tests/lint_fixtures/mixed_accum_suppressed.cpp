// igcn-lint: deterministic
#include <cstddef>

double
serialMean(const float *xs, size_t n)
{
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
        // Serial, fixed summation order: deterministic by
        // construction. igcn-lint: allow(no-mixed-accumulation)
        double x = static_cast<double>(xs[i]);
        total += x;
    }
    return n ? total / static_cast<double>(n) : 0.0;
}
