#pragma GCC optimize("Ofast")
#pragma STDC FP_CONTRACT ON

float
fused(float a, float b, float c)
{
    return a * b + c;
}
