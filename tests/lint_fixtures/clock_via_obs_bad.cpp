#include <chrono>

uint64_t
stampDirectly()
{
    const auto now = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        now.time_since_epoch().count());
}
