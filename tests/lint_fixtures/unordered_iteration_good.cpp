// igcn-lint: deterministic
// Point lookups into unordered containers are fine; only iteration
// leaks hash order. Ordered containers may be iterated freely.
#include <map>
#include <unordered_map>

int
lookupsOnly(int key)
{
    std::unordered_map<int, int> counts;
    counts[key] = 7;
    std::map<int, int> ordered;
    ordered[key] = counts.at(key) + static_cast<int>(counts.count(0));
    int sum = 0;
    for (const auto &kv : ordered)
        sum += kv.second;
    return sum;
}
