// Mutating a CsrMatrix that arrived by reference without dropping
// the cached CSC adjunct: classic stale-transpose bug.
#include "spmm/spmm.hpp"

void
scaleInPlace(igcn::CsrMatrix &mat, float s)
{
    for (float &v : mat.values)
        v *= s;
    mat.values.push_back(s);
}

void
rewriteRow(igcn::CsrMatrix &mat)
{
    mat.colIdx.resize(0);
    mat.rowPtr = {0};
}
