// Linted twice by the tests: flagged under src/serve/, clean under
// src/runtime/ — the rule is purely path-scoped.
#include <thread>

void
spawnWorker()
{
    std::thread worker([] {});
    worker.join();
}
