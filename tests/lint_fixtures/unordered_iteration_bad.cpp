// igcn-lint: deterministic
#include <unordered_map>
#include <unordered_set>

int
hashOrderLeaks()
{
    std::unordered_map<int, int> counts;
    std::unordered_set<int> seen;
    counts[3] = 1;
    int sum = 0;
    for (const auto &kv : counts)
        sum += kv.second;
    for (auto it = seen.begin(); it != seen.end(); ++it)
        sum += *it;
    return sum;
}
