#include <chrono>

uint64_t
bootstrapStamp()
{
    // One-time origin capture before the seam object exists.
    // igcn-lint: allow(clock-via-obs)
    const auto now = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        now.time_since_epoch().count());
}
