#include "spmm/spmm.hpp"

void
patchValues(igcn::CsrMatrix &mat, float s)
{
    // Caller invalidates once after a batch of patches.
    // igcn-lint: allow(csc-invalidate)
    mat.values.push_back(s);
}
