// igcn-lint: deterministic
#include <chrono>

uint64_t
stampFromWallClock()
{
    const auto now = std::chrono::system_clock::now();
    return static_cast<uint64_t>(
        now.time_since_epoch().count());
}
