// Two legitimate shapes: mutate-then-invalidate, and assembling a
// value-declared fresh local whose cache was never populated.
#include "spmm/spmm.hpp"

void
scaleInPlace(igcn::CsrMatrix &mat, float s)
{
    for (float &v : mat.values)
        v *= s;
    mat.values.push_back(s);
    mat.invalidateCsc();
}

igcn::CsrMatrix
assemble()
{
    igcn::CsrMatrix fresh;
    fresh.rowPtr = {0, 1};
    fresh.colIdx.push_back(0);
    fresh.values.push_back(1.0f);
    return fresh;
}
