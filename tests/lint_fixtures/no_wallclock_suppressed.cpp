// igcn-lint: deterministic
#include <chrono>

uint64_t
logTimestamp()
{
    // Human-readable log header only; never feeds replay state.
    // igcn-lint: allow(no-wallclock)
    const auto now = std::chrono::system_clock::now();
    return static_cast<uint64_t>(
        now.time_since_epoch().count());
}
