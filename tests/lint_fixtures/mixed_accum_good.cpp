// igcn-lint: deterministic
// Float stays float inside kernel loops; doubles declared outside any
// loop (configuration, thresholds) are fine.
#include <cstddef>

double threshold_default = 0.5;

float
sumFloat(const float *xs, size_t n)
{
    const double scale = 2.0;
    float total = 0.0f;
    for (size_t i = 0; i < n; ++i) {
        total += xs[i];
    }
    return total * static_cast<float>(scale);
}
