// Near misses: reads through the seam, mentions of the clock in
// comments ("steady_clock::now()") and strings, and the unrelated
// steady_clock type name without a ::now() call.
#include "obs/clock.hpp"

uint64_t
stampViaSeam(const igcn::obs::RealClock &clock)
{
    const char *doc = "never call steady_clock::now() here";
    (void)doc;
    using steady = std::chrono::steady_clock;
    (void)sizeof(steady::time_point);
    return clock.nowUs();
}
