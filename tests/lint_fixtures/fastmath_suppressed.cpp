// Non-kernel translation unit; reviewed exception.
// igcn-lint: allow(no-fast-math)
#pragma GCC optimize("Ofast")

int
hot(int x)
{
    return x * 2;
}
