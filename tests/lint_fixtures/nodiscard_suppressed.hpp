#pragma once

#include "graph/csr.hpp"

namespace fixture {

struct Builder
{
    // Fire-and-forget by design; result is advisory.
    // igcn-lint: allow(nodiscard-factory)
    int submitTelemetry(int count);
};

} // namespace fixture
