// igcn-lint: deterministic
// steady_clock is the real-time-mode stamp source and is allowed.
#include <chrono>

uint64_t
stampFromSteadyClock()
{
    const auto now = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        now.time_since_epoch().count());
}
