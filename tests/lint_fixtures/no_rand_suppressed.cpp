// igcn-lint: deterministic
#include <cstdlib>

int
blessed()
{
    // Seeding a legacy third-party hook, reviewed.
    // igcn-lint: allow(no-rand)
    srand(42);
    return rand(); // igcn-lint: allow(no-rand)
}
