// Factory/builder declarations missing [[nodiscard]].
#pragma once

#include "graph/csr.hpp"

namespace fixture {

struct Builder
{
    static igcn::CsrGraph fromEdgeList(int n);
    igcn::CsrGraph withExtraEdges(int m) const;
    int submitBatch(int count);
};

} // namespace fixture
