// igcn-lint: deterministic
// Near-misses: the seeded Rng, and identifiers *containing* "rand".
#include "graph/rng.hpp"

float
seeded(igcn::Rng &rng)
{
    return rng.nextFloat(1.0f);
}

int
wordBoundaryTraps(int operand)
{
    auto strand = [](int x) { return x + 1; };
    auto myrand = [](int x) { return x * 2; };
    // "rand()" inside a string or comment is not code: rand()
    const char *doc = "call rand() never";
    return strand(operand) + myrand(operand) + (doc ? 1 : 0);
}
