// Marked declarations ([[nodiscard]] on the same or previous line)
// and call sites, none of which may be flagged.
#pragma once

#include "graph/csr.hpp"

namespace fixture {

struct Builder
{
    [[nodiscard]] static igcn::CsrGraph fromEdgeList(int n);
    [[nodiscard]]
    igcn::CsrGraph withExtraEdges(int m) const;
};

inline igcn::CsrGraph
callSitesOnly(const Builder &b)
{
    auto g = Builder::fromEdgeList(4);
    auto g2 = b.withExtraEdges(2);
    return g2.numEdges() > g.numEdges() ? g2 : g;
}

} // namespace fixture
