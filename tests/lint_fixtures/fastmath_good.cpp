// No float-relaxing pragmas; plain IEEE arithmetic.
#pragma once

float
unfused(float a, float b, float c)
{
    const float p = a * b;
    return p + c;
}
