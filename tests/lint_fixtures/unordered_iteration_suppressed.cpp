// igcn-lint: deterministic
#include <unordered_map>
#include <vector>

std::vector<int>
sortedKeys()
{
    std::unordered_map<int, int> counts;
    std::vector<int> keys;
    // Collected into a vector and sorted below, so the visit order
    // never escapes. igcn-lint: allow(no-unordered-iteration)
    for (const auto &kv : counts)
        keys.push_back(kv.first);
    return keys;
}
