// igcn-lint: deterministic
#include <cstddef>

float
sumWidened(const float *xs, size_t n)
{
    float total = 0.0f;
    for (size_t i = 0; i < n; ++i) {
        double widened = static_cast<double>(xs[i]);
        total += static_cast<float>(widened);
    }
    return total;
}
