// igcn-lint: deterministic
// Every libc / std randomness source must be flagged.
#include <cstdlib>
#include <random>

int
unseeded()
{
    srand(42);
    return rand();
}

int
unseededQualified()
{
    std::srand(42);
    return std::rand();
}

unsigned
hardwareEntropy()
{
    std::random_device dev;
    return dev();
}
