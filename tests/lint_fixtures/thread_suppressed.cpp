#include <thread>

void
spawnServiceThread()
{
    // Long-lived service thread, not data parallelism.
    // igcn-lint: allow(no-thread-outside-runtime)
    std::thread service([] {});
    service.join();
}
