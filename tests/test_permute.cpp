/**
 * @file
 * Islandization-order permutation and clustering-coverage tests
 * (the structural claims behind Figures 9 and 13).
 */

#include <gtest/gtest.h>

#include <fstream>

#include "core/permute.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "reorder/metrics.hpp"
#include "reorder/reorder.hpp"

namespace igcn {
namespace {

TEST(Permute, OrderIsPermutation)
{
    auto hi = hubAndIslandGraph({.numNodes = 700, .seed = 4});
    auto isl = islandize(hi.graph);
    auto perm = islandizationOrder(isl);
    EXPECT_TRUE(isPermutation(perm));
}

TEST(Permute, CoverageIsComplete)
{
    // Paper Section 3.1.1: "the space between the L-shapes is purely
    // blank" — after islandization every non-zero is in a hub
    // row/column or an island diagonal block, with zero outliers.
    for (uint64_t seed : {3ull, 14ull, 159ull}) {
        auto hi = hubAndIslandGraph({.numNodes = 900, .seed = seed});
        auto isl = islandize(hi.graph);
        ClusterCoverage cov = classifyCoverage(hi.graph, isl);
        EXPECT_EQ(cov.outliers, 0u);
        EXPECT_EQ(cov.total, hi.graph.numEdges());
        EXPECT_DOUBLE_EQ(cov.clusteredFraction(), 1.0);
    }
}

TEST(Permute, CoverageCompleteWithRewiredCommunities)
{
    // Even with rewiring noise (weak community structure), coverage
    // stays complete: the locator promotes noisy nodes to hubs rather
    // than leaving edges uncovered.
    HubIslandParams params;
    params.numNodes = 1200;
    params.communityStrength = 0.8;
    params.seed = 77;
    auto hi = hubAndIslandGraph(params);
    auto isl = islandize(hi.graph);
    ClusterCoverage cov = classifyCoverage(hi.graph, isl);
    EXPECT_EQ(cov.outliers, 0u);
}

TEST(Permute, DensityGridNormalized)
{
    auto hi = hubAndIslandGraph({.numNodes = 300, .seed = 9});
    auto isl = islandize(hi.graph);
    auto perm = islandizationOrder(isl);
    auto grid = renderDensityGrid(hi.graph, perm, 32);
    ASSERT_EQ(grid.size(), 32u * 32u);
    double max_v = 0.0;
    for (double v : grid) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
        max_v = std::max(max_v, v);
    }
    EXPECT_DOUBLE_EQ(max_v, 1.0);
}

TEST(Permute, AsciiPlotShape)
{
    std::vector<double> grid(16, 0.0);
    grid[5] = 1.0;
    std::string plot = asciiDensityPlot(grid, 4);
    // 4 rows of 4 chars + newline each.
    EXPECT_EQ(plot.size(), 20u);
    EXPECT_NE(plot.find('#'), std::string::npos);
}

TEST(Permute, IslandizationBeatsLightweightReorderings)
{
    // Figure 13's claim, quantified: islandization leaves zero
    // outliers while lightweight degree-based reorderings leave many
    // non-zeros outside dense regions.
    auto data = buildDataset(Dataset::Cora, 0.5);
    auto isl = islandize(data.graph);
    EXPECT_EQ(classifyCoverage(data.graph, isl).outliers, 0u);

    auto isl_perm = islandizationOrder(isl);
    auto isl_metrics = clusteringMetrics(data.graph, isl_perm);
    for (ReorderAlgo algo :
         {ReorderAlgo::HubSort, ReorderAlgo::Dbg}) {
        auto rr = reorderGraph(data.graph, algo);
        auto m = clusteringMetrics(data.graph, rr.perm);
        // Lightweight orders concentrate less of the matrix into
        // dense cells than islandization does.
        EXPECT_LT(m.nnzInDenseCells, isl_metrics.nnzInDenseCells + 0.2)
            << reorderAlgoName(algo);
    }
}

TEST(Io, PgmRoundTripHeader)
{
    std::vector<double> grid(64, 0.5);
    std::string path = testing::TempDir() + "igcn_grid.pgm";
    savePgm(grid, 8, 8, path);
    std::ifstream in(path, std::ios::binary);
    std::string magic;
    in >> magic;
    EXPECT_EQ(magic, "P5");
    int w, h, maxval;
    in >> w >> h >> maxval;
    EXPECT_EQ(w, 8);
    EXPECT_EQ(h, 8);
    EXPECT_EQ(maxval, 255);
}

TEST(Io, EdgeListRoundTrip)
{
    auto hi = hubAndIslandGraph({.numNodes = 150, .seed = 31});
    std::string path = testing::TempDir() + "igcn_edges.txt";
    saveEdgeList(hi.graph, path);
    CsrGraph loaded = loadEdgeList(path);
    EXPECT_EQ(loaded, hi.graph);
}

TEST(Io, LoadRejectsBadHeader)
{
    std::string path = testing::TempDir() + "igcn_bad.txt";
    {
        std::ofstream out(path);
        out << "0 1\n";
    }
    EXPECT_THROW(loadEdgeList(path), std::runtime_error);
}

} // namespace
} // namespace igcn
