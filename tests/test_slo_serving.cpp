/**
 * @file
 * SLO serving tests — acceptance criteria of the robustness layer:
 *
 *  (a) admission control is typed and immediate: over-budget
 *      submissions are Rejected and over-capacity ones Overloaded at
 *      the serving boundary, never enqueued; updates are exempt from
 *      the token budget but bounded by the queue cap;
 *  (b) EDF + drop-expired: pooled requests are served earliest-
 *      deadline-first (priority and arrival breaking ties, deadline-
 *      less requests forming an arrival-ordered tail) and a request
 *      that cannot start by its deadline is dropped — classified
 *      Expired when it was eligible and ShedStale when its freshness
 *      gate was the blocker — so no admitted Strict request ever
 *      starts past its deadline (zero violations by construction);
 *  (c) bounded staleness: a Freshness::Bounded request may be served
 *      from an epoch at most K admitted-updates behind head, Strict
 *      requests always wait for full freshness, and K=0 reproduces
 *      hard sequence-point semantics;
 *  (d) determinism: admit/shed/expire decisions, per-tenant stats and
 *      the full stats summary are bit-identical at IGCN_THREADS 1/4/8
 *      across queue caps, fault plans included;
 *  (e) overload (arrival >= 4x service rate) sheds deterministically
 *      with bounded queue memory and an admitted-request p99 within
 *      2x of the uncontended p99, while the FCFS baseline's backlog
 *      grows without bound on the same trace.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "gcn/reference.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

namespace igcn {
namespace {

using namespace igcn::serve;

struct Workload
{
    CsrGraph graph;
    DenseMatrix features;
    std::vector<DenseMatrix> weights;
};

Workload
makeWorkload(NodeId nodes, uint64_t seed)
{
    Workload w;
    w.graph = hubAndIslandGraph({.numNodes = nodes, .seed = seed}).graph;
    Rng rng(seed * 7 + 1);
    w.features = DenseMatrix(nodes, 12);
    w.features.fillRandom(rng, 1.0f);
    ModelConfig mc;
    mc.layers = {{12, 10}, {10, 5}};
    w.weights = makeWeights(mc, rng);
    return w;
}

Request
inf(uint64_t id, uint64_t arrival, uint64_t deadline = 0,
    Freshness fresh = Freshness::Bounded,
    Priority prio = Priority::Normal, uint32_t tenant = 0)
{
    Request r;
    r.kind = RequestKind::Inference;
    r.id = id;
    r.arrivalUs = arrival;
    r.deadlineUs = deadline;
    r.freshness = fresh;
    r.priority = prio;
    r.tenant = tenant;
    return r;
}

Request
upd(uint64_t id, uint64_t arrival)
{
    Request r;
    r.kind = RequestKind::Update;
    r.id = id;
    r.arrivalUs = arrival;
    r.addedEdges.emplace_back(NodeId{0}, NodeId{1});
    return r;
}

/** Exact nearest-rank p99 of served-inference latency, from the
 *  replay report itself (the stats' histogram p99 is a bucketed
 *  estimate; overload-bound assertions need the exact value). */
double
exactP99Us(const ReplayReport &rep)
{
    std::vector<uint64_t> lat;
    lat.reserve(rep.inference.size());
    for (const InferenceResult &r : rep.inference)
        lat.push_back(r.doneUs - r.arrivalUs);
    if (lat.empty())
        return 0.0;
    std::sort(lat.begin(), lat.end());
    const size_t rank = static_cast<size_t>(
        std::max<double>(1.0, std::ceil(0.99 * lat.size())));
    return static_cast<double>(lat[rank - 1]);
}

// ------------------------------------------------------ criterion (a)

TEST(SloTokenBucket, RefillIsPureFunctionOfTimestamps)
{
    // 1000 qps = 0.001 tokens/us, burst 2.
    TokenBucket b(1000.0, 2.0);
    EXPECT_TRUE(b.tryTake(0));
    EXPECT_TRUE(b.tryTake(0));
    EXPECT_FALSE(b.tryTake(0));   // burst exhausted
    EXPECT_FALSE(b.tryTake(500)); // 0.5 tokens accrued
    EXPECT_TRUE(b.tryTake(1000)); // 1.0 accrued since t=0
    EXPECT_FALSE(b.tryTake(1001));
    // Refill caps at burst: a long silence does not bank credit.
    EXPECT_DOUBLE_EQ(b.available(1'000'000), 2.0);
    EXPECT_TRUE(b.tryTake(1'000'000));
    EXPECT_TRUE(b.tryTake(1'000'000));
    EXPECT_FALSE(b.tryTake(1'000'000));
}

TEST(SloAdmission, BudgetThenCapacityTyped)
{
    SloConfig cfg;
    cfg.enabled = true;
    cfg.qpsBudget = 1000.0;
    cfg.burstTokens = 1.0;
    cfg.queueCap = 2;
    AdmissionController adm(cfg);

    // Tenant 0's single burst token admits one inference; the second
    // is over budget: Rejected even though the queue has room.
    EXPECT_EQ(adm.tryAdmit(inf(0, 0), 0), ServeError::None);
    EXPECT_EQ(adm.tryAdmit(inf(1, 0), 1), ServeError::Rejected);
    // Budgets are per tenant: tenant 1 is unaffected.
    EXPECT_EQ(adm.tryAdmit(inf(2, 0, 0, Freshness::Bounded,
                               Priority::Normal, /*tenant=*/1),
                           1),
              ServeError::None);
    // Queue at capacity: Overloaded, even with tokens available.
    EXPECT_EQ(adm.tryAdmit(inf(3, 5000, 0, Freshness::Bounded,
                               Priority::Normal, /*tenant=*/2),
                           2),
              ServeError::Overloaded);
    // Updates are exempt from the token budget (tenant 0 is broke)
    // but bounded by the queue cap like everyone else.
    EXPECT_EQ(adm.tryAdmit(upd(4, 0), 1), ServeError::None);
    EXPECT_EQ(adm.tryAdmit(upd(5, 0), 2), ServeError::Overloaded);
}

// ------------------------------------------------------ criterion (b)

TEST(SloEdfQueue, EdfOrderWithPriorityAndArrivalTieBreaks)
{
    EdfQueue q;
    q.add(inf(0, 30), 0);                           // no deadline
    q.add(inf(1, 10, 500), 0);                      // later deadline
    q.add(inf(2, 20, 400), 0);                      // earliest deadline
    q.add(inf(3, 5, 500, Freshness::Bounded,
              Priority::Interactive), 0);           // ties on deadline
    q.add(inf(4, 1), 0);                            // no deadline, early

    std::vector<uint64_t> order;
    EdfQueue::Entry e;
    while (q.popEligible(0, 0, e))
        order.push_back(e.req.id);
    // EDF first (2), then deadline-500 by priority (3 before 1), then
    // the deadline-less tail in arrival order (4 before 0).
    EXPECT_EQ(order, (std::vector<uint64_t>{2, 3, 1, 4, 0}));
}

TEST(SloEdfQueue, DropExpiredClassifiesExpiredVsShedStale)
{
    EdfQueue q;
    q.add(inf(0, 0, 100), 0);  // eligible, deadline passes -> Expired
    q.add(inf(1, 0, 100), 5);  // needs 5 updates applied -> ShedStale
    q.add(inf(2, 0, 200), 0);  // deadline not yet passed -> stays
    q.add(inf(3, 0), 9);       // no deadline -> never dropped

    auto dropped = q.dropExpired(/*now=*/150, /*applied=*/0,
                                 /*staleness=*/0);
    ASSERT_EQ(dropped.size(), 2u);
    // Map order: deadline-100 entries first (arrival then id).
    EXPECT_EQ(dropped[0].entry.req.id, 0u);
    EXPECT_EQ(dropped[0].error, ServeError::Expired);
    EXPECT_EQ(dropped[1].entry.req.id, 1u);
    EXPECT_EQ(dropped[1].error, ServeError::ShedStale);
    EXPECT_EQ(q.size(), 2u);

    // Boundary: a request whose deadline equals now may still start
    // exactly at the deadline — not dropped.
    auto none = q.dropExpired(/*now=*/200, 0, 0);
    EXPECT_TRUE(none.empty());
}

// ------------------------------------------------------ criterion (c)

TEST(SloScheduler, BoundedStalenessServesStaleStrictWaits)
{
    SchedulerConfig bc;
    bc.maxBatch = 8;
    SloConfig slo;
    slo.enabled = true;
    slo.stalenessBound = 2;
    SloScheduler sched(bc, slo);

    sched.admit(upd(0, 10));
    sched.admit(inf(1, 20));                          // 1 update behind
    sched.admit(inf(2, 25, 0, Freshness::Strict));    // must wait

    // Bounded request 1 is eligible (1 <= K=2): served first, one
    // epoch behind. Strict request 2 is not in the batch.
    SloScheduler::Decision d;
    ASSERT_TRUE(sched.next(0, d));
    ASSERT_EQ(d.kind, SloScheduler::Decision::Kind::Inference);
    ASSERT_EQ(d.batch.requests.size(), 1u);
    EXPECT_EQ(d.batch.requests[0].id, 1u);
    EXPECT_EQ(d.epochsBehind, (std::vector<uint32_t>{1}));

    // Only the strict request remains ineligible -> the update is
    // forced (it can never deadlock: ineligibility implies pending
    // updates).
    ASSERT_TRUE(sched.next(0, d));
    ASSERT_EQ(d.kind, SloScheduler::Decision::Kind::Update);
    EXPECT_EQ(sched.appliedSeq(), 1u);

    // Now the strict request is fully fresh.
    ASSERT_TRUE(sched.next(0, d));
    ASSERT_EQ(d.kind, SloScheduler::Decision::Kind::Inference);
    ASSERT_EQ(d.batch.requests.size(), 1u);
    EXPECT_EQ(d.batch.requests[0].id, 2u);
    EXPECT_EQ(d.epochsBehind, (std::vector<uint32_t>{0}));
    EXPECT_FALSE(sched.next(0, d));
}

TEST(SloScheduler, StalenessBoundForcesUpdatesWhenExceeded)
{
    SchedulerConfig bc;
    SloConfig slo;
    slo.enabled = true;
    slo.stalenessBound = 2;
    SloScheduler sched(bc, slo);

    // Three updates pending: a bounded request admitted after them is
    // 3 > K=2 behind -> ineligible, so updates apply first.
    for (uint64_t i = 0; i < 3; ++i)
        sched.admit(upd(i, i));
    sched.admit(inf(3, 10));

    SloScheduler::Decision d;
    ASSERT_TRUE(sched.next(0, d));
    ASSERT_EQ(d.kind, SloScheduler::Decision::Kind::Update);
    EXPECT_EQ(d.batch.requests.size(), 3u); // coalesced
    ASSERT_TRUE(sched.next(0, d));
    ASSERT_EQ(d.kind, SloScheduler::Decision::Kind::Inference);
    EXPECT_EQ(d.epochsBehind, (std::vector<uint32_t>{0}));
}

// ------------------------------------------------------ criterion (d)

/** Everything a decision sequence produced, for bit-comparison. */
struct SloSignature
{
    std::vector<std::tuple<uint64_t, int, uint64_t>> rejections;
    std::vector<std::tuple<uint64_t, uint64_t, uint64_t, uint32_t,
                           uint32_t>>
        served; // id, start, done, epochsBehind, tenant
    std::string summary;
    std::string tenantTable;

    static SloSignature
    of(const ReplayReport &rep, const ServerStats &st)
    {
        SloSignature s;
        for (const Rejection &r : rep.rejections)
            s.rejections.emplace_back(r.id, static_cast<int>(r.error),
                                      r.atUs);
        for (const InferenceResult &r : rep.inference)
            s.served.emplace_back(r.id, r.startUs, r.doneUs,
                                  r.epochsBehind, r.tenant);
        s.summary = st.summary();
        s.tenantTable = st.rejectionTable();
        return s;
    }

    bool operator==(const SloSignature &) const = default;
};

std::vector<Request>
overloadTrace(const CsrGraph &g)
{
    TraceConfig tc;
    tc.numInference = 1200;
    tc.numUpdates = 80;
    tc.meanGapUs = 6.0; // far past saturation
    tc.pattern = ArrivalPattern::Burst;
    tc.numTenants = 4;
    tc.deadlineUs = 4000;
    tc.strictFraction = 0.15;
    tc.seed = 17;
    return makeSyntheticTrace(g, tc);
}

TEST(SloReplay, DecisionsBitIdenticalAcrossThreadsAndQueueCaps)
{
    Workload w = makeWorkload(500, 23);
    const std::vector<Request> trace = overloadTrace(w.graph);

    for (uint32_t cap : {16u, 64u, 256u}) {
        ServerConfig sc;
        sc.scheduler.maxBatch = 8;
        sc.slo.enabled = true;
        sc.slo.queueCap = cap;
        sc.slo.qpsBudget = 30000.0;
        sc.slo.stalenessBound = 4;

        std::vector<SloSignature> sigs;
        for (int threads : {1, 4, 8}) {
            setGlobalThreads(threads);
            Server server(w.graph, w.features, w.weights, sc);
            ReplayReport rep = server.runTrace(trace);
            // Shedding engaged; queue memory stayed bounded; no
            // admitted request ever started past its deadline.
            EXPECT_GT(rep.rejections.size(), 0u) << "cap " << cap;
            EXPECT_LE(server.stats().maxQueueDepth(), cap);
            EXPECT_EQ(server.stats().strictDeadlineViolations(), 0u);
            sigs.push_back(SloSignature::of(rep, server.stats()));
        }
        setGlobalThreads(0);
        EXPECT_EQ(sigs[0], sigs[1]) << "cap " << cap;
        EXPECT_EQ(sigs[0], sigs[2]) << "cap " << cap;
    }
}

TEST(SloReplay, ServedResultsBitIdenticalToFreshReference)
{
    // Strict requests served by the SLO path carry epochsBehind == 0
    // and must be bit-identical to the whole-graph reference of the
    // epoch they were served against.
    Workload w = makeWorkload(400, 31);
    TraceConfig tc;
    tc.numInference = 150;
    tc.numUpdates = 0;
    tc.meanGapUs = 400.0;
    tc.seed = 5;
    ServerConfig sc;
    sc.slo.enabled = true;
    Server server(w.graph, w.features, w.weights, sc);
    ReplayReport rep = server.runTrace(makeSyntheticTrace(w.graph, tc));
    ASSERT_EQ(rep.inference.size(), tc.numInference);

    Features f;
    f.dense = w.features;
    DenseMatrix ref = referenceForward(w.graph, f, w.weights);
    for (const InferenceResult &r : rep.inference) {
        EXPECT_EQ(r.epochsBehind, 0u);
        ASSERT_EQ(r.logits.size(), ref.cols());
        for (size_t c = 0; c < r.logits.size(); ++c)
            EXPECT_EQ(r.logits[c], ref.row(r.node)[c]);
    }
}

// ------------------------------------- fault injection / staleness

TEST(SloFaults, EngineStallDropsDeterministicallyAndRecovers)
{
    Workload w = makeWorkload(400, 47);
    TraceConfig tc;
    tc.numInference = 400;
    tc.numUpdates = 30;
    tc.meanGapUs = 60.0;
    tc.deadlineUs = 900;
    tc.seed = 19;
    const std::vector<Request> trace =
        makeSyntheticTrace(w.graph, tc);

    ServerConfig sc;
    sc.slo.enabled = true;
    sc.slo.stalenessBound = 4;
    FaultEvent stall;
    stall.kind = FaultEvent::Kind::EngineStall;
    stall.atUs = 4000;
    stall.durationUs = 3000;
    sc.faults.events.push_back(stall);

    Server server(w.graph, w.features, w.weights, sc);
    ReplayReport rep = server.runTrace(trace);
    const ServerStats &st = server.stats();

    // Nothing starts inside the stall window.
    for (const InferenceResult &r : rep.inference) {
        EXPECT_FALSE(r.startUs >= stall.atUs &&
                     r.startUs < stall.atUs + stall.durationUs)
            << "inference started mid-stall at " << r.startUs;
    }
    for (const UpdateResult &u : rep.updates)
        EXPECT_FALSE(u.startUs >= stall.atUs &&
                     u.startUs < stall.atUs + stall.durationUs);

    // Deadlines shorter than the stall expire deterministically —
    // degradation, not late serving — and serving resumes after.
    EXPECT_GT(st.expiredRequests() + st.shedStaleRequests(), 0u);
    EXPECT_EQ(st.strictDeadlineViolations(), 0u);
    uint64_t served_after_stall = 0;
    for (const InferenceResult &r : rep.inference)
        if (r.startUs >= stall.atUs + stall.durationUs)
            served_after_stall++;
    EXPECT_GT(served_after_stall, 0u);

    // The same plan is bit-reproducible at another thread count.
    setGlobalThreads(4);
    Server server2(w.graph, w.features, w.weights, sc);
    ReplayReport rep2 = server2.runTrace(trace);
    setGlobalThreads(0);
    EXPECT_EQ(SloSignature::of(rep, st),
              SloSignature::of(rep2, server2.stats()));
}

TEST(SloFaults, BoundedStalenessKeepsServingThroughUpdateBurst)
{
    // An UpdateDelay fault turns a steady trickle of updates into one
    // replication-lag burst. With a staleness budget the server keeps
    // answering from the slightly-stale epoch; with K=0 every pooled
    // request stalls behind the burst (hard sequence-point
    // semantics).
    Workload w = makeWorkload(400, 59);
    TraceConfig tc;
    tc.numInference = 500;
    tc.numUpdates = 12;
    tc.meanGapUs = 25.0;
    tc.deadlineUs = 1500;
    tc.seed = 29;
    const std::vector<Request> trace =
        makeSyntheticTrace(w.graph, tc);

    FaultPlan plan;
    FaultEvent delay;
    delay.kind = FaultEvent::Kind::UpdateDelay;
    delay.atUs = 0;
    delay.durationUs = 8000; // all early updates land at t=8000
    plan.events.push_back(delay);
    // An engine stall bracketing the burst's landing makes requests
    // pile up behind it, so the first post-stall dispatch finds both
    // the landed updates and admitted-after-them inference pooled —
    // the exact moment where the staleness budget decides who is
    // served.
    FaultEvent stall;
    stall.kind = FaultEvent::Kind::EngineStall;
    stall.atUs = 7000;
    stall.durationUs = 1100;
    plan.events.push_back(stall);

    auto run = [&](uint32_t staleness) {
        ServerConfig sc;
        sc.scheduler.maxBatch = 8;
        sc.slo.enabled = true;
        sc.slo.stalenessBound = staleness;
        sc.faults = plan;
        Server server(w.graph, w.features, w.weights, sc);
        server.runTrace(trace);
        return std::make_tuple(server.stats().inferenceRequests(),
                               server.stats().staleServes(),
                               server.stats().expiredRequests() +
                                   server.stats().shedStaleRequests(),
                               server.stats().strictDeadlineViolations());
    };

    const auto [served_k, stale_k, dropped_k, viol_k] = run(16);
    const auto [served_0, stale_0, dropped_0, viol_0] = run(0);

    // K=16 rides through the burst serving stale-but-valid answers.
    EXPECT_GT(stale_k, 0u);
    // K=0 is exactly the strict world: nothing is ever served stale.
    EXPECT_EQ(stale_0, 0u);
    // The budgeted server answers at least as many requests and drops
    // no more than the strict one on the identical degraded trace.
    EXPECT_GE(served_k, served_0);
    EXPECT_LE(dropped_k, dropped_0);
    // Neither mode ever serves an admitted strict request late.
    EXPECT_EQ(viol_k, 0u);
    EXPECT_EQ(viol_0, 0u);
}

TEST(SloFaults, BurstArrivalsInjectDeterministicHerd)
{
    Workload w = makeWorkload(300, 61);
    TraceConfig tc;
    tc.numInference = 100;
    tc.numUpdates = 0;
    tc.meanGapUs = 200.0;
    tc.seed = 3;
    std::vector<Request> trace = makeSyntheticTrace(w.graph, tc);
    const size_t base = trace.size();

    FaultPlan plan;
    FaultEvent burst;
    burst.kind = FaultEvent::Kind::BurstArrivals;
    burst.atUs = 5000;
    burst.count = 300;
    burst.durationUs = 400; // tight relative deadline
    burst.node = 7;
    burst.tenant = 3;
    plan.events.push_back(burst);
    plan.applyToTrace(trace);

    ASSERT_EQ(trace.size(), base + burst.count);
    EXPECT_TRUE(std::is_sorted(trace.begin(), trace.end(),
                               [](const Request &a, const Request &b) {
                                   return a.arrivalUs < b.arrivalUs;
                               }));

    // The herd overwhelms a small queue: most of it is shed with
    // typed errors billed to the herd's tenant.
    ServerConfig sc;
    sc.scheduler.maxBatch = 4;
    sc.slo.enabled = true;
    sc.slo.queueCap = 16;
    Server server(w.graph, w.features, w.weights, sc);
    ReplayReport rep = server.runTrace(std::move(trace));
    const auto &tenants = server.stats().tenantStats();
    auto it = tenants.find(burst.tenant);
    ASSERT_NE(it, tenants.end());
    EXPECT_GT(it->second.shed() + it->second.dropped(), 0u);
    EXPECT_EQ(server.stats().strictDeadlineViolations(), 0u);
    EXPECT_LE(server.stats().maxQueueDepth(), 16u);
    EXPECT_GT(rep.rejections.size(), 0u);
}

// ------------------------------------------------------ criterion (e)

TEST(SloReplay, OverloadShedsBoundedWhileFcfsBacklogGrows)
{
    Workload w = makeWorkload(500, 67);

    // A flat service model makes the arithmetic exact: every
    // inference dispatch costs 100us regardless of composition, so
    // with maxBatch=1 the service rate is 10k rps.
    ServiceModel flat;
    flat.inferenceFixedUs = 100.0;
    flat.perTargetUs = 0.0;
    flat.perSubNodeUs = 0.0;
    flat.perSubEdgeUs = 0.0;

    // Uncontended baseline: arrivals far apart, no deadline.
    TraceConfig calm;
    calm.numInference = 200;
    calm.numUpdates = 10;
    calm.meanGapUs = 2000.0;
    calm.seed = 41;
    ServerConfig calm_sc;
    calm_sc.scheduler.maxBatch = 1;
    calm_sc.service = flat;
    calm_sc.slo.enabled = true;
    calm_sc.slo.queueCap = 0; // unbounded; no contention anyway
    Server calm_server(w.graph, w.features, w.weights, calm_sc);
    ReplayReport calm_rep =
        calm_server.runTrace(makeSyntheticTrace(w.graph, calm));
    const double p99_uncontended = exactP99Us(calm_rep);
    ASSERT_GT(p99_uncontended, 0.0);

    // Overload: mean gap 25us = 40k rps arrivals, 4x the 10k rps
    // service rate. Deadline at half the uncontended p99 keeps every
    // served request's queueing delay under p99/2, so admitted p99
    // <= deadline + service < 2x uncontended p99.
    TraceConfig hot;
    hot.numInference = 1500;
    hot.numUpdates = 100;
    hot.meanGapUs = 25.0;
    hot.numTenants = 2;
    hot.deadlineUs =
        static_cast<uint64_t>(p99_uncontended / 2.0);
    hot.seed = 41;
    const std::vector<Request> overload =
        makeSyntheticTrace(w.graph, hot);

    const uint32_t cap = 32;
    ServerConfig slo_sc = calm_sc;
    slo_sc.slo.queueCap = cap;
    Server slo_server(w.graph, w.features, w.weights, slo_sc);
    ReplayReport slo_rep = slo_server.runTrace(overload);
    const ServerStats &st = slo_server.stats();

    // Shedding engages hard (at 4x overload at most ~25% of arrivals
    // can be served), queue memory stays bounded by the cap, no
    // admitted strict request starts late, and the tail of what WAS
    // admitted stays within 2x of the uncontended tail.
    EXPECT_GT(st.shedRequests() + st.expiredRequests() +
                  st.shedStaleRequests(),
              overload.size() / 2);
    EXPECT_LE(st.maxQueueDepth(), cap);
    EXPECT_EQ(st.strictDeadlineViolations(), 0u);
    const double p99_admitted = exactP99Us(slo_rep);
    EXPECT_LE(p99_admitted, 2.0 * p99_uncontended)
        << "admitted p99 " << p99_admitted << " vs uncontended "
        << p99_uncontended;

    // FCFS-without-shedding baseline on the same trace: every request
    // is eventually served, so the waiting line at the moment the
    // last request arrives has grown far past the SLO queue cap —
    // unbounded backlog growth in request count (and memory).
    ServerConfig fcfs_sc;
    fcfs_sc.scheduler.maxBatch = 1;
    fcfs_sc.service = flat;
    Server fcfs_server(w.graph, w.features, w.weights, fcfs_sc);
    ReplayReport fcfs_rep = fcfs_server.runTrace(overload);
    EXPECT_EQ(fcfs_rep.inference.size() +
                  [&] {
                      uint64_t coalesced = 0;
                      for (const UpdateResult &u : fcfs_rep.updates)
                          coalesced += u.coalesced;
                      return coalesced;
                  }(),
              overload.size());
    uint64_t last_arrival = 0;
    for (const Request &r : overload)
        last_arrival = std::max(last_arrival, r.arrivalUs);
    uint64_t started_by_then = 0;
    for (const InferenceResult &r : fcfs_rep.inference)
        if (r.startUs <= last_arrival)
            started_by_then++;
    for (const UpdateResult &u : fcfs_rep.updates)
        if (u.startUs <= last_arrival)
            started_by_then++;
    const uint64_t fcfs_backlog =
        static_cast<uint64_t>(overload.size()) - started_by_then;
    EXPECT_GT(fcfs_backlog, 4u * cap)
        << "FCFS backlog " << fcfs_backlog
        << " should dwarf the SLO queue cap " << cap;
}

// ------------------------------------------- trace pattern satellites

TEST(SloTrace, TenantAndDeadlineStampsDoNotPerturbTheStream)
{
    // numTenants / deadlineUs consume no RNG draws: the arrival
    // times, kinds, targets, and edit lists are bit-identical to the
    // default trace — only the new stamps differ.
    CsrGraph g = hubAndIslandGraph({.numNodes = 300, .seed = 2}).graph;
    TraceConfig base;
    base.numInference = 400;
    base.numUpdates = 40;
    base.removeFraction = 0.3;
    base.seed = 12;
    TraceConfig stamped = base;
    stamped.numTenants = 4;
    stamped.deadlineUs = 5000;

    auto a = makeSyntheticTrace(g, base);
    auto b = makeSyntheticTrace(g, stamped);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrivalUs, b[i].arrivalUs);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].node, b[i].node);
        EXPECT_EQ(a[i].addedEdges, b[i].addedEdges);
        EXPECT_EQ(a[i].removedEdges, b[i].removedEdges);
        EXPECT_EQ(a[i].tenant, 0u);
        EXPECT_EQ(b[i].tenant, i % 4);
        EXPECT_EQ(a[i].deadlineUs, 0u);
        EXPECT_EQ(b[i].deadlineUs, b[i].arrivalUs + 5000);
    }
}

TEST(SloTrace, BurstPatternCompressesArrivalsNotContent)
{
    // The arrival pattern scales the single exponential gap draw, so
    // a burst trace has the same kinds/targets sequence as Poisson —
    // only the timestamps move — and its makespan shrinks.
    CsrGraph g = hubAndIslandGraph({.numNodes = 300, .seed = 2}).graph;
    TraceConfig tc;
    tc.numInference = 600;
    tc.numUpdates = 60;
    tc.seed = 9;
    auto poisson = makeSyntheticTrace(g, tc);
    tc.pattern = ArrivalPattern::Burst;
    auto burst = makeSyntheticTrace(g, tc);
    tc.pattern = ArrivalPattern::Diurnal;
    auto diurnal = makeSyntheticTrace(g, tc);

    ASSERT_EQ(poisson.size(), burst.size());
    ASSERT_EQ(poisson.size(), diurnal.size());
    for (size_t i = 0; i < poisson.size(); ++i) {
        EXPECT_EQ(poisson[i].kind, burst[i].kind);
        EXPECT_EQ(poisson[i].node, burst[i].node);
        EXPECT_EQ(poisson[i].kind, diurnal[i].kind);
        EXPECT_EQ(poisson[i].node, diurnal[i].node);
    }
    // Burst windows run 8x faster for 20% of each period: the mean
    // gap drops, so the same request count lands sooner.
    EXPECT_LT(burst.back().arrivalUs, poisson.back().arrivalUs);
    // Still sorted (ids are arrival-ordered).
    EXPECT_TRUE(std::is_sorted(burst.begin(), burst.end(),
                               [](const Request &x, const Request &y) {
                                   return x.arrivalUs < y.arrivalUs;
                               }));
}

TEST(SloTrace, ZipfSkewConcentratesOnHighDegreeRanks)
{
    CsrGraph g = hubAndIslandGraph({.numNodes = 500, .seed = 4}).graph;
    TraceConfig tc;
    tc.numInference = 4000;
    tc.numUpdates = 0;
    tc.zipfAlpha = 1.8;
    tc.seed = 21;
    auto trace = makeSyntheticTrace(g, tc);

    // Rank nodes by degree exactly as the generator does and measure
    // the hit share of the top 1% of ranks: a Zipf(1.8) draw puts the
    // bulk of the mass there, a uniform draw would put ~1%.
    std::vector<NodeId> by_degree(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        by_degree[v] = v;
    std::sort(by_degree.begin(), by_degree.end(),
              [&g](NodeId a, NodeId b) {
                  if (g.degree(a) != g.degree(b))
                      return g.degree(a) > g.degree(b);
                  return a < b;
              });
    std::vector<uint32_t> rank_of(g.numNodes());
    for (size_t r = 0; r < by_degree.size(); ++r)
        rank_of[by_degree[r]] = static_cast<uint32_t>(r);

    uint64_t top1 = 0;
    const uint32_t cut = g.numNodes() / 100;
    for (const Request &r : trace) {
        ASSERT_LT(r.node, g.numNodes());
        if (rank_of[r.node] <= cut)
            top1++;
    }
    EXPECT_GT(top1, trace.size() / 3)
        << "top-1% ranks drew only " << top1 << " of "
        << trace.size();

    // strictFraction marks a deterministic subset Strict.
    tc.strictFraction = 0.3;
    auto strict_trace = makeSyntheticTrace(g, tc);
    uint64_t strict = 0;
    for (const Request &r : strict_trace)
        if (r.freshness == Freshness::Strict)
            strict++;
    EXPECT_GT(strict, trace.size() / 5);
    EXPECT_LT(strict, trace.size() / 2);
}

// ------------------------------------------------- real-time SLO path

TEST(SloRealTime, TypedSubmitAccountsEveryRequestExactlyOnce)
{
    Workload w = makeWorkload(300, 71);
    ServerConfig sc;
    sc.scheduler.maxBatch = 4;
    sc.slo.enabled = true;
    sc.slo.queueCap = 8;
    Server server(w.graph, w.features, w.weights, sc);
    server.start();

    uint64_t ok_inf = 0, ok_upd = 0, refused = 0;
    Rng rng(700);
    for (int i = 0; i < 300; ++i) {
        ServeResult res;
        bool was_update = false;
        if (i % 25 == 24) {
            const auto u = static_cast<NodeId>(
                rng.nextBounded(w.graph.numNodes()));
            const auto v = static_cast<NodeId>(
                rng.nextBounded(w.graph.numNodes()));
            if (u == v)
                continue;
            res = server.submitUpdate({{u, v}},
                                      {},
                                      {.tenant = 1});
            was_update = true;
        } else {
            res = server.submitInference(
                static_cast<NodeId>(
                    rng.nextBounded(w.graph.numNodes())),
                {.tenant = static_cast<uint32_t>(i % 2)});
        }
        if (res.ok()) {
            (was_update ? ok_upd : ok_inf)++;
        } else {
            refused++;
            EXPECT_TRUE(res.error == ServeError::Rejected ||
                        res.error == ServeError::Overloaded);
        }
    }
    ReplayReport rep = server.stop();

    // Typed accounting is exact: every admitted inference request is
    // answered exactly once, every admitted update is applied (or
    // coalesced) exactly once, every refusal is in the rejection log.
    uint64_t coalesced = 0;
    for (const UpdateResult &u : rep.updates)
        coalesced += u.coalesced;
    EXPECT_EQ(rep.inference.size(), ok_inf);
    EXPECT_EQ(coalesced, ok_upd);
    EXPECT_EQ(rep.rejections.size(), refused);
    EXPECT_EQ(server.stats().admittedRequests(), ok_inf + ok_upd);
    EXPECT_LE(server.stats().maxQueueDepth(), 8u);
}

} // namespace
} // namespace igcn
