/**
 * @file
 * Observability layer tests (DESIGN.md section 8):
 *
 *  (a) metric primitives: le bucket semantics, exact count/sum/min/
 *      max, quantile estimates within quantileErrorBound, and
 *      worker-index-ordered merges bit-identical to sequential
 *      recording;
 *  (b) registry determinism: sharded counters fold to the same value
 *      at IGCN_THREADS 1/4/8, registration is get-or-create with
 *      kind checking;
 *  (c) span tracing: monotonic ids, append order, RAII Span
 *      emission, disabled recorders record nothing;
 *  (d) exporters: Perfetto JSON is well-formed (balanced, escaped)
 *      with the metadata Perfetto needs, Prometheus text has
 *      cumulative buckets and escaped labels;
 *  (e) the differential gate: a replayed serving trace produces
 *      byte-identical Perfetto JSON and byte-identical Prometheus
 *      metrics at IGCN_THREADS 1/4/8 (the CI obs-determinism job
 *      re-checks this end-to-end through the CLI).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gcn/reference.hpp"
#include "graph/generators.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

namespace igcn {
namespace {

using namespace igcn::obs;

// ------------------------------------------------- metric primitives

TEST(ObsHistogram, LeBucketBoundarySemantics)
{
    Histogram h({10, 20});
    ASSERT_EQ(h.numBuckets(), 3u); // two finite + one +Inf

    // le semantics: v == bound lands IN that bucket.
    EXPECT_EQ(h.bucketIndex(0), 0u);
    EXPECT_EQ(h.bucketIndex(10), 0u);
    EXPECT_EQ(h.bucketIndex(11), 1u);
    EXPECT_EQ(h.bucketIndex(20), 1u);
    EXPECT_EQ(h.bucketIndex(21), 2u);

    for (uint64_t v : {10u, 11u, 20u, 21u, 3u})
        h.observe(v);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    // The exact side stays exact.
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 65u);
    EXPECT_EQ(h.minValue(), 3u);
    EXPECT_EQ(h.maxValue(), 21u);
    EXPECT_DOUBLE_EQ(h.mean(), 13.0);

    EXPECT_THROW(Histogram({5, 5}), std::invalid_argument);
}

TEST(ObsHistogram, QuantileWithinErrorBoundAndClamped)
{
    Histogram h(latencyBoundsUs());
    for (uint64_t v = 1; v <= 100; ++v)
        h.observe(v);
    // Exact nearest-rank values over 1..100 are q*100.
    for (double q : {0.50, 0.90, 0.95, 0.99}) {
        const double exact = q * 100.0;
        EXPECT_NEAR(h.quantile(q), exact, h.quantileErrorBound(q))
            << "q = " << q;
        EXPECT_GE(h.quantile(q), 1.0);
        EXPECT_LE(h.quantile(q), 100.0);
    }
    // A single observation pins every quantile exactly.
    Histogram one(latencyBoundsUs());
    one.observe(37);
    EXPECT_DOUBLE_EQ(one.quantile(0.5), 37.0);
    EXPECT_DOUBLE_EQ(one.quantile(0.99), 37.0);
    // Empty histogram: all-zero summaries, no division artifacts.
    Histogram empty(latencyBoundsUs());
    EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);
    EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
    EXPECT_EQ(empty.maxValue(), 0u);
}

TEST(ObsHistogram, EmptyAndSingleSampleQuantileContract)
{
    // The pinned degenerate-histogram contract (metrics.hpp):
    //   count == 0 -> quantile(q) == 0.0 for every q,
    //   count == 1 -> quantile(q) == the one observed value exactly
    //                 (no bucket interpolation),
    // and quantileErrorBound() == 0 in both cases — the estimates
    // are exact, so summaries built on them need no slack.
    Histogram empty(latencyBoundsUs());
    for (double q : {0.0, 0.5, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(empty.quantile(q), 0.0) << "q = " << q;
        EXPECT_DOUBLE_EQ(empty.quantileErrorBound(q), 0.0)
            << "q = " << q;
    }

    Histogram one(latencyBoundsUs());
    one.observe(37); // interior of a bucket: interpolation would lie
    for (double q : {0.0, 0.5, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(one.quantile(q), 37.0) << "q = " << q;
        EXPECT_DOUBLE_EQ(one.quantileErrorBound(q), 0.0)
            << "q = " << q;
    }

    // The second observation leaves the exact regime: estimates may
    // interpolate but stay clamped to the observed range.
    one.observe(42);
    for (double q : {0.0, 0.5, 1.0}) {
        EXPECT_GE(one.quantile(q), 37.0) << "q = " << q;
        EXPECT_LE(one.quantile(q), 42.0) << "q = " << q;
    }
}

TEST(ObsRegistry, ResetValuesKeepsRegistrationAndPointers)
{
    Registry reg;
    Counter &c = reg.counter("t_total", {{"k", "a"}});
    Gauge &g = reg.gauge("t_gauge");
    Histogram &h = reg.histogram("t_lat_us", latencyBoundsUs());
    c.add(5);
    g.set(9);
    h.observe(37);

    reg.resetValues();

    // Values zeroed; registration, lookup, and pointers all survive.
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(reg.findCounter("t_total", {{"k", "a"}}), &c);
    EXPECT_EQ(reg.findGauge("t_gauge"), &g);
    EXPECT_EQ(reg.findHistogram("t_lat_us"), &h);

    // Re-registration after the reset dedupes onto the same cells.
    EXPECT_EQ(&reg.counter("t_total", {{"k", "a"}}), &c);
    c.add(2);
    EXPECT_EQ(c.value(), 2u);
}

TEST(ObsHistogram, WorkerOrderedMergeBitIdenticalToSequential)
{
    // The contract's merge discipline: per-worker histograms folded
    // in worker-index order must equal sequential recording exactly.
    const std::vector<uint64_t> values = [] {
        std::vector<uint64_t> v(500);
        for (size_t i = 0; i < v.size(); ++i)
            v[i] = (i * 37 + 11) % 900; // spans several buckets
        return v;
    }();

    Histogram sequential(latencyBoundsUs());
    for (uint64_t v : values)
        sequential.observe(v);

    for (size_t workers : {1u, 4u, 8u}) {
        std::vector<Histogram> per(workers,
                                   Histogram(latencyBoundsUs()));
        for (size_t i = 0; i < values.size(); ++i)
            per[i % workers].observe(values[i]);
        Histogram merged(latencyBoundsUs());
        for (size_t w = 0; w < workers; ++w)
            merged.merge(per[w]);

        EXPECT_EQ(merged.count(), sequential.count());
        EXPECT_EQ(merged.sum(), sequential.sum());
        EXPECT_EQ(merged.minValue(), sequential.minValue());
        EXPECT_EQ(merged.maxValue(), sequential.maxValue());
        for (size_t i = 0; i < merged.numBuckets(); ++i)
            EXPECT_EQ(merged.bucketCount(i),
                      sequential.bucketCount(i))
                << "bucket " << i << " workers " << workers;
        EXPECT_THROW(merged.merge(Histogram({1, 2})),
                     std::invalid_argument);
    }
}

TEST(ObsRegistry, ShardedCounterDeterministicAcrossThreadCounts)
{
    const size_t n = 10'000;
    const uint64_t want = n * (n + 1) / 2; // adds i+1 per element
    std::vector<uint64_t> totals;
    for (int threads : {1, 4, 8}) {
        setGlobalThreads(threads);
        Registry reg;
        ShardedCounter &c = reg.sharded("igcn_test_work_units");
        globalPool().parallelFor(
            0, n, [&](int w, size_t lo, size_t hi) {
                for (size_t i = lo; i < hi; ++i)
                    c.add(w, static_cast<uint64_t>(i) + 1);
            });
        totals.push_back(c.value());
    }
    setGlobalThreads(0);
    for (uint64_t t : totals)
        EXPECT_EQ(t, want);
}

TEST(ObsRegistry, GetOrCreateIdentityAndKindClash)
{
    Registry reg;
    Counter &a = reg.counter("igcn_test_total", {{"k", "v"}});
    Counter &b = reg.counter("igcn_test_total", {{"k", "v"}});
    EXPECT_EQ(&a, &b); // get-or-create returns the same cell
    a.inc();
    EXPECT_EQ(b.value(), 1u);

    // Same name, different labels: a distinct cell.
    Counter &c = reg.counter("igcn_test_total", {{"k", "w"}});
    EXPECT_NE(&a, &c);
    EXPECT_EQ(reg.counterFamilyTotal("igcn_test_total"), 1u);

    // Re-registering under another kind is a hard error.
    EXPECT_THROW(reg.gauge("igcn_test_total", {{"k", "v"}}),
                 std::logic_error);
    EXPECT_EQ(reg.findCounter("igcn_test_total", {{"k", "v"}}), &a);
    EXPECT_EQ(reg.findCounter("igcn_test_missing"), nullptr);
    EXPECT_EQ(reg.size(), 2u);
}

// -------------------------------------------------------- span tracing

TEST(ObsTrace, AppendOrderIdsAndDisabledNoop)
{
    TraceRecorder off; // disabled by default
    off.complete(kLaneServer, "x", "serve", 0, 5);
    off.instant(kLaneRequests, "y", "serve", 1);
    EXPECT_EQ(off.size(), 0u);

    TraceRecorder rec(true);
    rec.complete(kLaneServer, "batch", "serve", 10, 5,
                 {{"batch", 0}});
    rec.instant(kLaneRequests, "respond", "serve", 15,
                {{"req", 7}}, {{"reason", "ok"}});
    rec.complete(kLaneServer, "batch", "serve", 20, 3);
    const auto events = rec.events();
    ASSERT_EQ(events.size(), 3u);
    for (size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].id, i); // monotonic append ids
    EXPECT_EQ(events[0].ph, 'X');
    EXPECT_EQ(events[0].durUs, 5u);
    EXPECT_EQ(events[1].ph, 'i');
    ASSERT_EQ(events[1].num.size(), 1u);
    EXPECT_EQ(events[1].num[0].first, "req");
    ASSERT_EQ(events[1].str.size(), 1u);
    EXPECT_EQ(events[1].str[0].second, "ok");

    rec.clear();
    EXPECT_EQ(rec.size(), 0u);
    rec.instant(kLaneServer, "z", "serve", 0);
    EXPECT_EQ(rec.events()[0].id, 0u); // ids restart with the run

    EXPECT_EQ(laneName(kLaneRequests), "requests");
    EXPECT_EQ(laneName(kLaneServer), "server");
    EXPECT_EQ(laneName(kLaneRuntime), "runtime");
    EXPECT_EQ(laneName(kLaneWorker0 + 3), "worker-3");
}

TEST(ObsTrace, SpanRaiiEmitsOnDestructionOnly)
{
    TraceRecorder rec(true);
    RealClock clock;
    {
        Span s(rec, clock, kLaneServer, "phase", "serve");
        s.arg("work", 42);
        EXPECT_EQ(rec.size(), 0u); // nothing until destruction
    }
    const auto events = rec.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "phase");
    EXPECT_EQ(events[0].ph, 'X');
    ASSERT_EQ(events[0].num.size(), 1u);
    EXPECT_EQ(events[0].num[0],
              (std::pair<std::string, uint64_t>{"work", 42}));

    // A span over a disabled recorder reads no clock and emits
    // nothing.
    TraceRecorder off;
    {
        Span s(off, clock, kLaneServer, "phase", "serve");
        s.arg("work", 1);
    }
    EXPECT_EQ(off.size(), 0u);
}

// ----------------------------------------------------------- exporters

/** Minimal JSON well-formedness: balanced structure outside strings,
 *  valid escapes, fully consumed input. */
bool
jsonBalanced(const std::string &s)
{
    int depth = 0;
    bool in_str = false;
    for (size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (in_str) {
            if (c == '\\')
                ++i; // skip the escaped character
            else if (c == '"')
                in_str = false;
            continue;
        }
        if (c == '"')
            in_str = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_str;
}

TEST(ObsExport, PerfettoJsonWellFormedWithMetadata)
{
    TraceRecorder rec(true);
    rec.complete(kLaneServer, "infer-batch", "serve", 100, 50,
                 {{"batch", 0}, {"size", 3}});
    rec.instant(kLaneRequests, "reject", "serve", 120, {{"req", 9}},
                {{"reason", "quote\"back\\slash\nnewline"}});
    rec.complete(kLaneWorker0 + 1, "gemm", "runtime", 10, 5);

    const std::string json = perfettoJson(rec);
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    // Process + one thread_name per lane used (requests, server,
    // worker-1), named for Perfetto's track labels.
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("igcn-serve"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"requests\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"server\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"worker-1\""), std::string::npos);
    // Complete spans carry dur; instants carry the scope marker.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    // The raw control characters must have been escaped away.
    EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(ObsExport, PrometheusTextShape)
{
    Registry reg;
    reg.counter("igcn_test_requests_total", {{"tenant", "0"}},
                "Requests seen.")
        .add(3);
    reg.counter("igcn_test_requests_total", {{"tenant", "1"}}).add(4);
    reg.gauge("igcn_test_depth").set(-2);
    Histogram &h = reg.histogram("igcn_test_lat_us", {10, 20});
    h.observe(5);
    h.observe(15);
    h.observe(99);
    reg.counter("igcn_test_weird", {{"k", "a\\b\"c\nd"}}).inc();

    const std::string text = prometheusText(reg);
    // HELP/TYPE once per family, values per label set.
    EXPECT_NE(text.find("# HELP igcn_test_requests_total "
                        "Requests seen.\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("# TYPE igcn_test_requests_total counter\n"),
        std::string::npos);
    EXPECT_NE(
        text.find("igcn_test_requests_total{tenant=\"0\"} 3\n"),
        std::string::npos);
    EXPECT_NE(
        text.find("igcn_test_requests_total{tenant=\"1\"} 4\n"),
        std::string::npos);
    EXPECT_NE(text.find("# TYPE igcn_test_depth gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("igcn_test_depth -2\n"), std::string::npos);
    // Cumulative buckets + +Inf + exact sum/count.
    EXPECT_NE(text.find("igcn_test_lat_us_bucket{le=\"10\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("igcn_test_lat_us_bucket{le=\"20\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("igcn_test_lat_us_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("igcn_test_lat_us_sum 119\n"),
              std::string::npos);
    EXPECT_NE(text.find("igcn_test_lat_us_count 3\n"),
              std::string::npos);
    // Backslash, quote and newline escaped per the text format.
    EXPECT_NE(
        text.find("igcn_test_weird{k=\"a\\\\b\\\"c\\nd\"} 1\n"),
        std::string::npos);
}

// ------------------------------------------------ differential (gate)

struct Workload
{
    CsrGraph graph;
    DenseMatrix features;
    std::vector<DenseMatrix> weights;
};

Workload
makeWorkload(NodeId nodes, uint64_t seed)
{
    Workload w;
    w.graph = hubAndIslandGraph({.numNodes = nodes, .seed = seed}).graph;
    Rng rng(seed * 7 + 1);
    w.features = DenseMatrix(nodes, 12);
    w.features.fillRandom(rng, 1.0f);
    ModelConfig mc;
    mc.layers = {{12, 10}, {10, 5}};
    w.weights = makeWeights(mc, rng);
    return w;
}

/** One traced replay -> (perfetto bytes, prometheus bytes). */
std::pair<std::string, std::string>
tracedReplay(const Workload &w, const serve::ServerConfig &sc,
             const std::vector<serve::Request> &trace)
{
    serve::Server server(w.graph, w.features, w.weights, sc);
    serve::ReplayReport rep = server.runTrace(trace);
    EXPECT_GT(rep.inference.size(), 0u);
    return {perfettoJson(server.traceRecorder()),
            prometheusText(server.stats().registry())};
}

TEST(ObsDifferential, ReplayTraceBytesIdenticalAcrossThreadCounts)
{
    Workload w = makeWorkload(600, 9);
    serve::TraceConfig tc;
    tc.numInference = 300;
    tc.numUpdates = 30;
    tc.seed = 5;
    const std::vector<serve::Request> trace =
        serve::makeSyntheticTrace(w.graph, tc);

    serve::ServerConfig sc;
    sc.obs.traceEnabled = true;

    setGlobalThreads(1);
    const auto want = tracedReplay(w, sc, trace);
    EXPECT_TRUE(jsonBalanced(want.first));
    // The stream contains the full lifecycle vocabulary.
    for (const char *needle :
         {"enqueue", "infer-batch", "gather", "layer0", "layer1",
          "respond", "update-batch", "coalesce", "edit-edges",
          "islandize", "publish-epoch"})
        EXPECT_NE(want.first.find(needle), std::string::npos)
            << needle;
    // Metrics include the acceptance-criteria families.
    for (const char *needle :
         {"igcn_serve_inference_latency_us_bucket",
          "igcn_serve_staleness_total", "igcn_serve_queue_depth"})
        EXPECT_NE(want.second.find(needle), std::string::npos)
            << needle;

    for (int threads : {4, 8}) {
        setGlobalThreads(threads);
        const auto got = tracedReplay(w, sc, trace);
        EXPECT_EQ(want.first, got.first)
            << "trace bytes diverged at " << threads << " threads";
        EXPECT_EQ(want.second, got.second)
            << "metric bytes diverged at " << threads << " threads";
    }
    setGlobalThreads(0);
}

TEST(ObsDifferential, SloReplayWithShedsBytesIdentical)
{
    // The SLO path adds admission instants, rejects and deadline
    // drops to the stream; overload makes all of them fire.
    Workload w = makeWorkload(500, 11);
    serve::TraceConfig tc;
    tc.numInference = 400;
    tc.numUpdates = 30;
    tc.meanGapUs = 25.0;
    tc.numTenants = 3;
    tc.deadlineUs = 4000;
    tc.seed = 13;
    const std::vector<serve::Request> trace =
        serve::makeSyntheticTrace(w.graph, tc);

    serve::ServerConfig sc;
    sc.obs.traceEnabled = true;
    sc.scheduler.maxBatch = 1;
    // Flat 100us service = 10k rps against 40k rps arrivals: a
    // guaranteed 4x overload, so sheds and drops definitely fire.
    sc.service.inferenceFixedUs = 100.0;
    sc.service.perTargetUs = 0.0;
    sc.service.perSubNodeUs = 0.0;
    sc.service.perSubEdgeUs = 0.0;
    sc.slo.enabled = true;
    sc.slo.queueCap = 16;

    setGlobalThreads(1);
    const auto want = tracedReplay(w, sc, trace);
    EXPECT_TRUE(jsonBalanced(want.first));
    EXPECT_NE(want.first.find("\"admit\""), std::string::npos);
    // Overload at a 16-deep queue must shed something.
    const bool has_refusal =
        want.first.find("\"reject\"") != std::string::npos ||
        want.first.find("\"drop\"") != std::string::npos;
    EXPECT_TRUE(has_refusal);
    // Per-tenant admission counters ride the same export.
    EXPECT_NE(want.second.find(
                  "igcn_serve_admitted_total{tenant=\"0\"}"),
              std::string::npos);

    for (int threads : {4, 8}) {
        setGlobalThreads(threads);
        const auto got = tracedReplay(w, sc, trace);
        EXPECT_EQ(want.first, got.first)
            << "SLO trace bytes diverged at " << threads
            << " threads";
        EXPECT_EQ(want.second, got.second);
    }
    setGlobalThreads(0);
}

TEST(ObsDifferential, TracingDoesNotPerturbResults)
{
    // Turning the recorder on must not change a single result bit
    // or any metric byte.
    Workload w = makeWorkload(400, 3);
    serve::TraceConfig tc;
    tc.numInference = 200;
    tc.numUpdates = 20;
    tc.seed = 7;
    const std::vector<serve::Request> trace =
        serve::makeSyntheticTrace(w.graph, tc);

    serve::ServerConfig off;
    serve::ServerConfig on;
    on.obs.traceEnabled = true;

    serve::Server s_off(w.graph, w.features, w.weights, off);
    serve::Server s_on(w.graph, w.features, w.weights, on);
    serve::ReplayReport r_off = s_off.runTrace(trace);
    serve::ReplayReport r_on = s_on.runTrace(trace);

    EXPECT_EQ(s_off.traceRecorder().size(), 0u);
    EXPECT_GT(s_on.traceRecorder().size(), 0u);
    ASSERT_EQ(r_off.inference.size(), r_on.inference.size());
    for (size_t i = 0; i < r_off.inference.size(); ++i) {
        EXPECT_EQ(r_off.inference[i].id, r_on.inference[i].id);
        EXPECT_EQ(r_off.inference[i].doneUs,
                  r_on.inference[i].doneUs);
        EXPECT_EQ(r_off.inference[i].logits,
                  r_on.inference[i].logits);
    }
    EXPECT_EQ(prometheusText(s_off.stats().registry()),
              prometheusText(s_on.stats().registry()));
    EXPECT_EQ(s_off.stats().summary(), s_on.stats().summary());
}

} // namespace
} // namespace igcn
