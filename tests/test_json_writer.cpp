/**
 * @file
 * Unit tests for the bench harness's JsonWriter, in particular the
 * non-finite-double regression: inf/nan (e.g. speedup ratios from
 * degenerate timings on a 1-core container) must come out as null,
 * never as bare `inf`/`nan` that no JSON parser accepts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "bench_common.hpp"

namespace igcn::bench {
namespace {

TEST(JsonWriter, NonFiniteDoublesEmitNull)
{
    JsonWriter w;
    w.beginObject();
    w.key("inf").value(std::numeric_limits<double>::infinity());
    w.key("ninf").value(-std::numeric_limits<double>::infinity());
    w.key("nan").value(std::numeric_limits<double>::quiet_NaN());
    w.key("ok").value(2.5);
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"inf\":null,\"ninf\":null,\"nan\":null,\"ok\":2.5}");
}

TEST(JsonWriter, DivisionArtifactsStayParseable)
{
    // The exact shape the scaling bench emits: a speedup ratio whose
    // denominator was a zero-duration measurement.
    const double zero = 0.0;
    JsonWriter w;
    w.beginObject();
    w.key("speedup").value(1.0 / zero);
    w.endObject();
    EXPECT_EQ(w.str().find("inf"), std::string::npos);
    EXPECT_EQ(w.str().find("nan"), std::string::npos);
    EXPECT_NE(w.str().find("null"), std::string::npos);
}

TEST(JsonWriter, StructureAndCommaPlacement)
{
    JsonWriter w;
    w.beginObject();
    w.key("a").value(1);
    w.key("b").beginArray();
    w.value("x").value("y");
    w.endArray();
    w.key("c").value(true);
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[\"x\",\"y\"],\"c\":true}");
}

TEST(JsonWriter, StringEscaping)
{
    JsonWriter w;
    w.beginArray();
    w.value("quote\" slash\\ nl\n tab\t ctl\x01");
    w.endArray();
    EXPECT_EQ(w.str(),
              "[\"quote\\\" slash\\\\ nl\\n tab\\t ctl\\u0001\"]");
}

TEST(JsonWriter, FiniteDoublesRoundTrip)
{
    JsonWriter w;
    w.beginArray();
    w.value(0.1);
    w.endArray();
    double parsed = 0.0;
    ASSERT_EQ(std::sscanf(w.str().c_str(), "[%lf]", &parsed), 1);
    EXPECT_EQ(parsed, 0.1);
}

} // namespace
} // namespace igcn::bench
