/**
 * @file
 * Unit tests for the CLI option parser (tools/args.hpp).
 *
 * Regression focus: a trailing `--key` with no value, or a valueless
 * `--key` followed by another flag, used to be recorded as the string
 * "1" — so `igcn generate --nodes` silently built a 1-node graph and
 * `--render --foo` wrote a plot to a file named "1". Valueless flags
 * are now presence-only: has() sees them, but asking one for a value
 * throws, and stray positional tokens are reported as parse errors.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "tools/args.hpp"
#include "tools/cli_io.hpp"

namespace {

using igcn::cli::Args;

/** Build Args as the CLI does, from "igcn <cmd> tokens...". */
Args
parse(std::vector<std::string> tokens)
{
    std::vector<std::string> storage;
    storage.emplace_back("igcn");
    storage.emplace_back("cmd");
    for (auto &t : tokens)
        storage.push_back(std::move(t));
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, KeyValuePairs)
{
    Args a = parse({"--nodes", "500", "--out", "g.txt"});
    EXPECT_TRUE(a.errors().empty());
    EXPECT_EQ(a.getInt("nodes", 0), 500);
    EXPECT_EQ(a.get("out"), "g.txt");
    EXPECT_EQ(a.get("missing", "fb"), "fb");
    EXPECT_EQ(a.getInt("missing", 7), 7);
}

TEST(CliArgs, EqualsSyntax)
{
    Args a = parse({"--nodes=500", "--decay=0.25"});
    EXPECT_TRUE(a.errors().empty());
    EXPECT_EQ(a.getInt("nodes", 0), 500);
    EXPECT_DOUBLE_EQ(a.getDouble("decay", 0.0), 0.25);
}

TEST(CliArgs, TrailingValuelessFlagIsPresenceNotValue)
{
    Args a = parse({"--parallel"});
    EXPECT_TRUE(a.errors().empty());
    EXPECT_TRUE(a.has("parallel"));
    // Asking a presence flag for a value must fail loudly, not yield
    // the old silent "1".
    EXPECT_THROW(a.get("parallel"), std::runtime_error);
    EXPECT_THROW(a.getInt("parallel", 0), std::runtime_error);
    EXPECT_THROW(a.getDouble("parallel", 0.0), std::runtime_error);
}

TEST(CliArgs, ValuelessFlagMidLineIsDiagnosed)
{
    // `--nodes --out f` used to run with nodes == 1 silently.
    Args a = parse({"--nodes", "--out", "f"});
    EXPECT_TRUE(a.has("nodes"));
    EXPECT_EQ(a.get("out"), "f");
    EXPECT_THROW(a.getInt("nodes", 1000), std::runtime_error);
}

TEST(CliArgs, StrayPositionalTokensAreErrors)
{
    Args a = parse({"garbage", "--nodes", "5", "more-garbage"});
    ASSERT_EQ(a.errors().size(), 2u);
    EXPECT_NE(a.errors()[0].find("garbage"), std::string::npos);
    EXPECT_NE(a.errors()[1].find("more-garbage"), std::string::npos);
    // Well-formed options still parse alongside the errors.
    EXPECT_EQ(a.getInt("nodes", 0), 5);
}

TEST(CliArgs, NegativeNumbersAreValuesNotFlags)
{
    Args a = parse({"--th0", "-5", "--decay", "-0.5"});
    EXPECT_TRUE(a.errors().empty());
    EXPECT_EQ(a.getInt("th0", 0), -5);
    EXPECT_DOUBLE_EQ(a.getDouble("decay", 0.0), -0.5);
}

TEST(CliArgs, MalformedNumbersThrowWithKeyName)
{
    Args a = parse({"--nodes", "12abc", "--decay", "x"});
    try {
        a.getInt("nodes", 0);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("--nodes"),
                  std::string::npos);
    }
    EXPECT_THROW(a.getDouble("decay", 0.0), std::runtime_error);
}

TEST(CliArgs, EmptyDoubleDashIsAnError)
{
    Args a = parse({"--"});
    ASSERT_EQ(a.errors().size(), 1u);
}

TEST(CliArgs, ExplicitEmptyValueIsAValueNotAPresenceFlag)
{
    Args a = parse({"--out="});
    EXPECT_TRUE(a.errors().empty());
    EXPECT_EQ(a.get("out", "fb"), "");
}

TEST(CliArgs, LastOccurrenceWins)
{
    Args a = parse({"--seed", "1", "--seed", "2"});
    EXPECT_EQ(a.getInt("seed", 0), 2);
}

// --- the --in graph-loading path every file-taking subcommand uses --
// main() catches these exceptions, prints them, and exits nonzero, so
// each throw below is a nonzero CLI exit with the tested message.

TEST(CliLoadGraphArg, MissingInFlagIsDiagnosed)
{
    Args a = parse({});
    try {
        igcn::cli::loadGraphArg(a);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("--in"),
                  std::string::npos);
    }
}

TEST(CliLoadGraphArg, ValuelessInFlagIsDiagnosed)
{
    Args a = parse({"--in"});
    EXPECT_THROW(igcn::cli::loadGraphArg(a), std::runtime_error);
}

TEST(CliLoadGraphArg, NonexistentFileNamesPathAndReason)
{
    // `igcn info --in missing.txt` and `igcn simulate --in ...` used
    // to fail with a bare "cannot open" and no reason; the message
    // must now carry the path and the OS error text.
    Args a = parse({"--in", "/nonexistent/igcn-cli.txt"});
    try {
        igcn::cli::loadGraphArg(a);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("/nonexistent/igcn-cli.txt"),
                  std::string::npos);
        EXPECT_NE(msg.find("cannot open"), std::string::npos);
        // strerror(ENOENT) text, the "why".
        EXPECT_NE(msg.find("No such file"), std::string::npos);
    }
}

TEST(CliLoadGraphArg, LoadsAValidFile)
{
    const std::string path =
        std::string(::testing::TempDir()) + "igcn_cli_io_ok.txt";
    igcn::CsrGraph g = igcn::pathGraph(5);
    igcn::saveEdgeList(g, path);
    Args a = parse({"--in", path});
    EXPECT_EQ(igcn::cli::loadGraphArg(a), g);
    std::remove(path.c_str());
}

} // namespace
