/**
 * @file
 * Tests of the Island Locator (Algorithms 1-4): classification
 * completeness, the edge-coverage invariant, island size bounds,
 * determinism, and behaviour on canonical graph shapes.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/locator.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace igcn {
namespace {

/** Assert the full set of islandization postconditions on (g, isl). */
void
checkInvariants(const CsrGraph &g, const IslandizationResult &isl,
                const LocatorConfig &cfg)
{
    const NodeId n = g.numNodes();
    ASSERT_EQ(isl.role.size(), n);

    // 1. Every node classified.
    for (NodeId v = 0; v < n; ++v)
        EXPECT_NE(isl.role[v], NodeRole::Unclassified) << "node " << v;

    // 2. Island membership is consistent and bounded by cmax.
    std::vector<uint32_t> member_of(n, IslandizationResult::kNoIsland);
    for (size_t i = 0; i < isl.islands.size(); ++i) {
        const Island &island = isl.islands[i];
        EXPECT_GE(island.nodes.size(), 1u);
        EXPECT_LE(island.nodes.size(), cfg.maxIslandSize);
        for (NodeId v : island.nodes) {
            EXPECT_EQ(isl.role[v], NodeRole::IslandNode);
            EXPECT_EQ(member_of[v], IslandizationResult::kNoIsland)
                << "node " << v << " in two islands";
            member_of[v] = static_cast<uint32_t>(i);
        }
        for (NodeId h : island.hubs)
            EXPECT_EQ(isl.role[h], NodeRole::Hub);
    }
    for (NodeId v = 0; v < n; ++v) {
        if (isl.role[v] == NodeRole::IslandNode) {
            EXPECT_EQ(member_of[v], isl.islandOf[v]);
            EXPECT_NE(member_of[v], IslandizationResult::kNoIsland)
                << "island node " << v << " not in any island";
        } else {
            EXPECT_EQ(isl.islandOf[v], IslandizationResult::kNoIsland);
            EXPECT_GT(isl.hubRound[v], 0);
        }
    }

    // 3. Edge coverage: every edge is island-island (same island),
    //    island-hub (hub in that island's hub list), or hub-hub (in
    //    the inter-hub map).
    std::set<Edge> inter_hub(isl.interHubEdges.begin(),
                             isl.interHubEdges.end());
    std::vector<std::set<NodeId>> island_hubs(isl.islands.size());
    for (size_t i = 0; i < isl.islands.size(); ++i)
        island_hubs[i].insert(isl.islands[i].hubs.begin(),
                              isl.islands[i].hubs.end());

    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v : g.neighbors(u)) {
            const bool u_hub = isl.role[u] == NodeRole::Hub;
            const bool v_hub = isl.role[v] == NodeRole::Hub;
            if (u_hub && v_hub) {
                EXPECT_TRUE(inter_hub.count(
                    {std::min(u, v), std::max(u, v)}))
                    << "hub-hub edge " << u << "-" << v
                    << " missing from inter-hub map";
            } else if (!u_hub && !v_hub) {
                EXPECT_EQ(isl.islandOf[u], isl.islandOf[v])
                    << "island-island edge " << u << "-" << v
                    << " crosses islands";
            } else {
                NodeId island_node = u_hub ? v : u;
                NodeId hub = u_hub ? u : v;
                EXPECT_TRUE(
                    island_hubs[isl.islandOf[island_node]].count(hub))
                    << "island-hub edge " << u << "-" << v
                    << " missing from island's hub list";
            }
        }
    }

    // 4. Inter-hub map contains only real hub-hub edges.
    for (const auto &[h1, h2] : isl.interHubEdges) {
        EXPECT_EQ(isl.role[h1], NodeRole::Hub);
        EXPECT_EQ(isl.role[h2], NodeRole::Hub);
        EXPECT_TRUE(g.hasEdge(h1, h2));
        EXPECT_LE(h1, h2);
    }

    // 5. Thresholds strictly decrease across rounds.
    for (size_t r = 1; r < isl.thresholds.size(); ++r)
        EXPECT_LT(isl.thresholds[r], isl.thresholds[r - 1]);
}

TEST(Locator, StarGraph)
{
    CsrGraph g = starGraph(10);
    auto isl = islandize(g);
    checkInvariants(g, isl, {});
    // The center must be a hub; each leaf a singleton island.
    EXPECT_EQ(isl.role[0], NodeRole::Hub);
    EXPECT_EQ(isl.islands.size(), 9u);
    for (const Island &island : isl.islands) {
        EXPECT_EQ(island.nodes.size(), 1u);
        ASSERT_EQ(island.hubs.size(), 1u);
        EXPECT_EQ(island.hubs[0], 0u);
    }
}

TEST(Locator, IsolatedNodesBecomeSingletonIslands)
{
    CsrGraph g = CsrGraph::fromEdges(5, {{0, 1}});
    auto isl = islandize(g);
    checkInvariants(g, isl, {});
    for (NodeId v = 2; v < 5; ++v) {
        EXPECT_EQ(isl.role[v], NodeRole::IslandNode);
        EXPECT_TRUE(isl.islands[isl.islandOf[v]].hubs.empty());
    }
}

TEST(Locator, CompleteGraphAllCovered)
{
    CsrGraph g = completeGraph(8);
    auto isl = islandize(g);
    checkInvariants(g, isl, {});
}

TEST(Locator, PathGraph)
{
    CsrGraph g = pathGraph(20);
    auto isl = islandize(g);
    checkInvariants(g, isl, {});
}

TEST(Locator, EmptyGraph)
{
    CsrGraph g = CsrGraph::fromEdges(0, {});
    auto isl = islandize(g);
    EXPECT_TRUE(isl.islands.empty());
    EXPECT_EQ(isl.numHubs(), 0u);
}

TEST(Locator, HubAndIslandGraphInvariants)
{
    HubIslandParams params;
    params.numNodes = 2000;
    params.seed = 7;
    auto hi = hubAndIslandGraph(params);
    LocatorConfig cfg;
    auto isl = islandize(hi.graph, cfg);
    checkInvariants(hi.graph, isl, cfg);
    EXPECT_GT(isl.islands.size(), 10u);
    EXPECT_GT(isl.numHubs(), 0u);
}

TEST(Locator, Deterministic)
{
    auto hi = hubAndIslandGraph({.numNodes = 500, .seed = 3});
    auto a = islandize(hi.graph);
    auto b = islandize(hi.graph);
    EXPECT_EQ(a.islands.size(), b.islands.size());
    EXPECT_EQ(a.interHubEdges, b.interHubEdges);
    for (size_t i = 0; i < a.islands.size(); ++i) {
        EXPECT_EQ(a.islands[i].nodes, b.islands[i].nodes);
        EXPECT_EQ(a.islands[i].hubs, b.islands[i].hubs);
    }
}

TEST(Locator, RespectsMaxIslandSize)
{
    auto hi = hubAndIslandGraph({.numNodes = 1000, .seed = 11});
    for (NodeId cmax : {1u, 2u, 4u, 8u, 64u}) {
        LocatorConfig cfg;
        cfg.maxIslandSize = cmax;
        auto isl = islandize(hi.graph, cfg);
        checkInvariants(hi.graph, isl, cfg);
    }
}

TEST(Locator, InvalidConfigRejected)
{
    CsrGraph g = pathGraph(4);
    LocatorConfig bad;
    bad.decay = 1.5;
    EXPECT_THROW(islandize(g, bad), std::invalid_argument);
    bad = {};
    bad.maxIslandSize = 0;
    EXPECT_THROW(islandize(g, bad), std::invalid_argument);
}

TEST(Locator, ConvergesInFewRoundsOnDatasets)
{
    // Paper Section 4.2: all non-zeros clustered "within several
    // rounds". Scaled-down surrogates keep the test fast.
    for (Dataset d : {Dataset::Cora, Dataset::Citeseer}) {
        auto data = buildDataset(d, 0.25);
        auto isl = islandize(data.graph);
        checkInvariants(data.graph, isl, {});
        EXPECT_LE(isl.numRounds, 16);
        EXPECT_GE(isl.numRounds, 2);
    }
}

TEST(Locator, StatsAreConsistent)
{
    auto hi = hubAndIslandGraph({.numNodes = 1500, .seed = 23});
    auto isl = islandize(hi.graph);
    const auto &s = isl.stats;
    EXPECT_EQ(s.islandsFound, isl.islands.size());
    EXPECT_EQ(s.tasksGenerated,
              s.tasksInterHub + s.tasksDroppedStartVisited +
              s.tasksDroppedCollision + s.tasksDroppedOversize +
              /* tasks that ran to completion: */ s.islandsFound -
              /* singleton cleanup islands aren't tasks: */
              std::count_if(isl.islands.begin(), isl.islands.end(),
                            [](const Island &i) {
                                return i.hubs.empty() &&
                                       i.nodes.size() == 1;
                            }));
    EXPECT_GE(s.edgesScanned, s.edgesScannedWasted);
}

/** Parameterized sweep: invariants hold across generator regimes. */
class LocatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>>
{};

TEST_P(LocatorPropertyTest, InvariantsHold)
{
    auto [nodes, intra_prob, cmax] = GetParam();
    HubIslandParams params;
    params.numNodes = static_cast<NodeId>(nodes);
    params.intraIslandProb = intra_prob;
    params.seed = static_cast<uint64_t>(nodes) * 31 + cmax;
    auto hi = hubAndIslandGraph(params);
    LocatorConfig cfg;
    cfg.maxIslandSize = static_cast<NodeId>(cmax);
    auto isl = islandize(hi.graph, cfg);
    checkInvariants(hi.graph, isl, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LocatorPropertyTest,
    ::testing::Combine(::testing::Values(64, 256, 1024),
                       ::testing::Values(0.2, 0.5, 0.9),
                       ::testing::Values(4, 16, 32)));

/** Random-graph property sweep: no planted structure at all. */
class LocatorRandomGraphTest
    : public ::testing::TestWithParam<std::tuple<int, double>>
{};

TEST_P(LocatorRandomGraphTest, InvariantsHoldOnEr)
{
    auto [nodes, avg_deg] = GetParam();
    CsrGraph g = erdosRenyi(static_cast<NodeId>(nodes), avg_deg,
                            static_cast<uint64_t>(nodes * avg_deg));
    LocatorConfig cfg;
    auto isl = islandize(g, cfg);
    checkInvariants(g, isl, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LocatorRandomGraphTest,
    ::testing::Combine(::testing::Values(50, 300, 2000),
                       ::testing::Values(1.0, 4.0, 16.0)));

/**
 * Parallel-engine mode: P2 concurrent TP-BFS engines interleaved
 * round-robin. Different interleavings may discover different island
 * sets, but every postcondition must hold for all of them.
 */
class LocatorParallelTest : public ::testing::TestWithParam<int>
{};

TEST_P(LocatorParallelTest, InvariantsHoldUnderConcurrency)
{
    auto hi = hubAndIslandGraph({.numNodes = 1500, .seed = 99});
    LocatorConfig cfg;
    cfg.parallelEngines = true;
    cfg.p2 = GetParam();
    auto isl = islandize(hi.graph, cfg);
    checkInvariants(hi.graph, isl, cfg);
    EXPECT_GT(isl.islands.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(EngineCounts, LocatorParallelTest,
                         ::testing::Values(1, 2, 8, 64, 256));

TEST(LocatorParallel, SingleEngineMatchesSequentialCoverage)
{
    // One engine serializes tasks exactly like the sequential mode:
    // the classification totals must agree.
    auto hi = hubAndIslandGraph({.numNodes = 1000, .seed = 5});
    LocatorConfig seq;
    LocatorConfig par;
    par.parallelEngines = true;
    par.p2 = 1;
    auto a = islandize(hi.graph, seq);
    auto b = islandize(hi.graph, par);
    EXPECT_EQ(a.numHubs(), b.numHubs());
    EXPECT_EQ(a.islands.size(), b.islands.size());
    EXPECT_EQ(a.interHubEdges, b.interHubEdges);
}

TEST(LocatorParallel, ConcurrencyTriggersCollisions)
{
    // With many engines racing inside the same regions, break
    // condition A (in-flight collision) must actually fire.
    auto hi = hubAndIslandGraph(
        {.numNodes = 3000, .meanIslandSize = 20, .seed = 17});
    LocatorConfig cfg;
    cfg.parallelEngines = true;
    cfg.p2 = 64;
    auto isl = islandize(hi.graph, cfg);
    checkInvariants(hi.graph, isl, cfg);
    EXPECT_GT(isl.stats.tasksDroppedCollision, 0u);
}

TEST(LocatorParallel, DeterministicGivenEngineCount)
{
    auto hi = hubAndIslandGraph({.numNodes = 800, .seed = 12});
    LocatorConfig cfg;
    cfg.parallelEngines = true;
    cfg.p2 = 16;
    auto a = islandize(hi.graph, cfg);
    auto b = islandize(hi.graph, cfg);
    EXPECT_EQ(a.islands.size(), b.islands.size());
    for (size_t i = 0; i < a.islands.size(); ++i)
        EXPECT_EQ(a.islands[i].nodes, b.islands[i].nodes);
}

TEST(LocatorParallel, DatasetSurrogates)
{
    for (Dataset d : {Dataset::Cora, Dataset::Pubmed}) {
        auto data = buildDataset(d, 0.25);
        LocatorConfig cfg;
        cfg.parallelEngines = true;
        auto isl = islandize(data.graph, cfg);
        checkInvariants(data.graph, isl, cfg);
    }
}

TEST(Locator, RmatGraphInvariants)
{
    CsrGraph g = rmat(4096, 20000, 0.57, 0.19, 0.19, 99);
    LocatorConfig cfg;
    auto isl = islandize(g, cfg);
    checkInvariants(g, isl, cfg);
}

} // namespace
} // namespace igcn
