/**
 * @file
 * GNN variant tests: GCN, GraphSage and GIN forward passes agree
 * between the explicit SpMM reference and the Island Consumer path —
 * redundancy removal is lossless for every variant the paper
 * evaluates, including GIN's self-loop-free aggregation.
 */

#include <gtest/gtest.h>

#include "gcn/variants.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace igcn {
namespace {

constexpr double kTol = 2e-4;

class VariantTest
    : public ::testing::TestWithParam<std::tuple<Model, int, double>>
{};

TEST_P(VariantTest, IslandPathMatchesReference)
{
    auto [model, nodes, intra] = GetParam();
    HubIslandParams params;
    params.numNodes = static_cast<NodeId>(nodes);
    params.intraIslandProb = intra;
    params.seed = static_cast<uint64_t>(nodes) * 3 + 1;
    auto hi = hubAndIslandGraph(params);
    auto isl = islandize(hi.graph);

    Rng rng(19);
    Features x = makeFeatures(hi.graph.numNodes(), 48, 0.1, rng);
    ModelConfig mc;
    mc.layers = {{48, 12}, {12, 5}};
    if (model == Model::GIN)
        mc.layers = {{48, 12}, {12, 12}, {12, 5}};
    auto weights = makeWeights(mc, rng);

    VariantOptions opt;
    opt.model = model;

    DenseMatrix golden = variantForward(hi.graph, x, weights, opt);
    AggOpStats stats;
    DenseMatrix island = variantForwardViaIslands(
        hi.graph, isl, x, weights, opt, {}, &stats);
    EXPECT_LT(maxAbsDiff(island, golden), kTol);
    EXPECT_GT(stats.baselineOps, 0u);
    EXPECT_LE(stats.optimizedOps(), stats.baselineOps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VariantTest,
    ::testing::Combine(::testing::Values(Model::GCN, Model::GraphSage,
                                         Model::GIN),
                       ::testing::Values(200, 600),
                       ::testing::Values(0.4, 0.8)));

TEST(Variants, GcnVariantMatchesReferenceForward)
{
    // The GCN variant path must equal the dedicated referenceForward.
    auto hi = hubAndIslandGraph({.numNodes = 250, .seed = 2});
    Rng rng(5);
    Features x = makeFeatures(250, 32, 0.2, rng);
    ModelConfig mc;
    mc.layers = {{32, 8}, {8, 3}};
    auto weights = makeWeights(mc, rng);

    VariantOptions opt;
    opt.model = Model::GCN;
    DenseMatrix a = variantForward(hi.graph, x, weights, opt);
    DenseMatrix b = referenceForward(hi.graph, x, weights);
    EXPECT_LT(maxAbsDiff(a, b), kTol);
}

TEST(Variants, GinEpsilonMatters)
{
    auto hi = hubAndIslandGraph({.numNodes = 150, .seed = 8});
    Rng rng(3);
    Features x = makeFeatures(150, 16, 0.3, rng);
    ModelConfig mc;
    mc.layers = {{16, 4}};
    auto weights = makeWeights(mc, rng);

    VariantOptions a, b;
    a.model = Model::GIN;
    a.ginEpsilon = 0.0f;
    b.model = Model::GIN;
    b.ginEpsilon = 1.0f;
    DenseMatrix out_a = variantForward(hi.graph, x, weights, a);
    DenseMatrix out_b = variantForward(hi.graph, x, weights, b);
    EXPECT_GT(maxAbsDiff(out_a, out_b), 1e-6);
}

TEST(Variants, SageRowsAreMeans)
{
    // GraphSage on an unweighted star: the center's output equals
    // the mean of all inputs (including itself) times W.
    CsrGraph g = starGraph(5);
    Rng rng(6);
    Features x;
    x.dense = DenseMatrix(5, 3);
    x.dense.fillRandom(rng);
    ModelConfig mc;
    mc.layers = {{3, 3}};
    // Identity weights isolate the aggregation semantics.
    std::vector<DenseMatrix> weights{DenseMatrix(3, 3)};
    for (int i = 0; i < 3; ++i)
        weights[0].at(i, i) = 1.0f;

    VariantOptions opt;
    opt.model = Model::GraphSage;
    DenseMatrix out = variantForward(g, x, weights, opt);
    for (size_t c = 0; c < 3; ++c) {
        float mean = 0.0f;
        for (NodeId v = 0; v < 5; ++v)
            mean += x.dense.at(v, c);
        mean /= 5.0f;
        EXPECT_NEAR(out.at(0, c), mean, 1e-5);
    }
}

TEST(Variants, GinAggregationExcludesSelfInSum)
{
    // GIN on a star with eps=0: center output = own + sum of leaves.
    CsrGraph g = starGraph(4);
    Features x;
    x.dense = DenseMatrix(4, 1);
    for (NodeId v = 0; v < 4; ++v)
        x.dense.at(v, 0) = static_cast<float>(v + 1);
    std::vector<DenseMatrix> weights{DenseMatrix(1, 1)};
    weights[0].at(0, 0) = 1.0f;

    VariantOptions opt;
    opt.model = Model::GIN;
    opt.ginEpsilon = 0.0f;
    DenseMatrix out = variantForward(g, x, weights, opt);
    // center (node 0, value 1): 1 + (2 + 3 + 4) = 10
    EXPECT_NEAR(out.at(0, 0), 10.0f, 1e-5);
    // leaf (node 1, value 2): 2 + 1 = 3
    EXPECT_NEAR(out.at(1, 0), 3.0f, 1e-5);
}

TEST(Variants, DatasetSurrogateAllVariants)
{
    auto data = buildDataset(Dataset::Citeseer, 0.15);
    auto isl = islandize(data.graph);
    Rng rng(11);
    Features x = makeFeatures(data.numNodes(), 64, 0.05, rng);
    for (Model m : {Model::GCN, Model::GraphSage, Model::GIN}) {
        ModelConfig mc;
        mc.layers = {{64, 8}, {8, 6}};
        auto weights = makeWeights(mc, rng);
        VariantOptions opt;
        opt.model = m;
        DenseMatrix golden =
            variantForward(data.graph, x, weights, opt);
        DenseMatrix island = variantForwardViaIslands(
            data.graph, isl, x, weights, opt);
        EXPECT_LT(maxAbsDiff(island, golden), kTol)
            << "variant " << static_cast<int>(m);
    }
}

} // namespace
} // namespace igcn
