/**
 * @file
 * Functional equivalence tests of the Island Consumer: redundancy
 * removal must be lossless (paper Section 4.3), i.e., the island-based
 * aggregation with pre-aggregation reuse and subtract-mode windows
 * produces the same numbers as the reference SpMM, up to float
 * reassociation.
 */

#include <gtest/gtest.h>

#include "core/consumer.hpp"
#include "core/locator.hpp"
#include "gcn/reference.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace igcn {
namespace {

constexpr double kTol = 2e-4;

TEST(Consumer, AggregationMatchesBinarySpmm)
{
    auto hi = hubAndIslandGraph({.numNodes = 400, .seed = 5});
    const CsrGraph &g = hi.graph;
    auto isl = islandize(g);

    Rng rng(17);
    DenseMatrix y(g.numNodes(), 8);
    y.fillRandom(rng);

    CsrMatrix a_bin = binaryAdjacencyWithSelfLoops(g);
    DenseMatrix expected = spmmPullRowWise(a_bin, y);

    for (bool adaptive : {false, true}) {
        for (int k : {0, 2, 4, 8}) {
            RedundancyConfig cfg;
            cfg.adaptiveK = adaptive;
            cfg.k = k;
            DenseMatrix z = aggregateViaIslands(g, isl, y, cfg);
            EXPECT_LT(maxAbsDiff(z, expected), kTol)
                << "k=" << k << " adaptive=" << adaptive;
        }
    }
}

TEST(Consumer, OpAccountingMatchesExecution)
{
    auto hi = hubAndIslandGraph({.numNodes = 600, .seed = 9});
    const CsrGraph &g = hi.graph;
    auto isl = islandize(g);

    RedundancyConfig cfg;
    AggOpStats exec_stats;
    Rng rng(3);
    DenseMatrix y(g.numNodes(), 4);
    y.fillRandom(rng);
    aggregateViaIslands(g, isl, y, cfg, &exec_stats);

    PruningReport report = countPruning(g, isl, cfg);
    EXPECT_EQ(exec_stats.baselineOps, report.islandOps.baselineOps);
    EXPECT_EQ(exec_stats.optimizedOps(),
              report.islandOps.optimizedOps());
}

TEST(Consumer, FullForwardMatchesReference)
{
    auto data = buildDataset(Dataset::Cora, 0.15);
    const CsrGraph &g = data.graph;
    auto isl = islandize(g);

    Rng rng(21);
    Features x = makeFeatures(g.numNodes(), 64, 0.05, rng);
    ModelConfig mc;
    mc.layers = {{64, 16}, {16, 7}};
    auto weights = makeWeights(mc, rng);

    DenseMatrix expected = referenceForward(g, x, weights);
    RedundancyConfig cfg;
    DenseMatrix actual = gcnForwardViaIslands(g, isl, x, weights, cfg);
    EXPECT_LT(maxAbsDiff(actual, expected), kTol);
}

TEST(Consumer, SparseFeaturesForwardMatchesReference)
{
    auto hi = hubAndIslandGraph({.numNodes = 300, .seed = 31});
    const CsrGraph &g = hi.graph;
    auto isl = islandize(g);

    Rng rng(8);
    Features x = makeFeatures(g.numNodes(), 512, 0.01, rng,
                              /*force_sparse=*/true);
    ASSERT_TRUE(x.sparse);
    ModelConfig mc;
    mc.layers = {{512, 8}, {8, 4}};
    auto weights = makeWeights(mc, rng);

    DenseMatrix expected = referenceForward(g, x, weights);
    DenseMatrix actual =
        gcnForwardViaIslands(g, isl, x, weights, RedundancyConfig{});
    EXPECT_LT(maxAbsDiff(actual, expected), kTol);
}

TEST(Consumer, PruningBaselineEqualsAdjacencyNnz)
{
    // The baseline aggregation op count must equal nnz(A) + N (the +I
    // self loops) — this proves the island bitmaps plus the inter-hub
    // map cover every edge exactly once.
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        auto hi = hubAndIslandGraph({.numNodes = 800, .seed = seed});
        const CsrGraph &g = hi.graph;
        auto isl = islandize(g);
        PruningReport report = countPruning(g, isl, {});
        EXPECT_EQ(report.baselineAggOps(), g.numEdges() + g.numNodes());
    }
}

TEST(Consumer, PruningIsNonNegativeWithAdaptiveK)
{
    auto hi = hubAndIslandGraph(
        {.numNodes = 1000, .intraIslandProb = 0.8, .seed = 13});
    auto isl = islandize(hi.graph);
    RedundancyConfig cfg;
    cfg.adaptiveK = true;
    PruningReport report = countPruning(hi.graph, isl, cfg);
    // adaptiveK includes the "no removal" option, so optimized ops can
    // never exceed baseline.
    EXPECT_LE(report.optimizedAggOps(), report.baselineAggOps());
    EXPECT_GE(report.aggPruningRate(), 0.0);
    // Dense planted islands must produce substantial pruning.
    EXPECT_GT(report.aggPruningRate(), 0.15);
}

TEST(Consumer, DenseIslandPruningApproachesIdeal)
{
    // Hub H (node 0) attached to a 10-clique (nodes 1..10) plus six
    // extra leaves to push H's degree above the clique's. The clique
    // becomes one island with a near-all-ones bitmap; subtract mode
    // collapses whole windows to a single pre-sum add.
    std::vector<Edge> edges;
    for (NodeId u = 1; u <= 10; ++u) {
        edges.emplace_back(0, u);
        for (NodeId v = u + 1; v <= 10; ++v)
            edges.emplace_back(u, v);
    }
    for (NodeId leaf = 11; leaf < 17; ++leaf)
        edges.emplace_back(0, leaf);
    CsrGraph g = CsrGraph::fromEdges(17, edges);
    LocatorConfig lcfg;
    lcfg.initialThreshold = 12; // only H (degree 16) qualifies
    auto isl = islandize(g, lcfg);
    ASSERT_EQ(isl.role[0], NodeRole::Hub);

    RedundancyConfig cfg;
    cfg.adaptiveK = true;
    PruningReport report = countPruning(g, isl, cfg);
    EXPECT_GT(report.aggPruningRate(), 0.5);

    // Losslessness on the same fixture.
    Rng rng(4);
    DenseMatrix y(17, 3);
    y.fillRandom(rng);
    CsrMatrix a_bin = binaryAdjacencyWithSelfLoops(g);
    DenseMatrix expected = spmmPullRowWise(a_bin, y);
    DenseMatrix actual = aggregateViaIslands(g, isl, y, cfg);
    EXPECT_LT(maxAbsDiff(actual, expected), kTol);
}

TEST(Consumer, Figure7StyleExample)
{
    // Recreate the spirit of Figure 7: island nodes {b, c} and
    // {d, e, f, g} are mutual shared neighbors; one hub H connected
    // to the whole island (plus leaves so its degree dominates).
    // Nodes: H=0, a=1, b=2, c=3, d=4, e=5, f=6, g=7, leaves 8..11.
    std::vector<Edge> edges = {
        {1, 2}, {1, 3},                      // a-b, a-c
        {2, 4}, {2, 5}, {2, 6}, {2, 7},      // b-{d,e,f,g}
        {3, 4}, {3, 5}, {3, 6}, {3, 7},      // c-{d,e,f,g}
    };
    for (NodeId v = 1; v <= 7; ++v)
        edges.emplace_back(0, v);            // H-{a..g}
    for (NodeId leaf = 8; leaf < 12; ++leaf)
        edges.emplace_back(0, leaf);         // H's extra leaves
    CsrGraph g = CsrGraph::fromEdges(12, edges);
    LocatorConfig lcfg;
    lcfg.initialThreshold = 8; // only H (degree 11) qualifies
    auto isl = islandize(g, lcfg);

    // H must be a hub; a..g one island; leaves singleton islands.
    EXPECT_EQ(isl.role[0], NodeRole::Hub);
    size_t big_islands = 0;
    for (const Island &island : isl.islands) {
        if (island.nodes.size() == 7u)
            big_islands++;
        else
            EXPECT_EQ(island.nodes.size(), 1u);
    }
    EXPECT_EQ(big_islands, 1u);

    RedundancyConfig cfg;
    cfg.adaptiveK = false;
    cfg.k = 4;
    PruningReport with_removal = countPruning(g, isl, cfg);
    // Shared-neighbor structure must yield a strictly cheaper plan.
    EXPECT_LT(with_removal.optimizedAggOps(),
              with_removal.baselineAggOps());

    // And the numbers still match the reference exactly.
    Rng rng(2);
    DenseMatrix y(12, 5);
    y.fillRandom(rng);
    CsrMatrix a_bin = binaryAdjacencyWithSelfLoops(g);
    DenseMatrix expected = spmmPullRowWise(a_bin, y);
    DenseMatrix actual = aggregateViaIslands(g, isl, y, cfg);
    EXPECT_LT(maxAbsDiff(actual, expected), kTol);
}

/** Property sweep: functional equivalence across regimes and k. */
class ConsumerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>>
{};

TEST_P(ConsumerPropertyTest, LosslessAcrossRegimes)
{
    auto [nodes, intra, k] = GetParam();
    HubIslandParams params;
    params.numNodes = static_cast<NodeId>(nodes);
    params.intraIslandProb = intra;
    params.seed = static_cast<uint64_t>(nodes) ^ (k * 1315423911ull);
    auto hi = hubAndIslandGraph(params);
    auto isl = islandize(hi.graph);

    Rng rng(static_cast<uint64_t>(k) + nodes);
    DenseMatrix y(hi.graph.numNodes(), 6);
    y.fillRandom(rng);

    CsrMatrix a_bin = binaryAdjacencyWithSelfLoops(hi.graph);
    DenseMatrix expected = spmmPullRowWise(a_bin, y);

    RedundancyConfig cfg;
    cfg.adaptiveK = false;
    cfg.k = k;
    DenseMatrix actual = aggregateViaIslands(hi.graph, isl, y, cfg);
    EXPECT_LT(maxAbsDiff(actual, expected), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConsumerPropertyTest,
    ::testing::Combine(::testing::Values(128, 512),
                       ::testing::Values(0.3, 0.7),
                       ::testing::Values(0, 2, 3, 4, 8, 16)));

} // namespace
} // namespace igcn
