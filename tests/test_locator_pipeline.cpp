/**
 * @file
 * Cycle-level locator pipeline tests: the trace-driven model must
 * agree with the analytic per-round timeline used by the I-GCN
 * timing model within a small factor, respond correctly to the
 * parallelism knobs, and report sane occupancy/queue statistics.
 */

#include <gtest/gtest.h>

#include "accel/locator_pipeline.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace igcn {
namespace {

IslandizationResult
tracedIslandize(const CsrGraph &g, LocatorConfig cfg = {})
{
    cfg.recordTrace = true;
    return islandize(g, cfg);
}

/** Analytic per-round estimate (mirrors igcn_model's timeline). */
Cycles
analyticCycles(const IslandizationResult &isl, const LocatorConfig &cfg)
{
    Cycles total = 0;
    for (const RoundInfo &info : isl.rounds) {
        Cycles detect = info.nodesChecked / std::max(1, cfg.p1) + 1;
        Cycles bfs = info.edgesScanned /
            std::max(1, cfg.p2 * cfg.bfsScanWidth) + 1;
        total += std::max(detect, bfs) + 16;
    }
    return total;
}

TEST(LocatorPipeline, RequiresTrace)
{
    auto hi = hubAndIslandGraph({.numNodes = 200, .seed = 1});
    auto isl = islandize(hi.graph); // no trace
    EXPECT_THROW(simulateLocatorPipeline(isl, {}),
                 std::invalid_argument);
}

TEST(LocatorPipeline, AgreesWithAnalyticTimeline)
{
    auto hi = hubAndIslandGraph({.numNodes = 4000, .seed = 31});
    LocatorConfig cfg;
    auto isl = tracedIslandize(hi.graph, cfg);
    auto pipeline = simulateLocatorPipeline(isl, cfg);
    Cycles analytic = analyticCycles(isl, cfg);

    EXPECT_GT(pipeline.totalCycles, 0u);
    // The pipeline model adds fetch latency and dispatch overhead
    // the analytic model hides, so it should be slower but within a
    // small factor.
    EXPECT_GE(pipeline.totalCycles, analytic / 2);
    EXPECT_LE(pipeline.totalCycles, analytic * 6);
}

TEST(LocatorPipeline, MoreEnginesNeverSlower)
{
    auto hi = hubAndIslandGraph({.numNodes = 3000, .seed = 5});
    LocatorConfig few, many;
    few.p2 = 4;
    many.p2 = 128;
    auto isl_few = tracedIslandize(hi.graph, few);
    auto isl_many = tracedIslandize(hi.graph, many);
    auto slow = simulateLocatorPipeline(isl_few, few);
    auto fast = simulateLocatorPipeline(isl_many, many);
    EXPECT_GE(slow.totalCycles, fast.totalCycles);
    // Few engines saturate: occupancy must be higher.
    EXPECT_GT(slow.avgEngineOccupancy,
              fast.avgEngineOccupancy * 0.99);
}

TEST(LocatorPipeline, WiderScanFaster)
{
    auto hi = hubAndIslandGraph({.numNodes = 3000, .seed = 8});
    LocatorConfig narrow, wide;
    narrow.bfsScanWidth = 1;
    wide.bfsScanWidth = 8;
    auto isl = tracedIslandize(hi.graph, narrow);
    auto a = simulateLocatorPipeline(isl, narrow);
    auto b = simulateLocatorPipeline(isl, wide);
    EXPECT_GE(a.totalCycles, b.totalCycles);
}

TEST(LocatorPipeline, StatsSane)
{
    auto data = buildDataset(Dataset::Cora, 0.5);
    LocatorConfig cfg;
    auto isl = tracedIslandize(data.graph, cfg);
    auto stats = simulateLocatorPipeline(isl, cfg);
    ASSERT_EQ(stats.rounds.size(), isl.rounds.size());
    for (const RoundPipelineStats &r : stats.rounds) {
        EXPECT_GE(r.engineOccupancy, 0.0);
        EXPECT_LE(r.engineOccupancy, 1.0);
        EXPECT_GE(r.totalCycles, r.detectCycles);
    }
    EXPECT_GT(stats.hubBufferHighWater, 0u);
    EXPECT_LE(stats.avgEngineOccupancy, 1.0);
}

TEST(LocatorPipeline, TraceAccountsEveryTask)
{
    auto hi = hubAndIslandGraph({.numNodes = 1200, .seed = 44});
    LocatorConfig cfg;
    cfg.recordTrace = true;
    auto isl = islandize(hi.graph, cfg);
    // Trace entries == tasks generated (every generated task has an
    // outcome record).
    EXPECT_EQ(isl.taskTrace.size(), isl.stats.tasksGenerated);
    uint64_t islands_in_trace = 0;
    uint64_t traced_edges = 0;
    for (const TaskTrace &t : isl.taskTrace) {
        if (t.outcome == TaskOutcome::IslandFound)
            islands_in_trace++;
        traced_edges += t.edgesScanned;
    }
    // Singleton cleanup islands (degree-0 nodes) are not tasks.
    EXPECT_LE(islands_in_trace, isl.islands.size());
    EXPECT_EQ(traced_edges, isl.stats.edgesScanned);
}

} // namespace
} // namespace igcn
