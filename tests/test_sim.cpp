/**
 * @file
 * Simulation substrate tests: event ordering, DRAM bandwidth
 * accounting, FIFO semantics, stats registry.
 */

#include <gtest/gtest.h>

#include "sim/dram.hpp"
#include "sim/engine.hpp"
#include "sim/fifo.hpp"
#include "sim/stats.hpp"

namespace igcn {
namespace {

TEST(SimEngine, EventsRunInTimeOrder)
{
    SimEngine engine;
    std::vector<int> order;
    engine.schedule(30, [&] { order.push_back(3); });
    engine.schedule(10, [&] { order.push_back(1); });
    engine.schedule(20, [&] { order.push_back(2); });
    Cycles end = engine.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(end, 30u);
}

TEST(SimEngine, TiesRunInScheduleOrder)
{
    SimEngine engine;
    std::vector<int> order;
    engine.schedule(5, [&] { order.push_back(1); });
    engine.schedule(5, [&] { order.push_back(2); });
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimEngine, HandlersCanScheduleMore)
{
    SimEngine engine;
    int fired = 0;
    engine.schedule(1, [&] {
        fired++;
        engine.schedule(1, [&] { fired++; });
    });
    Cycles end = engine.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, 2u);
}

TEST(Dram, BandwidthAccounting)
{
    DramConfig cfg;
    cfg.bandwidthGBps = 33.0; // 100 bytes/cycle at 330 MHz
    cfg.coreClockMHz = 330.0;
    cfg.streamEfficiency = 1.0;
    cfg.requestLatency = 0;
    DramModel dram(cfg);
    EXPECT_NEAR(dram.bytesPerCycle(), 100.0, 1e-9);

    Cycles done = dram.access(0, 1000, AccessPattern::Streaming);
    EXPECT_EQ(done, 10u);
    EXPECT_EQ(dram.totalBytes(), 1000u);
    EXPECT_EQ(dram.busyCycles(), 10u);
}

TEST(Dram, ChannelSerializesRequests)
{
    DramConfig cfg;
    cfg.bandwidthGBps = 33.0;
    cfg.coreClockMHz = 330.0;
    cfg.streamEfficiency = 1.0;
    cfg.requestLatency = 0;
    DramModel dram(cfg);
    dram.access(0, 1000, AccessPattern::Streaming);   // busy to 10
    Cycles done = dram.access(5, 1000, AccessPattern::Streaming);
    EXPECT_EQ(done, 20u); // queued behind the first request
}

TEST(Dram, SmallRandomRequestsSlower)
{
    // Short random touches pay the row-activation penalty; the
    // penalty amortizes away for multi-KiB bursts.
    DramModel stream_chan, random_chan;
    Cycles stream = 0, random = 0;
    for (int i = 0; i < 100; ++i) {
        stream = stream_chan.access(0, 256, AccessPattern::Streaming);
        random = random_chan.access(0, 256, AccessPattern::Random);
    }
    EXPECT_GT(random, stream);
    EXPECT_EQ(stream_chan.streamedBytes(), 25600u);
    EXPECT_EQ(random_chan.randomBytes(), 25600u);

    // Large random bursts approach streaming efficiency.
    DramModel big_random, big_stream;
    Cycles rb = big_random.access(0, 1 << 20, AccessPattern::Random);
    Cycles sb = big_stream.access(0, 1 << 20, AccessPattern::Streaming);
    EXPECT_LT(static_cast<double>(rb),
              static_cast<double>(sb) * 1.05);
}

TEST(Fifo, PushPopOrder)
{
    BoundedFifo<int> fifo(2);
    EXPECT_TRUE(fifo.empty());
    EXPECT_TRUE(fifo.push(1));
    EXPECT_TRUE(fifo.push(2));
    EXPECT_TRUE(fifo.full());
    EXPECT_FALSE(fifo.push(3));
    EXPECT_EQ(fifo.pop().value(), 1);
    EXPECT_EQ(fifo.pop().value(), 2);
    EXPECT_FALSE(fifo.pop().has_value());
    EXPECT_EQ(fifo.highWater(), 2u);
}

TEST(Stats, RegistryBasics)
{
    StatsRegistry stats;
    stats.add("a", 1.5);
    stats.add("a", 2.5);
    stats.set("b", 7.0);
    EXPECT_DOUBLE_EQ(stats.get("a"), 4.0);
    EXPECT_DOUBLE_EQ(stats.get("b"), 7.0);
    EXPECT_DOUBLE_EQ(stats.get("missing"), 0.0);
    EXPECT_TRUE(stats.has("a"));
    EXPECT_FALSE(stats.has("missing"));
    EXPECT_NE(stats.toString().find("a 4"), std::string::npos);
}

} // namespace
} // namespace igcn
