/**
 * @file
 * Serving subsystem tests — the acceptance criteria of the online
 * inference server:
 *
 *  (a) batched L-hop inference is bit-identical to one-at-a-time
 *      whole-graph reference inference for the requested nodes;
 *  (b) virtual-clock replay is deterministic: results, epochs and
 *      batch composition are identical at IGCN_THREADS 1/2/8 and
 *      per-request results identical across batch-cap settings;
 *  (c) interleaved updates never produce a torn read: concurrent
 *      readers + an update writer always see a complete epoch whose
 *      results match that epoch's whole-graph reference
 *      (ASan/UBSan-clean in the sanitizer CI job);
 *  (d) the contracts above survive edge *deletions*: mixed
 *      add/remove epochs stay bit-identical to the per-epoch
 *      whole-graph reference, and deletion-heavy traces replay
 *      deterministically across batch caps and thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <vector>

#include "gcn/reference.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"
#include "spmm/spmm.hpp"

namespace igcn {
namespace {

using namespace igcn::serve;

struct Workload
{
    CsrGraph graph;
    DenseMatrix features;
    std::vector<DenseMatrix> weights;
    Features asFeatures() const
    {
        Features f;
        f.dense = features;
        return f;
    }
};

Workload
makeWorkload(NodeId nodes, int num_features, int hidden, int classes,
             int layers, uint64_t seed)
{
    Workload w;
    w.graph = hubAndIslandGraph({.numNodes = nodes, .seed = seed}).graph;
    Rng rng(seed * 7 + 1);
    w.features = DenseMatrix(nodes, num_features);
    w.features.fillRandom(rng, 1.0f);
    ModelConfig mc;
    mc.layers.push_back({num_features, hidden});
    for (int l = 2; l < layers; ++l)
        mc.layers.push_back({hidden, hidden});
    mc.layers.push_back({hidden, classes});
    w.weights = makeWeights(mc, rng);
    return w;
}

bool
bitEqualRow(const std::vector<float> &logits, const DenseMatrix &ref,
            NodeId row)
{
    return logits.size() == ref.cols() &&
           std::memcmp(logits.data(), ref.row(row),
                       logits.size() * sizeof(float)) == 0;
}

std::vector<Request>
inferenceBatch(const std::vector<NodeId> &nodes)
{
    std::vector<Request> batch;
    for (size_t i = 0; i < nodes.size(); ++i) {
        Request r;
        r.kind = RequestKind::Inference;
        r.id = i;
        r.node = nodes[i];
        batch.push_back(std::move(r));
    }
    return batch;
}

// ------------------------------------------------------ criterion (a)

TEST(ServingEngine, BatchedLHopBitIdenticalToWholeGraphReference)
{
    for (int layers : {2, 3}) {
        Workload w = makeWorkload(1200, 24, 16, 7, layers, 5);
        DenseMatrix ref =
            referenceForward(w.graph, w.asFeatures(), w.weights);

        auto hub = std::make_shared<GraphStateHub>(
            makeGraphState(w.graph, LocatorConfig{}));
        // wholeGraphFraction > 1: always take the subgraph path.
        InferenceEngine engine(hub, w.features, w.weights, 1.1);

        Rng rng(33);
        for (size_t batch_size : {size_t{1}, size_t{7}, size_t{33}}) {
            std::vector<NodeId> targets;
            for (size_t i = 0; i < batch_size; ++i)
                targets.push_back(static_cast<NodeId>(
                    rng.nextBounded(w.graph.numNodes())));
            if (batch_size >= 7)
                targets[1] = targets[0]; // duplicate target

            BatchExecInfo info;
            auto results =
                engine.runBatch(inferenceBatch(targets), &info);
            ASSERT_EQ(results.size(), targets.size());
            EXPECT_FALSE(info.wholeGraph);
            EXPECT_GT(info.subNodes, 0u);
            for (const InferenceResult &r : results)
                EXPECT_TRUE(bitEqualRow(r.logits, ref, r.node))
                    << "layers " << layers << " node " << r.node;
        }

        // The whole-graph fallback must produce the same bits.
        InferenceEngine whole(hub, w.features, w.weights, 0.0);
        BatchExecInfo info;
        auto results = whole.runBatch(
            inferenceBatch({3, 99, 701}), &info);
        EXPECT_TRUE(info.wholeGraph);
        for (const InferenceResult &r : results)
            EXPECT_TRUE(bitEqualRow(r.logits, ref, r.node));
    }
}

// ------------------------------------------------------ criterion (b)

/** Signature of one replay: per-request (epoch, logits) + batch map. */
struct ReplaySignature
{
    std::map<uint64_t, std::pair<uint64_t, std::vector<float>>> byId;
    std::map<uint64_t, uint32_t> batchSizeById;
    std::vector<uint64_t> updateEpochs;

    static ReplaySignature
    of(const ReplayReport &rep)
    {
        ReplaySignature s;
        for (const InferenceResult &r : rep.inference) {
            s.byId[r.id] = {r.epoch, r.logits};
            s.batchSizeById[r.id] = r.batchSize;
        }
        for (const UpdateResult &u : rep.updates)
            s.updateEpochs.push_back(u.epoch);
        return s;
    }
};

TEST(ServingReplay, DeterministicAcrossThreadCounts)
{
    Workload w = makeWorkload(800, 16, 12, 6, 2, 9);
    TraceConfig tc;
    tc.numInference = 600;
    tc.numUpdates = 60;
    tc.seed = 3;
    const std::vector<Request> trace =
        makeSyntheticTrace(w.graph, tc);

    std::vector<ReplaySignature> sigs;
    std::vector<std::string> summaries;
    for (int threads : {1, 2, 8}) {
        setGlobalThreads(threads);
        Server server(w.graph, w.features, w.weights, ServerConfig{});
        ReplayReport rep = server.runTrace(trace);
        EXPECT_EQ(rep.inference.size(), tc.numInference);
        sigs.push_back(ReplaySignature::of(rep));
        summaries.push_back(server.stats().summary());
    }
    setGlobalThreads(0);
    for (size_t i = 1; i < sigs.size(); ++i) {
        EXPECT_EQ(sigs[0].byId, sigs[i].byId)
            << "thread count run " << i;
        EXPECT_EQ(sigs[0].batchSizeById, sigs[i].batchSizeById);
        EXPECT_EQ(sigs[0].updateEpochs, sigs[i].updateEpochs);
        // Virtual-clock stats (latencies, histogram) are part of the
        // determinism contract too.
        EXPECT_EQ(summaries[0], summaries[i]);
    }
}

TEST(ServingReplay, SparseFeaturesBitIdenticalToDenseAcrossThreads)
{
    // The acceptance criterion's serving half: a server holding
    // 0.01-density CSR features must replay a mixed trace (updates
    // included, so both the whole-graph and the gathered L-hop
    // subgraph paths run) byte-identically to a server holding the
    // densified image, at IGCN_THREADS 1, 4 and 8 and across batch
    // caps that exercise single-node and large-batch scheduling.
    Workload w = makeWorkload(800, 96, 12, 6, 2, 9);
    Rng rng(51);
    w.features.fillRandomSparse(rng, 0.01, 1.0f);
    Features sparse;
    sparse.sparse = true;
    sparse.csr = denseToCsrFeatures(w.features);
    ASSERT_LT(sparse.csr.density(), 0.05);

    TraceConfig tc;
    tc.numInference = 300;
    tc.numUpdates = 30;
    tc.seed = 8;
    const std::vector<Request> trace =
        makeSyntheticTrace(w.graph, tc);

    for (uint32_t cap : {1u, 64u}) {
        ServerConfig sc;
        sc.scheduler.maxBatch = cap;
        setGlobalThreads(1);
        Server dense(w.graph, w.features, w.weights, sc);
        const ReplaySignature want =
            ReplaySignature::of(dense.runTrace(trace));
        for (int threads : {1, 4, 8}) {
            setGlobalThreads(threads);
            Server server(w.graph, sparse, w.weights, sc);
            ReplaySignature got =
                ReplaySignature::of(server.runTrace(trace));
            // map<.., vector<float>> equality is exact float
            // equality: the sparse path must reproduce the dense
            // bytes, not approximate them.
            EXPECT_EQ(want.byId, got.byId)
                << "cap " << cap << ", " << threads << " threads";
            EXPECT_EQ(want.batchSizeById, got.batchSizeById);
            EXPECT_EQ(want.updateEpochs, got.updateEpochs);
        }
    }
    setGlobalThreads(0);
}

TEST(ServingReplay, PerRequestResultsInvariantAcrossBatchCaps)
{
    Workload w = makeWorkload(700, 16, 12, 6, 2, 13);
    TraceConfig tc;
    tc.numInference = 400;
    tc.numUpdates = 40;
    tc.seed = 4;
    const std::vector<Request> trace =
        makeSyntheticTrace(w.graph, tc);

    std::vector<ReplaySignature> sigs;
    for (uint32_t cap : {1u, 4u, 64u}) {
        ServerConfig sc;
        sc.scheduler.maxBatch = cap;
        Server server(w.graph, w.features, w.weights, sc);
        sigs.push_back(ReplaySignature::of(server.runTrace(trace)));
    }
    // Batching may not change any request's result: FCFS order makes
    // the set of updates applied before a request a pure function of
    // the trace, so its logits are cap-invariant bit-exactly. The
    // epoch *number* is config metadata — under continuous batching
    // the inference cap shifts the busy horizon and with it how many
    // updates coalesce per application — so only the logits are
    // compared across caps (epoch equality across thread counts at a
    // fixed cap is pinned by DeterministicAcrossThreadCounts).
    const auto logitsById = [](const ReplaySignature &s) {
        std::map<uint64_t, std::vector<float>> m;
        for (const auto &[id, er] : s.byId)
            m[id] = er.second;
        return m;
    };
    for (size_t i = 1; i < sigs.size(); ++i) {
        EXPECT_EQ(logitsById(sigs[0]), logitsById(sigs[i]))
            << "cap run " << i;
        // Every cap applies the same update stream: epochs advance by
        // 1 per application and cover the same events.
        EXPECT_FALSE(sigs[i].updateEpochs.empty());
        for (size_t e = 1; e < sigs[i].updateEpochs.size(); ++e)
            EXPECT_EQ(sigs[i].updateEpochs[e],
                      sigs[i].updateEpochs[e - 1] + 1);
    }
}

// --------------------------------------- aggregation cache (tentpole)

TEST(ServingAggCache, CacheEnabledReplayBitIdenticalToDisabled)
{
    // The cache's whole contract in one pin: with the island-
    // aggregation cache on, every request's logits are byte-
    // identical to the uncached server's — across a mixed trace
    // (updates invalidate islands mid-run), at IGCN_THREADS 1, 4
    // and 8 — and the cache actually engaged (hits > 0, so the test
    // cannot pass vacuously). Epoch numbers and batch composition
    // may legitimately differ: cache hits shrink the virtual service
    // cost, shifting the busy horizon, and batch formation is a
    // function of it; the FCFS dispatch order — and therefore the
    // update set seen by each request — is not.
    Workload w = makeWorkload(900, 16, 12, 6, 2, 17);
    TraceConfig tc;
    tc.numInference = 400;
    tc.numUpdates = 40;
    tc.seed = 11;
    const std::vector<Request> trace =
        makeSyntheticTrace(w.graph, tc);

    const auto logitsById = [](const ReplayReport &rep) {
        std::map<uint64_t, std::vector<float>> m;
        for (const InferenceResult &r : rep.inference)
            m[r.id] = r.logits;
        return m;
    };

    setGlobalThreads(1);
    Server plain(w.graph, w.features, w.weights, ServerConfig{});
    const auto want = logitsById(plain.runTrace(trace));

    ServerConfig cc;
    cc.aggCache.enabled = true;
    std::vector<ReplaySignature> cachedSigs;
    for (int threads : {1, 4, 8}) {
        setGlobalThreads(threads);
        Server cached(w.graph, w.features, w.weights, cc);
        ReplayReport rep = cached.runTrace(trace);
        EXPECT_EQ(want, logitsById(rep))
            << "cached logits diverged at " << threads << " threads";
        EXPECT_GT(cached.stats().aggCacheHits(), 0u);
        EXPECT_GT(cached.stats().aggCacheFills(), 0u);
        // Updates ran, so invalidation ran too.
        EXPECT_GT(cached.stats().aggCacheInvalidated() +
                      cached.stats().aggCacheMisses(),
                  0u);
        cachedSigs.push_back(ReplaySignature::of(rep));
    }
    setGlobalThreads(0);
    // Among cache-enabled runs the full signature (epochs included)
    // is thread-count-exact: determinism survives the cache.
    for (size_t i = 1; i < cachedSigs.size(); ++i) {
        EXPECT_EQ(cachedSigs[0].byId, cachedSigs[i].byId);
        EXPECT_EQ(cachedSigs[0].updateEpochs,
                  cachedSigs[i].updateEpochs);
        EXPECT_EQ(cachedSigs[0].batchSizeById,
                  cachedSigs[i].batchSizeById);
    }
}

TEST(ServingAggCache, SparseFeatureServerBitIdenticalWithCache)
{
    // The sparse first-layer path fills and consults the same cache;
    // cached sparse == uncached dense, bit-exactly.
    Workload w = makeWorkload(600, 64, 12, 6, 2, 23);
    Rng rng(77);
    w.features.fillRandomSparse(rng, 0.02, 1.0f);
    Features sparse;
    sparse.sparse = true;
    sparse.csr = denseToCsrFeatures(w.features);

    TraceConfig tc;
    tc.numInference = 200;
    tc.numUpdates = 20;
    tc.seed = 5;
    const std::vector<Request> trace =
        makeSyntheticTrace(w.graph, tc);

    const auto logitsById = [](const ReplayReport &rep) {
        std::map<uint64_t, std::vector<float>> m;
        for (const InferenceResult &r : rep.inference)
            m[r.id] = r.logits;
        return m;
    };
    Server dense(w.graph, w.features, w.weights, ServerConfig{});
    const auto want = logitsById(dense.runTrace(trace));

    ServerConfig cc;
    cc.aggCache.enabled = true;
    Server cached(w.graph, sparse, w.weights, cc);
    EXPECT_EQ(want, logitsById(cached.runTrace(trace)));
    EXPECT_GT(cached.stats().aggCacheHits(), 0u);
}

TEST(ServingAggCache, LookupInsertAndDeterministicLruEviction)
{
    AggCacheConfig cfg;
    cfg.enabled = true;
    cfg.maxBytes = 10 * sizeof(float); // room for two 5-float rows
    AggCache cache(cfg);
    cache.advance(1, false, 0, {});

    const std::vector<float> a{1, 2, 3, 4, 5};
    const std::vector<float> b{6, 7, 8, 9, 10};
    cache.insert(1, 0, a);
    cache.insert(1, 1, b);
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().bytes, 10 * sizeof(float));

    float buf[5];
    // Hit returns the exact bytes and refreshes island 0's tick.
    ASSERT_TRUE(cache.lookup(1, 0, 5, buf));
    EXPECT_EQ(0, std::memcmp(buf, a.data(), sizeof(buf)));
    // Wrong length is a miss, never a partial copy.
    EXPECT_FALSE(cache.lookup(1, 0, 4, buf));
    // Wrong epoch is a miss (racing-advance shape).
    EXPECT_FALSE(cache.lookup(2, 0, 5, buf));

    // A third entry breaches the budget; island 1 has the lowest
    // tick (0 was refreshed by the hit above) and must be evicted.
    cache.insert(1, 2, {11, 12, 13, 14, 15});
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_TRUE(cache.lookup(1, 0, 5, buf));
    EXPECT_FALSE(cache.lookup(1, 1, 5, buf));
    EXPECT_TRUE(cache.lookup(1, 2, 5, buf));
    EXPECT_LE(cache.stats().bytes, cfg.maxBytes);
}

TEST(ServingAggCache, AdvanceRemapsByProvenanceAndGapClears)
{
    AggCache cache({.enabled = true, .maxBytes = 1 << 20});
    cache.advance(3, false, 0, {});
    cache.insert(3, 0, {1, 1});
    cache.insert(3, 1, {2, 2});
    cache.insert(3, 2, {3, 3});

    // Epoch 4: new island 0 inherits old 2, new island 1 is fresh
    // (dirty), new island 2 inherits old 0. Old 1 is orphaned.
    const uint32_t remap[] = {2, AggCache::kNoParent, 0};
    cache.advance(4, true, 3, remap);
    float buf[2];
    ASSERT_TRUE(cache.lookup(4, 0, 2, buf));
    EXPECT_EQ(buf[0], 3.0f);
    EXPECT_FALSE(cache.lookup(4, 1, 2, buf));
    ASSERT_TRUE(cache.lookup(4, 2, 2, buf));
    EXPECT_EQ(buf[0], 1.0f);
    EXPECT_EQ(cache.stats().invalidated, 1u); // old island 1
    EXPECT_EQ(cache.stats().entries, 2u);

    // Same-epoch advance is a no-op.
    cache.advance(4, true, 3, remap);
    EXPECT_TRUE(cache.lookup(4, 0, 2, buf));

    // Lineage gap (parent is not the cached epoch): full clear.
    cache.advance(9, true, 7, remap);
    EXPECT_FALSE(cache.lookup(9, 0, 2, buf));
    EXPECT_EQ(cache.stats().clears, 1u);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);

    // reset(): fresh lifetime, counters zeroed.
    cache.insert(9, 0, {5, 5});
    cache.reset();
    EXPECT_EQ(cache.stats().fills, 0u);
    EXPECT_FALSE(cache.lookup(9, 0, 2, buf));
}

TEST(ServingReplay, UpdatesTakeEffectAndMatchFinalReference)
{
    Workload w = makeWorkload(500, 16, 12, 6, 2, 21);
    TraceConfig tc;
    tc.numInference = 200;
    tc.numUpdates = 30;
    tc.seed = 6;
    Server server(w.graph, w.features, w.weights, ServerConfig{});
    ReplayReport rep = server.runTrace(makeSyntheticTrace(w.graph, tc));

    EXPECT_GT(server.currentEpoch(), 0u);
    uint64_t applied = 0;
    for (const UpdateResult &u : rep.updates)
        applied += u.edgesApplied;
    EXPECT_GT(applied, 0u);

    // Post-replay queries must match the reference forward on the
    // final evolved graph, bit-exactly.
    auto hub = server.stateHub();
    auto state = hub->acquire();
    EXPECT_GT(state->graph.numEdges(), w.graph.numEdges());
    DenseMatrix ref = referenceForward(
        state->graph,
        [&] {
            Features f;
            f.dense = w.features;
            return f;
        }(),
        w.weights);
    InferenceEngine engine(hub, w.features, w.weights, 1.1);
    auto results = engine.runBatch(inferenceBatch({1, 44, 321}));
    for (const InferenceResult &r : results) {
        EXPECT_EQ(r.epoch, state->epoch);
        EXPECT_TRUE(bitEqualRow(r.logits, ref, r.node));
    }
}

TEST(ServingReplay, MixedAddRemoveEpochsStayBitIdenticalToReference)
{
    // Deletion-heavy epoch sequence: every epoch interleaves edge
    // additions with deletions (sampled from the *current* epoch so
    // they take effect). After every published epoch, batched L-hop
    // inference must stay bit-identical to the whole-graph reference
    // on that epoch's evolved graph — the serving engine's exactness
    // contract survives shrinking receptive fields, dissolved
    // islands, and demoted hubs.
    Workload w = makeWorkload(600, 16, 12, 6, 2, 37);
    auto hub = std::make_shared<GraphStateHub>(
        makeGraphState(w.graph, LocatorConfig{}));
    InferenceEngine engine(hub, w.features, w.weights, 1.1);
    UpdateApplier applier(hub);

    Rng rng(53);
    size_t total_removed = 0, total_added = 0;
    for (int epoch_no = 0; epoch_no < 12; ++epoch_no) {
        auto cur = hub->acquire();
        Request r;
        r.kind = RequestKind::Update;
        r.id = static_cast<uint64_t>(epoch_no);
        for (int e = 0; e < 2; ++e) {
            const auto u = static_cast<NodeId>(
                rng.nextBounded(w.graph.numNodes()));
            const auto v = static_cast<NodeId>(
                rng.nextBounded(w.graph.numNodes()));
            if (u != v)
                r.addedEdges.emplace_back(u, v);
        }
        // Deletion-heavy: remove twice as many as we add, sampled
        // uniformly from the current epoch's arcs.
        for (int e = 0; e < 4 && cur->graph.numEdges() > 0; ++e) {
            const EdgeId arc =
                rng.nextBounded(cur->graph.numEdges());
            r.removedEdges.emplace_back(cur->graph.arcSource(arc),
                                        cur->graph.cols()[arc]);
        }
        UpdateResult res = applier.apply({&r, 1});
        total_removed += res.edgesRemoved;
        total_added += res.edgesApplied;

        auto state = hub->acquire();
        EXPECT_EQ(state->epoch, res.epoch);
        DenseMatrix ref =
            referenceForward(state->graph, w.asFeatures(), w.weights);
        std::vector<NodeId> targets;
        for (int i = 0; i < 6; ++i)
            targets.push_back(static_cast<NodeId>(
                rng.nextBounded(w.graph.numNodes())));
        auto results = engine.runBatch(inferenceBatch(targets));
        for (const InferenceResult &ir : results) {
            EXPECT_EQ(ir.epoch, state->epoch);
            EXPECT_TRUE(bitEqualRow(ir.logits, ref, ir.node))
                << "epoch " << state->epoch << " node " << ir.node;
        }
    }
    EXPECT_GT(total_removed, 0u);
    EXPECT_GT(total_added, 0u);
}

TEST(ServingReplay, DeletionHeavyReplayDeterministicAcrossCapsAndThreads)
{
    // Replay determinism with removal events in the trace: identical
    // per-request results and update epochs across batch caps 1/4/64,
    // and bit-identical full replays (stats summary included) across
    // IGCN_THREADS 1/8.
    Workload w = makeWorkload(700, 16, 12, 6, 2, 41);
    TraceConfig tc;
    tc.numInference = 400;
    tc.numUpdates = 60;
    tc.removeFraction = 0.6;
    tc.seed = 8;
    const std::vector<Request> trace =
        makeSyntheticTrace(w.graph, tc);

    size_t removal_requests = 0;
    for (const Request &r : trace)
        if (!r.removedEdges.empty())
            removal_requests++;
    EXPECT_GT(removal_requests, 10u); // the trace is deletion-heavy

    std::vector<ReplaySignature> sigs;
    uint64_t edges_removed = 0;
    for (uint32_t cap : {1u, 4u, 64u}) {
        ServerConfig sc;
        sc.scheduler.maxBatch = cap;
        Server server(w.graph, w.features, w.weights, sc);
        ReplayReport rep = server.runTrace(trace);
        sigs.push_back(ReplaySignature::of(rep));
        edges_removed = server.stats().edgesRemoved();
        EXPECT_GT(edges_removed, 0u);
    }
    for (size_t i = 1; i < sigs.size(); ++i) {
        EXPECT_EQ(sigs[0].byId, sigs[i].byId) << "cap run " << i;
        EXPECT_EQ(sigs[0].updateEpochs, sigs[i].updateEpochs);
    }

    std::vector<ReplaySignature> tsigs;
    std::vector<std::string> summaries;
    for (int threads : {1, 8}) {
        setGlobalThreads(threads);
        Server server(w.graph, w.features, w.weights, ServerConfig{});
        tsigs.push_back(ReplaySignature::of(server.runTrace(trace)));
        summaries.push_back(server.stats().summary());
    }
    setGlobalThreads(0);
    EXPECT_EQ(tsigs[0].byId, tsigs[1].byId);
    EXPECT_EQ(tsigs[0].batchSizeById, tsigs[1].batchSizeById);
    EXPECT_EQ(tsigs[0].updateEpochs, tsigs[1].updateEpochs);
    EXPECT_EQ(summaries[0], summaries[1]);
}

// ------------------------------------------------------ criterion (c)

TEST(ServingConcurrency, InterleavedUpdatesNeverTearReads)
{
    Workload w = makeWorkload(600, 12, 10, 5, 2, 17);
    auto hub = std::make_shared<GraphStateHub>(
        makeGraphState(w.graph, LocatorConfig{}));
    InferenceEngine engine(hub, w.features, w.weights);
    UpdateApplier applier(hub);

    // The writer retains every epoch's state so readers' results can
    // be checked against the exact epoch they claim to have seen.
    std::vector<std::shared_ptr<const GraphState>> epochs;
    epochs.push_back(hub->acquire());

    constexpr int kUpdates = 25;
    constexpr int kReaders = 4;
    constexpr int kQueriesPerReader = 40;

    std::thread writer([&] {
        Rng rng(71);
        for (int i = 0; i < kUpdates; ++i) {
            Request r;
            r.kind = RequestKind::Update;
            r.id = static_cast<uint64_t>(i);
            for (int e = 0; e < 3; ++e) {
                const auto u = static_cast<NodeId>(
                    rng.nextBounded(w.graph.numNodes()));
                const auto v = static_cast<NodeId>(
                    rng.nextBounded(w.graph.numNodes()));
                if (u != v)
                    r.addedEdges.emplace_back(u, v);
            }
            UpdateResult res = applier.apply({&r, 1});
            if (res.edgesApplied > 0)
                epochs.push_back(hub->acquire());
        }
    });

    struct Observation
    {
        uint64_t epoch;
        NodeId node;
        std::vector<float> logits;
    };
    std::vector<std::vector<Observation>> seen(kReaders);
    std::vector<std::thread> readers;
    for (int t = 0; t < kReaders; ++t) {
        readers.emplace_back([&, t] {
            Rng rng(100 + t);
            for (int q = 0; q < kQueriesPerReader; ++q) {
                std::vector<NodeId> targets;
                for (int i = 0; i < 4; ++i)
                    targets.push_back(static_cast<NodeId>(
                        rng.nextBounded(w.graph.numNodes())));
                auto results =
                    engine.runBatch(inferenceBatch(targets));
                for (InferenceResult &r : results)
                    seen[t].push_back({r.epoch, r.node,
                                       std::move(r.logits)});
            }
        });
    }
    writer.join();
    for (std::thread &t : readers)
        t.join();

    // Every observation must match the whole-graph reference of the
    // exact epoch it was served against — a torn read (half-applied
    // update, stale scale vector, stale adjacency) cannot do that.
    std::map<uint64_t, DenseMatrix> ref_by_epoch;
    for (const auto &state : epochs) {
        Features f;
        f.dense = w.features;
        ref_by_epoch[state->epoch] =
            referenceForward(state->graph, f, w.weights);
    }
    size_t checked = 0;
    for (const auto &observations : seen) {
        for (const Observation &o : observations) {
            auto it = ref_by_epoch.find(o.epoch);
            ASSERT_NE(it, ref_by_epoch.end())
                << "unknown epoch " << o.epoch;
            EXPECT_TRUE(bitEqualRow(o.logits, it->second, o.node))
                << "epoch " << o.epoch << " node " << o.node;
            checked++;
        }
    }
    EXPECT_EQ(checked,
              static_cast<size_t>(kReaders) * kQueriesPerReader * 4);
}

TEST(ServingConcurrency, RealTimeServerServesAndDrains)
{
    Workload w = makeWorkload(400, 12, 10, 5, 2, 29);
    ServerConfig sc;
    sc.scheduler.maxWaitUs = 500;
    Server server(w.graph, w.features, w.weights, sc);
    server.start();

    constexpr int kProducers = 2;
    constexpr int kPerProducer = 60;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            Rng rng(500 + p);
            for (int i = 0; i < kPerProducer; ++i) {
                if (i % 20 == 19) {
                    const auto u = static_cast<NodeId>(
                        rng.nextBounded(w.graph.numNodes()));
                    const auto v = static_cast<NodeId>(
                        rng.nextBounded(w.graph.numNodes()));
                    // SLO layer disabled: every submission admits.
                    if (u != v)
                        EXPECT_TRUE(server.submitUpdate({{u, v}}).ok());
                    else
                        EXPECT_TRUE(server.submitInference(u).ok());
                } else {
                    EXPECT_TRUE(
                        server
                            .submitInference(static_cast<NodeId>(
                                rng.nextBounded(w.graph.numNodes())))
                            .ok());
                }
            }
        });
    }
    for (std::thread &t : producers)
        t.join();
    ReplayReport rep = server.stop();

    const size_t total = kProducers * kPerProducer;
    size_t coalesced = 0;
    for (const UpdateResult &u : rep.updates)
        coalesced += u.coalesced;
    // Every submitted request is answered exactly once.
    EXPECT_EQ(rep.inference.size() + coalesced, total);
    for (const InferenceResult &r : rep.inference) {
        EXPECT_EQ(r.logits.size(), size_t{5});
        EXPECT_GE(r.doneUs, r.arrivalUs);
    }
}

// ----------------------------------------------- scheduler unit tests

Request
req(uint64_t id, uint64_t arrival_us, RequestKind kind,
    NodeId node = 0)
{
    Request r;
    r.kind = kind;
    r.id = id;
    r.arrivalUs = arrival_us;
    r.node = node;
    return r;
}

std::vector<std::vector<uint64_t>>
batchIds(RequestQueue &queue, const SchedulerConfig &cfg)
{
    Scheduler sched(queue, cfg, /*real_time=*/false);
    std::vector<std::vector<uint64_t>> out;
    MicroBatch b;
    uint64_t busy = 0;
    while (sched.next(busy, b)) {
        std::vector<uint64_t> ids;
        for (const Request &r : b.requests)
            ids.push_back(r.id);
        out.push_back(std::move(ids));
        busy = b.formedAtUs; // zero service time: dispatch = done
    }
    return out;
}

TEST(ServingScheduler, FcfsContinuousBatchingRules)
{
    SchedulerConfig cfg;
    cfg.maxBatch = 8;

    RequestQueue q;
    // A burst at t=0; two same-instant arrivals later; an update; a
    // trailing inference request.
    q.push(req(0, 0, RequestKind::Inference));
    q.push(req(1, 0, RequestKind::Inference));
    q.push(req(2, 500, RequestKind::Inference));
    q.push(req(3, 500, RequestKind::Inference));
    q.push(req(4, 520, RequestKind::Update));
    q.push(req(5, 530, RequestKind::Inference));
    q.close();

    auto batches = batchIds(q, cfg);
    ASSERT_EQ(batches.size(), 4u);
    // Everything already arrived at the dispatch instant joins; a
    // later arrival (or the update's kind boundary) never does.
    EXPECT_EQ(batches[0], (std::vector<uint64_t>{0, 1}));
    EXPECT_EQ(batches[1], (std::vector<uint64_t>{2, 3}));
    EXPECT_EQ(batches[2], (std::vector<uint64_t>{4}));
    EXPECT_EQ(batches[3], (std::vector<uint64_t>{5}));
}

TEST(ServingScheduler, DispatchesAtEngineFreeInstantWithoutStragglerWait)
{
    SchedulerConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxWaitUs = 100; // deprecated: must have no effect

    RequestQueue q;
    q.push(req(0, 0, RequestKind::Inference));
    q.push(req(1, 500, RequestKind::Inference));
    q.push(req(2, 520, RequestKind::Update));
    q.push(req(3, 530, RequestKind::Inference));
    q.close();

    Scheduler sched(q, cfg, /*real_time=*/false);
    std::vector<uint64_t> formed;
    MicroBatch b;
    uint64_t busy = 0;
    while (sched.next(busy, b)) {
        formed.push_back(b.formedAtUs);
        busy = b.formedAtUs;
    }
    ASSERT_EQ(formed.size(), 4u);
    // Every batch leaves the moment engine and head are both ready —
    // the legacy rule would have charged request 0 the full 100us
    // straggler wait.
    EXPECT_EQ(formed[0], 0u);
    EXPECT_EQ(formed[1], 500u);
    EXPECT_EQ(formed[2], 520u);
    EXPECT_EQ(formed[3], 530u);
}

TEST(ServingScheduler, AdmitsBacklogAtBusyHorizon)
{
    // The bugfix pin: requests arriving while the engine is busy are
    // admitted into the batch formed at the busy horizon (continuous
    // batching), instead of waiting out a drain + straggler window.
    SchedulerConfig cfg;
    cfg.maxBatch = 8;

    RequestQueue q;
    q.push(req(0, 0, RequestKind::Inference));
    q.push(req(1, 20, RequestKind::Inference));  // arrives mid-service
    q.push(req(2, 50, RequestKind::Inference));  // arrives mid-service
    q.push(req(3, 120, RequestKind::Inference)); // arrives after free
    q.close();

    Scheduler sched(q, cfg, /*real_time=*/false);
    std::vector<std::vector<uint64_t>> batches;
    std::vector<uint64_t> formed;
    MicroBatch b;
    uint64_t busy = 0;
    while (sched.next(busy, b)) {
        std::vector<uint64_t> ids;
        for (const Request &r : b.requests)
            ids.push_back(r.id);
        batches.push_back(std::move(ids));
        formed.push_back(b.formedAtUs);
        busy = b.formedAtUs + 100; // 100us service per batch
    }
    ASSERT_EQ(batches.size(), 3u);
    EXPECT_EQ(batches[0], (std::vector<uint64_t>{0}));
    // 1 and 2 arrived during batch 0's service: both board at the
    // t=100 busy horizon; 3 (not yet arrived) does not.
    EXPECT_EQ(batches[1], (std::vector<uint64_t>{1, 2}));
    EXPECT_EQ(formed[1], 100u);
    EXPECT_EQ(batches[2], (std::vector<uint64_t>{3}));
    EXPECT_EQ(formed[2], 200u);
}

TEST(ServingScheduler, BatchCapOneYieldsSingletons)
{
    SchedulerConfig cfg;
    cfg.maxBatch = 1;
    RequestQueue q;
    for (uint64_t i = 0; i < 5; ++i)
        q.push(req(i, i, RequestKind::Inference));
    q.close();
    auto batches = batchIds(q, cfg);
    ASSERT_EQ(batches.size(), 5u);
    for (uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(batches[i], std::vector<uint64_t>{i});
}

TEST(ServingScheduler, ConsecutiveUpdatesCoalesce)
{
    SchedulerConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxUpdateCoalesce = 2;
    RequestQueue q;
    q.push(req(0, 0, RequestKind::Update));
    q.push(req(1, 0, RequestKind::Update));
    q.push(req(2, 0, RequestKind::Update));
    q.close();
    auto batches = batchIds(q, cfg);
    // Cap 2: first application coalesces {0, 1}, then {2}.
    ASSERT_EQ(batches.size(), 2u);
    EXPECT_EQ(batches[0], (std::vector<uint64_t>{0, 1}));
    EXPECT_EQ(batches[1], (std::vector<uint64_t>{2}));
}

/**
 * In-test model of the legacy drain-then-admit rule: same-kind
 * requests with arrival <= start + maxWaitUs joined (a straggler
 * window), and a partial batch's dispatch time was the closing
 * request's arrival or the full deadline. Kept here, not in the
 * scheduler, as the differential baseline.
 */
struct ModelBatch
{
    RequestKind kind;
    std::vector<uint64_t> ids;
    uint64_t formedAtUs = 0;

    bool operator==(const ModelBatch &) const = default;
};

std::vector<ModelBatch>
legacyRuleBatches(std::deque<Request> q, const SchedulerConfig &cfg)
{
    std::vector<ModelBatch> out;
    uint64_t busy = 0;
    while (!q.empty()) {
        Request first = std::move(q.front());
        q.pop_front();
        const uint64_t start = std::max(busy, first.arrivalUs);
        const uint64_t deadline = start + cfg.maxWaitUs;
        const uint32_t cap = first.kind == RequestKind::Inference
            ? std::max<uint32_t>(1, cfg.maxBatch)
            : std::max<uint32_t>(1, cfg.maxUpdateCoalesce);
        ModelBatch b{first.kind, {first.id}, 0};
        uint64_t last_arrival = first.arrivalUs;
        while (b.ids.size() < cap && !q.empty() &&
               q.front().kind == first.kind &&
               q.front().arrivalUs <= deadline) {
            last_arrival = q.front().arrivalUs;
            b.ids.push_back(q.front().id);
            q.pop_front();
        }
        if (b.ids.size() == cap || q.empty())
            b.formedAtUs = std::max(start, last_arrival);
        else
            b.formedAtUs =
                std::max(start, std::min(deadline,
                                         q.front().arrivalUs));
        busy = b.formedAtUs; // zero service time, like batchIds
        out.push_back(std::move(b));
    }
    return out;
}

std::vector<ModelBatch>
newRuleBatches(const std::vector<Request> &reqs,
               const SchedulerConfig &cfg)
{
    RequestQueue q;
    for (const Request &r : reqs)
        q.push(r);
    q.close();
    Scheduler sched(q, cfg, /*real_time=*/false);
    std::vector<ModelBatch> out;
    MicroBatch b;
    uint64_t busy = 0;
    while (sched.next(busy, b)) {
        ModelBatch m{b.kind, {}, b.formedAtUs};
        for (const Request &r : b.requests)
            m.ids.push_back(r.id);
        busy = b.formedAtUs;
        out.push_back(std::move(m));
    }
    return out;
}

TEST(ServingScheduler, DifferentialAgainstLegacyRuleOnCoincidenceTrace)
{
    // Coincidence class: every request has arrived by the time its
    // batch can start (saturated burst), so the straggler window
    // never admits anything the new rule would not, and every legacy
    // dispatch-time case degenerates to `start`. On such traces the
    // two rules must replay byte-identically — batch composition AND
    // dispatch times.
    SchedulerConfig cfg;
    cfg.maxBatch = 3;
    cfg.maxUpdateCoalesce = 2;
    cfg.maxWaitUs = 100;

    std::vector<Request> burst;
    uint64_t id = 0;
    // Mixed-kind runs, all arriving at t=0: kind boundaries, cap
    // splits, and a coalesced tail all exercise in one trace.
    for (RequestKind k :
         {RequestKind::Inference, RequestKind::Inference,
          RequestKind::Inference, RequestKind::Inference,
          RequestKind::Update, RequestKind::Update,
          RequestKind::Update, RequestKind::Inference,
          RequestKind::Update, RequestKind::Inference,
          RequestKind::Inference})
        burst.push_back(req(id++, 0, k));

    const auto legacy = legacyRuleBatches(
        {burst.begin(), burst.end()}, cfg);
    const auto current = newRuleBatches(burst, cfg);
    EXPECT_EQ(legacy, current);

    // Divergence pin: one straggler inside the legacy window. The
    // old rule stalls the t=0 head until the straggler boards at
    // t=40 (and taxes a lone tail with the full window); the new
    // rule dispatches at t=0 and serves the straggler next.
    std::vector<Request> straggler;
    straggler.push_back(req(0, 0, RequestKind::Inference));
    straggler.push_back(req(1, 40, RequestKind::Inference));
    const auto legacy2 = legacyRuleBatches(
        {straggler.begin(), straggler.end()}, cfg);
    const auto current2 = newRuleBatches(straggler, cfg);
    ASSERT_EQ(legacy2.size(), 1u);
    EXPECT_EQ(legacy2[0].ids, (std::vector<uint64_t>{0, 1}));
    EXPECT_EQ(legacy2[0].formedAtUs, 40u);
    ASSERT_EQ(current2.size(), 2u);
    EXPECT_EQ(current2[0].ids, (std::vector<uint64_t>{0}));
    EXPECT_EQ(current2[0].formedAtUs, 0u);
    EXPECT_EQ(current2[1].ids, (std::vector<uint64_t>{1}));
    EXPECT_EQ(current2[1].formedAtUs, 40u);
}

// --------------------------------------------------- stats unit tests

TEST(ServingStats, HistogramPercentilesWithinOneBucketOfExact)
{
    // Compat bound for the registry-backed rewrite: count/mean/max
    // stay exact, percentiles become fixed-boundary-histogram
    // estimates within one bucket width of the exact nearest-rank
    // value (the stats.hpp file-comment contract), and the batch-size
    // map stays exact (it is a labeled counter family, not bucketed).
    ServerStats stats;
    // 100 requests with latencies 1..100 us, in two batches.
    BatchExecInfo info;
    info.targets = 50;
    info.subNodes = 10;
    for (int b = 0; b < 2; ++b) {
        stats.recordInferenceBatch(info);
        for (int i = 0; i < 50; ++i) {
            InferenceResult r;
            r.arrivalUs = 0;
            r.doneUs = static_cast<uint64_t>(b * 50 + i + 1);
            stats.recordInference(r);
        }
    }
    const LatencySummary lat = stats.inferenceLatency();
    EXPECT_EQ(lat.count, 100u);
    EXPECT_EQ(lat.maxUs, 100u);
    EXPECT_DOUBLE_EQ(lat.meanUs, 50.5);

    const obs::Histogram *hist = stats.registry().findHistogram(
        "igcn_serve_inference_latency_us", {});
    ASSERT_NE(hist, nullptr);
    const struct
    {
        double q;
        double exact; // nearest-rank over 1..100
        double got;
    } cases[] = {{0.50, 50.0, lat.p50},
                 {0.95, 95.0, lat.p95},
                 {0.99, 99.0, lat.p99}};
    for (const auto &c : cases) {
        EXPECT_NEAR(c.got, c.exact, hist->quantileErrorBound(c.q))
            << "q = " << c.q;
        // Estimates never escape the observed range.
        EXPECT_GE(c.got, 1.0);
        EXPECT_LE(c.got, 100.0);
    }

    ASSERT_EQ(stats.batchSizeHistogram().size(), 1u);
    EXPECT_EQ(stats.batchSizeHistogram().at(50), 2u);
    EXPECT_DOUBLE_EQ(stats.meanBatchSize(), 50.0);
}

TEST(ServingStats, ResetMidRunKeepsCachedMetricPointersValid)
{
    // Regression pin for the reset-by-move hazard: ServerStats caches
    // raw metric pointers into its registry at construction; the old
    // `stats = ServerStats{}` reset destroyed the registry those
    // pointers targeted while the moved-into object kept using them
    // (a use-after-free ASan catches in the sanitizer job). reset()
    // must zero values in place: recording across a mid-run reset
    // stays valid, registration survives, and pointers taken before
    // the reset still resolve.
    ServerStats stats;
    const obs::Histogram *lat_before = stats.registry().findHistogram(
        "igcn_serve_inference_latency_us", {});
    ASSERT_NE(lat_before, nullptr);

    BatchExecInfo info;
    info.targets = 3;
    stats.recordInferenceBatch(info);
    for (int i = 0; i < 3; ++i) {
        InferenceResult r;
        r.arrivalUs = 0;
        r.doneUs = 10;
        stats.recordInference(r);
    }
    Rejection rej;
    rej.id = 7;
    rej.error = ServeError::Overloaded;
    stats.recordRejection(rej);
    ASSERT_EQ(stats.inferenceLatency().count, 3u);
    ASSERT_EQ(stats.overloadedRequests(), 1u);

    stats.reset(); // mid-run: recording continues afterwards

    EXPECT_EQ(stats.inferenceLatency().count, 0u);
    EXPECT_EQ(stats.overloadedRequests(), 0u);
    EXPECT_EQ(stats.inferenceBatches(), 0u);
    // Same registry, same registration, same pointers.
    EXPECT_EQ(stats.registry().findHistogram(
                  "igcn_serve_inference_latency_us", {}),
              lat_before);

    InferenceResult r;
    r.arrivalUs = 5;
    r.doneUs = 25;
    stats.recordInference(r); // writes through the cached pointers
    EXPECT_EQ(stats.inferenceLatency().count, 1u);
    EXPECT_EQ(stats.inferenceLatency().maxUs, 20u);
    EXPECT_EQ(lat_before->count(), 1u);
}

TEST(ServingTrace, DeterministicAndWellFormed)
{
    CsrGraph g = hubAndIslandGraph({.numNodes = 300, .seed = 2}).graph;
    TraceConfig tc;
    tc.numInference = 500;
    tc.numUpdates = 50;
    tc.removeFraction = 0.4;
    tc.seed = 12;
    auto a = makeSyntheticTrace(g, tc);
    auto b = makeSyntheticTrace(g, tc);
    ASSERT_EQ(a.size(), 550u);
    uint64_t inf = 0, upd = 0, removals = 0, prev_arrival = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, i);
        EXPECT_GE(a[i].arrivalUs, prev_arrival);
        prev_arrival = a[i].arrivalUs;
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].arrivalUs, b[i].arrivalUs);
        if (a[i].kind == RequestKind::Inference) {
            inf++;
            EXPECT_LT(a[i].node, g.numNodes());
            EXPECT_EQ(a[i].node, b[i].node);
        } else {
            upd++;
            EXPECT_EQ(a[i].addedEdges, b[i].addedEdges);
            EXPECT_EQ(a[i].removedEdges, b[i].removedEdges);
            for (const auto &[u, v] : a[i].addedEdges) {
                EXPECT_LT(u, g.numNodes());
                EXPECT_LT(v, g.numNodes());
            }
            if (!a[i].removedEdges.empty())
                removals++;
            // Removal events reference real arcs of the initial
            // graph, so early deletions always take effect.
            for (const auto &[u, v] : a[i].removedEdges)
                EXPECT_TRUE(g.hasEdge(u, v));
        }
    }
    EXPECT_EQ(inf, tc.numInference);
    EXPECT_EQ(upd, tc.numUpdates);
    EXPECT_GT(removals, 5u);
    EXPECT_LT(removals, upd);
}

} // namespace
} // namespace igcn
