/**
 * @file
 * Edge-list I/O hardening tests.
 *
 * Regression focus: the stream-extraction loader used to stop
 * silently at the first malformed line (dropping every edge after
 * it), accept negative ids by unsigned wrap-around, and report
 * out-of-range endpoints with no file/line context. Every
 * malformation must now throw with the path and 1-based line number.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace igcn {
namespace {

/** Write content to a fresh temp file; returns its path. */
class TempFile
{
  public:
    explicit TempFile(const std::string &content)
        : filePath(std::string(::testing::TempDir()) + "igcn_io_" +
                   std::to_string(counter++) + ".txt")
    {
        std::ofstream out(filePath);
        out << content;
    }
    ~TempFile() { std::remove(filePath.c_str()); }

    const std::string &path() const { return filePath; }

  private:
    static inline int counter = 0;
    std::string filePath;
};

/** Expect loadEdgeList to throw with all the given message parts. */
void
expectLoadError(const std::string &path,
                const std::vector<std::string> &parts)
{
    try {
        loadEdgeList(path);
        FAIL() << "expected std::runtime_error for " << path;
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        for (const std::string &part : parts)
            EXPECT_NE(msg.find(part), std::string::npos)
                << "message '" << msg << "' lacks '" << part << "'";
    }
}

TEST(EdgeListIo, RoundTrip)
{
    CsrGraph g = erdosRenyi(120, 5.0, 7);
    TempFile f("");
    saveEdgeList(g, f.path());
    EXPECT_EQ(loadEdgeList(f.path()), g);
}

TEST(EdgeListIo, MissingFileNamesPathAndReason)
{
    expectLoadError("/nonexistent/igcn-no-such-file.txt",
                    {"cannot open", "/nonexistent/igcn-no-such-file.txt"});
}

TEST(EdgeListIo, MissingHeader)
{
    TempFile empty("");
    expectLoadError(empty.path(), {"missing", "# nodes"});

    TempFile blank("\n   \n\n");
    expectLoadError(blank.path(), {"missing", "# nodes"});
}

TEST(EdgeListIo, MalformedHeaderWithLineNumber)
{
    TempFile f("garbage first line\n0 1\n");
    expectLoadError(f.path(), {":1:", "header", "garbage first line"});

    TempFile trailing("# nodes 5 extra\n");
    expectLoadError(trailing.path(), {":1:", "header"});

    TempFile huge("# nodes 5000000000\n");
    expectLoadError(huge.path(), {":1:", "32-bit"});
}

TEST(EdgeListIo, MalformedEdgeLineNoLongerTruncatesSilently)
{
    // The old loader returned a 1-edge graph here, silently dropping
    // "junk" AND the valid "1 2" after it.
    TempFile f("# nodes 3\n0 1\njunk line\n1 2\n");
    expectLoadError(f.path(), {":3:", "malformed", "junk line"});
}

TEST(EdgeListIo, TrailingTokensOnEdgeLine)
{
    TempFile f("# nodes 3\n0 1 2\n");
    expectLoadError(f.path(), {":2:", "malformed"});
}

TEST(EdgeListIo, NegativeIdsRejectedNotWrapped)
{
    TempFile f("# nodes 3\n-1 2\n");
    expectLoadError(f.path(), {":2:", "malformed"});
}

TEST(EdgeListIo, OutOfRangeEndpointWithLineNumber)
{
    TempFile f("# nodes 3\n0 1\n0 9\n");
    expectLoadError(f.path(), {":3:", "9", "out of range"});
}

TEST(EdgeListIo, BlankLinesAndCommentsSkipped)
{
    TempFile f("\n# nodes 3\n\n0 1\n# a comment\n  \n1 2\n");
    CsrGraph g = loadEdgeList(f.path());
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 2u); // directed arcs as stored
}

TEST(EdgeListIo, DirectedFixtureRoundTripsExactly)
{
    // The loader must not re-symmetrize: a file with one arc stays
    // one arc.
    TempFile f("# nodes 2\n0 1\n");
    CsrGraph g = loadEdgeList(f.path());
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_FALSE(g.hasEdge(1, 0));
}

} // namespace
} // namespace igcn
