/**
 * @file
 * Tests for the sparse feature path: the CsrFeatures container and
 * the csrGather / sparseTimesDense / sparseTransposeTimesDense
 * kernels. The load-bearing claims:
 *
 *  (a) fromArrays validates every structural invariant, and the
 *      container handles empty rows, all-zero matrices, and explicit
 *      stored zeros;
 *  (b) sparseTimesDense on the CSR image of a dense matrix is
 *      BIT-identical to gemm on that matrix — both accumulate each
 *      output element's non-zero terms in ascending-k order — at
 *      densities 0, 0.01 and 1.0, so the sparse first layer can
 *      replace the dense one with byte-equal logits;
 *  (c) every sparse kernel is bit-identical at IGCN_THREADS 1/4/8;
 *  (d) sparseTimesDense reports the same arithmetic Table-1 access
 *      profile as the dense-path CSR kernel (spmmPullRowWise) on the
 *      same logical matrix.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gcn/reference.hpp"
#include "graph/csr_features.hpp"
#include "runtime/thread_pool.hpp"
#include "spmm/spmm.hpp"

namespace igcn {
namespace {

bool
bitEqual(const DenseMatrix &a, const DenseMatrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data().data(), b.data().data(),
                       a.data().size() * sizeof(float)) == 0;
}

DenseMatrix
denseAtDensity(size_t rows, size_t cols, double density, uint64_t seed)
{
    Rng rng(seed);
    DenseMatrix m(rows, cols);
    if (density >= 1.0)
        m.fillRandom(rng, 1.0f);
    else if (density > 0.0)
        m.fillRandomSparse(rng, density, 1.0f);
    return m;
}

TEST(CsrFeatures, FromArraysValidatesInvariants)
{
    // A valid 3x4 matrix with an empty middle row adopts cleanly.
    CsrFeatures ok = CsrFeatures::fromArrays(
        3, 4, {0, 2, 2, 3}, {0, 3, 1}, {1.0f, 2.0f, 3.0f});
    EXPECT_EQ(ok.nnz(), 3u);
    EXPECT_EQ(ok.rowNnz(1), 0u);
    EXPECT_DOUBLE_EQ(ok.density(), 3.0 / 12.0);

    // rowPtr must have size num_rows + 1 ...
    EXPECT_THROW(CsrFeatures::fromArrays(3, 4, {0, 2, 3}, {0, 3, 1},
                                         {1.0f, 2.0f, 3.0f}),
                 std::invalid_argument);
    // ... start at zero ...
    EXPECT_THROW(CsrFeatures::fromArrays(3, 4, {1, 2, 2, 3},
                                         {0, 3, 1},
                                         {1.0f, 2.0f, 3.0f}),
                 std::invalid_argument);
    // ... be monotone ...
    EXPECT_THROW(CsrFeatures::fromArrays(3, 4, {0, 2, 1, 3},
                                         {0, 3, 1},
                                         {1.0f, 2.0f, 3.0f}),
                 std::invalid_argument);
    // ... and end at nnz.
    EXPECT_THROW(CsrFeatures::fromArrays(3, 4, {0, 2, 2, 2},
                                         {0, 3, 1},
                                         {1.0f, 2.0f, 3.0f}),
                 std::invalid_argument);
    // values must parallel colIdx.
    EXPECT_THROW(CsrFeatures::fromArrays(3, 4, {0, 2, 2, 3},
                                         {0, 3, 1}, {1.0f, 2.0f}),
                 std::invalid_argument);
    // Columns must be in range ...
    EXPECT_THROW(CsrFeatures::fromArrays(3, 4, {0, 2, 2, 3},
                                         {0, 4, 1},
                                         {1.0f, 2.0f, 3.0f}),
                 std::invalid_argument);
    // ... and strictly ascending within a row (no duplicates).
    EXPECT_THROW(CsrFeatures::fromArrays(3, 4, {0, 2, 2, 3},
                                         {3, 0, 1},
                                         {1.0f, 2.0f, 3.0f}),
                 std::invalid_argument);
    EXPECT_THROW(CsrFeatures::fromArrays(3, 4, {0, 2, 2, 3},
                                         {0, 0, 1},
                                         {1.0f, 2.0f, 3.0f}),
                 std::invalid_argument);

    // Explicit stored zeros are structural entries, not errors.
    CsrFeatures zeros = CsrFeatures::fromArrays(
        2, 2, {0, 1, 2}, {0, 1}, {0.0f, 0.0f});
    EXPECT_EQ(zeros.nnz(), 2u);
}

TEST(CsrFeatures, RowIterationAndStorageAccounting)
{
    CsrFeatures m = CsrFeatures::fromArrays(
        3, 5, {0, 2, 2, 5}, {1, 4, 0, 2, 3},
        {1.0f, 2.0f, 3.0f, 4.0f, 5.0f});
    FeatureRow r0 = m.row(0);
    ASSERT_EQ(r0.cols.size(), 2u);
    EXPECT_EQ(r0.cols[1], 4u);
    EXPECT_EQ(r0.vals[1], 2.0f);
    EXPECT_TRUE(m.row(1).cols.empty());
    EXPECT_EQ(m.row(2).vals.size(), 3u);
    EXPECT_EQ(m.storageBytes(),
              4 * sizeof(EdgeId) + 5 * sizeof(NodeId) +
                  5 * sizeof(float));

    // Degenerate shapes: empty matrix, all-empty rows.
    CsrFeatures empty;
    EXPECT_EQ(empty.nnz(), 0u);
    EXPECT_DOUBLE_EQ(empty.density(), 0.0);
    CsrFeatures hollow = CsrFeatures::fromArrays(
        4, 7, {0, 0, 0, 0, 0}, {}, {});
    EXPECT_EQ(hollow.nnz(), 0u);
    for (NodeId r = 0; r < 4; ++r)
        EXPECT_EQ(hollow.rowNnz(r), 0u);
}

TEST(CsrFeatures, DenseRoundTripAtAllDensities)
{
    for (double density : {0.0, 0.01, 1.0}) {
        DenseMatrix d = denseAtDensity(120, 300, density, 5);
        CsrFeatures s = denseToCsrFeatures(d);
        EXPECT_EQ(s.nnz(), d.countNonZeros());
        EXPECT_TRUE(bitEqual(csrFeaturesToDense(s), d))
            << "density " << density;
    }
}

TEST(CsrFeatures, CscViewMatchesBruteForceTranspose)
{
    DenseMatrix d = denseAtDensity(60, 80, 0.05, 11);
    CsrFeatures s = denseToCsrFeatures(d);
    const CsrFeatures::CscView &csc = s.csc();
    ASSERT_EQ(csc.colPtr.size(), 81u);
    EXPECT_EQ(csc.colPtr.back(), s.nnz());
    for (NodeId c = 0; c < 80; ++c) {
        for (EdgeId e = csc.colPtr[c]; e < csc.colPtr[c + 1]; ++e) {
            EXPECT_EQ(csc.valOf[e], d.at(csc.rowOf[e], c));
            if (e > csc.colPtr[c]) { // ascending row order per column
                EXPECT_LT(csc.rowOf[e - 1], csc.rowOf[e]);
            }
        }
    }
}

TEST(SparseKernels, SparseTimesDenseBitEqualsGemmAtAllDensities)
{
    // The tentpole equivalence: gemm skips zero a(i,k) entries and
    // accumulates ascending-k per output element; sparseTimesDense
    // accumulates stored entries in ascending column order. On the
    // CSR image of the same matrix the two are the same float
    // program, so equality is exact, not tolerance-based.
    Rng wrng(3);
    DenseMatrix w(300, 24);
    w.fillRandom(wrng, 1.0f);
    for (double density : {0.0, 0.01, 1.0}) {
        DenseMatrix d = denseAtDensity(150, 300, density, 17);
        CsrFeatures s = denseToCsrFeatures(d);
        EXPECT_TRUE(bitEqual(sparseTimesDense(s, w), gemm(d, w)))
            << "density " << density;
    }
}

TEST(SparseKernels, ExplicitStoredZerosKeepGemmParity)
{
    // Stored zeros contribute 0 * w to an accumulator that is never
    // negative zero, so they cannot perturb the sum gemm computes
    // without them.
    CsrFeatures s = CsrFeatures::fromArrays(
        2, 3, {0, 3, 4}, {0, 1, 2, 1},
        {0.5f, 0.0f, -1.25f, 0.0f});
    Rng wrng(5);
    DenseMatrix w(3, 8);
    w.fillRandom(wrng, 1.0f);
    EXPECT_TRUE(bitEqual(sparseTimesDense(s, w),
                         gemm(csrFeaturesToDense(s), w)));
}

TEST(SparseKernels, SparseTransposeTimesDenseMatchesDenseTranspose)
{
    DenseMatrix d = denseAtDensity(140, 90, 0.03, 23);
    CsrFeatures s = denseToCsrFeatures(d);
    Rng brng(7);
    DenseMatrix b(140, 12);
    b.fillRandom(brng, 1.0f);
    DenseMatrix got = sparseTransposeTimesDense(s, b);
    // Same gather order as the dense path's CSC kernel on the same
    // structure, so bit-equality holds against it too.
    EXPECT_TRUE(bitEqual(got, csrTransposeTimesDense(denseToCsr(d), b)));
    // And tolerance-equality against a naive X^T B.
    for (size_t j = 0; j < 90; ++j)
        for (size_t c = 0; c < 12; ++c) {
            double acc = 0;
            for (size_t r = 0; r < 140; ++r)
                acc += static_cast<double>(d.at(r, j)) * b.at(r, c);
            EXPECT_NEAR(got.at(j, c), acc, 1e-3);
        }
}

TEST(SparseKernels, CsrGatherExtractsRowsVerbatim)
{
    DenseMatrix d = denseAtDensity(80, 50, 0.1, 31);
    CsrFeatures s = denseToCsrFeatures(d);
    // Duplicates and arbitrary order are part of the contract.
    const std::vector<NodeId> rows{7, 0, 79, 7, 42, 42, 3};
    CsrFeatures sub = csrGather(s, rows);
    ASSERT_EQ(sub.numRows, rows.size());
    EXPECT_EQ(sub.numCols, s.numCols);
    for (size_t i = 0; i < rows.size(); ++i) {
        FeatureRow want = s.row(rows[i]);
        FeatureRow got = sub.row(static_cast<NodeId>(i));
        ASSERT_EQ(got.cols.size(), want.cols.size()) << "row " << i;
        EXPECT_TRUE(std::equal(want.cols.begin(), want.cols.end(),
                               got.cols.begin()));
        EXPECT_TRUE(std::equal(want.vals.begin(), want.vals.end(),
                               got.vals.begin()));
    }
    // Empty selection and out-of-range rows.
    EXPECT_EQ(csrGather(s, {}).nnz(), 0u);
    EXPECT_THROW(csrGather(s, std::vector<NodeId>{80}),
                 std::out_of_range);
}

TEST(SparseKernels, BitIdenticalAcrossThreadCounts)
{
    // All three kernels must be exact at any IGCN_THREADS — the
    // serving determinism contract extends to the sparse path.
    Rng rng(13);
    Features x = makeFeatures(900, 600, 0.01, rng,
                              /*force_sparse=*/true);
    Rng wrng(17);
    DenseMatrix w(600, 16);
    w.fillRandom(wrng, 1.0f);
    DenseMatrix b(900, 16);
    b.fillRandom(wrng, 1.0f);
    std::vector<NodeId> rows;
    for (NodeId r = 0; r < 900; r += 3)
        rows.push_back(r);

    setGlobalThreads(1);
    const CsrFeatures gather1 = csrGather(x.csr, rows);
    const DenseMatrix xw1 = sparseTimesDense(x.csr, w);
    const DenseMatrix xtb1 = sparseTransposeTimesDense(x.csr, b);
    for (int threads : {4, 8}) {
        setGlobalThreads(threads);
        EXPECT_EQ(csrGather(x.csr, rows), gather1)
            << threads << " threads";
        EXPECT_TRUE(bitEqual(sparseTimesDense(x.csr, w), xw1))
            << threads << " threads";
        EXPECT_TRUE(
            bitEqual(sparseTransposeTimesDense(x.csr, b), xtb1))
            << threads << " threads";
    }
    setGlobalThreads(0);
}

TEST(SparseKernels, CountersMatchDensePathAccountingModel)
{
    // sparseTimesDense must report the pull-row-wise profile so the
    // accel models account sparse and dense first layers under one
    // model: aReads = nnz, one irregular full-row B pull and one MAC
    // per stored entry and channel, one streamed write per output
    // element. Cross-checked against the dense path's CSR kernel on
    // the same logical matrix.
    DenseMatrix d = denseAtDensity(100, 200, 0.05, 41);
    CsrFeatures s = denseToCsrFeatures(d);
    Rng wrng(43);
    DenseMatrix w(200, 8);
    w.fillRandom(wrng, 1.0f);

    SpmmCounters sparse_cnt;
    sparseTimesDense(s, w, &sparse_cnt);
    EXPECT_EQ(sparse_cnt.aReads, s.nnz());
    EXPECT_EQ(sparse_cnt.bIrregularReads, s.nnz() * 8);
    EXPECT_EQ(sparse_cnt.macOps, s.nnz() * 8);
    EXPECT_EQ(sparse_cnt.cStreamedWrites, 100u * 8u);
    EXPECT_EQ(sparse_cnt.bStreamedReads, 0u);
    EXPECT_EQ(sparse_cnt.cIrregularWrites, 0u);

    SpmmCounters dense_path_cnt;
    spmmPullRowWise(denseToCsr(d), w, &dense_path_cnt);
    EXPECT_EQ(sparse_cnt.aReads, dense_path_cnt.aReads);
    EXPECT_EQ(sparse_cnt.bIrregularReads,
              dense_path_cnt.bIrregularReads);
    EXPECT_EQ(sparse_cnt.macOps, dense_path_cnt.macOps);
    EXPECT_EQ(sparse_cnt.cStreamedWrites,
              dense_path_cnt.cStreamedWrites);
}

TEST(CsrFeatures, CscCacheFollowsLazyAdjunctRules)
{
    // Copying drops the cache (derived state, never identity);
    // equality ignores it; the copy rebuilds an identical view.
    DenseMatrix d = denseAtDensity(40, 30, 0.2, 53);
    CsrFeatures a = denseToCsrFeatures(d);
    (void)a.csc();
    CsrFeatures b = a;
    EXPECT_EQ(a, b);
    EXPECT_EQ(b.csc().colPtr, a.csc().colPtr);
    EXPECT_EQ(b.csc().rowOf, a.csc().rowOf);
    EXPECT_EQ(b.csc().valOf, a.csc().valOf);
}

} // namespace
} // namespace igcn
