/**
 * @file
 * SpMM dataflow tests: all four of Figure 2's loop orders must
 * produce the same product as dense GEMM, with the access-counter
 * profile each dataflow is known for (Table 1).
 */

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spmm/spmm.hpp"

namespace igcn {
namespace {

constexpr double kTol = 1e-4;

using SpmmFn = DenseMatrix (*)(const CsrMatrix &, const DenseMatrix &,
                               SpmmCounters *);

struct DataflowCase
{
    const char *name;
    SpmmFn fn;
};

const DataflowCase kDataflows[] = {
    {"pull-row-wise", &spmmPullRowWise},
    {"pull-inner-product", &spmmPullInnerProduct},
    {"push-column-wise", &spmmPushColumnWise},
    {"push-outer-product", &spmmPushOuterProduct},
};

class SpmmDataflowTest
    : public ::testing::TestWithParam<std::tuple<int, int, double>>
{};

TEST_P(SpmmDataflowTest, MatchesDenseReference)
{
    auto [n, channels, avg_deg] = GetParam();
    CsrGraph g = erdosRenyi(static_cast<NodeId>(n), avg_deg,
                            static_cast<uint64_t>(n * channels));
    CsrMatrix a = CsrMatrix::fromGraph(g);
    // Weighted values exercise the value path, not just the pattern.
    Rng vrng(7);
    for (float &v : a.values)
        v = vrng.nextFloat(2.0f);

    Rng rng(5);
    DenseMatrix b(n, channels);
    b.fillRandom(rng);
    DenseMatrix expected = gemm(a.toDense(), b);

    for (const DataflowCase &d : kDataflows) {
        SpmmCounters counters;
        DenseMatrix c = d.fn(a, b, &counters);
        EXPECT_LT(maxAbsDiff(c, expected), kTol) << d.name;
        EXPECT_EQ(counters.macOps, a.nnz() * channels) << d.name;
        // Row-wise and outer-product touch each non-zero once; the
        // per-channel loop orders re-read A every channel (the "Reuse
        // A" column of Table 1).
        const bool reads_a_once = d.fn == &spmmPullRowWise ||
            d.fn == &spmmPushOuterProduct;
        EXPECT_EQ(counters.aReads,
                  reads_a_once ? a.nnz() : a.nnz() * channels)
            << d.name << " aReads profile";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpmmDataflowTest,
    ::testing::Combine(::testing::Values(16, 100, 500),
                       ::testing::Values(1, 8, 33),
                       ::testing::Values(0.5, 4.0, 12.0)));

TEST(Spmm, AllDataflowsAgreeOnSameInput)
{
    // The four dataflows compute the same product Xo = A * B and may
    // only differ in their access counters. Cross-check the variants
    // directly against each other (not just via the dense reference)
    // on structurally distinct graphs, including empty rows and
    // isolated vertices.
    struct GraphCase
    {
        const char *name;
        CsrGraph graph;
    };
    const GraphCase cases[] = {
        {"hub-island", hubAndIslandGraph({.numNodes = 600,
                                          .seed = 3}).graph},
        {"sparse-er", erdosRenyi(400, 0.8, 21)},
        {"star", starGraph(64)},
        {"path", pathGraph(50)},
        {"isolated", CsrGraph::fromEdges(40, {{0, 1}, {2, 3}})},
    };
    for (const GraphCase &gc : cases) {
        CsrMatrix a = CsrMatrix::fromGraph(gc.graph);
        Rng vrng(31);
        for (float &v : a.values)
            v = vrng.nextFloat(2.0f);
        Rng rng(37);
        DenseMatrix b(gc.graph.numNodes(), 23);
        b.fillRandom(rng);

        SpmmCounters base_cnt;
        const DenseMatrix base = kDataflows[0].fn(a, b, &base_cnt);
        for (size_t d = 1; d < std::size(kDataflows); ++d) {
            SpmmCounters cnt;
            const DenseMatrix c = kDataflows[d].fn(a, b, &cnt);
            EXPECT_LT(maxAbsDiff(c, base), kTol)
                << kDataflows[d].name << " vs "
                << kDataflows[0].name << " on " << gc.name;
            // Identical arithmetic regardless of loop order.
            EXPECT_EQ(cnt.macOps, base_cnt.macOps)
                << kDataflows[d].name << " on " << gc.name;
        }

        // The transpose kernel on a symmetric adjacency pattern must
        // agree with the forward product of the transposed values.
        const DenseMatrix t = csrTransposeTimesDense(a, b);
        EXPECT_LT(maxAbsDiff(t, spmmPullRowWise(denseToCsr([&] {
            DenseMatrix at(a.numCols, a.numRows);
            for (NodeId r = 0; r < a.numRows; ++r)
                for (EdgeId e = a.rowPtr[r]; e < a.rowPtr[r + 1]; ++e)
                    at.at(a.colIdx[e], r) = a.values[e];
            return at;
        }()), b, nullptr)), kTol) << "transpose on " << gc.name;
    }
}

TEST(Spmm, AccessProfilesMatchTable1)
{
    // PULL methods read B irregularly; PUSH methods write C
    // irregularly — the crux of Table 1.
    CsrGraph g = erdosRenyi(200, 6.0, 99);
    CsrMatrix a = CsrMatrix::fromGraph(g);
    Rng rng(1);
    DenseMatrix b(200, 16);
    b.fillRandom(rng);

    SpmmCounters pull, push;
    spmmPullRowWise(a, b, &pull);
    spmmPushOuterProduct(a, b, &push);

    EXPECT_GT(pull.bIrregularReads, 0u);
    EXPECT_EQ(pull.cIrregularWrites, 0u);
    EXPECT_EQ(push.bIrregularReads, 0u);
    EXPECT_GT(push.cIrregularWrites, 0u);
}

TEST(Spmm, EmptyMatrix)
{
    CsrMatrix a;
    a.numRows = 4;
    a.numCols = 4;
    a.rowPtr.assign(5, 0);
    DenseMatrix b(4, 3, 1.0f);
    DenseMatrix c = spmmPullRowWise(a, b, nullptr);
    for (float v : c.data())
        EXPECT_EQ(v, 0.0f);
}

TEST(Spmm, ShapeMismatchThrows)
{
    CsrMatrix a = CsrMatrix::fromGraph(pathGraph(4));
    DenseMatrix b(5, 3);
    EXPECT_THROW(spmmPullRowWise(a, b, nullptr), std::invalid_argument);
}

TEST(Spmm, DenseToCsrRoundTrip)
{
    Rng rng(11);
    DenseMatrix m(13, 7);
    m.fillRandomSparse(rng, 0.3);
    CsrMatrix sparse = denseToCsr(m);
    EXPECT_EQ(sparse.toDense(), m);
    EXPECT_EQ(sparse.nnz(), m.countNonZeros());
}

TEST(Dense, GemmIdentity)
{
    Rng rng(3);
    DenseMatrix a(6, 6);
    a.fillRandom(rng);
    DenseMatrix eye(6, 6);
    for (int i = 0; i < 6; ++i)
        eye.at(i, i) = 1.0f;
    EXPECT_LT(maxAbsDiff(gemm(a, eye), a), kTol);
    EXPECT_LT(maxAbsDiff(gemm(eye, a), a), kTol);
}

TEST(Dense, GemmShapes)
{
    DenseMatrix a(2, 3, 1.0f), b(3, 4, 2.0f);
    DenseMatrix c = gemm(a, b);
    EXPECT_EQ(c.rows(), 2u);
    EXPECT_EQ(c.cols(), 4u);
    for (float v : c.data())
        EXPECT_FLOAT_EQ(v, 6.0f);
    EXPECT_THROW(gemm(b, a), std::invalid_argument);
}

TEST(Dense, MaxAbsDiffDetects)
{
    DenseMatrix a(2, 2, 1.0f), b(2, 2, 1.0f);
    EXPECT_EQ(maxAbsDiff(a, b), 0.0);
    b.at(1, 1) = 1.5f;
    EXPECT_NEAR(maxAbsDiff(a, b), 0.5, 1e-9);
}

TEST(Dense, FillRandomSparseDensity)
{
    Rng rng(17);
    DenseMatrix m(200, 200);
    size_t nnz = m.fillRandomSparse(rng, 0.1);
    EXPECT_EQ(nnz, m.countNonZeros());
    double density = static_cast<double>(nnz) / (200.0 * 200.0);
    EXPECT_NEAR(density, 0.1, 0.02);
}

} // namespace
} // namespace igcn
