/**
 * @file
 * GCN layer/model tests: adjacency normalization, the factored
 * (scaling + binary aggregation) identity, model configurations, and
 * deterministic feature/weight generation.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "gcn/layer.hpp"
#include "gcn/reference.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "spmm/spmm.hpp"

namespace igcn {
namespace {

constexpr double kTol = 2e-4;

TEST(Layer, DegreeScalingValues)
{
    CsrGraph g = starGraph(5);
    auto s = degreeScaling(g);
    EXPECT_FLOAT_EQ(s[0], 1.0f / std::sqrt(5.0f)); // degree 4 + 1
    EXPECT_FLOAT_EQ(s[1], 1.0f / std::sqrt(2.0f)); // degree 1 + 1
}

TEST(Layer, NormalizedAdjacencyRowStochasticProperty)
{
    // Rows of D^-1/2 (A+I) D^-1/2 sum to <= 1 with equality iff all
    // neighbors have the same degree; every diagonal entry present.
    CsrGraph g = erdosRenyi(100, 5.0, 42);
    CsrMatrix a = normalizedAdjacency(g);
    EXPECT_EQ(a.nnz(), g.numEdges() + g.numNodes());
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        bool has_diag = false;
        for (EdgeId e = a.rowPtr[u]; e < a.rowPtr[u + 1]; ++e) {
            EXPECT_GT(a.values[e], 0.0f);
            if (a.colIdx[e] == u)
                has_diag = true;
        }
        EXPECT_TRUE(has_diag) << "row " << u;
    }
}

TEST(Layer, RefreshNormalizedAdjacencyIsRemovalAware)
{
    // The update applier's exact epoch pattern, in the shrinking
    // direction: refresh a populated A_hat in place against a graph
    // with *fewer* edges. Rows must shrink correctly (stale tail
    // entries gone), the result must equal a from-scratch build, and
    // the cached CSC adjunct must have been dropped — a stale CSC
    // would make the push-style kernels read deleted edges.
    CsrGraph g = erdosRenyi(120, 6.0, 21);
    CsrMatrix a_hat = normalizedAdjacency(g);
    (void)a_hat.csc(); // populate the adjunct cache

    std::vector<Edge> removed;
    for (const auto &[u, v] : g.toEdges())
        if (u < v && removed.size() < 40)
            removed.push_back({u, v});
    CsrGraph g2 = g.withRemovedEdges(removed);

    refreshNormalizedAdjacency(a_hat, g2, degreeScaling(g2));
    CsrMatrix fresh = normalizedAdjacency(g2);
    EXPECT_EQ(a_hat.rowPtr, fresh.rowPtr);
    EXPECT_EQ(a_hat.colIdx, fresh.colIdx);
    EXPECT_EQ(a_hat.values, fresh.values);
    EXPECT_EQ(a_hat.nnz(), g2.numEdges() + g2.numNodes());

    // The refreshed matrix's CSC is rebuilt from the new arrays.
    const CscIndex &csc = a_hat.csc();
    EXPECT_EQ(csc.rowOf.size(), a_hat.nnz());
    EXPECT_EQ(csc.colPtr, fresh.csc().colPtr);
    EXPECT_EQ(csc.rowOf, fresh.csc().rowOf);
    EXPECT_EQ(csc.valOf, fresh.csc().valOf);
}

TEST(Layer, FactoredEqualsWeighted)
{
    // S (A+I) S X == A_hat X: the identity the hardware exploits.
    CsrGraph g = erdosRenyi(150, 6.0, 7);
    Rng rng(9);
    DenseMatrix x(150, 12);
    x.fillRandom(rng);

    CsrMatrix a_hat = normalizedAdjacency(g);
    DenseMatrix expected = spmmPullRowWise(a_hat, x);

    std::vector<float> s = degreeScaling(g);
    DenseMatrix y = x;
    scaleRows(y, s);
    CsrMatrix a_bin = binaryAdjacencyWithSelfLoops(g);
    DenseMatrix z = spmmPullRowWise(a_bin, y);
    scaleRows(z, s);
    EXPECT_LT(maxAbsDiff(z, expected), kTol);
}

TEST(Layer, ReluClamps)
{
    DenseMatrix m(1, 4);
    m.at(0, 0) = -1.0f;
    m.at(0, 1) = 2.0f;
    m.at(0, 2) = 0.0f;
    m.at(0, 3) = -0.5f;
    reluInPlace(m);
    EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(m.at(0, 3), 0.0f);
}

TEST(Models, ConfigurationsMatchPaper)
{
    const DatasetInfo &cora = datasetInfo(Dataset::Cora);
    auto gcn = modelConfig(Model::GCN, NetConfig::Algo, cora);
    ASSERT_EQ(gcn.numLayers(), 2);
    EXPECT_EQ(gcn.layers[0].inChannels, 1433);
    EXPECT_EQ(gcn.layers[0].outChannels, 16);
    EXPECT_EQ(gcn.layers[1].outChannels, 7);

    auto gcn_hy = modelConfig(Model::GCN, NetConfig::Hy, cora);
    EXPECT_EQ(gcn_hy.layers[0].outChannels, 128);

    const DatasetInfo &nell = datasetInfo(Dataset::Nell);
    auto gcn_nell = modelConfig(Model::GCN, NetConfig::Algo, nell);
    EXPECT_EQ(gcn_nell.layers[0].outChannels, 64);

    auto gin = modelConfig(Model::GIN, NetConfig::Algo, cora);
    EXPECT_EQ(gin.numLayers(), 3);

    EXPECT_EQ(modelName(Model::GraphSage, NetConfig::Hy), "GS-Hy");
}

TEST(Models, LayerDimsChain)
{
    for (Dataset d : kAllDatasets) {
        const DatasetInfo &info = datasetInfo(d);
        for (Model m : {Model::GCN, Model::GraphSage, Model::GIN}) {
            for (NetConfig net : {NetConfig::Algo, NetConfig::Hy}) {
                auto cfg = modelConfig(m, net, info);
                EXPECT_EQ(cfg.layers.front().inChannels,
                          info.numFeatures);
                EXPECT_EQ(cfg.layers.back().outChannels,
                          info.numClasses);
                for (size_t l = 1; l < cfg.layers.size(); ++l)
                    EXPECT_EQ(cfg.layers[l].inChannels,
                              cfg.layers[l - 1].outChannels);
            }
        }
    }
}

TEST(Reference, ForwardShapes)
{
    auto hi = hubAndIslandGraph({.numNodes = 120, .seed = 2});
    Rng rng(4);
    Features x = makeFeatures(120, 32, 0.2, rng);
    ModelConfig mc;
    mc.layers = {{32, 8}, {8, 3}};
    auto weights = makeWeights(mc, rng);
    DenseMatrix out = referenceForward(hi.graph, x, weights);
    EXPECT_EQ(out.rows(), 120u);
    EXPECT_EQ(out.cols(), 3u);
}

TEST(Reference, FactoredForwardEqualsReference)
{
    auto hi = hubAndIslandGraph({.numNodes = 200, .seed = 6});
    Rng rng(8);
    Features x = makeFeatures(200, 24, 0.3, rng);
    ModelConfig mc;
    mc.layers = {{24, 10}, {10, 5}};
    auto weights = makeWeights(mc, rng);
    DenseMatrix a = referenceForward(hi.graph, x, weights);
    DenseMatrix b = factoredForward(hi.graph, x, weights);
    EXPECT_LT(maxAbsDiff(a, b), kTol);
}

TEST(Reference, SparseFeaturesDeterministic)
{
    Rng rng1(77), rng2(77);
    Features a = makeFeatures(500, 1000, 0.005, rng1, true);
    Features b = makeFeatures(500, 1000, 0.005, rng2, true);
    ASSERT_TRUE(a.sparse);
    EXPECT_EQ(a.csr.colIdx, b.csr.colIdx);
    EXPECT_EQ(a.csr.values, b.csr.values);
    // Density lands near the request.
    double density = static_cast<double>(a.nnz()) / (500.0 * 1000.0);
    EXPECT_NEAR(density, 0.005, 0.002);
}

TEST(Reference, SparseFirstLayerForwardBitEqualsDense)
{
    // The tentpole equivalence at the model level: a forward pass
    // whose first layer consumes CSR features must produce the SAME
    // bytes as the dense pass on the densified image — gemm and
    // sparseTimesDense accumulate each output element's non-zero
    // terms in the same ascending-k order.
    auto hi = hubAndIslandGraph({.numNodes = 300, .seed = 21});
    Rng rng(19);
    Features dense;
    dense.dense = DenseMatrix(300, 64);
    dense.dense.fillRandomSparse(rng, 0.01, 1.0f);
    Features sparse;
    sparse.sparse = true;
    sparse.csr = denseToCsrFeatures(dense.dense);

    ModelConfig mc;
    mc.layers = {{64, 12}, {12, 4}};
    auto weights = makeWeights(mc, rng);

    DenseMatrix a = referenceForward(hi.graph, dense, weights);
    DenseMatrix b = referenceForward(hi.graph, sparse, weights);
    ASSERT_EQ(a.rows(), b.rows());
    EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                          a.data().size() * sizeof(float)),
              0);

    DenseMatrix fa = factoredForward(hi.graph, dense, weights);
    DenseMatrix fb = factoredForward(hi.graph, sparse, weights);
    EXPECT_EQ(std::memcmp(fa.data().data(), fb.data().data(),
                          fa.data().size() * sizeof(float)),
              0);
}

TEST(Layer, SubgraphForwardSparseOverloadBitEqualsDense)
{
    // The serving path's building block: the CsrFeatures overload of
    // subgraphForward must be byte-equal to the dense overload on
    // the densified image (and the dense overload itself is the
    // unchanged pre-sparse operation sequence).
    auto hi = hubAndIslandGraph({.numNodes = 250, .seed = 33});
    Rng rng(23);
    DenseMatrix x(250, 40);
    x.fillRandomSparse(rng, 0.05, 1.0f);
    CsrFeatures xs = denseToCsrFeatures(x);
    std::vector<float> scale = degreeScaling(hi.graph);

    ModelConfig mc;
    mc.layers = {{40, 10}, {10, 3}};
    auto weights = makeWeights(mc, rng);

    DenseMatrix a = subgraphForward(hi.graph, scale, x, weights);
    DenseMatrix b = subgraphForward(hi.graph, scale, xs, weights);
    ASSERT_EQ(a.rows(), b.rows());
    EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                          a.data().size() * sizeof(float)),
              0);
}

TEST(Reference, NoLayersThrows)
{
    CsrGraph g = pathGraph(3);
    Features x;
    x.dense = DenseMatrix(3, 2);
    EXPECT_THROW(referenceForward(g, x, {}), std::invalid_argument);
}

TEST(Reference, WeightScaleBounded)
{
    ModelConfig mc;
    mc.layers = {{1024, 64}};
    Rng rng(5);
    auto w = makeWeights(mc, rng);
    float bound = 1.0f / std::sqrt(1024.0f);
    for (float v : w[0].data())
        EXPECT_LE(std::fabs(v), bound);
}

} // namespace
} // namespace igcn
