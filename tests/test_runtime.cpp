/**
 * @file
 * Parallel runtime tests: thread-pool semantics (static partitioning,
 * empty ranges, exception propagation, nested-parallelFor sequential
 * fallback) and thread-count parity of the parallel kernels. Island-node rows,
 * SpMM and GEMM are bit-identical at every thread count by
 * construction; hub rows re-associate float adds at worker
 * boundaries, so whole-result comparisons use a small tolerance.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <tuple>

#include "core/consumer.hpp"
#include "core/locator.hpp"
#include "gcn/reference.hpp"
#include "gcn/training.hpp"
#include "graph/generators.hpp"
#include "runtime/thread_pool.hpp"
#include "spmm/spmm.hpp"

namespace igcn {
namespace {

constexpr double kTol = 1e-4;
const int kThreadCounts[] = {1, 2, 8};

/** Restore the default global pool after each test. */
class RuntimeTest : public ::testing::Test
{
  protected:
    void TearDown() override { setGlobalThreads(0); }
};

// ---------------------------------------------------------------------
// Thread-pool unit tests
// ---------------------------------------------------------------------

TEST_F(RuntimeTest, EmptyRangeNeverInvokesBody)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, [&](int, size_t, size_t) { calls++; });
    pool.parallelFor(7, 3, [&](int, size_t, size_t) { calls++; });
    EXPECT_EQ(calls.load(), 0);
}

TEST_F(RuntimeTest, CoversRangeExactlyOnce)
{
    for (int threads : kThreadCounts) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(1000);
        pool.parallelFor(0, hits.size(),
                         [&](int, size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i)
                hits[i]++;
        });
        for (size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i
                << " at " << threads << " threads";
    }
}

TEST_F(RuntimeTest, StaticPartitionIsContiguousAndOrdered)
{
    ThreadPool pool(4);
    std::mutex mu;
    std::vector<std::tuple<int, size_t, size_t>> chunks;
    pool.parallelFor(10, 110, [&](int w, size_t lo, size_t hi) {
        std::lock_guard<std::mutex> lk(mu);
        chunks.emplace_back(w, lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    ASSERT_EQ(chunks.size(), 4u);
    size_t expect_lo = 10;
    for (int w = 0; w < 4; ++w) {
        EXPECT_EQ(std::get<0>(chunks[w]), w);
        EXPECT_EQ(std::get<1>(chunks[w]), expect_lo);
        expect_lo = std::get<2>(chunks[w]);
    }
    EXPECT_EQ(expect_lo, 110u);
}

TEST_F(RuntimeTest, MinPerWorkerCapsSplit)
{
    ThreadPool pool(8);
    std::mutex mu;
    std::set<int> workers;
    pool.parallelFor(0, 10, [&](int w, size_t, size_t) {
        std::lock_guard<std::mutex> lk(mu);
        workers.insert(w);
    }, /*min_per_worker=*/10);
    EXPECT_EQ(workers.size(), 1u); // whole range fits one chunk
}

TEST_F(RuntimeTest, ExceptionPropagatesToCaller)
{
    for (int threads : kThreadCounts) {
        ThreadPool pool(threads);
        EXPECT_THROW(
            pool.parallelFor(0, 100, [&](int, size_t lo, size_t) {
                if (lo == 0)
                    throw std::runtime_error("chunk failure");
            }),
            std::runtime_error) << threads << " threads";
        // The pool must stay usable after an exception.
        std::atomic<int> sum{0};
        pool.parallelFor(0, 10, [&](int, size_t lo, size_t hi) {
            sum += static_cast<int>(hi - lo);
        });
        EXPECT_EQ(sum.load(), 10);
    }
}

TEST_F(RuntimeTest, NestedParallelForFallsBackToSequential)
{
    // Regression: a nested parallelFor used to throw std::logic_error;
    // it must instead run the whole inner range inline as worker 0.
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(64);
        std::atomic<int> inner_chunks{0};
        std::atomic<bool> saw_nonzero_worker{false};
        pool.parallelFor(0, 4, [&](int, size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) {
                pool.parallelFor(0, hits.size(),
                                 [&](int w, size_t a, size_t b) {
                    inner_chunks++;
                    if (w != 0)
                        saw_nonzero_worker = true;
                    for (size_t j = a; j < b; ++j)
                        hits[j]++;
                });
            }
        });
        for (size_t j = 0; j < hits.size(); ++j)
            ASSERT_EQ(hits[j].load(), 4) << "index " << j << " at "
                << threads << " threads";
        // Every nested call ran as exactly one inline chunk.
        EXPECT_EQ(inner_chunks.load(), 4) << threads << " threads";
        EXPECT_FALSE(saw_nonzero_worker.load()) << threads << " threads";
    }
}

TEST_F(RuntimeTest, KernelCalledInsideParallelForRunsSequentially)
{
    // Regression for the nested-rejection path: a parallel kernel
    // (which uses the global pool internally) invoked from inside a
    // parallelFor body must degrade to its sequential form and still
    // produce the right answer, not abort.
    setGlobalThreads(4);
    Rng rng(55);
    DenseMatrix a(37, 21), b(21, 13);
    a.fillRandom(rng);
    b.fillRandom(rng);
    const DenseMatrix expected = gemm(a, b);

    CsrGraph g = erdosRenyi(300, 5.0, 71);
    CsrMatrix m = CsrMatrix::fromGraph(g);
    DenseMatrix y(300, 20);
    y.fillRandom(rng);
    const DenseMatrix spmm_expected = spmmPullRowWise(m, y, nullptr);

    std::mutex mu;
    std::vector<DenseMatrix> gemms, spmms;
    globalPool().parallelFor(0, 4, [&](int, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
            DenseMatrix c = gemm(a, b);
            DenseMatrix s = spmmPullRowWise(m, y, nullptr);
            std::lock_guard<std::mutex> lk(mu);
            gemms.push_back(std::move(c));
            spmms.push_back(std::move(s));
        }
    });
    ASSERT_EQ(gemms.size(), 4u);
    for (const DenseMatrix &c : gemms)
        EXPECT_EQ(c.data(), expected.data());
    for (const DenseMatrix &s : spmms)
        EXPECT_EQ(s.data(), spmm_expected.data());
}

TEST_F(RuntimeTest, GlobalPoolResize)
{
    setGlobalThreads(3);
    EXPECT_EQ(globalThreads(), 3);
    setGlobalThreads(1);
    EXPECT_EQ(globalThreads(), 1);
    setGlobalThreads(0); // restore default sizing
    EXPECT_GE(globalThreads(), 1);
}

// ---------------------------------------------------------------------
// Kernel parity across thread counts
// ---------------------------------------------------------------------

struct FamilyCase
{
    const char *name;
    CsrGraph graph;
};

std::vector<FamilyCase>
graphFamilies()
{
    std::vector<FamilyCase> cases;
    HubIslandParams hp;
    hp.numNodes = 1500;
    hp.seed = 91;
    cases.push_back({"hub-island", hubAndIslandGraph(hp).graph});
    cases.push_back({"erdos-renyi", erdosRenyi(1200, 6.0, 17)});
    cases.push_back({"rmat",
                     rmat(1024, 6000, 0.57, 0.19, 0.19, 23)});
    cases.push_back({"barabasi-albert", barabasiAlbert(1000, 3, 29)});
    return cases;
}

TEST_F(RuntimeTest, AggregateViaIslandsParityAcrossThreads)
{
    for (const FamilyCase &fc : graphFamilies()) {
        IslandizationResult isl = islandize(fc.graph);
        Rng rng(41);
        DenseMatrix y(fc.graph.numNodes(), 24);
        y.fillRandom(rng);
        RedundancyConfig cfg;

        setGlobalThreads(1);
        AggOpStats base_stats;
        DenseMatrix base =
            aggregateViaIslands(fc.graph, isl, y, cfg, &base_stats);

        for (int threads : kThreadCounts) {
            setGlobalThreads(threads);
            AggOpStats stats;
            DenseMatrix z =
                aggregateViaIslands(fc.graph, isl, y, cfg, &stats);
            EXPECT_LE(maxAbsDiff(z, base), kTol)
                << fc.name << " @ " << threads << " threads";
            // Op accounting is integer arithmetic: must be exact.
            EXPECT_EQ(stats.baselineOps, base_stats.baselineOps)
                << fc.name;
            EXPECT_EQ(stats.optimizedOps(), base_stats.optimizedOps())
                << fc.name;
        }
    }
}

TEST_F(RuntimeTest, AggregateDeterministicPerThreadCount)
{
    // Two runs at the same thread count must agree bit-for-bit: the
    // static partitioning and worker-order hub reduction leave no
    // scheduling dependence in the result.
    HubIslandParams hp;
    hp.numNodes = 2000;
    hp.seed = 5;
    CsrGraph g = hubAndIslandGraph(hp).graph;
    IslandizationResult isl = islandize(g);
    Rng rng(77);
    DenseMatrix y(g.numNodes(), 17);
    y.fillRandom(rng);

    setGlobalThreads(4);
    DenseMatrix z1 = aggregateViaIslands(g, isl, y, {});
    DenseMatrix z2 = aggregateViaIslands(g, isl, y, {});
    EXPECT_EQ(z1.data(), z2.data());
}

TEST_F(RuntimeTest, SpmmPullRowWiseParityAcrossThreads)
{
    for (const FamilyCase &fc : graphFamilies()) {
        CsrMatrix a = CsrMatrix::fromGraph(fc.graph);
        Rng vrng(13);
        for (float &v : a.values)
            v = vrng.nextFloat(2.0f);
        Rng rng(19);
        // 100 channels spans one full tile plus a ragged remainder.
        DenseMatrix b(fc.graph.numNodes(), 100);
        b.fillRandom(rng);

        setGlobalThreads(1);
        SpmmCounters base_cnt;
        DenseMatrix base = spmmPullRowWise(a, b, &base_cnt);

        for (int threads : kThreadCounts) {
            setGlobalThreads(threads);
            SpmmCounters cnt;
            DenseMatrix c = spmmPullRowWise(a, b, &cnt);
            // Per-element edge order is thread-invariant: exact.
            EXPECT_EQ(c.data(), base.data())
                << fc.name << " @ " << threads << " threads";
            EXPECT_EQ(cnt.aReads, base_cnt.aReads) << fc.name;
            EXPECT_EQ(cnt.bIrregularReads, base_cnt.bIrregularReads)
                << fc.name;
            EXPECT_EQ(cnt.macOps, base_cnt.macOps) << fc.name;
            EXPECT_EQ(cnt.cStreamedWrites, base_cnt.cStreamedWrites)
                << fc.name;
        }
    }
}

TEST_F(RuntimeTest, GemmParityAcrossThreads)
{
    Rng rng(31);
    // Odd shapes exercise ragged row blocks and k tiles.
    DenseMatrix a(173, 89), b(89, 67);
    a.fillRandom(rng);
    b.fillRandom(rng);

    setGlobalThreads(1);
    DenseMatrix base = gemm(a, b);

    for (int threads : kThreadCounts) {
        setGlobalThreads(threads);
        DenseMatrix c = gemm(a, b);
        EXPECT_EQ(c.data(), base.data()) << threads << " threads";
    }
}

TEST_F(RuntimeTest, ForwardAndTrainingParityAcrossThreads)
{
    HubIslandParams hp;
    hp.numNodes = 800;
    hp.seed = 3;
    CsrGraph g = hubAndIslandGraph(hp).graph;
    IslandizationResult isl = islandize(g);
    Rng rng(9);
    Features x = makeFeatures(g.numNodes(), 32, 0.5, rng);
    std::vector<DenseMatrix> weights;
    weights.emplace_back(32, 16);
    weights.emplace_back(16, 7);
    for (auto &w : weights)
        w.fillRandom(rng, 0.5f);
    DenseMatrix target(g.numNodes(), 7);
    target.fillRandom(rng);

    setGlobalThreads(1);
    DenseMatrix ref = referenceForward(g, x, weights);
    DenseMatrix base_fwd =
        gcnForwardViaIslands(g, isl, x, weights, {});
    ForwardCache base_cache = trainingForward(g, isl, x, weights, {});
    DenseMatrix base_grad_out;
    mseLoss(base_cache.output, target, &base_grad_out);
    Gradients base_grads = trainingBackward(
        g, isl, x, weights, base_cache, base_grad_out, {});

    for (int threads : kThreadCounts) {
        setGlobalThreads(threads);
        DenseMatrix fwd = gcnForwardViaIslands(g, isl, x, weights, {});
        EXPECT_LE(maxAbsDiff(fwd, base_fwd), kTol)
            << threads << " threads";
        EXPECT_LE(maxAbsDiff(fwd, ref), kTol)
            << threads << " threads vs reference";

        ForwardCache cache = trainingForward(g, isl, x, weights, {});
        DenseMatrix grad_out;
        mseLoss(cache.output, target, &grad_out);
        Gradients grads = trainingBackward(g, isl, x, weights, cache,
                                           grad_out, {});
        ASSERT_EQ(grads.weightGrads.size(),
                  base_grads.weightGrads.size());
        for (size_t l = 0; l < grads.weightGrads.size(); ++l)
            EXPECT_LE(maxAbsDiff(grads.weightGrads[l],
                                 base_grads.weightGrads[l]), kTol)
                << "layer " << l << " @ " << threads << " threads";
    }
}

} // namespace
} // namespace igcn
