/**
 * @file
 * Dataset surrogate and generator tests: published statistics are
 * matched, generation is deterministic, and the generators cover the
 * structural regimes the paper's evaluation depends on.
 */

#include <gtest/gtest.h>

#include "core/locator.hpp"
#include "core/redundancy.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace igcn {
namespace {

TEST(Generators, HubIslandDeterministic)
{
    HubIslandParams p;
    p.numNodes = 500;
    p.seed = 123;
    auto a = hubAndIslandGraph(p);
    auto b = hubAndIslandGraph(p);
    EXPECT_EQ(a.graph, b.graph);
    EXPECT_EQ(a.islandOf, b.islandOf);
}

TEST(Generators, HubIslandStructure)
{
    HubIslandParams p;
    p.numNodes = 2000;
    p.seed = 9;
    auto hi = hubAndIslandGraph(p);
    EXPECT_TRUE(hi.graph.isSymmetric());
    EXPECT_EQ(hi.graph.numSelfLoops(), 0u);
    EXPECT_GT(hi.numIslands, 50u);

    // Planted hubs should have clearly higher average degree.
    double hub_deg = 0.0, island_deg = 0.0;
    NodeId hubs = 0, islands = 0;
    for (NodeId v = 0; v < 2000; ++v) {
        if (hi.isHub[v]) {
            hub_deg += hi.graph.degree(v);
            hubs++;
        } else {
            island_deg += hi.graph.degree(v);
            islands++;
        }
    }
    EXPECT_GT(hub_deg / hubs, 2.0 * island_deg / islands);
}

TEST(Generators, ErdosRenyiDegree)
{
    CsrGraph g = erdosRenyi(5000, 8.0, 3);
    EXPECT_NEAR(g.avgDegree(), 8.0, 0.8);
    EXPECT_TRUE(g.isSymmetric());
}

TEST(Generators, RmatSkewed)
{
    CsrGraph g = rmat(4096, 40000, 0.57, 0.19, 0.19, 5);
    // R-MAT should give a heavy-tailed degree distribution.
    EXPECT_GT(g.maxDegree(), 8 * g.avgDegree());
}

TEST(Generators, BarabasiAlbertPowerLaw)
{
    CsrGraph g = barabasiAlbert(5000, 4, 7);
    EXPECT_TRUE(g.isSymmetric());
    // Preferential attachment: heavy-tailed degrees.
    EXPECT_GT(g.maxDegree(), 10 * g.avgDegree());
    // Connected by construction (every node attaches to the core).
    auto [comp, n] = connectedComponents(g);
    EXPECT_EQ(n, 1u);
    EXPECT_THROW(barabasiAlbert(10, 0, 1), std::invalid_argument);
}

TEST(Generators, WattsStrogatzSmallWorld)
{
    CsrGraph ring = wattsStrogatz(1000, 3, 0.0, 9);
    // beta = 0: pure ring lattice, every node degree 2k.
    for (NodeId v = 0; v < 1000; ++v)
        EXPECT_EQ(ring.degree(v), 6u);

    CsrGraph rewired = wattsStrogatz(1000, 3, 0.2, 9);
    EXPECT_TRUE(rewired.isSymmetric());
    // Rewiring spreads degrees but keeps the average.
    EXPECT_NEAR(rewired.avgDegree(), 6.0, 0.5);
    EXPECT_GT(rewired.maxDegree(), 6u);
    EXPECT_THROW(wattsStrogatz(10, 0, 0.1, 1),
                 std::invalid_argument);
}

TEST(Generators, CanonicalShapes)
{
    EXPECT_EQ(completeGraph(6).numEdges(), 30u);
    EXPECT_EQ(pathGraph(6).numEdges(), 10u);
    EXPECT_EQ(starGraph(6).numEdges(), 10u);
}

TEST(Datasets, InfoTableMatchesPaper)
{
    // Node/feature/class counts from the published dataset tables.
    EXPECT_EQ(datasetInfo(Dataset::Cora).numNodes, 2708u);
    EXPECT_EQ(datasetInfo(Dataset::Cora).numFeatures, 1433);
    EXPECT_EQ(datasetInfo(Dataset::Cora).numClasses, 7);
    EXPECT_EQ(datasetInfo(Dataset::Citeseer).numNodes, 3327u);
    EXPECT_EQ(datasetInfo(Dataset::Pubmed).numNodes, 19717u);
    EXPECT_EQ(datasetInfo(Dataset::Nell).numNodes, 65755u);
    EXPECT_EQ(datasetInfo(Dataset::Nell).numFeatures, 61278);
    EXPECT_EQ(datasetInfo(Dataset::Reddit).numNodes, 232965u);
    EXPECT_EQ(datasetInfo(Dataset::Reddit).numClasses, 41);
}

TEST(Datasets, ScaledBuildShrinks)
{
    auto full_info = datasetInfo(Dataset::Cora);
    auto half = buildDataset(Dataset::Cora, 0.5);
    EXPECT_NEAR(half.numNodes(), full_info.numNodes * 0.5, 2.0);
    EXPECT_THROW(buildDataset(Dataset::Cora, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(buildDataset(Dataset::Cora, 1.5),
                 std::invalid_argument);
}

TEST(Datasets, EdgeCountNearTarget)
{
    // Within 2x of the published directed edge counts (the surrogate
    // trades exact edge counts for matching community/pruning shape).
    for (Dataset d : {Dataset::Cora, Dataset::Citeseer,
                      Dataset::Pubmed, Dataset::Nell}) {
        auto data = buildDataset(d);
        double ratio = static_cast<double>(data.numEdges()) /
            data.info.targetDirectedEdges;
        EXPECT_GT(ratio, 0.5) << data.info.name;
        EXPECT_LT(ratio, 2.0) << data.info.name;
    }
}

TEST(Datasets, PruningRatesInPaperBand)
{
    // Figure 10's headline: aggregation pruning per dataset. The
    // paper reports 39/40/35/46/29 percent; the surrogates must land
    // in the same band with Reddit lowest among the five.
    double rates[4];
    int i = 0;
    for (Dataset d : {Dataset::Cora, Dataset::Citeseer,
                      Dataset::Pubmed, Dataset::Nell}) {
        auto data = buildDataset(d, d == Dataset::Nell ? 0.5 : 1.0);
        auto isl = islandize(data.graph);
        PruningReport r = countPruning(data.graph, isl, {});
        rates[i++] = r.aggPruningRate();
    }
    for (double rate : rates) {
        EXPECT_GT(rate, 0.20);
        EXPECT_LT(rate, 0.60);
    }
}

TEST(Datasets, RngDistributions)
{
    Rng rng(1);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);

    // Bounded draws stay in range and hit both halves.
    int low = 0;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.nextBounded(10);
        EXPECT_LT(v, 10u);
        if (v < 5)
            low++;
    }
    EXPECT_GT(low, 350);
    EXPECT_LT(low, 650);

    // Power law: min more likely than max; bounds respected.
    uint64_t at_min = 0;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.nextPowerLaw(1, 100, 2.0);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 100u);
        if (v == 1)
            at_min++;
    }
    EXPECT_GT(at_min, 300u);
}

} // namespace
} // namespace igcn
