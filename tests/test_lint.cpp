/**
 * @file
 * The determinism-contract linter's own test suite: per-rule fixture
 * tests (positive, negative, and suppression, with exact-message
 * assertions) plus a self-lint proving the real src/ + tools/ tree is
 * clean. tests/lint_fixtures/README.md describes the corpus.
 *
 * Fixtures are linted as *text* — never compiled — so path-scoped
 * rules are exercised by passing synthetic repo-relative paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace fs = std::filesystem;
using igcn::lint::Diagnostic;
using igcn::lint::lintText;

namespace {

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Fixture contents by basename. */
std::string
fixture(const std::string &name)
{
    return readFile(fs::path(IGCN_SOURCE_DIR) / "tests" /
                    "lint_fixtures" / name);
}

/** Lint a fixture under a synthetic repo-relative path. */
std::vector<Diagnostic>
lintFixture(const std::string &name, const std::string &rel_path)
{
    return lintText(rel_path, fixture(name));
}

std::vector<std::string>
rendered(const std::vector<Diagnostic> &diags)
{
    std::vector<std::string> out;
    out.reserve(diags.size());
    for (const Diagnostic &d : diags)
        out.push_back(d.str());
    return out;
}

} // namespace

// ------------------------------------------------------------- no-rand

TEST(LintNoRand, FlagsEveryRandomnessSourceWithExactMessages)
{
    const auto diags =
        lintFixture("no_rand_bad.cpp", "src/spmm/fixture.cpp");
    const std::string msg =
        "non-deterministic randomness in a deterministic scope; "
        "draw from the seeded igcn::Rng instead";
    ASSERT_EQ(diags.size(), 5u);
    EXPECT_EQ(diags[0].str(),
              "src/spmm/fixture.cpp:9: [no-rand] " + msg);
    EXPECT_EQ(diags[1].str(),
              "src/spmm/fixture.cpp:10: [no-rand] " + msg);
    EXPECT_EQ(diags[2].str(),
              "src/spmm/fixture.cpp:16: [no-rand] " + msg);
    EXPECT_EQ(diags[3].str(),
              "src/spmm/fixture.cpp:17: [no-rand] " + msg);
    EXPECT_EQ(diags[4].str(),
              "src/spmm/fixture.cpp:23: [no-rand] " + msg);
}

TEST(LintNoRand, ScopedByPathEvenWithoutTag)
{
    // Strip the tag line: path alone must still put the file in
    // deterministic scope under src/graph/, and must not under
    // tools/.
    std::string text = fixture("no_rand_bad.cpp");
    text = text.substr(text.find('\n') + 1);
    EXPECT_FALSE(lintText("src/graph/fixture.cpp", text).empty());
    EXPECT_TRUE(lintText("tools/fixture.cpp", text).empty());
}

TEST(LintNoRand, IgnoresNearMissIdentifiersStringsAndComments)
{
    EXPECT_TRUE(
        lintFixture("no_rand_good.cpp", "src/spmm/fixture.cpp")
            .empty());
}

TEST(LintNoRand, AllowCommentSuppressesSameAndPreviousLine)
{
    EXPECT_TRUE(
        lintFixture("no_rand_suppressed.cpp", "src/spmm/fixture.cpp")
            .empty());
}

// -------------------------------------------------------- no-wallclock

TEST(LintNoWallclock, FlagsSystemClock)
{
    const auto diags =
        lintFixture("no_wallclock_bad.cpp", "src/serve/fixture.cpp");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].str(),
              "src/serve/fixture.cpp:7: [no-wallclock] "
              "std::chrono::system_clock in a deterministic scope; "
              "replay code must use the virtual clock (steady_clock "
              "is allowed for real-time-mode stamps)");
}

TEST(LintNoWallclock, SteadyClockIsAllowed)
{
    // Linted outside src/serve/ (the tag supplies deterministic
    // scope): no-wallclock tolerates steady_clock everywhere; inside
    // src/serve/ the separate clock-via-obs rule takes over.
    EXPECT_TRUE(
        lintFixture("no_wallclock_good.cpp", "src/gcn/fixture.cpp")
            .empty());
}

TEST(LintNoWallclock, Suppressible)
{
    EXPECT_TRUE(lintFixture("no_wallclock_suppressed.cpp",
                            "src/serve/fixture.cpp")
                    .empty());
}

// ---------------------------------------------- no-unordered-iteration

TEST(LintUnorderedIteration, FlagsRangeForAndIteratorLoops)
{
    const auto diags = lintFixture("unordered_iteration_bad.cpp",
                                   "tools/fixture.cpp");
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].str(),
              "tools/fixture.cpp:12: [no-unordered-iteration] "
              "iteration over unordered container 'counts' in a "
              "deterministic file; hash-iteration order is "
              "implementation-defined");
    EXPECT_EQ(diags[1].line, 14u);
    EXPECT_EQ(diags[1].rule, "no-unordered-iteration");
    EXPECT_NE(diags[1].message.find("'seen'"), std::string::npos);
}

TEST(LintUnorderedIteration, OnlyAppliesToTaggedFiles)
{
    // This rule keys off the tag, not the path: the same content
    // untagged is clean even under src/.
    std::string text = fixture("unordered_iteration_bad.cpp");
    text = text.substr(text.find('\n') + 1);
    EXPECT_TRUE(lintText("src/graph/fixture.cpp", text).empty());
}

TEST(LintUnorderedIteration, LookupsAndOrderedContainersAreFine)
{
    EXPECT_TRUE(lintFixture("unordered_iteration_good.cpp",
                            "tools/fixture.cpp")
                    .empty());
}

TEST(LintUnorderedIteration, Suppressible)
{
    EXPECT_TRUE(lintFixture("unordered_iteration_suppressed.cpp",
                            "tools/fixture.cpp")
                    .empty());
}

// ------------------------------------------------------ csc-invalidate

TEST(LintCscInvalidate, FlagsMutationsWithoutInvalidate)
{
    const auto diags = lintFixture("csc_invalidate_bad.cpp",
                                   "tools/fixture.cpp");
    ASSERT_EQ(diags.size(), 3u);
    EXPECT_EQ(diags[0].str(),
              "tools/fixture.cpp:10: [csc-invalidate] mutation of "
              "'mat.values' without 'mat.invalidateCsc()' in this "
              "file; the cached CSC adjunct would go stale");
    EXPECT_EQ(diags[1].line, 16u);
    EXPECT_NE(diags[1].message.find("'mat.colIdx'"),
              std::string::npos);
    EXPECT_EQ(diags[2].line, 17u);
    EXPECT_NE(diags[2].message.find("'mat.rowPtr'"),
              std::string::npos);
}

TEST(LintCscInvalidate, InvalidateCallAndFreshLocalsAreClean)
{
    EXPECT_TRUE(lintFixture("csc_invalidate_good.cpp",
                            "tools/fixture.cpp")
                    .empty());
}

TEST(LintCscInvalidate, Suppressible)
{
    EXPECT_TRUE(lintFixture("csc_invalidate_suppressed.cpp",
                            "tools/fixture.cpp")
                    .empty());
}

// ----------------------------------------------- no-mixed-accumulation

TEST(LintMixedAccumulation, FlagsDoubleDeclaredInsideLoop)
{
    const auto diags =
        lintFixture("mixed_accum_bad.cpp", "src/spmm/fixture.cpp");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].str(),
              "src/spmm/fixture.cpp:9: [no-mixed-accumulation] "
              "double accumulator declared inside a loop in a "
              "deterministic scope; kernel reductions must stay in "
              "float to preserve bit-identity");
}

TEST(LintMixedAccumulation, DoublesOutsideLoopsAreFine)
{
    EXPECT_TRUE(
        lintFixture("mixed_accum_good.cpp", "src/spmm/fixture.cpp")
            .empty());
}

TEST(LintMixedAccumulation, Suppressible)
{
    EXPECT_TRUE(lintFixture("mixed_accum_suppressed.cpp",
                            "src/spmm/fixture.cpp")
                    .empty());
}

// ------------------------------------------ no-thread-outside-runtime

TEST(LintThreadOutsideRuntime, PurelyPathScoped)
{
    // The very same file: flagged under src/serve/, clean under
    // src/runtime/ and outside src/ entirely.
    const auto diags = lintFixture("thread_outside_runtime.cpp",
                                   "src/serve/fixture.cpp");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].str(),
              "src/serve/fixture.cpp:8: [no-thread-outside-runtime] "
              "std::thread outside src/runtime/; all parallelism "
              "must go through the IGCN_THREADS thread pool");

    EXPECT_TRUE(lintFixture("thread_outside_runtime.cpp",
                            "src/runtime/fixture.cpp")
                    .empty());
    EXPECT_TRUE(lintFixture("thread_outside_runtime.cpp",
                            "tools/fixture.cpp")
                    .empty());
}

TEST(LintThreadOutsideRuntime, Suppressible)
{
    EXPECT_TRUE(lintFixture("thread_suppressed.cpp",
                            "src/serve/fixture.cpp")
                    .empty());
}

// -------------------------------------------------------- no-fast-math

TEST(LintFastMath, FlagsPragmasAnywhere)
{
    // Not scope-gated: fast-math is banned tree-wide.
    const auto diags =
        lintFixture("fastmath_bad.cpp", "tools/fixture.cpp");
    ASSERT_EQ(diags.size(), 2u);
    const std::string msg =
        "fast-math-style pragma or flag; float re-association voids "
        "the bit-identity contract";
    EXPECT_EQ(diags[0].str(),
              "tools/fixture.cpp:1: [no-fast-math] " + msg);
    EXPECT_EQ(diags[1].str(),
              "tools/fixture.cpp:2: [no-fast-math] " + msg);
}

TEST(LintFastMath, PlainPragmasAreFine)
{
    EXPECT_TRUE(lintFixture("fastmath_good.cpp", "tools/fixture.cpp")
                    .empty());
}

TEST(LintFastMath, Suppressible)
{
    EXPECT_TRUE(
        lintFixture("fastmath_suppressed.cpp", "tools/fixture.cpp")
            .empty());
}

// --------------------------------------------------- nodiscard-factory

TEST(LintNodiscardFactory, FlagsUnmarkedDeclarationsInHeaders)
{
    const auto diags =
        lintFixture("nodiscard_bad.hpp", "src/graph/fixture.hpp");
    ASSERT_EQ(diags.size(), 3u);
    const std::string msg =
        "factory/builder declaration without [[nodiscard]]; "
        "discarding a builder result is always a bug";
    EXPECT_EQ(diags[0].str(),
              "src/graph/fixture.hpp:10: [nodiscard-factory] " + msg);
    EXPECT_EQ(diags[1].line, 11u);
    EXPECT_EQ(diags[2].line, 12u);
}

TEST(LintNodiscardFactory, HeadersOnly)
{
    // The same text under a .cpp path is out of scope — call sites
    // live in .cpp files and the rule targets API declarations.
    EXPECT_TRUE(
        lintFixture("nodiscard_bad.hpp", "src/graph/fixture.cpp")
            .empty());
}

TEST(LintNodiscardFactory, MarkedDeclarationsAndCallSitesAreClean)
{
    EXPECT_TRUE(
        lintFixture("nodiscard_good.hpp", "src/graph/fixture.hpp")
            .empty());
}

TEST(LintNodiscardFactory, Suppressible)
{
    EXPECT_TRUE(lintFixture("nodiscard_suppressed.hpp",
                            "src/graph/fixture.hpp")
                    .empty());
}

// ------------------------------------------------------- clock-via-obs

TEST(LintClockViaObs, FlagsRawSteadyClockInServe)
{
    const auto diags =
        lintFixture("clock_via_obs_bad.cpp", "src/serve/fixture.cpp");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].str(),
              "src/serve/fixture.cpp:6: [clock-via-obs] "
              "steady_clock::now() in src/serve/; real-time stamps "
              "must go through the obs::RealClock seam "
              "(obs/clock.hpp)");
}

TEST(LintClockViaObs, PurelyPathScoped)
{
    // The seam's own implementation (src/obs/) and the runtime's
    // profiling clock are the legitimate call sites.
    EXPECT_TRUE(
        lintFixture("clock_via_obs_bad.cpp", "src/obs/fixture.cpp")
            .empty());
    EXPECT_TRUE(lintFixture("clock_via_obs_bad.cpp",
                            "src/runtime/fixture.cpp")
                    .empty());
    EXPECT_TRUE(
        lintFixture("clock_via_obs_bad.cpp", "tools/fixture.cpp")
            .empty());
}

TEST(LintClockViaObs, SeamReadsAndNearMissesAreClean)
{
    EXPECT_TRUE(lintFixture("clock_via_obs_good.cpp",
                            "src/serve/fixture.cpp")
                    .empty());
}

TEST(LintClockViaObs, Suppressible)
{
    EXPECT_TRUE(lintFixture("clock_via_obs_suppressed.cpp",
                            "src/serve/fixture.cpp")
                    .empty());
}

// ----------------------------------------------------------- self-lint

TEST(LintTree, RealTreeIsClean)
{
    // The same walk the CLI and the lint_tree ctest perform: every
    // source file under src/ and tools/, linted in-process. A
    // violation here prints the exact diagnostics a developer would
    // see from `igcn_lint`.
    const fs::path root(IGCN_SOURCE_DIR);
    std::vector<fs::path> files;
    for (const char *sub : {"src", "tools"}) {
        for (const auto &entry :
             fs::recursive_directory_iterator(root / sub)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext =
                entry.path().extension().string();
            if (ext == ".cpp" || ext == ".hpp" || ext == ".h" ||
                ext == ".cc")
                files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    ASSERT_GT(files.size(), 50u) << "self-lint walked too few files; "
                                    "is IGCN_SOURCE_DIR right?";

    std::vector<std::string> violations;
    for (const fs::path &file : files) {
        const std::string rel =
            fs::relative(file, root).generic_string();
        for (const Diagnostic &d : lintText(rel, readFile(file)))
            violations.push_back(d.str());
    }
    EXPECT_TRUE(violations.empty())
        << violations.size() << " violation(s):\n"
        << [&] {
               std::ostringstream ss;
               for (const std::string &v : violations)
                   ss << "  " << v << "\n";
               return ss.str();
           }();
}

TEST(LintTree, CatalogueAndRenderingStable)
{
    // The CI per-rule summary keys off allRules(); keep the
    // catalogue order and the rendering format pinned.
    const auto &rules = igcn::lint::allRules();
    ASSERT_EQ(rules.size(), 9u);
    EXPECT_EQ(rules.front(), "no-rand");
    EXPECT_EQ(rules.back(), "clock-via-obs");

    Diagnostic d{"src/x.cpp", 7, "no-rand", "boom"};
    EXPECT_EQ(d.str(), "src/x.cpp:7: [no-rand] boom");

    const auto diags =
        lintFixture("no_rand_bad.cpp", "src/spmm/fixture.cpp");
    EXPECT_TRUE(std::is_sorted(
        diags.begin(), diags.end(),
        [](const Diagnostic &a, const Diagnostic &b) {
            return a.line < b.line;
        }))
        << "diagnostics must come out in line order: "
        << rendered(diags).size();
}

