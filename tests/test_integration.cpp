/**
 * @file
 * End-to-end integration tests crossing every module boundary: a
 * dataset surrogate flows through islandization, functional
 * inference, op accounting, the timing models, the permutation
 * renderer and the reordering baselines, with the cross-module
 * consistency conditions checked at every junction.
 */

#include <gtest/gtest.h>

#include "accel/awbgcn_model.hpp"
#include "accel/hygcn_model.hpp"
#include "accel/igcn_model.hpp"
#include "accel/platform_models.hpp"
#include "core/consumer.hpp"
#include "core/permute.hpp"
#include "gcn/variants.hpp"
#include "graph/datasets.hpp"
#include "reorder/metrics.hpp"
#include "reorder/reorder.hpp"

namespace igcn {
namespace {

TEST(Integration, CoraPipeline)
{
    // Build -> islandize -> count -> simulate, with every
    // cross-module consistency condition checked.
    auto data = buildDataset(Dataset::Cora, 0.3);
    auto isl = islandize(data.graph);

    // Structure side.
    ClusterCoverage cov = classifyCoverage(data.graph, isl);
    EXPECT_EQ(cov.outliers, 0u);
    PruningReport pruning = countPruning(data.graph, isl, {});
    EXPECT_EQ(pruning.baselineAggOps(),
              data.numEdges() + data.numNodes());

    // Functional side.
    Rng rng(1);
    Features x = makeFeatures(data.numNodes(), 128, 0.05, rng);
    ModelConfig mc;
    mc.layers = {{128, 16}, {16, 7}};
    auto weights = makeWeights(mc, rng);
    DenseMatrix golden = referenceForward(data.graph, x, weights);
    AggOpStats exec;
    DenseMatrix island_out =
        gcnForwardViaIslands(data.graph, isl, x, weights, {}, &exec);
    EXPECT_LT(maxAbsDiff(island_out, golden), 2e-4);

    // Executed op accounting matches the static accounting (two
    // layers, same structure).
    EXPECT_EQ(exec.baselineOps,
              2 * pruning.islandOps.baselineOps);

    // Timing side: ordering across platforms.
    HwConfig hw;
    ModelConfig full = modelConfig(Model::GCN, NetConfig::Algo,
                                   data.info);
    RunResult ig = simulateIgcn(data, full, hw, &isl);
    RunResult awb = simulateAwbGcn(data, full, hw);
    RunResult hy = simulateHyGcn(data, full);
    EXPECT_LT(ig.latencyUs, awb.latencyUs);
    EXPECT_LT(ig.latencyUs, hy.latencyUs);
    EXPECT_GT(ig.graphsPerKJ, awb.graphsPerKJ);

    // Workload consistency: the simulator's optimized op count can
    // never exceed the baseline accounting.
    EXPECT_LE(ig.stats.get("opsOptimized"), ig.stats.get("opsBase"));
}

TEST(Integration, ParallelLocatorFeedsConsumerLosslessly)
{
    auto data = buildDataset(Dataset::Citeseer, 0.2);
    LocatorConfig lcfg;
    lcfg.parallelEngines = true;
    lcfg.p2 = 32;
    auto isl = islandize(data.graph, lcfg);

    Rng rng(9);
    Features x = makeFeatures(data.numNodes(), 64, 0.05, rng);
    ModelConfig mc;
    mc.layers = {{64, 8}, {8, 6}};
    auto weights = makeWeights(mc, rng);
    DenseMatrix golden = referenceForward(data.graph, x, weights);
    DenseMatrix island_out =
        gcnForwardViaIslands(data.graph, isl, x, weights, {});
    EXPECT_LT(maxAbsDiff(island_out, golden), 2e-4);
}

TEST(Integration, ReorderedGraphStillIslandizes)
{
    // Islandization composes with any prior relabeling: reorder the
    // graph, islandize the result, coverage still exact.
    auto data = buildDataset(Dataset::Cora, 0.2);
    for (ReorderAlgo algo : {ReorderAlgo::Rabbit, ReorderAlgo::Dbg}) {
        ReorderResult rr = reorderGraph(data.graph, algo);
        CsrGraph permuted = data.graph.permuted(rr.perm);
        auto isl = islandize(permuted);
        EXPECT_EQ(classifyCoverage(permuted, isl).outliers, 0u);
        // Pruning opportunity is invariant under relabeling.
        PruningReport a = countPruning(data.graph,
                                       islandize(data.graph), {});
        PruningReport b = countPruning(permuted, isl, {});
        EXPECT_NEAR(a.aggPruningRate(), b.aggPruningRate(), 0.08);
    }
}

TEST(Integration, AllVariantsAllPlatformsRun)
{
    auto data = buildDataset(Dataset::Pubmed, 0.1);
    HwConfig hw;
    for (Model m : {Model::GCN, Model::GraphSage, Model::GIN}) {
        for (NetConfig net : {NetConfig::Algo, NetConfig::Hy}) {
            ModelConfig mc = modelConfig(m, net, data.info);
            RunResult ig = simulateIgcn(data, mc, hw);
            RunResult awb = simulateAwbGcn(data, mc, hw);
            RunResult hy = simulateHyGcn(data, mc);
            RunResult cpu = simulateCpu(data, mc, Framework::DGL);
            RunResult gpu = simulateGpu(data, mc, Framework::DGL);
            RunResult sig = simulateSigma(data, mc);
            for (const RunResult *r :
                 {&ig, &awb, &hy, &cpu, &gpu, &sig}) {
                EXPECT_GT(r->latencyUs, 0.0) << r->platform;
                EXPECT_GT(r->computeOps, 0.0) << r->platform;
                EXPECT_GT(r->graphsPerKJ, 0.0) << r->platform;
            }
            // I-GCN leads the accelerator pack on community graphs.
            EXPECT_LT(ig.latencyUs, awb.latencyUs) << mc.name;
        }
    }
}

TEST(Integration, RenderArtifactsConsistent)
{
    auto data = buildDataset(Dataset::Cora, 0.2);
    auto isl = islandize(data.graph);
    auto perm = islandizationOrder(isl);
    ASSERT_TRUE(isPermutation(perm));
    auto grid = renderDensityGrid(data.graph, perm, 32);
    // Total mass in the grid equals nnz (before normalization the
    // renderer counts every edge exactly once; after normalization
    // the max is 1 and nothing is lost).
    double max_v = 0.0;
    for (double v : grid)
        max_v = std::max(max_v, v);
    EXPECT_DOUBLE_EQ(max_v, 1.0);
    auto metrics = clusteringMetrics(data.graph, perm);
    EXPECT_GT(metrics.nnzInDenseCells, 0.3);
}

} // namespace
} // namespace igcn
