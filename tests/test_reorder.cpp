/**
 * @file
 * Reordering baseline tests: every algorithm returns a valid
 * permutation; the degree-ordering invariants of each scheme hold;
 * clustering metrics behave sanely.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/generators.hpp"
#include "reorder/metrics.hpp"
#include "reorder/reorder.hpp"

namespace igcn {
namespace {

class ReorderTest : public ::testing::TestWithParam<ReorderAlgo>
{};

TEST_P(ReorderTest, ProducesValidPermutation)
{
    auto hi = hubAndIslandGraph({.numNodes = 800, .seed = 21});
    ReorderResult r = reorderGraph(hi.graph, GetParam());
    EXPECT_TRUE(isPermutation(r.perm));
    EXPECT_GT(r.reorderTimeUs, 0.0);
}

TEST_P(ReorderTest, PermutedGraphPreservesStructure)
{
    auto hi = hubAndIslandGraph({.numNodes = 300, .seed = 5});
    ReorderResult r = reorderGraph(hi.graph, GetParam());
    CsrGraph p = hi.graph.permuted(r.perm);
    EXPECT_EQ(p.numEdges(), hi.graph.numEdges());
    for (NodeId v = 0; v < 300; ++v)
        EXPECT_EQ(p.degree(r.perm[v]), hi.graph.degree(v));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgos, ReorderTest,
    ::testing::ValuesIn(kAllReorderAlgos),
    [](const ::testing::TestParamInfo<ReorderAlgo> &info) {
        std::string name = reorderAlgoName(info.param);
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

TEST(Reorder, HubSortPlacesHighDegreeFirst)
{
    CsrGraph g = starGraph(50);
    ReorderResult r = reorderGraph(g, ReorderAlgo::HubSort);
    EXPECT_EQ(r.perm[0], 0u); // the center lands at position 0
}

TEST(Reorder, DbgGroupsMonotoneByDegree)
{
    auto hi = hubAndIslandGraph({.numNodes = 400, .seed = 8});
    ReorderResult r = reorderGraph(hi.graph, ReorderAlgo::Dbg);
    auto inv = inversePermutation(r.perm);
    // Degree bucket must be non-increasing along the new order.
    auto bucket = [&](NodeId v) {
        int b = 0;
        NodeId d = hi.graph.degree(v);
        while (d > 1) { d >>= 1; b++; }
        return b;
    };
    for (NodeId pos = 1; pos < 400; ++pos)
        EXPECT_GE(bucket(inv[pos - 1]), bucket(inv[pos]));
}

TEST(Reorder, RabbitImprovesBandOverRandomOrder)
{
    // Rabbit-like community order should concentrate non-zeros near
    // the diagonal far better than the identity order on a shuffled
    // community graph.
    auto hi = hubAndIslandGraph({.numNodes = 2000, .seed = 77});
    std::vector<NodeId> identity(2000);
    std::iota(identity.begin(), identity.end(), 0);
    auto base = clusteringMetrics(hi.graph, identity);
    auto rr = reorderGraph(hi.graph, ReorderAlgo::Rabbit);
    auto rabbit = clusteringMetrics(hi.graph, rr.perm);
    EXPECT_GT(rabbit.bandFraction, base.bandFraction);
    EXPECT_LT(rabbit.normalizedSpread, base.normalizedSpread);
}

TEST(Reorder, AlgoNamesUnique)
{
    std::set<std::string> names;
    for (ReorderAlgo a : kAllReorderAlgos)
        names.insert(reorderAlgoName(a));
    EXPECT_EQ(names.size(), std::size(kAllReorderAlgos));
}

TEST(Metrics, EmptyGraphSafe)
{
    CsrGraph g = CsrGraph::fromEdges(0, {});
    auto m = clusteringMetrics(g, {});
    EXPECT_DOUBLE_EQ(m.bandFraction, 0.0);
}

TEST(Metrics, PerfectDiagonal)
{
    // A path graph in natural order: all non-zeros adjacent to the
    // diagonal.
    CsrGraph g = pathGraph(1000);
    std::vector<NodeId> identity(1000);
    std::iota(identity.begin(), identity.end(), 0);
    auto m = clusteringMetrics(g, identity, /*band=*/0.01);
    EXPECT_DOUBLE_EQ(m.bandFraction, 1.0);
    EXPECT_LT(m.normalizedSpread, 0.01);
}

} // namespace
} // namespace igcn
