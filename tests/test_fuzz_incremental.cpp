/**
 * @file
 * Differential fuzz harness for the incremental islandization path.
 *
 * Seeded randomized add/remove edge streams over the four graph
 * families, replayed through `withAddedEdges` / `withRemovedEdges` +
 * `updateIslandization` against three independent oracles:
 *
 *  1. **Structural validity** after every batch: every node
 *     classified, island sizes within [1, cmax], and *exact* edge
 *     coverage — every edge is intra-island, listed island-hub, or a
 *     recorded inter-hub edge; the inter-hub map and every hub list
 *     contain no stale entries (sorted, unique, hub-roled, and
 *     backed by live edges). This is the full fresh-run
 *     postcondition set, checked directly rather than through
 *     derived metrics, so a dissolve-on-remove bug (stale hub list,
 *     leaked inter-hub entry, unclassified dirty node) fails loudly.
 *  2. **Thread invariance**: the entire replay — partition (island
 *     membership in BFS discovery order, roles, islandOf, hub
 *     rounds, inter-hub map) and the per-batch IncrementalStats
 *     sequence — is bit-identical at IGCN_THREADS 1/4/8, and
 *     from-scratch `islandize` on the evolved graph is itself
 *     bit-identical across the same thread counts (partition, stats,
 *     and task trace): the locator's determinism contract extends to
 *     the dynamic-graph path.
 *  3. **From-scratch equivalence**: the evolved graph equals a
 *     ground-truth edge-list rebuild, and the incremental partition
 *     matches from-scratch `islandize` on that graph in pruning
 *     quality (the partitions may legitimately differ in discovery
 *     order; the structure the consumer exploits may not degrade).
 *
 * Seed count per family comes from IGCN_FUZZ_SEEDS (default 12; CI
 * sets 50 → 200 seeds). The whole suite also runs under ASan+UBSan
 * in the sanitizer CI job.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>
#include <vector>

#include "core/incremental.hpp"
#include "core/redundancy.hpp"
#include "gcn/layer.hpp"
#include "graph/generators.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/agg_cache.hpp"
#include "spmm/spmm.hpp"

namespace igcn {
namespace {

int
fuzzSeedsPerFamily()
{
    if (const char *env = std::getenv("IGCN_FUZZ_SEEDS")) {
        const int v = std::atoi(env);
        if (v > 0)
            return v;
    }
    return 12;
}

struct Family
{
    const char *name;
    CsrGraph (*make)(uint64_t seed);
};

const Family kFamilies[] = {
    {"hub-island",
     [](uint64_t seed) {
         HubIslandParams hp;
         hp.numNodes = 420;
         hp.seed = seed;
         return hubAndIslandGraph(hp).graph;
     }},
    {"erdos-renyi",
     [](uint64_t seed) { return erdosRenyi(360, 5.0, seed); }},
    {"rmat",
     [](uint64_t seed) {
         return rmat(256, 1400, 0.57, 0.19, 0.19, seed);
     }},
    {"barabasi-albert",
     [](uint64_t seed) { return barabasiAlbert(300, 3, seed); }},
};

Edge
norm(NodeId u, NodeId v)
{
    return {std::min(u, v), std::max(u, v)};
}

/** One coalesced update span: additions and removals, disjoint. */
struct Batch
{
    std::vector<Edge> adds;
    std::vector<Edge> removes;
};

/**
 * Seeded add/remove stream over g0. A ground-truth edge *set* is
 * maintained alongside (the differential model): removals sample
 * uniformly from it, additions sample absent pairs, and within one
 * batch the two lists stay disjoint so the spans satisfy
 * updateIslandization's precondition directly.
 */
std::vector<Batch>
makeStream(const CsrGraph &g0, uint64_t seed, int num_batches,
           int events_per_batch, std::vector<Edge> *final_edges)
{
    Rng rng(seed);
    std::vector<Edge> present;
    for (const auto &[u, v] : g0.toEdges())
        if (u < v)
            present.push_back({u, v});
    std::set<Edge> member(present.begin(), present.end());

    std::vector<Batch> stream;
    for (int b = 0; b < num_batches; ++b) {
        Batch batch;
        std::set<Edge> touched;
        for (int e = 0; e < events_per_batch; ++e) {
            const bool remove =
                !present.empty() && rng.nextBool(0.5);
            if (remove) {
                const size_t i = rng.nextBounded(present.size());
                const Edge edge = present[i];
                if (!touched.insert(edge).second)
                    continue; // already mutated in this span
                batch.removes.push_back(edge);
                member.erase(edge);
                present[i] = present.back();
                present.pop_back();
            } else {
                const auto u = static_cast<NodeId>(
                    rng.nextBounded(g0.numNodes()));
                const auto v = static_cast<NodeId>(
                    rng.nextBounded(g0.numNodes()));
                if (u == v || member.count(norm(u, v)) ||
                    !touched.insert(norm(u, v)).second)
                    continue;
                batch.adds.push_back(norm(u, v));
                member.insert(norm(u, v));
                present.push_back(norm(u, v));
            }
        }
        stream.push_back(std::move(batch));
    }
    if (final_edges)
        final_edges->assign(member.begin(), member.end());
    return stream;
}

/**
 * The full fresh-run postcondition set, checked structurally (see
 * file comment). Returns via gtest expectations; `ctx` names the
 * failing seed/family/batch.
 */
void
verifyIslandization(const CsrGraph &g, const IslandizationResult &isl,
                    const LocatorConfig &cfg, const std::string &ctx)
{
    const NodeId n = g.numNodes();
    ASSERT_EQ(isl.role.size(), n) << ctx;
    ASSERT_EQ(isl.islandOf.size(), n) << ctx;

    // Node classification and islandOf consistency.
    std::vector<uint32_t> seen_in(n, IslandizationResult::kNoIsland);
    for (uint32_t i = 0; i < isl.islands.size(); ++i) {
        const Island &island = isl.islands[i];
        EXPECT_GE(island.nodes.size(), 1u) << ctx;
        EXPECT_LE(island.nodes.size(), cfg.maxIslandSize) << ctx;
        for (NodeId v : island.nodes) {
            EXPECT_EQ(isl.role[v], NodeRole::IslandNode) << ctx;
            EXPECT_EQ(isl.islandOf[v], i) << ctx;
            EXPECT_EQ(seen_in[v], IslandizationResult::kNoIsland)
                << ctx << ": node " << v << " in two islands";
            seen_in[v] = i;
        }
        // Hub lists: sorted, unique, hub-roled, backed by an edge.
        EXPECT_TRUE(std::is_sorted(island.hubs.begin(),
                                   island.hubs.end())) << ctx;
        EXPECT_EQ(std::adjacent_find(island.hubs.begin(),
                                     island.hubs.end()),
                  island.hubs.end()) << ctx;
        for (NodeId h : island.hubs) {
            EXPECT_EQ(isl.role[h], NodeRole::Hub)
                << ctx << ": island " << i << " lists non-hub " << h;
            bool adjacent = false;
            for (NodeId v : island.nodes)
                if (g.hasEdge(v, h)) {
                    adjacent = true;
                    break;
                }
            EXPECT_TRUE(adjacent)
                << ctx << ": island " << i << " lists stale hub "
                << h;
        }
    }
    for (NodeId v = 0; v < n; ++v) {
        ASSERT_NE(isl.role[v], NodeRole::Unclassified)
            << ctx << ": node " << v;
        if (isl.role[v] == NodeRole::IslandNode)
            EXPECT_EQ(seen_in[v], isl.islandOf[v]) << ctx;
        else
            EXPECT_EQ(isl.islandOf[v],
                      IslandizationResult::kNoIsland)
                << ctx << ": hub " << v;
    }

    // Inter-hub map: sorted unique normalized pairs of live hub-hub
    // edges (no stale entries).
    EXPECT_TRUE(std::is_sorted(isl.interHubEdges.begin(),
                               isl.interHubEdges.end())) << ctx;
    std::set<Edge> inter_hub(isl.interHubEdges.begin(),
                             isl.interHubEdges.end());
    EXPECT_EQ(inter_hub.size(), isl.interHubEdges.size()) << ctx;
    for (const auto &[a, b] : isl.interHubEdges) {
        EXPECT_LE(a, b) << ctx;
        EXPECT_TRUE(g.hasEdge(a, b))
            << ctx << ": stale inter-hub edge (" << a << ", " << b
            << ")";
        EXPECT_EQ(isl.role[a], NodeRole::Hub) << ctx;
        EXPECT_EQ(isl.role[b], NodeRole::Hub) << ctx;
    }

    // Exact edge coverage.
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v : g.neighbors(u)) {
            if (v < u)
                continue; // undirected: check each edge once
            const bool u_hub = isl.role[u] == NodeRole::Hub;
            const bool v_hub = isl.role[v] == NodeRole::Hub;
            if (u_hub && v_hub) {
                EXPECT_TRUE(inter_hub.count(norm(u, v)))
                    << ctx << ": uncovered hub-hub edge (" << u
                    << ", " << v << ")";
            } else if (!u_hub && !v_hub) {
                EXPECT_EQ(isl.islandOf[u], isl.islandOf[v])
                    << ctx << ": cross-island edge (" << u << ", "
                    << v << ")";
            } else {
                const NodeId inode = u_hub ? v : u;
                const NodeId hub = u_hub ? u : v;
                const auto &hubs =
                    isl.islands[isl.islandOf[inode]].hubs;
                EXPECT_TRUE(std::binary_search(hubs.begin(),
                                               hubs.end(), hub))
                    << ctx << ": island " << isl.islandOf[inode]
                    << " missing hub " << hub << " for edge (" << u
                    << ", " << v << ")";
            }
        }
    }

    // The consumer's accounting identity on top of the structure.
    EXPECT_EQ(countPruning(g, isl, {}).baselineAggOps(),
              g.numEdges() + g.numNodes()) << ctx;
}

/** Partition + BFS-order equality between two islandizations. */
void
expectIdenticalPartition(const IslandizationResult &a,
                         const IslandizationResult &b,
                         const std::string &ctx)
{
    ASSERT_EQ(a.islands.size(), b.islands.size()) << ctx;
    for (size_t i = 0; i < a.islands.size(); ++i) {
        EXPECT_EQ(a.islands[i].nodes, b.islands[i].nodes)
            << ctx << ": island " << i << " BFS order";
        EXPECT_EQ(a.islands[i].hubs, b.islands[i].hubs)
            << ctx << ": island " << i << " hub list";
        EXPECT_EQ(a.islands[i].round, b.islands[i].round)
            << ctx << ": island " << i << " round";
    }
    EXPECT_EQ(a.role, b.role) << ctx;
    EXPECT_EQ(a.islandOf, b.islandOf) << ctx;
    EXPECT_EQ(a.hubRound, b.hubRound) << ctx;
    EXPECT_EQ(a.interHubEdges, b.interHubEdges) << ctx;
    EXPECT_EQ(a.stats.islandsFound, b.stats.islandsFound) << ctx;
}

/** Locator stats + trace equality (from-scratch runs only). */
void
expectIdenticalStatsAndTrace(const IslandizationResult &a,
                             const IslandizationResult &b,
                             const std::string &ctx)
{
    EXPECT_EQ(a.stats.tasksGenerated, b.stats.tasksGenerated) << ctx;
    EXPECT_EQ(a.stats.tasksDroppedCollision,
              b.stats.tasksDroppedCollision) << ctx;
    EXPECT_EQ(a.stats.tasksDroppedOversize,
              b.stats.tasksDroppedOversize) << ctx;
    EXPECT_EQ(a.stats.edgesScanned, b.stats.edgesScanned) << ctx;
    EXPECT_EQ(a.stats.edgesScannedWasted, b.stats.edgesScannedWasted)
        << ctx;
    EXPECT_EQ(a.thresholds, b.thresholds) << ctx;
    ASSERT_EQ(a.taskTrace.size(), b.taskTrace.size()) << ctx;
    for (size_t i = 0; i < a.taskTrace.size(); ++i) {
        EXPECT_EQ(a.taskTrace[i].round, b.taskTrace[i].round) << ctx;
        EXPECT_EQ(a.taskTrace[i].outcome, b.taskTrace[i].outcome)
            << ctx;
        EXPECT_EQ(a.taskTrace[i].edgesScanned,
                  b.taskTrace[i].edgesScanned) << ctx;
    }
}

/** One full incremental replay of a stream at a fixed thread count. */
struct ReplayResult
{
    CsrGraph graph;
    IslandizationResult islands;
    std::vector<IncrementalStats> statsPerBatch;
};

ReplayResult
replayStream(const CsrGraph &g0, const std::vector<Batch> &stream,
             const LocatorConfig &cfg, int threads, bool verify,
             const std::string &ctx)
{
    setGlobalThreads(threads);
    ReplayResult r;
    r.graph = g0;
    r.islands = islandize(g0, cfg);
    for (size_t b = 0; b < stream.size(); ++b) {
        const Batch &batch = stream[b];
        // One merge sweep per batch: makeStream keeps adds/removes
        // disjoint, exactly withEditedEdges' contract. The two-pass
        // composition this replaced is differentially locked in by
        // OnePassEditedEpochsMatchTwoPassComposition below.
        CsrGraph next =
            r.graph.withEditedEdges(batch.adds, batch.removes);
        IncrementalStats stats;
        r.islands = updateIslandization(next, r.islands, batch.adds,
                                        batch.removes, cfg, &stats);
        r.graph = std::move(next);
        r.statsPerBatch.push_back(stats);
        if (verify)
            verifyIslandization(r.graph, r.islands, cfg,
                                ctx + " batch " + std::to_string(b));
    }
    return r;
}

TEST(FuzzIncremental, AddRemoveStreamsMatchFromScratchAtAllThreadCounts)
{
    const int seeds = fuzzSeedsPerFamily();
    LocatorConfig cfg;
    cfg.recordTrace = true; // locked into the cross-thread equality

    for (const Family &family : kFamilies) {
        for (int seed = 0; seed < seeds; ++seed) {
            const std::string ctx = std::string(family.name) +
                " seed " + std::to_string(seed);
            const CsrGraph g0 =
                family.make(1000 + static_cast<uint64_t>(seed));
            std::vector<Edge> model_edges;
            const std::vector<Batch> stream =
                makeStream(g0, 77 * seed + 5, /*num_batches=*/5,
                           /*events_per_batch=*/14, &model_edges);

            // Oracle 1: structural validity after every batch
            // (verified once, on the 1-thread replay).
            ReplayResult base = replayStream(g0, stream, cfg, 1,
                                             /*verify=*/true, ctx);

            // Oracle 3a: the evolved graph equals the ground-truth
            // edge-list rebuild (differential for the merge kernels).
            EXPECT_EQ(base.graph,
                      CsrGraph::fromEdges(g0.numNodes(), model_edges,
                                          /*symmetrize=*/true))
                << ctx;

            // Oracle 2: the whole replay is thread-invariant, and so
            // is from-scratch islandize on the evolved graph.
            setGlobalThreads(1);
            const IslandizationResult fresh1 =
                islandize(base.graph, cfg);
            for (int threads : {4, 8}) {
                const std::string tctx =
                    ctx + " @ " + std::to_string(threads) + "T";
                ReplayResult other =
                    replayStream(g0, stream, cfg, threads,
                                 /*verify=*/false, tctx);
                EXPECT_EQ(other.graph, base.graph) << tctx;
                expectIdenticalPartition(other.islands, base.islands,
                                         tctx + " (incremental)");
                EXPECT_EQ(other.statsPerBatch, base.statsPerBatch)
                    << tctx << " (incremental stats)";

                setGlobalThreads(threads);
                const IslandizationResult fresh =
                    islandize(base.graph, cfg);
                expectIdenticalPartition(fresh, fresh1,
                                         tctx + " (from-scratch)");
                expectIdenticalStatsAndTrace(fresh, fresh1, tctx);
            }

            // Oracle 3b: from-scratch equivalence of the partitions —
            // both valid (fresh verified by the same oracle), with
            // comparable pruning opportunity for the consumer.
            verifyIslandization(base.graph, fresh1, cfg,
                                ctx + " (from-scratch)");
            const double inc_rate =
                countPruning(base.graph, base.islands, {})
                    .aggPruningRate();
            const double fresh_rate =
                countPruning(base.graph, fresh1, {}).aggPruningRate();
            EXPECT_GT(inc_rate, fresh_rate - 0.12) << ctx;
        }
    }
    setGlobalThreads(0);
}

TEST(FuzzIncremental, CacheSurvivorsMatchColdRecomputeAtAllThreadCounts)
{
    // The aggregation cache's invalidation-sufficiency oracle
    // (serve/agg_cache.hpp): over every seeded add/remove stream,
    // feed an AggCache the per-island layer-1 rows of each epoch and
    // advance it through the real epoch delta — structural
    // provenance from updateIslandization intersected with
    // dirtyIslandEndpointSweep. Every entry that *survives* an
    // advance was filled from the previous epoch's graph; it must be
    // bit-identical to a cold recompute on the new graph, at
    // IGCN_THREADS 1, 4 and 8. A provenance or dirty-sweep bug that
    // lets a changed island carry its old bytes forward fails the
    // memcmp; the cross-thread stats comparison pins the hit/miss
    // sequence as thread-invariant.
    const int seeds = fuzzSeedsPerFamily();
    LocatorConfig cfg;
    const int feat = 8, hidden = 8;

    const auto layer1 = [&](const CsrGraph &g, const DenseMatrix &x,
                            const DenseMatrix &w0) {
        return spmmPullRowWise(normalizedAdjacency(g), gemm(x, w0));
    };
    const auto islandRows = [&](const Island &island,
                                const DenseMatrix &h1) {
        std::vector<float> rows;
        rows.reserve(island.nodes.size() * hidden);
        for (NodeId v : island.nodes)
            rows.insert(rows.end(), h1.row(v), h1.row(v) + hidden);
        return rows;
    };

    for (const Family &family : kFamilies) {
        for (int seed = 0; seed < seeds; ++seed) {
            const std::string ctx = std::string(family.name) +
                " seed " + std::to_string(seed) + " (agg-cache)";
            const CsrGraph g0 =
                family.make(3000 + static_cast<uint64_t>(seed));
            const std::vector<Batch> stream =
                makeStream(g0, 53 * seed + 11, /*num_batches=*/5,
                           /*events_per_batch=*/14, nullptr);
            Rng rng(91 * seed + 2);
            DenseMatrix x(g0.numNodes(), feat);
            x.fillRandom(rng, 1.0f);
            DenseMatrix w0(feat, hidden);
            w0.fillRandom(rng, 0.5f);

            std::vector<serve::AggCacheStats> perThread;
            for (int threads : {1, 4, 8}) {
                setGlobalThreads(threads);
                const std::string tctx =
                    ctx + " @ " + std::to_string(threads) + "T";
                CsrGraph g = g0;
                IslandizationResult isl = islandize(g, cfg);
                serve::AggCache cache(
                    {.enabled = true, .maxBytes = 1ull << 30});
                uint64_t epoch = 0;
                cache.advance(epoch, false, 0, {});
                DenseMatrix h1 = layer1(g, x, w0);
                for (uint32_t i = 0; i < isl.islands.size(); ++i)
                    cache.insert(epoch, i,
                                 islandRows(isl.islands[i], h1));

                uint64_t survivors = 0;
                for (size_t b = 0; b < stream.size(); ++b) {
                    const Batch &batch = stream[b];
                    CsrGraph next = g.withEditedEdges(batch.adds,
                                                      batch.removes);
                    IslandProvenance prov;
                    isl = updateIslandization(next, isl, batch.adds,
                                              batch.removes, cfg,
                                              nullptr, &prov);
                    g = std::move(next);
                    for (uint32_t d : dirtyIslandEndpointSweep(
                             g, isl, batch.adds, batch.removes))
                        prov.parentOf[d] = IslandProvenance::kNone;
                    const uint64_t parent = epoch;
                    epoch++;
                    cache.advance(epoch, true, parent,
                                  prov.parentOf);

                    h1 = layer1(g, x, w0);
                    std::vector<float> buf;
                    for (uint32_t i = 0; i < isl.islands.size();
                         ++i) {
                        const size_t want =
                            isl.islands[i].nodes.size() * hidden;
                        buf.resize(want);
                        if (cache.lookup(epoch, i, want,
                                         buf.data())) {
                            survivors++;
                            const std::vector<float> cold =
                                islandRows(isl.islands[i], h1);
                            ASSERT_EQ(0, std::memcmp(
                                             buf.data(), cold.data(),
                                             want * sizeof(float)))
                                << tctx << " batch " << b
                                << " island " << i
                                << ": stale bytes survived "
                                   "invalidation";
                        }
                        // Refill so the next epoch's survivors are
                        // again previous-epoch bytes.
                        cache.insert(epoch, i,
                                     islandRows(isl.islands[i], h1));
                    }
                }
                // Non-vacuity: localized edits must leave most
                // islands' aggregates carried across epochs.
                EXPECT_GT(survivors, 0u) << tctx;
                perThread.push_back(cache.stats());
            }
            setGlobalThreads(0);
            for (size_t i = 1; i < perThread.size(); ++i) {
                EXPECT_EQ(perThread[0].hits, perThread[i].hits)
                    << ctx;
                EXPECT_EQ(perThread[0].misses, perThread[i].misses)
                    << ctx;
                EXPECT_EQ(perThread[0].invalidated,
                          perThread[i].invalidated) << ctx;
            }
        }
    }
}

TEST(FuzzIncremental, OnePassEditedEpochsMatchTwoPassComposition)
{
    // Differential lock for the one-pass epoch build: over the fuzz
    // corpus, withEditedEdges(adds, removes) must produce the exact
    // graph of the old two-pass withAddedEdges-then-withRemovedEdges
    // composition after every batch, and feeding either graph chain
    // through updateIslandization must give bit-identical partitions
    // and incremental stats.
    const int seeds = fuzzSeedsPerFamily();
    LocatorConfig cfg;
    for (const Family &family : kFamilies) {
        for (int seed = 0; seed < seeds; ++seed) {
            const std::string ctx = std::string(family.name) +
                " seed " + std::to_string(seed) + " (one-pass)";
            const CsrGraph g0 =
                family.make(2000 + static_cast<uint64_t>(seed));
            const std::vector<Batch> stream =
                makeStream(g0, 31 * seed + 7, /*num_batches=*/5,
                           /*events_per_batch=*/14, nullptr);

            CsrGraph one = g0, two = g0;
            IslandizationResult isl_one = islandize(g0, cfg);
            IslandizationResult isl_two = isl_one;
            for (size_t b = 0; b < stream.size(); ++b) {
                const std::string bctx =
                    ctx + " batch " + std::to_string(b);
                const Batch &batch = stream[b];
                one = one.withEditedEdges(batch.adds, batch.removes);
                two = two.withAddedEdges(batch.adds);
                if (!batch.removes.empty())
                    two = two.withRemovedEdges(batch.removes);
                ASSERT_EQ(one, two) << bctx;

                IncrementalStats st_one, st_two;
                isl_one = updateIslandization(one, isl_one,
                                              batch.adds,
                                              batch.removes, cfg,
                                              &st_one);
                isl_two = updateIslandization(two, isl_two,
                                              batch.adds,
                                              batch.removes, cfg,
                                              &st_two);
                expectIdenticalPartition(isl_one, isl_two, bctx);
                EXPECT_EQ(st_one, st_two) << bctx;
            }
        }
    }
}

TEST(FuzzIncremental, DeletionOnlyStreamDrainsToIsolatedGraph)
{
    // Adversarial tail case: delete *every* edge, a few at a time.
    // Hubs get starved below the demotion floor, islands dissolve and
    // re-form around shrinking cores, and the final state must be all
    // singleton islands with an empty inter-hub map.
    LocatorConfig cfg;
    CsrGraph g = hubAndIslandGraph({.numNodes = 120, .seed = 3}).graph;
    IslandizationResult isl = islandize(g, cfg);
    Rng rng(9);

    std::vector<Edge> present;
    for (const auto &[u, v] : g.toEdges())
        if (u < v)
            present.push_back({u, v});

    int batch_no = 0;
    while (!present.empty()) {
        std::vector<Edge> removes;
        const size_t k = std::min<size_t>(
            present.size(), 1 + rng.nextBounded(9));
        for (size_t i = 0; i < k; ++i) {
            const size_t j = rng.nextBounded(present.size());
            removes.push_back(present[j]);
            present[j] = present.back();
            present.pop_back();
        }
        g = g.withRemovedEdges(removes);
        isl = updateIslandization(g, isl, {}, removes, cfg);
        verifyIslandization(g, isl, cfg,
                            "drain batch " +
                                std::to_string(batch_no++));
    }
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_TRUE(isl.interHubEdges.empty());
    EXPECT_EQ(isl.islands.size(), g.numNodes());
    EXPECT_EQ(isl.numHubs(), 0u);
}

} // namespace
} // namespace igcn
