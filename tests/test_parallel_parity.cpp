/**
 * @file
 * Differential and property tests for the parallel kernels.
 *
 * Every kernel that moved onto the thread pool — the four SpMM
 * dataflows, csrTransposeTimesDense and the locator's islandize — is
 * checked at 1/2/4/8 threads across the four graph families against
 * a sequential reference written with the pre-refactor loop orders:
 *
 *  - at 1 thread the parallel kernel must be BIT-identical to the
 *    sequential reference (one chunk, one accumulator, same float
 *    order);
 *  - across thread counts results must agree exactly: since the
 *    push-style kernels became race-free gathers over the cached CSC
 *    adjunct, every output element of every dataflow keeps its
 *    sequential accumulation order, so all five SpMM kernels are
 *    bit-identical at any thread count (a stronger property than the
 *    float-reassociation tolerance the old per-worker-buffer scatter
 *    versions guaranteed — which these tests also still imply);
 *  - hardware access counters are arithmetic and must be exact at
 *    every thread count;
 *  - islandize must reproduce the sequential execution exactly at
 *    every thread count: the island partition (ids, membership, BFS
 *    node order, roles, inter-hub map, per-round record) AND all
 *    statistics and trace entries (the commit phase replays aborted
 *    tasks against canonical marks, so even wasted-work accounting
 *    is thread-invariant — the accelerator timing models depend on
 *    that).
 *
 * A fuzz sweep over randomized small CSR matrices (empty rows,
 * isolated vertices, skewed degree distributions, rectangular shapes)
 * checks all five kernels against a naive triple-loop dense product.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/locator.hpp"
#include "graph/generators.hpp"
#include "runtime/thread_pool.hpp"
#include "spmm/spmm.hpp"

namespace igcn {
namespace {

constexpr double kTol = 1e-4;
const int kThreadCounts[] = {1, 2, 4, 8};

/** Restore the default global pool after each test. */
class ParityTest : public ::testing::Test
{
  protected:
    void TearDown() override { setGlobalThreads(0); }
};

// ---------------------------------------------------------------------
// Sequential references: the seed's (pre-refactor) loop orders,
// verbatim. These never touch the thread pool.
// ---------------------------------------------------------------------

DenseMatrix
seqPullRowWise(const CsrMatrix &a, const DenseMatrix &b)
{
    DenseMatrix c(a.numRows, b.cols());
    for (NodeId i = 0; i < a.numRows; ++i) {
        float *crow = c.row(i);
        for (EdgeId e = a.rowPtr[i]; e < a.rowPtr[i + 1]; ++e) {
            const float aval = a.values[e];
            const float *brow = b.row(a.colIdx[e]);
            for (size_t ch = 0; ch < b.cols(); ++ch)
                crow[ch] += aval * brow[ch];
        }
    }
    return c;
}

DenseMatrix
seqPullInnerProduct(const CsrMatrix &a, const DenseMatrix &b)
{
    DenseMatrix c(a.numRows, b.cols());
    for (NodeId i = 0; i < a.numRows; ++i) {
        for (size_t ch = 0; ch < b.cols(); ++ch) {
            float acc = 0.0f;
            for (EdgeId e = a.rowPtr[i]; e < a.rowPtr[i + 1]; ++e)
                acc += a.values[e] * b.at(a.colIdx[e], ch);
            c.at(i, ch) = acc;
        }
    }
    return c;
}

DenseMatrix
seqPushColumnWise(const CsrMatrix &a, const DenseMatrix &b)
{
    DenseMatrix c(a.numRows, b.cols());
    for (size_t ch = 0; ch < b.cols(); ++ch)
        for (NodeId i = 0; i < a.numRows; ++i)
            for (EdgeId e = a.rowPtr[i]; e < a.rowPtr[i + 1]; ++e)
                c.at(i, ch) += a.values[e] * b.at(a.colIdx[e], ch);
    return c;
}

DenseMatrix
seqPushOuterProduct(const CsrMatrix &a, const DenseMatrix &b)
{
    const size_t channels = b.cols();
    DenseMatrix c(a.numRows, channels);
    std::vector<EdgeId> col_count(a.numCols + 1, 0);
    for (NodeId v : a.colIdx)
        col_count[v + 1]++;
    for (NodeId k = 0; k < a.numCols; ++k)
        col_count[k + 1] += col_count[k];
    std::vector<NodeId> row_of(a.nnz());
    std::vector<float> val_of(a.nnz());
    std::vector<EdgeId> cursor(col_count.begin(), col_count.end() - 1);
    for (NodeId i = 0; i < a.numRows; ++i) {
        for (EdgeId e = a.rowPtr[i]; e < a.rowPtr[i + 1]; ++e) {
            EdgeId slot = cursor[a.colIdx[e]]++;
            row_of[slot] = i;
            val_of[slot] = a.values[e];
        }
    }
    for (NodeId k = 0; k < a.numCols; ++k) {
        const float *brow = b.row(k);
        for (EdgeId e = col_count[k]; e < col_count[k + 1]; ++e) {
            float *crow = c.row(row_of[e]);
            for (size_t ch = 0; ch < channels; ++ch)
                crow[ch] += val_of[e] * brow[ch];
        }
    }
    return c;
}

DenseMatrix
seqCsrTransposeTimesDense(const CsrMatrix &x, const DenseMatrix &b)
{
    DenseMatrix c(x.numCols, b.cols());
    for (NodeId r = 0; r < x.numRows; ++r) {
        const float *brow = b.row(r);
        for (EdgeId e = x.rowPtr[r]; e < x.rowPtr[r + 1]; ++e) {
            float *crow = c.row(x.colIdx[e]);
            const float v = x.values[e];
            for (size_t j = 0; j < b.cols(); ++j)
                crow[j] += v * brow[j];
        }
    }
    return c;
}

/** Naive dense C = A * B with ascending-k float accumulation. */
DenseMatrix
naiveDenseProduct(const DenseMatrix &a, const DenseMatrix &b)
{
    DenseMatrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t ch = 0; ch < b.cols(); ++ch) {
            float acc = 0.0f;
            for (size_t k = 0; k < a.cols(); ++k)
                acc += a.at(i, k) * b.at(k, ch);
            c.at(i, ch) = acc;
        }
    return c;
}

/** Naive dense C = A^T * B. */
DenseMatrix
naiveDenseTransposeProduct(const DenseMatrix &a, const DenseMatrix &b)
{
    DenseMatrix c(a.cols(), b.cols());
    for (size_t j = 0; j < a.cols(); ++j)
        for (size_t ch = 0; ch < b.cols(); ++ch) {
            float acc = 0.0f;
            for (size_t k = 0; k < a.rows(); ++k)
                acc += a.at(k, j) * b.at(k, ch);
            c.at(j, ch) = acc;
        }
    return c;
}

// ---------------------------------------------------------------------
// Shared inputs
// ---------------------------------------------------------------------

struct FamilyCase
{
    const char *name;
    CsrGraph graph;
};

std::vector<FamilyCase>
graphFamilies()
{
    std::vector<FamilyCase> cases;
    HubIslandParams hp;
    hp.numNodes = 1500;
    hp.seed = 91;
    cases.push_back({"hub-island", hubAndIslandGraph(hp).graph});
    cases.push_back({"erdos-renyi", erdosRenyi(1200, 6.0, 17)});
    cases.push_back({"rmat",
                     rmat(1024, 6000, 0.57, 0.19, 0.19, 23)});
    cases.push_back({"barabasi-albert", barabasiAlbert(1000, 3, 29)});
    return cases;
}

/** Weighted adjacency + feature matrix for one family graph. */
void
makeOperands(const CsrGraph &g, CsrMatrix &a, DenseMatrix &b,
             size_t channels = 100)
{
    a = CsrMatrix::fromGraph(g);
    Rng vrng(13);
    for (float &v : a.values)
        v = vrng.nextFloat(2.0f);
    Rng rng(19);
    // 100 channels spans one full channel tile plus a ragged rest.
    b = DenseMatrix(g.numNodes(), channels);
    b.fillRandom(rng);
}

void
expectCountersEqual(const SpmmCounters &a, const SpmmCounters &b,
                    const std::string &ctx)
{
    EXPECT_EQ(a.macOps, b.macOps) << ctx;
    EXPECT_EQ(a.aReads, b.aReads) << ctx;
    EXPECT_EQ(a.bStreamedReads, b.bStreamedReads) << ctx;
    EXPECT_EQ(a.bIrregularReads, b.bIrregularReads) << ctx;
    EXPECT_EQ(a.cStreamedWrites, b.cStreamedWrites) << ctx;
    EXPECT_EQ(a.cIrregularWrites, b.cIrregularWrites) << ctx;
}

// ---------------------------------------------------------------------
// SpMM dataflows + transpose: differential across thread counts
// ---------------------------------------------------------------------

using SpmmFn = DenseMatrix (*)(const CsrMatrix &, const DenseMatrix &,
                               SpmmCounters *);
using SeqFn = DenseMatrix (*)(const CsrMatrix &, const DenseMatrix &);

struct KernelCase
{
    const char *name;
    SpmmFn fn;
    SeqFn seq;
    /** Result is bit-identical at every thread count (every output
     *  element keeps its sequential accumulation order under
     *  sharding). True for all four dataflows now that the
     *  outer-product runs as a race-free row gather instead of a
     *  buffered column scatter. */
    bool bitExactAcrossThreads;
};

const KernelCase kKernels[] = {
    {"pull-row-wise", &spmmPullRowWise, &seqPullRowWise, true},
    {"pull-inner-product", &spmmPullInnerProduct,
     &seqPullInnerProduct, true},
    {"push-column-wise", &spmmPushColumnWise, &seqPushColumnWise,
     true},
    {"push-outer-product", &spmmPushOuterProduct,
     &seqPushOuterProduct, true},
};

TEST_F(ParityTest, SpmmDataflowsMatchSequentialAcrossThreads)
{
    for (const FamilyCase &fc : graphFamilies()) {
        CsrMatrix a;
        DenseMatrix b;
        makeOperands(fc.graph, a, b);

        for (const KernelCase &k : kKernels) {
            const DenseMatrix ref = k.seq(a, b);

            setGlobalThreads(1);
            SpmmCounters base_cnt;
            const DenseMatrix base = k.fn(a, b, &base_cnt);
            // One thread = one chunk = the sequential float order.
            EXPECT_EQ(base.data(), ref.data())
                << k.name << " on " << fc.name << " @ 1 thread";

            for (int threads : kThreadCounts) {
                const std::string ctx = std::string(k.name) + " on " +
                    fc.name + " @ " + std::to_string(threads) +
                    " threads";
                setGlobalThreads(threads);
                SpmmCounters cnt;
                const DenseMatrix c = k.fn(a, b, &cnt);
                if (k.bitExactAcrossThreads)
                    EXPECT_EQ(c.data(), base.data()) << ctx;
                else
                    EXPECT_LE(maxAbsDiff(c, base), kTol) << ctx;
                expectCountersEqual(cnt, base_cnt, ctx);
                // Same thread count twice: no scheduling dependence.
                const DenseMatrix c2 = k.fn(a, b, nullptr);
                EXPECT_EQ(c2.data(), c.data()) << ctx << " (rerun)";
            }
        }
    }
}

TEST_F(ParityTest, CsrTransposeTimesDenseMatchesSequentialAcrossThreads)
{
    for (const FamilyCase &fc : graphFamilies()) {
        CsrMatrix a;
        DenseMatrix b;
        makeOperands(fc.graph, a, b);
        const DenseMatrix ref = seqCsrTransposeTimesDense(a, b);

        setGlobalThreads(1);
        const DenseMatrix base = csrTransposeTimesDense(a, b);
        EXPECT_EQ(base.data(), ref.data())
            << fc.name << " @ 1 thread";

        for (int threads : kThreadCounts) {
            setGlobalThreads(threads);
            const DenseMatrix c = csrTransposeTimesDense(a, b);
            // Tolerance-equality required, bit-identity delivered:
            // each output row gathers its CSC column in ascending
            // row order at every thread count.
            EXPECT_LE(maxAbsDiff(c, base), kTol)
                << fc.name << " @ " << threads << " threads";
            EXPECT_EQ(c.data(), base.data())
                << fc.name << " @ " << threads << " threads";
            const DenseMatrix c2 = csrTransposeTimesDense(a, b);
            EXPECT_EQ(c2.data(), c.data())
                << fc.name << " @ " << threads << " threads (rerun)";
        }
    }
}

// ---------------------------------------------------------------------
// CSC adjunct cache invariants
// ---------------------------------------------------------------------

/** From-scratch CSC transpose with the pre-refactor build loop. */
CscIndex
referenceCsc(const CsrMatrix &a)
{
    CscIndex idx;
    idx.colPtr.assign(static_cast<size_t>(a.numCols) + 1, 0);
    idx.rowOf.resize(a.nnz());
    idx.valOf.resize(a.nnz());
    for (NodeId v : a.colIdx)
        idx.colPtr[v + 1]++;
    for (NodeId k = 0; k < a.numCols; ++k)
        idx.colPtr[k + 1] += idx.colPtr[k];
    std::vector<EdgeId> cursor(idx.colPtr.begin(),
                               idx.colPtr.end() - 1);
    for (NodeId i = 0; i < a.numRows; ++i) {
        for (EdgeId e = a.rowPtr[i]; e < a.rowPtr[i + 1]; ++e) {
            const EdgeId slot = cursor[a.colIdx[e]]++;
            idx.rowOf[slot] = i;
            idx.valOf[slot] = a.values[e];
        }
    }
    return idx;
}

TEST_F(ParityTest, CscAdjunctMatchesFromScratchTranspose)
{
    for (const FamilyCase &fc : graphFamilies()) {
        CsrMatrix a;
        DenseMatrix b;
        makeOperands(fc.graph, a, b);
        const CscIndex ref = referenceCsc(a);
        const CscIndex &csc = a.csc();
        EXPECT_EQ(csc.colPtr, ref.colPtr) << fc.name;
        EXPECT_EQ(csc.rowOf, ref.rowOf) << fc.name;
        EXPECT_EQ(csc.valOf, ref.valOf) << fc.name;
        // Cached: the same object is handed back on every call.
        EXPECT_EQ(&a.csc(), &csc) << fc.name;
    }
}

TEST_F(ParityTest, CscAdjunctBuildsOnceUnderConcurrentFirstUse)
{
    CsrMatrix a;
    DenseMatrix b;
    makeOperands(graphFamilies().front().graph, a, b);
    const CscIndex ref = referenceCsc(a);

    constexpr int kThreads = 8;
    std::vector<const CscIndex *> seen(kThreads, nullptr);
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Barrier so all first uses really race.
            ready.fetch_add(1);
            while (ready.load() < kThreads) {}
            seen[t] = &a.csc();
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t) {
        ASSERT_NE(seen[t], nullptr) << "thread " << t;
        // One-time construction: every concurrent first caller saw
        // the same built object.
        EXPECT_EQ(seen[t], seen[0]) << "thread " << t;
    }
    EXPECT_EQ(seen[0]->colPtr, ref.colPtr);
    EXPECT_EQ(seen[0]->rowOf, ref.rowOf);
    EXPECT_EQ(seen[0]->valOf, ref.valOf);
}

TEST_F(ParityTest, CscAdjunctInvalidatesOnMutationAndAssignment)
{
    CsrMatrix a = denseToCsr([] {
        Rng rng(5);
        DenseMatrix m(12, 9);
        m.fillRandomSparse(rng, 0.3);
        return m;
    }());
    (void)a.csc(); // build

    // Mutating the non-zeros + invalidateCsc() rebuilds on next use.
    for (float &v : a.values)
        v *= 2.0f;
    a.invalidateCsc();
    const CscIndex fresh = referenceCsc(a);
    EXPECT_EQ(a.csc().valOf, fresh.valOf);

    // Assignment drops the target's cache: the reassigned matrix
    // must serve its new transpose, not the stale one.
    CsrMatrix other = denseToCsr([] {
        Rng rng(6);
        DenseMatrix m(7, 15);
        m.fillRandomSparse(rng, 0.4);
        return m;
    }());
    (void)other.csc();
    other = a;
    const CscIndex &after = other.csc();
    EXPECT_EQ(after.colPtr, a.csc().colPtr);
    EXPECT_EQ(after.rowOf, a.csc().rowOf);
    EXPECT_EQ(after.valOf, a.csc().valOf);

    // Copies start with an empty cache and build their own index.
    EXPECT_NE(&after, &a.csc());

    // Moving transfers the built adjunct (the destination now owns
    // exactly the arrays it describes — no rebuild), and the
    // moved-from matrix must not keep serving the old transpose:
    // its slot is empty and rebuilds to an empty index.
    CsrMatrix moved = std::move(other);
    EXPECT_EQ(&moved.csc(), &after);
    EXPECT_TRUE(other.csc().rowOf.empty());
    EXPECT_EQ(moved.csc().valOf, fresh.valOf);
}

TEST_F(ParityTest, TransposeGatherBitIdenticalThroughCachedAndColdCsc)
{
    // csrTransposeTimesDense is the kernel that reads the adjunct
    // (the outer product gathers over the matrix's own CSR arrays):
    // a cold call (fresh matrix, cache built inside the kernel) and
    // a warm call (cache primed beforehand) must agree bitwise.
    for (int threads : {1, 4}) {
        setGlobalThreads(threads);
        CsrMatrix cold;
        DenseMatrix b;
        makeOperands(graphFamilies().front().graph, cold, b);
        CsrMatrix warm = cold;
        (void)warm.csc();
        EXPECT_EQ(csrTransposeTimesDense(cold, b).data(),
                  csrTransposeTimesDense(warm, b).data())
            << threads << " threads";
    }
}

// ---------------------------------------------------------------------
// Islandize: identical partition at every thread count
// ---------------------------------------------------------------------

void
expectSamePartition(const IslandizationResult &a,
                    const IslandizationResult &b,
                    const std::string &ctx)
{
    ASSERT_EQ(a.islands.size(), b.islands.size()) << ctx;
    for (size_t i = 0; i < a.islands.size(); ++i) {
        EXPECT_EQ(a.islands[i].nodes, b.islands[i].nodes)
            << ctx << ", island " << i;
        EXPECT_EQ(a.islands[i].hubs, b.islands[i].hubs)
            << ctx << ", island " << i;
        EXPECT_EQ(a.islands[i].round, b.islands[i].round)
            << ctx << ", island " << i;
        EXPECT_EQ(a.islands[i].edgesScanned, b.islands[i].edgesScanned)
            << ctx << ", island " << i;
    }
    EXPECT_TRUE(a.role == b.role) << ctx;
    EXPECT_TRUE(a.islandOf == b.islandOf) << ctx;
    EXPECT_TRUE(a.hubRound == b.hubRound) << ctx;
    EXPECT_TRUE(a.interHubEdges == b.interHubEdges) << ctx;
    EXPECT_TRUE(a.thresholds == b.thresholds) << ctx;
    EXPECT_EQ(a.numRounds, b.numRounds) << ctx;
    ASSERT_EQ(a.rounds.size(), b.rounds.size()) << ctx;
    for (size_t r = 0; r < a.rounds.size(); ++r) {
        EXPECT_EQ(a.rounds[r].threshold, b.rounds[r].threshold)
            << ctx << ", round " << r;
        EXPECT_EQ(a.rounds[r].nodesChecked, b.rounds[r].nodesChecked)
            << ctx << ", round " << r;
        EXPECT_EQ(a.rounds[r].hubsDetected, b.rounds[r].hubsDetected)
            << ctx << ", round " << r;
        EXPECT_EQ(a.rounds[r].islandsFound, b.rounds[r].islandsFound)
            << ctx << ", round " << r;
    }
    ASSERT_EQ(a.taskTrace.size(), b.taskTrace.size()) << ctx;
    for (size_t i = 0; i < a.taskTrace.size(); ++i) {
        EXPECT_EQ(a.taskTrace[i].round, b.taskTrace[i].round)
            << ctx << ", trace " << i;
        EXPECT_EQ(a.taskTrace[i].outcome, b.taskTrace[i].outcome)
            << ctx << ", trace " << i;
        EXPECT_EQ(a.taskTrace[i].edgesScanned,
                  b.taskTrace[i].edgesScanned) << ctx << ", trace " << i;
        EXPECT_EQ(a.taskTrace[i].hubDegree, b.taskTrace[i].hubDegree)
            << ctx << ", trace " << i;
    }
    for (size_t r = 0; r < a.rounds.size(); ++r)
        EXPECT_EQ(a.rounds[r].edgesScanned, b.rounds[r].edgesScanned)
            << ctx << ", round " << r;
}

void
expectSameStats(const LocatorStats &a, const LocatorStats &b,
                const std::string &ctx)
{
    EXPECT_EQ(a.tasksGenerated, b.tasksGenerated) << ctx;
    EXPECT_EQ(a.tasksDroppedStartVisited, b.tasksDroppedStartVisited)
        << ctx;
    EXPECT_EQ(a.tasksDroppedCollision, b.tasksDroppedCollision) << ctx;
    EXPECT_EQ(a.tasksDroppedOversize, b.tasksDroppedOversize) << ctx;
    EXPECT_EQ(a.tasksInterHub, b.tasksInterHub) << ctx;
    EXPECT_EQ(a.islandsFound, b.islandsFound) << ctx;
    EXPECT_EQ(a.hubDetectChecks, b.hubDetectChecks) << ctx;
    EXPECT_EQ(a.adjListFetches, b.adjListFetches) << ctx;
    EXPECT_EQ(a.edgesScanned, b.edgesScanned) << ctx;
    EXPECT_EQ(a.edgesScannedWasted, b.edgesScannedWasted) << ctx;
}

TEST_F(ParityTest, IslandizePartitionIdenticalAcrossThreads)
{
    // The commit phase replays aborted tasks against canonical marks,
    // so not just the partition but EVERY statistic and trace entry
    // must equal the 1-thread (= pre-refactor sequential) run: the
    // cycle-level accelerator models consume these stats, and their
    // modeled latency must not depend on IGCN_THREADS.
    for (const FamilyCase &fc : graphFamilies()) {
        LocatorConfig cfg;
        cfg.recordTrace = true;
        setGlobalThreads(1);
        const IslandizationResult base = islandize(fc.graph, cfg);

        for (int threads : kThreadCounts) {
            const std::string ctx = std::string(fc.name) + " @ " +
                std::to_string(threads) + " threads";
            setGlobalThreads(threads);
            const IslandizationResult isl = islandize(fc.graph, cfg);
            expectSamePartition(isl, base, ctx);
            expectSameStats(isl.stats, base.stats, ctx);
            // And bit-stable across reruns at the same count.
            const IslandizationResult again = islandize(fc.graph, cfg);
            expectSamePartition(again, isl, ctx + " (rerun)");
            expectSameStats(again.stats, isl.stats, ctx + " (rerun)");
        }
    }
}

TEST_F(ParityTest, IslandizeSmallIslandConfigAcrossThreads)
{
    // Small cmax exercises the oversize path (break condition B),
    // where speculative shards re-scan components and the commit
    // replay has real work to do: partition AND stats must still
    // match the sequential run exactly.
    auto hi = hubAndIslandGraph({.numNodes = 1200, .seed = 47});
    LocatorConfig cfg;
    cfg.maxIslandSize = 4;
    cfg.recordTrace = true;

    setGlobalThreads(1);
    const IslandizationResult base = islandize(hi.graph, cfg);

    for (int threads : kThreadCounts) {
        setGlobalThreads(threads);
        const IslandizationResult isl = islandize(hi.graph, cfg);
        expectSamePartition(isl, base,
                            "cmax=4 @ " + std::to_string(threads));
        expectSameStats(isl.stats, base.stats,
                        "cmax=4 @ " + std::to_string(threads));
    }
}

// ---------------------------------------------------------------------
// Property/fuzz: randomized CSR vs. naive dense reference
// ---------------------------------------------------------------------

/**
 * Random CSR matrix with adversarial structure: empty rows, isolated
 * (never-referenced) columns, skewed per-row densities, rectangular
 * shapes. Duplicate-free by construction (dense origin).
 */
DenseMatrix
randomSparseDense(Rng &rng)
{
    const size_t rows = 1 + rng.nextBounded(32);
    const size_t cols = 1 + rng.nextBounded(32);
    DenseMatrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
        if (rng.nextBool(0.25))
            continue; // empty row
        // Power-law row densities: a few heavy rows, many light ones.
        const double density =
            static_cast<double>(rng.nextPowerLaw(1, 100, 2.0)) / 100.0;
        for (size_t c = 0; c < cols; ++c) {
            if (rng.nextBool(density)) {
                float v = rng.nextFloat(2.0f);
                m.at(r, c) = v == 0.0f ? 1.0f : v;
            }
        }
    }
    return m;
}

TEST_F(ParityTest, FuzzAgainstNaiveDenseReference)
{
    Rng rng(0xF00D);
    for (int threads : {1, 3, 8}) {
        setGlobalThreads(threads);
        for (int iter = 0; iter < 25; ++iter) {
            const DenseMatrix ad = randomSparseDense(rng);
            const CsrMatrix a = denseToCsr(ad);
            DenseMatrix b(ad.cols(), 1 + rng.nextBounded(20));
            b.fillRandom(rng);
            const DenseMatrix expected = naiveDenseProduct(ad, b);
            const std::string ctx = "iter " + std::to_string(iter) +
                " (" + std::to_string(ad.rows()) + "x" +
                std::to_string(ad.cols()) + "x" +
                std::to_string(b.cols()) + ") @ " +
                std::to_string(threads) + " threads";

            for (const KernelCase &k : kKernels) {
                const DenseMatrix c = k.fn(a, b, nullptr);
                EXPECT_LE(maxAbsDiff(c, expected), kTol)
                    << k.name << ", " << ctx;
            }

            // Transpose kernel against A^T B; B must have numRows
            // rows here.
            DenseMatrix bt(ad.rows(), b.cols());
            bt.fillRandom(rng);
            const DenseMatrix t = csrTransposeTimesDense(a, bt);
            EXPECT_LE(maxAbsDiff(t, naiveDenseTransposeProduct(ad, bt)),
                      kTol) << "transpose, " << ctx;
        }
    }
}

TEST_F(ParityTest, FuzzIslandizeOnRandomGraphs)
{
    // Random graphs with isolated vertices and skewed degrees: the
    // partition must be identical at 1 and 8 threads.
    Rng seeds(0xBEEF);
    for (int iter = 0; iter < 8; ++iter) {
        const NodeId n = 20 + static_cast<NodeId>(seeds.nextBounded(300));
        const double deg = 0.5 + 5.0 * seeds.nextDouble();
        CsrGraph g = erdosRenyi(n, deg, seeds.next());
        LocatorConfig cfg;
        cfg.maxIslandSize = 1 + static_cast<NodeId>(seeds.nextBounded(16));

        setGlobalThreads(1);
        const IslandizationResult base = islandize(g, cfg);
        setGlobalThreads(8);
        const IslandizationResult isl = islandize(g, cfg);
        expectSamePartition(isl, base,
                            "iter " + std::to_string(iter));
        expectSameStats(isl.stats, base.stats,
                        "iter " + std::to_string(iter));
    }
}

} // namespace
} // namespace igcn
