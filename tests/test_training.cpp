/**
 * @file
 * Training-extension tests: analytic weight gradients computed
 * through island-based aggregation must match central finite
 * differences of the loss, and SGD on the island path must reduce
 * the loss monotonically on a small fitting problem.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "gcn/training.hpp"
#include "graph/generators.hpp"
#include "runtime/thread_pool.hpp"
#include "spmm/spmm.hpp"

namespace igcn {
namespace {

/** Loss as a function of the weights, via the island forward. */
double
lossAt(const CsrGraph &g, const IslandizationResult &isl,
       const Features &x, const std::vector<DenseMatrix> &weights,
       const DenseMatrix &target)
{
    ForwardCache cache = trainingForward(g, isl, x, weights);
    return mseLoss(cache.output, target);
}

TEST(Training, GradientsMatchFiniteDifferences)
{
    auto hi = hubAndIslandGraph({.numNodes = 40, .seed = 3});
    const CsrGraph &g = hi.graph;
    auto isl = islandize(g);

    Rng rng(7);
    Features x = makeFeatures(g.numNodes(), 6, 0.5, rng);
    ModelConfig mc;
    mc.layers = {{6, 5}, {5, 3}};
    auto weights = makeWeights(mc, rng);
    DenseMatrix target(g.numNodes(), 3);
    target.fillRandom(rng);

    ForwardCache cache = trainingForward(g, isl, x, weights);
    DenseMatrix grad_out;
    mseLoss(cache.output, target, &grad_out);
    Gradients grads =
        trainingBackward(g, isl, x, weights, cache, grad_out);

    ASSERT_EQ(grads.weightGrads.size(), weights.size());
    const float eps = 1e-2f;
    for (size_t l = 0; l < weights.size(); ++l) {
        // Probe a handful of entries per layer.
        for (size_t idx : {size_t{0}, weights[l].data().size() / 2,
                           weights[l].data().size() - 1}) {
            auto perturbed = weights;
            perturbed[l].data()[idx] += eps;
            double plus = lossAt(g, isl, x, perturbed, target);
            perturbed[l].data()[idx] -= 2 * eps;
            double minus = lossAt(g, isl, x, perturbed, target);
            const double numeric = (plus - minus) / (2.0 * eps);
            const double analytic = grads.weightGrads[l].data()[idx];
            EXPECT_NEAR(analytic, numeric,
                        5e-3 + 0.05 * std::fabs(numeric))
                << "layer " << l << " idx " << idx;
        }
    }
}

TEST(Training, SgdReducesLoss)
{
    auto hi = hubAndIslandGraph({.numNodes = 120, .seed = 11});
    const CsrGraph &g = hi.graph;
    auto isl = islandize(g);

    Rng rng(13);
    Features x = makeFeatures(g.numNodes(), 8, 0.4, rng);
    ModelConfig mc;
    mc.layers = {{8, 6}, {6, 2}};
    auto weights = makeWeights(mc, rng);
    // Teacher-generated target: reachable by the student, so the
    // loss floor is ~0 and convergence is measurable.
    Rng teacher_rng(99);
    auto teacher = makeWeights(mc, teacher_rng);
    DenseMatrix target = trainingForward(g, isl, x, teacher).output;

    double prev = lossAt(g, isl, x, weights, target);
    double first = prev;
    for (int step = 0; step < 80; ++step) {
        ForwardCache cache = trainingForward(g, isl, x, weights);
        DenseMatrix grad_out;
        mseLoss(cache.output, target, &grad_out);
        Gradients grads =
            trainingBackward(g, isl, x, weights, cache, grad_out);
        sgdStep(weights, grads, 4.0f);
        double now = lossAt(g, isl, x, weights, target);
        EXPECT_LT(now, prev * 1.05) << "step " << step;
        prev = now;
    }
    EXPECT_LT(prev, first * 0.7);
}

TEST(Training, BackwardUsesRedundancyRemoval)
{
    auto hi = hubAndIslandGraph(
        {.numNodes = 400, .intraIslandProb = 0.8, .seed = 21});
    auto isl = islandize(hi.graph);
    Rng rng(2);
    Features x = makeFeatures(hi.graph.numNodes(), 8, 0.3, rng);
    ModelConfig mc;
    mc.layers = {{8, 4}};
    auto weights = makeWeights(mc, rng);
    DenseMatrix target(hi.graph.numNodes(), 4);
    target.fillRandom(rng);

    ForwardCache cache = trainingForward(hi.graph, isl, x, weights);
    DenseMatrix grad_out;
    mseLoss(cache.output, target, &grad_out);
    Gradients grads = trainingBackward(hi.graph, isl, x, weights,
                                       cache, grad_out);
    // The backward aggregation also benefits from shared-neighbor
    // pruning (same island structure, A_hat symmetric).
    EXPECT_GT(grads.backwardAggOps.baselineOps, 0u);
    EXPECT_LT(grads.backwardAggOps.optimizedOps(),
              grads.backwardAggOps.baselineOps);
}

TEST(Training, SparseFeatureGradients)
{
    auto hi = hubAndIslandGraph({.numNodes = 60, .seed = 5});
    auto isl = islandize(hi.graph);
    Rng rng(4);
    Features x = makeFeatures(hi.graph.numNodes(), 32, 0.1, rng,
                              /*force_sparse=*/true);
    ASSERT_TRUE(x.sparse);
    ModelConfig mc;
    mc.layers = {{32, 4}, {4, 2}};
    auto weights = makeWeights(mc, rng);
    DenseMatrix target(hi.graph.numNodes(), 2);
    target.fillRandom(rng);

    ForwardCache cache = trainingForward(hi.graph, isl, x, weights);
    DenseMatrix grad_out;
    mseLoss(cache.output, target, &grad_out);
    Gradients grads = trainingBackward(hi.graph, isl, x, weights,
                                       cache, grad_out);

    // Spot-check layer-0 gradient against finite differences.
    const float eps = 1e-2f;
    size_t idx = weights[0].data().size() / 3;
    auto perturbed = weights;
    perturbed[0].data()[idx] += eps;
    double plus = lossAt(hi.graph, isl, x, perturbed, target);
    perturbed[0].data()[idx] -= 2 * eps;
    double minus = lossAt(hi.graph, isl, x, perturbed, target);
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(grads.weightGrads[0].data()[idx], numeric,
                5e-3 + 0.05 * std::fabs(numeric));
}

TEST(Training, SparseFeaturesBitIdenticalToDensifiedAcrossThreads)
{
    // The acceptance criterion's training half: at each of
    // IGCN_THREADS 1, 4 and 8, a 0.01-density CSR feature matrix fed
    // through trainingForward/trainingBackward must produce
    // byte-equal outputs and weight gradients to the densified
    // reference run at the SAME thread count. Layer 0 runs
    // sparseTimesDense forward and sparseTransposeTimesDense (over
    // the cached CSC adjunct) backward; both are exact-order matches
    // for their dense counterparts. (The island hub reduction
    // re-associates across worker boundaries, so the training path —
    // dense or sparse — is deterministic per thread count but not
    // invariant across counts; the sparse-vs-dense comparison is.)
    auto hi = hubAndIslandGraph({.numNodes = 220, .seed = 11});
    auto isl = islandize(hi.graph);
    Rng rng(31);
    Features dense;
    dense.dense = DenseMatrix(220, 128);
    dense.dense.fillRandomSparse(rng, 0.01, 1.0f);
    Features sparse;
    sparse.sparse = true;
    sparse.csr = denseToCsrFeatures(dense.dense);

    ModelConfig mc;
    mc.layers = {{128, 10}, {10, 4}};
    auto weights = makeWeights(mc, rng);
    DenseMatrix target(220, 4);
    target.fillRandom(rng);

    auto run = [&](const Features &x) {
        ForwardCache cache =
            trainingForward(hi.graph, isl, x, weights);
        DenseMatrix grad_out;
        mseLoss(cache.output, target, &grad_out);
        Gradients g = trainingBackward(hi.graph, isl, x, weights,
                                       cache, grad_out);
        return std::pair{std::move(cache.output),
                         std::move(g.weightGrads)};
    };

    for (int threads : {1, 4, 8}) {
        setGlobalThreads(threads);
        const auto [out1, grads1] = run(dense);
        const auto [out, grads] = run(sparse);
        const std::string ctx =
            std::to_string(threads) + " threads";
        ASSERT_EQ(out.rows(), out1.rows()) << ctx;
        EXPECT_EQ(std::memcmp(out.data().data(), out1.data().data(),
                              out1.data().size() * sizeof(float)),
                  0)
            << ctx;
        ASSERT_EQ(grads.size(), grads1.size()) << ctx;
        for (size_t l = 0; l < grads.size(); ++l)
            EXPECT_EQ(std::memcmp(grads[l].data().data(),
                                  grads1[l].data().data(),
                                  grads1[l].data().size() *
                                      sizeof(float)),
                      0)
                << ctx << " layer " << l;
    }
    setGlobalThreads(0);
}

TEST(Training, ShapeMismatchesRejected)
{
    CsrGraph g = pathGraph(4);
    auto isl = islandize(g);
    DenseMatrix a(4, 2), b(4, 3);
    EXPECT_THROW(mseLoss(a, b), std::invalid_argument);

    std::vector<DenseMatrix> weights{DenseMatrix(2, 2)};
    Gradients grads;
    EXPECT_THROW(sgdStep(weights, grads, 0.1f),
                 std::invalid_argument);
}

} // namespace
} // namespace igcn
