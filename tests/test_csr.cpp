/**
 * @file
 * Unit tests for the CSR graph substrate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"

namespace igcn {
namespace {

TEST(CsrGraph, EmptyGraph)
{
    CsrGraph g = CsrGraph::fromEdges(0, {});
    EXPECT_EQ(g.numNodes(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
}

TEST(CsrGraph, DefaultAndMovedFromGraphsReportZeroNodes)
{
    // Regression: numNodes() used to compute rowPtr.size() - 1, which
    // underflows to 0xFFFFFFFF on an empty rowPtr. A default graph
    // must report 0, and so must a moved-from graph (whose rowPtr is
    // left empty), instead of sending every numNodes()-bounded loop
    // on a 4-billion-node walk.
    CsrGraph def;
    EXPECT_EQ(def.numNodes(), 0u);
    EXPECT_EQ(def.numEdges(), 0u);
    EXPECT_DOUBLE_EQ(def.avgDegree(), 0.0);
    EXPECT_EQ(def.maxDegree(), 0u);
    EXPECT_EQ(def.numSelfLoops(), 0u);
    EXPECT_TRUE(def.isSymmetric());

    CsrGraph donor = CsrGraph::fromEdges(3, {{0, 1}, {1, 2}});
    CsrGraph sink = std::move(donor);
    EXPECT_EQ(sink.numNodes(), 3u);
    EXPECT_EQ(donor.numNodes(), 0u);
    EXPECT_EQ(donor.numEdges(), 0u);
    EXPECT_EQ(donor.maxDegree(), 0u);
    EXPECT_TRUE(degreeHistogram(donor).size() == 1u);
    auto [comp, n] = connectedComponents(donor);
    EXPECT_EQ(n, 0u);
    EXPECT_TRUE(comp.empty());
}

TEST(CsrGraph, SingleEdgeSymmetrized)
{
    CsrGraph g = CsrGraph::fromEdges(3, {{0, 1}});
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_EQ(g.degree(2), 0u);
}

TEST(CsrGraph, DuplicateEdgesRemoved)
{
    CsrGraph g = CsrGraph::fromEdges(2, {{0, 1}, {0, 1}, {1, 0}});
    EXPECT_EQ(g.numEdges(), 2u);
}

TEST(CsrGraph, SelfLoopsDroppedByDefault)
{
    CsrGraph g = CsrGraph::fromEdges(2, {{0, 0}, {0, 1}});
    EXPECT_EQ(g.numSelfLoops(), 0u);
    CsrGraph g2 = CsrGraph::fromEdges(2, {{0, 0}, {0, 1}}, true, true);
    EXPECT_EQ(g2.numSelfLoops(), 1u);
}

TEST(CsrGraph, NeighborsSorted)
{
    CsrGraph g = CsrGraph::fromEdges(5, {{2, 4}, {2, 0}, {2, 3}});
    auto nbrs = g.neighbors(2);
    ASSERT_EQ(nbrs.size(), 3u);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(CsrGraph, OutOfRangeEdgeThrows)
{
    EXPECT_THROW(CsrGraph::fromEdges(2, {{0, 5}}), std::out_of_range);
}

TEST(CsrGraph, DegreeAndAverages)
{
    CsrGraph g = starGraph(5);
    EXPECT_EQ(g.degree(0), 4u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.maxDegree(), 4u);
    EXPECT_DOUBLE_EQ(g.avgDegree(), 8.0 / 5.0);
}

TEST(CsrGraph, SymmetryDetected)
{
    CsrGraph sym = CsrGraph::fromEdges(3, {{0, 1}, {1, 2}});
    EXPECT_TRUE(sym.isSymmetric());
    CsrGraph asym = CsrGraph::fromEdges(3, {{0, 1}}, /*symmetrize=*/false);
    EXPECT_FALSE(asym.isSymmetric());
}

TEST(CsrGraph, PermutedPreservesStructure)
{
    CsrGraph g = pathGraph(4); // 0-1-2-3
    std::vector<NodeId> perm = {3, 2, 1, 0};
    CsrGraph p = g.permuted(perm);
    EXPECT_TRUE(p.hasEdge(3, 2));
    EXPECT_TRUE(p.hasEdge(2, 1));
    EXPECT_TRUE(p.hasEdge(1, 0));
    EXPECT_EQ(p.numEdges(), g.numEdges());
    // Degrees are preserved under relabeling.
    for (NodeId v = 0; v < 4; ++v)
        EXPECT_EQ(p.degree(perm[v]), g.degree(v));
}

TEST(CsrGraph, ToEdgesRoundTrip)
{
    CsrGraph g = completeGraph(5);
    CsrGraph g2 = CsrGraph::fromEdges(5, g.toEdges(), false);
    EXPECT_EQ(g, g2);
}

TEST(CsrGraph, DegreeHistogram)
{
    CsrGraph g = starGraph(5);
    auto hist = degreeHistogram(g);
    ASSERT_EQ(hist.size(), 5u);
    EXPECT_EQ(hist[1], 4u);
    EXPECT_EQ(hist[4], 1u);
}

TEST(CsrGraph, ConnectedComponents)
{
    CsrGraph g = CsrGraph::fromEdges(6, {{0, 1}, {1, 2}, {4, 5}});
    auto [comp, n] = connectedComponents(g);
    EXPECT_EQ(n, 3u); // {0,1,2}, {3}, {4,5}
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_EQ(comp[1], comp[2]);
    EXPECT_EQ(comp[4], comp[5]);
    EXPECT_NE(comp[0], comp[3]);
    EXPECT_NE(comp[0], comp[4]);
}

TEST(CsrGraph, InEdgeIndexMatchesBruteForceReverseAdjacency)
{
    // Directed (non-symmetrized) graph so in- and out-adjacency
    // genuinely differ.
    CsrGraph g = CsrGraph::fromEdges(
        5, {{0, 2}, {1, 2}, {3, 2}, {2, 0}, {4, 0}},
        /*symmetrize=*/false);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        std::vector<NodeId> expected;
        for (NodeId u = 0; u < g.numNodes(); ++u)
            if (g.hasEdge(u, v))
                expected.push_back(u);
        auto in = g.inNeighbors(v);
        ASSERT_EQ(in.size(), expected.size()) << "node " << v;
        EXPECT_TRUE(std::equal(in.begin(), in.end(),
                               expected.begin())) << "node " << v;
        EXPECT_EQ(g.inDegree(v), expected.size()) << "node " << v;
        EXPECT_TRUE(std::is_sorted(in.begin(), in.end()))
            << "node " << v;
    }
    // The index is cached: repeated calls hand back the same object.
    EXPECT_EQ(&g.inEdges(), &g.inEdges());
}

TEST(CsrGraph, MoveTransfersCachedInEdgeIndexAndClearsSource)
{
    // A move hands the built adjunct to the destination (which now
    // owns exactly the arrays it describes — no rebuild) and clears
    // the source slot, so the moved-from graph can never serve an
    // index for the 3-node contents it no longer has.
    CsrGraph g = CsrGraph::fromEdges(3, {{0, 1}, {1, 2}});
    const CsrGraph::InEdgeIndex *built = &g.inEdges();
    CsrGraph h = std::move(g);
    EXPECT_EQ(&h.inEdges(), built);
    EXPECT_EQ(h.inDegree(1), 2u);
    EXPECT_TRUE(g.inEdges().srcOf.empty());
    EXPECT_EQ(g.inEdges().inPtr.size(), 1u); // 0 nodes, well-formed
}

TEST(CsrGraph, InEdgeIndexOnSymmetricGraphEqualsOutAdjacency)
{
    CsrGraph g = erdosRenyi(200, 5.0, 7);
    ASSERT_TRUE(g.isSymmetric());
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        auto out = g.neighbors(v);
        auto in = g.inNeighbors(v);
        ASSERT_EQ(in.size(), out.size());
        EXPECT_TRUE(std::equal(in.begin(), in.end(), out.begin()));
    }
}

TEST(CsrGraph, FromCsrArraysValidatesInvariants)
{
    // Valid adoption round-trips.
    CsrGraph g = CsrGraph::fromCsrArrays({0, 2, 3, 4},
                                         {1, 2, 0, 0});
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.neighbors(0).size(), 2u);

    // Row pointer must start at 0 and end at col_idx.size().
    EXPECT_THROW(CsrGraph::fromCsrArrays({1, 2}, {0}),
                 std::invalid_argument);
    EXPECT_THROW(CsrGraph::fromCsrArrays({0, 2}, {0}),
                 std::invalid_argument);
    EXPECT_THROW(CsrGraph::fromCsrArrays({}, {}),
                 std::invalid_argument);
    // Monotonicity.
    EXPECT_THROW(CsrGraph::fromCsrArrays({0, 2, 1, 3}, {0, 1, 0}),
                 std::invalid_argument);
    // Column range.
    EXPECT_THROW(CsrGraph::fromCsrArrays({0, 1}, {5}),
                 std::invalid_argument);
    // Strictly ascending (sorted, no duplicates) per row.
    EXPECT_THROW(CsrGraph::fromCsrArrays({0, 2}, {1, 0}),
                 std::invalid_argument);
    EXPECT_THROW(CsrGraph::fromCsrArrays({0, 2}, {1, 1}),
                 std::invalid_argument);
}

TEST(CsrGraph, WithAddedEdgesMatchesEdgeListRebuild)
{
    // Differential: the O(E + k log k) merge must equal a full
    // rebuild from the combined edge list, across graph families and
    // adversarial additions (duplicates, already-present edges, self
    // loops, both orientations of the same edge).
    Rng rng(99);
    std::vector<CsrGraph> graphs;
    graphs.push_back(erdosRenyi(300, 6.0, 1));
    graphs.push_back(pathGraph(50));
    graphs.push_back(starGraph(40));
    graphs.push_back(CsrGraph::fromEdges(10, {}));
    for (const CsrGraph &g : graphs) {
        std::vector<Edge> added;
        for (int i = 0; i < 40; ++i) {
            const auto u =
                static_cast<NodeId>(rng.nextBounded(g.numNodes()));
            const auto v =
                static_cast<NodeId>(rng.nextBounded(g.numNodes()));
            added.emplace_back(u, v);
            if (i % 5 == 0)
                added.emplace_back(v, u); // reverse duplicate
        }
        CsrGraph merged = g.withAddedEdges(added);
        std::vector<Edge> all = g.toEdges();
        for (const Edge &e : added)
            all.push_back(e);
        CsrGraph rebuilt = CsrGraph::fromEdges(
            g.numNodes(), all, /*symmetrize=*/true);
        EXPECT_EQ(merged, rebuilt);
    }
    EXPECT_THROW(pathGraph(4).withAddedEdges(
                     std::vector<Edge>{{0, 9}}),
                 std::out_of_range);
}

TEST(CsrGraph, WithAddedEdgesNegativePaths)
{
    // The documented no-ops of the insertion path: self loops are
    // dropped, duplicates within one span and edges already present
    // are absorbed — the graph must come out unchanged, not throw.
    CsrGraph g = pathGraph(5);
    EXPECT_EQ(g.withAddedEdges(std::vector<Edge>{{2, 2}}), g);
    EXPECT_EQ(g.withAddedEdges(std::vector<Edge>{{0, 1}, {1, 0}}), g);
    CsrGraph once = g.withAddedEdges(std::vector<Edge>{{0, 3}});
    CsrGraph twice = g.withAddedEdges(
        std::vector<Edge>{{0, 3}, {3, 0}, {0, 3}});
    EXPECT_EQ(once, twice);
}

TEST(CsrGraph, WithRemovedEdgesMatchesEdgeListRebuild)
{
    // Differential mirror of the insertion test: the per-row
    // deletion sweep must equal a full rebuild from the filtered
    // edge list, across graph families.
    Rng rng(41);
    std::vector<CsrGraph> graphs;
    graphs.push_back(erdosRenyi(300, 6.0, 2));
    graphs.push_back(pathGraph(50));
    graphs.push_back(starGraph(40));
    for (const CsrGraph &g : graphs) {
        // Sample distinct existing undirected edges.
        std::vector<Edge> pool;
        for (const auto &[u, v] : g.toEdges())
            if (u < v)
                pool.emplace_back(u, v);
        std::vector<Edge> removed;
        for (int i = 0; i < 25 && !pool.empty(); ++i) {
            const size_t j = rng.nextBounded(pool.size());
            removed.push_back(pool[j]);
            pool[j] = pool.back();
            pool.pop_back();
        }
        CsrGraph pruned = g.withRemovedEdges(removed);
        std::set<Edge> gone;
        for (const auto &[u, v] : removed) {
            gone.insert({u, v});
            gone.insert({v, u});
        }
        std::vector<Edge> kept;
        for (const Edge &e : g.toEdges())
            if (!gone.count(e))
                kept.push_back(e);
        CsrGraph rebuilt = CsrGraph::fromEdges(
            g.numNodes(), kept, /*symmetrize=*/false);
        EXPECT_EQ(pruned, rebuilt);
        EXPECT_EQ(pruned.numEdges(),
                  g.numEdges() - 2 * removed.size());
    }
}

TEST(CsrGraph, WithEditedEdgesMatchesTwoPassComposition)
{
    // The one-pass merge sweep must equal add-then-remove for
    // disjoint spans, across graph families and adversarial spans
    // (duplicates, both orientations, self loops among the adds).
    Rng rng(57);
    std::vector<CsrGraph> graphs;
    graphs.push_back(erdosRenyi(300, 6.0, 3));
    graphs.push_back(pathGraph(50));
    graphs.push_back(starGraph(40));
    for (const CsrGraph &g : graphs) {
        std::set<Edge> present;
        for (const auto &[u, v] : g.toEdges())
            if (u < v)
                present.insert({u, v});
        std::vector<Edge> fresh, stale;
        std::set<Edge> touched; // keeps the two spans disjoint
        for (int i = 0; i < 30; ++i) {
            const auto u =
                static_cast<NodeId>(rng.nextBounded(g.numNodes()));
            const auto v =
                static_cast<NodeId>(rng.nextBounded(g.numNodes()));
            const Edge e{std::min(u, v), std::max(u, v)};
            if (u != v && !touched.insert(e).second)
                continue;
            if (u == v || !present.count(e)) {
                fresh.emplace_back(u, v);
                if (i % 4 == 0)
                    fresh.emplace_back(v, u); // reverse duplicate
            } else {
                stale.push_back(e);
            }
        }
        CsrGraph one = g.withEditedEdges(fresh, stale);
        CsrGraph two = g.withAddedEdges(fresh);
        if (!stale.empty())
            two = two.withRemovedEdges(stale);
        EXPECT_EQ(one, two);
    }
}

TEST(CsrGraph, WithEditedEdgesDegenerateSpans)
{
    // Empty spans degenerate to the single-span operations (and to a
    // structural copy when both are empty).
    CsrGraph g = erdosRenyi(100, 4.0, 9);
    EXPECT_EQ(g.withEditedEdges({}, {}), g);
    const std::vector<Edge> add{{0, 50}, {1, 60}};
    EXPECT_EQ(g.withEditedEdges(add, {}), g.withAddedEdges(add));
    std::vector<Edge> rem;
    for (const auto &[u, v] : g.toEdges())
        if (u < v && rem.size() < 3)
            rem.emplace_back(u, v);
    EXPECT_EQ(g.withEditedEdges({}, rem), g.withRemovedEdges(rem));
}

TEST(CsrGraph, WithEditedEdgesNegativePaths)
{
    CsrGraph g = pathGraph(6); // edges (i, i+1)
    // Out-of-range endpoints in either span.
    EXPECT_THROW(g.withEditedEdges(std::vector<Edge>{{0, 9}}, {}),
                 std::out_of_range);
    EXPECT_THROW(g.withEditedEdges({}, std::vector<Edge>{{0, 9}}),
                 std::out_of_range);
    // Removing an absent edge stays strict.
    EXPECT_THROW(g.withEditedEdges({}, std::vector<Edge>{{0, 5}}),
                 std::invalid_argument);
    // An edge in both spans is an ambiguous edit, either orientation.
    EXPECT_THROW(g.withEditedEdges(std::vector<Edge>{{0, 2}},
                                   std::vector<Edge>{{0, 2}}),
                 std::invalid_argument);
    EXPECT_THROW(g.withEditedEdges(std::vector<Edge>{{0, 2}},
                                   std::vector<Edge>{{2, 0}}),
                 std::invalid_argument);
}

TEST(CsrGraph, ArcSourceInvertsRowLayout)
{
    CsrGraph g = erdosRenyi(80, 4.0, 6);
    EdgeId e = 0;
    for (NodeId u = 0; u < g.numNodes(); ++u)
        for ([[maybe_unused]] NodeId v : g.neighbors(u))
            EXPECT_EQ(g.arcSource(e++), u);
    EXPECT_THROW(g.arcSource(g.numEdges()), std::out_of_range);
}

TEST(CsrGraph, WithRemovedEdgesNegativePaths)
{
    CsrGraph g = pathGraph(5); // edges 0-1, 1-2, 2-3, 3-4

    // Removing a nonexistent edge errors loudly.
    EXPECT_THROW(g.withRemovedEdges(std::vector<Edge>{{0, 3}}),
                 std::invalid_argument);
    // ... also when mixed with present edges, in any position.
    EXPECT_THROW(g.withRemovedEdges(
                     std::vector<Edge>{{0, 1}, {0, 4}}),
                 std::invalid_argument);
    // Out-of-range endpoints are a distinct loud error.
    EXPECT_THROW(g.withRemovedEdges(std::vector<Edge>{{0, 9}}),
                 std::out_of_range);
    // A self loop is an edge like any other: absent here, so loud.
    EXPECT_THROW(g.withRemovedEdges(std::vector<Edge>{{2, 2}}),
                 std::invalid_argument);
    // ... and removable when the graph actually stores it.
    CsrGraph with_loop = CsrGraph::fromEdges(
        3, {{0, 1}, {1, 1}}, /*symmetrize=*/true,
        /*keep_self_loops=*/true);
    CsrGraph no_loop =
        with_loop.withRemovedEdges(std::vector<Edge>{{1, 1}});
    EXPECT_EQ(no_loop.numSelfLoops(), 0u);
    EXPECT_TRUE(no_loop.hasEdge(0, 1));

    // Duplicates within one span (and both orientations of one
    // edge) collapse to a single removal: documented set semantics,
    // mirroring withAddedEdges.
    CsrGraph a = g.withRemovedEdges(
        std::vector<Edge>{{1, 2}, {2, 1}, {1, 2}});
    CsrGraph b = g.withRemovedEdges(std::vector<Edge>{{1, 2}});
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.hasEdge(1, 2));
    EXPECT_FALSE(a.hasEdge(2, 1));

    // Add-then-remove round-trips to the original graph.
    CsrGraph grown = g.withAddedEdges(std::vector<Edge>{{0, 4}});
    EXPECT_EQ(grown.withRemovedEdges(std::vector<Edge>{{4, 0}}), g);
}

TEST(CsrGraph, ExtractLHopSubgraphLevels)
{
    // Path 0-1-2-3-4-5: 2 hops from node 0 reach {0, 1, 2}.
    CsrGraph p = pathGraph(6);
    std::vector<NodeId> targets{0};
    LHopSubgraph ext = extractLHopSubgraph(p, targets, 2);
    EXPECT_EQ(ext.nodes, (std::vector<NodeId>{0, 1, 2}));
    EXPECT_EQ(ext.targetLocal, (std::vector<NodeId>{0}));
    // Induced edges: 0-1, 1-2 (both arcs).
    EXPECT_EQ(ext.sub.numEdges(), 4u);

    // 0 hops: the targets alone, with only target-target edges.
    std::vector<NodeId> two{1, 2};
    LHopSubgraph zero = extractLHopSubgraph(p, two, 0);
    EXPECT_EQ(zero.nodes, (std::vector<NodeId>{1, 2}));
    EXPECT_EQ(zero.sub.numEdges(), 2u);

    // Duplicate targets each get a targetLocal entry.
    std::vector<NodeId> dup{3, 3, 1};
    LHopSubgraph d = extractLHopSubgraph(p, dup, 1);
    EXPECT_EQ(d.targetLocal.size(), 3u);
    EXPECT_EQ(d.targetLocal[0], d.targetLocal[1]);

    EXPECT_THROW(extractLHopSubgraph(p, std::vector<NodeId>{9}, 1),
                 std::out_of_range);
}

TEST(CsrGraph, ExtractLHopSubgraphPreservesNeighborOrder)
{
    // On a random graph, every subgraph row must be the global row
    // filtered to the subgraph, in the same (ascending) order — the
    // property that makes batched inference accumulation order match
    // the whole-graph pass.
    CsrGraph g = erdosRenyi(200, 8.0, 3);
    std::vector<NodeId> targets{5, 17, 100};
    LHopSubgraph ext = extractLHopSubgraph(g, targets, 2);
    ASSERT_TRUE(std::is_sorted(ext.nodes.begin(), ext.nodes.end()));
    for (size_t l = 0; l < ext.nodes.size(); ++l) {
        std::vector<NodeId> expected;
        for (NodeId v : g.neighbors(ext.nodes[l])) {
            auto it = std::lower_bound(ext.nodes.begin(),
                                       ext.nodes.end(), v);
            if (it != ext.nodes.end() && *it == v)
                expected.push_back(static_cast<NodeId>(
                    it - ext.nodes.begin()));
        }
        auto got = ext.sub.neighbors(static_cast<NodeId>(l));
        ASSERT_EQ(std::vector<NodeId>(got.begin(), got.end()),
                  expected)
            << "row " << l;
    }
    // Every target's full neighborhood is present (hops >= 1).
    for (NodeId t : targets)
        for (NodeId v : g.neighbors(t))
            EXPECT_TRUE(std::binary_search(ext.nodes.begin(),
                                           ext.nodes.end(), v));
}

TEST(Permutation, Validity)
{
    EXPECT_TRUE(isPermutation({2, 0, 1}));
    EXPECT_FALSE(isPermutation({0, 0, 1}));
    EXPECT_FALSE(isPermutation({0, 3, 1}));
}

TEST(Permutation, Inverse)
{
    std::vector<NodeId> perm = {2, 0, 1};
    auto inv = inversePermutation(perm);
    for (NodeId v = 0; v < 3; ++v)
        EXPECT_EQ(inv[perm[v]], v);
}

} // namespace
} // namespace igcn
