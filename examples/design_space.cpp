/**
 * @file
 * Design-space exploration with the I-GCN timing + area models: how
 * latency, utilization and area trade off across MAC count, PE
 * count, TP-BFS engine count and the pre-aggregation window — the
 * kind of sweep an architect would run before committing an FPGA
 * build.
 */

#include <cstdio>

#include "accel/area.hpp"
#include "accel/igcn_model.hpp"
#include "accel/report.hpp"
#include "graph/datasets.hpp"

using namespace igcn;

int
main()
{
    DatasetGraph data = buildDataset(Dataset::Pubmed);
    ModelConfig mc = modelConfig(Model::GCN, NetConfig::Algo,
                                 data.info);
    IslandizationResult islands = islandize(data.graph);
    std::printf("workload: %s GCN-algo (%u nodes, %llu edges)\n\n",
                data.info.name.c_str(), data.numNodes(),
                static_cast<unsigned long long>(data.numEdges()));

    TextTable table({"MACs", "PEs", "P2 engines", "latency us",
                     "util%", "area kALMs", "us x kALMs"});
    for (int macs : {1024, 2048, 4096, 8192}) {
        for (int pes : {8, 16, 32}) {
            for (int p2 : {32, 64}) {
                HwConfig hw;
                hw.numMacs = macs;
                hw.numPes = pes;
                hw.locator.p2 = p2;
                if (hw.macsPerPe() < 16)
                    continue;
                RunResult r = simulateIgcn(data, mc, hw, &islands);
                AreaBreakdown area = areaBreakdown(hw);
                table.addRow({
                    std::to_string(macs), std::to_string(pes),
                    std::to_string(p2),
                    formatEng(r.latencyUs, 4),
                    formatEng(100 * r.utilization, 3),
                    formatEng(area.totalAlms() / 1000.0, 4),
                    formatEng(r.latencyUs * area.totalAlms() / 1000.0,
                              4),
                });
            }
        }
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("The latency-area product identifies the balanced "
                "point; the paper's 4096-MAC / 16-PE / 64-engine "
                "configuration sits near it for the citation "
                "workloads.\n");
    return 0;
}
