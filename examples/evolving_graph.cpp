/**
 * @file
 * Evolving-graph inference: the scenario that motivates *runtime*
 * islandization (Section 1).
 *
 * Offline reordering (Rubik, GraphACT, rabbit order) assumes the
 * graph is fixed; real deployments see evolving or inductively
 * generated graphs, where every update would force a reorder on the
 * critical path. This example grows a graph in snapshots (new nodes
 * + edges arriving), and at every snapshot compares:
 *
 *   - I-GCN: islandization re-runs *inside* the accelerator at
 *     microsecond scale, so inference latency is flat;
 *   - offline-reorder + AWB-GCN: the host-side reorder cost recurs
 *     on every snapshot and dwarfs inference.
 */

#include <chrono>
#include <cstdio>

#include "accel/awbgcn_model.hpp"
#include "accel/igcn_model.hpp"
#include "core/incremental.hpp"
#include "core/permute.hpp"
#include "gcn/models.hpp"
#include "graph/generators.hpp"
#include "reorder/reorder.hpp"

using namespace igcn;

namespace {

/** Growing community graph: each snapshot adds islands and hubs. */
CsrGraph
snapshotGraph(NodeId num_nodes, uint64_t seed)
{
    HubIslandParams params;
    params.numNodes = num_nodes;
    params.seed = seed; // same seed: earlier snapshots are prefixes
    return hubAndIslandGraph(params).graph;
}

} // namespace

int
main()
{
    std::printf("snapshot  nodes   edges     I-GCN total(us)  "
                "rabbit reorder(us)  AWB inf(us)  offline total(us)"
                "  overhead vs I-GCN\n");
    std::printf("-----------------------------------------------"
                "-------------------------------------------------"
                "--------------\n");

    HwConfig hw;
    for (int snap = 1; snap <= 6; ++snap) {
        const NodeId nodes = 2000u * snap;
        CsrGraph g = snapshotGraph(nodes, 99);

        DatasetGraph data;
        data.info = {"evolving", "EV", nodes, g.numEdges(), 128, 8,
                     0.2, 1.0};
        data.graph = g;
        data.featureNnz =
            static_cast<EdgeId>(nodes * 128 * 0.2);
        ModelConfig mc;
        mc.name = "GCN";
        mc.layers = {{128, 16}, {16, 8}};

        // I-GCN: islandization happens at runtime inside the device;
        // its cost is already part of the simulated latency.
        RunResult ig = simulateIgcn(data, mc, hw);

        // Offline path: rabbit reorder on the host (measured wall
        // clock), then AWB-GCN inference on the reordered graph.
        ReorderResult rr = reorderGraph(g, ReorderAlgo::Rabbit);
        DatasetGraph reordered = data;
        reordered.graph = g.permuted(rr.perm);
        RunResult awb = simulateAwbGcn(reordered, mc, hw);
        const double offline_total = rr.reorderTimeUs + awb.latencyUs;

        std::printf("%5d  %7u  %7llu  %15.2f  %18.1f  %11.2f  "
                    "%17.1f  %10.1fx\n",
                    snap, nodes,
                    static_cast<unsigned long long>(g.numEdges()),
                    ig.latencyUs, rr.reorderTimeUs, awb.latencyUs,
                    offline_total, offline_total / ig.latencyUs);
    }

    std::printf("\nEvery graph update forces the offline pipeline to "
                "pay the reorder again; I-GCN's runtime islandization "
                "keeps end-to-end latency at inference scale "
                "(the paper's Figure 12 argument, extended to an "
                "evolving stream).\n\n");

    // Incremental repair (library extension): instead of
    // re-islandizing from scratch on every update, dissolve only the
    // invalidated islands and repair locally.
    std::printf("Incremental repair on a stream of edge insertions "
                "(8000-node graph):\n");
    CsrGraph g = snapshotGraph(8000, 7);
    LocatorConfig lcfg;
    IslandizationResult isl = islandize(g, lcfg);
    Rng rng(3);
    for (int batch = 1; batch <= 4; ++batch) {
        std::vector<Edge> added;
        for (int e = 0; e < 16; ++e) {
            NodeId u = static_cast<NodeId>(rng.nextBounded(8000));
            NodeId v = static_cast<NodeId>(rng.nextBounded(8000));
            if (u != v)
                added.emplace_back(u, v);
        }
        std::vector<Edge> all = g.toEdges();
        all.insert(all.end(), added.begin(), added.end());
        g = CsrGraph::fromEdges(8000, all, /*symmetrize=*/true);

        auto t0 = std::chrono::steady_clock::now();
        IncrementalStats stats;
        isl = updateIslandization(g, isl, added, lcfg, &stats);
        auto t1 = std::chrono::steady_clock::now();
        IslandizationResult fresh = islandize(g, lcfg);
        auto t2 = std::chrono::steady_clock::now();
        auto us = [](auto a, auto b) {
            return std::chrono::duration<double, std::micro>(b - a)
                .count();
        };
        std::printf("  batch %d: +%zu edges -> %llu islands "
                    "dissolved, %llu nodes reclassified; repair "
                    "%.0f us vs fresh %.0f us (%.1fx less work); "
                    "coverage outliers: %llu\n",
                    batch, added.size(),
                    static_cast<unsigned long long>(
                        stats.islandsDissolved),
                    static_cast<unsigned long long>(
                        stats.nodesReclassified),
                    us(t0, t1), us(t1, t2), us(t1, t2) / us(t0, t1),
                    static_cast<unsigned long long>(
                        classifyCoverage(g, isl).outliers));
    }
    return 0;
}
