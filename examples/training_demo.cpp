/**
 * @file
 * Training through islands (extension): fits a 2-layer GCN to
 * teacher-generated targets with both forward and backward
 * aggregation running through the Island Consumer, demonstrating
 * that shared-neighbor redundancy removal accelerates *training* as
 * well as inference (the GraphACT use case, without GraphACT's
 * offline preprocessing).
 */

#include <cstdio>

#include "gcn/training.hpp"
#include "graph/generators.hpp"

using namespace igcn;

int
main()
{
    HubIslandParams params;
    params.numNodes = 1000;
    params.intraIslandProb = 0.7;
    params.seed = 77;
    auto hi = hubAndIslandGraph(params);
    const CsrGraph &g = hi.graph;
    IslandizationResult islands = islandize(g);
    std::printf("graph: %u nodes, %llu edges; %zu islands, %u hubs\n",
                g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()),
                islands.islands.size(), islands.numHubs());

    Rng rng(5);
    Features x = makeFeatures(g.numNodes(), 16, 0.3, rng);
    ModelConfig mc;
    mc.layers = {{16, 12}, {12, 4}};
    auto student = makeWeights(mc, rng);
    Rng teacher_rng(1234);
    auto teacher = makeWeights(mc, teacher_rng);
    DenseMatrix target =
        trainingForward(g, islands, x, teacher).output;

    std::printf("\nepoch   loss        agg ops (fwd+bwd)   pruned\n");
    AggOpStats total_ops;
    for (int epoch = 0; epoch <= 60; ++epoch) {
        ForwardCache cache = trainingForward(g, islands, x, student);
        DenseMatrix grad_out;
        double loss = mseLoss(cache.output, target, &grad_out);
        Gradients grads = trainingBackward(g, islands, x, student,
                                           cache, grad_out);
        total_ops += grads.backwardAggOps;
        if (epoch % 10 == 0) {
            std::printf("%5d   %.6f    %12llu     %5.1f%%\n", epoch,
                        loss,
                        static_cast<unsigned long long>(
                            grads.backwardAggOps.baselineOps),
                        100.0 * (1.0 -
                                 static_cast<double>(
                                     grads.backwardAggOps
                                         .optimizedOps()) /
                                     grads.backwardAggOps.baselineOps));
        }
        sgdStep(student, grads, 4.0f);
    }

    std::printf("\nBackward aggregation reuses the same islands and "
                "pre-aggregated sums as the forward pass (A_hat is "
                "symmetric), so training gets the same %.0f%%-class "
                "op pruning — with zero preprocessing, unlike "
                "GraphACT's offline matching.\n",
                100.0 * (1.0 - static_cast<double>(
                    total_ops.optimizedOps()) / total_ops.baselineOps));
    return 0;
}
