/**
 * @file
 * Citation-network inference: the workload class the paper's intro
 * motivates (Cora-style citation graphs, 2-layer GCN).
 *
 * Runs the full functional pipeline on the Cora surrogate — sparse
 * bag-of-words features, combination-first layers, island-based
 * aggregation — verifies losslessness, and compares the I-GCN
 * accelerator against AWB-GCN, GPU and CPU on the same workload.
 */

#include <cstdio>

#include "accel/awbgcn_model.hpp"
#include "accel/igcn_model.hpp"
#include "accel/platform_models.hpp"
#include "core/consumer.hpp"
#include "gcn/reference.hpp"
#include "graph/datasets.hpp"

using namespace igcn;

int
main()
{
    // Cora surrogate at half scale keeps the functional (actual
    // floating-point) forward pass fast.
    DatasetGraph data = buildDataset(Dataset::Cora, 0.5);
    std::printf("dataset: %s surrogate, %u nodes, %llu edges, "
                "%d features, %d classes\n",
                data.info.name.c_str(), data.numNodes(),
                static_cast<unsigned long long>(data.numEdges()),
                data.info.numFeatures, data.info.numClasses);

    ModelConfig mc = modelConfig(Model::GCN, NetConfig::Algo,
                                 data.info);
    Rng rng(42);
    Features x = makeFeatures(data.numNodes(), data.info.numFeatures,
                              data.info.featureDensity, rng);
    auto weights = makeWeights(mc, rng);

    // Functional inference through the Island Consumer.
    IslandizationResult islands = islandize(data.graph);
    AggOpStats ops;
    DenseMatrix logits = gcnForwardViaIslands(data.graph, islands, x,
                                              weights, {}, &ops);
    DenseMatrix golden = referenceForward(data.graph, x, weights);
    std::printf("functional check: max |diff| vs reference = %.2e\n",
                maxAbsDiff(logits, golden));

    // Predicted class of a few nodes (argmax over logits).
    std::printf("sample predictions (node: class):");
    for (NodeId v = 0; v < 5; ++v) {
        int best = 0;
        for (size_t c = 1; c < logits.cols(); ++c)
            if (logits.at(v, c) > logits.at(v, best))
                best = static_cast<int>(c);
        std::printf("  %u:%d", v, best);
    }
    std::printf("\n\n");

    // Timing comparison on the same workload.
    HwConfig hw;
    RunResult ig = simulateIgcn(data, mc, hw, &islands);
    RunResult awb = simulateAwbGcn(data, mc, hw);
    RunResult gpu = simulateGpu(data, mc, Framework::PyG);
    RunResult cpu = simulateCpu(data, mc, Framework::PyG);
    std::printf("latency: I-GCN %.2f us | AWB-GCN %.2f us (%.2fx) | "
                "PyG-V100 %.1f us (%.0fx) | PyG-CPU %.0f us (%.0fx)\n",
                ig.latencyUs, awb.latencyUs,
                awb.latencyUs / ig.latencyUs, gpu.latencyUs,
                gpu.latencyUs / ig.latencyUs, cpu.latencyUs,
                cpu.latencyUs / ig.latencyUs);
    std::printf("aggregation pruning on this run: %.1f%% of "
                "aggregation ops removed, losslessly\n",
                100.0 * (1.0 - static_cast<double>(
                    ops.optimizedOps()) / ops.baselineOps));
    return 0;
}
