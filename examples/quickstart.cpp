/**
 * @file
 * Quickstart: the minimal end-to-end use of the library.
 *
 *  1. build (or load) a graph;
 *  2. run runtime islandization (the paper's core algorithm);
 *  3. execute a GCN layer through the Island Consumer with
 *     shared-neighbor redundancy removal and check it against the
 *     reference forward pass;
 *  4. simulate the I-GCN accelerator to get latency/traffic/energy.
 */

#include <cstdio>

#include "accel/igcn_model.hpp"
#include "core/consumer.hpp"
#include "core/permute.hpp"
#include "gcn/reference.hpp"
#include "graph/generators.hpp"

using namespace igcn;

int
main()
{
    // 1. A synthetic community graph: 2000 nodes, hidden hub/island
    //    structure with shuffled ids.
    HubIslandParams params;
    params.numNodes = 2000;
    params.seed = 7;
    HubIslandGraph hi = hubAndIslandGraph(params);
    const CsrGraph &graph = hi.graph;
    std::printf("graph: %u nodes, %llu directed edges, max degree %u\n",
                graph.numNodes(),
                static_cast<unsigned long long>(graph.numEdges()),
                graph.maxDegree());

    // 2. Runtime islandization.
    IslandizationResult islands = islandize(graph);
    std::printf("islandization: %d rounds, %u hubs, %zu islands, "
                "%zu inter-hub edges\n",
                islands.numRounds, islands.numHubs(),
                islands.islands.size(), islands.interHubEdges.size());
    ClusterCoverage cov = classifyCoverage(graph, islands);
    std::printf("coverage: %.1f%% of non-zeros in hub L-shapes, "
                "%.1f%% in island blocks, %llu outliers\n",
                100.0 * cov.inHubLShape / cov.total,
                100.0 * cov.inIslandBlock / cov.total,
                static_cast<unsigned long long>(cov.outliers));

    // 3. Lossless redundancy removal on a real GCN layer.
    Rng rng(1);
    Features x = makeFeatures(graph.numNodes(), 64, 0.1, rng);
    ModelConfig mc;
    mc.name = "GCN";
    mc.layers = {{64, 16}, {16, 4}};
    auto weights = makeWeights(mc, rng);

    AggOpStats ops;
    DenseMatrix out =
        gcnForwardViaIslands(graph, islands, x, weights, {}, &ops);
    DenseMatrix golden = referenceForward(graph, x, weights);
    std::printf("island consumer vs reference: max |diff| = %.2e "
                "(lossless)\n", maxAbsDiff(out, golden));
    std::printf("aggregation ops: %llu baseline -> %llu with "
                "redundancy removal (%.1f%% pruned)\n",
                static_cast<unsigned long long>(ops.baselineOps),
                static_cast<unsigned long long>(ops.optimizedOps()),
                100.0 * (1.0 - static_cast<double>(
                    ops.optimizedOps()) / ops.baselineOps));

    // 4. Accelerator timing.
    DatasetGraph data;
    data.info = {"quickstart", "QS", graph.numNodes(),
                 graph.numEdges(), 64, 4, 0.1, 1.0};
    data.graph = graph;
    data.featureNnz = x.nnz();
    HwConfig hw;
    RunResult result = simulateIgcn(data, mc, hw, &islands);
    std::printf("I-GCN @ %d MACs, %.0f MHz: latency %.2f us, "
                "utilization %.0f%%, energy %.2f uJ\n",
                hw.numMacs, hw.clockMHz, result.latencyUs,
                100.0 * result.utilization, result.energyUJ);
    return 0;
}
