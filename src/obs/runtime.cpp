#include "obs/runtime.hpp"

#include <cstdio>
#include <map>
#include <memory>

namespace igcn::obs {

Registry &
runtimeRegistry()
{
    static Registry reg;
    return reg;
}

void
RuntimeProfiler::onRegion(const char *label, int chunks,
                          uint64_t start_us, uint64_t end_us)
{
    const Labels labels{{"kernel", label}};
    reg.counter("igcn_runtime_kernel_regions_total", labels,
                "parallelFor regions run per kernel")
        .inc();
    reg.counter("igcn_runtime_kernel_wall_us_total", labels,
                "Region wall time per kernel (caller-side us)")
        .add(end_us - start_us);
    (void)chunks;
}

void
RuntimeProfiler::onChunk(const char *label, int worker,
                         uint64_t start_us, uint64_t end_us)
{
    const uint64_t busy = end_us - start_us;
    reg.counter("igcn_runtime_kernel_busy_us_total",
                {{"kernel", label}},
                "Summed per-chunk busy time per kernel (us)")
        .add(busy);
    reg.sharded("igcn_runtime_worker_busy_us", {},
                "Busy time by pool worker (us)")
        .add(worker, busy);
    if (rec)
        rec->complete(kLaneWorker0 + static_cast<uint32_t>(worker),
                      label, "runtime", start_us, busy);
}

namespace {

std::unique_ptr<RuntimeProfiler> g_profiler;

} // namespace

void
enableRuntimeProfiling(TraceRecorder *rec)
{
    g_profiler =
        std::make_unique<RuntimeProfiler>(runtimeRegistry(), rec);
    setPoolObserver(g_profiler.get());
}

void
disableRuntimeProfiling()
{
    setPoolObserver(nullptr);
    g_profiler.reset();
}

std::string
kernelTimingReport(const Registry &reg)
{
    struct Row
    {
        uint64_t regions = 0;
        uint64_t wallUs = 0;
        uint64_t busyUs = 0;
    };
    std::map<std::string, Row> rows;
    reg.forEach([&](const MetricKey &key, const Registry::Entry &e) {
        if (e.kind != MetricKind::Counter)
            return;
        const auto it = key.labels.find("kernel");
        if (it == key.labels.end())
            return;
        Row &row = rows[it->second];
        if (key.name == "igcn_runtime_kernel_regions_total")
            row.regions = e.counter->value();
        else if (key.name == "igcn_runtime_kernel_wall_us_total")
            row.wallUs = e.counter->value();
        else if (key.name == "igcn_runtime_kernel_busy_us_total")
            row.busyUs = e.counter->value();
    });
    if (rows.empty())
        return "";

    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line), "%-28s %10s %12s %12s %10s %7s\n",
                  "kernel", "regions", "wall_us", "busy_us",
                  "us/region", "par");
    out += line;
    for (const auto &[kernel, row] : rows) {
        const double per_region =
            row.regions
                ? static_cast<double>(row.wallUs) /
                      static_cast<double>(row.regions)
                : 0.0;
        const double par =
            row.wallUs ? static_cast<double>(row.busyUs) /
                             static_cast<double>(row.wallUs)
                       : 0.0;
        std::snprintf(line, sizeof(line),
                      "%-28s %10llu %12llu %12llu %10.1f %7.2f\n",
                      kernel.c_str(),
                      static_cast<unsigned long long>(row.regions),
                      static_cast<unsigned long long>(row.wallUs),
                      static_cast<unsigned long long>(row.busyUs),
                      per_region, par);
        out += line;
    }
    return out;
}

} // namespace igcn::obs
