/**
 * @file
 * Structured span tracing (DESIGN.md section 8): an append-only
 * recorder of Chrome-trace-event-shaped spans and instants, threaded
 * through the request lifecycle (admit -> enqueue -> dispatch ->
 * batch-form -> gather -> layer0..layerN -> respond) and the update
 * path (coalesce -> edit-edges -> islandize -> publish-epoch).
 *
 * Determinism: in virtual-clock replay every timestamp comes from the
 * trace and the service-cost model, and events are appended by the
 * single serving loop in virtual-time order — so the recorded stream
 * (and its Perfetto JSON export) is byte-identical at any
 * IGCN_THREADS. Real-time mode stamps events through the obs
 * RealClock seam instead; those streams are not byte-gated.
 *
 * The recorder is mutex-guarded so real-time submitter threads and
 * opt-in worker-span instrumentation can append safely; when
 * disabled (the default) every record call is one relaxed load.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.hpp"
#include "runtime/thread_annotations.hpp"

namespace igcn::obs {

/** One trace event (Chrome trace-event model). */
struct TraceEvent
{
    /** Monotonic per-recorder id, assigned at append. */
    uint64_t id = 0;
    std::string name;
    /** Category ("serve", "update", "runtime"). */
    std::string cat;
    /** 'X' complete span, 'i' instant. */
    char ph = 'X';
    uint64_t tsUs = 0;
    /** Span duration ('X' only). */
    uint64_t durUs = 0;
    /** Virtual lane (exported as tid); see laneName(). */
    uint32_t tid = 0;
    /** Numeric args, in emission order. */
    std::vector<std::pair<std::string, uint64_t>> num;
    /** String args, in emission order. */
    std::vector<std::pair<std::string, std::string>> str;
};

/** Well-known lanes; lanes >= kLaneWorker0 are pool workers. */
inline constexpr uint32_t kLaneRequests = 0;
inline constexpr uint32_t kLaneServer = 1;
inline constexpr uint32_t kLaneRuntime = 2;
inline constexpr uint32_t kLaneWorker0 = 100;

/** Display name of a lane ("requests", "server", "worker-3", ...). */
std::string laneName(uint32_t tid);

/** See file comment. */
class TraceRecorder
{
  public:
    explicit TraceRecorder(bool enabled = false)
        : on(enabled)
    {}

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    void setEnabled(bool enabled) { on.store(enabled); }
    bool enabled() const { return on.load(std::memory_order_relaxed); }

    /** Drop all recorded events (start of a run). */
    void clear();

    /** Append a complete span [ts, ts+dur); no-op when disabled. */
    void complete(uint32_t tid, std::string name, std::string cat,
                  uint64_t ts_us, uint64_t dur_us,
                  std::vector<std::pair<std::string, uint64_t>> num = {},
                  std::vector<std::pair<std::string, std::string>>
                      str = {});

    /** Append an instant event; no-op when disabled. */
    void instant(uint32_t tid, std::string name, std::string cat,
                 uint64_t ts_us,
                 std::vector<std::pair<std::string, uint64_t>> num = {},
                 std::vector<std::pair<std::string, std::string>>
                     str = {});

    size_t size() const;

    /** Snapshot of the event list (copy; the exporters use this). */
    std::vector<TraceEvent> events() const;

  private:
    std::atomic<bool> on;
    mutable Mutex mutex;
    uint64_t nextId IGCN_GUARDED_BY(mutex) = 0;
    std::vector<TraceEvent> log IGCN_GUARDED_BY(mutex);
};

/**
 * RAII wall-clock span: stamps its start at construction and appends
 * a complete event on destruction, timed through the obs RealClock
 * seam. For real-time-mode phases whose end is an actual instant;
 * replay-mode spans call TraceRecorder::complete directly because
 * their endpoints come from the virtual cost model, not a clock.
 */
class Span
{
  public:
    Span(TraceRecorder &rec, const RealClock &clock, uint32_t tid,
         std::string name, std::string cat)
        : rec(rec), clock(clock), tid(tid), name(std::move(name)),
          cat(std::move(cat)), live(rec.enabled()),
          t0(live ? clock.nowUs() : 0)
    {}

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach a numeric arg to the emitted event. */
    void
    arg(std::string key, uint64_t v)
    {
        if (live)
            num.emplace_back(std::move(key), v);
    }

    ~Span()
    {
        if (!live)
            return;
        const uint64_t t1 = clock.nowUs();
        rec.complete(tid, std::move(name), std::move(cat), t0,
                     t1 - t0, std::move(num));
    }

  private:
    TraceRecorder &rec;
    const RealClock &clock;
    uint32_t tid;
    std::string name;
    std::string cat;
    bool live;
    uint64_t t0;
    std::vector<std::pair<std::string, uint64_t>> num;
};

} // namespace igcn::obs
