#include "obs/trace.hpp"

namespace igcn::obs {

std::string
laneName(uint32_t tid)
{
    switch (tid) {
    case kLaneRequests:
        return "requests";
    case kLaneServer:
        return "server";
    case kLaneRuntime:
        return "runtime";
    default:
        break;
    }
    if (tid >= kLaneWorker0)
        return "worker-" + std::to_string(tid - kLaneWorker0);
    return "lane-" + std::to_string(tid);
}

void
TraceRecorder::clear()
{
    MutexLock lock(mutex);
    log.clear();
    nextId = 0;
}

void
TraceRecorder::complete(
    uint32_t tid, std::string name, std::string cat, uint64_t ts_us,
    uint64_t dur_us,
    std::vector<std::pair<std::string, uint64_t>> num,
    std::vector<std::pair<std::string, std::string>> str)
{
    if (!enabled())
        return;
    MutexLock lock(mutex);
    TraceEvent e;
    e.id = nextId++;
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.ph = 'X';
    e.tsUs = ts_us;
    e.durUs = dur_us;
    e.tid = tid;
    e.num = std::move(num);
    e.str = std::move(str);
    log.push_back(std::move(e));
}

void
TraceRecorder::instant(
    uint32_t tid, std::string name, std::string cat, uint64_t ts_us,
    std::vector<std::pair<std::string, uint64_t>> num,
    std::vector<std::pair<std::string, std::string>> str)
{
    if (!enabled())
        return;
    MutexLock lock(mutex);
    TraceEvent e;
    e.id = nextId++;
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.ph = 'i';
    e.tsUs = ts_us;
    e.tid = tid;
    e.num = std::move(num);
    e.str = std::move(str);
    log.push_back(std::move(e));
}

size_t
TraceRecorder::size() const
{
    MutexLock lock(mutex);
    return log.size();
}

std::vector<TraceEvent>
TraceRecorder::events() const
{
    MutexLock lock(mutex);
    return log;
}

} // namespace igcn::obs
