/**
 * @file
 * The metrics registry (DESIGN.md section 8): named counters, gauges,
 * fixed-boundary histograms, and per-worker sharded counters, all
 * owned by a Registry keyed on (name, ordered label set) so every
 * snapshot iterates in one deterministic order.
 *
 * Thread model, matching the determinism contract:
 *
 *  - Counter / Gauge are relaxed atomics: safe from any thread, and
 *    thread-exact whenever the *set of increments* is thread-exact
 *    (which the serving loop and the static-partitioned kernels
 *    guarantee — the same events happen at any IGCN_THREADS).
 *  - ShardedCounter gives each pool worker its own cache-line slot;
 *    value() folds the shards in worker-index order, the same
 *    per-worker-buffer-then-ordered-merge discipline every parallel
 *    kernel uses (thread_pool.hpp, parallelAccumulate).
 *  - Histogram is deliberately *not* atomic: it is single-writer
 *    (the serving scheduler thread owns every serve histogram).
 *    Cross-thread recording uses per-worker Histogram instances
 *    merged in worker-index order via merge() — bit-identical to the
 *    sequential recording because bucket counts, sum, min and max
 *    are all order-independent integers.
 *
 * Registration is mutex-guarded; re-registering an existing
 * (name, labels) key returns the existing metric (kind-checked).
 */

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/thread_annotations.hpp"

namespace igcn::obs {

/** Ordered label set; map order makes exposition deterministic. */
using Labels = std::map<std::string, std::string>;

/** Monotonic event count. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        v.fetch_add(n, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    uint64_t value() const { return v.load(std::memory_order_relaxed); }

    /** Zero the count (run reset; see Registry::resetValues). */
    void reset() { v.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v{0};
};

/** Last-value (or extremum-tracked) instantaneous measurement. */
class Gauge
{
  public:
    void set(int64_t x) { v.store(x, std::memory_order_relaxed); }

    void
    add(int64_t n)
    {
        v.fetch_add(n, std::memory_order_relaxed);
    }

    /** Raise to x if x is larger (running maximum). */
    void
    setMax(int64_t x)
    {
        int64_t cur = v.load(std::memory_order_relaxed);
        while (x > cur &&
               !v.compare_exchange_weak(cur, x,
                                        std::memory_order_relaxed))
            ;
    }

    /** Lower to x if x is smaller (running minimum). */
    void
    setMin(int64_t x)
    {
        int64_t cur = v.load(std::memory_order_relaxed);
        while (x < cur &&
               !v.compare_exchange_weak(cur, x,
                                        std::memory_order_relaxed))
            ;
    }

    int64_t value() const { return v.load(std::memory_order_relaxed); }

    /** Back to the initial 0 (run reset). */
    void reset() { v.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v{0};
};

/**
 * Counter with one cache-line-padded slot per pool worker. Workers
 * add to their own slot with no contention; value() folds the slots
 * in worker-index order (the contract's canonical merge order).
 */
class ShardedCounter
{
  public:
    /** shards must cover the largest worker index ever used; the
     *  pool clamps IGCN_THREADS to 256. */
    explicit ShardedCounter(int shards = 256)
        : slots(static_cast<size_t>(shards < 1 ? 1 : shards))
    {}

    void
    add(int worker, uint64_t n = 1)
    {
        slots[static_cast<size_t>(worker) % slots.size()].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Shards merged in worker-index order. */
    uint64_t
    value() const
    {
        uint64_t total = 0;
        for (const Slot &s : slots)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

    uint64_t
    shard(int worker) const
    {
        return slots[static_cast<size_t>(worker) % slots.size()].v.load(
            std::memory_order_relaxed);
    }

    int numShards() const { return static_cast<int>(slots.size()); }

    /** Zero every shard (run reset; not concurrent with add()). */
    void
    reset()
    {
        for (Slot &s : slots)
            s.v.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Slot
    {
        std::atomic<uint64_t> v{0};
    };
    std::vector<Slot> slots;
};

/**
 * Fixed-boundary histogram with Prometheus `le` semantics: bucket i
 * counts observations v <= bounds[i] (and > bounds[i-1]); one
 * implicit +Inf bucket catches the overflow. Memory is
 * bounds.size()+1 integers regardless of traffic — the bounded
 * replacement for ServerStats' stored-all-samples vectors. Exact sum,
 * count, min and max are tracked alongside, so means and maxima stay
 * exact; quantile() interpolates within the containing bucket and is
 * therefore accurate to one bucket width (quantileErrorBound()).
 *
 * Single-writer by contract (see file comment); copyable so
 * per-worker instances can ride parallelAccumulate and merge().
 */
class Histogram
{
  public:
    /** bounds: strictly ascending upper bounds. */
    explicit Histogram(std::vector<uint64_t> upper_bounds)
        : bounds(std::move(upper_bounds)),
          buckets(bounds.size() + 1, 0)
    {
        for (size_t i = 1; i < bounds.size(); ++i)
            if (bounds[i] <= bounds[i - 1])
                throw std::invalid_argument(
                    "Histogram bounds must be strictly ascending");
    }

    void
    observe(uint64_t v)
    {
        buckets[bucketIndex(v)]++;
        total++;
        sumValues += v;
        if (total == 1) {
            minSeen = v;
            maxSeen = v;
        } else {
            minSeen = v < minSeen ? v : minSeen;
            maxSeen = v > maxSeen ? v : maxSeen;
        }
    }

    /** Index of the bucket v falls in (le semantics). */
    size_t
    bucketIndex(uint64_t v) const
    {
        size_t lo = 0, hi = bounds.size();
        while (lo < hi) {
            const size_t mid = lo + (hi - lo) / 2;
            if (v <= bounds[mid])
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo; // == bounds.size() -> +Inf bucket
    }

    uint64_t count() const { return total; }
    uint64_t sum() const { return sumValues; }
    uint64_t minValue() const { return total ? minSeen : 0; }
    uint64_t maxValue() const { return total ? maxSeen : 0; }

    double
    mean() const
    {
        return total == 0 ? 0.0
                          : static_cast<double>(sumValues) /
                                static_cast<double>(total);
    }

    size_t numBuckets() const { return buckets.size(); }
    uint64_t bucketCount(size_t i) const { return buckets[i]; }
    const std::vector<uint64_t> &upperBounds() const { return bounds; }

    /**
     * Rank-interpolated quantile estimate, clamped to the observed
     * [min, max]. Off from the exact nearest-rank value by at most
     * the width of the containing bucket.
     *
     * Degenerate counts are pinned contract, not clamp accidents
     * (tests/test_obs.cpp): an empty histogram returns 0.0 for every
     * q, and a single-sample histogram returns that sample exactly
     * for every q — both with quantileErrorBound() == 0.
     */
    double
    quantile(double q) const
    {
        if (total == 0)
            return 0.0;
        if (total == 1)
            return static_cast<double>(minSeen);
        q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
        const double target = q * static_cast<double>(total);
        uint64_t cum = 0;
        for (size_t i = 0; i < buckets.size(); ++i) {
            const uint64_t in_bucket = buckets[i];
            if (in_bucket == 0)
                continue;
            const double cum_after =
                static_cast<double>(cum + in_bucket);
            if (cum_after >= target) {
                const auto [lower, upper] = bucketRange(i);
                const double pos =
                    (target - static_cast<double>(cum)) /
                    static_cast<double>(in_bucket);
                double est = static_cast<double>(lower) +
                             pos * static_cast<double>(upper - lower);
                est = std::max(est, static_cast<double>(minSeen));
                est = std::min(est, static_cast<double>(maxSeen));
                return est;
            }
            cum += in_bucket;
        }
        return static_cast<double>(maxSeen);
    }

    /** Width of the bucket containing quantile q (the estimate's
     *  worst-case error vs. the exact nearest-rank value). 0 at
     *  count <= 1: quantile() is exact there by contract. */
    double
    quantileErrorBound(double q) const
    {
        if (total <= 1)
            return 0.0;
        q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
        const double target = q * static_cast<double>(total);
        uint64_t cum = 0;
        for (size_t i = 0; i < buckets.size(); ++i) {
            cum += buckets[i];
            if (buckets[i] > 0 &&
                static_cast<double>(cum) >= target) {
                const auto [lower, upper] = bucketRange(i);
                return static_cast<double>(upper - lower);
            }
        }
        return 0.0;
    }

    /** Fold another histogram (same bounds) into this one. Order-
     *  independent, so a worker-index-ordered merge is bit-exact. */
    void
    merge(const Histogram &other)
    {
        if (other.bounds != bounds)
            throw std::invalid_argument(
                "Histogram::merge: mismatched bounds");
        if (other.total == 0)
            return;
        for (size_t i = 0; i < buckets.size(); ++i)
            buckets[i] += other.buckets[i];
        if (total == 0) {
            minSeen = other.minSeen;
            maxSeen = other.maxSeen;
        } else {
            minSeen = std::min(minSeen, other.minSeen);
            maxSeen = std::max(maxSeen, other.maxSeen);
        }
        total += other.total;
        sumValues += other.sumValues;
    }

    /** Back to the freshly constructed state, keeping the bounds
     *  (run reset; single-writer, like observe()). */
    void
    reset()
    {
        std::fill(buckets.begin(), buckets.end(), 0);
        total = 0;
        sumValues = 0;
        minSeen = 0;
        maxSeen = 0;
    }

  private:
    /** [lower, upper] value range modeled for bucket i. */
    std::pair<uint64_t, uint64_t>
    bucketRange(size_t i) const
    {
        const uint64_t lower = i == 0 ? 0 : bounds[i - 1];
        const uint64_t upper =
            i < bounds.size() ? bounds[i] : std::max(maxSeen, lower);
        return {lower, std::max(upper, lower)};
    }

    std::vector<uint64_t> bounds;
    std::vector<uint64_t> buckets;
    uint64_t total = 0;
    uint64_t sumValues = 0;
    uint64_t minSeen = 0;
    uint64_t maxSeen = 0;
};

/** Default latency bucket bounds: 1-2-5 per decade, 1us..10s. */
const std::vector<uint64_t> &latencyBoundsUs();

/** What a registry entry is (drives exposition formatting). */
enum class MetricKind : uint8_t
{
    Counter,
    Gauge,
    Histogram,
    ShardedCounter,
};

/** Name + ordered labels; the registry's deterministic sort key. */
struct MetricKey
{
    std::string name;
    Labels labels;

    bool
    operator<(const MetricKey &o) const
    {
        if (name != o.name)
            return name < o.name;
        return labels < o.labels;
    }
};

/**
 * Owns every metric of one accounting surface (the server's run
 * stats, or the process-wide runtime/kernel registry). Metrics are
 * heap-allocated, so references returned by the registration calls
 * stay valid for the registry's lifetime. Iteration (forEach,
 * exporters) walks entries in (name, labels) order — deterministic
 * by construction.
 */
class Registry
{
  public:
    struct Entry
    {
        MetricKind kind = MetricKind::Counter;
        std::string help;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::unique_ptr<ShardedCounter> sharded;
    };

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Get-or-create; throws std::logic_error on a kind clash. */
    Counter &counter(const std::string &name,
                     const Labels &labels = {},
                     const std::string &help = "");
    Gauge &gauge(const std::string &name, const Labels &labels = {},
                 const std::string &help = "");
    Histogram &histogram(const std::string &name,
                         const std::vector<uint64_t> &bounds,
                         const Labels &labels = {},
                         const std::string &help = "");
    ShardedCounter &sharded(const std::string &name,
                            const Labels &labels = {},
                            const std::string &help = "");

    /** Existing metric or nullptr (no creation; any labels). */
    const Counter *findCounter(const std::string &name,
                               const Labels &labels = {}) const;
    const Gauge *findGauge(const std::string &name,
                           const Labels &labels = {}) const;
    const Histogram *findHistogram(const std::string &name,
                                   const Labels &labels = {}) const;

    /** Sum of a counter family's values over every label set. */
    uint64_t counterFamilyTotal(const std::string &name) const;

    /**
     * Zero every metric's recorded values in place. Registration
     * survives: every pointer or reference previously returned stays
     * valid and keeps pointing at the (now zeroed) metric — this is
     * what makes a run reset safe for callers that cache metric
     * pointers (serve::ServerStats::reset). Not concurrent with
     * recording.
     */
    void resetValues();

    /** Visit every entry in (name, labels) order. */
    void forEach(const std::function<void(const MetricKey &,
                                          const Entry &)> &fn) const;

    size_t size() const;

  private:
    Entry &getOrCreate(const MetricKey &key, MetricKind kind,
                       const std::string &help)
        IGCN_REQUIRES(mutex);

    mutable Mutex mutex;
    std::map<MetricKey, Entry> entries IGCN_GUARDED_BY(mutex);
};

} // namespace igcn::obs
