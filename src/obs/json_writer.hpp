/**
 * @file
 * Minimal streaming JSON emitter shared by the observability
 * exporters (Perfetto traces, metrics snapshots) and the bench
 * harnesses (BENCH_*.json files).
 *
 * Stack-based begin/end API with automatic comma placement; strings
 * are escaped, doubles printed with enough digits to round-trip.
 * Lived in bench/bench_common.hpp until the obs layer (DESIGN.md
 * section 8) needed it from library code; bench_common.hpp keeps a
 * `using` alias so existing bench/test call sites are unchanged.
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace igcn::obs {

/** See file comment. */
class JsonWriter
{
  public:
    JsonWriter &
    beginObject()
    {
        comma();
        out += '{';
        first = true;
        return *this;
    }

    JsonWriter &
    endObject()
    {
        out += '}';
        first = false;
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        comma();
        out += '[';
        first = true;
        return *this;
    }

    JsonWriter &
    endArray()
    {
        out += ']';
        first = false;
        return *this;
    }

    JsonWriter &
    key(const std::string &k)
    {
        comma();
        appendString(k);
        out += ':';
        first = true; // suppress comma before the value
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        comma();
        appendString(v);
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string(v));
    }

    JsonWriter &
    value(double v)
    {
        comma();
        // JSON has no inf/nan literal; degenerate measurements (e.g.
        // a zero-time denominator making a speedup ratio inf on a
        // 1-core container) become null so the document always
        // parses.
        if (!std::isfinite(v)) {
            out += "null";
            return *this;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out += buf;
        return *this;
    }

    JsonWriter &
    value(uint64_t v)
    {
        comma();
        out += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(int v)
    {
        comma();
        out += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        comma();
        out += v ? "true" : "false";
        return *this;
    }

    const std::string &str() const { return out; }

    /** Write the document to path; returns false on I/O failure. */
    bool
    writeFile(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            return false;
        const size_t n =
            std::fwrite(out.data(), 1, out.size(), f);
        const bool ok = n == out.size() && std::fputc('\n', f) != EOF;
        return std::fclose(f) == 0 && ok;
    }

  private:
    void
    comma()
    {
        if (!first)
            out += ',';
        first = false;
    }

    void
    appendString(const std::string &s)
    {
        out += '"';
        for (char c : s) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              case '\t': out += "\\t"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
        out += '"';
    }

    std::string out;
    bool first = true;
};

} // namespace igcn::obs
