/**
 * @file
 * Observability exporters (DESIGN.md section 8): Chrome-trace-event/
 * Perfetto JSON for TraceRecorder streams (`igcn serve
 * --trace-out=FILE`, loadable in ui.perfetto.dev or
 * chrome://tracing) and Prometheus text exposition for metric
 * registries (`--metrics-out=FILE`). Both render deterministic
 * inputs deterministically: events in append order, metrics in
 * (name, labels) order, fixed number formatting — which is what
 * makes the replay-mode trace files byte-identical across
 * IGCN_THREADS (the obs-determinism CI job cmp-gates this).
 */

#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace igcn::obs {

/** Chrome trace-event JSON of the recorded stream. */
std::string perfettoJson(const TraceRecorder &rec);

/** perfettoJson to a file; false on I/O failure. */
bool writePerfettoTrace(const TraceRecorder &rec,
                        const std::string &path);

/** Prometheus text exposition of one registry. */
std::string prometheusText(const Registry &reg);

/** Concatenated exposition of several registries (server + runtime). */
std::string prometheusText(const std::vector<const Registry *> &regs);

/** Write arbitrary exposition text to a file; false on failure. */
bool writeTextFile(const std::string &text, const std::string &path);

} // namespace igcn::obs
