#include "obs/metrics.hpp"

namespace igcn::obs {

const std::vector<uint64_t> &
latencyBoundsUs()
{
    // 1-2-5 per decade from 1us to 10s: 22 buckets (+Inf implicit),
    // coarse enough to stay tiny, fine enough that an interpolated
    // p99 lands within one bucket width of the exact nearest-rank
    // value (the compat test in test_serving.cpp pins this).
    static const std::vector<uint64_t> bounds = {
        1,       2,       5,       10,      20,      50,
        100,     200,     500,     1'000,   2'000,   5'000,
        10'000,  20'000,  50'000,  100'000, 200'000, 500'000,
        1'000'000, 2'000'000, 5'000'000, 10'000'000,
    };
    return bounds;
}

Registry::Entry &
Registry::getOrCreate(const MetricKey &key, MetricKind kind,
                      const std::string &help)
{
    auto it = entries.find(key);
    if (it != entries.end()) {
        if (it->second.kind != kind)
            throw std::logic_error(
                "Registry: metric '" + key.name +
                "' re-registered with a different kind");
        return it->second;
    }
    Entry e;
    e.kind = kind;
    e.help = help;
    return entries.emplace(key, std::move(e)).first->second;
}

Counter &
Registry::counter(const std::string &name, const Labels &labels,
                  const std::string &help)
{
    MutexLock lock(mutex);
    Entry &e = getOrCreate({name, labels}, MetricKind::Counter, help);
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
Registry::gauge(const std::string &name, const Labels &labels,
                const std::string &help)
{
    MutexLock lock(mutex);
    Entry &e = getOrCreate({name, labels}, MetricKind::Gauge, help);
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Histogram &
Registry::histogram(const std::string &name,
                    const std::vector<uint64_t> &bounds,
                    const Labels &labels, const std::string &help)
{
    MutexLock lock(mutex);
    Entry &e =
        getOrCreate({name, labels}, MetricKind::Histogram, help);
    if (!e.histogram)
        e.histogram = std::make_unique<Histogram>(bounds);
    return *e.histogram;
}

ShardedCounter &
Registry::sharded(const std::string &name, const Labels &labels,
                  const std::string &help)
{
    MutexLock lock(mutex);
    Entry &e =
        getOrCreate({name, labels}, MetricKind::ShardedCounter, help);
    if (!e.sharded)
        e.sharded = std::make_unique<ShardedCounter>();
    return *e.sharded;
}

const Counter *
Registry::findCounter(const std::string &name,
                      const Labels &labels) const
{
    MutexLock lock(mutex);
    auto it = entries.find({name, labels});
    return it == entries.end() ? nullptr : it->second.counter.get();
}

const Gauge *
Registry::findGauge(const std::string &name, const Labels &labels) const
{
    MutexLock lock(mutex);
    auto it = entries.find({name, labels});
    return it == entries.end() ? nullptr : it->second.gauge.get();
}

const Histogram *
Registry::findHistogram(const std::string &name,
                        const Labels &labels) const
{
    MutexLock lock(mutex);
    auto it = entries.find({name, labels});
    return it == entries.end() ? nullptr : it->second.histogram.get();
}

uint64_t
Registry::counterFamilyTotal(const std::string &name) const
{
    MutexLock lock(mutex);
    uint64_t total = 0;
    // Entries sort by name first, so the family is contiguous.
    for (auto it = entries.lower_bound({name, {}});
         it != entries.end() && it->first.name == name; ++it) {
        if (it->second.counter)
            total += it->second.counter->value();
        else if (it->second.sharded)
            total += it->second.sharded->value();
    }
    return total;
}

void
Registry::resetValues()
{
    MutexLock lock(mutex);
    for (auto &[key, entry] : entries) {
        if (entry.counter)
            entry.counter->reset();
        if (entry.gauge)
            entry.gauge->reset();
        if (entry.histogram)
            entry.histogram->reset();
        if (entry.sharded)
            entry.sharded->reset();
    }
}

void
Registry::forEach(const std::function<void(const MetricKey &,
                                           const Entry &)> &fn) const
{
    MutexLock lock(mutex);
    for (const auto &[key, entry] : entries)
        fn(key, entry);
}

size_t
Registry::size() const
{
    MutexLock lock(mutex);
    return entries.size();
}

} // namespace igcn::obs
