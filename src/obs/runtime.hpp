/**
 * @file
 * Runtime/kernel instrumentation (DESIGN.md section 8): adapts the
 * ThreadPool's PoolObserver hooks onto the obs metrics registry (and
 * optionally a TraceRecorder), giving per-kernel timing for the SpMM
 * dataflows, gathers, and sparse kernels plus per-worker busy time.
 *
 * The runtime layer cannot depend on src/obs/, so the coupling runs
 * the other way: RuntimeProfiler implements igcn::PoolObserver and is
 * installed with setPoolObserver(). Everything here measures wall
 * time on the host — it is diagnostic telemetry, intentionally kept
 * out of the byte-gated replay trace surface (see trace.hpp).
 *
 * Metric families written (all labeled {kernel="..."} from the
 * innermost KernelRegion active at the parallelFor call):
 *
 *   igcn_runtime_kernel_regions_total   parallelFor regions run
 *   igcn_runtime_kernel_wall_us_total   region wall time (caller)
 *   igcn_runtime_kernel_busy_us_total   summed per-chunk busy time
 *   igcn_runtime_worker_busy_us         busy time by worker (sharded)
 */

#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace igcn::obs {

/** Process-wide registry for runtime/kernel metrics; created on
 *  first use. Exported alongside the server registry by
 *  `igcn serve --metrics-out`. */
Registry &runtimeRegistry();

/**
 * PoolObserver recording per-kernel region counts and wall/busy
 * microseconds into a Registry, per-worker busy time into a sharded
 * counter, and (optionally) per-worker busy spans into a
 * TraceRecorder on the worker lanes. onChunk runs concurrently on
 * every worker; all sinks here are thread-safe.
 */
class RuntimeProfiler : public PoolObserver
{
  public:
    explicit RuntimeProfiler(Registry &reg,
                             TraceRecorder *rec = nullptr)
        : reg(reg), rec(rec)
    {}

    void onRegion(const char *label, int chunks, uint64_t start_us,
                  uint64_t end_us) override;
    void onChunk(const char *label, int worker, uint64_t start_us,
                 uint64_t end_us) override;

  private:
    Registry &reg;
    TraceRecorder *rec;
};

/**
 * Install a process-wide RuntimeProfiler over runtimeRegistry() as
 * the pool observer. With a recorder, worker busy spans are also
 * traced (real-time diagnostics; never part of the replay byte
 * gate). Idempotent; disableRuntimeProfiling() detaches.
 */
void enableRuntimeProfiling(TraceRecorder *rec = nullptr);

/** Detach the pool observer installed by enableRuntimeProfiling. */
void disableRuntimeProfiling();

/**
 * Human-readable per-kernel timing table from the registry's
 * igcn_runtime_kernel_* families (regions, wall us, busy us, mean
 * wall per region, busy/wall parallelism). Rows sorted by kernel
 * name; "" when no kernel metrics were recorded.
 */
std::string kernelTimingReport(const Registry &reg);

} // namespace igcn::obs
