#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.hpp"

namespace igcn::obs {

namespace {

void
emitArgs(JsonWriter &w, const TraceEvent &e)
{
    if (e.num.empty() && e.str.empty())
        return;
    w.key("args").beginObject();
    for (const auto &[k, v] : e.num)
        w.key(k).value(v);
    for (const auto &[k, v] : e.str)
        w.key(k).value(v);
    w.endObject();
}

} // namespace

std::string
perfettoJson(const TraceRecorder &rec)
{
    const std::vector<TraceEvent> events = rec.events();

    // Lanes actually used, ascending — metadata order is a function
    // of the (deterministic) event stream, never of the host.
    std::vector<uint32_t> lanes;
    for (const TraceEvent &e : events)
        lanes.push_back(e.tid);
    std::sort(lanes.begin(), lanes.end());
    lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());

    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").beginArray();

    w.beginObject()
        .key("name").value("process_name")
        .key("ph").value("M")
        .key("pid").value(1)
        .key("tid").value(0)
        .key("args").beginObject()
            .key("name").value("igcn-serve")
        .endObject()
    .endObject();
    for (uint32_t tid : lanes) {
        w.beginObject()
            .key("name").value("thread_name")
            .key("ph").value("M")
            .key("pid").value(1)
            .key("tid").value(static_cast<uint64_t>(tid))
            .key("args").beginObject()
                .key("name").value(laneName(tid))
            .endObject()
        .endObject();
    }

    for (const TraceEvent &e : events) {
        w.beginObject();
        w.key("name").value(e.name);
        w.key("cat").value(e.cat.empty() ? "igcn" : e.cat);
        w.key("ph").value(std::string(1, e.ph));
        w.key("ts").value(e.tsUs);
        if (e.ph == 'X')
            w.key("dur").value(e.durUs);
        if (e.ph == 'i')
            w.key("s").value("t"); // thread-scoped instant
        w.key("pid").value(1);
        w.key("tid").value(static_cast<uint64_t>(e.tid));
        emitArgs(w, e);
        w.endObject();
    }

    w.endArray();
    w.endObject();
    return w.str();
}

bool
writePerfettoTrace(const TraceRecorder &rec, const std::string &path)
{
    return writeTextFile(perfettoJson(rec), path);
}

namespace {

/** Label-value escaping per the Prometheus text format. */
std::string
escapeLabelValue(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
    return out;
}

/** `{k1="v1",k2="v2"}` (with `extra` appended), "" when empty. */
std::string
renderLabels(const Labels &labels, const std::string &extra = "")
{
    if (labels.empty() && extra.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ",";
        first = false;
        out += k + "=\"" + escapeLabelValue(v) + "\"";
    }
    if (!extra.empty()) {
        if (!first)
            out += ",";
        out += extra;
    }
    out += "}";
    return out;
}

const char *
typeName(MetricKind kind)
{
    switch (kind) {
    case MetricKind::Counter:
    case MetricKind::ShardedCounter:
        return "counter";
    case MetricKind::Gauge:
        return "gauge";
    case MetricKind::Histogram:
        return "histogram";
    }
    return "untyped";
}

} // namespace

std::string
prometheusText(const Registry &reg)
{
    std::string out;
    std::string last_family;
    reg.forEach([&](const MetricKey &key, const Registry::Entry &e) {
        // HELP/TYPE once per family; entries arrive sorted by name,
        // so a family's members are contiguous.
        if (key.name != last_family) {
            if (!e.help.empty())
                out += "# HELP " + key.name + " " + e.help + "\n";
            out += "# TYPE " + key.name + " " +
                   typeName(e.kind) + "\n";
            last_family = key.name;
        }
        switch (e.kind) {
        case MetricKind::Counter:
            out += key.name + renderLabels(key.labels) + " " +
                   std::to_string(e.counter->value()) + "\n";
            break;
        case MetricKind::ShardedCounter:
            out += key.name + renderLabels(key.labels) + " " +
                   std::to_string(e.sharded->value()) + "\n";
            break;
        case MetricKind::Gauge:
            out += key.name + renderLabels(key.labels) + " " +
                   std::to_string(e.gauge->value()) + "\n";
            break;
        case MetricKind::Histogram: {
            const Histogram &h = *e.histogram;
            uint64_t cum = 0;
            for (size_t i = 0; i < h.upperBounds().size(); ++i) {
                cum += h.bucketCount(i);
                out += key.name + "_bucket" +
                       renderLabels(
                           key.labels,
                           "le=\"" +
                               std::to_string(h.upperBounds()[i]) +
                               "\"") +
                       " " + std::to_string(cum) + "\n";
            }
            out += key.name + "_bucket" +
                   renderLabels(key.labels, "le=\"+Inf\"") + " " +
                   std::to_string(h.count()) + "\n";
            out += key.name + "_sum" + renderLabels(key.labels) +
                   " " + std::to_string(h.sum()) + "\n";
            out += key.name + "_count" + renderLabels(key.labels) +
                   " " + std::to_string(h.count()) + "\n";
            break;
        }
        }
    });
    return out;
}

std::string
prometheusText(const std::vector<const Registry *> &regs)
{
    std::string out;
    for (const Registry *reg : regs)
        if (reg)
            out += prometheusText(*reg);
    return out;
}

bool
writeTextFile(const std::string &text, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const size_t n = std::fwrite(text.data(), 1, text.size(), f);
    return std::fclose(f) == 0 && n == text.size();
}

} // namespace igcn::obs
