/**
 * @file
 * The obs-owned monotonic clock seam (DESIGN.md section 8).
 *
 * Real-time serving needs wall timestamps, but the determinism
 * contract's replay mode must never read one — and the `clock-via-obs`
 * lint rule enforces that `steady_clock::now()` appears in src/serve/
 * only through this seam. RealClock is the single place the serving
 * layer turns wall time into server microseconds: an origin captured
 * at reset() and monotonic microsecond offsets from it. Virtual-clock
 * replay never calls it; every replay timestamp comes from the trace
 * and the service-cost model.
 */

#pragma once

#include <chrono>
#include <cstdint>

namespace igcn::obs {

/** Monotonic microsecond clock with a resettable origin. */
class RealClock
{
  public:
    RealClock() { reset(); }

    /** Re-anchor the origin at the current instant (t = 0). */
    void
    reset()
    {
        origin = std::chrono::steady_clock::now();
    }

    /** Microseconds elapsed since the last reset(). */
    uint64_t
    nowUs() const
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - origin)
                .count());
    }

  private:
    std::chrono::steady_clock::time_point origin;
};

} // namespace igcn::obs
