/**
 * @file
 * Timing model of AWB-GCN (Geng et al., MICRO 2020), the paper's
 * primary accelerator baseline: PUSH-column-wise dataflow with
 * runtime workload rebalancing, 4096 fp32 MACs at 330 MHz on the same
 * FPGA and memory system as I-GCN.
 *
 * AWB-GCN's autotuning resolves the power-law load imbalance almost
 * completely (the paper reports >90% utilization after a few rounds),
 * so the model applies a small residual imbalance factor. What it
 * does NOT fix — the motivation for I-GCN — is data locality: the
 * result matrix is accessed irregularly, and for graphs whose working
 * set exceeds on-chip SRAM the per-channel column spills saturate
 * DRAM bandwidth. No redundancy elimination applies.
 */

#pragma once

#include "accel/config.hpp"
#include "accel/report.hpp"
#include "accel/workload.hpp"

namespace igcn {

/** AWB-GCN-specific knobs. */
struct AwbGcnConfig
{
    /** Residual imbalance after runtime autotuning. */
    double imbalanceFactor = 1.10;
    /** Pipeline efficiency of the SpMM engines. */
    double pipelineEfficiency = 0.55;
};

/** Simulate one AWB-GCN inference. */
RunResult simulateAwbGcn(const DatasetGraph &data,
                         const ModelConfig &model, const HwConfig &hw,
                         const AwbGcnConfig &cfg = {});

} // namespace igcn
