#include "accel/awbgcn_model.hpp"

#include <algorithm>
#include <cmath>

#include "accel/energy.hpp"

namespace igcn {

RunResult
simulateAwbGcn(const DatasetGraph &data, const ModelConfig &model,
               const HwConfig &hw, const AwbGcnConfig &cfg)
{
    Workload wl = buildWorkload(data, model);
    const double sram_bytes = hw.sramMB * 1024.0 * 1024.0;
    const double bytes_per_cycle =
        hw.dram.bandwidthGBps * 1e9 / (hw.clockMHz * 1e6);
    ResidencyPlan res = hw.preloadOnChip
        ? planResidency(wl, sram_bytes)
        : ResidencyPlan{};

    double total_cycles = 0.0;
    double offchip = wl.adjacencyBytes + wl.layers[0].inputBytes;
    double dram_bytes_timed = 0.0;
    uint64_t total_ops = 0;

    for (size_t l = 0; l < wl.layers.size(); ++l) {
        const LayerWork &lw = wl.layers[l];
        // Combination (X*W) and aggregation (A*(XW)) share the same
        // column-wise SpMM engines; ops at MAC-array throughput with
        // the residual imbalance factor. pipelineEfficiency reflects
        // AWB-GCN's measured PE utilization (its own paper reports
        // 50-75% on these graphs even after autotuning).
        const uint64_t ops = lw.totalOpsBase();
        total_ops += ops;
        const double compute_cycles = ops * cfg.imbalanceFactor /
            (hw.numMacs * cfg.pipelineEfficiency);

        // ---- Data movement per layer -------------------------------
        double stream_bytes = 0.0;
        double random_bytes = 0.0;

        // PUSH-column-wise outer loop over output channels. The Xo
        // column buffer holds as many result columns as fit in its
        // SRAM share; the adjacency non-zeros are re-streamed once
        // per resident column group unless A itself is resident.
        const double column_bytes =
            static_cast<double>(wl.numNodes) * 4.0;
        const double xo_buffer = sram_bytes * 0.25;
        const int columns_resident = std::max(
            1, static_cast<int>(xo_buffer / column_bytes));
        const int adj_passes = res.adjacency
            ? 1
            : (lw.outChannels + columns_resident - 1) /
              columns_resident;
        if (!res.adjacency || l == 0) {
            stream_bytes +=
                static_cast<double>(wl.adjacencyBytes) * adj_passes;
        }
        offchip += static_cast<double>(wl.adjacencyBytes) *
            std::max(0, adj_passes - (l == 0 ? 1 : 0));

        // If even one column group cannot stay resident the partial
        // results spill (read+write per column): the locality wall.
        if (columns_resident < 1) {
            random_bytes += 2.0 * column_bytes * lw.outChannels;
            offchip += 2.0 * column_bytes * lw.outChannels;
        }

        // Input features streamed once per layer; outputs written.
        const bool input_resident =
            (l == 0) ? res.features : res.activations;
        if (!input_resident)
            stream_bytes += lw.inputBytes;
        if (l > 0)
            offchip += lw.inputBytes;
        const bool output_resident =
            (l + 1 == wl.layers.size()) || res.activations;
        if (!output_resident)
            stream_bytes += lw.outputBytes;
        offchip += lw.outputBytes + lw.weightBytes;
        if (!res.weights)
            stream_bytes += lw.weightBytes;

        const double dram_cycles = stream_bytes /
                (bytes_per_cycle * hw.dram.streamEfficiency) +
            random_bytes /
                (bytes_per_cycle * hw.dram.randomEfficiency);
        dram_bytes_timed += stream_bytes + random_bytes;
        total_cycles += std::max(compute_cycles, dram_cycles);
    }

    RunResult result;
    result.platform = "AWB-GCN";
    result.dataset = data.info.name;
    result.model = model.name;
    result.latencyUs = hw.cyclesToUs(total_cycles);
    result.offchipBytes = offchip;
    result.computeOps = static_cast<double>(total_ops);
    result.utilization = total_ops /
        (static_cast<double>(hw.numMacs) *
         std::max(1.0, total_cycles));
    fillEnergy(result, hw, static_cast<double>(total_ops), offchip);
    result.stats.set("resident.adjacency", res.adjacency ? 1.0 : 0.0);
    result.stats.set("dram.timedBytes", dram_bytes_timed);
    return result;
}

} // namespace igcn
