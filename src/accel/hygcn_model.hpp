/**
 * @file
 * Timing model of HyGCN (Yan et al., HPCA 2020): a hybrid ASIC with
 * separate aggregation and combination engines — 4608 fixed-point
 * MACs at 1 GHz fed by HBM (Section 4.6's fairness note). HyGCN uses
 * PULL-based aggregation-first processing with window-based sparsity
 * elimination; its weakness (which motivates both AWB-GCN and I-GCN)
 * is that the dense feature matrix is re-fetched many times because
 * pull-order accesses are scattered — hence the HBM requirement.
 */

#pragma once

#include "accel/config.hpp"
#include "accel/report.hpp"
#include "accel/workload.hpp"

namespace igcn {

/** HyGCN-specific configuration (defaults from the HyGCN paper). */
struct HyGcnConfig
{
    int numMacs = 4608;
    double clockMHz = 1000.0;
    double hbmGBps = 256.0;
    /** On-chip buffer dedicated to feature caching (MB). */
    double featureCacheMB = 16.0;
    /** Fraction of redundant fetches removed by window shrinking. */
    double sparsityElimination = 0.35;
    /** Aggregation engine efficiency on scattered rows. */
    double aggregationEfficiency = 0.80;
};

/** Simulate one HyGCN inference (aggregation-first order). */
RunResult simulateHyGcn(const DatasetGraph &data, const ModelConfig &model,
                        const HyGcnConfig &cfg = {});

} // namespace igcn
