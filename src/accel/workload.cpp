#include "accel/workload.hpp"

namespace igcn {

uint64_t
Workload::totalOpsBase() const
{
    uint64_t total = 0;
    for (const LayerWork &l : layers)
        total += l.totalOpsBase();
    return total;
}

uint64_t
Workload::totalOpsOptimized() const
{
    uint64_t total = 0;
    for (const LayerWork &l : layers)
        total += l.totalOpsOptimized();
    return total;
}

double
Workload::aggregationOpShare() const
{
    uint64_t agg = 0;
    for (const LayerWork &l : layers)
        agg += l.aggregationOpsBase;
    uint64_t total = totalOpsBase();
    return total == 0 ? 0.0 : static_cast<double>(agg) / total;
}

ResidencyPlan
planResidency(const Workload &wl, double sram_bytes,
              double budget_fraction)
{
    ResidencyPlan plan;
    double budget = sram_bytes * budget_fraction;

    auto try_claim = [&](uint64_t bytes, bool &flag) {
        if (static_cast<double>(bytes) <= budget) {
            budget -= static_cast<double>(bytes);
            plan.residentBytes += bytes;
            flag = true;
        }
    };

    // Intermediate activations: the largest hidden in/out buffer pair
    // that must ping-pong between layers.
    uint64_t act_bytes = 0;
    for (size_t l = 0; l + 1 < wl.layers.size(); ++l)
        act_bytes = std::max(act_bytes, wl.layers[l].outputBytes);
    uint64_t weight_bytes = 0;
    for (const LayerWork &l : wl.layers)
        weight_bytes += l.weightBytes;

    try_claim(wl.adjacencyBytes, plan.adjacency);
    try_claim(act_bytes, plan.activations);
    try_claim(wl.layers.empty() ? 0 : wl.layers[0].inputBytes,
              plan.features);
    try_claim(weight_bytes, plan.weights);
    return plan;
}

Workload
buildWorkload(const DatasetGraph &data, const ModelConfig &model,
              const IslandizationResult *isl, const RedundancyConfig &cfg,
              bool preagg_in_combination)
{
    Workload w;
    w.info = data.info;
    w.model = model;
    w.numNodes = data.numNodes();
    w.adjacencyNnz = data.numEdges();
    w.adjacencyNnzWithSelf = data.numEdges() + data.numNodes();
    // CSR: 8-byte row pointers + 4-byte column ids.
    w.adjacencyBytes = (data.numNodes() + 1) * 8 + data.numEdges() * 4;

    // Aggregation structure is layer-independent: count the per-edge
    // accumulations once and scale by each layer's channel width.
    uint64_t agg_units_base = w.adjacencyNnzWithSelf;
    uint64_t agg_units_opt = agg_units_base;
    uint64_t preagg_units = 0;
    if (isl) {
        PruningReport report = countPruning(data.graph, *isl, cfg);
        preagg_units = report.islandOps.preaggOps;
        agg_units_opt = report.optimizedAggOps() -
            (preagg_in_combination ? 0 : 0); // window + inter-hub + self
        if (preagg_in_combination)
            agg_units_opt -= preagg_units;
    }

    const bool first_layer_sparse = data.info.featureDensity < 0.5;
    for (size_t l = 0; l < model.layers.size(); ++l) {
        const LayerDims &dims = model.layers[l];
        LayerWork lw;
        lw.inChannels = dims.inChannels;
        lw.outChannels = dims.outChannels;

        if (l == 0) {
            lw.inputNnz = first_layer_sparse
                ? data.featureNnz
                : static_cast<uint64_t>(w.numNodes) * dims.inChannels;
            // Sparse CSR: 4-byte col id + 4-byte value per nnz, plus
            // row pointers; dense: 4 bytes per element.
            lw.inputBytes = first_layer_sparse
                ? lw.inputNnz * 8 + (w.numNodes + 1) * 8
                : lw.inputNnz * 4;
        } else {
            // Hidden activations are dense.
            lw.inputNnz = static_cast<uint64_t>(w.numNodes) *
                dims.inChannels;
            lw.inputBytes = lw.inputNnz * 4;
        }

        lw.combinationMacs = lw.inputNnz * dims.outChannels;
        lw.aggregationOpsBase = agg_units_base * dims.outChannels;
        lw.aggregationOpsOptimized = agg_units_opt * dims.outChannels;
        if (preagg_in_combination)
            lw.combinationMacs += preagg_units * dims.outChannels;
        lw.weightBytes = static_cast<uint64_t>(dims.inChannels) *
            dims.outChannels * 4;
        lw.outputBytes = static_cast<uint64_t>(w.numNodes) *
            dims.outChannels * 4;
        w.layers.push_back(lw);
    }
    return w;
}

} // namespace igcn
