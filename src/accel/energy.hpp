/**
 * @file
 * Energy model producing Table 2's Energy Efficiency (Graph/kJ).
 *
 * Per-inference energy is static power times latency plus dynamic
 * per-op and per-byte components. The constants are representative
 * 14 nm FPGA figures (MAC energy from DSP datapoints, DRAM energy
 * per byte from DDR4 studies); absolute EE therefore tracks the
 * paper's order of magnitude while ratios between platforms follow
 * from the latency/traffic differences the simulator measures.
 */

#pragma once

#include "accel/config.hpp"
#include "accel/report.hpp"

namespace igcn {

/** Energy model constants. */
struct EnergyConfig
{
    /** Static + clocking power of the FPGA fabric, watts. */
    double staticWatts = 9.0;
    /** Energy per fp32 MAC, picojoules. */
    double macPJ = 4.5;
    /** On-chip SRAM energy per byte touched, picojoules. */
    double sramPJPerByte = 0.6;
    /** Off-chip DRAM energy per byte, picojoules. */
    double dramPJPerByte = 42.0;
};

/**
 * Fill result.energyUJ and result.graphsPerKJ from ops/traffic and
 * the already-computed latency.
 */
void fillEnergy(RunResult &result, const HwConfig &hw, double ops,
                double dram_bytes, const EnergyConfig &cfg = {});

} // namespace igcn
