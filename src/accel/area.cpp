#include "accel/area.hpp"

namespace igcn {

double
AreaBreakdown::totalAlms() const
{
    double total = 0.0;
    for (const AreaEntry &e : entries)
        total += e.alms;
    return total;
}

double
AreaBreakdown::groupAlms(const std::string &group) const
{
    double total = 0.0;
    for (const AreaEntry &e : entries)
        if (e.group == group)
            total += e.alms;
    return total;
}

double
AreaBreakdown::groupShare(const std::string &group) const
{
    double total = totalAlms();
    return total > 0.0 ? groupAlms(group) / total : 0.0;
}

AreaBreakdown
areaBreakdown(const HwConfig &hw)
{
    // Per-instance ALM costs (DSPs and M20Ks normalized to ALMs).
    constexpr double kAlmsPerMac = 95.0;        // fp32 MAC, DSP-mapped
    constexpr double kAlmsPerBfsEngine = 3100.0;// FSM + LVT + counters
    constexpr double kAlmsPerDegreeFifo = 520.0;// loop-back FIFO lane
    constexpr double kAlmsPerIslandFilter = 340.0;
    constexpr double kAlmsTaskGenerator = 14000.0;
    constexpr double kAlmsIntTables = 30000.0;  // PR-INT + CR-INT
    constexpr double kAlmsTaskQueues = 180.0;   // per BFS engine queue
    constexpr double kAlmsHubLocatorCtl = 9000.0;
    constexpr double kAlmsPerPeControl = 5200.0;
    constexpr double kAlmsPerDhubBank = 3400.0; // partial-result cache
    constexpr double kAlmsPerRingSwitch = 2100.0;
    constexpr double kAlmsIslandCollector = 21000.0;
    constexpr double kAlmsHubXwCache = 16000.0;
    constexpr double kAlmsWeightBuffers = 600.0; // per PE
    constexpr double kAlmsScanWindows = 1400.0;  // per PE CASE/sched

    AreaBreakdown bd;
    const int p1 = hw.locator.p1;
    const int p2 = hw.locator.p2;

    // --- Island Locator -------------------------------------------
    bd.entries.push_back({"Node Degree Buffers (P1 FIFOs)", "Locator",
                          kAlmsPerDegreeFifo * p1});
    bd.entries.push_back({"Island Node Filters + Comparators", "Locator",
                          kAlmsPerIslandFilter * p1});
    bd.entries.push_back({"Hub Locator Control", "Locator",
                          kAlmsHubLocatorCtl});
    bd.entries.push_back({"TP-BFS Task Generator", "Locator",
                          kAlmsTaskGenerator});
    bd.entries.push_back({"TP-BFS Task Queues", "Locator",
                          kAlmsTaskQueues * p2});
    bd.entries.push_back({"TP-BFS Engines", "Locator",
                          kAlmsPerBfsEngine * p2});
    bd.entries.push_back({"Island Node Tables (PR/CR-INT)", "Locator",
                          kAlmsIntTables});

    // --- Island Consumer ------------------------------------------
    bd.entries.push_back({"MAC Arrays", "Consumer",
                          kAlmsPerMac * hw.numMacs});
    bd.entries.push_back({"PE Control (CASE/Scheduler)", "Consumer",
                          (kAlmsPerPeControl + kAlmsScanWindows +
                           kAlmsWeightBuffers) * hw.numPes});
    bd.entries.push_back({"DHUB Partial Result Cache", "Consumer",
                          kAlmsPerDhubBank * hw.numPes});
    bd.entries.push_back({"Ring Network", "Consumer",
                          kAlmsPerRingSwitch * hw.numPes});
    bd.entries.push_back({"Island Collector", "Consumer",
                          kAlmsIslandCollector});
    bd.entries.push_back({"HUB Matrix XW Cache", "Consumer",
                          kAlmsHubXwCache});
    return bd;
}

} // namespace igcn
