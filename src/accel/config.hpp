/**
 * @file
 * Hardware configuration of the modeled accelerators.
 *
 * Defaults follow the paper's evaluation setup (Section 4.6,
 * "Fairness of evaluation"): 4096 single-precision MACs at 330 MHz on
 * a Stratix 10 SX-class device, the same budget as AWB-GCN, with 64
 * TP-BFS engines (Section 4.4's breakdown configuration).
 */

#pragma once

#include "core/locator.hpp"
#include "core/redundancy.hpp"
#include "sim/dram.hpp"

namespace igcn {

/** Common hardware parameters of the modeled FPGA accelerators. */
struct HwConfig
{
    /** Total MAC units (shared by combination and aggregation). */
    int numMacs = 4096;
    /** Core clock in MHz. */
    double clockMHz = 330.0;
    /** Island Consumer processing elements; each owns numMacs/numPes
     *  MAC lanes, one DHUB-PRC bank, and one ring-network port. */
    int numPes = 16;
    /** On-chip SRAM budget in MiB (feature/partial-result buffers). */
    double sramMB = 32.0;
    /** Off-chip memory model. */
    DramConfig dram{};
    /** Island Locator parameters (P1/P2 live here). */
    LocatorConfig locator{};
    /** Redundancy-removal configuration of the Island Consumer. */
    RedundancyConfig redundancy{};
    /**
     * If true (paper's latency setup), operand matrices that fit in
     * SRAM are preloaded and only capacity misses go off-chip; the
     * off-chip *accounting* of Figure 14(A) instead assumes
     * everything starts off-chip, which the traffic model reports
     * separately.
     */
    bool preloadOnChip = true;
    /** Enable the ring network's in-network reduction of hub updates. */
    bool ringReduction = true;

    /** MAC lanes per PE. */
    int macsPerPe() const { return numMacs / numPes; }

    /** Convert cycles to microseconds at the configured clock. */
    double
    cyclesToUs(double cycles) const
    {
        return cycles / clockMHz; // cycles / (MHz) == us
    }
};

} // namespace igcn
