/**
 * @file
 * CPU, GPU and SIGMA baselines for the cross-platform comparison
 * (Figure 14(B)).
 *
 * CPU: the SpMM kernel throughput is *measured* on the host by timing
 * our own PULL-row-wise kernel, then scaled by a framework-overhead
 * factor representing PyG/DGL dispatch (constants documented in
 * DESIGN.md; real frameworks spend most of the time outside the
 * kernel on graphs this small).
 *
 * GPU and SIGMA: roofline models — latency is the max of the compute
 * roof (peak FLOPs x sparse-workload utilization) and the bandwidth
 * roof, plus fixed per-kernel launch overhead, which dominates on the
 * small citation graphs and is why GPUs trail accelerators by 2-3
 * orders of magnitude there.
 */

#pragma once

#include "accel/report.hpp"
#include "accel/workload.hpp"

namespace igcn {

/** Frameworks whose overhead profile we emulate. */
enum class Framework { PyG, DGL };

/** CPU device descriptions used in the paper. */
struct CpuConfig
{
    std::string name = "E5-2680-V3";
    /** Framework dispatch overhead multiplier over raw kernel time. */
    double frameworkOverhead = 6.0;
    /** Fixed per-layer framework latency in microseconds. */
    double perLayerOverheadUs = 250.0;
};

/** GPU roofline description. */
struct GpuConfig
{
    std::string name = "V100";
    double peakTFlops = 15.7;
    double memoryGBps = 900.0;
    /** Achieved fraction of peak on irregular SpMM. */
    double spmmUtilization = 0.03;
    /** Achieved fraction of peak on dense GEMM. */
    double gemmUtilization = 0.45;
    /** Kernel launch + framework dispatch per kernel, microseconds. */
    double launchOverheadUs = 40.0;
    /** Kernels per GraphCONV layer (SpMM, GEMM, bias, activation...). */
    int kernelsPerLayer = 6;
};

/** SIGMA-like SpMM accelerator roofline (Qin et al., HPCA 2020). */
struct SigmaConfig
{
    std::string name = "SIGMA";
    int numMacs = 16384;
    double clockMHz = 500.0;
    double memoryGBps = 400.0;
    /** Utilization on GNN-style sparse x dense chains: SIGMA's
     *  bitmap distribution network targets DNN-training sparsity
     *  (50-90%); at graph sparsity (<0.1% dense) its flexible
     *  interconnect cannot keep the Flex-DPE array fed. */
    double utilization = 0.06;
};

/**
 * Measured throughput (MAC/s) of the host CPU on a representative
 * SpMM; memoized after the first call.
 */
double hostSpmmMacsPerSecond();

/** CPU baseline (PyG/DGL style) latency from measured host FLOPs. */
RunResult simulateCpu(const DatasetGraph &data, const ModelConfig &model,
                      Framework fw, const CpuConfig &cfg = {});

/** GPU roofline baseline. */
RunResult simulateGpu(const DatasetGraph &data, const ModelConfig &model,
                      Framework fw, const GpuConfig &cfg = {});

/** SIGMA roofline baseline. */
RunResult simulateSigma(const DatasetGraph &data,
                        const ModelConfig &model,
                        const SigmaConfig &cfg = {});

/** Preset for the RTX8000 used alongside the V100 in the paper. */
GpuConfig rtx8000Config();

/** Preset for the second CPU (E5-2683-V3, DGL). */
CpuConfig e52683Config();

} // namespace igcn
