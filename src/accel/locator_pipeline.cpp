#include "accel/locator_pipeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace igcn {

LocatorPipelineStats
simulateLocatorPipeline(const IslandizationResult &isl,
                        const LocatorConfig &cfg)
{
    if (isl.taskTrace.empty() && !isl.islands.empty())
        throw std::invalid_argument(
            "locator pipeline needs a task trace: run islandize() "
            "with cfg.recordTrace = true");

    LocatorPipelineStats stats;
    const int p1 = std::max(1, cfg.p1);
    const int p2 = std::max(1, cfg.p2);
    const int scan_width = std::max(1, cfg.bfsScanWidth);
    constexpr Cycles kRoundBarrier = 16;
    constexpr Cycles kAdjFetchLatency = 30;
    constexpr Cycles kTaskDispatch = 1;

    // Partition the trace by round.
    size_t trace_pos = 0;
    double occupancy_sum = 0.0;

    for (size_t r = 0; r < isl.rounds.size(); ++r) {
        const RoundInfo &info = isl.rounds[r];
        RoundPipelineStats round_stats;

        // --- Hub detection: P1 FIFO lanes sweep N, one node per
        // lane-cycle through the Island Filter + comparator. Hubs pop
        // into the hub buffer spread uniformly across the sweep.
        round_stats.detectCycles =
            static_cast<Cycles>(info.nodesChecked / p1) + 1;

        // --- Task generation + TP-BFS engines --------------------
        // The Task Generator pops hubs as they are detected, fetches
        // each hub's adjacency list (fixed latency, then streams
        // tuples at scan_width per cycle) into the shared task queue.
        // Engines pop tasks and scan at scan_width entries/cycle.
        std::vector<Cycles> engine_free(p2, 0);
        double gen_time = 0.0;      // task generator virtual time
        Cycles round_end = round_stats.detectCycles;
        Cycles busy_cycles = 0;
        size_t queue_depth = 0;

        uint64_t hubs_seen = 0;
        while (trace_pos < isl.taskTrace.size() &&
               isl.taskTrace[trace_pos].round ==
                   static_cast<uint16_t>(r + 1)) {
            const TaskTrace &t = isl.taskTrace[trace_pos++];

            // The task's hub was detected at a sweep-proportional
            // time; generation cannot start before that.
            const Cycles hub_detected = info.hubsDetected
                ? round_stats.detectCycles * (hubs_seen + 1) /
                      (info.hubsDetected + 1)
                : 0;
            hubs_seen = std::min<uint64_t>(
                hubs_seen + 1, info.hubsDetected);
            // Tuple emission: the generator streams each hub's
            // adjacency list at scan_width ids per cycle, so the
            // amortized per-task cost is 1/scan_width cycles (plus
            // the fetch latency before a hub's first tuple).
            gen_time = std::max(
                gen_time,
                static_cast<double>(hub_detected + kAdjFetchLatency));
            gen_time += 1.0 / scan_width;
            const auto gen_ready = static_cast<Cycles>(gen_time) +
                kTaskDispatch;

            // Dispatch to the earliest-free engine.
            auto it =
                std::min_element(engine_free.begin(),
                                 engine_free.end());
            const Cycles start = std::max(*it, gen_ready);
            queue_depth = std::max<size_t>(
                queue_depth,
                static_cast<size_t>(
                    std::count_if(engine_free.begin(),
                                  engine_free.end(),
                                  [&](Cycles c) {
                                      return c > gen_ready;
                                  })));
            // Adjacency for the BFS frontier is prefetched while the
            // engine scans the previous list, so the fetch latency is
            // hidden except for the first access.
            const Cycles scan_cycles =
                t.edgesScanned / scan_width + 1;
            *it = start + scan_cycles;
            busy_cycles += scan_cycles;
            round_end = std::max(round_end, *it);
        }

        round_stats.bfsCycles =
            round_end > round_stats.detectCycles
                ? round_end - round_stats.detectCycles
                : 0;
        round_stats.totalCycles = round_end + kRoundBarrier;
        round_stats.engineOccupancy = round_end
            ? static_cast<double>(busy_cycles) /
                  (static_cast<double>(round_end) * p2)
            : 0.0;
        occupancy_sum += round_stats.engineOccupancy;

        stats.taskQueueHighWater =
            std::max(stats.taskQueueHighWater, queue_depth);
        stats.hubBufferHighWater = std::max<size_t>(
            stats.hubBufferHighWater, info.hubsDetected);
        stats.totalCycles += round_stats.totalCycles;
        stats.rounds.push_back(round_stats);
    }

    stats.avgEngineOccupancy = stats.rounds.empty()
        ? 0.0
        : occupancy_sum / stats.rounds.size();
    return stats;
}

} // namespace igcn
