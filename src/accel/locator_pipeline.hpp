/**
 * @file
 * Cycle-level model of the Island Locator pipeline (Figure 6).
 *
 * Where the analytic timeline in igcn_model.cpp treats each round as
 * max(detect, bfs) cycles, this model replays a recorded task trace
 * through the actual microarchitecture: P1 node-degree FIFO lanes
 * feeding the Island Filters and comparators, the hub buffer, the
 * TP-BFS Task Generator streaming adjacency lists into bounded task
 * queues, and P2 TP-BFS engine FSMs consuming scan bursts. It
 * reports per-round cycles, queue high-water marks and engine
 * occupancy — and validates the analytic model (the test suite
 * checks the two agree within a small factor).
 */

#pragma once

#include "core/locator.hpp"
#include "sim/engine.hpp"

namespace igcn {

/** Per-round cycle/occupancy record. */
struct RoundPipelineStats
{
    Cycles detectCycles = 0;  ///< hub-detection sweep
    Cycles bfsCycles = 0;     ///< TP-BFS drain after sweep start
    Cycles totalCycles = 0;   ///< round duration incl. barrier
    double engineOccupancy = 0.0; ///< busy fraction of P2 engines
};

/** Whole-run pipeline statistics. */
struct LocatorPipelineStats
{
    Cycles totalCycles = 0;
    std::vector<RoundPipelineStats> rounds;
    size_t hubBufferHighWater = 0;
    size_t taskQueueHighWater = 0;
    double avgEngineOccupancy = 0.0;
};

/**
 * Replay an islandization (run with cfg.recordTrace = true) through
 * the pipeline model.
 *
 * @throws std::invalid_argument if the trace is missing.
 */
LocatorPipelineStats
simulateLocatorPipeline(const IslandizationResult &isl,
                        const LocatorConfig &cfg);

} // namespace igcn
