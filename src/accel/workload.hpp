/**
 * @file
 * Architecture-independent op and traffic accounting for a GCN
 * inference: how many MACs each phase of each layer performs and how
 * many bytes each matrix occupies. All platform models (I-GCN,
 * AWB-GCN, HyGCN, CPU, GPU, SIGMA) derive their timing from this one
 * accounting, which keeps the cross-platform comparison (Figure 14)
 * internally consistent.
 */

#pragma once

#include "core/island.hpp"
#include "core/redundancy.hpp"
#include "gcn/models.hpp"
#include "graph/datasets.hpp"

namespace igcn {

/** Per-layer operation and size accounting. */
struct LayerWork
{
    int inChannels = 0;
    int outChannels = 0;
    /** Non-zeros of this layer's input feature matrix. */
    uint64_t inputNnz = 0;
    /** MACs of the combination phase (X * W), exploiting sparse X. */
    uint64_t combinationMacs = 0;
    /** Aggregation vector-accumulations * channels, no pruning. */
    uint64_t aggregationOpsBase = 0;
    /** Same with I-GCN redundancy removal (islands required). */
    uint64_t aggregationOpsOptimized = 0;
    /** Input feature bytes (CSR for sparse layer-0, dense after). */
    uint64_t inputBytes = 0;
    /** Weight bytes. */
    uint64_t weightBytes = 0;
    /** Output feature bytes (always dense). */
    uint64_t outputBytes = 0;

    uint64_t
    totalOpsBase() const
    {
        return combinationMacs + aggregationOpsBase;
    }

    uint64_t
    totalOpsOptimized() const
    {
        return combinationMacs + aggregationOpsOptimized;
    }
};

/** Whole-inference accounting for one (dataset, model) pair. */
struct Workload
{
    DatasetInfo info;
    ModelConfig model;
    std::vector<LayerWork> layers;
    /** CSR adjacency bytes (row pointers + column indices). */
    uint64_t adjacencyBytes = 0;
    /** nnz(A) of the graph (directed edge count). */
    uint64_t adjacencyNnz = 0;
    /** nnz(A_hat) = nnz(A) + N, the self-loop-augmented count. */
    uint64_t adjacencyNnzWithSelf = 0;
    NodeId numNodes = 0;

    uint64_t totalOpsBase() const;
    uint64_t totalOpsOptimized() const;
    /** Fraction of baseline ops in the aggregation phase (~23% in
     *  the paper's combination-first accounting). */
    double aggregationOpShare() const;
};

/**
 * SRAM residency plan: which operand classes stay on chip for the
 * whole inference. Greedy allocation in benefit order — adjacency
 * (touched by locator and consumer), intermediate activations (the
 * layer ping-pong buffers), input features, weights — within a
 * budget fraction of the configured SRAM. Non-resident operands are
 * streamed from DRAM by the timing models.
 */
struct ResidencyPlan
{
    bool adjacency = false;
    bool activations = false;
    bool features = false;
    bool weights = false;
    uint64_t residentBytes = 0;
};

/** Compute the residency plan for a workload and SRAM budget. */
ResidencyPlan planResidency(const Workload &wl, double sram_bytes,
                            double budget_fraction = 0.75);

/**
 * Build the workload accounting.
 *
 * @param isl  optional islandization; when present, the optimized
 *             aggregation op counts (redundancy removal) are filled
 *             from the per-island window accounting, otherwise they
 *             equal the baseline.
 * @param preagg_in_combination if true (paper's accounting), the
 *             pre-aggregation sums are charged to the combination
 *             phase where the pipelined hardware computes them; if
 *             false they are charged to aggregation.
 */
Workload buildWorkload(const DatasetGraph &data, const ModelConfig &model,
                       const IslandizationResult *isl = nullptr,
                       const RedundancyConfig &cfg = {},
                       bool preagg_in_combination = true);

} // namespace igcn
