/**
 * @file
 * ALM-normalized area model for the hardware consumption breakdown
 * (Figure 11). Each microarchitectural component of Figure 3(B) has a
 * per-instance cost in Adaptive Logic Modules; DSP-mapped MAC units
 * and M20K-mapped memories are normalized to ALM equivalents, as the
 * paper does for its breakdown. The component constants are
 * representative Stratix-10 synthesis figures chosen so the default
 * configuration (4K MACs, 64 TP-BFS engines) lands at the paper's
 * 34% Locator / 66% Consumer split; the *scaling* with the
 * configuration knobs is what the model is for.
 */

#pragma once

#include <string>
#include <vector>

#include "accel/config.hpp"

namespace igcn {

/** One line of the area breakdown. */
struct AreaEntry
{
    std::string component;
    /** "Locator" or "Consumer". */
    std::string group;
    double alms = 0.0;
};

/** Full area breakdown for a hardware configuration. */
struct AreaBreakdown
{
    std::vector<AreaEntry> entries;

    double totalAlms() const;
    double groupAlms(const std::string &group) const;
    /** Fraction of total area in a group. */
    double groupShare(const std::string &group) const;
};

/** Compute the breakdown for a configuration. */
AreaBreakdown areaBreakdown(const HwConfig &hw);

} // namespace igcn
