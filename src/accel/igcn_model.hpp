/**
 * @file
 * Event-driven timing model of the I-GCN accelerator.
 *
 * The model reproduces the architecture of Section 3 at transaction
 * granularity:
 *
 *  - The Island Locator executes by rounds; within a round, hub
 *    detection sweeps the node-degree FIFOs at P1 nodes/cycle and the
 *    P2 TP-BFS engines scan one adjacency entry per engine-cycle.
 *    Islands are emitted into the Island Collector as they are
 *    discovered — the Consumer starts before islandization finishes
 *    (the fine-grained pipelining of Section 3.1.1).
 *  - The Island Consumer's PEs each own numMacs/numPes MAC lanes.
 *    An island task fetches its node features (hub features are
 *    combined once per layer and cached in the HUB Matrix XW cache),
 *    performs combination + pre-aggregation + windowed aggregation,
 *    and writes island outputs back; hub partials go to the DHUB-PRC
 *    banks over the ring network (in-network reduction halves the
 *    update traffic; disable via HwConfig::ringReduction for the
 *    ablation).
 *  - Inter-hub connections are evaluated as push-outer-product chunk
 *    tasks once the hub XW cache for the layer is ready.
 *  - DRAM is a shared bandwidth-accounted channel (sim/dram.hpp).
 */

#pragma once

#include "accel/config.hpp"
#include "accel/report.hpp"
#include "accel/workload.hpp"
#include "core/locator.hpp"

namespace igcn {

/**
 * Simulate one I-GCN inference.
 *
 * @param data  dataset (graph + feature statistics)
 * @param model GNN model configuration
 * @param hw    hardware configuration
 * @param isl   optional precomputed islandization (it is part of the
 *              simulated runtime either way; passing it only avoids
 *              recomputing the structure host-side)
 */
RunResult simulateIgcn(const DatasetGraph &data, const ModelConfig &model,
                       const HwConfig &hw,
                       const IslandizationResult *isl = nullptr);

} // namespace igcn
