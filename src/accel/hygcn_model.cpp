#include "accel/hygcn_model.hpp"

#include <algorithm>
#include <cmath>

#include "accel/energy.hpp"

namespace igcn {

RunResult
simulateHyGcn(const DatasetGraph &data, const ModelConfig &model,
              const HyGcnConfig &cfg)
{
    Workload wl = buildWorkload(data, model);
    const double bytes_per_cycle =
        cfg.hbmGBps * 1e9 / (cfg.clockMHz * 1e6);

    double total_cycles = 0.0;
    double offchip = wl.adjacencyBytes;
    uint64_t total_ops = 0;

    // HyGCN computes aggregation first: A * X, then (A X) * W. For
    // feature-rich layers this multiplies the aggregation work by
    // inChannels instead of outChannels — the reason combination-first
    // designs (AWB-GCN, I-GCN) need fewer operations (Section 2.2.1).
    // HyGCN treats the feature matrix as dense (its window-based
    // sparsity elimination targets A's sparsity, not X's): on NELL's
    // 61278-wide nearly-empty features this is catastrophic — the
    // very observation that motivated AWB-GCN's sparse-aware design.
    // The elimination factor removes the fraction of wasted edge work
    // the shrinking windows recover.
    for (size_t l = 0; l < wl.layers.size(); ++l) {
        const LayerWork &lw = wl.layers[l];
        const auto agg_ops = static_cast<uint64_t>(
            static_cast<double>(wl.adjacencyNnzWithSelf) *
            lw.inChannels * (1.0 - cfg.sparsityElimination));
        const auto comb_ops = static_cast<uint64_t>(
            static_cast<double>(wl.numNodes) * lw.inChannels *
            lw.outChannels);
        total_ops += agg_ops + comb_ops;

        // HyGCN has no runtime workload rebalancing (AWB-GCN's whole
        // contribution): power-law degree skew stalls the SIMD groups
        // assigned to heavy rows while light rows drain. The penalty
        // grows with max/mean degree up to the group count.
        const double skew_penalty = std::clamp(
            static_cast<double>(data.graph.maxDegree()) /
                (std::max(1.0, data.graph.avgDegree()) * 64.0),
            1.0, 12.0);
        const double agg_cycles = agg_ops * skew_penalty /
            (cfg.numMacs * cfg.aggregationEfficiency);
        const double comb_cycles =
            static_cast<double>(comb_ops) / cfg.numMacs;

        // Pull-order feature fetches: every non-zero pulls a feature
        // row; rows hit on chip with probability cache_rows / N.
        const double row_bytes = lw.inChannels * 4.0;
        const double cache_rows =
            cfg.featureCacheMB * 1024.0 * 1024.0 / row_bytes;
        const double miss_rate = std::max(
            0.0, 1.0 - cache_rows / static_cast<double>(wl.numNodes));
        double feature_bytes = static_cast<double>(
            wl.adjacencyNnzWithSelf) * row_bytes * miss_rate *
            (1.0 - cfg.sparsityElimination);
        // Compulsory traffic: features in (HyGCN stores X densely),
        // adjacency in, outputs out.
        const double dense_input_bytes =
            static_cast<double>(wl.numNodes) * lw.inChannels * 4.0;
        feature_bytes += dense_input_bytes + lw.outputBytes;
        offchip += feature_bytes + lw.weightBytes;

        const double dram_cycles =
            feature_bytes / (bytes_per_cycle * 0.75);
        // Aggregation and combination engines are pipelined in HyGCN;
        // the layer takes the slower of compute and memory.
        total_cycles +=
            std::max(agg_cycles + comb_cycles, dram_cycles);
    }

    RunResult result;
    result.platform = "HyGCN";
    result.dataset = data.info.name;
    result.model = model.name;
    result.latencyUs = total_cycles / cfg.clockMHz;
    result.offchipBytes = offchip;
    result.computeOps = static_cast<double>(total_ops);
    result.utilization = total_ops /
        (static_cast<double>(cfg.numMacs) *
         std::max(1.0, total_cycles));
    // HyGCN is an ASIC with HBM: lower static power, costlier DRAM
    // traffic volume.
    HwConfig hw_for_energy;
    hw_for_energy.numMacs = cfg.numMacs;
    hw_for_energy.clockMHz = cfg.clockMHz;
    EnergyConfig e;
    e.staticWatts = 6.0;
    fillEnergy(result, hw_for_energy, static_cast<double>(total_ops),
               offchip, e);
    return result;
}

} // namespace igcn
