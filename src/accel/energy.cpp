#include "accel/energy.hpp"

namespace igcn {

void
fillEnergy(RunResult &result, const HwConfig & /*hw*/, double ops,
           double dram_bytes, const EnergyConfig &cfg)
{
    const double latency_s = result.latencyUs * 1e-6;
    // Every op reads two operands and writes one result on chip;
    // 12 bytes of SRAM movement per op is the standard estimate.
    const double sram_bytes = ops * 12.0;
    const double dynamic_j = ops * cfg.macPJ * 1e-12 +
        sram_bytes * cfg.sramPJPerByte * 1e-12 +
        dram_bytes * cfg.dramPJPerByte * 1e-12;
    const double static_j = cfg.staticWatts * latency_s;
    const double total_j = dynamic_j + static_j;
    result.energyUJ = total_j * 1e6;
    result.graphsPerKJ = total_j > 0.0 ? 1.0 / (total_j / 1e3) : 0.0;
}

} // namespace igcn
