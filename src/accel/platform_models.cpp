#include "accel/platform_models.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "graph/generators.hpp"
#include "spmm/spmm.hpp"

namespace igcn {

double
hostSpmmMacsPerSecond()
{
    static const double memoized = [] {
        // Time our PULL-row-wise kernel on a mid-size sparse matrix.
        CsrGraph g = erdosRenyi(20000, 16.0, 0xBEEF);
        CsrMatrix a = CsrMatrix::fromGraph(g);
        Rng rng(1);
        DenseMatrix b(g.numNodes(), 32);
        b.fillRandom(rng);
        SpmmCounters counters;
        // Warm-up run, then timed run.
        spmmPullRowWise(a, b, nullptr);
        auto t0 = std::chrono::steady_clock::now();
        spmmPullRowWise(a, b, &counters);
        auto t1 = std::chrono::steady_clock::now();
        double seconds =
            std::chrono::duration<double>(t1 - t0).count();
        return static_cast<double>(counters.macOps) /
            std::max(seconds, 1e-9);
    }();
    return memoized;
}

RunResult
simulateCpu(const DatasetGraph &data, const ModelConfig &model,
            Framework fw, const CpuConfig &cfg)
{
    Workload wl = buildWorkload(data, model);
    const double macs_per_s = hostSpmmMacsPerSecond();
    double kernel_us =
        static_cast<double>(wl.totalOpsBase()) / macs_per_s * 1e6;
    // DGL fuses more aggressively than PyG's gather-scatter.
    const double overhead =
        fw == Framework::PyG ? cfg.frameworkOverhead
                             : cfg.frameworkOverhead * 0.55;
    double latency = kernel_us * overhead +
        cfg.perLayerOverheadUs * model.numLayers();

    RunResult result;
    result.platform = std::string(fw == Framework::PyG ? "PyG-" : "DGL-")
        + cfg.name;
    result.dataset = data.info.name;
    result.model = model.name;
    result.latencyUs = latency;
    result.computeOps = static_cast<double>(wl.totalOpsBase());
    // Matrix traffic flows through the cache hierarchy; charge the
    // matrix footprint per layer plus the gather-scatter row traffic
    // of the framework SpMM (CPU LLCs are far smaller than the
    // working sets of the large graphs).
    double bytes = wl.adjacencyBytes * static_cast<double>(
        model.numLayers());
    for (const LayerWork &l : wl.layers) {
        bytes += l.inputBytes * 2.0 + l.outputBytes;
        bytes += static_cast<double>(wl.adjacencyNnzWithSelf) *
            l.outChannels * 8.0;
    }
    result.offchipBytes = bytes;
    // 120 W server-class CPU package power.
    const double watts = 120.0;
    result.energyUJ = watts * latency;
    result.graphsPerKJ = 1.0 / (watts * latency * 1e-6 / 1e3);
    return result;
}

RunResult
simulateGpu(const DatasetGraph &data, const ModelConfig &model,
            Framework fw, const GpuConfig &cfg)
{
    Workload wl = buildWorkload(data, model);
    double latency = 0.0;
    double bytes_total = 0.0;
    for (const LayerWork &lw : wl.layers) {
        // Combination: dense/semi-dense GEMM; aggregation: SpMM.
        const double comb_s = lw.combinationMacs /
            (cfg.peakTFlops * 1e12 * cfg.gemmUtilization);
        const double agg_s = lw.aggregationOpsBase /
            (cfg.peakTFlops * 1e12 * cfg.spmmUtilization);
        // Framework SpMM is gather-scatter: every non-zero reads and
        // writes a full feature row from HBM (this, not FLOPs, is why
        // GPU GCN inference trails accelerators by orders of
        // magnitude on large graphs).
        const double gather_factor =
            fw == Framework::PyG ? 3.0 : 1.5;
        const double gather_bytes =
            static_cast<double>(wl.adjacencyNnzWithSelf) *
            lw.outChannels * 8.0 * gather_factor;
        const double bytes = lw.inputBytes + lw.outputBytes +
            static_cast<double>(wl.adjacencyBytes) + gather_bytes;
        const double mem_s = bytes / (cfg.memoryGBps * 1e9);
        bytes_total += bytes;
        latency += std::max(comb_s + agg_s, mem_s) * 1e6;
        latency += cfg.launchOverheadUs * cfg.kernelsPerLayer *
            (fw == Framework::PyG ? 1.0 : 1.15);
    }

    RunResult result;
    result.platform = std::string(fw == Framework::PyG ? "PyG-" : "DGL-")
        + cfg.name;
    result.dataset = data.info.name;
    result.model = model.name;
    result.latencyUs = latency;
    result.computeOps = static_cast<double>(wl.totalOpsBase());
    result.offchipBytes = bytes_total;
    const double watts = 250.0;
    result.energyUJ = watts * latency;
    result.graphsPerKJ = 1.0 / (watts * latency * 1e-6 / 1e3);
    return result;
}

RunResult
simulateSigma(const DatasetGraph &data, const ModelConfig &model,
              const SigmaConfig &cfg)
{
    Workload wl = buildWorkload(data, model);
    double latency_cycles = 0.0;
    double bytes_total = 0.0;
    for (const LayerWork &lw : wl.layers) {
        const double compute = lw.totalOpsBase() /
            (cfg.numMacs * cfg.utilization);
        // SIGMA handles arbitrary sparsity but has no graph-aware
        // locality capture: the dense operand rows selected by A's
        // non-zeros are re-fetched per non-zero block (no community
        // reuse), which is the gap I-GCN's islands close.
        const double gather_bytes =
            static_cast<double>(wl.adjacencyNnzWithSelf) *
            lw.outChannels * 8.0;
        const double bytes = lw.inputBytes * 2.0 + lw.outputBytes +
            static_cast<double>(wl.adjacencyBytes) + gather_bytes;
        const double bytes_per_cycle =
            cfg.memoryGBps * 1e9 / (cfg.clockMHz * 1e6);
        const double mem = bytes / bytes_per_cycle;
        bytes_total += bytes;
        latency_cycles += std::max(compute, mem);
    }

    RunResult result;
    result.platform = cfg.name;
    result.dataset = data.info.name;
    result.model = model.name;
    result.latencyUs = latency_cycles / cfg.clockMHz;
    result.computeOps = static_cast<double>(wl.totalOpsBase());
    result.offchipBytes = bytes_total;
    const double watts = 35.0;
    result.energyUJ = watts * result.latencyUs;
    result.graphsPerKJ = 1.0 / (watts * result.latencyUs * 1e-6 / 1e3);
    return result;
}

GpuConfig
rtx8000Config()
{
    GpuConfig cfg;
    cfg.name = "RTX8000";
    cfg.peakTFlops = 16.3;
    cfg.memoryGBps = 672.0;
    cfg.launchOverheadUs = 42.0;
    return cfg;
}

CpuConfig
e52683Config()
{
    CpuConfig cfg;
    cfg.name = "E5-2683-V3";
    cfg.frameworkOverhead = 5.0;
    cfg.perLayerOverheadUs = 220.0;
    return cfg;
}

} // namespace igcn
