#include "accel/igcn_model.hpp"

#include <algorithm>
#include <cmath>

#include "accel/energy.hpp"
#include "sim/dram.hpp"

namespace igcn {

namespace {

/** Structure-dependent, channel-independent cost of one island task. */
struct IslandCost
{
    /** Discovery time in locator cycles (layer 0 readiness). */
    Cycles discovery = 0;
    /** Aggregation window ops per output channel. */
    uint64_t windowUnits = 0;
    /** Pre-aggregation adds per output channel. */
    uint64_t preaggUnits = 0;
    /** Island-node count (fetch/writeback sizing). */
    uint32_t numNodes = 0;
    /** Hub partial-result rows this task updates over the ring. */
    uint32_t numHubs = 0;
};

/** One schedulable unit of consumer work. */
struct Task
{
    Cycles ready = 0;
    Cycles computeCycles = 0;
    uint64_t fetchBytes = 0;
    uint64_t writeBytes = 0;
};

/**
 * Locator timeline: start cycle of every round plus each island's
 * discovery time. Hub detection (P1 nodes/cycle) and TP-BFS
 * (P2 edges/cycle) overlap within a round; a small sync cost models
 * the round barrier (Algorithm 1 line 9).
 */
std::vector<Cycles>
locatorTimeline(const IslandizationResult &isl, const LocatorConfig &cfg,
                Cycles *locator_end)
{
    constexpr Cycles kRoundSync = 16;
    std::vector<Cycles> round_start(isl.rounds.size() + 1, 0);
    for (size_t r = 0; r < isl.rounds.size(); ++r) {
        const RoundInfo &info = isl.rounds[r];
        Cycles detect = info.nodesChecked / std::max(1, cfg.p1) + 1;
        Cycles bfs = info.edgesScanned /
            std::max(1, cfg.p2 * cfg.bfsScanWidth) + 1;
        // Detection and BFS overlap; the round takes as long as the
        // slower of the two plus the barrier.
        round_start[r + 1] =
            round_start[r] + std::max(detect, bfs) + kRoundSync;
    }
    if (locator_end)
        *locator_end = round_start[isl.rounds.size()];
    return round_start;
}

} // namespace

RunResult
simulateIgcn(const DatasetGraph &data, const ModelConfig &model,
             const HwConfig &hw, const IslandizationResult *isl_in)
{
    IslandizationResult local;
    if (!isl_in) {
        local = islandize(data.graph, hw.locator);
        isl_in = &local;
    }
    const IslandizationResult &isl = *isl_in;
    const CsrGraph &g = data.graph;

    Workload wl = buildWorkload(data, model, &isl, hw.redundancy,
                                /*preagg_in_combination=*/true);

    // ---- Per-island structural costs (channel-independent) --------
    std::vector<IslandCost> costs(isl.islands.size());
    Cycles locator_end = 0;
    std::vector<Cycles> round_start =
        locatorTimeline(isl, hw.locator, &locator_end);
    {
        // Discovery times: islands of a round are spread across the
        // round's BFS window proportionally to scanned edges.
        std::vector<uint64_t> round_prefix(isl.rounds.size(), 0);
        for (size_t i = 0; i < isl.islands.size(); ++i) {
            const Island &island = isl.islands[i];
            IslandBitmap bm = buildIslandBitmap(g, island, true);
            AggOpStats ops = countIslandAggOps(bm, hw.redundancy);
            IslandCost &c = costs[i];
            c.windowUnits = ops.windowOps;
            c.preaggUnits = ops.preaggOps;
            c.numNodes = static_cast<uint32_t>(island.nodes.size());
            c.numHubs = static_cast<uint32_t>(island.hubs.size());
            const int r = island.round - 1;
            if (r >= 0 && r < static_cast<int>(isl.rounds.size())) {
                round_prefix[r] += island.edgesScanned;
                const uint64_t total =
                    std::max<uint64_t>(1, isl.rounds[r].edgesScanned);
                const Cycles span =
                    round_start[r + 1] - round_start[r];
                c.discovery = round_start[r] +
                    static_cast<Cycles>(
                        static_cast<double>(round_prefix[r]) / total *
                        span);
            }
        }
    }

    // ---- Hub-side per-layer constants ------------------------------
    const NodeId num_hubs = isl.numHubs();
    const double feat_nnz_per_node = data.info.featureDensity < 0.5
        ? static_cast<double>(data.featureNnz) / g.numNodes()
        : data.info.numFeatures;

    // On-chip residency: operands that fit in SRAM skip the DRAM path
    // during inference (paper latency setup; the Figure 14(A) traffic
    // accounting below still assumes an off-chip start).
    const double sram_bytes = hw.sramMB * 1024.0 * 1024.0;
    ResidencyPlan res = hw.preloadOnChip
        ? planResidency(wl, sram_bytes)
        : ResidencyPlan{};

    // ---- Event-driven consumer simulation --------------------------
    DramModel dram(hw.dram);
    const int macs_per_pe = hw.macsPerPe();
    uint64_t total_ops = 0;

    Cycles layer_start = 0;
    std::vector<Cycles> result_layer_ends;
    for (size_t l = 0; l < wl.layers.size(); ++l) {
        const LayerWork &lw = wl.layers[l];
        const int out_ch = lw.outChannels;
        const int in_ch = lw.inChannels;
        const bool sparse_input = (l == 0) &&
            data.info.featureDensity < 0.5;

        // Residency of this layer's operands.
        const bool input_resident =
            (l == 0) ? res.features : res.activations;
        const bool output_resident =
            (l + 1 == wl.layers.size()) || res.activations;
        const bool meta_resident = res.adjacency;

        std::vector<Task> tasks;
        tasks.reserve(costs.size() + 64);

        // Weights streamed at layer start when not resident.
        Cycles weights_ready = layer_start;
        if (!res.weights) {
            weights_ready = dram.access(layer_start, lw.weightBytes,
                                        AccessPattern::Streaming);
        }

        // Hub combination: performed once per layer, results cached
        // in the HUB Matrix XW cache. Modeled as one task per PE.
        const uint64_t hub_in_nnz = sparse_input
            ? static_cast<uint64_t>(num_hubs * feat_nnz_per_node)
            : static_cast<uint64_t>(num_hubs) * in_ch;
        const uint64_t hub_comb_ops =
            hub_in_nnz * static_cast<uint64_t>(out_ch);
        const Cycles hub_ready_base =
            (l == 0) ? std::max(weights_ready - layer_start, Cycles{0})
                     : weights_ready - layer_start;
        for (int pe = 0; pe < hw.numPes; ++pe) {
            Task t;
            t.ready = layer_start + hub_ready_base;
            t.computeCycles =
                hub_comb_ops / hw.numPes / macs_per_pe + 1;
            t.fetchBytes = input_resident
                ? 0
                : (sparse_input ? hub_in_nnz * 8 / hw.numPes
                                : hub_in_nnz * 4 / hw.numPes);
            tasks.push_back(t);
        }
        total_ops += hub_comb_ops;
        Cycles hub_phase_cycles =
            hub_comb_ops / std::max(1, hw.numMacs) + 1;

        // Island tasks.
        for (const IslandCost &c : costs) {
            Task t;
            t.ready = layer_start +
                (l == 0 ? std::max(c.discovery,
                                   weights_ready - layer_start)
                        : weights_ready - layer_start);
            const uint64_t in_nnz = sparse_input
                ? static_cast<uint64_t>(c.numNodes * feat_nnz_per_node)
                : static_cast<uint64_t>(c.numNodes) * in_ch;
            const uint64_t comb = in_nnz * out_ch;
            const uint64_t agg =
                (c.windowUnits + c.preaggUnits) * out_ch;
            // Hub partial updates traverse the ring; in-network
            // reduction merges updates entering the same bank.
            const uint64_t ring_updates =
                static_cast<uint64_t>(c.numHubs) * out_ch /
                (hw.ringReduction ? 2 : 1);
            t.computeCycles =
                (comb + agg) / macs_per_pe + ring_updates / 16 + 1;
            t.fetchBytes = input_resident
                ? 0
                : (sparse_input ? in_nnz * 8
                                : static_cast<uint64_t>(c.numNodes) *
                                  in_ch * 4);
            if (l > 0 && !meta_resident) {
                // Island metadata (node ids + bitmap) is produced
                // on-chip by the locator during layer 0 but refetched
                // for later layers on large graphs.
                t.fetchBytes += c.numNodes * 8;
            }
            t.writeBytes = output_resident
                ? 0
                : static_cast<uint64_t>(c.numNodes) * out_ch * 4;
            total_ops += comb + agg;
            tasks.push_back(t);
        }

        // Inter-hub tasks (push-outer-product), ready once the hub XW
        // cache is warm; chunked to bound event count.
        const uint64_t inter_units =
            2 * isl.interHubEdges.size() + num_hubs;
        const uint64_t inter_ops = inter_units * out_ch;
        total_ops += inter_ops;
        const uint64_t chunk_edges = 8192;
        for (uint64_t off = 0; off < inter_units; off += chunk_edges) {
            const uint64_t units =
                std::min(chunk_edges, inter_units - off);
            Task t;
            t.ready = layer_start + hub_phase_cycles +
                (l == 0 ? locator_end : Cycles{0});
            t.computeCycles = units * out_ch / macs_per_pe + 1;
            // Inter-hub adjacency comes from the edge map kept by the
            // Island Collector; charge its streaming fetch when the
            // graph is not resident.
            t.fetchBytes = meta_resident ? 0 : units * 8;
            tasks.push_back(t);
        }

        // Hub final outputs written back at layer end (folded into
        // the last chunk's write bytes).
        if (!tasks.empty() && !output_resident) {
            tasks.back().writeBytes +=
                static_cast<uint64_t>(num_hubs) * out_ch * 4;
        }

        // ---- schedule: PEs pull tasks in ready order ---------------
        // Fetches go through the shared channel with backpressure;
        // writes drain through a write-behind buffer, so they consume
        // bandwidth (accounted below) without stalling the PE or
        // inserting idle gaps into the read queue.
        std::sort(tasks.begin(), tasks.end(),
                  [](const Task &a, const Task &b) {
                      return a.ready < b.ready;
                  });
        std::vector<Cycles> pe_free(hw.numPes, layer_start);
        Cycles layer_end = layer_start;
        uint64_t write_backlog_bytes = 0;
        const Cycles dram_busy_at_layer_start = dram.busyCycles();
        for (const Task &t : tasks) {
            // Earliest-available PE executes the task.
            auto it = std::min_element(pe_free.begin(), pe_free.end());
            Cycles start = std::max(*it, t.ready);
            Cycles fetch_done = start;
            if (t.fetchBytes > 0) {
                fetch_done =
                    dram.access(start, t.fetchBytes,
                                AccessPattern::Random);
            }
            Cycles done = fetch_done + t.computeCycles;
            write_backlog_bytes += t.writeBytes;
            *it = done;
            layer_end = std::max(layer_end, done);
        }
        // Write-behind drain: the layer cannot end before the channel
        // has moved the fetch traffic plus the buffered writes.
        const Cycles fetch_busy =
            dram.busyCycles() - dram_busy_at_layer_start;
        const auto write_cycles = static_cast<Cycles>(
            static_cast<double>(write_backlog_bytes) /
            (dram.bytesPerCycle() * hw.dram.streamEfficiency));
        if (write_backlog_bytes > 0) {
            dram.access(layer_end, write_backlog_bytes,
                        AccessPattern::Streaming);
        }
        layer_end = std::max(layer_end,
                             layer_start + fetch_busy + write_cycles);
        result_layer_ends.push_back(layer_end);
        layer_start = layer_end; // layer barrier
    }

    const double total_cycles = static_cast<double>(layer_start);

    // ---- Off-chip accounting (Figure 14(A) convention: operands
    // start off-chip regardless of preloading) ----------------------
    double offchip = 0.0;
    offchip += wl.adjacencyBytes;             // adjacency, fetched once
    offchip += wl.layers[0].inputBytes;       // features, fetched once
    // Locator re-scans of island adjacency during multi-round
    // locating (Section 3.1.1 "may need to be accessed multiple
    // times"): wasted scans are the re-fetch component. Most re-scans
    // hit the adjacency lists a sibling task just staged in the BFS
    // engines' buffers; only the cold fraction goes off chip.
    offchip += isl.stats.edgesScannedWasted * 4 * 0.25;
    for (size_t l = 0; l < wl.layers.size(); ++l) {
        offchip += wl.layers[l].weightBytes;
        offchip += wl.layers[l].outputBytes;  // written back once
        if (l > 0)
            offchip += wl.layers[l].inputBytes; // re-read next layer
    }

    RunResult result;
    result.platform = "I-GCN";
    result.dataset = data.info.name;
    result.model = model.name;
    result.latencyUs = hw.cyclesToUs(total_cycles);
    result.offchipBytes = offchip;
    result.computeOps = static_cast<double>(total_ops);
    result.utilization = total_ops /
        (static_cast<double>(hw.numMacs) * std::max(1.0, total_cycles));
    fillEnergy(result, hw, total_ops, offchip);

    result.stats.set("locator.cycles", static_cast<double>(locator_end));
    result.stats.set("locator.rounds", isl.numRounds);
    result.stats.set("islands", static_cast<double>(isl.islands.size()));
    result.stats.set("hubs", static_cast<double>(num_hubs));
    result.stats.set("interHubEdges",
                     static_cast<double>(isl.interHubEdges.size()));
    result.stats.set("dram.totalBytes",
                     static_cast<double>(dram.totalBytes()));
    result.stats.set("resident.adjacency", res.adjacency ? 1.0 : 0.0);
    result.stats.set("resident.activations", res.activations ? 1.0 : 0.0);
    result.stats.set("resident.features", res.features ? 1.0 : 0.0);
    result.stats.set("resident.weights", res.weights ? 1.0 : 0.0);
    for (size_t l = 0; l < result_layer_ends.size(); ++l)
        result.stats.set("layerEnd." + std::to_string(l),
                         static_cast<double>(result_layer_ends[l]));
    result.stats.set("dram.busyCycles",
                     static_cast<double>(dram.busyCycles()));
    result.stats.set("opsBase", static_cast<double>(wl.totalOpsBase()));
    result.stats.set("opsOptimized",
                     static_cast<double>(wl.totalOpsOptimized()));
    return result;
}

} // namespace igcn
