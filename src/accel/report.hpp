/**
 * @file
 * Uniform result record for every platform model, plus table-printing
 * helpers used by the benchmark harnesses to emit the paper's rows.
 */

#pragma once

#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace igcn {

/** Result of one simulated (or measured) inference. */
struct RunResult
{
    std::string platform;
    std::string dataset;
    std::string model;
    /** End-to-end inference latency in microseconds. */
    double latencyUs = 0.0;
    /** Off-chip bytes moved, assuming operands start off-chip. */
    double offchipBytes = 0.0;
    /** Total arithmetic operations executed. */
    double computeOps = 0.0;
    /** Energy per inference in microjoules. */
    double energyUJ = 0.0;
    /** Energy efficiency in graphs per kilojoule (Table 2's EE). */
    double graphsPerKJ = 0.0;
    /** Average MAC-array utilization in [0, 1]. */
    double utilization = 0.0;
    /** Model-specific detail counters. */
    StatsRegistry stats;
};

/** latency(b) / latency(a): how much faster a is than b. */
double speedupOver(const RunResult &a, const RunResult &b);

/** Format helpers for the bench harness tables. */
std::string formatEng(double value, int precision = 3);

/** Simple fixed-width text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    std::string toString() const;

  private:
    std::vector<std::string> headerRow;
    std::vector<std::vector<std::string>> rows;
};

} // namespace igcn
