#include "accel/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace igcn {

double
speedupOver(const RunResult &a, const RunResult &b)
{
    if (a.latencyUs <= 0.0)
        throw std::invalid_argument("non-positive latency");
    return b.latencyUs / a.latencyUs;
}

std::string
formatEng(double value, int precision)
{
    char buf[64];
    if (value == 0.0)
        return "0";
    double mag = std::fabs(value);
    if (mag >= 1e-2 && mag < 1e4) {
        std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    } else {
        std::snprintf(buf, sizeof(buf), "%.*e", precision - 1, value);
    }
    return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headerRow(std::move(headers))
{}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headerRow.size())
        throw std::invalid_argument("row width != header width");
    rows.push_back(std::move(cells));
}

std::string
TextTable::toString() const
{
    std::vector<size_t> widths(headerRow.size());
    for (size_t c = 0; c < headerRow.size(); ++c)
        widths[c] = headerRow[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << "\n";
    };
    emit(headerRow);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + 2;
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        emit(row);
    return out.str();
}

} // namespace igcn
