/**
 * @file
 * Compressed Sparse Row feature matrix.
 *
 * The paper's NELL-style workloads carry node features of ~0.01
 * density; storing X dense wastes ~100x memory and first-layer FLOPs.
 * CsrFeatures is the float-valued CSR container for such an X: the
 * same rowPtr/colIdx layout as CsrGraph plus a parallel values array,
 * living in the graph layer so datasets can build it and every
 * consumer (training, serving, accel models) shares one storage type.
 * Kernels over it (csrGather, sparseTimesDense) live in src/spmm/,
 * which also owns the dense<->sparse conversions — this header has no
 * dependency on DenseMatrix.
 */

#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace igcn {

/** One row of a CsrFeatures matrix: parallel column/value spans. */
struct FeatureRow
{
    std::span<const NodeId> cols; ///< strictly ascending column ids
    std::span<const float> vals;  ///< value per column entry
};

/**
 * Immutable-by-convention CSR feature matrix. Rows are nodes, columns
 * are feature channels; each row's columns are strictly ascending and
 * in range. Explicitly stored zeros are permitted (a stored 0.0f is a
 * structural entry, not an error) so adopting arrays never silently
 * changes sparsity structure.
 *
 * Builders (makeFeatures, denseToCsrFeatures) may fill the public
 * arrays directly and are responsible for the invariants; arrays from
 * untrusted or derived sources go through fromArrays, which validates
 * in O(nnz). The cached CSC view follows the LazyAdjunct rules of
 * CsrGraph::inEdges(): derived state, never identity.
 */
struct CsrFeatures
{
    NodeId numRows = 0;
    NodeId numCols = 0;
    std::vector<EdgeId> rowPtr{0}; ///< size numRows + 1
    std::vector<NodeId> colIdx;    ///< size nnz, ascending per row
    std::vector<float> values;     ///< size nnz, parallel to colIdx

    /**
     * Adopt prebuilt arrays with O(nnz) validation: rowPtr starts at
     * 0, is monotone, has size num_rows + 1, and ends at
     * col_idx.size(); values parallels col_idx; every row's columns
     * are strictly ascending and < num_cols.
     * @throws std::invalid_argument on any violation.
     */
    [[nodiscard]] static CsrFeatures fromArrays(NodeId num_rows,
                                  NodeId num_cols,
                                  std::vector<EdgeId> row_ptr,
                                  std::vector<NodeId> col_idx,
                                  std::vector<float> vals);

    /** Stored entry count (including explicit zeros). */
    EdgeId nnz() const { return static_cast<EdgeId>(colIdx.size()); }

    /** Stored entries per row. */
    NodeId
    rowNnz(NodeId r) const
    {
        return static_cast<NodeId>(rowPtr[r + 1] - rowPtr[r]);
    }

    /** Row r as parallel column/value spans. */
    FeatureRow
    row(NodeId r) const
    {
        return {{colIdx.data() + rowPtr[r], colIdx.data() + rowPtr[r + 1]},
                {values.data() + rowPtr[r], values.data() + rowPtr[r + 1]}};
    }

    /** nnz / (rows * cols); 0 for a degenerate empty matrix. */
    double density() const;

    /** Heap bytes of the three CSR arrays (the memory scoreboard). */
    size_t storageBytes() const;

    /**
     * Column-major (CSC) view, for X^T-side products in the training
     * backward pass. Entries within a column are in ascending row
     * order. Built lazily once and cached; see LazyAdjunct for the
     * copy/move/equality rules.
     */
    struct CscView
    {
        std::vector<EdgeId> colPtr; ///< size numCols + 1
        std::vector<NodeId> rowOf;  ///< row id per entry
        std::vector<float> valOf;   ///< value per entry
    };

    /** The cached CSC view (lazily built, shared by reference). */
    const CscView &csc() const;

    /** Equality over dimensions and arrays; the CSC cache is ignored. */
    bool operator==(const CsrFeatures &other) const = default;

  private:
    LazyAdjunct<CscView> cscCache;
};

} // namespace igcn
