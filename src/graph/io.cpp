#include "graph/io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace igcn {

void
saveEdgeList(const CsrGraph &g, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot open " + path + " for writing");
    out << "# nodes " << g.numNodes() << "\n";
    for (NodeId u = 0; u < g.numNodes(); ++u)
        for (NodeId v : g.neighbors(u))
            out << u << " " << v << "\n";
}

CsrGraph
loadEdgeList(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    std::string hash, word;
    NodeId num_nodes = 0;
    if (!(in >> hash >> word >> num_nodes) || hash != "#" ||
        word != "nodes") {
        throw std::runtime_error("bad edge list header in " + path);
    }
    std::vector<Edge> edges;
    NodeId u, v;
    while (in >> u >> v)
        edges.emplace_back(u, v);
    // File already stores both arc directions; don't re-symmetrize so
    // that directed test fixtures round-trip exactly.
    return CsrGraph::fromEdges(num_nodes, edges, /*symmetrize=*/false,
                               /*keep_self_loops=*/true);
}

void
savePgm(const std::vector<double> &grid, int width, int height,
        const std::string &path)
{
    if (static_cast<size_t>(width) * height != grid.size())
        throw std::invalid_argument("grid size mismatch");
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("cannot open " + path + " for writing");
    out << "P5\n" << width << " " << height << "\n255\n";
    for (double v : grid) {
        double clamped = std::clamp(v, 0.0, 1.0);
        auto pixel = static_cast<unsigned char>(
            std::lround(255.0 * (1.0 - clamped)));
        out.put(static_cast<char>(pixel));
    }
}

} // namespace igcn
