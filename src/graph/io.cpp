#include "graph/io.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace igcn {

namespace {

bool
isBlank(const std::string &line)
{
    for (char c : line)
        if (!std::isspace(static_cast<unsigned char>(c)))
            return false;
    return true;
}

[[noreturn]] void
parseError(const std::string &path, size_t lineno, const std::string &what)
{
    throw std::runtime_error(path + ":" + std::to_string(lineno) +
                             ": " + what);
}

/**
 * Parse one edge line as exactly two decimal node ids. Returns false
 * on any malformation (non-numeric tokens, a sign, a missing second
 * id, trailing tokens); range checking is the caller's job because it
 * needs num_nodes for the message.
 */
bool
parseEdgeLine(const std::string &line, unsigned long long &u,
              unsigned long long &v)
{
    // A '-' anywhere means a negative id, which istream extraction
    // into an unsigned type would silently wrap instead of rejecting.
    if (line.find('-') != std::string::npos)
        return false;
    std::istringstream ls(line);
    if (!(ls >> u >> v))
        return false;
    std::string trailing;
    if (ls >> trailing)
        return false;
    return true;
}

} // namespace

void
saveEdgeList(const CsrGraph &g, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot open " + path + " for writing");
    out << "# nodes " << g.numNodes() << "\n";
    for (NodeId u = 0; u < g.numNodes(); ++u)
        for (NodeId v : g.neighbors(u))
            out << u << " " << v << "\n";
}

CsrGraph
loadEdgeList(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open " + path + ": " +
                                 std::strerror(errno));

    std::string line;
    size_t lineno = 0;
    NodeId num_nodes = 0;
    bool have_header = false;
    while (!have_header && std::getline(in, line)) {
        ++lineno;
        if (isBlank(line))
            continue;
        std::istringstream hs(line);
        std::string hash, word;
        unsigned long long n = 0;
        std::string trailing;
        if (!(hs >> hash >> word >> n) || hash != "#" ||
            word != "nodes" || (hs >> trailing)) {
            parseError(path, lineno,
                       "expected header '# nodes N', got '" + line +
                           "'");
        }
        if (n > ~NodeId{0})
            parseError(path, lineno,
                       "node count " + std::to_string(n) +
                           " exceeds the 32-bit id space");
        num_nodes = static_cast<NodeId>(n);
        have_header = true;
    }
    if (!have_header)
        throw std::runtime_error(path +
                                 ": missing '# nodes N' header");

    std::vector<Edge> edges;
    while (std::getline(in, line)) {
        ++lineno;
        if (isBlank(line) || line[line.find_first_not_of(" \t")] == '#')
            continue;
        unsigned long long u = 0, v = 0;
        if (!parseEdgeLine(line, u, v))
            parseError(path, lineno,
                       "malformed edge line '" + line +
                           "' (expected 'u v')");
        if (u >= num_nodes || v >= num_nodes)
            parseError(path, lineno,
                       "edge endpoint " +
                           std::to_string(std::max(u, v)) +
                           " out of range [0, " +
                           std::to_string(num_nodes) + ")");
        edges.emplace_back(static_cast<NodeId>(u),
                           static_cast<NodeId>(v));
    }
    // File already stores both arc directions; don't re-symmetrize so
    // that directed test fixtures round-trip exactly.
    return CsrGraph::fromEdges(num_nodes, edges, /*symmetrize=*/false,
                               /*keep_self_loops=*/true);
}

void
savePgm(const std::vector<double> &grid, int width, int height,
        const std::string &path)
{
    if (static_cast<size_t>(width) * height != grid.size())
        throw std::invalid_argument("grid size mismatch");
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("cannot open " + path + " for writing");
    out << "P5\n" << width << " " << height << "\n255\n";
    for (double v : grid) {
        // Serial image writer, not a kernel reduction.
        // igcn-lint: allow(no-mixed-accumulation)
        double clamped = std::clamp(v, 0.0, 1.0);
        auto pixel = static_cast<unsigned char>(
            std::lround(255.0 * (1.0 - clamped)));
        out.put(static_cast<char>(pixel));
    }
}

} // namespace igcn
