/**
 * @file
 * Synthetic graph generators.
 *
 * The central generator is the hub-and-island model, which produces
 * graphs with exactly the structure islandization exploits: small
 * communities ("islands") with dense internal connectivity whose only
 * external links go through a power-law-distributed set of high-degree
 * hubs. Erdos-Renyi and R-MAT generators provide structure-free and
 * skewed-but-unclustered baselines for the property tests and the
 * ablation benchmarks.
 */

#pragma once

#include "graph/csr.hpp"
#include "graph/rng.hpp"

namespace igcn {

/** Parameters of the hub-and-island generator. */
struct HubIslandParams
{
    /** Total number of nodes. */
    NodeId numNodes = 1000;
    /** Fraction of nodes that are hubs (high-degree connectors). */
    double hubFraction = 0.05;
    /** Mean island size; islands are sized uniformly in [2, 2*mean). */
    NodeId meanIslandSize = 8;
    /** Probability of an edge between two nodes of the same island. */
    double intraIslandProb = 0.6;
    /**
     * Average number of distinct hubs each island attaches to. Islands
     * share hubs (a citation cluster cites the same survey papers), so
     * attachments are chosen per island, not per node; this gives hubs
     * clearly higher degree than island nodes, which is the structural
     * premise of threshold-based hub detection.
     */
    double hubsPerIsland = 1.5;
    /** Probability that an island member links to each island hub. */
    double hubAttachProb = 0.7;
    /** Power-law exponent for hub popularity (larger = less skewed). */
    double hubPopularityExp = 2.0;
    /** Average number of hub-hub edges per hub. */
    double hubHubDegree = 2.0;
    /**
     * Community strength in [0, 1]. 1.0 keeps all island edges inside
     * the island; lower values rewire a fraction of intra-island edges
     * to random nodes, weakening the community structure (Reddit-like).
     */
    double communityStrength = 1.0;
    uint64_t seed = 42;
};

/** Result of the hub-and-island generator with ground-truth labels. */
struct HubIslandGraph
{
    CsrGraph graph;
    /** True island membership per node; hubs get kNoIsland. */
    std::vector<NodeId> islandOf;
    /** True hub flags. */
    std::vector<bool> isHub;
    NodeId numIslands = 0;

    static constexpr NodeId kNoIsland = ~NodeId{0};
};

/**
 * Generate a hub-and-island graph. Node ids are shuffled so that
 * community membership is not discoverable from id adjacency
 * (islandization must actually find it).
 */
HubIslandGraph hubAndIslandGraph(const HubIslandParams &params);

/** Erdos-Renyi G(n, m)-style graph with the given average degree. */
CsrGraph erdosRenyi(NodeId num_nodes, double avg_degree, uint64_t seed);

/**
 * R-MAT generator (Chakrabarti et al.): recursively skewed edge
 * placement giving a power-law-ish degree distribution without
 * planted community structure.
 */
CsrGraph rmat(NodeId num_nodes, EdgeId num_edges, double a, double b,
              double c, uint64_t seed);

/**
 * Barabasi-Albert preferential attachment: each new node attaches to
 * m existing nodes with probability proportional to degree. Produces
 * power-law hubs with no planted community structure.
 */
CsrGraph barabasiAlbert(NodeId num_nodes, int m, uint64_t seed);

/**
 * Watts-Strogatz small world: ring lattice of degree 2k with
 * rewiring probability beta. High clustering, no hub skew —
 * the structural opposite of Barabasi-Albert.
 */
CsrGraph wattsStrogatz(NodeId num_nodes, int k, double beta,
                       uint64_t seed);

/** A simple path graph 0-1-2-...-(n-1); handy for unit tests. */
CsrGraph pathGraph(NodeId num_nodes);

/** Star graph: node 0 connected to all others. */
CsrGraph starGraph(NodeId num_nodes);

/** Complete graph on n nodes (no self loops). */
CsrGraph completeGraph(NodeId num_nodes);

} // namespace igcn
