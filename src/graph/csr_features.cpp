#include "graph/csr_features.hpp"

#include <stdexcept>
#include <string>

namespace igcn {

CsrFeatures
CsrFeatures::fromArrays(NodeId num_rows,
                        NodeId num_cols,
                        std::vector<EdgeId> row_ptr,
                        std::vector<NodeId> col_idx,
                        std::vector<float> vals)
{
    if (row_ptr.size() != static_cast<size_t>(num_rows) + 1)
        throw std::invalid_argument(
            "CsrFeatures::fromArrays: row_ptr size " +
            std::to_string(row_ptr.size()) + " != num_rows + 1 = " +
            std::to_string(static_cast<size_t>(num_rows) + 1));
    if (row_ptr.front() != 0)
        throw std::invalid_argument(
            "CsrFeatures::fromArrays: row_ptr[0] != 0");
    if (row_ptr.back() != col_idx.size())
        throw std::invalid_argument(
            "CsrFeatures::fromArrays: row_ptr back " +
            std::to_string(row_ptr.back()) + " != entry count " +
            std::to_string(col_idx.size()));
    if (vals.size() != col_idx.size())
        throw std::invalid_argument(
            "CsrFeatures::fromArrays: values size " +
            std::to_string(vals.size()) + " != col_idx size " +
            std::to_string(col_idx.size()));
    for (NodeId r = 0; r < num_rows; ++r) {
        if (row_ptr[r] > row_ptr[r + 1])
            throw std::invalid_argument(
                "CsrFeatures::fromArrays: row_ptr not monotone at row " +
                std::to_string(r));
        for (EdgeId e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
            if (col_idx[e] >= num_cols)
                throw std::invalid_argument(
                    "CsrFeatures::fromArrays: column " +
                    std::to_string(col_idx[e]) + " out of range in row " +
                    std::to_string(r));
            if (e > row_ptr[r] && col_idx[e - 1] >= col_idx[e])
                throw std::invalid_argument(
                    "CsrFeatures::fromArrays: columns not strictly "
                    "ascending in row " +
                    std::to_string(r));
        }
    }

    CsrFeatures f;
    f.numRows = num_rows;
    f.numCols = num_cols;
    f.rowPtr = std::move(row_ptr);
    f.colIdx = std::move(col_idx);
    f.values = std::move(vals);
    return f;
}

double
CsrFeatures::density() const
{
    const double cells =
        static_cast<double>(numRows) * static_cast<double>(numCols);
    return cells > 0.0 ? static_cast<double>(nnz()) / cells : 0.0;
}

size_t
CsrFeatures::storageBytes() const
{
    return rowPtr.size() * sizeof(EdgeId) +
           colIdx.size() * sizeof(NodeId) +
           values.size() * sizeof(float);
}

const CsrFeatures::CscView &
CsrFeatures::csc() const
{
    return cscCache.get([this] {
        CscView v;
        transposeCsrIndex(numCols, rowPtr, colIdx, v.colPtr, v.rowOf,
                          &values, &v.valOf);
        return v;
    });
}

} // namespace igcn
