/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * synthetic graph and feature generation.
 *
 * All stochastic components of the library draw from Xoshiro256**
 * seeded through SplitMix64, so that every experiment is exactly
 * reproducible from a single 64-bit seed.
 */

#pragma once

#include <cstdint>
#include <cmath>

namespace igcn {

/**
 * SplitMix64 generator. Used to expand a single seed into the
 * four-word Xoshiro state; also usable standalone for cheap hashing.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state(seed) {}

    /** Next 64-bit pseudo-random value. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state;
};

/**
 * Xoshiro256** pseudo-random generator (Blackman & Vigna).
 *
 * Fast, high-quality, and deterministic across platforms, unlike
 * std::mt19937 whose distributions are implementation-defined.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x1905CAFEULL)
    {
        SplitMix64 sm(seed);
        for (auto &word : s)
            word = sm.next();
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(s[1] * 5, 7) * 9;
        const uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [-scale, scale). */
    float
    nextFloat(float scale = 1.0f)
    {
        return static_cast<float>(nextDouble() * 2.0 - 1.0) * scale;
    }

    /** Bernoulli trial with probability p. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

    /**
     * Sample from a bounded discrete power-law (Zipf-like) distribution
     * over [min_v, max_v] with exponent alpha > 0, via inverse-CDF of
     * the continuous Pareto approximation. The closed form below is
     * exact for any alpha != 1 (1-alpha just flips sign); alpha == 1
     * takes the log-uniform limit of the same CDF.
     */
    uint64_t
    nextPowerLaw(uint64_t min_v, uint64_t max_v, double alpha)
    {
        double u = nextDouble();
        double x;
        if (std::abs(alpha - 1.0) < 1e-9) {
            const double lo = static_cast<double>(min_v);
            const double hi = static_cast<double>(max_v) + 1.0;
            x = lo * std::pow(hi / lo, u);
        } else {
            double lo =
                std::pow(static_cast<double>(min_v), 1.0 - alpha);
            double hi =
                std::pow(static_cast<double>(max_v) + 1.0, 1.0 - alpha);
            x = std::pow(lo + u * (hi - lo), 1.0 / (1.0 - alpha));
        }
        auto v = static_cast<uint64_t>(x);
        if (v < min_v) v = min_v;
        if (v > max_v) v = max_v;
        return v;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s[4];
};

} // namespace igcn
