/**
 * @file
 * Surrogate builders for the five datasets used in the I-GCN paper.
 *
 * The real Cora/Citeseer/Pubmed/NELL/Reddit datasets are not available
 * offline, so each is replaced by a deterministic synthetic graph from
 * the hub-and-island generator, matched to the published node count,
 * edge count, feature dimensionality, feature sparsity, class count,
 * and (qualitatively) community strength. Reddit is scaled down from
 * 114M to ~23M directed edges to keep simulation times tractable; the
 * paper's observation that Reddit has "less significant component
 * structures" is reflected by a low communityStrength. See DESIGN.md
 * section 2 for the substitution rationale.
 */

#pragma once

#include <string>

#include "graph/generators.hpp"

namespace igcn {

/**
 * The five benchmark datasets of the paper's evaluation, plus
 * NellSmall: a ~1/10-node NELL-density surrogate (0.01 feature
 * density, NELL's skew and component structure) sized so the
 * sparse-feature serving path can be exercised and benchmarked in
 * seconds. NellSmall is deliberately NOT in kAllDatasets — the
 * paper-table benches and pinned dataset statistics cover exactly
 * the published five.
 */
enum class Dataset { Cora, Citeseer, Pubmed, Nell, Reddit, NellSmall };

/** The paper's five datasets, in its presentation order. */
inline constexpr Dataset kAllDatasets[] = {
    Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed, Dataset::Nell,
    Dataset::Reddit,
};

/** Published statistics we match, plus generator knobs. */
struct DatasetInfo
{
    std::string name;
    std::string abbrev;
    NodeId numNodes;
    EdgeId targetDirectedEdges;
    int numFeatures;
    int numClasses;
    /** Fraction of non-zeros in the input feature matrix X. */
    double featureDensity;
    /** Community strength passed to the generator. */
    double communityStrength;
};

/** Static info for a dataset. */
const DatasetInfo &datasetInfo(Dataset d);

/** A generated dataset: graph plus feature/label dimensions. */
struct DatasetGraph
{
    DatasetInfo info;
    CsrGraph graph;
    /** Actual non-zero count of the (synthetic) feature matrix. */
    EdgeId featureNnz;

    NodeId numNodes() const { return graph.numNodes(); }
    EdgeId numEdges() const { return graph.numEdges(); }
};

/**
 * Build the surrogate graph for a dataset.
 *
 * @param d      dataset id
 * @param scale  node-count scale in (0, 1]; useful for fast tests.
 *               Edge/feature statistics scale proportionally.
 */
DatasetGraph buildDataset(Dataset d, double scale = 1.0);

} // namespace igcn
