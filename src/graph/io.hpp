/**
 * @file
 * Text edge-list I/O and PGM image output for density-grid figures.
 */

#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace igcn {

/** Write "u v" per line, preceded by a "# nodes N" header. */
void saveEdgeList(const CsrGraph &g, const std::string &path);

/**
 * Load a graph saved by saveEdgeList.
 *
 * The file must start with a "# nodes N" header (blank lines before
 * it are allowed); every following non-blank, non-comment line must
 * be exactly two decimal node ids "u v" with u, v < N. Violations —
 * unopenable file, missing or malformed header, malformed edge
 * lines, trailing tokens, negative or out-of-range endpoints — throw
 * std::runtime_error with the path and 1-based line number, instead
 * of silently truncating the edge stream at the first bad line.
 */
CsrGraph loadEdgeList(const std::string &path);

/**
 * Write a grayscale PGM image of a density grid (row-major, values in
 * [0, 1]; 0 = white, 1 = black so that non-zeros appear dark, as in
 * the paper's adjacency-matrix figures).
 */
void savePgm(const std::vector<double> &grid, int width, int height,
             const std::string &path);

} // namespace igcn
