/**
 * @file
 * Text edge-list I/O and PGM image output for density-grid figures.
 */

#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace igcn {

/** Write "u v" per line, preceded by a "# nodes N" header. */
void saveEdgeList(const CsrGraph &g, const std::string &path);

/** Load a graph saved by saveEdgeList. */
CsrGraph loadEdgeList(const std::string &path);

/**
 * Write a grayscale PGM image of a density grid (row-major, values in
 * [0, 1]; 0 = white, 1 = black so that non-zeros appear dark, as in
 * the paper's adjacency-matrix figures).
 */
void savePgm(const std::vector<double> &grid, int width, int height,
             const std::string &path);

} // namespace igcn
