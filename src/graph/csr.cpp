#include "graph/csr.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>

namespace igcn {

CsrGraph
CsrGraph::fromEdges(NodeId num_nodes, const std::vector<Edge> &edges,
                    bool symmetrize, bool keep_self_loops)
{
    std::vector<Edge> work;
    work.reserve(edges.size() * (symmetrize ? 2 : 1));
    for (const auto &[u, v] : edges) {
        if (u >= num_nodes || v >= num_nodes)
            throw std::out_of_range("edge endpoint exceeds num_nodes");
        if (u == v && !keep_self_loops)
            continue;
        work.emplace_back(u, v);
        if (symmetrize && u != v)
            work.emplace_back(v, u);
    }
    std::sort(work.begin(), work.end());
    work.erase(std::unique(work.begin(), work.end()), work.end());

    CsrGraph g;
    g.rowPtr.assign(num_nodes + 1, 0);
    g.colIdx.resize(work.size());
    for (const auto &[u, v] : work)
        g.rowPtr[u + 1]++;
    std::partial_sum(g.rowPtr.begin(), g.rowPtr.end(), g.rowPtr.begin());
    std::vector<EdgeId> cursor(g.rowPtr.begin(), g.rowPtr.end() - 1);
    for (const auto &[u, v] : work)
        g.colIdx[cursor[u]++] = v;
    return g;
}

CsrGraph
CsrGraph::fromCsrArrays(std::vector<EdgeId> row_ptr,
                        std::vector<NodeId> col_idx)
{
    if (row_ptr.empty() || row_ptr.front() != 0 ||
        row_ptr.back() != col_idx.size())
        throw std::invalid_argument(
            "fromCsrArrays: row pointer must start at 0 and end at "
            "col_idx.size()");
    const auto n = static_cast<NodeId>(row_ptr.size() - 1);
    for (NodeId u = 0; u < n; ++u) {
        if (row_ptr[u] > row_ptr[u + 1])
            throw std::invalid_argument(
                "fromCsrArrays: row pointer not monotone");
        for (EdgeId e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
            if (col_idx[e] >= n)
                throw std::invalid_argument(
                    "fromCsrArrays: column id out of range");
            if (e > row_ptr[u] && col_idx[e] <= col_idx[e - 1])
                throw std::invalid_argument(
                    "fromCsrArrays: row columns not strictly "
                    "ascending");
        }
    }
    CsrGraph g;
    g.rowPtr = std::move(row_ptr);
    g.colIdx = std::move(col_idx);
    return g;
}

CsrGraph
CsrGraph::withAddedEdges(std::span<const Edge> added) const
{
    const NodeId n = numNodes();
    std::vector<Edge> arcs;
    arcs.reserve(added.size() * 2);
    for (const auto &[u, v] : added) {
        if (u >= n || v >= n)
            throw std::out_of_range(
                "withAddedEdges: endpoint exceeds num_nodes");
        if (u == v)
            continue;
        arcs.emplace_back(u, v);
        arcs.emplace_back(v, u);
    }
    std::sort(arcs.begin(), arcs.end());
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

    std::vector<EdgeId> rp(static_cast<size_t>(n) + 1, 0);
    std::vector<NodeId> ci;
    ci.reserve(colIdx.size() + arcs.size());
    size_t ai = 0;
    for (NodeId u = 0; u < n; ++u) {
        EdgeId e = rowPtr[u];
        const EdgeId e1 = rowPtr[u + 1];
        while (e < e1 || (ai < arcs.size() && arcs[ai].first == u)) {
            const bool have_added =
                ai < arcs.size() && arcs[ai].first == u;
            if (!have_added) {
                ci.push_back(colIdx[e++]);
            } else if (e >= e1 || arcs[ai].second < colIdx[e]) {
                ci.push_back(arcs[ai++].second);
            } else if (arcs[ai].second == colIdx[e]) {
                ai++; // arc already present; existing entry wins
            } else {
                ci.push_back(colIdx[e++]);
            }
        }
        rp[u + 1] = ci.size();
    }
    return fromCsrArrays(std::move(rp), std::move(ci));
}

CsrGraph
CsrGraph::withRemovedEdges(std::span<const Edge> removed) const
{
    const NodeId n = numNodes();
    std::vector<Edge> arcs;
    arcs.reserve(removed.size() * 2);
    for (const auto &[u, v] : removed) {
        if (u >= n || v >= n)
            throw std::out_of_range(
                "withRemovedEdges: endpoint exceeds num_nodes");
        arcs.emplace_back(u, v);
        if (u != v)
            arcs.emplace_back(v, u);
    }
    std::sort(arcs.begin(), arcs.end());
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

    auto missing = [](const Edge &arc) {
        throw std::invalid_argument(
            "withRemovedEdges: edge (" +
            std::to_string(arc.first) + ", " +
            std::to_string(arc.second) + ") not present");
    };

    std::vector<EdgeId> rp(static_cast<size_t>(n) + 1, 0);
    std::vector<NodeId> ci;
    ci.reserve(colIdx.size() >= arcs.size()
                   ? colIdx.size() - arcs.size()
                   : 0);
    size_t ai = 0;
    for (NodeId u = 0; u < n; ++u) {
        for (EdgeId e = rowPtr[u]; e < rowPtr[u + 1]; ++e) {
            // Arcs sorted before this row entry matched nothing.
            while (ai < arcs.size() && arcs[ai].first == u &&
                   arcs[ai].second < colIdx[e])
                missing(arcs[ai]);
            if (ai < arcs.size() && arcs[ai].first == u &&
                arcs[ai].second == colIdx[e]) {
                ai++; // drop this arc
                continue;
            }
            ci.push_back(colIdx[e]);
        }
        while (ai < arcs.size() && arcs[ai].first == u)
            missing(arcs[ai]);
        rp[u + 1] = ci.size();
    }
    return fromCsrArrays(std::move(rp), std::move(ci));
}

CsrGraph
CsrGraph::withEditedEdges(std::span<const Edge> fresh,
                          std::span<const Edge> stale) const
{
    const NodeId n = numNodes();

    std::vector<Edge> adds;
    adds.reserve(fresh.size() * 2);
    for (const auto &[u, v] : fresh) {
        if (u >= n || v >= n)
            throw std::out_of_range(
                "withEditedEdges: endpoint exceeds num_nodes");
        if (u == v)
            continue;
        adds.emplace_back(u, v);
        adds.emplace_back(v, u);
    }
    std::sort(adds.begin(), adds.end());
    adds.erase(std::unique(adds.begin(), adds.end()), adds.end());

    std::vector<Edge> rems;
    rems.reserve(stale.size() * 2);
    for (const auto &[u, v] : stale) {
        if (u >= n || v >= n)
            throw std::out_of_range(
                "withEditedEdges: endpoint exceeds num_nodes");
        rems.emplace_back(u, v);
        if (u != v)
            rems.emplace_back(v, u);
    }
    std::sort(rems.begin(), rems.end());
    rems.erase(std::unique(rems.begin(), rems.end()), rems.end());

    // Both-spans is an ambiguous edit, not a sequencing question:
    // reject it up front instead of picking an order silently. (The
    // serving applier's want-map coalescing never produces one.)
    {
        size_t a = 0, r = 0;
        while (a < adds.size() && r < rems.size()) {
            if (adds[a] < rems[r])
                ++a;
            else if (rems[r] < adds[a])
                ++r;
            else
                throw std::invalid_argument(
                    "withEditedEdges: edge (" +
                    std::to_string(adds[a].first) + ", " +
                    std::to_string(adds[a].second) +
                    ") in both fresh and stale spans");
        }
    }

    auto missing = [](const Edge &arc) {
        throw std::invalid_argument(
            "withEditedEdges: edge (" + std::to_string(arc.first) +
            ", " + std::to_string(arc.second) + ") not present");
    };

    // One three-way sweep per row: existing ∪ adds, minus rems, with
    // the removal strictness of withRemovedEdges (rems must match
    // existing entries; adds cannot satisfy a removal — the
    // intersection check above already rejected that shape).
    std::vector<EdgeId> rp(static_cast<size_t>(n) + 1, 0);
    std::vector<NodeId> ci;
    ci.reserve(colIdx.size() + adds.size());
    size_t ai = 0, ri = 0;
    for (NodeId u = 0; u < n; ++u) {
        EdgeId e = rowPtr[u];
        const EdgeId e1 = rowPtr[u + 1];
        while (e < e1 || (ai < adds.size() && adds[ai].first == u)) {
            const bool have_add =
                ai < adds.size() && adds[ai].first == u;
            if (have_add && (e >= e1 || adds[ai].second < colIdx[e])) {
                ci.push_back(adds[ai++].second);
                continue;
            }
            const NodeId c = colIdx[e];
            if (have_add && adds[ai].second == c)
                ai++; // arc already present; existing entry wins
            // Removal arcs sorted before this entry matched nothing.
            while (ri < rems.size() && rems[ri].first == u &&
                   rems[ri].second < c)
                missing(rems[ri]);
            if (ri < rems.size() && rems[ri].first == u &&
                rems[ri].second == c) {
                ri++; // drop this arc
                e++;
                continue;
            }
            ci.push_back(c);
            e++;
        }
        while (ri < rems.size() && rems[ri].first == u)
            missing(rems[ri]);
        rp[u + 1] = ci.size();
    }
    return fromCsrArrays(std::move(rp), std::move(ci));
}

bool
CsrGraph::hasEdge(NodeId u, NodeId v) const
{
    auto nbrs = neighbors(u);
    return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

NodeId
CsrGraph::arcSource(EdgeId e) const
{
    if (e >= numEdges())
        throw std::out_of_range(
            "arcSource: arc slot exceeds numEdges");
    return static_cast<NodeId>(
        std::upper_bound(rowPtr.begin(), rowPtr.end(), e) -
        rowPtr.begin() - 1);
}

std::vector<NodeId>
lHopNodeSet(const CsrGraph &g, std::span<const NodeId> targets,
            int hops)
{
    const NodeId n = g.numNodes();
    std::vector<uint8_t> in_set(n, 0);
    std::vector<NodeId> nodes, frontier, next;
    for (NodeId t : targets) {
        if (t >= n)
            throw std::out_of_range(
                "lHopNodeSet: target exceeds num_nodes");
        if (!in_set[t]) {
            in_set[t] = 1;
            nodes.push_back(t);
            frontier.push_back(t);
        }
    }
    for (int l = 0; l < hops && !frontier.empty(); ++l) {
        next.clear();
        for (NodeId u : frontier)
            for (NodeId v : g.neighbors(u))
                if (!in_set[v]) {
                    in_set[v] = 1;
                    nodes.push_back(v);
                    next.push_back(v);
                }
        frontier.swap(next);
    }
    std::sort(nodes.begin(), nodes.end());
    return nodes;
}

LHopSubgraph
inducedSubgraph(const CsrGraph &g, std::vector<NodeId> nodes,
                std::span<const NodeId> targets)
{
    // One binary search decides membership and yields the local id.
    auto find_local = [&nodes](NodeId v) -> std::optional<NodeId> {
        auto it = std::lower_bound(nodes.begin(), nodes.end(), v);
        if (it == nodes.end() || *it != v)
            return std::nullopt;
        return static_cast<NodeId>(it - nodes.begin());
    };

    std::vector<EdgeId> rp(nodes.size() + 1, 0);
    std::vector<NodeId> ci;
    for (size_t l = 0; l < nodes.size(); ++l) {
        // Global neighbor lists are ascending and the relabeling is
        // monotone, so local rows come out ascending for free.
        for (NodeId v : g.neighbors(nodes[l]))
            if (auto local = find_local(v))
                ci.push_back(*local);
        rp[l + 1] = ci.size();
    }

    LHopSubgraph out;
    out.sub = CsrGraph::fromCsrArrays(std::move(rp), std::move(ci));
    out.targetLocal.reserve(targets.size());
    for (NodeId t : targets) {
        auto local = find_local(t);
        if (!local)
            throw std::invalid_argument(
                "inducedSubgraph: target not in node set");
        out.targetLocal.push_back(*local);
    }
    out.nodes = std::move(nodes);
    return out;
}

LHopSubgraph
extractLHopSubgraph(const CsrGraph &g, std::span<const NodeId> targets,
                    int hops)
{
    return inducedSubgraph(g, lHopNodeSet(g, targets, hops), targets);
}

void
transposeCsrIndex(NodeId num_cols, const std::vector<EdgeId> &row_ptr,
                  const std::vector<NodeId> &col_idx,
                  std::vector<EdgeId> &out_ptr,
                  std::vector<NodeId> &out_idx,
                  const std::vector<float> *values,
                  std::vector<float> *out_val)
{
    // Payloads are carried only when both sides are supplied.
    const bool carry = values != nullptr && out_val != nullptr;
    out_ptr.assign(static_cast<size_t>(num_cols) + 1, 0);
    out_idx.resize(col_idx.size());
    if (carry)
        out_val->resize(col_idx.size());
    for (NodeId v : col_idx)
        out_ptr[v + 1]++;
    for (NodeId k = 0; k < num_cols; ++k)
        out_ptr[k + 1] += out_ptr[k];
    const NodeId rows = row_ptr.empty()
        ? 0
        : static_cast<NodeId>(row_ptr.size() - 1);
    std::vector<EdgeId> cursor(out_ptr.begin(), out_ptr.end() - 1);
    for (NodeId i = 0; i < rows; ++i) {
        for (EdgeId e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
            const EdgeId slot = cursor[col_idx[e]]++;
            out_idx[slot] = i;
            if (carry)
                (*out_val)[slot] = (*values)[e];
        }
    }
}

const CsrGraph::InEdgeIndex &
CsrGraph::inEdges() const
{
    return inEdgeCache.get([this] {
        InEdgeIndex idx;
        transposeCsrIndex(numNodes(), rowPtr, colIdx, idx.inPtr,
                          idx.srcOf);
        return idx;
    });
}

NodeId
CsrGraph::maxDegree() const
{
    NodeId best = 0;
    for (NodeId v = 0; v < numNodes(); ++v)
        best = std::max(best, degree(v));
    return best;
}

double
CsrGraph::avgDegree() const
{
    if (numNodes() == 0)
        return 0.0;
    return static_cast<double>(numEdges()) / numNodes();
}

bool
CsrGraph::isSymmetric() const
{
    // Symmetric iff every node's sorted in-neighbor list equals its
    // sorted out-neighbor list: O(N + E) over the cached in-edge
    // index instead of a binary search per edge.
    const InEdgeIndex &idx = inEdges();
    for (NodeId u = 0; u < numNodes(); ++u) {
        auto out = neighbors(u);
        const NodeId *in = idx.srcOf.data() + idx.inPtr[u];
        if (out.size() != idx.inPtr[u + 1] - idx.inPtr[u] ||
            !std::equal(out.begin(), out.end(), in))
            return false;
    }
    return true;
}

EdgeId
CsrGraph::numSelfLoops() const
{
    EdgeId count = 0;
    for (NodeId u = 0; u < numNodes(); ++u)
        if (hasEdge(u, u))
            count++;
    return count;
}

CsrGraph
CsrGraph::permuted(const std::vector<NodeId> &perm) const
{
    assert(perm.size() == numNodes());
    std::vector<Edge> edges;
    edges.reserve(numEdges());
    for (NodeId u = 0; u < numNodes(); ++u)
        for (NodeId v : neighbors(u))
            edges.emplace_back(perm[u], perm[v]);
    return fromEdges(numNodes(), edges, /*symmetrize=*/false,
                     /*keep_self_loops=*/true);
}

std::vector<Edge>
CsrGraph::toEdges() const
{
    std::vector<Edge> edges;
    edges.reserve(numEdges());
    for (NodeId u = 0; u < numNodes(); ++u)
        for (NodeId v : neighbors(u))
            edges.emplace_back(u, v);
    return edges;
}

std::vector<EdgeId>
degreeHistogram(const CsrGraph &g)
{
    std::vector<EdgeId> hist(g.maxDegree() + 1, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        hist[g.degree(v)]++;
    return hist;
}

std::pair<std::vector<NodeId>, NodeId>
connectedComponents(const CsrGraph &g)
{
    const NodeId n = g.numNodes();
    constexpr NodeId kUnseen = ~NodeId{0};
    std::vector<NodeId> comp(n, kUnseen);
    std::vector<NodeId> stack;
    NodeId num_comps = 0;
    for (NodeId start = 0; start < n; ++start) {
        if (comp[start] != kUnseen)
            continue;
        comp[start] = num_comps;
        stack.push_back(start);
        while (!stack.empty()) {
            NodeId u = stack.back();
            stack.pop_back();
            for (NodeId v : g.neighbors(u)) {
                if (comp[v] == kUnseen) {
                    comp[v] = num_comps;
                    stack.push_back(v);
                }
            }
        }
        num_comps++;
    }
    return {std::move(comp), num_comps};
}

bool
isPermutation(const std::vector<NodeId> &perm)
{
    std::vector<bool> seen(perm.size(), false);
    for (NodeId p : perm) {
        if (p >= perm.size() || seen[p])
            return false;
        seen[p] = true;
    }
    return true;
}

std::vector<NodeId>
inversePermutation(const std::vector<NodeId> &perm)
{
    std::vector<NodeId> inv(perm.size());
    for (NodeId v = 0; v < perm.size(); ++v)
        inv[perm[v]] = v;
    return inv;
}

} // namespace igcn
