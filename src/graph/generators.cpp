#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace igcn {

HubIslandGraph
hubAndIslandGraph(const HubIslandParams &params)
{
    Rng rng(params.seed);
    const NodeId n = params.numNodes;
    auto num_hubs =
        std::max<NodeId>(1, static_cast<NodeId>(n * params.hubFraction));
    if (num_hubs > n)
        num_hubs = n;

    // Provisional ids: hubs occupy [0, num_hubs), island nodes follow.
    // A final shuffle hides this layout.
    std::vector<NodeId> island_of(n, HubIslandGraph::kNoIsland);
    std::vector<bool> is_hub(n, false);
    for (NodeId h = 0; h < num_hubs; ++h)
        is_hub[h] = true;

    // Carve island nodes into islands of size uniform in [2, 2*mean).
    std::vector<std::vector<NodeId>> islands;
    NodeId next = num_hubs;
    while (next < n) {
        NodeId size = 2 + static_cast<NodeId>(rng.nextBounded(
            std::max<NodeId>(1, 2 * params.meanIslandSize - 2)));
        size = std::min<NodeId>(size, n - next);
        std::vector<NodeId> members(size);
        std::iota(members.begin(), members.end(), next);
        for (NodeId m : members)
            island_of[m] = static_cast<NodeId>(islands.size());
        next += size;
        islands.push_back(std::move(members));
    }

    std::vector<Edge> edges;

    // Intra-island edges: Bernoulli over all pairs, plus a spanning
    // path to guarantee each island is connected.
    for (const auto &members : islands) {
        for (size_t i = 1; i < members.size(); ++i)
            edges.emplace_back(members[i - 1], members[i]);
        for (size_t i = 0; i < members.size(); ++i) {
            for (size_t j = i + 1; j < members.size(); ++j) {
                if (rng.nextBool(params.intraIslandProb))
                    edges.emplace_back(members[i], members[j]);
            }
        }
    }

    // Island-to-hub attachments: each island selects a small set of
    // hubs (power-law popularity) that its members share. Shared hubs
    // give hubs clearly dominant degree and create the dense hub
    // columns in the island bitmaps (Figure 7's node H).
    for (const auto &members : islands) {
        auto num_attach = static_cast<int>(params.hubsPerIsland);
        if (rng.nextDouble() <
            params.hubsPerIsland - std::floor(params.hubsPerIsland))
            num_attach++;
        num_attach = std::max(num_attach, 1);
        std::vector<NodeId> island_hubs;
        for (int a = 0; a < num_attach; ++a)
            island_hubs.push_back(static_cast<NodeId>(
                rng.nextPowerLaw(1, num_hubs, params.hubPopularityExp) -
                1));
        bool island_linked = false;
        for (NodeId m : members) {
            for (NodeId hub : island_hubs) {
                if (rng.nextBool(params.hubAttachProb)) {
                    edges.emplace_back(m, hub);
                    island_linked = true;
                }
            }
        }
        // Every island keeps at least one hub link so no island is an
        // isolated component.
        if (!island_linked && !members.empty())
            edges.emplace_back(members[0], island_hubs[0]);
    }

    // Hub-hub edges.
    auto hub_hub_edges =
        static_cast<EdgeId>(num_hubs * params.hubHubDegree / 2.0);
    for (EdgeId e = 0; e < hub_hub_edges; ++e) {
        NodeId h1 = static_cast<NodeId>(
            rng.nextPowerLaw(1, num_hubs, params.hubPopularityExp) - 1);
        NodeId h2 = static_cast<NodeId>(rng.nextBounded(num_hubs));
        if (h1 != h2)
            edges.emplace_back(h1, h2);
    }

    // Weaken community structure by rewiring a fraction of the
    // intra-island edges to uniformly random targets.
    if (params.communityStrength < 1.0) {
        double rewire_p = 1.0 - params.communityStrength;
        for (auto &[u, v] : edges) {
            bool intra = island_of[u] != HubIslandGraph::kNoIsland &&
                         island_of[u] == island_of[v];
            if (intra && rng.nextBool(rewire_p))
                v = static_cast<NodeId>(rng.nextBounded(n));
        }
    }

    // Shuffle node ids (Fisher-Yates) so structure is hidden.
    std::vector<NodeId> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (NodeId i = n; i > 1; --i)
        std::swap(perm[i - 1], perm[rng.nextBounded(i)]);

    std::vector<Edge> shuffled;
    shuffled.reserve(edges.size());
    for (const auto &[u, v] : edges)
        shuffled.emplace_back(perm[u], perm[v]);

    HubIslandGraph out;
    out.graph = CsrGraph::fromEdges(n, shuffled, /*symmetrize=*/true);
    out.islandOf.assign(n, HubIslandGraph::kNoIsland);
    out.isHub.assign(n, false);
    for (NodeId v = 0; v < n; ++v) {
        out.islandOf[perm[v]] = island_of[v];
        out.isHub[perm[v]] = is_hub[v];
    }
    out.numIslands = static_cast<NodeId>(islands.size());
    return out;
}

CsrGraph
erdosRenyi(NodeId num_nodes, double avg_degree, uint64_t seed)
{
    Rng rng(seed);
    auto num_edges =
        static_cast<EdgeId>(num_nodes * avg_degree / 2.0);
    std::vector<Edge> edges;
    edges.reserve(num_edges);
    for (EdgeId e = 0; e < num_edges; ++e) {
        NodeId u = static_cast<NodeId>(rng.nextBounded(num_nodes));
        NodeId v = static_cast<NodeId>(rng.nextBounded(num_nodes));
        if (u != v)
            edges.emplace_back(u, v);
    }
    return CsrGraph::fromEdges(num_nodes, edges, /*symmetrize=*/true);
}

CsrGraph
rmat(NodeId num_nodes, EdgeId num_edges, double a, double b, double c,
     uint64_t seed)
{
    Rng rng(seed);
    int scale = 0;
    while ((NodeId{1} << scale) < num_nodes)
        scale++;
    std::vector<Edge> edges;
    edges.reserve(num_edges);
    for (EdgeId e = 0; e < num_edges; ++e) {
        NodeId u = 0, v = 0;
        for (int bit = 0; bit < scale; ++bit) {
            // Seeded-Rng draw, not an accumulator; serial generator.
            // igcn-lint: allow(no-mixed-accumulation)
            double r = rng.nextDouble();
            if (r < a) {
                // upper-left quadrant: no bits set
            } else if (r < a + b) {
                v |= NodeId{1} << bit;
            } else if (r < a + b + c) {
                u |= NodeId{1} << bit;
            } else {
                u |= NodeId{1} << bit;
                v |= NodeId{1} << bit;
            }
        }
        if (u < num_nodes && v < num_nodes && u != v)
            edges.emplace_back(u, v);
    }
    return CsrGraph::fromEdges(num_nodes, edges, /*symmetrize=*/true);
}

CsrGraph
barabasiAlbert(NodeId num_nodes, int m, uint64_t seed)
{
    if (m < 1)
        throw std::invalid_argument("m must be >= 1");
    Rng rng(seed);
    std::vector<Edge> edges;
    // Endpoint pool: picking a uniform entry is degree-proportional.
    std::vector<NodeId> pool;
    const NodeId seed_nodes =
        std::min<NodeId>(num_nodes, static_cast<NodeId>(m) + 1);
    for (NodeId u = 0; u < seed_nodes; ++u)
        for (NodeId v = u + 1; v < seed_nodes; ++v) {
            edges.emplace_back(u, v);
            pool.push_back(u);
            pool.push_back(v);
        }
    for (NodeId v = seed_nodes; v < num_nodes; ++v) {
        for (int a = 0; a < m; ++a) {
            NodeId target =
                pool[rng.nextBounded(pool.size())];
            if (target == v)
                continue;
            edges.emplace_back(v, target);
            pool.push_back(v);
            pool.push_back(target);
        }
    }
    return CsrGraph::fromEdges(num_nodes, edges, /*symmetrize=*/true);
}

CsrGraph
wattsStrogatz(NodeId num_nodes, int k, double beta, uint64_t seed)
{
    if (k < 1)
        throw std::invalid_argument("k must be >= 1");
    Rng rng(seed);
    std::vector<Edge> edges;
    for (NodeId u = 0; u < num_nodes; ++u) {
        for (int j = 1; j <= k; ++j) {
            NodeId v = (u + j) % num_nodes;
            if (rng.nextBool(beta))
                v = static_cast<NodeId>(rng.nextBounded(num_nodes));
            if (u != v)
                edges.emplace_back(u, v);
        }
    }
    return CsrGraph::fromEdges(num_nodes, edges, /*symmetrize=*/true);
}

CsrGraph
pathGraph(NodeId num_nodes)
{
    std::vector<Edge> edges;
    for (NodeId v = 1; v < num_nodes; ++v)
        edges.emplace_back(v - 1, v);
    return CsrGraph::fromEdges(num_nodes, edges, /*symmetrize=*/true);
}

CsrGraph
starGraph(NodeId num_nodes)
{
    std::vector<Edge> edges;
    for (NodeId v = 1; v < num_nodes; ++v)
        edges.emplace_back(0, v);
    return CsrGraph::fromEdges(num_nodes, edges, /*symmetrize=*/true);
}

CsrGraph
completeGraph(NodeId num_nodes)
{
    std::vector<Edge> edges;
    for (NodeId u = 0; u < num_nodes; ++u)
        for (NodeId v = u + 1; v < num_nodes; ++v)
            edges.emplace_back(u, v);
    return CsrGraph::fromEdges(num_nodes, edges, /*symmetrize=*/true);
}

} // namespace igcn
