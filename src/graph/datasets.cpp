#include "graph/datasets.hpp"

#include <cmath>
#include <stdexcept>

namespace igcn {

namespace {

/** Generator parameters per dataset, tuned to the published stats. */
struct DatasetRecipe
{
    DatasetInfo info;
    HubIslandParams gen;
};

DatasetRecipe
recipeFor(Dataset d)
{
    DatasetRecipe r;
    switch (d) {
      case Dataset::Cora:
        r.info = {"Cora", "CR", 2708, 10556, 1433, 7, 0.0127, 0.99};
        r.gen.hubFraction = 0.01;
        r.gen.meanIslandSize = 5;
        r.gen.intraIslandProb = 0.70;
        r.gen.hubsPerIsland = 1.4;
        r.gen.hubAttachProb = 0.55;
        r.gen.hubPopularityExp = 1.15;
        r.gen.hubHubDegree = 2.0;
        r.gen.seed = 0xC0FA;
        break;
      case Dataset::Citeseer:
        r.info = {"Citeseer", "CS", 3327, 9104, 3703, 6, 0.0085, 0.99};
        r.gen.hubFraction = 0.01;
        r.gen.meanIslandSize = 4;
        r.gen.intraIslandProb = 0.75;
        r.gen.hubsPerIsland = 1.2;
        r.gen.hubAttachProb = 0.50;
        r.gen.hubPopularityExp = 1.15;
        r.gen.hubHubDegree = 1.5;
        r.gen.seed = 0xC17E;
        break;
      case Dataset::Pubmed:
        r.info = {"Pubmed", "PM", 19717, 88648, 500, 3, 0.10, 0.995};
        r.gen.hubFraction = 0.008;
        r.gen.meanIslandSize = 7;
        r.gen.intraIslandProb = 0.70;
        r.gen.hubsPerIsland = 1.6;
        r.gen.hubAttachProb = 0.60;
        r.gen.hubPopularityExp = 1.05;
        r.gen.hubHubDegree = 3.0;
        r.gen.seed = 0x9B3D;
        break;
      case Dataset::Nell:
        // NELL: extreme sparsity and skew, very strong components.
        r.info = {"Nell", "NE", 65755, 251550, 61278, 186, 0.0001, 1.0};
        r.gen.hubFraction = 0.0075;
        r.gen.meanIslandSize = 5;
        r.gen.intraIslandProb = 0.75;
        r.gen.hubsPerIsland = 1.2;
        r.gen.hubAttachProb = 0.50;
        r.gen.hubPopularityExp = 1.10;
        r.gen.hubHubDegree = 2.0;
        r.gen.seed = 0x4E11;
        break;
      case Dataset::NellSmall:
        // ~1/10-node NELL stand-in at the tentpole density (0.01):
        // same generator shape and skew as Nell, feature width cut so
        // a dense X (6576 x 6128 floats, ~154 MiB) is still buildable
        // for differential sparse-vs-dense tests while the CSR form
        // is ~100x smaller.
        r.info = {"NellSmall", "NS", 6576, 25155, 6128, 19, 0.01, 1.0};
        r.gen.hubFraction = 0.0075;
        r.gen.meanIslandSize = 5;
        r.gen.intraIslandProb = 0.75;
        r.gen.hubsPerIsland = 1.2;
        r.gen.hubAttachProb = 0.50;
        r.gen.hubPopularityExp = 1.10;
        r.gen.hubHubDegree = 2.0;
        r.gen.seed = 0x4E12;
        break;
      case Dataset::Reddit:
        // Scaled from 114M to ~23M directed edges (DESIGN.md sec. 2);
        // weak community structure per the paper's Reddit remark.
        r.info = {"Reddit", "RD", 232965, 23200000, 602, 41, 1.0, 0.995};
        r.gen.hubFraction = 0.01;
        r.gen.meanIslandSize = 12;
        r.gen.intraIslandProb = 0.80;
        r.gen.hubsPerIsland = 36.0;
        r.gen.hubAttachProb = 0.75;
        r.gen.hubPopularityExp = 1.05;
        r.gen.hubHubDegree = 30.0;
        r.gen.seed = 0x8EDD;
        break;
      default:
        throw std::invalid_argument("unknown dataset");
    }
    return r;
}

} // namespace

const DatasetInfo &
datasetInfo(Dataset d)
{
    static const DatasetInfo infos[] = {
        recipeFor(Dataset::Cora).info,
        recipeFor(Dataset::Citeseer).info,
        recipeFor(Dataset::Pubmed).info,
        recipeFor(Dataset::Nell).info,
        recipeFor(Dataset::Reddit).info,
        recipeFor(Dataset::NellSmall).info,
    };
    return infos[static_cast<int>(d)];
}

DatasetGraph
buildDataset(Dataset d, double scale)
{
    if (scale <= 0.0 || scale > 1.0)
        throw std::invalid_argument("scale must be in (0, 1]");
    DatasetRecipe r = recipeFor(d);
    auto scaled_nodes = static_cast<NodeId>(
        std::max(16.0, std::round(r.info.numNodes * scale)));
    r.gen.numNodes = scaled_nodes;
    r.gen.communityStrength = r.info.communityStrength;

    DatasetGraph out;
    out.info = r.info;
    out.info.numNodes = scaled_nodes;
    out.info.targetDirectedEdges = static_cast<EdgeId>(
        r.info.targetDirectedEdges * scale);
    out.graph = hubAndIslandGraph(r.gen).graph;
    out.featureNnz = static_cast<EdgeId>(
        static_cast<double>(scaled_nodes) * r.info.numFeatures *
        r.info.featureDensity);
    return out;
}

} // namespace igcn
