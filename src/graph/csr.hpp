/**
 * @file
 * Compressed Sparse Row graph representation.
 *
 * The CSR graph is the substrate every other module builds on: the
 * islandization algorithms traverse it, the SpMM kernels interpret it
 * as the adjacency matrix A, and the accelerator timing models derive
 * op and traffic counts from it.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "runtime/thread_annotations.hpp"

namespace igcn {

using NodeId = uint32_t;
using EdgeId = uint64_t;

/** A directed edge (src, dst). Undirected graphs store both arcs. */
using Edge = std::pair<NodeId, NodeId>;

/**
 * Thread-safe lazily built adjunct slot for derived indexes (the CSC
 * view of a CSR matrix, the in-edge index of a graph). get(build)
 * constructs the value exactly once — concurrent first callers
 * serialize on the slot's mutex and all see the same object — and
 * returns a reference that stays valid until invalidate().
 *
 * An adjunct is derived state, never identity: copies of the owner
 * start with an empty slot (cheaper to rebuild than to keep
 * consistent), copy-assignment drops the target's built value so a
 * reassigned owner cannot serve a stale index, and equality ignores
 * the slot entirely. Moves *transfer* the built value — the
 * destination receives exactly the arrays the adjunct describes —
 * and leave the source slot empty, so a moved-from owner can never
 * serve an index for contents it no longer has. invalidate() must
 * not race with readers holding a reference — the same rule as
 * mutating the owning container itself.
 */
template <typename T>
class LazyAdjunct
{
  public:
    LazyAdjunct() = default;
    LazyAdjunct(const LazyAdjunct &) noexcept {}
    LazyAdjunct(LazyAdjunct &&other) noexcept { stealFrom(other); }
    LazyAdjunct &
    operator=(const LazyAdjunct &) noexcept
    {
        invalidate();
        return *this;
    }
    LazyAdjunct &
    operator=(LazyAdjunct &&other) noexcept
    {
        if (this != &other)
            stealFrom(other);
        return *this;
    }

    /** Adjuncts never participate in the owner's equality. */
    bool operator==(const LazyAdjunct &) const { return true; }

    /** The built value, constructing it via build() exactly once. */
    template <typename BuildFn>
    const T &
    get(BuildFn &&build) const
    {
        // Lock-free once built: per-element accessors (inNeighbors,
        // inDegree) call get() per query, so the steady-state path
        // must not serialize parallel traversals on the mutex.
        if (const T *p = built.load(std::memory_order_acquire))
            return *p;
        MutexLock lock(mutex);
        if (!value) {
            value = std::make_unique<T>(build());
            built.store(value.get(), std::memory_order_release);
        }
        return *value;
    }

    /** Drop the built value; the next get() rebuilds. */
    void
    invalidate() const
    {
        MutexLock lock(mutex);
        built.store(nullptr, std::memory_order_release);
        value.reset();
    }

  private:
    // Opted out of the thread-safety analysis: std::scoped_lock over
    // two capabilities (deadlock-free by construction — moves are
    // never concurrent with each other on the same pair) is beyond
    // what the analysis models.
    void
    stealFrom(LazyAdjunct &other) IGCN_NO_THREAD_SAFETY_ANALYSIS
    {
        std::scoped_lock lock(mutex, other.mutex);
        value = std::move(other.value);
        built.store(value.get(), std::memory_order_release);
        other.built.store(nullptr, std::memory_order_release);
    }

    mutable Mutex mutex;
    mutable std::atomic<const T *> built{nullptr};
    mutable std::unique_ptr<T> value IGCN_GUARDED_BY(mutex);
};

/**
 * Counting-sort transpose of a CSR index (row_ptr, col_idx) with
 * num_cols columns: fills out_ptr (size num_cols + 1) and out_idx
 * with the same entries grouped by column; entries within a column
 * come out in ascending row order because rows are swept ascending.
 * When values and out_val are supplied, the per-entry payload is
 * carried to the transposed slot. An empty row_ptr (moved-from
 * container) is treated as zero rows, yielding an empty but
 * well-formed index. Shared by CsrGraph::inEdges() and
 * CsrMatrix::csc() so there is exactly one build loop to maintain.
 */
void transposeCsrIndex(NodeId num_cols,
                       const std::vector<EdgeId> &row_ptr,
                       const std::vector<NodeId> &col_idx,
                       std::vector<EdgeId> &out_ptr,
                       std::vector<NodeId> &out_idx,
                       const std::vector<float> *values = nullptr,
                       std::vector<float> *out_val = nullptr);

/**
 * Immutable CSR graph. Neighbor lists are sorted by destination id
 * and contain no duplicates; self loops are allowed only when
 * explicitly requested by the builder.
 */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Build from an arbitrary edge list.
     *
     * @param num_nodes   number of nodes (ids in [0, num_nodes))
     * @param edges       directed edge list; duplicates are removed
     * @param symmetrize  if true, insert the reverse of every edge
     * @param keep_self_loops if false, drop (v, v) edges
     */
    [[nodiscard]] static CsrGraph fromEdges(NodeId num_nodes,
                              const std::vector<Edge> &edges,
                              bool symmetrize = true,
                              bool keep_self_loops = false);

    /**
     * Adopt prebuilt CSR arrays directly (the O(E) path for callers
     * that already produce sorted, deduplicated adjacency — subgraph
     * extraction, merge-based edge insertion). Invariants are
     * validated in O(E): row_ptr starts at 0, is monotone, and ends
     * at col_idx.size(); every row's columns are strictly ascending
     * and < numNodes.
     *
     * @throws std::invalid_argument on any violation.
     */
    [[nodiscard]] static CsrGraph fromCsrArrays(std::vector<EdgeId> row_ptr,
                                  std::vector<NodeId> col_idx);

    /**
     * Copy of this graph with undirected edges added (both arcs).
     * Duplicates within `added` and edges already present are
     * absorbed; self loops are dropped; endpoints must be in range.
     * A per-row merge of the existing sorted adjacency with the
     * sorted new arcs — O(E + k log k) for k added edges, no
     * edge-list rebuild — the steady-state mutation path of the
     * online serving subsystem.
     */
    [[nodiscard]] CsrGraph withAddedEdges(std::span<const Edge> added) const;

    /**
     * Copy of this graph with undirected edges removed (both arcs; a
     * self loop (v, v) is the single arc). The merge-based mirror of
     * withAddedEdges — a per-row sweep of the sorted adjacency
     * dropping the sorted removal arcs, O(E + k log k) for k removed
     * edges — the steady-state deletion path of the online serving
     * subsystem. Duplicate edges (and both orientations of one edge)
     * within `removed` collapse to a single removal, the same
     * set-semantics withAddedEdges gives duplicates. Every requested
     * edge must actually be present: a nonexistent edge throws
     * std::invalid_argument naming the edge (the serving layer
     * screens its spans against hasEdge first; the graph API itself
     * is strict so silent divergence between a caller's view and the
     * graph cannot pass unnoticed). Endpoints out of range throw
     * std::out_of_range.
     */
    [[nodiscard]] CsrGraph withRemovedEdges(std::span<const Edge> removed) const;

    /**
     * Copy of this graph with `fresh` edges added and `stale` edges
     * removed in ONE per-row merge sweep — the mixed-span epoch-build
     * path of the online serving subsystem, which previously paid for
     * withAddedEdges followed by withRemovedEdges (two full CSR
     * rebuilds). Exactly equivalent to that two-pass composition for
     * disjoint spans, with the same strict contracts: fresh edges
     * follow withAddedEdges semantics (both arcs, duplicates and
     * already-present absorbed, self loops dropped), stale edges
     * follow withRemovedEdges semantics (every requested edge must be
     * present or std::invalid_argument names it). An edge appearing
     * in both spans (either orientation) is an ambiguous edit and
     * throws std::invalid_argument — the UpdateApplier's last-write-
     * wins coalescing guarantees disjoint presence-changing spans
     * before calling in. Endpoints out of range throw
     * std::out_of_range. O(E + k log k) for k edited edges.
     */
    [[nodiscard]] CsrGraph withEditedEdges(std::span<const Edge> fresh,
                             std::span<const Edge> stale) const;

    /**
     * Number of nodes. A graph whose rowPtr is empty (moved-from, or
     * otherwise never built) reports 0 instead of underflowing
     * rowPtr.size() - 1 to 0xFFFFFFFF.
     */
    NodeId
    numNodes() const
    {
        return rowPtr.empty() ? 0
                              : static_cast<NodeId>(rowPtr.size() - 1);
    }

    /** Number of stored (directed) edges. */
    EdgeId numEdges() const { return static_cast<EdgeId>(colIdx.size()); }

    /** Out-degree of node v. */
    NodeId
    degree(NodeId v) const
    {
        return static_cast<NodeId>(rowPtr[v + 1] - rowPtr[v]);
    }

    /** Sorted neighbor list of node v. */
    std::span<const NodeId>
    neighbors(NodeId v) const
    {
        return {colIdx.data() + rowPtr[v],
                colIdx.data() + rowPtr[v + 1]};
    }

    /**
     * In-edge (reverse adjacency) index: inPtr[v]..inPtr[v+1] spans
     * the sources of edges into v, sorted ascending. Built lazily on
     * first use and cached on the graph (thread-safe one-time
     * construction), so repeated in-edge traversals never rebuild it.
     */
    struct InEdgeIndex
    {
        std::vector<EdgeId> inPtr; ///< size numNodes + 1
        std::vector<NodeId> srcOf; ///< source node per in-edge
    };

    /** The cached in-edge index (lazily built, shared by reference). */
    const InEdgeIndex &inEdges() const;

    /** Sorted list of nodes with an edge into v. */
    std::span<const NodeId>
    inNeighbors(NodeId v) const
    {
        const InEdgeIndex &idx = inEdges();
        return {idx.srcOf.data() + idx.inPtr[v],
                idx.srcOf.data() + idx.inPtr[v + 1]};
    }

    /** In-degree of node v. */
    NodeId
    inDegree(NodeId v) const
    {
        const InEdgeIndex &idx = inEdges();
        return static_cast<NodeId>(idx.inPtr[v + 1] - idx.inPtr[v]);
    }

    /** True if (u, v) is an edge. O(log degree(u)). */
    bool hasEdge(NodeId u, NodeId v) const;

    /** Maximum degree over all nodes. */
    NodeId maxDegree() const;

    /** Average degree. */
    double avgDegree() const;

    /** True if for every edge (u, v) the edge (v, u) also exists. */
    bool isSymmetric() const;

    /** Number of self loops stored. */
    EdgeId numSelfLoops() const;

    /**
     * Relabel nodes: node v becomes position perm[v] in the new
     * graph (perm is a bijection on [0, numNodes)).
     */
    [[nodiscard]] CsrGraph permuted(const std::vector<NodeId> &perm) const;

    /** Full directed edge list (u, v) in row order. */
    std::vector<Edge> toEdges() const;

    /** Row pointer array (size numNodes + 1). */
    const std::vector<EdgeId> &rows() const { return rowPtr; }

    /** Column index array (size numEdges). */
    const std::vector<NodeId> &cols() const { return colIdx; }

    /**
     * Source node of arc slot e — the row whose rowPtr span contains
     * position e of cols() — so (arcSource(e), cols()[e]) is the
     * e-th stored arc. O(log numNodes). Lets callers sample edges
     * uniformly by arc slot (the trace generator's deletion events).
     * @throws std::out_of_range when e >= numEdges().
     */
    NodeId arcSource(EdgeId e) const;

    bool operator==(const CsrGraph &other) const = default;

  private:
    std::vector<EdgeId> rowPtr{0};
    std::vector<NodeId> colIdx;
    LazyAdjunct<InEdgeIndex> inEdgeCache;
};

/**
 * Receptive field of a micro-batch: the L-hop neighborhood of a set
 * of target nodes, relabeled to a compact sub-CSR.
 *
 * Local ids are assigned by ascending *global* id, so each local
 * row's neighbor list preserves the global neighbor order exactly —
 * a forward pass over `sub` accumulates every row in the same order
 * as the whole-graph pass, which is what makes batched L-hop
 * inference bit-identical to whole-graph inference for the targets
 * (see subgraphForward in gcn/layer.hpp).
 */
struct LHopSubgraph
{
    /** Subgraph nodes as ascending global ids; local id = position. */
    std::vector<NodeId> nodes;
    /** Local id of each requested target, in request order. */
    std::vector<NodeId> targetLocal;
    /** Induced subgraph over `nodes`, in local ids. */
    CsrGraph sub;
};

/**
 * The L-hop node set alone: ascending global ids of every node
 * within `hops` of a target. Cheap relative to the sub-CSR build —
 * callers that may fall back to a whole-graph pass (the serving
 * engine's wholeGraphFraction check) decide on this before paying
 * for inducedSubgraph.
 */
std::vector<NodeId> lHopNodeSet(const CsrGraph &g,
                                std::span<const NodeId> targets,
                                int hops);

/**
 * Build the induced sub-CSR over `nodes` (ascending global ids, as
 * produced by lHopNodeSet) and bind `targets` (each must be in
 * `nodes`; duplicates allowed, one targetLocal entry per occurrence).
 */
LHopSubgraph inducedSubgraph(const CsrGraph &g,
                             std::vector<NodeId> nodes,
                             std::span<const NodeId> targets);

/**
 * Extract the L-hop receptive subgraph of `targets` (duplicates
 * allowed; each occurrence gets a targetLocal entry). hops = L means
 * every node within distance L of a target is included, which is
 * exactly the input set an L-layer GCN needs to reproduce the
 * targets' outputs: after layer l, all nodes within distance L - l
 * of a target have full-graph-exact values, so after L layers the
 * targets do. Equivalent to inducedSubgraph over lHopNodeSet.
 */
LHopSubgraph extractLHopSubgraph(const CsrGraph &g,
                                 std::span<const NodeId> targets,
                                 int hops);

/** Histogram of node degrees: result[d] = number of nodes of degree d. */
std::vector<EdgeId> degreeHistogram(const CsrGraph &g);

/**
 * Connected components of an undirected graph.
 * @return component id per node, and the number of components.
 */
std::pair<std::vector<NodeId>, NodeId>
connectedComponents(const CsrGraph &g);

/** True if perm is a bijection on [0, n). */
bool isPermutation(const std::vector<NodeId> &perm);

/** Inverse of a permutation. */
std::vector<NodeId> inversePermutation(const std::vector<NodeId> &perm);

} // namespace igcn
