/**
 * @file
 * Compressed Sparse Row graph representation.
 *
 * The CSR graph is the substrate every other module builds on: the
 * islandization algorithms traverse it, the SpMM kernels interpret it
 * as the adjacency matrix A, and the accelerator timing models derive
 * op and traffic counts from it.
 */

#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace igcn {

using NodeId = uint32_t;
using EdgeId = uint64_t;

/** A directed edge (src, dst). Undirected graphs store both arcs. */
using Edge = std::pair<NodeId, NodeId>;

/**
 * Immutable CSR graph. Neighbor lists are sorted by destination id
 * and contain no duplicates; self loops are allowed only when
 * explicitly requested by the builder.
 */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Build from an arbitrary edge list.
     *
     * @param num_nodes   number of nodes (ids in [0, num_nodes))
     * @param edges       directed edge list; duplicates are removed
     * @param symmetrize  if true, insert the reverse of every edge
     * @param keep_self_loops if false, drop (v, v) edges
     */
    static CsrGraph fromEdges(NodeId num_nodes,
                              const std::vector<Edge> &edges,
                              bool symmetrize = true,
                              bool keep_self_loops = false);

    /** Number of nodes. */
    NodeId numNodes() const { return static_cast<NodeId>(rowPtr.size() - 1); }

    /** Number of stored (directed) edges. */
    EdgeId numEdges() const { return static_cast<EdgeId>(colIdx.size()); }

    /** Out-degree of node v. */
    NodeId
    degree(NodeId v) const
    {
        return static_cast<NodeId>(rowPtr[v + 1] - rowPtr[v]);
    }

    /** Sorted neighbor list of node v. */
    std::span<const NodeId>
    neighbors(NodeId v) const
    {
        return {colIdx.data() + rowPtr[v],
                colIdx.data() + rowPtr[v + 1]};
    }

    /** True if (u, v) is an edge. O(log degree(u)). */
    bool hasEdge(NodeId u, NodeId v) const;

    /** Maximum degree over all nodes. */
    NodeId maxDegree() const;

    /** Average degree. */
    double avgDegree() const;

    /** True if for every edge (u, v) the edge (v, u) also exists. */
    bool isSymmetric() const;

    /** Number of self loops stored. */
    EdgeId numSelfLoops() const;

    /**
     * Relabel nodes: node v becomes position perm[v] in the new
     * graph (perm is a bijection on [0, numNodes)).
     */
    CsrGraph permuted(const std::vector<NodeId> &perm) const;

    /** Full directed edge list (u, v) in row order. */
    std::vector<Edge> toEdges() const;

    /** Row pointer array (size numNodes + 1). */
    const std::vector<EdgeId> &rows() const { return rowPtr; }

    /** Column index array (size numEdges). */
    const std::vector<NodeId> &cols() const { return colIdx; }

    bool operator==(const CsrGraph &other) const = default;

  private:
    std::vector<EdgeId> rowPtr{0};
    std::vector<NodeId> colIdx;
};

/** Histogram of node degrees: result[d] = number of nodes of degree d. */
std::vector<EdgeId> degreeHistogram(const CsrGraph &g);

/**
 * Connected components of an undirected graph.
 * @return component id per node, and the number of components.
 */
std::pair<std::vector<NodeId>, NodeId>
connectedComponents(const CsrGraph &g);

/** True if perm is a bijection on [0, n). */
bool isPermutation(const std::vector<NodeId> &perm);

/** Inverse of a permutation. */
std::vector<NodeId> inversePermutation(const std::vector<NodeId> &perm);

} // namespace igcn
