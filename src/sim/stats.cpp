#include "sim/stats.hpp"

#include <sstream>

namespace igcn {

double
StatsRegistry::get(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0.0 : it->second;
}

bool
StatsRegistry::has(const std::string &name) const
{
    return counters.count(name) > 0;
}

std::string
StatsRegistry::toString() const
{
    std::ostringstream out;
    for (const auto &[name, value] : counters)
        out << name << " " << value << "\n";
    return out.str();
}

} // namespace igcn
