/**
 * @file
 * Named statistics registry for simulation components, in the spirit
 * of gem5's stats package: components register counters by name; the
 * harness prints them uniformly.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace igcn {

/** A flat registry of named double-valued statistics. */
class StatsRegistry
{
  public:
    /** Add delta to the named counter (creating it at zero). */
    void
    add(const std::string &name, double delta)
    {
        counters[name] += delta;
    }

    /** Set the named counter. */
    void
    set(const std::string &name, double value)
    {
        counters[name] = value;
    }

    /** Value of a counter (0 if absent). */
    double get(const std::string &name) const;

    /** True if the counter exists. */
    bool has(const std::string &name) const;

    /** All counters, sorted by name. */
    const std::map<std::string, double> &all() const { return counters; }

    /** Render as "name value" lines. */
    std::string toString() const;

  private:
    std::map<std::string, double> counters;
};

} // namespace igcn
