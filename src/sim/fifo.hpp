/**
 * @file
 * Bounded FIFO queue used by the pipeline models (task queues, hub
 * buffers, loop-back node-degree buffers).
 */

#pragma once

#include <cstddef>
#include <deque>
#include <optional>

namespace igcn {

/** Bounded FIFO with occupancy high-water tracking. */
template <typename T>
class BoundedFifo
{
  public:
    explicit BoundedFifo(size_t capacity) : cap(capacity) {}

    bool full() const { return items.size() >= cap; }
    bool empty() const { return items.empty(); }
    size_t size() const { return items.size(); }
    size_t capacity() const { return cap; }
    size_t highWater() const { return maxOccupancy; }

    /** Push; @return false if full. */
    bool
    push(T item)
    {
        if (full())
            return false;
        items.push_back(std::move(item));
        if (items.size() > maxOccupancy)
            maxOccupancy = items.size();
        return true;
    }

    /** Pop front element if any. */
    std::optional<T>
    pop()
    {
        if (items.empty())
            return std::nullopt;
        T item = std::move(items.front());
        items.pop_front();
        return item;
    }

  private:
    std::deque<T> items;
    size_t cap;
    size_t maxOccupancy = 0;
};

} // namespace igcn
