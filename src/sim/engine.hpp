/**
 * @file
 * Discrete-event simulation engine.
 *
 * The accelerator timing models are transaction-level: components
 * schedule work as timed events rather than ticking every cycle,
 * which is what makes Reddit-scale runs (10^10 equivalent cycles)
 * simulatable in seconds. Events at equal timestamps execute in
 * scheduling order (deterministic).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace igcn {

/** Simulated time, in accelerator clock cycles. */
using Cycles = uint64_t;

/** Discrete-event engine with a monotonically advancing clock. */
class SimEngine
{
  public:
    /** Current simulated time. */
    Cycles now() const { return currentTime; }

    /** Schedule fn at now() + delay. */
    void
    schedule(Cycles delay, std::function<void()> fn)
    {
        queue.push(Event{currentTime + delay, nextSeq++, std::move(fn)});
    }

    /** Run until the event queue drains. @return final time. */
    Cycles
    run()
    {
        while (!queue.empty()) {
            // Copy out before pop: the handler may schedule new events.
            Event ev = queue.top();
            queue.pop();
            currentTime = ev.time;
            ev.fn();
        }
        return currentTime;
    }

    /** Number of events executed so far. */
    uint64_t eventsExecuted() const { return nextSeq; }

  private:
    struct Event
    {
        Cycles time;
        uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Event &o) const
        {
            if (time != o.time)
                return time > o.time;
            return seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
    Cycles currentTime = 0;
    uint64_t nextSeq = 0;
};

} // namespace igcn
