/**
 * @file
 * Off-chip memory (DRAM) bandwidth model.
 *
 * Models a shared memory channel as a bandwidth-limited resource with
 * burst-granularity accounting: a request occupies the channel for
 * bytes / bytes_per_cycle, scaled by an efficiency factor that
 * penalizes random (non-streaming) access patterns, and completes no
 * earlier than the channel's previous requests. This captures the
 * phenomenon the paper's Table 1 is about — irregular accesses to the
 * feature/result matrices saturate off-chip bandwidth — without
 * simulating individual DRAM commands.
 */

#pragma once

#include <cstdint>

#include "sim/engine.hpp"

namespace igcn {

/** Access pattern of a DRAM request. */
enum class AccessPattern
{
    Streaming, ///< long sequential burst (near-peak efficiency)
    Random     ///< short irregular access (row-miss dominated)
};

/** Configuration of the DRAM channel model. */
struct DramConfig
{
    /** Peak bandwidth in GB/s (Stratix 10 SX: 4x DDR4-2400 ch.). */
    double bandwidthGBps = 76.8;
    /** Accelerator clock in MHz (requests are timed in core cycles). */
    double coreClockMHz = 330.0;
    /** Fraction of peak achieved by streaming requests. */
    double streamEfficiency = 0.90;
    /** Fraction of peak achieved by random requests. */
    double randomEfficiency = 0.45;
    /** Fixed per-request latency in core cycles (tRC + controller). */
    Cycles requestLatency = 30;
};

/** Shared DRAM channel with in-order bandwidth accounting. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &cfg = {}) : config(cfg) {}

    /**
     * Issue a request at time `now`; @return completion time.
     * The channel serializes occupancy, so concurrent requesters see
     * queueing delay.
     */
    Cycles access(Cycles now, uint64_t bytes, AccessPattern pattern);

    /** Total bytes transferred so far. */
    uint64_t totalBytes() const { return bytesTransferred; }

    /** Bytes transferred with each pattern. */
    uint64_t streamedBytes() const { return bytesStreamed; }
    uint64_t randomBytes() const { return bytesRandom; }

    /** Cycles the channel has been busy. */
    Cycles busyCycles() const { return cyclesBusy; }

    /** Time at which the channel next becomes free. */
    Cycles freeAt() const { return nextFree; }

    /** Peak bytes per core cycle for this configuration. */
    double bytesPerCycle() const;

    const DramConfig &cfg() const { return config; }

  private:
    DramConfig config;
    Cycles nextFree = 0;
    Cycles cyclesBusy = 0;
    uint64_t bytesTransferred = 0;
    uint64_t bytesStreamed = 0;
    uint64_t bytesRandom = 0;
};

} // namespace igcn
