#include "sim/dram.hpp"

#include <algorithm>
#include <cmath>

namespace igcn {

double
DramModel::bytesPerCycle() const
{
    // GB/s divided by cycles/s gives bytes/cycle.
    return config.bandwidthGBps * 1e9 / (config.coreClockMHz * 1e6);
}

Cycles
DramModel::access(Cycles now, uint64_t bytes, AccessPattern pattern)
{
    // Random requests amortize their row-activation penalty with
    // size: a 64-byte touch pays full randomEfficiency, a >=4 KiB
    // burst approaches streaming efficiency even at a random address.
    double eff = config.streamEfficiency;
    if (pattern == AccessPattern::Random) {
        const double frac =
            std::min(1.0, static_cast<double>(bytes) / 4096.0);
        eff = config.randomEfficiency +
            (config.streamEfficiency - config.randomEfficiency) * frac;
    }
    const double cycles_needed =
        static_cast<double>(bytes) / (bytesPerCycle() * eff);
    const auto occupancy =
        static_cast<Cycles>(std::ceil(cycles_needed));

    const Cycles start = std::max(now, nextFree);
    nextFree = start + occupancy;
    cyclesBusy += occupancy;
    bytesTransferred += bytes;
    if (pattern == AccessPattern::Streaming)
        bytesStreamed += bytes;
    else
        bytesRandom += bytes;
    return nextFree + config.requestLatency;
}

} // namespace igcn
