#include "reorder/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

namespace igcn {

ClusteringMetrics
clusteringMetrics(const CsrGraph &g, const std::vector<NodeId> &perm,
                  double band, int grid)
{
    ClusteringMetrics m;
    const NodeId n = g.numNodes();
    if (n == 0 || g.numEdges() == 0)
        return m;

    const auto band_width =
        static_cast<int64_t>(std::max(1.0, band * n));
    const double cell = static_cast<double>(grid) / n;
    std::vector<uint64_t> grid_counts(
        static_cast<size_t>(grid) * grid, 0);

    uint64_t in_band = 0;
    double spread_sum = 0.0;
    for (NodeId u = 0; u < n; ++u) {
        const int64_t ru = perm[u];
        const int gr = std::min(grid - 1, static_cast<int>(ru * cell));
        for (NodeId v : g.neighbors(u)) {
            const int64_t rv = perm[v];
            const int64_t dist = std::llabs(ru - rv);
            if (dist <= band_width)
                in_band++;
            spread_sum += static_cast<double>(dist) / n;
            const int gc =
                std::min(grid - 1, static_cast<int>(rv * cell));
            grid_counts[static_cast<size_t>(gr) * grid + gc]++;
        }
    }

    const double nnz = static_cast<double>(g.numEdges());
    m.bandFraction = in_band / nnz;
    m.normalizedSpread = spread_sum / nnz;

    size_t occupied = 0;
    for (uint64_t c : grid_counts)
        if (c > 0)
            occupied++;
    m.occupiedCellFraction =
        static_cast<double>(occupied) / grid_counts.size();

    // Share of non-zeros in the densest 5% of cells.
    std::vector<uint64_t> sorted(grid_counts);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    const size_t top = std::max<size_t>(1, sorted.size() / 20);
    uint64_t dense_nnz = 0;
    for (size_t i = 0; i < top; ++i)
        dense_nnz += sorted[i];
    m.nnzInDenseCells = dense_nnz / nnz;
    return m;
}

} // namespace igcn
