#include "reorder/reorder.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <stdexcept>

namespace igcn {

namespace {

/** Order -> permutation: order[i] = node at position i. */
std::vector<NodeId>
orderToPerm(const std::vector<NodeId> &order)
{
    std::vector<NodeId> perm(order.size());
    for (NodeId pos = 0; pos < order.size(); ++pos)
        perm[order[pos]] = pos;
    return perm;
}

std::vector<NodeId>
hubSortOrder(const CsrGraph &g)
{
    const double avg = g.avgDegree();
    std::vector<NodeId> hot, cold;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        (g.degree(v) > avg ? hot : cold).push_back(v);
    // Hot vertices sorted by descending degree (stable for ties).
    std::stable_sort(hot.begin(), hot.end(),
                     [&](NodeId a, NodeId b) {
                         return g.degree(a) > g.degree(b);
                     });
    hot.insert(hot.end(), cold.begin(), cold.end());
    return hot;
}

std::vector<NodeId>
hubClusterOrder(const CsrGraph &g)
{
    const double avg = g.avgDegree();
    std::vector<NodeId> hot, cold;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        (g.degree(v) > avg ? hot : cold).push_back(v);
    // Cheaper than HubSort: hot vertices keep their original order.
    hot.insert(hot.end(), cold.begin(), cold.end());
    return hot;
}

/** Power-of-two degree bucket id (higher degree -> lower bucket). */
int
dbgBucket(NodeId degree)
{
    int b = 0;
    while (degree > 1) {
        degree >>= 1;
        b++;
    }
    return b;
}

std::vector<NodeId>
dbgOrder(const CsrGraph &g)
{
    // Count buckets, then place vertices group-by-group from the
    // highest-degree group down, preserving order within a group.
    int max_bucket = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        max_bucket = std::max(max_bucket, dbgBucket(g.degree(v)));
    std::vector<std::vector<NodeId>> groups(max_bucket + 1);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        groups[dbgBucket(g.degree(v))].push_back(v);
    std::vector<NodeId> order;
    order.reserve(g.numNodes());
    for (int b = max_bucket; b >= 0; --b)
        order.insert(order.end(), groups[b].begin(), groups[b].end());
    return order;
}

/** DBG applied within hub-sorted / hub-clustered hot partitions. */
std::vector<NodeId>
dbgHubOrder(const CsrGraph &g, bool sorted)
{
    std::vector<NodeId> base =
        sorted ? hubSortOrder(g) : hubClusterOrder(g);
    // Stable-bucket the combined order by degree group: this is the
    // "dbg-hubsort"/"dbg-hubcluster" composition of Faldu et al.
    std::stable_sort(base.begin(), base.end(),
                     [&](NodeId a, NodeId b) {
                         return dbgBucket(g.degree(a)) >
                                dbgBucket(g.degree(b));
                     });
    return base;
}

/**
 * Rabbit-like community order: greedy union-find aggregation.
 * Edges are visited repeatedly; an edge merges its endpoints'
 * communities when the smaller community is below the size cap,
 * then each community is laid out contiguously (members in BFS
 * order to preserve intra-community locality).
 */
std::vector<NodeId>
rabbitOrder(const CsrGraph &g)
{
    const NodeId n = g.numNodes();
    std::vector<NodeId> parent(n);
    std::vector<NodeId> size(n, 1);
    std::iota(parent.begin(), parent.end(), 0);

    std::function<NodeId(NodeId)> find = [&](NodeId v) {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        return v;
    };

    // Merge cap keeps communities cache-sized, as rabbit order does
    // with its hierarchical dendrogram cut.
    const NodeId cap = std::max<NodeId>(64, n / 256);
    for (int pass = 0; pass < 2; ++pass) {
        for (NodeId u = 0; u < n; ++u) {
            for (NodeId v : g.neighbors(u)) {
                NodeId ru = find(u), rv = find(v);
                if (ru == rv)
                    continue;
                if (size[ru] + size[rv] > cap)
                    continue;
                if (size[ru] < size[rv])
                    std::swap(ru, rv);
                parent[rv] = ru;
                size[ru] += size[rv];
            }
        }
    }

    // Lay communities out contiguously, ordered by root id.
    std::vector<std::vector<NodeId>> members(n);
    for (NodeId v = 0; v < n; ++v)
        members[find(v)].push_back(v);
    std::vector<NodeId> order;
    order.reserve(n);
    for (NodeId r = 0; r < n; ++r)
        order.insert(order.end(), members[r].begin(), members[r].end());
    return order;
}

} // namespace

std::string
reorderAlgoName(ReorderAlgo algo)
{
    switch (algo) {
      case ReorderAlgo::Rabbit: return "rabbit";
      case ReorderAlgo::Dbg: return "dbg";
      case ReorderAlgo::HubSort: return "hubsort";
      case ReorderAlgo::HubCluster: return "hubcluster";
      case ReorderAlgo::DbgHubSort: return "dbg-hubsort";
      case ReorderAlgo::DbgHubCluster: return "dbg-hubcluster";
    }
    throw std::invalid_argument("unknown reorder algo");
}

ReorderResult
reorderGraph(const CsrGraph &g, ReorderAlgo algo)
{
    auto t0 = std::chrono::steady_clock::now();
    std::vector<NodeId> order;
    switch (algo) {
      case ReorderAlgo::Rabbit: order = rabbitOrder(g); break;
      case ReorderAlgo::Dbg: order = dbgOrder(g); break;
      case ReorderAlgo::HubSort: order = hubSortOrder(g); break;
      case ReorderAlgo::HubCluster: order = hubClusterOrder(g); break;
      case ReorderAlgo::DbgHubSort: order = dbgHubOrder(g, true); break;
      case ReorderAlgo::DbgHubCluster:
        order = dbgHubOrder(g, false);
        break;
    }
    ReorderResult result;
    result.perm = orderToPerm(order);
    auto t1 = std::chrono::steady_clock::now();
    result.reorderTimeUs =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    return result;
}

} // namespace igcn
