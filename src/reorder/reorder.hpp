/**
 * @file
 * The six lightweight graph reordering baselines of Section 4.5.
 *
 * These are software preprocessing passes run on the host CPU; the
 * paper's Figure 12 compares their (measured) reordering latency plus
 * AWB-GCN inference on the reordered graph against I-GCN's end-to-end
 * runtime islandization. Implementations follow the descriptions in
 * Balaji & Lucia (IISWC'18) and Faldu et al. (IISWC'19):
 *
 *  - HubSort: sort hot (above-average-degree) vertices by degree.
 *  - HubCluster: segregate hot vertices first, preserve order inside
 *    each partition (cheaper, coarser than HubSort).
 *  - DBG (degree-based grouping): bucket vertices into power-of-two
 *    degree groups, preserve order within groups.
 *  - Rabbit-like: community-clustering order — union-find community
 *    aggregation by descending edge locality, communities laid out
 *    contiguously (the heaviest-weight, highest-quality baseline).
 *  - DBG-HubSort / DBG-HubCluster: DBG applied to the hot groups of
 *    the respective hub scheme.
 */

#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace igcn {

/** Reordering algorithms compared in Figure 12/13. */
enum class ReorderAlgo
{
    Rabbit,
    Dbg,
    HubSort,
    HubCluster,
    DbgHubSort,
    DbgHubCluster,
};

/** All algorithms in the paper's presentation order. */
inline constexpr ReorderAlgo kAllReorderAlgos[] = {
    ReorderAlgo::Rabbit,       ReorderAlgo::Dbg,
    ReorderAlgo::HubSort,      ReorderAlgo::HubCluster,
    ReorderAlgo::DbgHubSort,   ReorderAlgo::DbgHubCluster,
};

/** Display name ("rabbit", "dbg-hubsort", ...). */
std::string reorderAlgoName(ReorderAlgo algo);

/** Result of a reordering pass. */
struct ReorderResult
{
    /** perm[v] = new position of node v. */
    std::vector<NodeId> perm;
    /** Host wall-clock time of the pass, microseconds. */
    double reorderTimeUs = 0.0;
};

/** Run one reordering algorithm (timed). */
ReorderResult reorderGraph(const CsrGraph &g, ReorderAlgo algo);

} // namespace igcn
