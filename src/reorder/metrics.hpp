/**
 * @file
 * Non-zero clustering quality metrics for Figure 13: how well does a
 * node order concentrate the adjacency matrix's non-zeros? I-GCN's
 * islandization is compared against the lightweight reorderings on
 * these measures.
 */

#pragma once

#include "graph/csr.hpp"

namespace igcn {

/** Clustering quality of an adjacency matrix under a permutation. */
struct ClusteringMetrics
{
    /** Fraction of non-zeros within `band` of the diagonal. */
    double bandFraction = 0.0;
    /** Mean |row - col| distance of non-zeros, normalized by N. */
    double normalizedSpread = 0.0;
    /** Fraction of dense-block cells (grid cells above threshold)
     *  that contain all the non-zeros; low = tight clustering. */
    double occupiedCellFraction = 0.0;
    /** Fraction of non-zeros falling in the top 5% densest cells. */
    double nnzInDenseCells = 0.0;
};

/**
 * Compute clustering metrics for graph g under permutation perm.
 *
 * @param band  diagonal band half-width as a fraction of N
 * @param grid  density-grid resolution for the cell-based measures
 */
ClusteringMetrics clusteringMetrics(const CsrGraph &g,
                                    const std::vector<NodeId> &perm,
                                    double band = 0.05, int grid = 64);

} // namespace igcn
