/**
 * @file
 * Deterministic synthetic request traces for replay, tests and
 * benchmarks: a seeded mix of inference requests (with a skewed
 * target popularity, queries concentrating on high-degree nodes the
 * way user traffic concentrates on popular entities) and small
 * edge-addition and edge-deletion updates, with bursty exponential
 * inter-arrival gaps.
 */

#pragma once

#include "serve/request.hpp"

namespace igcn::serve {

/** Parameters of the synthetic trace generator. */
struct TraceConfig
{
    /** Number of node-classification requests. */
    uint64_t numInference = 10000;
    /** Number of edge-addition requests. */
    uint64_t numUpdates = 1000;
    /** Mean inter-arrival gap in virtual microseconds. */
    double meanGapUs = 50.0;
    /** Fraction of queries aimed at the top-degree node set. */
    double hotFraction = 0.2;
    /** Fraction of nodes forming that hot set (by degree). */
    double hotSetFraction = 0.05;
    /** Edges per update request, uniform in [1, maxEdgesPerUpdate]. */
    int maxEdgesPerUpdate = 4;
    /**
     * Fraction of update requests that are deletions. A deletion
     * request samples arcs of the *initial* graph uniformly, so a
     * previously deleted edge can be requested again later in the
     * trace — the applier screens those to deterministic no-ops,
     * which is exactly the duplicate-delete traffic a real evolving
     * graph produces. 0.0 (the default) reproduces the pre-deletion
     * trace stream bit-for-bit.
     */
    double removeFraction = 0.0;
    uint64_t seed = 1;
};

/**
 * Generate an arrival-sorted trace over the nodes of g. Fully
 * deterministic in (g, cfg): request ids are 0..total-1 in arrival
 * order, kinds are interleaved uniformly at random across the whole
 * trace, and all node ids are in range.
 */
std::vector<Request> makeSyntheticTrace(const CsrGraph &g,
                                        const TraceConfig &cfg);

} // namespace igcn::serve
