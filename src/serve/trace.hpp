/**
 * @file
 * Deterministic synthetic request traces for replay, tests and
 * benchmarks: a seeded mix of inference requests (with a skewed
 * target popularity, queries concentrating on high-degree nodes the
 * way user traffic concentrates on popular entities) and small
 * edge-addition and edge-deletion updates, with bursty exponential
 * inter-arrival gaps.
 */

#pragma once

#include "serve/request.hpp"

namespace igcn::serve {

/**
 * Arrival process shapes. All three consume exactly one RNG draw per
 * request (the exponential gap), so Poisson — the default — is
 * bit-identical to the pre-pattern generator.
 *
 *  - Poisson: constant-rate exponential gaps.
 *  - Burst:   on/off square wave over `patternPeriodUs` — inside the
 *             burst window (the first `burstDutyCycle` fraction of
 *             each period) the arrival rate is multiplied by
 *             `burstRateMultiplier`; outside it runs at the base
 *             rate. An update/query storm every period.
 *  - Diurnal: the rate follows 1 + 0.8*sin(2*pi*t/period) — a smooth
 *             day/night load curve compressed to the period.
 */
enum class ArrivalPattern : uint8_t { Poisson, Burst, Diurnal };

/** Parameters of the synthetic trace generator. */
struct TraceConfig
{
    /** Number of node-classification requests. */
    uint64_t numInference = 10000;
    /** Number of edge-addition requests. */
    uint64_t numUpdates = 1000;
    /** Mean inter-arrival gap in virtual microseconds. */
    double meanGapUs = 50.0;
    /** Fraction of queries aimed at the top-degree node set. */
    double hotFraction = 0.2;
    /** Fraction of nodes forming that hot set (by degree). */
    double hotSetFraction = 0.05;
    /** Edges per update request, uniform in [1, maxEdgesPerUpdate]. */
    int maxEdgesPerUpdate = 4;
    /**
     * Fraction of update requests that are deletions. A deletion
     * request samples arcs of the *initial* graph uniformly, so a
     * previously deleted edge can be requested again later in the
     * trace — the applier screens those to deterministic no-ops,
     * which is exactly the duplicate-delete traffic a real evolving
     * graph produces. 0.0 (the default) reproduces the pre-deletion
     * trace stream bit-for-bit.
     */
    double removeFraction = 0.0;
    /** Arrival process; Poisson reproduces pre-pattern traces
     *  bit-for-bit. */
    ArrivalPattern pattern = ArrivalPattern::Poisson;
    /** Burst/Diurnal period in virtual microseconds. */
    uint64_t patternPeriodUs = 20000;
    /** Burst only: fraction of each period that is the burst. */
    double burstDutyCycle = 0.2;
    /** Burst only: arrival-rate multiplier inside the burst. */
    double burstRateMultiplier = 8.0;
    /**
     * Zipfian target skew: when > 0, inference targets are drawn by
     * degree rank with P(rank) ~ rank^-zipfAlpha over the whole node
     * set (the millions-of-users popularity curve), replacing the
     * hotFraction/hotSetFraction two-tier draw. 0 (default) keeps
     * the legacy hot-set draw bit-for-bit. (The gate used to be
     * > 1, silently degrading sub-critical exponents like 0.8 to
     * the hot-set draw; any positive alpha now means Zipf.)
     */
    double zipfAlpha = 0.0;
    /** Tenants; requests are assigned round-robin by id (no RNG). */
    uint32_t numTenants = 1;
    /** Relative deadline stamped on every inference request
     *  (absolute = arrival + deadlineUs); 0 = none. */
    uint64_t deadlineUs = 0;
    /** Fraction of inference requests demanding Freshness::Strict
     *  (guarded draw: 0.0 consumes no randomness). */
    double strictFraction = 0.0;
    uint64_t seed = 1;
};

/**
 * Generate an arrival-sorted trace over the nodes of g. Fully
 * deterministic in (g, cfg): request ids are 0..total-1 in arrival
 * order, kinds are interleaved uniformly at random across the whole
 * trace, and all node ids are in range.
 */
std::vector<Request> makeSyntheticTrace(const CsrGraph &g,
                                        const TraceConfig &cfg);

} // namespace igcn::serve
