#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace igcn::serve {

uint64_t
ServiceModel::inferenceCostUs(const BatchExecInfo &info,
                              NodeId graph_nodes,
                              EdgeId graph_edges) const
{
    const double nodes = info.wholeGraph
        ? static_cast<double>(graph_nodes)
        : static_cast<double>(info.subNodes);
    double edges = info.wholeGraph
        ? static_cast<double>(graph_edges)
        : static_cast<double>(info.subEdges);
    // Aggregation-cache hits skip the layer-1 edge sweep for the
    // substituted rows; the cost model charges only the edges the
    // batch actually traversed. Skipped edges never exceed the
    // batch's edge count (self-loops are excluded from the skip
    // accounting), but clamp defensively.
    edges = std::max(
        0.0, edges - static_cast<double>(info.cacheSkippedEdges));
    const double cost = inferenceFixedUs +
        perTargetUs * static_cast<double>(info.targets) +
        perSubNodeUs * nodes + perSubEdgeUs * edges;
    return static_cast<uint64_t>(std::ceil(cost));
}

uint64_t
ServiceModel::updateCostUs(const UpdateResult &res) const
{
    const double cost = updateFixedUs +
        perAppliedEdgeUs * static_cast<double>(res.edgesApplied) +
        perRemovedEdgeUs * static_cast<double>(res.edgesRemoved) +
        perScannedEdgeUs *
            static_cast<double>(res.stats.edgesScanned);
    return static_cast<uint64_t>(std::ceil(cost));
}

Server::Server(CsrGraph g, Features features,
               std::vector<DenseMatrix> weights, ServerConfig cfg)
    : cfg(cfg),
      hub(std::make_shared<GraphStateHub>(
          makeGraphState(std::move(g), cfg.locator))),
      engine(hub, std::move(features), std::move(weights),
             cfg.wholeGraphFraction),
      applier(hub, cfg.locator)
{
    if (cfg.aggCache.enabled) {
        aggCachePtr = std::make_unique<AggCache>(cfg.aggCache);
        engine.attachAggCache(aggCachePtr.get());
    }
}

Server::Server(CsrGraph g, DenseMatrix features,
               std::vector<DenseMatrix> weights, ServerConfig cfg)
    : Server(std::move(g), Features{false, std::move(features), {}},
             std::move(weights), cfg)
{}

Server::~Server()
{
    if (running)
        stop();
}

uint64_t
Server::nowUs() const
{
    return clock.nowUs();
}

void
Server::traceInferenceBatch(uint64_t formed_us, uint64_t done_us,
                            const BatchExecInfo &info,
                            const std::vector<InferenceResult> &results,
                            NodeId graph_nodes, EdgeId graph_edges)
{
    if (!tracer.enabled())
        return;
    const uint64_t seq = batchSeq++;
    const uint64_t nodes =
        info.wholeGraph ? graph_nodes : info.subNodes;
    const uint64_t edges =
        info.wholeGraph ? graph_edges : info.subEdges;
    const uint64_t dur = done_us - formed_us;
    tracer.complete(obs::kLaneServer, "infer-batch", "serve",
                    formed_us, dur,
                    {{"batch", seq},
                     {"size", results.size()},
                     {"epoch", info.epoch},
                     {"targets", info.targets},
                     {"sub_nodes", nodes},
                     {"sub_edges", edges},
                     {"whole_graph", info.wholeGraph ? 1u : 0u},
                     {"cache_eligible", info.cacheEligible},
                     {"cache_hits", info.cacheHits},
                     {"cache_fills", info.cacheFills},
                     {"cache_rows", info.cacheRows},
                     {"cache_skipped_edges", info.cacheSkippedEdges}});

    // Phase children subdividing [formed, done] proportionally to
    // integer work units (+1 floors so a phase never vanishes):
    // gather walks the receptive field, each layer sweeps its edges,
    // respond fans results out. Integer arithmetic throughout, so
    // the subdivision is identical at every thread count.
    std::vector<std::pair<std::string, uint64_t>> phases;
    phases.emplace_back("gather", nodes + 1);
    for (int l = 0; l < engine.numLayers(); ++l)
        phases.emplace_back("layer" + std::to_string(l),
                            edges + info.targets + 1);
    phases.emplace_back("respond",
                        static_cast<uint64_t>(results.size()) + 1);
    uint64_t total = 0;
    for (const auto &[name, work] : phases)
        total += work;
    uint64_t cum = 0, prev = formed_us;
    for (const auto &[name, work] : phases) {
        cum += work;
        const uint64_t b = formed_us + dur * cum / total;
        tracer.complete(obs::kLaneServer, name, "serve", prev,
                        b - prev, {{"batch", seq}, {"work", work}});
        prev = b;
    }

    for (const InferenceResult &r : results)
        tracer.instant(obs::kLaneRequests, "respond", "serve",
                       done_us,
                       {{"req", r.id},
                        {"tenant", r.tenant},
                        {"latency_us", done_us - r.arrivalUs},
                        {"epochs_behind", r.epochsBehind}});
}

void
Server::traceUpdateBatch(const UpdateResult &res)
{
    if (!tracer.enabled())
        return;
    const uint64_t seq = batchSeq++;
    const uint64_t dur = res.doneUs - res.startUs;
    tracer.complete(obs::kLaneServer, "update-batch", "update",
                    res.startUs, dur,
                    {{"batch", seq},
                     {"coalesced", res.coalesced},
                     {"edges_applied", res.edgesApplied},
                     {"edges_removed", res.edgesRemoved},
                     {"epoch", res.epoch}});

    const std::pair<std::string, uint64_t> phases[] = {
        {"coalesce", static_cast<uint64_t>(res.coalesced) + 1},
        {"edit-edges", static_cast<uint64_t>(res.edgesApplied) +
                           res.edgesRemoved + 1},
        {"islandize",
         static_cast<uint64_t>(res.stats.edgesScanned) + 1},
    };
    uint64_t total = 0;
    for (const auto &[name, work] : phases)
        total += work;
    uint64_t cum = 0, prev = res.startUs;
    for (const auto &[name, work] : phases) {
        cum += work;
        const uint64_t b = res.startUs + dur * cum / total;
        tracer.complete(obs::kLaneServer, name, "update", prev,
                        b - prev, {{"batch", seq}, {"work", work}});
        prev = b;
    }

    if (res.edgesApplied > 0 || res.edgesRemoved > 0)
        tracer.instant(obs::kLaneServer, "publish-epoch", "update",
                       res.doneUs, {{"epoch", res.epoch}});
}

void
Server::traceRejection(const Rejection &rej, bool dropped)
{
    if (!tracer.enabled())
        return;
    tracer.instant(obs::kLaneRequests, dropped ? "drop" : "reject",
                   "serve", rej.atUs,
                   {{"req", rej.id}, {"tenant", rej.tenant}},
                   {{"reason", serveErrorName(rej.error)}});
}

void
Server::processBatch(const MicroBatch &batch, bool real_time,
                     uint64_t &busy_until_us)
{
    if (batch.kind == RequestKind::Inference) {
        BatchExecInfo info;
        std::vector<InferenceResult> results =
            engine.runBatch(batch.requests, &info);
        const auto state = hub->acquire();
        const uint64_t done = real_time
            ? nowUs()
            : batch.formedAtUs +
                cfg.service.inferenceCostUs(info,
                                            state->graph.numNodes(),
                                            state->graph.numEdges());
        for (InferenceResult &r : results) {
            r.startUs = batch.formedAtUs;
            r.doneUs = done;
        }
        traceInferenceBatch(batch.formedAtUs, done, info, results,
                            state->graph.numNodes(),
                            state->graph.numEdges());
        for (InferenceResult &r : results) {
            statsAcc.recordInference(r);
            report.inference.push_back(std::move(r));
        }
        statsAcc.recordInferenceBatch(info);
        if (aggCachePtr)
            statsAcc.recordAggCache(aggCachePtr->stats());
        busy_until_us = done;
    } else {
        UpdateResult res = applier.apply(batch.requests);
        res.startUs = batch.formedAtUs;
        res.doneUs = real_time
            ? nowUs()
            : batch.formedAtUs + cfg.service.updateCostUs(res);
        traceUpdateBatch(res);
        statsAcc.recordUpdate(res);
        busy_until_us = res.doneUs;
        report.updates.push_back(std::move(res));
    }
}

ReplayReport
Server::runTrace(std::vector<Request> trace)
{
    if (running)
        throw std::logic_error(
            "runTrace: real-time server is running");
    std::stable_sort(trace.begin(), trace.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrivalUs < b.arrivalUs;
                     });
    report = ReplayReport{};
    statsAcc.reset(); // each run reports its own telemetry
    if (aggCachePtr)
        aggCachePtr->reset(); // no cross-run carry-over
    tracer.setEnabled(cfg.obs.traceEnabled);
    tracer.clear();
    batchSeq = 0;
    return cfg.slo.enabled ? runTraceSlo(std::move(trace))
                           : runTraceFcfs(std::move(trace));
}

ReplayReport
Server::runTraceFcfs(std::vector<Request> trace)
{
    RequestQueue queue;
    for (Request &r : trace) {
        if (tracer.enabled())
            tracer.instant(obs::kLaneRequests, "enqueue", "serve",
                           r.arrivalUs,
                           {{"req", r.id}, {"tenant", r.tenant}});
        queue.push(std::move(r));
    }
    queue.close();

    Scheduler scheduler(queue, cfg.scheduler, /*real_time=*/false);
    uint64_t busy = 0;
    MicroBatch batch;
    while (scheduler.next(busy, batch))
        processBatch(batch, /*real_time=*/false, busy);
    return std::move(report);
}

void
Server::handleSloDecision(SloScheduler::Decision &d, bool real_time,
                          uint64_t &busy_until_us)
{
    for (EdfQueue::Dropped &drop : d.dropped) {
        const Rejection rej{drop.entry.req.id, drop.entry.req.tenant,
                            drop.entry.req.kind, drop.error,
                            d.batch.formedAtUs};
        statsAcc.recordRejection(rej);
        traceRejection(rej, /*dropped=*/true);
        report.rejections.push_back(rej);
    }
    if (real_time)
        waitingCount.fetch_sub(d.dropped.size() +
                               d.batch.requests.size());
    if (d.kind == SloScheduler::Decision::Kind::Drops)
        return;

    if (d.kind == SloScheduler::Decision::Kind::Inference) {
        BatchExecInfo info;
        std::vector<InferenceResult> results =
            engine.runBatch(d.batch.requests, &info);
        const auto state = hub->acquire();
        const uint64_t done = real_time
            ? nowUs()
            : d.batch.formedAtUs +
                cfg.service.inferenceCostUs(info,
                                            state->graph.numNodes(),
                                            state->graph.numEdges());
        for (size_t i = 0; i < results.size(); ++i) {
            InferenceResult &r = results[i];
            r.startUs = d.batch.formedAtUs;
            r.doneUs = done;
            r.epochsBehind = d.epochsBehind[i];
            r.deadlineUs = d.batch.requests[i].deadlineUs;
            r.freshness = d.batch.requests[i].freshness;
        }
        traceInferenceBatch(d.batch.formedAtUs, done, info, results,
                            state->graph.numNodes(),
                            state->graph.numEdges());
        for (InferenceResult &r : results) {
            statsAcc.recordInference(r);
            report.inference.push_back(std::move(r));
        }
        statsAcc.recordInferenceBatch(info);
        if (aggCachePtr)
            statsAcc.recordAggCache(aggCachePtr->stats());
        busy_until_us = done;
    } else {
        UpdateResult res = applier.apply(d.batch.requests);
        res.startUs = d.batch.formedAtUs;
        res.doneUs = real_time
            ? nowUs()
            : d.batch.formedAtUs + cfg.service.updateCostUs(res);
        traceUpdateBatch(res);
        statsAcc.recordUpdate(res);
        busy_until_us = res.doneUs;
        report.updates.push_back(std::move(res));
    }
}

ReplayReport
Server::runTraceSlo(std::vector<Request> trace)
{
    // Fault injection first: trace-shape faults (update delays,
    // burst arrivals) are a deterministic rewrite of the trace.
    cfg.faults.applyToTrace(trace);

    AdmissionController admission(cfg.slo);
    SloScheduler sched(cfg.scheduler, cfg.slo, &cfg.faults);
    uint64_t busy = 0;
    size_t i = 0;

    // Admission happens at each request's arrival timestamp, with
    // the queue depth the request actually observes: all dispatches
    // that start no later than the arrival have already left the
    // pools (the loop below interleaves admissions and dispatches in
    // virtual-time order).
    const auto admitOne = [&] {
        Request r = std::move(trace[i]);
        i++;
        const ServeError e = admission.tryAdmit(r, sched.depth());
        if (e != ServeError::None) {
            const Rejection rej{r.id, r.tenant, r.kind, e,
                                r.arrivalUs};
            statsAcc.recordRejection(rej);
            traceRejection(rej, /*dropped=*/false);
            report.rejections.push_back(rej);
            return;
        }
        statsAcc.recordAdmission(r.tenant);
        if (tracer.enabled())
            tracer.instant(obs::kLaneRequests, "admit", "serve",
                           r.arrivalUs,
                           {{"req", r.id}, {"tenant", r.tenant}});
        sched.admit(std::move(r));
        statsAcc.recordQueueDepth(sched.depth());
    };

    while (true) {
        if (sched.empty()) {
            if (i == trace.size())
                break;
            admitOne();
            continue;
        }
        const uint64_t t = sched.nextDispatchTimeUs(busy);
        if (i < trace.size() && trace[i].arrivalUs <= t) {
            admitOne();
            continue;
        }
        SloScheduler::Decision d;
        sched.next(busy, d);
        handleSloDecision(d, /*real_time=*/false, busy);
    }
    return std::move(report);
}

void
Server::realTimeLoopFcfs()
{
    Scheduler scheduler(liveQueue, cfg.scheduler,
                        /*real_time=*/true,
                        [this] { return nowUs(); });
    MicroBatch batch;
    uint64_t busy = 0;
    while (scheduler.next(nowUs(), batch))
        processBatch(batch, /*real_time=*/true, busy);
}

void
Server::realTimeLoopSlo()
{
    // Continuous batching against the live clock: admitted requests
    // drain from the arrival queue into the EDF pools, and every
    // engine-free moment serves whatever is eligible. Admission
    // already happened on the submitter threads.
    SloScheduler sched(cfg.scheduler, cfg.slo, &cfg.faults);
    uint64_t busy = 0;
    Request r;
    for (;;) {
        if (sched.empty()) {
            if (liveQueue.popHead(r) == RequestQueue::Pop::Closed)
                break;
            sched.admit(std::move(r));
        }
        while (liveQueue.tryPop(r))
            sched.admit(std::move(r));
        SloScheduler::Decision d;
        if (sched.next(nowUs(), d))
            handleSloDecision(d, /*real_time=*/true, busy);
    }
    // Queue closed: drain what is still pooled.
    SloScheduler::Decision d;
    while (sched.next(nowUs(), d))
        handleSloDecision(d, /*real_time=*/true, busy);
}

void
Server::start()
{
    if (running)
        throw std::logic_error("start: already running");
    running = true;
    clock.reset();
    report = ReplayReport{};
    statsAcc.reset();
    if (aggCachePtr)
        aggCachePtr->reset();
    tracer.setEnabled(cfg.obs.traceEnabled);
    tracer.clear();
    batchSeq = 0;
    {
        MutexLock lock(submitMutex);
        liveAdmission = AdmissionController(cfg.slo);
        waitingCount = 0;
        liveMaxDepth = 0;
        liveAdmittedTenants.clear();
        liveRejections.clear();
    }
    // Service thread, see server.hpp.
    // igcn-lint: allow(no-thread-outside-runtime)
    schedulerThread = std::thread([this] {
        if (cfg.slo.enabled)
            realTimeLoopSlo();
        else
            realTimeLoopFcfs();
    });
}

ServeResult
Server::submitRequest(Request r)
{
    MutexLock lock(submitMutex);
    r.id = nextId.fetch_add(1);
    r.arrivalUs = nowUs();
    if (r.deadlineUs != 0)
        r.deadlineUs += r.arrivalUs; // relative -> absolute
    ServeResult out;
    out.id = r.id;
    if (cfg.slo.enabled) {
        const size_t depth = waitingCount.load();
        out.error = liveAdmission.tryAdmit(r, depth);
        if (out.error != ServeError::None) {
            const Rejection rej{r.id, r.tenant, r.kind, out.error,
                                r.arrivalUs};
            traceRejection(rej, /*dropped=*/false);
            liveRejections.push_back(rej);
            return out;
        }
        liveAdmittedTenants.push_back(r.tenant);
        liveMaxDepth = std::max(liveMaxDepth,
                                static_cast<uint64_t>(depth + 1));
        waitingCount.fetch_add(1);
    }
    if (tracer.enabled())
        tracer.instant(obs::kLaneRequests,
                       cfg.slo.enabled ? "admit" : "enqueue", "serve",
                       r.arrivalUs,
                       {{"req", r.id}, {"tenant", r.tenant}});
    liveQueue.push(std::move(r));
    return out;
}

ServeResult
Server::submitInference(NodeId node, const SubmitOptions &opts)
{
    if (!running)
        throw std::logic_error("submitInference: server not running");
    Request r;
    r.kind = RequestKind::Inference;
    r.node = node;
    r.tenant = opts.tenant;
    r.priority = opts.priority;
    r.deadlineUs = opts.deadlineUs;
    r.freshness = opts.freshness;
    return submitRequest(std::move(r));
}

ServeResult
Server::submitUpdate(std::vector<Edge> added, std::vector<Edge> removed,
                     const SubmitOptions &opts)
{
    if (!running)
        throw std::logic_error("submitUpdate: server not running");
    Request r;
    r.kind = RequestKind::Update;
    r.addedEdges = std::move(added);
    r.removedEdges = std::move(removed);
    r.tenant = opts.tenant;
    r.priority = opts.priority;
    r.deadlineUs = opts.deadlineUs;
    return submitRequest(std::move(r));
}

ReplayReport
Server::stop()
{
    if (!running)
        throw std::logic_error("stop: server not running");
    liveQueue.close();
    schedulerThread.join();
    running = false;
    // Merge submit-side admission accounting now that the scheduler
    // thread is done with statsAcc / report.
    MutexLock lock(submitMutex);
    for (uint32_t tenant : liveAdmittedTenants)
        statsAcc.recordAdmission(tenant);
    for (const Rejection &rej : liveRejections) {
        statsAcc.recordRejection(rej);
        report.rejections.push_back(rej);
    }
    statsAcc.recordQueueDepth(liveMaxDepth);
    return std::move(report);
}

} // namespace igcn::serve
