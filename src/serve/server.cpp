#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace igcn::serve {

uint64_t
ServiceModel::inferenceCostUs(const BatchExecInfo &info,
                              NodeId graph_nodes,
                              EdgeId graph_edges) const
{
    const double nodes = info.wholeGraph
        ? static_cast<double>(graph_nodes)
        : static_cast<double>(info.subNodes);
    const double edges = info.wholeGraph
        ? static_cast<double>(graph_edges)
        : static_cast<double>(info.subEdges);
    const double cost = inferenceFixedUs +
        perTargetUs * static_cast<double>(info.targets) +
        perSubNodeUs * nodes + perSubEdgeUs * edges;
    return static_cast<uint64_t>(std::ceil(cost));
}

uint64_t
ServiceModel::updateCostUs(const UpdateResult &res) const
{
    const double cost = updateFixedUs +
        perAppliedEdgeUs * static_cast<double>(res.edgesApplied) +
        perRemovedEdgeUs * static_cast<double>(res.edgesRemoved) +
        perScannedEdgeUs *
            static_cast<double>(res.stats.edgesScanned);
    return static_cast<uint64_t>(std::ceil(cost));
}

Server::Server(CsrGraph g, Features features,
               std::vector<DenseMatrix> weights, ServerConfig cfg)
    : cfg(cfg),
      hub(std::make_shared<GraphStateHub>(
          makeGraphState(std::move(g), cfg.locator))),
      engine(hub, std::move(features), std::move(weights),
             cfg.wholeGraphFraction),
      applier(hub, cfg.locator)
{}

Server::Server(CsrGraph g, DenseMatrix features,
               std::vector<DenseMatrix> weights, ServerConfig cfg)
    : Server(std::move(g), Features{false, std::move(features), {}},
             std::move(weights), cfg)
{}

Server::~Server()
{
    if (running)
        stop();
}

uint64_t
Server::nowUs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - clockOrigin)
            .count());
}

void
Server::processBatch(const MicroBatch &batch, bool real_time,
                     uint64_t &busy_until_us)
{
    if (batch.kind == RequestKind::Inference) {
        BatchExecInfo info;
        std::vector<InferenceResult> results =
            engine.runBatch(batch.requests, &info);
        const auto state = hub->acquire();
        const uint64_t done = real_time
            ? nowUs()
            : batch.formedAtUs +
                cfg.service.inferenceCostUs(info,
                                            state->graph.numNodes(),
                                            state->graph.numEdges());
        for (InferenceResult &r : results) {
            r.startUs = batch.formedAtUs;
            r.doneUs = done;
            statsAcc.recordInference(r);
            report.inference.push_back(std::move(r));
        }
        statsAcc.recordInferenceBatch(info);
        busy_until_us = done;
    } else {
        UpdateResult res = applier.apply(batch.requests);
        res.startUs = batch.formedAtUs;
        res.doneUs = real_time
            ? nowUs()
            : batch.formedAtUs + cfg.service.updateCostUs(res);
        statsAcc.recordUpdate(res);
        busy_until_us = res.doneUs;
        report.updates.push_back(std::move(res));
    }
}

ReplayReport
Server::runTrace(std::vector<Request> trace)
{
    if (running)
        throw std::logic_error(
            "runTrace: real-time server is running");
    std::stable_sort(trace.begin(), trace.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrivalUs < b.arrivalUs;
                     });
    report = ReplayReport{};
    statsAcc = ServerStats{}; // each run reports its own telemetry
    return cfg.slo.enabled ? runTraceSlo(std::move(trace))
                           : runTraceFcfs(std::move(trace));
}

ReplayReport
Server::runTraceFcfs(std::vector<Request> trace)
{
    RequestQueue queue;
    for (Request &r : trace)
        queue.push(std::move(r));
    queue.close();

    Scheduler scheduler(queue, cfg.scheduler, /*real_time=*/false);
    uint64_t busy = 0;
    MicroBatch batch;
    while (scheduler.next(busy, batch))
        processBatch(batch, /*real_time=*/false, busy);
    return std::move(report);
}

void
Server::handleSloDecision(SloScheduler::Decision &d, bool real_time,
                          uint64_t &busy_until_us)
{
    for (EdfQueue::Dropped &drop : d.dropped) {
        const Rejection rej{drop.entry.req.id, drop.entry.req.tenant,
                            drop.entry.req.kind, drop.error,
                            d.batch.formedAtUs};
        statsAcc.recordRejection(rej);
        report.rejections.push_back(rej);
    }
    if (real_time)
        waitingCount.fetch_sub(d.dropped.size() +
                               d.batch.requests.size());
    if (d.kind == SloScheduler::Decision::Kind::Drops)
        return;

    if (d.kind == SloScheduler::Decision::Kind::Inference) {
        BatchExecInfo info;
        std::vector<InferenceResult> results =
            engine.runBatch(d.batch.requests, &info);
        const auto state = hub->acquire();
        const uint64_t done = real_time
            ? nowUs()
            : d.batch.formedAtUs +
                cfg.service.inferenceCostUs(info,
                                            state->graph.numNodes(),
                                            state->graph.numEdges());
        for (size_t i = 0; i < results.size(); ++i) {
            InferenceResult &r = results[i];
            r.startUs = d.batch.formedAtUs;
            r.doneUs = done;
            r.epochsBehind = d.epochsBehind[i];
            r.deadlineUs = d.batch.requests[i].deadlineUs;
            r.freshness = d.batch.requests[i].freshness;
            statsAcc.recordInference(r);
            report.inference.push_back(std::move(r));
        }
        statsAcc.recordInferenceBatch(info);
        busy_until_us = done;
    } else {
        UpdateResult res = applier.apply(d.batch.requests);
        res.startUs = d.batch.formedAtUs;
        res.doneUs = real_time
            ? nowUs()
            : d.batch.formedAtUs + cfg.service.updateCostUs(res);
        statsAcc.recordUpdate(res);
        busy_until_us = res.doneUs;
        report.updates.push_back(std::move(res));
    }
}

ReplayReport
Server::runTraceSlo(std::vector<Request> trace)
{
    // Fault injection first: trace-shape faults (update delays,
    // burst arrivals) are a deterministic rewrite of the trace.
    cfg.faults.applyToTrace(trace);

    AdmissionController admission(cfg.slo);
    SloScheduler sched(cfg.scheduler, cfg.slo, &cfg.faults);
    uint64_t busy = 0;
    size_t i = 0;

    // Admission happens at each request's arrival timestamp, with
    // the queue depth the request actually observes: all dispatches
    // that start no later than the arrival have already left the
    // pools (the loop below interleaves admissions and dispatches in
    // virtual-time order).
    const auto admitOne = [&] {
        Request r = std::move(trace[i]);
        i++;
        const ServeError e = admission.tryAdmit(r, sched.depth());
        if (e != ServeError::None) {
            const Rejection rej{r.id, r.tenant, r.kind, e,
                                r.arrivalUs};
            statsAcc.recordRejection(rej);
            report.rejections.push_back(rej);
            return;
        }
        statsAcc.recordAdmission(r.tenant);
        sched.admit(std::move(r));
        statsAcc.recordQueueDepth(sched.depth());
    };

    while (true) {
        if (sched.empty()) {
            if (i == trace.size())
                break;
            admitOne();
            continue;
        }
        const uint64_t t = sched.nextDispatchTimeUs(busy);
        if (i < trace.size() && trace[i].arrivalUs <= t) {
            admitOne();
            continue;
        }
        SloScheduler::Decision d;
        sched.next(busy, d);
        handleSloDecision(d, /*real_time=*/false, busy);
    }
    return std::move(report);
}

void
Server::realTimeLoopFcfs()
{
    Scheduler scheduler(liveQueue, cfg.scheduler,
                        /*real_time=*/true,
                        [this] { return nowUs(); });
    MicroBatch batch;
    uint64_t busy = 0;
    while (scheduler.next(nowUs(), batch))
        processBatch(batch, /*real_time=*/true, busy);
}

void
Server::realTimeLoopSlo()
{
    // Continuous batching against the live clock: admitted requests
    // drain from the arrival queue into the EDF pools, and every
    // engine-free moment serves whatever is eligible. Admission
    // already happened on the submitter threads.
    SloScheduler sched(cfg.scheduler, cfg.slo, &cfg.faults);
    uint64_t busy = 0;
    Request r;
    for (;;) {
        if (sched.empty()) {
            if (liveQueue.popHead(r) == RequestQueue::Pop::Closed)
                break;
            sched.admit(std::move(r));
        }
        while (liveQueue.tryPop(r))
            sched.admit(std::move(r));
        SloScheduler::Decision d;
        if (sched.next(nowUs(), d))
            handleSloDecision(d, /*real_time=*/true, busy);
    }
    // Queue closed: drain what is still pooled.
    SloScheduler::Decision d;
    while (sched.next(nowUs(), d))
        handleSloDecision(d, /*real_time=*/true, busy);
}

void
Server::start()
{
    if (running)
        throw std::logic_error("start: already running");
    running = true;
    clockOrigin = std::chrono::steady_clock::now();
    report = ReplayReport{};
    statsAcc = ServerStats{};
    {
        MutexLock lock(submitMutex);
        liveAdmission = AdmissionController(cfg.slo);
        waitingCount = 0;
        liveMaxDepth = 0;
        liveAdmittedTenants.clear();
        liveRejections.clear();
    }
    // Service thread, see server.hpp.
    // igcn-lint: allow(no-thread-outside-runtime)
    schedulerThread = std::thread([this] {
        if (cfg.slo.enabled)
            realTimeLoopSlo();
        else
            realTimeLoopFcfs();
    });
}

ServeResult
Server::submitRequest(Request r)
{
    MutexLock lock(submitMutex);
    r.id = nextId.fetch_add(1);
    r.arrivalUs = nowUs();
    if (r.deadlineUs != 0)
        r.deadlineUs += r.arrivalUs; // relative -> absolute
    ServeResult out;
    out.id = r.id;
    if (cfg.slo.enabled) {
        const size_t depth = waitingCount.load();
        out.error = liveAdmission.tryAdmit(r, depth);
        if (out.error != ServeError::None) {
            liveRejections.push_back({r.id, r.tenant, r.kind,
                                      out.error, r.arrivalUs});
            return out;
        }
        liveAdmittedTenants.push_back(r.tenant);
        liveMaxDepth = std::max(liveMaxDepth,
                                static_cast<uint64_t>(depth + 1));
        waitingCount.fetch_add(1);
    }
    liveQueue.push(std::move(r));
    return out;
}

ServeResult
Server::submitInference(NodeId node, const SubmitOptions &opts)
{
    if (!running)
        throw std::logic_error("submitInference: server not running");
    Request r;
    r.kind = RequestKind::Inference;
    r.node = node;
    r.tenant = opts.tenant;
    r.priority = opts.priority;
    r.deadlineUs = opts.deadlineUs;
    r.freshness = opts.freshness;
    return submitRequest(std::move(r));
}

ServeResult
Server::submitUpdate(std::vector<Edge> added, std::vector<Edge> removed,
                     const SubmitOptions &opts)
{
    if (!running)
        throw std::logic_error("submitUpdate: server not running");
    Request r;
    r.kind = RequestKind::Update;
    r.addedEdges = std::move(added);
    r.removedEdges = std::move(removed);
    r.tenant = opts.tenant;
    r.priority = opts.priority;
    r.deadlineUs = opts.deadlineUs;
    return submitRequest(std::move(r));
}

ReplayReport
Server::stop()
{
    if (!running)
        throw std::logic_error("stop: server not running");
    liveQueue.close();
    schedulerThread.join();
    running = false;
    // Merge submit-side admission accounting now that the scheduler
    // thread is done with statsAcc / report.
    MutexLock lock(submitMutex);
    for (uint32_t tenant : liveAdmittedTenants)
        statsAcc.recordAdmission(tenant);
    for (const Rejection &rej : liveRejections) {
        statsAcc.recordRejection(rej);
        report.rejections.push_back(rej);
    }
    statsAcc.recordQueueDepth(liveMaxDepth);
    return std::move(report);
}

} // namespace igcn::serve
