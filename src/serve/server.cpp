#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace igcn::serve {

uint64_t
ServiceModel::inferenceCostUs(const BatchExecInfo &info,
                              NodeId graph_nodes,
                              EdgeId graph_edges) const
{
    const double nodes = info.wholeGraph
        ? static_cast<double>(graph_nodes)
        : static_cast<double>(info.subNodes);
    const double edges = info.wholeGraph
        ? static_cast<double>(graph_edges)
        : static_cast<double>(info.subEdges);
    const double cost = inferenceFixedUs +
        perTargetUs * static_cast<double>(info.targets) +
        perSubNodeUs * nodes + perSubEdgeUs * edges;
    return static_cast<uint64_t>(std::ceil(cost));
}

uint64_t
ServiceModel::updateCostUs(const UpdateResult &res) const
{
    const double cost = updateFixedUs +
        perAppliedEdgeUs * static_cast<double>(res.edgesApplied) +
        perRemovedEdgeUs * static_cast<double>(res.edgesRemoved) +
        perScannedEdgeUs *
            static_cast<double>(res.stats.edgesScanned);
    return static_cast<uint64_t>(std::ceil(cost));
}

Server::Server(CsrGraph g, DenseMatrix features,
               std::vector<DenseMatrix> weights, ServerConfig cfg)
    : cfg(cfg),
      hub(std::make_shared<GraphStateHub>(
          makeGraphState(std::move(g), cfg.locator))),
      engine(hub, std::move(features), std::move(weights),
             cfg.wholeGraphFraction),
      applier(hub, cfg.locator)
{}

Server::~Server()
{
    if (running)
        stop();
}

uint64_t
Server::nowUs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - clockOrigin)
            .count());
}

void
Server::processBatch(const MicroBatch &batch, bool real_time,
                     uint64_t &busy_until_us)
{
    if (batch.kind == RequestKind::Inference) {
        BatchExecInfo info;
        std::vector<InferenceResult> results =
            engine.runBatch(batch.requests, &info);
        const auto state = hub->acquire();
        const uint64_t done = real_time
            ? nowUs()
            : batch.formedAtUs +
                cfg.service.inferenceCostUs(info,
                                            state->graph.numNodes(),
                                            state->graph.numEdges());
        for (InferenceResult &r : results) {
            r.startUs = batch.formedAtUs;
            r.doneUs = done;
            statsAcc.recordInference(r);
            report.inference.push_back(std::move(r));
        }
        statsAcc.recordInferenceBatch(info);
        busy_until_us = done;
    } else {
        UpdateResult res = applier.apply(batch.requests);
        res.startUs = batch.formedAtUs;
        res.doneUs = real_time
            ? nowUs()
            : batch.formedAtUs + cfg.service.updateCostUs(res);
        statsAcc.recordUpdate(res);
        busy_until_us = res.doneUs;
        report.updates.push_back(std::move(res));
    }
}

ReplayReport
Server::runTrace(std::vector<Request> trace)
{
    if (running)
        throw std::logic_error(
            "runTrace: real-time server is running");
    std::stable_sort(trace.begin(), trace.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrivalUs < b.arrivalUs;
                     });
    RequestQueue queue;
    for (Request &r : trace)
        queue.push(std::move(r));
    queue.close();

    Scheduler scheduler(queue, cfg.scheduler, /*real_time=*/false);
    uint64_t busy = 0;
    MicroBatch batch;
    report = ReplayReport{};
    statsAcc = ServerStats{}; // each run reports its own telemetry
    while (scheduler.next(busy, batch))
        processBatch(batch, /*real_time=*/false, busy);
    return std::move(report);
}

void
Server::start()
{
    if (running)
        throw std::logic_error("start: already running");
    running = true;
    clockOrigin = std::chrono::steady_clock::now();
    report = ReplayReport{};
    statsAcc = ServerStats{};
    schedulerThread = std::thread([this] {
        Scheduler scheduler(liveQueue, cfg.scheduler,
                            /*real_time=*/true,
                            [this] { return nowUs(); });
        MicroBatch batch;
        uint64_t busy = 0;
        while (scheduler.next(nowUs(), batch))
            processBatch(batch, /*real_time=*/true, busy);
    });
}

uint64_t
Server::submitInference(NodeId node)
{
    if (!running)
        throw std::logic_error("submitInference: server not running");
    Request r;
    r.kind = RequestKind::Inference;
    r.id = nextId.fetch_add(1);
    r.arrivalUs = nowUs();
    r.node = node;
    const uint64_t id = r.id;
    liveQueue.push(std::move(r));
    return id;
}

uint64_t
Server::submitUpdate(std::vector<Edge> added,
                     std::vector<Edge> removed)
{
    if (!running)
        throw std::logic_error("submitUpdate: server not running");
    Request r;
    r.kind = RequestKind::Update;
    r.id = nextId.fetch_add(1);
    r.arrivalUs = nowUs();
    r.addedEdges = std::move(added);
    r.removedEdges = std::move(removed);
    const uint64_t id = r.id;
    liveQueue.push(std::move(r));
    return id;
}

ReplayReport
Server::stop()
{
    if (!running)
        throw std::logic_error("stop: server not running");
    liveQueue.close();
    schedulerThread.join();
    running = false;
    return std::move(report);
}

} // namespace igcn::serve
