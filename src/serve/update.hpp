/**
 * @file
 * The update applier: edge-mutation requests become new graph epochs.
 *
 * Each apply() takes one (possibly coalesced) update micro-batch of
 * mixed edge additions and deletions, folds it into one
 * last-write-wins net effect per undirected edge (the mixed-span
 * coalescing rule: requests in arrival order, additions before
 * removals within a request), and builds the next epoch privately —
 * merge-based edge insertion/deletion (CsrGraph::withAddedEdges /
 * withRemovedEdges), *incremental* islandization repair
 * (updateIslandization with both spans: the paper's evolving-graph
 * machinery, dissolve-on-remove included), fresh degree scaling, and
 * an in-place A_hat refresh that drops the matrix's cached CSC
 * adjunct (refreshNormalizedAdjacency) — and publishes it through
 * the GraphStateHub. In-flight inference batches keep their
 * pre-update snapshots; batches formed after the publish see the new
 * epoch. Updates whose net effect is empty (duplicate or
 * already-present additions, already-absent removals, add/remove
 * pairs cancelling inside the span, self loops, out-of-range
 * endpoints) publish no epoch.
 */

#pragma once

#include "runtime/thread_annotations.hpp"
#include "serve/engine.hpp"

namespace igcn::serve {

/** Applies update micro-batches; single logical writer. */
class UpdateApplier
{
  public:
    UpdateApplier(std::shared_ptr<GraphStateHub> hub,
                  LocatorConfig locator = {});

    /**
     * Apply a coalesced update micro-batch (all requests must be
     * Updates). Thread-safe: concurrent callers serialize so epochs
     * advance one at a time.
     */
    UpdateResult apply(std::span<const Request> batch)
        IGCN_EXCLUDES(writerMutex);

  private:
    std::shared_ptr<GraphStateHub> hub;
    LocatorConfig locator;
    Mutex writerMutex;
};

} // namespace igcn::serve
