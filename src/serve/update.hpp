/**
 * @file
 * The update applier: edge-addition requests become new graph epochs.
 *
 * Each apply() takes one (possibly coalesced) update micro-batch,
 * builds the next epoch privately — merge-based edge insertion
 * (CsrGraph::withAddedEdges), *incremental* islandization repair
 * (updateIslandization, the paper's evolving-graph machinery), fresh
 * degree scaling, and an in-place A_hat refresh that drops the
 * matrix's cached CSC adjunct (refreshNormalizedAdjacency) — and
 * publishes it through the GraphStateHub. In-flight inference
 * batches keep their pre-update snapshots; batches formed after the
 * publish see the new epoch. Updates that add nothing new (duplicate
 * edges, self loops, out-of-range endpoints) publish no epoch.
 */

#pragma once

#include "serve/engine.hpp"

namespace igcn::serve {

/** Applies update micro-batches; single logical writer. */
class UpdateApplier
{
  public:
    UpdateApplier(std::shared_ptr<GraphStateHub> hub,
                  LocatorConfig locator = {});

    /**
     * Apply a coalesced update micro-batch (all requests must be
     * Updates). Thread-safe: concurrent callers serialize so epochs
     * advance one at a time.
     */
    UpdateResult apply(std::span<const Request> batch);

  private:
    std::shared_ptr<GraphStateHub> hub;
    LocatorConfig locator;
    std::mutex writerMutex;
};

} // namespace igcn::serve
