#include "serve/update.hpp"

#include <map>
#include <stdexcept>

namespace igcn::serve {

UpdateApplier::UpdateApplier(std::shared_ptr<GraphStateHub> hub,
                             LocatorConfig locator)
    : hub(std::move(hub)), locator(locator)
{
    if (!this->hub)
        throw std::invalid_argument("UpdateApplier: null hub");
}

UpdateResult
UpdateApplier::apply(std::span<const Request> batch)
{
    if (batch.empty())
        throw std::invalid_argument("apply: empty update batch");
    MutexLock writer(writerMutex);
    const std::shared_ptr<const GraphState> cur = hub->acquire();
    const NodeId n = cur->graph.numNodes();

    UpdateResult res;
    res.id = batch.front().id;
    res.arrivalUs = batch.front().arrivalUs;
    res.coalesced = static_cast<uint32_t>(batch.size());

    // Mixed-span coalescing rule: fold the whole span into one
    // last-write-wins net effect per undirected edge, in event order
    // (requests in arrival order; within a request additions before
    // removals). Invalid endpoints and self loops are dropped here —
    // the serving boundary is lenient so a malformed trace event
    // cannot take the server down — and the net effect is then
    // screened against the current epoch, so the strict graph API
    // below (withAddedEdges / withRemovedEdges) always receives
    // exactly the edges that change presence.
    std::map<Edge, bool> want; // normalized edge -> present after span
    size_t proposed = 0;
    size_t invalid = 0;
    for (const Request &r : batch) {
        if (r.kind != RequestKind::Update)
            throw std::invalid_argument(
                "apply: non-update request in batch");
        for (const auto &[u, v] : r.addedEdges) {
            proposed++;
            if (u >= n || v >= n || u == v) {
                invalid++;
                continue;
            }
            want[{std::min(u, v), std::max(u, v)}] = true;
        }
        for (const auto &[u, v] : r.removedEdges) {
            proposed++;
            if (u >= n || v >= n || u == v) {
                invalid++;
                continue;
            }
            want[{std::min(u, v), std::max(u, v)}] = false;
        }
    }
    std::vector<Edge> fresh, stale;
    for (const auto &[e, present] : want) {
        const bool has = cur->graph.hasEdge(e.first, e.second);
        if (present && !has)
            fresh.push_back(e);
        else if (!present && has)
            stale.push_back(e);
    }
    res.edgesApplied = fresh.size();
    res.edgesRemoved = stale.size();
    res.edgesSkippedInvalid = invalid;
    res.edgesSkippedNoop =
        proposed - invalid - fresh.size() - stale.size();

    if (fresh.empty() && stale.empty()) {
        res.epoch = cur->epoch; // no-op: nothing to publish
        return res;
    }

    auto next = std::make_shared<GraphState>();
    next->epoch = cur->epoch + 1;
    // The want-map screening above makes fresh/stale disjoint
    // presence-changing spans, exactly withEditedEdges' contract; one
    // merge sweep replaces the two-pass add-then-remove rebuild.
    next->graph = cur->graph.withEditedEdges(fresh, stale);
    IslandProvenance prov;
    next->islands = updateIslandization(next->graph, cur->islands,
                                        fresh, stale, locator,
                                        &res.stats, &prov);
    // Epoch delta for the aggregation cache: structural provenance
    // (verbatim-preserved islands) intersected with the endpoint
    // dirty sweep — a structurally untouched island whose
    // normalized-adjacency values changed (absorbed intra-island
    // edge, degree change of a listed hub) must not carry its cached
    // aggregate forward.
    for (uint32_t dirty_id : dirtyIslandEndpointSweep(
             next->graph, next->islands, fresh, stale))
        prov.parentOf[dirty_id] = IslandProvenance::kNone;
    next->hasParent = true;
    next->parentEpoch = cur->epoch;
    next->aggProvenance = std::move(prov.parentOf);
    next->scale = degreeScaling(next->graph);
    // Copying drops the CSC cache by construction; the refresh
    // mutates the arrays in place and re-asserts the invalidation,
    // so a cached adjunct can never leak across epochs.
    next->normAdj = cur->normAdj;
    refreshNormalizedAdjacency(next->normAdj, next->graph,
                               next->scale);
    res.epoch = next->epoch;
    hub->publish(std::move(next));
    return res;
}

} // namespace igcn::serve
