#include "serve/update.hpp"

#include <algorithm>
#include <stdexcept>

namespace igcn::serve {

UpdateApplier::UpdateApplier(std::shared_ptr<GraphStateHub> hub,
                             LocatorConfig locator)
    : hub(std::move(hub)), locator(locator)
{
    if (!this->hub)
        throw std::invalid_argument("UpdateApplier: null hub");
}

UpdateResult
UpdateApplier::apply(std::span<const Request> batch)
{
    if (batch.empty())
        throw std::invalid_argument("apply: empty update batch");
    std::lock_guard<std::mutex> writer(writerMutex);
    const std::shared_ptr<const GraphState> cur = hub->acquire();
    const NodeId n = cur->graph.numNodes();

    UpdateResult res;
    res.id = batch.front().id;
    res.arrivalUs = batch.front().arrivalUs;
    res.coalesced = static_cast<uint32_t>(batch.size());

    // Normalize the batch: drop invalid endpoints, self loops, and
    // edges already present; deduplicate the rest.
    std::vector<Edge> fresh;
    size_t proposed = 0;
    for (const Request &r : batch) {
        if (r.kind != RequestKind::Update)
            throw std::invalid_argument(
                "apply: non-update request in batch");
        for (const auto &[u, v] : r.addedEdges) {
            proposed++;
            if (u >= n || v >= n || u == v)
                continue;
            if (cur->graph.hasEdge(u, v))
                continue;
            fresh.emplace_back(std::min(u, v), std::max(u, v));
        }
    }
    std::sort(fresh.begin(), fresh.end());
    fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
    res.edgesApplied = fresh.size();
    res.edgesSkipped = proposed - fresh.size();

    if (fresh.empty()) {
        res.epoch = cur->epoch; // no-op: nothing to publish
        return res;
    }

    auto next = std::make_shared<GraphState>();
    next->epoch = cur->epoch + 1;
    next->graph = cur->graph.withAddedEdges(fresh);
    next->islands = updateIslandization(next->graph, cur->islands,
                                        fresh, locator, &res.stats);
    next->scale = degreeScaling(next->graph);
    // Copying drops the CSC cache by construction; the refresh
    // mutates the arrays in place and re-asserts the invalidation,
    // so a cached adjunct can never leak across epochs.
    next->normAdj = cur->normAdj;
    refreshNormalizedAdjacency(next->normAdj, next->graph,
                               next->scale);
    res.epoch = next->epoch;
    hub->publish(std::move(next));
    return res;
}

} // namespace igcn::serve
