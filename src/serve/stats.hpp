/**
 * @file
 * Serving telemetry: per-request latency percentiles, batch-size
 * histogram, throughput, and inference/update interleave counters.
 *
 * Recording happens on the scheduler thread only (batches complete in
 * dispatch order); accessors are meant for after the run or between
 * batches. Latencies are kept exactly (one uint64 per request) so
 * percentiles are nearest-rank over the true distribution, not an
 * approximation — a 10k-request replay is 80 KB, far below sketching
 * territory.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "serve/request.hpp"

namespace igcn::serve {

/** Nearest-rank latency summary in microseconds. */
struct LatencySummary
{
    uint64_t count = 0;
    double p50 = 0, p95 = 0, p99 = 0;
    double meanUs = 0;
    uint64_t maxUs = 0;
};

/** Accumulates one serving run's telemetry. */
class ServerStats
{
  public:
    void recordInference(const InferenceResult &r);
    void recordInferenceBatch(const BatchExecInfo &info);
    void recordUpdate(const UpdateResult &r);

    LatencySummary inferenceLatency() const;
    LatencySummary updateLatency() const;

    /** batch size -> number of inference batches of that size. */
    const std::map<uint32_t, uint64_t> &batchSizeHistogram() const
    {
        return batchHist;
    }

    /** Completed inference requests / virtual makespan seconds. */
    double throughputRps() const;

    uint64_t inferenceRequests() const { return infLatUs.size(); }
    uint64_t inferenceBatches() const { return numInfBatches; }
    uint64_t updateApplications() const { return numUpdBatches; }
    uint64_t updatesCoalesced() const { return numUpdCoalesced; }
    uint64_t epochsPublished() const { return numEpochs; }
    uint64_t edgesApplied() const { return numEdgesApplied; }
    uint64_t edgesRemoved() const { return numEdgesRemoved; }
    uint64_t wholeGraphBatches() const { return numWholeGraph; }
    /** Inference <-> update transitions in dispatch order. */
    uint64_t interleaves() const { return numInterleaves; }
    double meanBatchSize() const;
    double meanSubgraphNodes() const;

    /** Multi-line human-readable summary (CLI / bench output). */
    std::string summary() const;

  private:
    std::vector<uint64_t> infLatUs;
    std::vector<uint64_t> updLatUs;
    std::map<uint32_t, uint64_t> batchHist;
    uint64_t numInfBatches = 0;
    uint64_t numUpdBatches = 0;
    uint64_t numUpdCoalesced = 0;
    uint64_t numEpochs = 0;
    uint64_t numEdgesApplied = 0;
    uint64_t numEdgesRemoved = 0;
    uint64_t numWholeGraph = 0;
    uint64_t numInterleaves = 0;
    uint64_t subNodesTotal = 0;
    uint64_t subBatches = 0;
    uint64_t firstArrivalUs = ~uint64_t{0};
    uint64_t lastDoneUs = 0;
    int lastKind = -1; // -1 none, else RequestKind cast
};

} // namespace igcn::serve
