/**
 * @file
 * Serving telemetry: per-request latency percentiles, batch-size
 * histogram, throughput, and inference/update interleave counters.
 *
 * Recording happens on the scheduler thread only (batches complete in
 * dispatch order); accessors are meant for after the run or between
 * batches. Latencies are kept exactly (one uint64 per request) so
 * percentiles are nearest-rank over the true distribution, not an
 * approximation — a 10k-request replay is 80 KB, far below sketching
 * territory.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "serve/request.hpp"

namespace igcn::serve {

/** Nearest-rank latency summary in microseconds. */
struct LatencySummary
{
    uint64_t count = 0;
    double p50 = 0, p95 = 0, p99 = 0;
    double meanUs = 0;
    uint64_t maxUs = 0;
};

/** Per-tenant admission/shedding/latency accounting. */
struct TenantStats
{
    uint64_t admitted = 0;
    uint64_t rejected = 0;   ///< token bucket empty (over budget)
    uint64_t overloaded = 0; ///< queue at capacity
    uint64_t expired = 0;    ///< dropped: deadline passed waiting
    uint64_t shedStale = 0;  ///< dropped: blocked on freshness
    uint64_t served = 0;
    /** Served latencies, for per-tenant percentiles. */
    std::vector<uint64_t> latUs;

    uint64_t shed() const { return rejected + overloaded; }
    uint64_t dropped() const { return expired + shedStale; }
};

/** Accumulates one serving run's telemetry. */
class ServerStats
{
  public:
    void recordInference(const InferenceResult &r);
    void recordInferenceBatch(const BatchExecInfo &info);
    void recordUpdate(const UpdateResult &r);
    /** Record an admitted request (SLO path). */
    void recordAdmission(uint32_t tenant);
    /** Record a refused request (admission or drop). */
    void recordRejection(const Rejection &r);
    /** Track the waiting-queue depth after an admission. */
    void recordQueueDepth(size_t depth);

    LatencySummary inferenceLatency() const;
    LatencySummary updateLatency() const;
    /** Served-latency summary of one tenant. */
    LatencySummary tenantLatency(uint32_t tenant) const;

    const std::map<uint32_t, TenantStats> &tenantStats() const
    {
        return tenants;
    }
    /** epochs-behind at serve time -> served request count. */
    const std::map<uint32_t, uint64_t> &stalenessHistogram() const
    {
        return staleHist;
    }

    uint64_t admittedRequests() const { return numAdmitted; }
    uint64_t shedRequests() const { return numRejected + numOverloaded; }
    uint64_t rejectedRequests() const { return numRejected; }
    uint64_t overloadedRequests() const { return numOverloaded; }
    uint64_t expiredRequests() const { return numExpired; }
    uint64_t shedStaleRequests() const { return numShedStale; }
    /** Shed + dropped over all submissions seen by admission. */
    double shedRate() const;
    uint64_t maxQueueDepth() const { return maxDepth; }
    /** Served Strict-freshness requests that started past their
     *  deadline — 0 by construction of drop-expired (CI gates on
     *  it). */
    uint64_t strictDeadlineViolations() const
    {
        return numStrictViolations;
    }
    /** Served requests observing a non-fresh epoch. */
    uint64_t staleServes() const { return numStaleServes; }

    /** batch size -> number of inference batches of that size. */
    const std::map<uint32_t, uint64_t> &batchSizeHistogram() const
    {
        return batchHist;
    }

    /** Completed inference requests / virtual makespan seconds. */
    double throughputRps() const;

    uint64_t inferenceRequests() const { return infLatUs.size(); }
    uint64_t inferenceBatches() const { return numInfBatches; }
    uint64_t updateApplications() const { return numUpdBatches; }
    uint64_t updatesCoalesced() const { return numUpdCoalesced; }
    uint64_t epochsPublished() const { return numEpochs; }
    uint64_t edgesApplied() const { return numEdgesApplied; }
    uint64_t edgesRemoved() const { return numEdgesRemoved; }
    /** Malformed update events dropped (out-of-range / self loop). */
    uint64_t edgesSkippedInvalid() const { return numEdgesSkippedInvalid; }
    /** Update events with no presence change (benign duplicates). */
    uint64_t edgesSkippedNoop() const { return numEdgesSkippedNoop; }
    uint64_t wholeGraphBatches() const { return numWholeGraph; }
    /** Inference <-> update transitions in dispatch order. */
    uint64_t interleaves() const { return numInterleaves; }
    double meanBatchSize() const;
    double meanSubgraphNodes() const;

    /** Multi-line human-readable summary (CLI / bench output). */
    std::string summary() const;

    /** Per-tenant rejection summary table (CLI output); empty string
     *  when no admission decisions were recorded. */
    std::string rejectionTable() const;

  private:
    std::vector<uint64_t> infLatUs;
    std::vector<uint64_t> updLatUs;
    std::map<uint32_t, uint64_t> batchHist;
    uint64_t numInfBatches = 0;
    uint64_t numUpdBatches = 0;
    uint64_t numUpdCoalesced = 0;
    uint64_t numEpochs = 0;
    uint64_t numEdgesApplied = 0;
    uint64_t numEdgesRemoved = 0;
    uint64_t numEdgesSkippedInvalid = 0;
    uint64_t numEdgesSkippedNoop = 0;
    uint64_t numWholeGraph = 0;
    uint64_t numInterleaves = 0;
    uint64_t subNodesTotal = 0;
    uint64_t subBatches = 0;
    uint64_t firstArrivalUs = ~uint64_t{0};
    uint64_t lastDoneUs = 0;
    int lastKind = -1; // -1 none, else RequestKind cast

    // SLO accounting.
    std::map<uint32_t, TenantStats> tenants;
    std::map<uint32_t, uint64_t> staleHist;
    uint64_t numAdmitted = 0;
    uint64_t numRejected = 0;
    uint64_t numOverloaded = 0;
    uint64_t numExpired = 0;
    uint64_t numShedStale = 0;
    uint64_t numStrictViolations = 0;
    uint64_t numStaleServes = 0;
    uint64_t maxDepth = 0;
};

} // namespace igcn::serve
