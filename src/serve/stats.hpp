/**
 * @file
 * Serving telemetry: per-request latency distributions, batch-size
 * and staleness accounting, throughput, and admission/shedding
 * counters — all backed by one obs::Registry per run (DESIGN.md
 * section 8), so `igcn serve --metrics-out` exports exactly what the
 * summaries print: there is a single accounting surface.
 *
 * Latency percentiles come from fixed-boundary histograms
 * (obs::latencyBoundsUs, 1-2-5 per decade): memory is bounded under
 * sustained traffic (a few hundred integers per family instead of
 * one uint64 per request), count/sum/mean/max stay exact, and
 * quantiles are rank-interpolated within the containing bucket —
 * off from the exact nearest-rank value by at most one bucket width
 * (tests/test_serving.cpp pins this compat bound).
 *
 * Recording happens on the scheduler thread only (batches complete in
 * dispatch order); accessors are meant for after the run or between
 * batches. Everything recorded is thread-exact: the same events are
 * counted in the same order at any IGCN_THREADS.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "serve/agg_cache.hpp"
#include "serve/engine.hpp"
#include "serve/request.hpp"

namespace igcn::serve {

/** Latency summary in microseconds. count/mean/max are exact;
 *  p50/p95/p99 are histogram estimates (<= one bucket width off). */
struct LatencySummary
{
    uint64_t count = 0;
    double p50 = 0, p95 = 0, p99 = 0;
    double meanUs = 0;
    uint64_t maxUs = 0;
};

/** Per-tenant admission/shedding snapshot (see tenantStats()). */
struct TenantStats
{
    uint64_t admitted = 0;
    uint64_t rejected = 0;   ///< token bucket empty (over budget)
    uint64_t overloaded = 0; ///< queue at capacity
    uint64_t expired = 0;    ///< dropped: deadline passed waiting
    uint64_t shedStale = 0;  ///< dropped: blocked on freshness
    uint64_t served = 0;

    uint64_t shed() const { return rejected + overloaded; }
    uint64_t dropped() const { return expired + shedStale; }
};

/**
 * Accumulates one serving run's telemetry into an owned registry.
 *
 * A run reset is reset(), never move-assignment: assigning a fresh
 * ServerStats would destroy the old registry, dangling every
 * externally held registry() reference (the CLI's Prometheus export,
 * tests snapshotting between runs) — so the move operations are
 * deleted and reset() zeroes the metrics in place, keeping both the
 * registry object and every cached metric pointer valid
 * (tests/test_serving.cpp pins this under ASan).
 */
class ServerStats
{
  public:
    ServerStats();

    ServerStats(ServerStats &&) = delete;
    ServerStats &operator=(ServerStats &&) = delete;

    /**
     * Zero every recorded value for a new run. In-place: the
     * registry, its registered metrics, and all cached metric
     * pointers (including the per-tenant cells) survive, so
     * recording may continue immediately and references obtained
     * via registry() before the reset stay valid.
     */
    void reset();

    void recordInference(const InferenceResult &r);
    void recordInferenceBatch(const BatchExecInfo &info);
    /**
     * Fold a cumulative AggCacheStats snapshot into the registry.
     * Counters advance by the delta against the previous snapshot
     * (snapshots are monotone within a run; the cache and the stats
     * are reset together at run start), gauges track the current
     * bytes/entries. Call after each inference batch.
     */
    void recordAggCache(const AggCacheStats &s);
    void recordUpdate(const UpdateResult &r);
    /** Record an admitted request (SLO path). */
    void recordAdmission(uint32_t tenant);
    /** Record a refused request (admission or drop). */
    void recordRejection(const Rejection &r);
    /** Track the waiting-queue depth after an admission. */
    void recordQueueDepth(size_t depth);

    LatencySummary inferenceLatency() const;
    LatencySummary updateLatency() const;
    /** Served-latency summary of one tenant. */
    LatencySummary tenantLatency(uint32_t tenant) const;

    /** Per-tenant snapshot, rebuilt from the registry's labeled
     *  counter families. */
    std::map<uint32_t, TenantStats> tenantStats() const;
    /** epochs-behind at serve time -> served request count (exact;
     *  a labeled counter family, not a bucketed histogram). */
    std::map<uint32_t, uint64_t> stalenessHistogram() const;
    /** batch size -> number of inference batches of that size
     *  (exact; labeled counter family). */
    std::map<uint32_t, uint64_t> batchSizeHistogram() const;

    uint64_t admittedRequests() const;
    uint64_t shedRequests() const;
    uint64_t rejectedRequests() const;
    uint64_t overloadedRequests() const;
    uint64_t expiredRequests() const;
    uint64_t shedStaleRequests() const;
    /** Shed + dropped over all submissions seen by admission. */
    double shedRate() const;
    uint64_t maxQueueDepth() const;
    /** Served Strict-freshness requests that started past their
     *  deadline — 0 by construction of drop-expired (CI gates on
     *  it). */
    uint64_t strictDeadlineViolations() const;
    /** Served requests observing a non-fresh epoch. */
    uint64_t staleServes() const;

    /** Completed inference requests / virtual makespan seconds. */
    double throughputRps() const;

    uint64_t inferenceRequests() const;
    uint64_t inferenceBatches() const;
    uint64_t updateApplications() const;
    uint64_t updatesCoalesced() const;
    uint64_t epochsPublished() const;
    uint64_t edgesApplied() const;
    uint64_t edgesRemoved() const;
    /** Malformed update events dropped (out-of-range / self loop). */
    uint64_t edgesSkippedInvalid() const;
    /** Update events with no presence change (benign duplicates). */
    uint64_t edgesSkippedNoop() const;
    uint64_t wholeGraphBatches() const;
    /** Inference <-> update transitions in dispatch order. */
    uint64_t interleaves() const;
    double meanBatchSize() const;
    double meanSubgraphNodes() const;

    // Aggregation-cache accessors (all zero when the cache is off).
    uint64_t aggCacheHits() const;
    uint64_t aggCacheMisses() const;
    uint64_t aggCacheFills() const;
    uint64_t aggCacheEvictions() const;
    uint64_t aggCacheInvalidated() const;
    uint64_t aggCacheBytes() const;
    uint64_t aggCacheEntries() const;
    /** hits / (hits + misses); 0 when no lookups happened. */
    double aggCacheHitRate() const;

    /** Multi-line human-readable summary (CLI / bench output). */
    std::string summary() const;

    /** Per-tenant rejection summary table (CLI output); empty string
     *  when no admission decisions were recorded. */
    std::string rejectionTable() const;

    /** The run's metric registry (Prometheus export surface). */
    const obs::Registry &registry() const { return *reg; }

  private:
    /** Cached per-tenant metric cells (hot admission/serve path). */
    struct TenantCells
    {
        obs::Counter *admitted = nullptr;
        obs::Counter *rejected = nullptr;
        obs::Counter *overloaded = nullptr;
        obs::Counter *expired = nullptr;
        obs::Counter *shedStale = nullptr;
        obs::Counter *served = nullptr;
        obs::Histogram *latUs = nullptr;
    };

    TenantCells &tenantCells(uint32_t tenant);

    std::unique_ptr<obs::Registry> reg;

    // Cached hot-path cells; all point into *reg.
    obs::Histogram *infLatUs;
    obs::Histogram *updLatUs;
    obs::Counter *infRequests;
    obs::Counter *infBatches;
    obs::Counter *updBatches;
    obs::Counter *updCoalesced;
    obs::Counter *epochs;
    obs::Counter *edgesAdded;
    obs::Counter *edgesDropped;
    obs::Counter *edgesInvalid;
    obs::Counter *edgesNoop;
    obs::Counter *wholeGraph;
    obs::Counter *interleaveCount;
    obs::Counter *subNodesTotal;
    obs::Counter *subBatchesTotal;
    obs::Counter *staleServeCount;
    obs::Counter *strictViolations;
    obs::Counter *aggHits;
    obs::Counter *aggMisses;
    obs::Counter *aggFills;
    obs::Counter *aggEvictions;
    obs::Counter *aggInvalidated;
    obs::Counter *aggClears;
    obs::Gauge *aggBytes;
    obs::Gauge *aggEntries;
    obs::Gauge *queueDepth;
    obs::Gauge *queueDepthMax;
    std::map<uint32_t, TenantCells> tenantCache;

    // Run bounds / interleave state (not metrics: internal markers).
    uint64_t firstArrivalUs = ~uint64_t{0};
    uint64_t lastDoneUs = 0;
    int lastKind = -1; // -1 none, else RequestKind cast
    /** Previous cumulative cache snapshot (delta base). */
    AggCacheStats lastAgg;
};

} // namespace igcn::serve
