/**
 * @file
 * Thread-safe FCFS request queue.
 *
 * The queue is strictly first-come-first-served: the scheduler only
 * ever inspects and pops the *head*, so requests can never be
 * reordered — an Update at the head closes the inference micro-batch
 * being formed, which is what gives updates their sequence-point
 * semantics (every inference request before the update in arrival
 * order is served against the pre-update epoch, everything after
 * against the post-update epoch).
 *
 * Two clock disciplines share one implementation:
 *  - virtual (replay) mode: the driver pre-loads the entire trace and
 *    closes the queue; pops never block and batching decisions are a
 *    pure function of the trace timestamps and the scheduler config;
 *  - real-time mode: arrivals are stamped by the server clock and
 *    popKindBefore blocks until the batching deadline, an eligible
 *    head, or close.
 */

#pragma once

#include <deque>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "runtime/thread_annotations.hpp"
#include "serve/request.hpp"

namespace igcn::serve {

/** FCFS queue; see file comment for the two clock disciplines. */
class RequestQueue
{
  public:
    /** Clock used by real-time waits: microseconds on the server clock. */
    using NowFn = std::function<uint64_t()>;

    enum class Pop : uint8_t
    {
        Got,      ///< head popped into out
        NotReady, ///< head exists but is ineligible (kind/deadline)
        Closed,   ///< queue closed and drained
    };

    /** Append a request (FIFO) and wake waiters. */
    void push(Request r);

    /** Non-blocking pop of the head, whatever its kind. */
    bool tryPop(Request &out);

    /** Mark end-of-stream; blocked pops return once drained. */
    void close();

    bool closed() const;
    size_t size() const;

    /**
     * Blocking pop of the head, whatever its kind: waits until a
     * request is queued or the queue is closed and drained. Never
     * returns NotReady.
     */
    Pop popHead(Request &out);

    /**
     * Pop the head only if it is a `kind` request with arrival <=
     * deadline_us. With wait=false (virtual mode) the decision is
     * immediate: a missing head, a different kind, or a later arrival
     * is NotReady. With wait=true (real-time mode) an empty queue
     * blocks until now_us() passes deadline_us, an eligible head
     * appears, or the queue closes; an ineligible head is NotReady
     * immediately (it closes the batch).
     */
    Pop popKindBefore(RequestKind kind, uint64_t deadline_us, bool wait,
                      const NowFn &now_us, Request &out);

    /**
     * Arrival time of the current head without popping it; false when
     * the queue is empty. The virtual-mode scheduler uses this to
     * dispatch a partial batch the moment its closing request (an
     * already-queued head of the other kind) arrived, rather than
     * charging the full batching deadline.
     */
    bool peekHeadArrival(uint64_t &arrival_us) const;

  private:
    mutable Mutex mutex;
    CondVar cv;
    std::deque<Request> items IGCN_GUARDED_BY(mutex);
    bool isClosed IGCN_GUARDED_BY(mutex) = false;
};

/**
 * Earliest-deadline-first pool of admitted inference requests.
 *
 * Ordering key: (deadline, priority, arrival, id) — EDF first, with
 * no-deadline requests (deadlineUs == 0) forming an arrival-ordered
 * tail after every deadlined request, and Priority breaking deadline
 * ties. The pool also carries each request's freshness requirement:
 * `requiredSeq` is the number of update requests admitted before it,
 * and the request is *eligible* once the applier has caught up to
 * within its staleness budget (0 for Freshness::Strict, the
 * configured bound for Bounded). Scheduling = pop eligible entries
 * in EDF order; requests whose deadline passes while pooled are
 * dropped and classified (Expired if they were eligible and simply
 * waited too long, ShedStale if the freshness gate was the blocker).
 *
 * Single-threaded by design: the replay loop owns one, and the
 * real-time scheduler thread owns one. Thread-safe hand-off happens
 * upstream in RequestQueue.
 */
class EdfQueue
{
  public:
    struct Entry
    {
        Request req;
        /** Update requests admitted before this one. */
        uint64_t requiredSeq = 0;
    };

    /** A dropped entry and why it was dropped. */
    struct Dropped
    {
        Entry entry;
        ServeError error = ServeError::Expired;
    };

    void add(Request r, uint64_t required_seq);

    bool empty() const { return pool.empty(); }
    size_t size() const { return pool.size(); }

    /** Earliest arrival among pooled entries (pool must be
     *  non-empty). */
    uint64_t earliestArrivalUs() const;

    /**
     * Pop the EDF-first entry eligible at `applied_seq` updates
     * applied, under staleness bound K (Strict entries use 0).
     * False when no pooled entry is eligible.
     */
    bool popEligible(uint64_t applied_seq, uint32_t staleness_bound,
                     Entry &out);

    /**
     * Remove every entry whose nonzero deadline is < now_us and
     * classify it: Expired if it was eligible when dropped,
     * ShedStale if its freshness gate was unsatisfied.
     */
    std::vector<Dropped> dropExpired(uint64_t now_us,
                                     uint64_t applied_seq,
                                     uint32_t staleness_bound);

  private:
    struct Key
    {
        uint64_t deadline; // 0 mapped to UINT64_MAX
        uint8_t priority;
        uint64_t arrival;
        uint64_t id;
        auto operator<=>(const Key &) const = default;
    };
    static Key keyOf(const Request &r, uint64_t required_seq);
    static bool eligible(const Entry &e, uint64_t applied_seq,
                         uint32_t staleness_bound);

    std::map<Key, Entry> pool;
};

} // namespace igcn::serve
