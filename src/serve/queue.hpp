/**
 * @file
 * Thread-safe FCFS request queue.
 *
 * The queue is strictly first-come-first-served: the scheduler only
 * ever inspects and pops the *head*, so requests can never be
 * reordered — an Update at the head closes the inference micro-batch
 * being formed, which is what gives updates their sequence-point
 * semantics (every inference request before the update in arrival
 * order is served against the pre-update epoch, everything after
 * against the post-update epoch).
 *
 * Two clock disciplines share one implementation:
 *  - virtual (replay) mode: the driver pre-loads the entire trace and
 *    closes the queue; pops never block and batching decisions are a
 *    pure function of the trace timestamps and the scheduler config;
 *  - real-time mode: arrivals are stamped by the server clock and
 *    popKindBefore blocks until the batching deadline, an eligible
 *    head, or close.
 */

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>

#include "serve/request.hpp"

namespace igcn::serve {

/** FCFS queue; see file comment for the two clock disciplines. */
class RequestQueue
{
  public:
    /** Clock used by real-time waits: microseconds on the server clock. */
    using NowFn = std::function<uint64_t()>;

    enum class Pop : uint8_t
    {
        Got,      ///< head popped into out
        NotReady, ///< head exists but is ineligible (kind/deadline)
        Closed,   ///< queue closed and drained
    };

    /** Append a request (FIFO) and wake waiters. */
    void push(Request r);

    /** Mark end-of-stream; blocked pops return once drained. */
    void close();

    bool closed() const;
    size_t size() const;

    /**
     * Blocking pop of the head, whatever its kind: waits until a
     * request is queued or the queue is closed and drained. Never
     * returns NotReady.
     */
    Pop popHead(Request &out);

    /**
     * Pop the head only if it is a `kind` request with arrival <=
     * deadline_us. With wait=false (virtual mode) the decision is
     * immediate: a missing head, a different kind, or a later arrival
     * is NotReady. With wait=true (real-time mode) an empty queue
     * blocks until now_us() passes deadline_us, an eligible head
     * appears, or the queue closes; an ineligible head is NotReady
     * immediately (it closes the batch).
     */
    Pop popKindBefore(RequestKind kind, uint64_t deadline_us, bool wait,
                      const NowFn &now_us, Request &out);

    /**
     * Arrival time of the current head without popping it; false when
     * the queue is empty. The virtual-mode scheduler uses this to
     * dispatch a partial batch the moment its closing request (an
     * already-queued head of the other kind) arrived, rather than
     * charging the full batching deadline.
     */
    bool peekHeadArrival(uint64_t &arrival_us) const;

  private:
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Request> items;
    bool isClosed = false;
};

} // namespace igcn::serve
