#include "serve/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace igcn::serve {

Scheduler::Scheduler(RequestQueue &queue, SchedulerConfig cfg,
                     bool real_time, RequestQueue::NowFn now_us)
    : queue(queue), cfg(cfg), realTime(real_time),
      nowUs(std::move(now_us))
{
    if (realTime && !nowUs)
        throw std::invalid_argument(
            "Scheduler: real_time mode requires a now_us clock");
}

bool
Scheduler::next(uint64_t not_before_us, MicroBatch &out)
{
    Request first;
    if (queue.popHead(first) == RequestQueue::Pop::Closed)
        return false;

    const uint64_t start = std::max(not_before_us, first.arrivalUs);
    const uint64_t deadline = start + cfg.maxWaitUs;
    const uint32_t cap = first.kind == RequestKind::Inference
        ? std::max<uint32_t>(1, cfg.maxBatch)
        : std::max<uint32_t>(1, cfg.maxUpdateCoalesce);

    out.kind = first.kind;
    out.requests.clear();
    out.requests.push_back(std::move(first));
    Request r;
    while (out.requests.size() < cap &&
           queue.popKindBefore(out.kind, deadline, realTime, nowUs,
                               r) == RequestQueue::Pop::Got)
        out.requests.push_back(std::move(r));

    if (realTime) {
        out.formedAtUs = nowUs(); // the actual dispatch moment
        return true;
    }
    // Virtual dispatch time: a full batch leaves the moment its last
    // member arrived. A partial batch leaves as soon as the scheduler
    // can know nothing more will join it — when the closing request
    // (the queued head of the other kind, or a same-kind head past
    // the deadline) arrived, when the stream ended (queue closed), or
    // at the batching deadline, whichever is earliest.
    if (out.requests.size() == cap) {
        out.formedAtUs = std::max(start, out.requests.back().arrivalUs);
        return true;
    }
    uint64_t head_arrival = 0;
    if (queue.peekHeadArrival(head_arrival))
        out.formedAtUs = std::max(start,
                                  std::min(deadline, head_arrival));
    else if (queue.closed())
        out.formedAtUs = std::max(start,
                                  out.requests.back().arrivalUs);
    else
        out.formedAtUs = deadline;
    return true;
}

} // namespace igcn::serve
