#include "serve/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace igcn::serve {

Scheduler::Scheduler(RequestQueue &queue, SchedulerConfig cfg,
                     bool real_time, RequestQueue::NowFn now_us)
    : queue(queue), cfg(cfg), realTime(real_time),
      nowUs(std::move(now_us))
{
    if (realTime && !nowUs)
        throw std::invalid_argument(
            "Scheduler: real_time mode requires a now_us clock");
}

bool
Scheduler::next(uint64_t not_before_us, MicroBatch &out)
{
    Request first;
    if (queue.popHead(first) == RequestQueue::Pop::Closed)
        return false;

    // Continuous batching (the SloScheduler discipline): the batch
    // starts the moment the engine and the head are both ready, and
    // admits exactly the same-kind requests already arrived by then —
    // no straggler wait, so under light load requests go out alone
    // immediately and under load batches fill from the backlog.
    const uint64_t start = std::max(not_before_us, first.arrivalUs);
    const uint32_t cap = first.kind == RequestKind::Inference
        ? std::max<uint32_t>(1, cfg.maxBatch)
        : std::max<uint32_t>(1, cfg.maxUpdateCoalesce);

    out.kind = first.kind;
    out.requests.clear();
    out.requests.push_back(std::move(first));
    Request r;
    while (out.requests.size() < cap &&
           queue.popKindBefore(out.kind, start, /*wait=*/false, nowUs,
                               r) == RequestQueue::Pop::Got)
        out.requests.push_back(std::move(r));

    // The dispatch moment: the batch boundary is the engine-free
    // instant itself in both clock disciplines (real-time arrivals
    // are stamped by the same clock, so everything queued is already
    // eligible).
    out.formedAtUs = realTime ? nowUs() : start;
    return true;
}

// -------------------------------------------------------- SloScheduler

SloScheduler::SloScheduler(SchedulerConfig batch_cfg, SloConfig slo,
                           const FaultPlan *faults)
    : cfg(batch_cfg), slo(slo), faults(faults)
{}

void
SloScheduler::admit(Request r)
{
    if (r.kind == RequestKind::Update) {
        admittedUpd++;
        upd.push_back(std::move(r));
    } else {
        inf.add(std::move(r), admittedUpd);
    }
}

uint64_t
SloScheduler::nextDispatchTimeUs(uint64_t busy_until_us) const
{
    uint64_t earliest = ~uint64_t{0};
    if (!inf.empty())
        earliest = inf.earliestArrivalUs();
    if (!upd.empty())
        earliest = std::min(earliest, upd.front().arrivalUs);
    uint64_t t = std::max(busy_until_us, earliest);
    if (faults)
        t = faults->resolveStall(t);
    return t;
}

bool
SloScheduler::next(uint64_t busy_until_us, Decision &out)
{
    out = Decision{};
    if (empty())
        return false;
    const uint64_t t = nextDispatchTimeUs(busy_until_us);

    // 1. Drop-expired: requests that cannot start by their deadline
    // are refused, never served late.
    out.dropped = inf.dropExpired(t, applied, slo.stalenessBound);

    // 2. EDF inference batch over eligible requests.
    const uint32_t inf_cap = std::max<uint32_t>(1, cfg.maxBatch);
    EdfQueue::Entry e;
    while (out.batch.requests.size() < inf_cap &&
           inf.popEligible(applied, slo.stalenessBound, e)) {
        out.epochsBehind.push_back(static_cast<uint32_t>(
            e.requiredSeq > applied ? e.requiredSeq - applied : 0));
        out.batch.requests.push_back(std::move(e.req));
    }
    if (!out.batch.requests.empty()) {
        out.kind = Decision::Kind::Inference;
        out.batch.kind = RequestKind::Inference;
        out.batch.formedAtUs = t;
        return true;
    }

    // 3. Update application (coalesced). Reached when no inference
    // is eligible: pool empty, or everyone is blocked on these
    // updates.
    if (!upd.empty()) {
        const uint32_t upd_cap =
            std::max<uint32_t>(1, cfg.maxUpdateCoalesce);
        out.kind = Decision::Kind::Update;
        out.batch.kind = RequestKind::Update;
        out.batch.formedAtUs = t;
        while (out.batch.requests.size() < upd_cap && !upd.empty()) {
            out.batch.requests.push_back(std::move(upd.front()));
            upd.pop_front();
        }
        applied += out.batch.requests.size();
        return true;
    }

    // Only drops happened this step (possibly emptying the pool).
    out.kind = Decision::Kind::Drops;
    out.batch.formedAtUs = t;
    return true;
}

} // namespace igcn::serve
