/**
 * @file
 * Epoch-keyed, dirty-island-invalidated cache of per-island layer-1
 * aggregation results (DESIGN.md section 9).
 *
 * One entry = one island of the current epoch: the *pre-ReLU* layer-1
 * rows (A_hat X W0, the first spmm's output) of the island's member
 * nodes, in Island::nodes order, as the whole-graph forward computes
 * them. Entries are filled from rows the engine computed anyway
 * (never recomputed specially), so a hit substitutes bytes that are
 * bit-identical to what the masked spmm would have produced — the
 * cache can change *when* a row is computed but never *what* it is.
 *
 * Lineage: the cache stores exactly one epoch at a time. When the
 * applier publishes epoch E+1 with parent E, advanceTo() remaps
 * surviving entries through GraphState::aggProvenance (new island id
 * -> parent id, already intersected with the endpoint dirty sweep)
 * and drops the rest; a lineage gap (fresh state, missed epoch)
 * clears the cache. Eviction is LRU by a deterministic consult tick
 * under a byte budget, so replayed runs evict identically.
 *
 * Thread safety: all methods lock internally. Concurrent use is
 * correct (lookups copy under the lock and are epoch-checked, so a
 * racing advance yields a miss, never wrong bytes); determinism of
 * the hit/evict sequence is only claimed for the single-threaded
 * consult order of virtual-clock replay.
 */

#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "runtime/thread_annotations.hpp"

namespace igcn::serve {

struct GraphState;

/** Cache knobs (ServerConfig::aggCache). */
struct AggCacheConfig
{
    /** Off by default: the cache is opt-in (CLI --agg-cache). */
    bool enabled = false;
    /** Payload byte budget; LRU eviction keeps usage at or below. */
    size_t maxBytes = 64ull << 20;
};

/** Cumulative counters of one cache lifetime (run). */
struct AggCacheStats
{
    uint64_t hits = 0;        ///< island lookups served from cache
    uint64_t misses = 0;      ///< island lookups that fell through
    uint64_t fills = 0;       ///< entries inserted
    uint64_t evictions = 0;   ///< entries evicted by the byte budget
    uint64_t invalidated = 0; ///< entries dropped by epoch advance
    uint64_t clears = 0;      ///< whole-cache drops (lineage gap)
    uint64_t bytes = 0;       ///< current payload bytes
    uint64_t entries = 0;     ///< current entry count
};

/** See file comment. */
class AggCache
{
  public:
    explicit AggCache(AggCacheConfig cfg);

    /**
     * Move the cache to state's epoch: no-op when already there,
     * provenance remap when the cache holds the state's parent
     * epoch, full clear otherwise (including the first call).
     */
    void advanceTo(const GraphState &state) IGCN_EXCLUDES(mutex);

    /**
     * Raw advance (advanceTo's engine-independent core; the fuzz
     * oracle drives it directly). provenance[newId] is the parent
     * island id whose aggregate is still valid, or kNoParent.
     */
    void advance(uint64_t new_epoch, bool has_parent,
                 uint64_t parent_epoch,
                 std::span<const uint32_t> provenance)
        IGCN_EXCLUDES(mutex);

    static constexpr uint32_t kNoParent = ~uint32_t{0};

    /**
     * Look up an island's entry and copy it into out (exactly
     * expected_floats long). A hit refreshes the entry's LRU tick.
     * Counts a miss when the cache is not at `epoch` (a racing
     * advance), the entry is absent, or its length mismatches —
     * never returns foreign bytes.
     */
    bool lookup(uint64_t epoch, uint32_t island_id,
                size_t expected_floats, float *out)
        IGCN_EXCLUDES(mutex);

    /**
     * Insert an island's rows (dropped silently when the cache moved
     * past `epoch`). Evicts lowest-tick entries until the byte
     * budget holds again.
     */
    void insert(uint64_t epoch, uint32_t island_id,
                std::vector<float> rows) IGCN_EXCLUDES(mutex);

    /** Fresh lifetime: drop every entry, zero the counters (a new
     *  run's reset; not counted as a clear). */
    void reset() IGCN_EXCLUDES(mutex);

    AggCacheStats stats() const IGCN_EXCLUDES(mutex);

    const AggCacheConfig &config() const { return cfg; }

  private:
    struct Entry
    {
        std::vector<float> rows;
        uint64_t tick = 0;
    };

    void dropBytesLocked(const Entry &e) IGCN_REQUIRES(mutex);
    void evictOverBudgetLocked() IGCN_REQUIRES(mutex);

    AggCacheConfig cfg;
    mutable Mutex mutex;
    /** Epoch the entries belong to; meaningless until primed. */
    uint64_t cur IGCN_GUARDED_BY(mutex) = 0;
    bool primed IGCN_GUARDED_BY(mutex) = false;
    uint64_t tick IGCN_GUARDED_BY(mutex) = 0;
    std::map<uint32_t, Entry> entries IGCN_GUARDED_BY(mutex);
    AggCacheStats st IGCN_GUARDED_BY(mutex);
};

} // namespace igcn::serve
