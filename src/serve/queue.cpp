#include "serve/queue.hpp"

#include <chrono>

namespace igcn::serve {

void
RequestQueue::push(Request r)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        items.push_back(std::move(r));
    }
    cv.notify_all();
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        isClosed = true;
    }
    cv.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return isClosed;
}

size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return items.size();
}

RequestQueue::Pop
RequestQueue::popHead(Request &out)
{
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return !items.empty() || isClosed; });
    if (items.empty())
        return Pop::Closed;
    out = std::move(items.front());
    items.pop_front();
    return Pop::Got;
}

bool
RequestQueue::peekHeadArrival(uint64_t &arrival_us) const
{
    std::lock_guard<std::mutex> lock(mutex);
    if (items.empty())
        return false;
    arrival_us = items.front().arrivalUs;
    return true;
}

RequestQueue::Pop
RequestQueue::popKindBefore(RequestKind kind, uint64_t deadline_us,
                            bool wait, const NowFn &now_us, Request &out)
{
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        if (!items.empty()) {
            const Request &head = items.front();
            if (head.kind != kind || head.arrivalUs > deadline_us)
                return Pop::NotReady;
            out = std::move(items.front());
            items.pop_front();
            return Pop::Got;
        }
        if (isClosed)
            return Pop::Closed;
        if (!wait)
            return Pop::NotReady;
        const uint64_t now = now_us();
        if (now >= deadline_us)
            return Pop::NotReady;
        cv.wait_for(lock,
                    std::chrono::microseconds(deadline_us - now));
    }
}

} // namespace igcn::serve
