#include "serve/queue.hpp"

#include <chrono>

namespace igcn::serve {

void
RequestQueue::push(Request r)
{
    {
        MutexLock lock(mutex);
        items.push_back(std::move(r));
    }
    cv.notify_all();
}

void
RequestQueue::close()
{
    {
        MutexLock lock(mutex);
        isClosed = true;
    }
    cv.notify_all();
}

bool
RequestQueue::closed() const
{
    MutexLock lock(mutex);
    return isClosed;
}

size_t
RequestQueue::size() const
{
    MutexLock lock(mutex);
    return items.size();
}

bool
RequestQueue::tryPop(Request &out)
{
    MutexLock lock(mutex);
    if (items.empty())
        return false;
    out = std::move(items.front());
    items.pop_front();
    return true;
}

RequestQueue::Pop
RequestQueue::popHead(Request &out)
{
    MutexLock lock(mutex);
    while (items.empty() && !isClosed)
        cv.wait(mutex);
    if (items.empty())
        return Pop::Closed;
    out = std::move(items.front());
    items.pop_front();
    return Pop::Got;
}

bool
RequestQueue::peekHeadArrival(uint64_t &arrival_us) const
{
    MutexLock lock(mutex);
    if (items.empty())
        return false;
    arrival_us = items.front().arrivalUs;
    return true;
}

RequestQueue::Pop
RequestQueue::popKindBefore(RequestKind kind, uint64_t deadline_us,
                            bool wait, const NowFn &now_us, Request &out)
{
    MutexLock lock(mutex);
    for (;;) {
        if (!items.empty()) {
            const Request &head = items.front();
            if (head.kind != kind || head.arrivalUs > deadline_us)
                return Pop::NotReady;
            out = std::move(items.front());
            items.pop_front();
            return Pop::Got;
        }
        if (isClosed)
            return Pop::Closed;
        if (!wait)
            return Pop::NotReady;
        const uint64_t now = now_us();
        if (now >= deadline_us)
            return Pop::NotReady;
        cv.wait_for(mutex,
                    std::chrono::microseconds(deadline_us - now));
    }
}

// ------------------------------------------------------------ EdfQueue

EdfQueue::Key
EdfQueue::keyOf(const Request &r, uint64_t)
{
    return Key{r.deadlineUs == 0 ? ~uint64_t{0} : r.deadlineUs,
               static_cast<uint8_t>(r.priority), r.arrivalUs, r.id};
}

bool
EdfQueue::eligible(const Entry &e, uint64_t applied_seq,
                   uint32_t staleness_bound)
{
    const uint64_t k = e.req.freshness == Freshness::Strict
        ? 0
        : staleness_bound;
    return e.requiredSeq <= applied_seq + k;
}

void
EdfQueue::add(Request r, uint64_t required_seq)
{
    const Key key = keyOf(r, required_seq);
    pool.emplace(key, Entry{std::move(r), required_seq});
}

uint64_t
EdfQueue::earliestArrivalUs() const
{
    uint64_t earliest = ~uint64_t{0};
    for (const auto &[key, e] : pool)
        earliest = std::min(earliest, e.req.arrivalUs);
    return earliest;
}

bool
EdfQueue::popEligible(uint64_t applied_seq, uint32_t staleness_bound,
                      Entry &out)
{
    for (auto it = pool.begin(); it != pool.end(); ++it) {
        if (eligible(it->second, applied_seq, staleness_bound)) {
            out = std::move(it->second);
            pool.erase(it);
            return true;
        }
    }
    return false;
}

std::vector<EdfQueue::Dropped>
EdfQueue::dropExpired(uint64_t now_us, uint64_t applied_seq,
                      uint32_t staleness_bound)
{
    std::vector<Dropped> dropped;
    for (auto it = pool.begin(); it != pool.end();) {
        const Request &r = it->second.req;
        if (r.deadlineUs != 0 && r.deadlineUs < now_us) {
            const ServeError why =
                eligible(it->second, applied_seq, staleness_bound)
                    ? ServeError::Expired
                    : ServeError::ShedStale;
            dropped.push_back({std::move(it->second), why});
            it = pool.erase(it);
        } else {
            ++it;
        }
    }
    return dropped;
}

} // namespace igcn::serve
