#include "serve/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "spmm/spmm.hpp"

namespace igcn::serve {

std::shared_ptr<const GraphState>
makeGraphState(CsrGraph g, const LocatorConfig &cfg, uint64_t epoch)
{
    auto state = std::make_shared<GraphState>();
    state->epoch = epoch;
    state->islands = islandize(g, cfg);
    state->scale = degreeScaling(g);
    state->graph = std::move(g);
    refreshNormalizedAdjacency(state->normAdj, state->graph,
                               state->scale);
    return state;
}

GraphStateHub::GraphStateHub(std::shared_ptr<const GraphState> initial)
    : current(std::move(initial))
{
    if (!current)
        throw std::invalid_argument("GraphStateHub: null initial state");
}

std::shared_ptr<const GraphState>
GraphStateHub::acquire() const
{
    MutexLock lock(mutex);
    return current;
}

void
GraphStateHub::publish(std::shared_ptr<const GraphState> next)
{
    if (!next)
        throw std::invalid_argument("GraphStateHub: null state");
    MutexLock lock(mutex);
    if (next->epoch <= current->epoch)
        throw std::invalid_argument(
            "GraphStateHub: epoch must advance");
    current = std::move(next);
}

uint64_t
GraphStateHub::currentEpoch() const
{
    MutexLock lock(mutex);
    return current->epoch;
}

InferenceEngine::InferenceEngine(std::shared_ptr<GraphStateHub> hub,
                                 Features features,
                                 std::vector<DenseMatrix> weights,
                                 double whole_graph_fraction)
    : hub(std::move(hub)), features(std::move(features)),
      weights(std::move(weights)),
      wholeGraphFraction(whole_graph_fraction)
{
    if (!this->hub)
        throw std::invalid_argument("InferenceEngine: null hub");
    if (this->weights.empty())
        throw std::invalid_argument("InferenceEngine: no layers");
    const auto state = this->hub->acquire();
    if (this->features.rows() != state->graph.numNodes())
        throw std::invalid_argument(
            "InferenceEngine: features rows != graph nodes");
}

InferenceEngine::InferenceEngine(std::shared_ptr<GraphStateHub> hub,
                                 DenseMatrix features,
                                 std::vector<DenseMatrix> weights,
                                 double whole_graph_fraction)
    : InferenceEngine(std::move(hub),
                      Features{false, std::move(features), {}},
                      std::move(weights), whole_graph_fraction)
{
}

std::vector<InferenceResult>
InferenceEngine::runBatch(std::span<const Request> batch,
                          BatchExecInfo *info) const
{
    const std::shared_ptr<const GraphState> state = hub->acquire();
    const CsrGraph &g = state->graph;
    const NodeId n = g.numNodes();

    std::vector<NodeId> targets;
    targets.reserve(batch.size());
    for (const Request &r : batch) {
        if (r.kind != RequestKind::Inference)
            throw std::invalid_argument(
                "runBatch: non-inference request in batch");
        if (r.node >= n)
            throw std::out_of_range(
                "runBatch: target node exceeds num_nodes");
        targets.push_back(r.node);
    }

    // Island-aware clustering: deduplicate, then seed extraction
    // island-by-island so co-batched targets from one community are
    // expanded together and their shared neighborhoods are discovered
    // once, while they are still close in the traversal.
    std::vector<NodeId> uniq = targets;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    const auto &island_of = state->islands.islandOf;
    std::stable_sort(uniq.begin(), uniq.end(),
                     [&island_of](NodeId a, NodeId b) {
                         return island_of[a] < island_of[b];
                     });

    BatchExecInfo local_info;
    local_info.epoch = state->epoch;
    local_info.targets = static_cast<uint32_t>(targets.size());
    local_info.uniqueTargets = static_cast<uint32_t>(uniq.size());

    const int hops = numLayers();
    DenseMatrix out_rows; // row i = output of target i (request order)
    // The node set alone decides the path; the sub-CSR is only built
    // when the subgraph path is actually taken.
    std::vector<NodeId> field = lHopNodeSet(g, uniq, hops);
    if (static_cast<double>(field.size()) >=
        wholeGraphFraction * static_cast<double>(n)) {
        // Receptive field covers most of the graph: the cached
        // whole-graph A_hat is cheaper than building a sub-CSR of
        // nearly the same size.
        local_info.wholeGraph = true;
        DenseMatrix current;
        for (size_t l = 0; l < weights.size(); ++l) {
            // Layer 0 consumes X in whichever form it is stored;
            // sparseTimesDense matches gemm bit-for-bit on the same
            // logical matrix, so both forms serve identical logits.
            DenseMatrix xw =
                (l == 0)
                    ? (features.sparse
                           ? sparseTimesDense(features.csr, weights[l])
                           : gemm(features.dense, weights[l]))
                    : gemm(current, weights[l]);
            current = spmmPullRowWise(state->normAdj, xw);
            if (l + 1 < weights.size())
                reluInPlace(current);
        }
        out_rows = DenseMatrix(targets.size(), numClasses());
        for (size_t i = 0; i < targets.size(); ++i)
            std::copy_n(current.row(targets[i]), numClasses(),
                        out_rows.row(i));
    } else {
        LHopSubgraph ext = inducedSubgraph(g, std::move(field), uniq);
        local_info.subNodes =
            static_cast<uint32_t>(ext.nodes.size());
        local_info.subEdges = ext.sub.numEdges();
        std::vector<float> scale_local(ext.nodes.size());
        for (size_t l = 0; l < ext.nodes.size(); ++l)
            scale_local[l] = state->scale[ext.nodes[l]];
        DenseMatrix sub_out;
        if (features.sparse) {
            // Gather the receptive field's feature rows in CSR form:
            // O(field nnz) moved, never the dense rows * cols image.
            CsrFeatures x_local = csrGather(features.csr, ext.nodes);
            sub_out =
                subgraphForward(ext.sub, scale_local, x_local, weights);
        } else {
            DenseMatrix x_local(ext.nodes.size(), features.cols());
            for (size_t l = 0; l < ext.nodes.size(); ++l)
                std::copy_n(features.dense.row(ext.nodes[l]),
                            features.cols(), x_local.row(l));
            sub_out =
                subgraphForward(ext.sub, scale_local, x_local, weights);
        }
        // Map each request target to its local row. ext.nodes is
        // ascending, so a binary search suffices.
        out_rows = DenseMatrix(targets.size(), numClasses());
        for (size_t i = 0; i < targets.size(); ++i) {
            const auto local = static_cast<size_t>(
                std::lower_bound(ext.nodes.begin(), ext.nodes.end(),
                                 targets[i]) -
                ext.nodes.begin());
            std::copy_n(sub_out.row(local), numClasses(),
                        out_rows.row(i));
        }
    }

    std::vector<InferenceResult> results;
    results.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        InferenceResult res;
        res.id = batch[i].id;
        res.node = batch[i].node;
        res.tenant = batch[i].tenant;
        res.epoch = state->epoch;
        res.arrivalUs = batch[i].arrivalUs;
        res.batchSize = static_cast<uint32_t>(batch.size());
        res.logits.assign(out_rows.row(i),
                          out_rows.row(i) + numClasses());
        results.push_back(std::move(res));
    }
    if (info)
        *info = local_info;
    return results;
}

} // namespace igcn::serve
