#include "serve/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "serve/agg_cache.hpp"
#include "spmm/spmm.hpp"

namespace igcn::serve {

std::shared_ptr<const GraphState>
makeGraphState(CsrGraph g, const LocatorConfig &cfg, uint64_t epoch)
{
    auto state = std::make_shared<GraphState>();
    state->epoch = epoch;
    state->islands = islandize(g, cfg);
    state->scale = degreeScaling(g);
    state->graph = std::move(g);
    refreshNormalizedAdjacency(state->normAdj, state->graph,
                               state->scale);
    return state;
}

GraphStateHub::GraphStateHub(std::shared_ptr<const GraphState> initial)
    : current(std::move(initial))
{
    if (!current)
        throw std::invalid_argument("GraphStateHub: null initial state");
}

std::shared_ptr<const GraphState>
GraphStateHub::acquire() const
{
    MutexLock lock(mutex);
    return current;
}

void
GraphStateHub::publish(std::shared_ptr<const GraphState> next)
{
    if (!next)
        throw std::invalid_argument("GraphStateHub: null state");
    MutexLock lock(mutex);
    if (next->epoch <= current->epoch)
        throw std::invalid_argument(
            "GraphStateHub: epoch must advance");
    current = std::move(next);
}

uint64_t
GraphStateHub::currentEpoch() const
{
    MutexLock lock(mutex);
    return current->epoch;
}

InferenceEngine::InferenceEngine(std::shared_ptr<GraphStateHub> hub,
                                 Features features,
                                 std::vector<DenseMatrix> weights,
                                 double whole_graph_fraction)
    : hub(std::move(hub)), features(std::move(features)),
      weights(std::move(weights)),
      wholeGraphFraction(whole_graph_fraction)
{
    if (!this->hub)
        throw std::invalid_argument("InferenceEngine: null hub");
    if (this->weights.empty())
        throw std::invalid_argument("InferenceEngine: no layers");
    const auto state = this->hub->acquire();
    if (this->features.rows() != state->graph.numNodes())
        throw std::invalid_argument(
            "InferenceEngine: features rows != graph nodes");
}

InferenceEngine::InferenceEngine(std::shared_ptr<GraphStateHub> hub,
                                 DenseMatrix features,
                                 std::vector<DenseMatrix> weights,
                                 double whole_graph_fraction)
    : InferenceEngine(std::move(hub),
                      Features{false, std::move(features), {}},
                      std::move(weights), whole_graph_fraction)
{
}

namespace {

/**
 * Copy an island entry's rows (member-order flat buffer) into the
 * matching rows of h1 under a local-id mapping, marking them skipped
 * and charging the adjacency entries (minus the self loop) the
 * masked spmm will not pull.
 */
template <typename LocalOf>
void
substituteIslandRows(const Island &island, const float *rows,
                     size_t hidden, const CsrMatrix &a_hat,
                     LocalOf &&local_of, DenseMatrix &h1,
                     std::vector<uint8_t> &skip,
                     BatchExecInfo &info)
{
    for (size_t i = 0; i < island.nodes.size(); ++i) {
        const size_t l = local_of(island.nodes[i]);
        std::copy_n(rows + i * hidden, hidden, h1.row(l));
        skip[l] = 1;
        info.cacheSkippedEdges +=
            a_hat.rowPtr[l + 1] - a_hat.rowPtr[l] - 1;
    }
    info.cacheHits++;
    info.cacheRows += static_cast<uint32_t>(island.nodes.size());
}

/** Gather an island's computed h1 rows into a fill buffer. */
template <typename LocalOf>
std::vector<float>
gatherIslandRows(const Island &island, size_t hidden,
                 const DenseMatrix &h1, LocalOf &&local_of)
{
    std::vector<float> rows(island.nodes.size() * hidden);
    for (size_t i = 0; i < island.nodes.size(); ++i)
        std::copy_n(h1.row(local_of(island.nodes[i])), hidden,
                    rows.data() + i * hidden);
    return rows;
}

/** Layers past the first: identical to gcn's forwardChain tail. */
DenseMatrix
chainTail(const CsrMatrix &a_hat, DenseMatrix current,
          const std::vector<DenseMatrix> &weights)
{
    for (size_t l = 1; l < weights.size(); ++l) {
        reluInPlace(current);
        DenseMatrix xw = gemm(current, weights[l]);
        current = spmmPullRowWise(a_hat, xw);
    }
    return current;
}

} // namespace

DenseMatrix
InferenceEngine::forwardWholeGraphCached(const GraphState &state,
                                         BatchExecInfo &info) const
{
    // The whole-graph pass touches every island, so all of them are
    // consultable and every miss can be filled — global layer-1 rows
    // are exactly what the cache stores.
    const IslandizationResult &isl = state.islands;
    const size_t hidden = weights[0].cols();
    const NodeId n = state.graph.numNodes();
    DenseMatrix xw0 = features.sparse
                          ? sparseTimesDense(features.csr, weights[0])
                          : gemm(features.dense, weights[0]);
    DenseMatrix h1(n, hidden);
    std::vector<uint8_t> skip(n, 0);
    const auto identity = [](NodeId v) { return static_cast<size_t>(v); };
    info.cacheEligible += static_cast<uint32_t>(isl.islands.size());
    std::vector<uint32_t> missed;
    std::vector<float> buf;
    for (uint32_t id = 0; id < isl.islands.size(); ++id) {
        const Island &island = isl.islands[id];
        buf.resize(island.nodes.size() * hidden);
        if (aggCache->lookup(state.epoch, id, buf.size(), buf.data()))
            substituteIslandRows(island, buf.data(), hidden,
                                 state.normAdj, identity, h1, skip,
                                 info);
        else
            missed.push_back(id);
    }
    spmmPullRowWiseMasked(state.normAdj, xw0, skip, h1);
    for (uint32_t id : missed) {
        aggCache->insert(state.epoch, id,
                         gatherIslandRows(isl.islands[id], hidden, h1,
                                          identity));
        info.cacheFills++;
    }
    return chainTail(state.normAdj, std::move(h1), weights);
}

DenseMatrix
InferenceEngine::forwardSubgraphCached(const GraphState &state,
                                       const LHopSubgraph &ext,
                                       const std::vector<float> &scale,
                                       BatchExecInfo &info) const
{
    const IslandizationResult &isl = state.islands;
    const size_t hidden = weights[0].cols();

    // Layer-0 combination runs in full — only aggregation rows are
    // cached — exactly as the subgraphForward overloads do it.
    DenseMatrix xw0;
    if (features.sparse) {
        CsrFeatures x_local = csrGather(features.csr, ext.nodes);
        xw0 = sparseTimesDense(x_local, weights[0]);
    } else {
        DenseMatrix x_local(ext.nodes.size(), features.cols());
        for (size_t l = 0; l < ext.nodes.size(); ++l)
            std::copy_n(features.dense.row(ext.nodes[l]),
                        features.cols(), x_local.row(l));
        xw0 = gemm(x_local, weights[0]);
    }
    CsrMatrix a_hat = normalizedAdjacencyScaled(ext.sub, scale);

    // An island qualifies when its members AND its hub list are all
    // inside the receptive field: then every member's full global
    // neighborhood is present (the coverage invariant bounds it by
    // island ∪ hubs), local ids preserve ascending global order, and
    // the full-graph scaling is identical — so the island's in-sub
    // layer-1 member rows equal the whole-graph rows bitwise, making
    // cached global rows substitutable and computed ones fillable.
    std::vector<uint8_t> in_field(state.graph.numNodes(), 0);
    for (NodeId v : ext.nodes)
        in_field[v] = 1;
    std::vector<uint32_t> candidates;
    for (NodeId v : ext.nodes)
        if (isl.role[v] == NodeRole::IslandNode)
            candidates.push_back(isl.islandOf[v]);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(
        std::unique(candidates.begin(), candidates.end()),
        candidates.end());
    std::vector<uint32_t> qualifying;
    for (uint32_t id : candidates) {
        const Island &island = isl.islands[id];
        bool interior = true;
        for (NodeId m : island.nodes)
            if (!in_field[m]) {
                interior = false;
                break;
            }
        if (interior)
            for (NodeId h : island.hubs)
                if (!in_field[h]) {
                    interior = false;
                    break;
                }
        if (interior)
            qualifying.push_back(id);
    }
    info.cacheEligible += static_cast<uint32_t>(qualifying.size());

    const auto local_of = [&ext](NodeId gid) {
        return static_cast<size_t>(
            std::lower_bound(ext.nodes.begin(), ext.nodes.end(),
                             gid) -
            ext.nodes.begin());
    };
    DenseMatrix h1(ext.nodes.size(), hidden);
    std::vector<uint8_t> skip(ext.nodes.size(), 0);
    std::vector<uint32_t> missed;
    std::vector<float> buf;
    for (uint32_t id : qualifying) {
        const Island &island = isl.islands[id];
        buf.resize(island.nodes.size() * hidden);
        if (aggCache->lookup(state.epoch, id, buf.size(), buf.data()))
            substituteIslandRows(island, buf.data(), hidden, a_hat,
                                 local_of, h1, skip, info);
        else
            missed.push_back(id);
    }
    spmmPullRowWiseMasked(a_hat, xw0, skip, h1);
    for (uint32_t id : missed) {
        aggCache->insert(state.epoch, id,
                         gatherIslandRows(isl.islands[id], hidden, h1,
                                          local_of));
        info.cacheFills++;
    }
    return chainTail(a_hat, std::move(h1), weights);
}

std::vector<InferenceResult>
InferenceEngine::runBatch(std::span<const Request> batch,
                          BatchExecInfo *info) const
{
    const std::shared_ptr<const GraphState> state = hub->acquire();
    const CsrGraph &g = state->graph;
    const NodeId n = g.numNodes();

    std::vector<NodeId> targets;
    targets.reserve(batch.size());
    for (const Request &r : batch) {
        if (r.kind != RequestKind::Inference)
            throw std::invalid_argument(
                "runBatch: non-inference request in batch");
        if (r.node >= n)
            throw std::out_of_range(
                "runBatch: target node exceeds num_nodes");
        targets.push_back(r.node);
    }

    // Island-aware clustering: deduplicate, then seed extraction
    // island-by-island so co-batched targets from one community are
    // expanded together and their shared neighborhoods are discovered
    // once, while they are still close in the traversal.
    std::vector<NodeId> uniq = targets;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    const auto &island_of = state->islands.islandOf;
    std::stable_sort(uniq.begin(), uniq.end(),
                     [&island_of](NodeId a, NodeId b) {
                         return island_of[a] < island_of[b];
                     });

    BatchExecInfo local_info;
    local_info.epoch = state->epoch;
    local_info.targets = static_cast<uint32_t>(targets.size());
    local_info.uniqueTargets = static_cast<uint32_t>(uniq.size());

    const int hops = numLayers();
    DenseMatrix out_rows; // row i = output of target i (request order)
    // The node set alone decides the path; the sub-CSR is only built
    // when the subgraph path is actually taken.
    std::vector<NodeId> field = lHopNodeSet(g, uniq, hops);
    if (static_cast<double>(field.size()) >=
        wholeGraphFraction * static_cast<double>(n)) {
        // Receptive field covers most of the graph: the cached
        // whole-graph A_hat is cheaper than building a sub-CSR of
        // nearly the same size.
        local_info.wholeGraph = true;
        DenseMatrix current;
        if (aggCache) {
            aggCache->advanceTo(*state);
            current = forwardWholeGraphCached(*state, local_info);
        } else {
            for (size_t l = 0; l < weights.size(); ++l) {
                // Layer 0 consumes X in whichever form it is stored;
                // sparseTimesDense matches gemm bit-for-bit on the
                // same logical matrix, so both forms serve identical
                // logits.
                DenseMatrix xw =
                    (l == 0)
                        ? (features.sparse
                               ? sparseTimesDense(features.csr,
                                                  weights[l])
                               : gemm(features.dense, weights[l]))
                        : gemm(current, weights[l]);
                current = spmmPullRowWise(state->normAdj, xw);
                if (l + 1 < weights.size())
                    reluInPlace(current);
            }
        }
        out_rows = DenseMatrix(targets.size(), numClasses());
        for (size_t i = 0; i < targets.size(); ++i)
            std::copy_n(current.row(targets[i]), numClasses(),
                        out_rows.row(i));
    } else {
        LHopSubgraph ext = inducedSubgraph(g, std::move(field), uniq);
        local_info.subNodes =
            static_cast<uint32_t>(ext.nodes.size());
        local_info.subEdges = ext.sub.numEdges();
        std::vector<float> scale_local(ext.nodes.size());
        for (size_t l = 0; l < ext.nodes.size(); ++l)
            scale_local[l] = state->scale[ext.nodes[l]];
        DenseMatrix sub_out;
        if (aggCache) {
            // The cached chain is the same operation sequence as
            // subgraphForward with layer-1 rows of fully-interior
            // islands substituted (bit-identical by construction;
            // see forwardSubgraphCached).
            aggCache->advanceTo(*state);
            sub_out = forwardSubgraphCached(*state, ext, scale_local,
                                            local_info);
        } else if (features.sparse) {
            // Gather the receptive field's feature rows in CSR form:
            // O(field nnz) moved, never the dense rows * cols image.
            CsrFeatures x_local = csrGather(features.csr, ext.nodes);
            sub_out =
                subgraphForward(ext.sub, scale_local, x_local, weights);
        } else {
            DenseMatrix x_local(ext.nodes.size(), features.cols());
            for (size_t l = 0; l < ext.nodes.size(); ++l)
                std::copy_n(features.dense.row(ext.nodes[l]),
                            features.cols(), x_local.row(l));
            sub_out =
                subgraphForward(ext.sub, scale_local, x_local, weights);
        }
        // Map each request target to its local row. ext.nodes is
        // ascending, so a binary search suffices.
        out_rows = DenseMatrix(targets.size(), numClasses());
        for (size_t i = 0; i < targets.size(); ++i) {
            const auto local = static_cast<size_t>(
                std::lower_bound(ext.nodes.begin(), ext.nodes.end(),
                                 targets[i]) -
                ext.nodes.begin());
            std::copy_n(sub_out.row(local), numClasses(),
                        out_rows.row(i));
        }
    }

    std::vector<InferenceResult> results;
    results.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        InferenceResult res;
        res.id = batch[i].id;
        res.node = batch[i].node;
        res.tenant = batch[i].tenant;
        res.epoch = state->epoch;
        res.arrivalUs = batch[i].arrivalUs;
        res.batchSize = static_cast<uint32_t>(batch.size());
        res.logits.assign(out_rows.row(i),
                          out_rows.row(i) + numClasses());
        results.push_back(std::move(res));
    }
    if (info)
        *info = local_info;
    return results;
}

} // namespace igcn::serve
