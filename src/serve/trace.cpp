#include "serve/trace.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "graph/rng.hpp"

namespace igcn::serve {

std::vector<Request>
makeSyntheticTrace(const CsrGraph &g, const TraceConfig &cfg)
{
    const NodeId n = g.numNodes();
    if (n == 0)
        throw std::invalid_argument("makeSyntheticTrace: empty graph");
    Rng rng(cfg.seed);

    // Degree-ranked node list (ties broken by id, deterministic):
    // the first hot_count entries form the legacy hot set; the full
    // ranking is the support of the Zipfian draw.
    std::vector<NodeId> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), NodeId{0});
    std::sort(by_degree.begin(), by_degree.end(),
              [&g](NodeId a, NodeId b) {
                  if (g.degree(a) != g.degree(b))
                      return g.degree(a) > g.degree(b);
                  return a < b;
              });
    const size_t hot_count = std::max<size_t>(
        1, static_cast<size_t>(cfg.hotSetFraction * n));

    // Arrival-rate modulation: scales the (single) exponential gap
    // draw, so the default Poisson path is bit-identical to the
    // pre-pattern generator.
    const auto gap_scale = [&cfg](uint64_t t) -> double {
        switch (cfg.pattern) {
        case ArrivalPattern::Poisson:
            return 1.0;
        case ArrivalPattern::Burst: {
            const uint64_t period = std::max<uint64_t>(
                1, cfg.patternPeriodUs);
            const double phase =
                static_cast<double>(t % period) /
                static_cast<double>(period);
            return phase < cfg.burstDutyCycle
                ? 1.0 / std::max(1.0, cfg.burstRateMultiplier)
                : 1.0;
        }
        case ArrivalPattern::Diurnal: {
            const uint64_t period = std::max<uint64_t>(
                1, cfg.patternPeriodUs);
            const double phase =
                static_cast<double>(t % period) /
                static_cast<double>(period);
            const double rate =
                1.0 + 0.8 * std::sin(2.0 * 3.14159265358979323846 *
                                     phase);
            return 1.0 / std::max(0.05, rate);
        }
        }
        return 1.0;
    };

    std::vector<Request> trace;
    trace.reserve(cfg.numInference + cfg.numUpdates);
    uint64_t remaining_inf = cfg.numInference;
    uint64_t remaining_upd = cfg.numUpdates;
    uint64_t now_us = 0;
    uint64_t id = 0;
    while (remaining_inf + remaining_upd > 0) {
        now_us += static_cast<uint64_t>(
            -cfg.meanGapUs * gap_scale(now_us) *
            std::log(1.0 - rng.nextDouble()));
        Request r;
        r.id = id++;
        r.arrivalUs = now_us;
        r.tenant = cfg.numTenants > 1
            ? static_cast<uint32_t>(r.id % cfg.numTenants)
            : 0;
        if (cfg.deadlineUs > 0)
            r.deadlineUs = now_us + cfg.deadlineUs;
        const bool is_update =
            rng.nextBounded(remaining_inf + remaining_upd) <
            remaining_upd;
        if (is_update) {
            r.kind = RequestKind::Update;
            const int k =
                1 + static_cast<int>(rng.nextBounded(
                        static_cast<uint64_t>(
                            std::max(1, cfg.maxEdgesPerUpdate))));
            // Guarded draw: removeFraction == 0 consumes no extra
            // randomness, keeping pre-deletion traces bit-identical.
            const bool is_remove = cfg.removeFraction > 0.0 &&
                g.numEdges() > 0 && rng.nextBool(cfg.removeFraction);
            if (is_remove) {
                for (int e = 0; e < k; ++e) {
                    // Uniform over the initial graph's arcs: pick an
                    // arc slot, map it back to its row.
                    const EdgeId arc = rng.nextBounded(g.numEdges());
                    r.removedEdges.emplace_back(g.arcSource(arc),
                                                g.cols()[arc]);
                }
            } else {
                for (int e = 0; e < k; ++e) {
                    const auto u =
                        static_cast<NodeId>(rng.nextBounded(n));
                    const auto v =
                        static_cast<NodeId>(rng.nextBounded(n));
                    if (u != v)
                        r.addedEdges.emplace_back(u, v);
                }
            }
            remaining_upd--;
        } else {
            r.kind = RequestKind::Inference;
            if (cfg.zipfAlpha > 0.0) {
                // Zipfian by degree rank over the whole node set.
                const uint64_t rank =
                    rng.nextPowerLaw(1, n, cfg.zipfAlpha);
                r.node = by_degree[static_cast<size_t>(rank - 1)];
            } else {
                r.node = rng.nextBool(cfg.hotFraction)
                    ? by_degree[rng.nextBounded(hot_count)]
                    : static_cast<NodeId>(rng.nextBounded(n));
            }
            // Guarded draw: strictFraction == 0 consumes no
            // randomness, keeping default traces bit-identical.
            if (cfg.strictFraction > 0.0 &&
                rng.nextBool(cfg.strictFraction))
                r.freshness = Freshness::Strict;
            remaining_inf--;
        }
        trace.push_back(std::move(r));
    }
    return trace;
}

} // namespace igcn::serve
