#include "serve/trace.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "graph/rng.hpp"

namespace igcn::serve {

std::vector<Request>
makeSyntheticTrace(const CsrGraph &g, const TraceConfig &cfg)
{
    const NodeId n = g.numNodes();
    if (n == 0)
        throw std::invalid_argument("makeSyntheticTrace: empty graph");
    Rng rng(cfg.seed);

    // Hot set: the top-degree nodes, ties broken by id so the set is
    // deterministic.
    std::vector<NodeId> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), NodeId{0});
    std::sort(by_degree.begin(), by_degree.end(),
              [&g](NodeId a, NodeId b) {
                  if (g.degree(a) != g.degree(b))
                      return g.degree(a) > g.degree(b);
                  return a < b;
              });
    const size_t hot_count = std::max<size_t>(
        1, static_cast<size_t>(cfg.hotSetFraction * n));
    by_degree.resize(hot_count);

    std::vector<Request> trace;
    trace.reserve(cfg.numInference + cfg.numUpdates);
    uint64_t remaining_inf = cfg.numInference;
    uint64_t remaining_upd = cfg.numUpdates;
    uint64_t now_us = 0;
    uint64_t id = 0;
    while (remaining_inf + remaining_upd > 0) {
        now_us += static_cast<uint64_t>(
            -cfg.meanGapUs * std::log(1.0 - rng.nextDouble()));
        Request r;
        r.id = id++;
        r.arrivalUs = now_us;
        const bool is_update =
            rng.nextBounded(remaining_inf + remaining_upd) <
            remaining_upd;
        if (is_update) {
            r.kind = RequestKind::Update;
            const int k =
                1 + static_cast<int>(rng.nextBounded(
                        static_cast<uint64_t>(
                            std::max(1, cfg.maxEdgesPerUpdate))));
            // Guarded draw: removeFraction == 0 consumes no extra
            // randomness, keeping pre-deletion traces bit-identical.
            const bool is_remove = cfg.removeFraction > 0.0 &&
                g.numEdges() > 0 && rng.nextBool(cfg.removeFraction);
            if (is_remove) {
                for (int e = 0; e < k; ++e) {
                    // Uniform over the initial graph's arcs: pick an
                    // arc slot, map it back to its row.
                    const EdgeId arc = rng.nextBounded(g.numEdges());
                    r.removedEdges.emplace_back(g.arcSource(arc),
                                                g.cols()[arc]);
                }
            } else {
                for (int e = 0; e < k; ++e) {
                    const auto u =
                        static_cast<NodeId>(rng.nextBounded(n));
                    const auto v =
                        static_cast<NodeId>(rng.nextBounded(n));
                    if (u != v)
                        r.addedEdges.emplace_back(u, v);
                }
            }
            remaining_upd--;
        } else {
            r.kind = RequestKind::Inference;
            r.node = rng.nextBool(cfg.hotFraction)
                ? by_degree[rng.nextBounded(by_degree.size())]
                : static_cast<NodeId>(rng.nextBounded(n));
            remaining_inf--;
        }
        trace.push_back(std::move(r));
    }
    return trace;
}

} // namespace igcn::serve
