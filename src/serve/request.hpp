/**
 * @file
 * Request and response types of the online inference server.
 *
 * The serving subsystem is the first request-driven execution mode of
 * the repo: node-level inference requests ("classify node v") and
 * graph-mutation requests ("add these edges") arrive on a shared FCFS
 * queue, a scheduler forms micro-batches, and the engine drives the
 * existing islandization + SpMM stack. Timestamps are microseconds on
 * the server clock — virtual (trace-supplied) in replay mode, a
 * steady_clock offset in real-time mode — so the same structures
 * serve both the deterministic test/replay path and live traffic.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/incremental.hpp"
#include "graph/csr.hpp"

namespace igcn::serve {

/** What a request asks the server to do. */
enum class RequestKind : uint8_t { Inference, Update };

/** One queued request (tagged union over the two kinds). */
struct Request
{
    RequestKind kind = RequestKind::Inference;
    /** Caller-assigned id, echoed in the matching result. */
    uint64_t id = 0;
    /** Arrival time in server microseconds. */
    uint64_t arrivalUs = 0;
    /** Target node (Inference only). */
    NodeId node = 0;
    /** Undirected edges to add (Update only). */
    std::vector<Edge> addedEdges;
    /**
     * Undirected edges to delete (Update only). One request may
     * carry both lists; its removals apply after its additions, and
     * across a coalesced span the applier folds everything into one
     * last-write-wins net effect (see UpdateApplier).
     */
    std::vector<Edge> removedEdges;
};

/** Completed inference request. */
struct InferenceResult
{
    uint64_t id = 0;
    NodeId node = 0;
    /** Graph epoch the result was computed against. */
    uint64_t epoch = 0;
    /** Output row for the node (numClasses floats). */
    std::vector<float> logits;
    uint64_t arrivalUs = 0;
    /** When the micro-batch left the queue. */
    uint64_t startUs = 0;
    /** Completion time; latency = doneUs - arrivalUs. */
    uint64_t doneUs = 0;
    /** Size of the micro-batch this request rode in. */
    uint32_t batchSize = 0;
};

/** Completed (possibly coalesced) update application. */
struct UpdateResult
{
    /** Id of the first request folded into this application. */
    uint64_t id = 0;
    /** Epoch published by this update (unchanged if it was a no-op). */
    uint64_t epoch = 0;
    IncrementalStats stats;
    /** Requests coalesced into the single application. */
    uint32_t coalesced = 0;
    /** New undirected edges actually inserted. */
    size_t edgesApplied = 0;
    /** Existing undirected edges actually deleted. */
    size_t edgesRemoved = 0;
    /** Events dropped: out of range, self loops, additions already
     *  present, removals already absent, add/remove pairs that
     *  cancelled inside the span. */
    size_t edgesSkipped = 0;
    uint64_t arrivalUs = 0;
    uint64_t startUs = 0;
    uint64_t doneUs = 0;
};

} // namespace igcn::serve
