/**
 * @file
 * Request and response types of the online inference server.
 *
 * The serving subsystem is the first request-driven execution mode of
 * the repo: node-level inference requests ("classify node v") and
 * graph-mutation requests ("add these edges") arrive on a shared FCFS
 * queue, a scheduler forms micro-batches, and the engine drives the
 * existing islandization + SpMM stack. Timestamps are microseconds on
 * the server clock — virtual (trace-supplied) in replay mode, a
 * steady_clock offset in real-time mode — so the same structures
 * serve both the deterministic test/replay path and live traffic.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/incremental.hpp"
#include "graph/csr.hpp"

namespace igcn::serve {

/** What a request asks the server to do. */
enum class RequestKind : uint8_t { Inference, Update };

/**
 * Scheduling priority. EDF is the primary order; priority breaks
 * deadline ties (and orders the no-deadline tail), so an Interactive
 * request is never scheduled behind a Batch request with the same
 * deadline.
 */
enum class Priority : uint8_t { Interactive = 0, Normal = 1, Batch = 2 };

/**
 * Freshness demanded by an inference request. Bounded requests may be
 * served from an epoch at most `SloConfig::stalenessBound` update
 * requests behind the freshest state admitted before them; Strict
 * requests treat every earlier-admitted update as a hard sequence
 * point (the pre-SLO semantics).
 */
enum class Freshness : uint8_t { Bounded = 0, Strict = 1 };

/**
 * Why the server refused to serve a request. `None` means admitted
 * and served.
 *
 *  - Rejected:   tenant token bucket empty (over qps budget).
 *  - Overloaded: bounded queue at capacity; never enqueued.
 *  - Expired:    admitted, but its deadline passed while it waited;
 *                dropped instead of served late.
 *  - ShedStale:  admitted, but its deadline passed while it was
 *                *ineligible* — blocked on updates it was not allowed
 *                to skip (Strict, or bounded-staleness budget spent).
 */
enum class ServeError : uint8_t
{
    None = 0,
    Rejected,
    Overloaded,
    Expired,
    ShedStale,
};

/** Human-readable name of a ServeError ("admitted" for None). */
const char *serveErrorName(ServeError e);

/**
 * Typed outcome of Server::submitInference / submitUpdate — replaces
 * the old "uint64_t id or exception" surface. `ok()` means the
 * request was admitted; otherwise `error` says why it was refused
 * (the request was never enqueued).
 */
struct ServeResult
{
    uint64_t id = 0;
    ServeError error = ServeError::None;
    bool ok() const { return error == ServeError::None; }
};

/** One refused request, recorded in the replay report. */
struct Rejection
{
    uint64_t id = 0;
    uint32_t tenant = 0;
    RequestKind kind = RequestKind::Inference;
    ServeError error = ServeError::Rejected;
    /** When the rejection happened (admission or drop time). */
    uint64_t atUs = 0;
};

/** One queued request (tagged union over the two kinds). */
struct Request
{
    RequestKind kind = RequestKind::Inference;
    /** Caller-assigned id, echoed in the matching result. */
    uint64_t id = 0;
    /** Arrival time in server microseconds. */
    uint64_t arrivalUs = 0;
    /** Tenant the request is billed to (token-bucket admission). */
    uint32_t tenant = 0;
    /** EDF tie-break; see Priority. */
    Priority priority = Priority::Normal;
    /** Absolute deadline in server microseconds; 0 = none. A request
     *  not dispatched by its deadline is dropped (Expired/ShedStale),
     *  never served late. */
    uint64_t deadlineUs = 0;
    /** Staleness contract (Inference only); see Freshness. */
    Freshness freshness = Freshness::Bounded;
    /** Target node (Inference only). */
    NodeId node = 0;
    /** Undirected edges to add (Update only). */
    std::vector<Edge> addedEdges;
    /**
     * Undirected edges to delete (Update only). One request may
     * carry both lists; its removals apply after its additions, and
     * across a coalesced span the applier folds everything into one
     * last-write-wins net effect (see UpdateApplier).
     */
    std::vector<Edge> removedEdges;
};

/** Completed inference request. */
struct InferenceResult
{
    uint64_t id = 0;
    NodeId node = 0;
    /** Tenant of the originating request. */
    uint32_t tenant = 0;
    /** Graph epoch the result was computed against. */
    uint64_t epoch = 0;
    /** How many admitted-before-it update requests were still
     *  unapplied when it was served (0 = fresh; bounded-staleness
     *  reads allow up to SloConfig::stalenessBound). */
    uint32_t epochsBehind = 0;
    /** Absolute deadline it was admitted under (0 = none). */
    uint64_t deadlineUs = 0;
    /** Freshness contract it was served under. */
    Freshness freshness = Freshness::Bounded;
    /** Output row for the node (numClasses floats). */
    std::vector<float> logits;
    uint64_t arrivalUs = 0;
    /** When the micro-batch left the queue. */
    uint64_t startUs = 0;
    /** Completion time; latency = doneUs - arrivalUs. */
    uint64_t doneUs = 0;
    /** Size of the micro-batch this request rode in. */
    uint32_t batchSize = 0;
};

/** Completed (possibly coalesced) update application. */
struct UpdateResult
{
    /** Id of the first request folded into this application. */
    uint64_t id = 0;
    /** Epoch published by this update (unchanged if it was a no-op). */
    uint64_t epoch = 0;
    IncrementalStats stats;
    /** Requests coalesced into the single application. */
    uint32_t coalesced = 0;
    /** New undirected edges actually inserted. */
    size_t edgesApplied = 0;
    /** Existing undirected edges actually deleted. */
    size_t edgesRemoved = 0;
    /** Malformed events dropped at the lenient serving boundary:
     *  out-of-range endpoints and self loops. */
    size_t edgesSkippedInvalid = 0;
    /** Well-formed events with no presence change: additions already
     *  present, removals already absent, add/remove pairs that
     *  cancelled inside the span (benign duplicates, not trace bugs —
     *  the distinction edgesSkippedInvalid exists to keep). */
    size_t edgesSkippedNoop = 0;
    /** Total events dropped, either way. */
    size_t edgesSkipped() const
    {
        return edgesSkippedInvalid + edgesSkippedNoop;
    }
    uint64_t arrivalUs = 0;
    uint64_t startUs = 0;
    uint64_t doneUs = 0;
};

} // namespace igcn::serve
