#include "serve/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace igcn::serve {

namespace {

// Family names, once: recording and reconstruction must agree.
constexpr char kInfLat[] = "igcn_serve_inference_latency_us";
constexpr char kUpdLat[] = "igcn_serve_update_latency_us";
constexpr char kTenantLat[] = "igcn_serve_tenant_latency_us";
constexpr char kBatchSize[] = "igcn_serve_batch_size_total";
constexpr char kStaleness[] = "igcn_serve_staleness_total";
constexpr char kAdmitted[] = "igcn_serve_admitted_total";
constexpr char kRejected[] = "igcn_serve_rejected_total";
constexpr char kOverloaded[] = "igcn_serve_overloaded_total";
constexpr char kExpired[] = "igcn_serve_expired_total";
constexpr char kShedStale[] = "igcn_serve_shed_stale_total";
constexpr char kServed[] = "igcn_serve_served_total";

obs::Labels
tenantLabels(uint32_t tenant)
{
    return {{"tenant", std::to_string(tenant)}};
}

LatencySummary
summarize(const obs::Histogram &h)
{
    LatencySummary s;
    s.count = h.count();
    if (s.count == 0)
        return s;
    s.p50 = h.quantile(0.50);
    s.p95 = h.quantile(0.95);
    s.p99 = h.quantile(0.99);
    s.meanUs = h.mean();
    s.maxUs = h.maxValue();
    return s;
}

/** Rebuild `label value -> counter value` from one counter family. */
std::map<uint32_t, uint64_t>
familyToMap(const obs::Registry &reg, const std::string &family,
            const char *label)
{
    std::map<uint32_t, uint64_t> out;
    reg.forEach([&](const obs::MetricKey &key,
                    const obs::Registry::Entry &e) {
        if (key.name != family || e.kind != obs::MetricKind::Counter)
            return;
        const auto it = key.labels.find(label);
        if (it == key.labels.end())
            return;
        out[static_cast<uint32_t>(
            std::strtoul(it->second.c_str(), nullptr, 10))] =
            e.counter->value();
    });
    return out;
}

} // namespace

ServerStats::ServerStats()
    : reg(std::make_unique<obs::Registry>())
{
    const std::vector<uint64_t> &bounds = obs::latencyBoundsUs();
    infLatUs = &reg->histogram(
        kInfLat, bounds, {},
        "Inference request latency (arrival to done, us)");
    updLatUs = &reg->histogram(
        kUpdLat, bounds, {},
        "Update application latency (arrival to done, us)");
    infRequests = &reg->counter("igcn_serve_inference_requests_total",
                                {}, "Completed inference requests");
    infBatches = &reg->counter("igcn_serve_inference_batches_total",
                               {}, "Dispatched inference batches");
    updBatches = &reg->counter("igcn_serve_update_batches_total", {},
                               "Update applications");
    updCoalesced = &reg->counter("igcn_serve_updates_coalesced_total",
                                 {}, "Update requests coalesced");
    epochs = &reg->counter("igcn_serve_epochs_published_total", {},
                           "Graph epochs published");
    edgesAdded = &reg->counter("igcn_serve_edges_applied_total", {},
                               "Edges added to the live graph");
    edgesDropped = &reg->counter("igcn_serve_edges_removed_total", {},
                                 "Edges removed from the live graph");
    edgesInvalid =
        &reg->counter("igcn_serve_edges_skipped_invalid_total", {},
                      "Malformed update events dropped");
    edgesNoop = &reg->counter("igcn_serve_edges_skipped_noop_total",
                              {}, "No-op update events skipped");
    wholeGraph = &reg->counter("igcn_serve_whole_graph_batches_total",
                               {}, "Batches run on the whole graph");
    interleaveCount =
        &reg->counter("igcn_serve_interleaves_total", {},
                      "Inference <-> update transitions");
    subNodesTotal =
        &reg->counter("igcn_serve_subgraph_nodes_total", {},
                      "Receptive-field nodes over subgraph batches");
    subBatchesTotal = &reg->counter(
        "igcn_serve_subgraph_batches_total", {}, "Subgraph batches");
    staleServeCount =
        &reg->counter("igcn_serve_stale_serves_total", {},
                      "Requests served a non-fresh epoch");
    strictViolations = &reg->counter(
        "igcn_serve_strict_deadline_violations_total", {},
        "Strict-freshness requests started past their deadline");
    aggHits = &reg->counter("igcn_serve_agg_cache_hits_total", {},
                            "Island aggregates served from cache");
    aggMisses =
        &reg->counter("igcn_serve_agg_cache_misses_total", {},
                      "Island cache lookups that fell through");
    aggFills = &reg->counter("igcn_serve_agg_cache_fills_total", {},
                             "Island aggregates inserted");
    aggEvictions =
        &reg->counter("igcn_serve_agg_cache_evictions_total", {},
                      "Cache entries evicted by the byte budget");
    aggInvalidated =
        &reg->counter("igcn_serve_agg_cache_invalidated_total", {},
                      "Cache entries dropped by epoch advance");
    aggClears = &reg->counter("igcn_serve_agg_cache_clears_total",
                              {}, "Whole-cache drops (lineage gap)");
    aggBytes = &reg->gauge("igcn_serve_agg_cache_bytes", {},
                           "Current cache payload bytes");
    aggEntries = &reg->gauge("igcn_serve_agg_cache_entries", {},
                             "Current cache entry count");
    queueDepth = &reg->gauge("igcn_serve_queue_depth", {},
                             "Waiting-queue depth after admission");
    queueDepthMax = &reg->gauge("igcn_serve_queue_depth_max", {},
                                "Peak waiting-queue depth");
}

void
ServerStats::reset()
{
    // In-place value reset: registration (and therefore every cached
    // pointer, here and in external registry() holders) survives.
    reg->resetValues();
    firstArrivalUs = ~uint64_t{0};
    lastDoneUs = 0;
    lastKind = -1;
    lastAgg = AggCacheStats{};
}

ServerStats::TenantCells &
ServerStats::tenantCells(uint32_t tenant)
{
    auto it = tenantCache.find(tenant);
    if (it != tenantCache.end())
        return it->second;
    const obs::Labels labels = tenantLabels(tenant);
    TenantCells cells;
    cells.admitted =
        &reg->counter(kAdmitted, labels, "Requests admitted");
    cells.rejected = &reg->counter(
        kRejected, labels, "Requests rejected (token budget)");
    cells.overloaded = &reg->counter(
        kOverloaded, labels, "Requests shed (queue at capacity)");
    cells.expired = &reg->counter(
        kExpired, labels, "Requests dropped (deadline passed)");
    cells.shedStale = &reg->counter(
        kShedStale, labels, "Requests dropped (freshness blocked)");
    cells.served = &reg->counter(kServed, labels, "Requests served");
    cells.latUs = &reg->histogram(kTenantLat, obs::latencyBoundsUs(),
                                  labels, "Served latency (us)");
    return tenantCache.emplace(tenant, cells).first->second;
}

void
ServerStats::recordInference(const InferenceResult &r)
{
    const uint64_t lat = r.doneUs - r.arrivalUs;
    infLatUs->observe(lat);
    infRequests->inc();
    firstArrivalUs = std::min(firstArrivalUs, r.arrivalUs);
    lastDoneUs = std::max(lastDoneUs, r.doneUs);

    TenantCells &t = tenantCells(r.tenant);
    t.served->inc();
    t.latUs->observe(lat);
    reg->counter(kStaleness,
                 {{"epochs_behind", std::to_string(r.epochsBehind)}},
                 "Served requests by epochs-behind at serve time")
        .inc();
    if (r.epochsBehind > 0)
        staleServeCount->inc();
    if (r.freshness == Freshness::Strict && r.deadlineUs != 0 &&
        r.startUs > r.deadlineUs)
        strictViolations->inc();
}

void
ServerStats::recordAdmission(uint32_t tenant)
{
    tenantCells(tenant).admitted->inc();
}

void
ServerStats::recordRejection(const Rejection &r)
{
    TenantCells &t = tenantCells(r.tenant);
    switch (r.error) {
    case ServeError::Rejected:
        t.rejected->inc();
        break;
    case ServeError::Overloaded:
        t.overloaded->inc();
        break;
    case ServeError::Expired:
        t.expired->inc();
        break;
    case ServeError::ShedStale:
        t.shedStale->inc();
        break;
    case ServeError::None:
        break;
    }
}

void
ServerStats::recordQueueDepth(size_t depth)
{
    queueDepth->set(static_cast<int64_t>(depth));
    queueDepthMax->setMax(static_cast<int64_t>(depth));
}

void
ServerStats::recordInferenceBatch(const BatchExecInfo &info)
{
    infBatches->inc();
    reg->counter(kBatchSize,
                 {{"size", std::to_string(info.targets)}},
                 "Inference batches by batch size")
        .inc();
    if (info.wholeGraph) {
        wholeGraph->inc();
    } else {
        subNodesTotal->add(info.subNodes);
        subBatchesTotal->inc();
    }
    const int kind = static_cast<int>(RequestKind::Inference);
    if (lastKind >= 0 && lastKind != kind)
        interleaveCount->inc();
    lastKind = kind;
}

void
ServerStats::recordAggCache(const AggCacheStats &s)
{
    aggHits->add(s.hits - lastAgg.hits);
    aggMisses->add(s.misses - lastAgg.misses);
    aggFills->add(s.fills - lastAgg.fills);
    aggEvictions->add(s.evictions - lastAgg.evictions);
    aggInvalidated->add(s.invalidated - lastAgg.invalidated);
    aggClears->add(s.clears - lastAgg.clears);
    aggBytes->set(static_cast<int64_t>(s.bytes));
    aggEntries->set(static_cast<int64_t>(s.entries));
    lastAgg = s;
}

void
ServerStats::recordUpdate(const UpdateResult &r)
{
    updLatUs->observe(r.doneUs - r.arrivalUs);
    updBatches->inc();
    updCoalesced->add(r.coalesced);
    edgesAdded->add(r.edgesApplied);
    edgesDropped->add(r.edgesRemoved);
    edgesInvalid->add(r.edgesSkippedInvalid);
    edgesNoop->add(r.edgesSkippedNoop);
    if (r.edgesApplied > 0 || r.edgesRemoved > 0)
        epochs->inc();
    firstArrivalUs = std::min(firstArrivalUs, r.arrivalUs);
    lastDoneUs = std::max(lastDoneUs, r.doneUs);
    const int kind = static_cast<int>(RequestKind::Update);
    if (lastKind >= 0 && lastKind != kind)
        interleaveCount->inc();
    lastKind = kind;
}

LatencySummary
ServerStats::inferenceLatency() const
{
    return summarize(*infLatUs);
}

LatencySummary
ServerStats::updateLatency() const
{
    return summarize(*updLatUs);
}

LatencySummary
ServerStats::tenantLatency(uint32_t tenant) const
{
    const obs::Histogram *h =
        reg->findHistogram(kTenantLat, tenantLabels(tenant));
    return h ? summarize(*h) : LatencySummary{};
}

std::map<uint32_t, TenantStats>
ServerStats::tenantStats() const
{
    std::map<uint32_t, TenantStats> out;
    struct FamilyField
    {
        const char *family;
        uint64_t TenantStats::*field;
    };
    const FamilyField fields[] = {
        {kAdmitted, &TenantStats::admitted},
        {kRejected, &TenantStats::rejected},
        {kOverloaded, &TenantStats::overloaded},
        {kExpired, &TenantStats::expired},
        {kShedStale, &TenantStats::shedStale},
        {kServed, &TenantStats::served},
    };
    for (const FamilyField &f : fields)
        for (const auto &[id, v] : familyToMap(*reg, f.family, "tenant"))
            out[id].*f.field = v;
    return out;
}

std::map<uint32_t, uint64_t>
ServerStats::stalenessHistogram() const
{
    return familyToMap(*reg, kStaleness, "epochs_behind");
}

std::map<uint32_t, uint64_t>
ServerStats::batchSizeHistogram() const
{
    return familyToMap(*reg, kBatchSize, "size");
}

uint64_t
ServerStats::admittedRequests() const
{
    return reg->counterFamilyTotal(kAdmitted);
}

uint64_t
ServerStats::rejectedRequests() const
{
    return reg->counterFamilyTotal(kRejected);
}

uint64_t
ServerStats::overloadedRequests() const
{
    return reg->counterFamilyTotal(kOverloaded);
}

uint64_t
ServerStats::expiredRequests() const
{
    return reg->counterFamilyTotal(kExpired);
}

uint64_t
ServerStats::shedStaleRequests() const
{
    return reg->counterFamilyTotal(kShedStale);
}

uint64_t
ServerStats::shedRequests() const
{
    return rejectedRequests() + overloadedRequests();
}

double
ServerStats::shedRate() const
{
    const uint64_t rejected = rejectedRequests();
    const uint64_t overloaded = overloadedRequests();
    const uint64_t refused = rejected + overloaded +
                             expiredRequests() + shedStaleRequests();
    const uint64_t total =
        admittedRequests() + rejected + overloaded;
    if (total == 0)
        return 0.0;
    return static_cast<double>(refused) / static_cast<double>(total);
}

uint64_t
ServerStats::maxQueueDepth() const
{
    return static_cast<uint64_t>(queueDepthMax->value());
}

uint64_t
ServerStats::strictDeadlineViolations() const
{
    return strictViolations->value();
}

uint64_t
ServerStats::staleServes() const
{
    return staleServeCount->value();
}

double
ServerStats::throughputRps() const
{
    if (infLatUs->count() == 0 || lastDoneUs <= firstArrivalUs)
        return 0.0;
    return static_cast<double>(infLatUs->count()) /
           (static_cast<double>(lastDoneUs - firstArrivalUs) * 1e-6);
}

uint64_t
ServerStats::inferenceRequests() const
{
    return infRequests->value();
}

uint64_t
ServerStats::inferenceBatches() const
{
    return infBatches->value();
}

uint64_t
ServerStats::updateApplications() const
{
    return updBatches->value();
}

uint64_t
ServerStats::updatesCoalesced() const
{
    return updCoalesced->value();
}

uint64_t
ServerStats::epochsPublished() const
{
    return epochs->value();
}

uint64_t
ServerStats::edgesApplied() const
{
    return edgesAdded->value();
}

uint64_t
ServerStats::edgesRemoved() const
{
    return edgesDropped->value();
}

uint64_t
ServerStats::edgesSkippedInvalid() const
{
    return edgesInvalid->value();
}

uint64_t
ServerStats::edgesSkippedNoop() const
{
    return edgesNoop->value();
}

uint64_t
ServerStats::wholeGraphBatches() const
{
    return wholeGraph->value();
}

uint64_t
ServerStats::interleaves() const
{
    return interleaveCount->value();
}

double
ServerStats::meanBatchSize() const
{
    if (infBatches->value() == 0)
        return 0.0;
    return static_cast<double>(infRequests->value()) /
           static_cast<double>(infBatches->value());
}

uint64_t
ServerStats::aggCacheHits() const
{
    return aggHits->value();
}

uint64_t
ServerStats::aggCacheMisses() const
{
    return aggMisses->value();
}

uint64_t
ServerStats::aggCacheFills() const
{
    return aggFills->value();
}

uint64_t
ServerStats::aggCacheEvictions() const
{
    return aggEvictions->value();
}

uint64_t
ServerStats::aggCacheInvalidated() const
{
    return aggInvalidated->value();
}

uint64_t
ServerStats::aggCacheBytes() const
{
    return static_cast<uint64_t>(aggBytes->value());
}

uint64_t
ServerStats::aggCacheEntries() const
{
    return static_cast<uint64_t>(aggEntries->value());
}

double
ServerStats::aggCacheHitRate() const
{
    const uint64_t lookups = aggHits->value() + aggMisses->value();
    if (lookups == 0)
        return 0.0;
    return static_cast<double>(aggHits->value()) /
           static_cast<double>(lookups);
}

double
ServerStats::meanSubgraphNodes() const
{
    if (subBatchesTotal->value() == 0)
        return 0.0;
    return static_cast<double>(subNodesTotal->value()) /
           static_cast<double>(subBatchesTotal->value());
}

std::string
ServerStats::summary() const
{
    const LatencySummary inf = inferenceLatency();
    const LatencySummary upd = updateLatency();
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "inference: %llu requests in %llu batches (mean %.1f/batch, "
        "%llu whole-graph)\n"
        "latency us: p50 %.0f  p95 %.0f  p99 %.0f  mean %.1f  max %llu\n"
        "throughput: %.0f req/s (server-clock makespan)\n"
        "updates: %llu applications (%llu requests coalesced, "
        "%llu edges added, %llu removed, %llu epochs; "
        "skipped %llu invalid + %llu no-op)\n"
        "update latency us: p50 %.0f  p99 %.0f\n"
        "interleaves: %llu  mean receptive field: %.1f nodes\n",
        static_cast<unsigned long long>(inf.count),
        static_cast<unsigned long long>(infBatches->value()),
        meanBatchSize(),
        static_cast<unsigned long long>(wholeGraph->value()), inf.p50,
        inf.p95, inf.p99, inf.meanUs,
        static_cast<unsigned long long>(inf.maxUs), throughputRps(),
        static_cast<unsigned long long>(updBatches->value()),
        static_cast<unsigned long long>(updCoalesced->value()),
        static_cast<unsigned long long>(edgesAdded->value()),
        static_cast<unsigned long long>(edgesDropped->value()),
        static_cast<unsigned long long>(epochs->value()),
        static_cast<unsigned long long>(edgesInvalid->value()),
        static_cast<unsigned long long>(edgesNoop->value()),
        upd.p50, upd.p99,
        static_cast<unsigned long long>(interleaveCount->value()),
        meanSubgraphNodes());
    std::string out = buf;
    if (aggHits->value() + aggMisses->value() > 0) {
        std::snprintf(
            buf, sizeof(buf),
            "agg cache: %.1f%% hit rate (%llu hits, %llu misses), "
            "%llu fills, %llu evictions, %llu invalidated, "
            "%llu entries / %llu bytes resident\n",
            100.0 * aggCacheHitRate(),
            static_cast<unsigned long long>(aggHits->value()),
            static_cast<unsigned long long>(aggMisses->value()),
            static_cast<unsigned long long>(aggFills->value()),
            static_cast<unsigned long long>(aggEvictions->value()),
            static_cast<unsigned long long>(aggInvalidated->value()),
            static_cast<unsigned long long>(aggEntries->value()),
            static_cast<unsigned long long>(aggBytes->value()));
        out += buf;
    }
    const uint64_t admitted = admittedRequests();
    const uint64_t rejected = rejectedRequests();
    const uint64_t overloaded = overloadedRequests();
    if (admitted + rejected + overloaded > 0) {
        std::snprintf(
            buf, sizeof(buf),
            "admission: %llu admitted, %llu rejected (budget), "
            "%llu overloaded (queue), %llu expired, %llu shed-stale "
            "(shed rate %.1f%%)\n"
            "staleness: %llu stale serves, max queue depth %llu, "
            "strict deadline violations %llu\n",
            static_cast<unsigned long long>(admitted),
            static_cast<unsigned long long>(rejected),
            static_cast<unsigned long long>(overloaded),
            static_cast<unsigned long long>(expiredRequests()),
            static_cast<unsigned long long>(shedStaleRequests()),
            100.0 * shedRate(),
            static_cast<unsigned long long>(staleServeCount->value()),
            static_cast<unsigned long long>(maxQueueDepth()),
            static_cast<unsigned long long>(strictViolations->value()));
        out += buf;
    }
    return out;
}

std::string
ServerStats::rejectionTable() const
{
    const std::map<uint32_t, TenantStats> tenants = tenantStats();
    if (tenants.empty())
        return "";
    std::string out =
        "tenant   admitted rejected overload  expired shedstale "
        "  served    p99us\n";
    char buf[256];
    for (const auto &[tenant, t] : tenants) {
        const LatencySummary lat = tenantLatency(tenant);
        std::snprintf(buf, sizeof(buf),
                      "%-8u %8llu %8llu %8llu %8llu %9llu %8llu %8.0f\n",
                      tenant,
                      static_cast<unsigned long long>(t.admitted),
                      static_cast<unsigned long long>(t.rejected),
                      static_cast<unsigned long long>(t.overloaded),
                      static_cast<unsigned long long>(t.expired),
                      static_cast<unsigned long long>(t.shedStale),
                      static_cast<unsigned long long>(t.served),
                      lat.p99);
        out += buf;
    }
    return out;
}

} // namespace igcn::serve
