#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace igcn::serve {

namespace {

LatencySummary
summarize(std::vector<uint64_t> lat)
{
    LatencySummary s;
    s.count = lat.size();
    if (lat.empty())
        return s;
    std::sort(lat.begin(), lat.end());
    auto rank = [&lat](double p) {
        const size_t idx = static_cast<size_t>(
            std::ceil(p * static_cast<double>(lat.size())));
        return static_cast<double>(lat[idx == 0 ? 0 : idx - 1]);
    };
    s.p50 = rank(0.50);
    s.p95 = rank(0.95);
    s.p99 = rank(0.99);
    double sum = 0;
    for (uint64_t v : lat)
        sum += static_cast<double>(v);
    s.meanUs = sum / static_cast<double>(lat.size());
    s.maxUs = lat.back();
    return s;
}

} // namespace

void
ServerStats::recordInference(const InferenceResult &r)
{
    infLatUs.push_back(r.doneUs - r.arrivalUs);
    firstArrivalUs = std::min(firstArrivalUs, r.arrivalUs);
    lastDoneUs = std::max(lastDoneUs, r.doneUs);

    TenantStats &t = tenants[r.tenant];
    t.served++;
    t.latUs.push_back(r.doneUs - r.arrivalUs);
    staleHist[r.epochsBehind]++;
    if (r.epochsBehind > 0)
        numStaleServes++;
    if (r.freshness == Freshness::Strict && r.deadlineUs != 0 &&
        r.startUs > r.deadlineUs)
        numStrictViolations++;
}

void
ServerStats::recordAdmission(uint32_t tenant)
{
    numAdmitted++;
    tenants[tenant].admitted++;
}

void
ServerStats::recordRejection(const Rejection &r)
{
    TenantStats &t = tenants[r.tenant];
    switch (r.error) {
    case ServeError::Rejected:
        numRejected++;
        t.rejected++;
        break;
    case ServeError::Overloaded:
        numOverloaded++;
        t.overloaded++;
        break;
    case ServeError::Expired:
        numExpired++;
        t.expired++;
        break;
    case ServeError::ShedStale:
        numShedStale++;
        t.shedStale++;
        break;
    case ServeError::None:
        break;
    }
}

void
ServerStats::recordQueueDepth(size_t depth)
{
    maxDepth = std::max(maxDepth, static_cast<uint64_t>(depth));
}

void
ServerStats::recordInferenceBatch(const BatchExecInfo &info)
{
    numInfBatches++;
    batchHist[info.targets]++;
    if (info.wholeGraph) {
        numWholeGraph++;
    } else {
        subNodesTotal += info.subNodes;
        subBatches++;
    }
    const int kind = static_cast<int>(RequestKind::Inference);
    if (lastKind >= 0 && lastKind != kind)
        numInterleaves++;
    lastKind = kind;
}

void
ServerStats::recordUpdate(const UpdateResult &r)
{
    updLatUs.push_back(r.doneUs - r.arrivalUs);
    numUpdBatches++;
    numUpdCoalesced += r.coalesced;
    numEdgesApplied += r.edgesApplied;
    numEdgesRemoved += r.edgesRemoved;
    numEdgesSkippedInvalid += r.edgesSkippedInvalid;
    numEdgesSkippedNoop += r.edgesSkippedNoop;
    if (r.edgesApplied > 0 || r.edgesRemoved > 0)
        numEpochs++;
    firstArrivalUs = std::min(firstArrivalUs, r.arrivalUs);
    lastDoneUs = std::max(lastDoneUs, r.doneUs);
    const int kind = static_cast<int>(RequestKind::Update);
    if (lastKind >= 0 && lastKind != kind)
        numInterleaves++;
    lastKind = kind;
}

LatencySummary
ServerStats::inferenceLatency() const
{
    return summarize(infLatUs);
}

LatencySummary
ServerStats::updateLatency() const
{
    return summarize(updLatUs);
}

LatencySummary
ServerStats::tenantLatency(uint32_t tenant) const
{
    auto it = tenants.find(tenant);
    if (it == tenants.end())
        return LatencySummary{};
    return summarize(it->second.latUs);
}

double
ServerStats::shedRate() const
{
    const uint64_t refused =
        numRejected + numOverloaded + numExpired + numShedStale;
    const uint64_t total = numAdmitted + numRejected + numOverloaded;
    if (total == 0)
        return 0.0;
    return static_cast<double>(refused) / static_cast<double>(total);
}

double
ServerStats::throughputRps() const
{
    if (infLatUs.empty() || lastDoneUs <= firstArrivalUs)
        return 0.0;
    return static_cast<double>(infLatUs.size()) /
           (static_cast<double>(lastDoneUs - firstArrivalUs) * 1e-6);
}

double
ServerStats::meanBatchSize() const
{
    if (numInfBatches == 0)
        return 0.0;
    return static_cast<double>(infLatUs.size()) /
           static_cast<double>(numInfBatches);
}

double
ServerStats::meanSubgraphNodes() const
{
    if (subBatches == 0)
        return 0.0;
    return static_cast<double>(subNodesTotal) /
           static_cast<double>(subBatches);
}

std::string
ServerStats::summary() const
{
    const LatencySummary inf = inferenceLatency();
    const LatencySummary upd = updateLatency();
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "inference: %llu requests in %llu batches (mean %.1f/batch, "
        "%llu whole-graph)\n"
        "latency us: p50 %.0f  p95 %.0f  p99 %.0f  mean %.1f  max %llu\n"
        "throughput: %.0f req/s (server-clock makespan)\n"
        "updates: %llu applications (%llu requests coalesced, "
        "%llu edges added, %llu removed, %llu epochs; "
        "skipped %llu invalid + %llu no-op)\n"
        "update latency us: p50 %.0f  p99 %.0f\n"
        "interleaves: %llu  mean receptive field: %.1f nodes\n",
        static_cast<unsigned long long>(inf.count),
        static_cast<unsigned long long>(numInfBatches),
        meanBatchSize(),
        static_cast<unsigned long long>(numWholeGraph), inf.p50,
        inf.p95, inf.p99, inf.meanUs,
        static_cast<unsigned long long>(inf.maxUs), throughputRps(),
        static_cast<unsigned long long>(numUpdBatches),
        static_cast<unsigned long long>(numUpdCoalesced),
        static_cast<unsigned long long>(numEdgesApplied),
        static_cast<unsigned long long>(numEdgesRemoved),
        static_cast<unsigned long long>(numEpochs),
        static_cast<unsigned long long>(numEdgesSkippedInvalid),
        static_cast<unsigned long long>(numEdgesSkippedNoop),
        upd.p50, upd.p99,
        static_cast<unsigned long long>(numInterleaves),
        meanSubgraphNodes());
    std::string out = buf;
    if (numAdmitted + numRejected + numOverloaded > 0) {
        std::snprintf(
            buf, sizeof(buf),
            "admission: %llu admitted, %llu rejected (budget), "
            "%llu overloaded (queue), %llu expired, %llu shed-stale "
            "(shed rate %.1f%%)\n"
            "staleness: %llu stale serves, max queue depth %llu, "
            "strict deadline violations %llu\n",
            static_cast<unsigned long long>(numAdmitted),
            static_cast<unsigned long long>(numRejected),
            static_cast<unsigned long long>(numOverloaded),
            static_cast<unsigned long long>(numExpired),
            static_cast<unsigned long long>(numShedStale),
            100.0 * shedRate(),
            static_cast<unsigned long long>(numStaleServes),
            static_cast<unsigned long long>(maxDepth),
            static_cast<unsigned long long>(numStrictViolations));
        out += buf;
    }
    return out;
}

std::string
ServerStats::rejectionTable() const
{
    if (tenants.empty())
        return "";
    std::string out =
        "tenant   admitted rejected overload  expired shedstale "
        "  served    p99us\n";
    char buf[256];
    for (const auto &[tenant, t] : tenants) {
        const LatencySummary lat = summarize(t.latUs);
        std::snprintf(buf, sizeof(buf),
                      "%-8u %8llu %8llu %8llu %8llu %9llu %8llu %8.0f\n",
                      tenant,
                      static_cast<unsigned long long>(t.admitted),
                      static_cast<unsigned long long>(t.rejected),
                      static_cast<unsigned long long>(t.overloaded),
                      static_cast<unsigned long long>(t.expired),
                      static_cast<unsigned long long>(t.shedStale),
                      static_cast<unsigned long long>(t.served),
                      lat.p99);
        out += buf;
    }
    return out;
}

} // namespace igcn::serve
