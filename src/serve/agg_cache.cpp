#include "serve/agg_cache.hpp"

#include <algorithm>
#include <utility>

#include "serve/engine.hpp"

namespace igcn::serve {

// GraphState::aggProvenance is produced in IslandProvenance terms and
// consumed here; the sentinel must be one value.
static_assert(AggCache::kNoParent == IslandProvenance::kNone);

AggCache::AggCache(AggCacheConfig cfg) : cfg(cfg) {}

void
AggCache::advanceTo(const GraphState &state)
{
    advance(state.epoch, state.hasParent, state.parentEpoch,
            state.aggProvenance);
}

void
AggCache::advance(uint64_t new_epoch, bool has_parent,
                  uint64_t parent_epoch,
                  std::span<const uint32_t> provenance)
{
    MutexLock lock(mutex);
    if (primed && new_epoch == cur)
        return;

    if (primed && has_parent && parent_epoch == cur) {
        // Lineage step: keep exactly the entries the provenance map
        // vouches for, rekeyed to the new island ids. Everything
        // else — dissolved islands, dirty-swept survivors, and old
        // ids no new island claims — is invalid.
        std::map<uint32_t, Entry> kept;
        for (uint32_t new_id = 0; new_id < provenance.size();
             ++new_id) {
            const uint32_t parent = provenance[new_id];
            if (parent == kNoParent)
                continue;
            auto it = entries.find(parent);
            if (it == entries.end())
                continue;
            kept.emplace(new_id, std::move(it->second));
            entries.erase(it);
        }
        for (const auto &[id, e] : entries) {
            dropBytesLocked(e);
            st.invalidated++;
        }
        entries = std::move(kept);
        cur = new_epoch;
        return;
    }

    // Lineage gap (or first prime): nothing can be trusted.
    if (!entries.empty()) {
        st.clears++;
        st.bytes = 0;
        st.entries = 0;
        entries.clear();
    }
    cur = new_epoch;
    primed = true;
}

bool
AggCache::lookup(uint64_t epoch, uint32_t island_id,
                 size_t expected_floats, float *out)
{
    MutexLock lock(mutex);
    if (!primed || epoch != cur) {
        st.misses++;
        return false;
    }
    auto it = entries.find(island_id);
    if (it == entries.end() ||
        it->second.rows.size() != expected_floats) {
        st.misses++;
        return false;
    }
    it->second.tick = ++tick;
    std::copy_n(it->second.rows.data(), expected_floats, out);
    st.hits++;
    return true;
}

void
AggCache::insert(uint64_t epoch, uint32_t island_id,
                 std::vector<float> rows)
{
    MutexLock lock(mutex);
    if (!primed || epoch != cur || rows.empty())
        return;
    Entry &e = entries[island_id];
    if (!e.rows.empty())
        dropBytesLocked(e); // overwrite (racing double-fill)
    else
        st.entries++;
    st.bytes += rows.size() * sizeof(float);
    e.rows = std::move(rows);
    e.tick = ++tick;
    st.fills++;
    evictOverBudgetLocked();
}

void
AggCache::reset()
{
    MutexLock lock(mutex);
    entries.clear();
    primed = false;
    cur = 0;
    tick = 0;
    st = AggCacheStats{};
}

AggCacheStats
AggCache::stats() const
{
    MutexLock lock(mutex);
    return st;
}

void
AggCache::dropBytesLocked(const Entry &e)
{
    st.bytes -= e.rows.size() * sizeof(float);
    st.entries--;
}

void
AggCache::evictOverBudgetLocked()
{
    while (st.bytes > cfg.maxBytes && !entries.empty()) {
        auto victim = entries.begin();
        for (auto it = entries.begin(); it != entries.end(); ++it)
            if (it->second.tick < victim->second.tick)
                victim = it;
        dropBytesLocked(victim->second);
        entries.erase(victim);
        st.evictions++;
    }
}

} // namespace igcn::serve
