/**
 * @file
 * The online inference server: queue -> FCFS scheduler -> micro-
 * batched L-hop inference engine, with updates interleaved as graph
 * epochs (see DESIGN.md section 4).
 *
 * Two execution modes share every component:
 *
 *  - **Virtual-clock replay** (runTrace): the trace supplies arrival
 *    timestamps, batch formation is a pure function of those
 *    timestamps and the scheduler config, and completion times come
 *    from a deterministic service-cost model — so results, epochs,
 *    batch composition, and every latency number are bit-reproducible
 *    across runs and IGCN_THREADS settings (the kernels underneath
 *    are bit-identical at any thread count). This is the testing and
 *    benchmarking contract.
 *
 *  - **Real-time serving** (start / submit / stop): producers submit
 *    requests stamped with the live server clock; a scheduler thread
 *    forms batches with real deadline waits and measures wall-clock
 *    latencies. Same queue, scheduler, engine, and applier.
 */

#pragma once

#include <atomic>
#include <thread>

#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_annotations.hpp"
#include "serve/agg_cache.hpp"
#include "serve/queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/stats.hpp"
#include "serve/update.hpp"

namespace igcn::serve {

/**
 * Deterministic virtual service-cost model: completion time of a
 * batch = dispatch time + a cost affine in the work actually done
 * (targets, receptive-field size, islandization repair effort). All
 * inputs are exact integers from the execution, so replay timing is
 * reproducible to the microsecond.
 */
struct ServiceModel
{
    double inferenceFixedUs = 5.0;
    double perTargetUs = 0.5;
    double perSubNodeUs = 0.02;
    double perSubEdgeUs = 0.005;
    double updateFixedUs = 20.0;
    double perAppliedEdgeUs = 1.0;
    /** Deletions pay the same merge cost as insertions plus the
     *  dissolve bookkeeping, charged via edgesScanned below. */
    double perRemovedEdgeUs = 1.0;
    double perScannedEdgeUs = 0.02;

    uint64_t inferenceCostUs(const BatchExecInfo &info,
                             NodeId graph_nodes,
                             EdgeId graph_edges) const;
    uint64_t updateCostUs(const UpdateResult &res) const;
};

/** Observability wiring (DESIGN.md section 8). */
struct ObsConfig
{
    /**
     * Record lifecycle spans and instants into the server's
     * TraceRecorder (export with obs::writePerfettoTrace, CLI
     * --trace-out). In replay mode every timestamp is virtual and
     * the recorded stream is byte-identical at any IGCN_THREADS;
     * real-time mode stamps through the server's RealClock.
     */
    bool traceEnabled = false;
};

/** Full server configuration. */
struct ServerConfig
{
    SchedulerConfig scheduler;
    LocatorConfig locator;
    ServiceModel service;
    /** Receptive-field fraction above which the engine goes whole-graph. */
    double wholeGraphFraction = 0.5;
    /** SLO layer: admission control, EDF + drop-expired, bounded
     *  staleness. Disabled by default (legacy FCFS serving). */
    SloConfig slo;
    /** Deterministic fault-injection plan (replay mode). */
    FaultPlan faults;
    /** Observability: span tracing on/off. */
    ObsConfig obs;
    /** Epoch-keyed island-aggregation cache (serve/agg_cache.hpp).
     *  Off by default; results are byte-identical either way. */
    AggCacheConfig aggCache;
};

/** Everything a run produced, in dispatch order. */
struct ReplayReport
{
    std::vector<InferenceResult> inference;
    std::vector<UpdateResult> updates;
    /** Refused requests (admission rejections and deadline drops),
     *  in decision order. Empty when the SLO layer is disabled. */
    std::vector<Rejection> rejections;
};

/** Per-request SLO parameters of a live submission. */
struct SubmitOptions
{
    uint32_t tenant = 0;
    Priority priority = Priority::Normal;
    /** Relative deadline in microseconds from arrival; 0 = none. */
    uint64_t deadlineUs = 0;
    Freshness freshness = Freshness::Bounded;
};

/** See file comment. */
class Server
{
  public:
    Server(CsrGraph g, Features features,
           std::vector<DenseMatrix> weights, ServerConfig cfg = {});

    /** Dense-feature convenience ctor (the pre-sparse API). */
    Server(CsrGraph g, DenseMatrix features,
           std::vector<DenseMatrix> weights, ServerConfig cfg = {});
    ~Server();

    /**
     * Virtual-clock replay of a complete trace (sorted by arrival;
     * sorted here defensively). Deterministic; see file comment.
     */
    ReplayReport runTrace(std::vector<Request> trace);

    /** Start the real-time scheduler thread. */
    void start();
    /**
     * Submit a live inference request. Typed result: `ok()` means
     * admitted (the id will appear in the report); otherwise the
     * request was refused at the admission boundary (Rejected /
     * Overloaded) and never enqueued. Throws std::logic_error only
     * for API misuse (server not running).
     */
    [[nodiscard]] ServeResult submitInference(NodeId node,
                                const SubmitOptions &opts = {});
    /** Submit a live edge-mutation request (additions and/or
     *  deletions); same typed-result contract as submitInference. */
    [[nodiscard]] ServeResult submitUpdate(std::vector<Edge> added,
                             std::vector<Edge> removed = {},
                             const SubmitOptions &opts = {});
    /** Close the queue, drain it, join the thread, return results. */
    ReplayReport stop();

    const ServerStats &stats() const { return statsAcc; }
    /** The run's span recorder (populated when cfg.obs.traceEnabled;
     *  export with obs::writePerfettoTrace). */
    const obs::TraceRecorder &traceRecorder() const { return tracer; }
    std::shared_ptr<GraphStateHub> stateHub() { return hub; }
    uint64_t currentEpoch() const { return hub->currentEpoch(); }

  private:
    void processBatch(const MicroBatch &batch, bool real_time,
                      uint64_t &busy_until_us);
    ReplayReport runTraceFcfs(std::vector<Request> trace);
    ReplayReport runTraceSlo(std::vector<Request> trace);
    void handleSloDecision(SloScheduler::Decision &d, bool real_time,
                           uint64_t &busy_until_us);
    void realTimeLoopFcfs();
    void realTimeLoopSlo();
    [[nodiscard]] ServeResult submitRequest(Request r);
    uint64_t nowUs() const;

    // Trace emission (no-ops when the recorder is disabled). The
    // batch spans subdivide [formed, done] into phase children by
    // integer-proportional work units — exact integers from the
    // execution, so replay traces are thread-count-exact.
    void traceInferenceBatch(uint64_t formed_us, uint64_t done_us,
                             const BatchExecInfo &info,
                             const std::vector<InferenceResult> &results,
                             NodeId graph_nodes, EdgeId graph_edges);
    void traceUpdateBatch(const UpdateResult &res);
    void traceRejection(const Rejection &rej, bool dropped);

    ServerConfig cfg;
    std::shared_ptr<GraphStateHub> hub;
    InferenceEngine engine;
    UpdateApplier applier;
    /** Present iff cfg.aggCache.enabled; attached to the engine. */
    std::unique_ptr<AggCache> aggCachePtr;
    ServerStats statsAcc;
    ReplayReport report;
    obs::TraceRecorder tracer;
    /** Monotonic batch sequence within one run (trace arg). */
    uint64_t batchSeq = 0;

    // Real-time mode state.
    RequestQueue liveQueue;
    // The scheduler is a long-lived service thread, not data
    // parallelism — the pool still runs every kernel underneath.
    // igcn-lint: allow(no-thread-outside-runtime)
    std::thread schedulerThread;
    std::atomic<uint64_t> nextId{0};
    /** The server's only wall-clock source (real-time mode); reset
     *  at start(). Replay mode never reads it. */
    obs::RealClock clock;
    std::atomic<bool> running{false};

    // Real-time admission state. Admission decisions happen on
    // submitter threads while the scheduler thread owns statsAcc /
    // report, so submit-side decisions are buffered under
    // submitMutex and merged into the stats after the scheduler
    // thread joins in stop() (which takes submitMutex for the merge,
    // uncontended by then).
    Mutex submitMutex;
    AdmissionController liveAdmission IGCN_GUARDED_BY(submitMutex){
        SloConfig{}};
    std::atomic<size_t> waitingCount{0};
    uint64_t liveMaxDepth IGCN_GUARDED_BY(submitMutex) = 0;
    std::vector<uint32_t> liveAdmittedTenants
        IGCN_GUARDED_BY(submitMutex);
    std::vector<Rejection> liveRejections IGCN_GUARDED_BY(submitMutex);
};

} // namespace igcn::serve
