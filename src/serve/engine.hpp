/**
 * @file
 * Graph-state epochs and the micro-batched L-hop inference engine.
 *
 * Concurrency model (the subsystem's torn-read story): everything
 * inference reads — graph, islandization, degree scaling, the
 * whole-graph A_hat — lives in one immutable GraphState. States are
 * published through the GraphStateHub: a reader acquires a
 * shared_ptr snapshot for the duration of a batch and can never
 * observe a half-applied update; the writer builds the next epoch
 * privately and publishes it atomically. Retired epochs are
 * reclaimed when their last in-flight reader drops its snapshot
 * (shared_ptr refcount as epoch-based quiescence) — no locks are
 * held across kernel execution.
 */

#pragma once

#include <memory>
#include <span>

#include "core/locator.hpp"
#include "gcn/layer.hpp"
#include "gcn/reference.hpp"
#include "runtime/thread_annotations.hpp"
#include "serve/request.hpp"
#include "spmm/dense.hpp"

namespace igcn::serve {

class AggCache;

/** One epoch of the evolving graph. Immutable after publication. */
struct GraphState
{
    uint64_t epoch = 0;
    CsrGraph graph;
    IslandizationResult islands;
    /** degreeScaling(graph); gathered per subgraph by the engine. */
    std::vector<float> scale;
    /** Whole-graph A_hat for the large-batch fallback path. */
    CsrMatrix normAdj;

    // Epoch delta for per-island aggregation caches (AggCache).
    // States built from scratch (makeGraphState) have no parent;
    // the update applier fills the lineage on every published epoch.
    /** True when this epoch was derived from parentEpoch by one
     *  update application. */
    bool hasParent = false;
    uint64_t parentEpoch = 0;
    /**
     * For each island id of this epoch: the parent epoch's island id
     * whose cached layer-1 aggregate is still byte-valid, or
     * AggCache::kNoParent. Already the *intersection* of structural
     * provenance (updateIslandization's verbatim-preserved slots)
     * with the endpoint dirty sweep (dirtyIslandEndpointSweep) — a
     * surviving id here means no applied edge changed any member
     * row's normalized-adjacency entries or inputs.
     */
    std::vector<uint32_t> aggProvenance;
};

/** Islandize g and precompute the epoch's derived state. */
std::shared_ptr<const GraphState>
makeGraphState(CsrGraph g, const LocatorConfig &cfg, uint64_t epoch = 0);

/** Epoch publication point (see file comment). */
class GraphStateHub
{
  public:
    explicit GraphStateHub(std::shared_ptr<const GraphState> initial);

    /** Snapshot of the current epoch; hold for the whole batch. */
    std::shared_ptr<const GraphState> acquire() const;

    /** Swap in the next epoch (must advance GraphState::epoch). */
    void publish(std::shared_ptr<const GraphState> next);

    uint64_t currentEpoch() const;

  private:
    mutable Mutex mutex;
    std::shared_ptr<const GraphState> current IGCN_GUARDED_BY(mutex);
};

/** Execution record of one inference micro-batch. */
struct BatchExecInfo
{
    uint64_t epoch = 0;
    uint32_t targets = 0;
    uint32_t uniqueTargets = 0;
    /** Receptive-field size (0 on the whole-graph path). */
    uint32_t subNodes = 0;
    uint64_t subEdges = 0;
    /** True when the batch fell back to a whole-graph pass. */
    bool wholeGraph = false;

    // Aggregation-cache accounting (all zero when no cache attached).
    /** Islands fully interior to the receptive field (consultable). */
    uint32_t cacheEligible = 0;
    /** Of those, islands served from the cache. */
    uint32_t cacheHits = 0;
    /** Entries filled from this batch's computed rows. */
    uint32_t cacheFills = 0;
    /** Layer-1 rows substituted from the cache. */
    uint32_t cacheRows = 0;
    /** Adjacency entries (self loops excluded) the masked layer-1
     *  spmm skipped thanks to those rows. */
    uint64_t cacheSkippedEdges = 0;
};

/**
 * Micro-batched L-hop inference over the current epoch.
 *
 * A batch's receptive field is extracted with L = numLayers() hops,
 * seeded island-by-island (targets ordered by the epoch's islandOf,
 * clustering co-batched targets so overlapping neighborhoods are
 * discovered together), and run through subgraphForward with the
 * full-graph degree scaling — bit-identical to whole-graph reference
 * inference per target at any thread count. When the receptive field
 * exceeds wholeGraphFraction of the graph the engine runs the
 * whole-graph pass on the epoch's cached A_hat instead: the forward
 * would touch nearly every node either way, and the cached A_hat
 * skips the sub-CSR rebuild and row gathers.
 *
 * Features may be dense or CSR (Features::sparse). On the sparse
 * side the engine never densifies X: the subgraph path gathers the
 * receptive field's rows with csrGather and feeds the sparse
 * subgraphForward overload, and the whole-graph path runs
 * sparseTimesDense for layer 0 — both bit-identical to the dense
 * engine on a densified copy of the same features, at any
 * IGCN_THREADS (see sparseTimesDense).
 *
 * runBatch is const and thread-safe: concurrent batches and a
 * concurrent update writer interact only through the hub.
 */
class InferenceEngine
{
  public:
    InferenceEngine(std::shared_ptr<GraphStateHub> hub,
                    Features features,
                    std::vector<DenseMatrix> weights,
                    double whole_graph_fraction = 0.5);

    /** Dense-feature convenience ctor (the pre-sparse API). */
    InferenceEngine(std::shared_ptr<GraphStateHub> hub,
                    DenseMatrix features,
                    std::vector<DenseMatrix> weights,
                    double whole_graph_fraction = 0.5);

    int numLayers() const { return static_cast<int>(weights.size()); }
    size_t numClasses() const { return weights.back().cols(); }

    /**
     * Attach (or detach, nullptr) a per-island layer-1 aggregation
     * cache. With a cache attached the engine substitutes cached
     * rows for islands fully interior to a batch's receptive field
     * and fills misses from the rows it computes anyway — logits are
     * bit-identical to the cacheless engine by construction (see
     * agg_cache.hpp). Not owned; must outlive the engine's batches.
     */
    void attachAggCache(AggCache *cache) { aggCache = cache; }

    /** Serve one inference micro-batch against the current epoch. */
    std::vector<InferenceResult>
    runBatch(std::span<const Request> batch,
             BatchExecInfo *info = nullptr) const;

  private:
    DenseMatrix forwardWholeGraphCached(const GraphState &state,
                                        BatchExecInfo &info) const;
    DenseMatrix forwardSubgraphCached(const GraphState &state,
                                      const LHopSubgraph &ext,
                                      const std::vector<float> &scale,
                                      BatchExecInfo &info) const;

    std::shared_ptr<GraphStateHub> hub;
    Features features;
    std::vector<DenseMatrix> weights;
    double wholeGraphFraction;
    AggCache *aggCache = nullptr;
};

} // namespace igcn::serve
