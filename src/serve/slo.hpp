/**
 * @file
 * SLO machinery for the serving subsystem: per-tenant token-bucket
 * admission control with a bounded queue, and the deterministic
 * fault-injection plan.
 *
 * Admission happens at the serving boundary, *before* a request is
 * enqueued: an over-budget submission is Rejected and an
 * over-capacity one Overloaded — refused immediately with a typed
 * ServeError, never queued. That is what bounds queue memory under
 * overload: the queue can hold at most `queueCap` waiting requests
 * no matter how fast arrivals come.
 *
 * Everything here is a pure function of integer virtual-clock
 * timestamps (token refill included: the bucket state after an
 * arrival depends only on the arrival times seen so far), so
 * admission decisions in replay mode are bit-reproducible across
 * runs and IGCN_THREADS settings. In real-time mode the same code
 * runs against the live server clock.
 */

#pragma once

#include <map>
#include <vector>

#include "serve/request.hpp"

namespace igcn::serve {

/** SLO / robustness knobs. Default-constructed = all off (legacy
 *  FCFS serving, unbounded queue, no shedding). */
struct SloConfig
{
    /** Master switch: enables admission control, EDF ordering,
     *  drop-expired, and bounded-staleness reads. */
    bool enabled = false;
    /**
     * Bounded queue: maximum number of admitted requests waiting
     * (inference + updates). A submission finding the queue full is
     * refused with ServeError::Overloaded. 0 = unbounded.
     */
    uint32_t queueCap = 1024;
    /**
     * Per-tenant token-bucket rate in requests per second; applies
     * to inference traffic (updates are system traffic and are
     * bounded by queueCap only). 0 = unlimited.
     */
    double qpsBudget = 0.0;
    /** Token-bucket capacity (burst allowance), in requests. */
    double burstTokens = 32.0;
    /**
     * Bounded staleness K: a Freshness::Bounded inference request
     * may be served from an epoch at most K *update requests* behind
     * the freshest state admitted before it. 0 = every update is a
     * hard sequence point for everyone (the pre-SLO semantics).
     * Freshness::Strict requests always behave as if K were 0.
     */
    uint32_t stalenessBound = 0;
};

/**
 * Deterministic token bucket. Refill is computed lazily from the
 * elapsed time at each take, so the bucket state is a pure function
 * of the (integer) timestamps at which takes happened.
 */
class TokenBucket
{
  public:
    TokenBucket() = default;
    TokenBucket(double qps, double burst)
        : tokens(burst), ratePerUs(qps * 1e-6), cap(burst)
    {}

    /** Take one token at time now_us; false = bucket empty. */
    bool tryTake(uint64_t now_us);

    double available(uint64_t now_us) const;

  private:
    double tokens = 0.0;
    double ratePerUs = 0.0;
    double cap = 0.0;
    uint64_t lastUs = 0;
};

/**
 * The admission pipeline (budget check, then capacity check).
 * Single-threaded in replay mode; the real-time server serializes
 * calls behind its submit mutex.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(const SloConfig &cfg) : cfg(cfg) {}

    /**
     * Decide admission of `r` arriving at `r.arrivalUs` with
     * `queue_depth` requests already waiting. Returns
     * ServeError::None (admit), Rejected (tenant over budget), or
     * Overloaded (queue at capacity). Updates are exempt from the
     * token budget but count against — and are bounded by — the
     * queue capacity.
     */
    ServeError tryAdmit(const Request &r, size_t queue_depth);

  private:
    SloConfig cfg;
    std::map<uint32_t, TokenBucket> buckets;
};

/** One deterministic fault event, keyed off the virtual clock. */
struct FaultEvent
{
    enum class Kind : uint8_t
    {
        /** Engine serves nothing in [atUs, atUs + durationUs): a
         *  stall (GC pause, checkpoint, slow shard). Dispatch times
         *  falling inside the window slide to its end. */
        EngineStall,
        /** Update requests arriving in [atUs, atUs + durationUs)
         *  are delayed to the window end (replication lag): the
         *  update burst then lands all at once — the bounded-
         *  staleness path's worst case. */
        UpdateDelay,
        /** `count` extra inference requests arrive at atUs
         *  (one per microsecond), targeting `node` and billed to
         *  `tenant`; each carries a relative deadline of durationUs
         *  (0 = none). A synthetic thundering herd. */
        BurstArrivals,
    };

    Kind kind = Kind::EngineStall;
    uint64_t atUs = 0;
    uint64_t durationUs = 0;
    uint32_t count = 0;
    NodeId node = 0;
    uint32_t tenant = 0;
};

/**
 * A deterministic fault-injection plan: a set of virtual-clock-keyed
 * events applied to a replay. Trace-shape faults (UpdateDelay,
 * BurstArrivals) are applied as a deterministic trace rewrite before
 * scheduling; EngineStall is applied at dispatch time. The same plan
 * therefore produces the same degraded behavior at any IGCN_THREADS
 * setting — degradation is differentially testable.
 */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /**
     * Dispatch-time hook: the earliest time >= t at which the engine
     * may start work, sliding t past every EngineStall window it
     * falls into (windows may chain).
     */
    uint64_t resolveStall(uint64_t t) const;

    /**
     * Trace rewrite: delay updates caught in UpdateDelay windows,
     * inject BurstArrivals requests (ids continue above the trace's
     * maximum), and re-sort by arrival. Deterministic.
     */
    void applyToTrace(std::vector<Request> &trace) const;
};

} // namespace igcn::serve
