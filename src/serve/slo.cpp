#include "serve/slo.hpp"

#include <algorithm>

namespace igcn::serve {

const char *
serveErrorName(ServeError e)
{
    switch (e) {
    case ServeError::None: return "admitted";
    case ServeError::Rejected: return "rejected";
    case ServeError::Overloaded: return "overloaded";
    case ServeError::Expired: return "expired";
    case ServeError::ShedStale: return "shed-stale";
    }
    return "?";
}

bool
TokenBucket::tryTake(uint64_t now_us)
{
    const uint64_t elapsed = now_us > lastUs ? now_us - lastUs : 0;
    tokens = std::min(cap,
                      tokens + static_cast<double>(elapsed) * ratePerUs);
    lastUs = std::max(lastUs, now_us);
    if (tokens < 1.0)
        return false;
    tokens -= 1.0;
    return true;
}

double
TokenBucket::available(uint64_t now_us) const
{
    const uint64_t elapsed = now_us > lastUs ? now_us - lastUs : 0;
    return std::min(cap,
                    tokens + static_cast<double>(elapsed) * ratePerUs);
}

ServeError
AdmissionController::tryAdmit(const Request &r, size_t queue_depth)
{
    if (!cfg.enabled)
        return ServeError::None;
    if (r.kind == RequestKind::Inference && cfg.qpsBudget > 0.0) {
        auto [it, inserted] = buckets.try_emplace(
            r.tenant, cfg.qpsBudget, cfg.burstTokens);
        if (!it->second.tryTake(r.arrivalUs))
            return ServeError::Rejected;
    }
    if (cfg.queueCap > 0 && queue_depth >= cfg.queueCap)
        return ServeError::Overloaded;
    return ServeError::None;
}

uint64_t
FaultPlan::resolveStall(uint64_t t) const
{
    // Windows may chain (one stall's end inside another's window),
    // so iterate to a fixed point; plans are tiny.
    bool moved = true;
    while (moved) {
        moved = false;
        for (const FaultEvent &e : events) {
            if (e.kind != FaultEvent::Kind::EngineStall)
                continue;
            if (t >= e.atUs && t < e.atUs + e.durationUs) {
                t = e.atUs + e.durationUs;
                moved = true;
            }
        }
    }
    return t;
}

void
FaultPlan::applyToTrace(std::vector<Request> &trace) const
{
    if (empty())
        return;
    uint64_t max_id = 0;
    for (Request &r : trace) {
        max_id = std::max(max_id, r.id);
        if (r.kind != RequestKind::Update)
            continue;
        for (const FaultEvent &e : events) {
            if (e.kind != FaultEvent::Kind::UpdateDelay)
                continue;
            if (r.arrivalUs >= e.atUs &&
                r.arrivalUs < e.atUs + e.durationUs)
                r.arrivalUs = e.atUs + e.durationUs;
        }
    }
    for (const FaultEvent &e : events) {
        if (e.kind != FaultEvent::Kind::BurstArrivals)
            continue;
        for (uint32_t i = 0; i < e.count; ++i) {
            Request r;
            r.kind = RequestKind::Inference;
            r.id = ++max_id;
            r.arrivalUs = e.atUs + i; // one per microsecond
            r.tenant = e.tenant;
            r.node = e.node;
            if (e.durationUs > 0)
                r.deadlineUs = r.arrivalUs + e.durationUs;
            trace.push_back(std::move(r));
        }
    }
    std::stable_sort(trace.begin(), trace.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrivalUs < b.arrivalUs;
                     });
}

} // namespace igcn::serve
