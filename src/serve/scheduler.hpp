/**
 * @file
 * FCFS micro-batching scheduler.
 *
 * Batching rule (the µLLM/vLLM continuous-batching shape adapted to
 * graph serving): pop the queue head; the batch may start no earlier
 * than max(engine-busy-until, head arrival); requests of the same
 * kind arriving before start + maxWaitUs join the batch up to the
 * kind's size cap. A head of the other kind closes the batch — FCFS
 * order between inference and updates is never violated, which is
 * what makes per-request results independent of the batch cap (an
 * update can never jump ahead of, or fall behind, an inference
 * request it raced in arrival order). Consecutive updates coalesce
 * into one application regardless of whether they add or delete
 * edges — the applier folds the mixed span into one last-write-wins
 * net effect (the mixed-span coalescing rule) — the exact batched
 * `std::span` pattern updateIslandization is tested for.
 *
 * In virtual mode the decisions above are a pure function of the
 * trace timestamps and this config — the determinism contract the
 * test suite locks in across thread counts and batch caps.
 */

#pragma once

#include "serve/queue.hpp"

namespace igcn::serve {

/** Micro-batching knobs. */
struct SchedulerConfig
{
    /** Inference micro-batch size cap. */
    uint32_t maxBatch = 32;
    /** Batching deadline past the batch's earliest possible start. */
    uint64_t maxWaitUs = 200;
    /** Consecutive update requests folded into one application. */
    uint32_t maxUpdateCoalesce = 64;
};

/** One scheduled micro-batch (all requests share a kind). */
struct MicroBatch
{
    RequestKind kind = RequestKind::Inference;
    std::vector<Request> requests;
    /** Dispatch time: when the batch left the queue. */
    uint64_t formedAtUs = 0;
};

/** Forms FCFS micro-batches from a RequestQueue. */
class Scheduler
{
  public:
    /**
     * @param queue      the queue to drain
     * @param cfg        batching knobs
     * @param real_time  block for late arrivals (live traffic) rather
     *                   than deciding from timestamps (trace replay)
     * @param now_us     server clock, required when real_time
     */
    Scheduler(RequestQueue &queue, SchedulerConfig cfg, bool real_time,
              RequestQueue::NowFn now_us = {});

    /**
     * Form the next micro-batch. not_before_us is the engine's
     * busy-until time (virtual mode; pass the current clock in
     * real-time mode) — the batch cannot start before it.
     * @return false when the queue is closed and drained.
     */
    bool next(uint64_t not_before_us, MicroBatch &out);

    const SchedulerConfig &config() const { return cfg; }

  private:
    RequestQueue &queue;
    SchedulerConfig cfg;
    bool realTime;
    RequestQueue::NowFn nowUs;
};

} // namespace igcn::serve
