/**
 * @file
 * FCFS micro-batching scheduler.
 *
 * Batching rule (the µLLM/vLLM continuous-batching shape adapted to
 * graph serving, same discipline as SloScheduler): pop the queue
 * head; the batch starts at start = max(engine-busy-until, head
 * arrival) and admits the same-kind requests with arrival <= start,
 * up to the kind's size cap — the batch is whatever is eligible when
 * the engine frees up, with no straggler wait. The legacy rule
 * instead held the batch open until start + maxWaitUs, taxing every
 * admitted request with the wait for stragglers even when the size
 * cap had headroom; tests/test_serving.cpp pins the differential
 * against an in-test model of that rule. A head of the other kind
 * closes the batch — FCFS order between inference and updates is
 * never violated, which is what makes per-request results
 * independent of the batch cap (an update can never jump ahead of,
 * or fall behind, an inference request it raced in arrival order).
 * Consecutive updates coalesce into one application regardless of
 * whether they add or delete edges — the applier folds the mixed
 * span into one last-write-wins net effect (the mixed-span
 * coalescing rule) — the exact batched `std::span` pattern
 * updateIslandization is tested for.
 *
 * In virtual mode the decisions above are a pure function of the
 * trace timestamps and this config — the determinism contract the
 * test suite locks in across thread counts and batch caps.
 */

#pragma once

#include "serve/queue.hpp"
#include "serve/slo.hpp"

namespace igcn::serve {

/** Micro-batching knobs. */
struct SchedulerConfig
{
    /** Inference micro-batch size cap. */
    uint32_t maxBatch = 32;
    /** DEPRECATED — ignored. The legacy straggler-wait deadline of
     *  the drain-then-admit rule; continuous batching admits by the
     *  engine-free instant alone. Kept so existing configs and CLI
     *  invocations stay valid. */
    uint64_t maxWaitUs = 200;
    /** Consecutive update requests folded into one application. */
    uint32_t maxUpdateCoalesce = 64;
};

/** One scheduled micro-batch (all requests share a kind). */
struct MicroBatch
{
    RequestKind kind = RequestKind::Inference;
    std::vector<Request> requests;
    /** Dispatch time: when the batch left the queue. */
    uint64_t formedAtUs = 0;
};

/** Forms FCFS micro-batches from a RequestQueue. */
class Scheduler
{
  public:
    /**
     * @param queue      the queue to drain
     * @param cfg        batching knobs
     * @param real_time  block for late arrivals (live traffic) rather
     *                   than deciding from timestamps (trace replay)
     * @param now_us     server clock, required when real_time
     */
    Scheduler(RequestQueue &queue, SchedulerConfig cfg, bool real_time,
              RequestQueue::NowFn now_us = {});

    /**
     * Form the next micro-batch. not_before_us is the engine's
     * busy-until time (virtual mode; pass the current clock in
     * real-time mode) — the batch cannot start before it.
     * @return false when the queue is closed and drained.
     */
    bool next(uint64_t not_before_us, MicroBatch &out);

    const SchedulerConfig &config() const { return cfg; }

  private:
    RequestQueue &queue;
    SchedulerConfig cfg;
    bool realTime;
    RequestQueue::NowFn nowUs;
};

/**
 * The SLO-aware scheduler core: EDF + drop-expired over admitted
 * inference requests, arrival-ordered update application, and
 * bounded-staleness interleaving.
 *
 * Policy, applied at every engine-free moment t:
 *
 *  1. Drop every pooled inference request whose deadline passed
 *     (< t): Expired if it was eligible and simply waited too long,
 *     ShedStale if it was blocked on its freshness gate.
 *  2. If any pooled inference request is *eligible* — the applier is
 *     within its staleness budget (0 for Strict, K for Bounded) —
 *     serve an inference batch: eligible requests in EDF order, up
 *     to maxBatch.
 *  3. Otherwise, if updates are pending, apply a coalesced update
 *     batch (up to maxUpdateCoalesce).
 *
 * Step 2 before step 3 is what keeps p99 flat during update bursts:
 * bounded-staleness requests keep being served from the current
 * epoch while updates queue, and updates apply exactly when the
 * staleness bound forces them (every pooled request ineligible) or
 * when inference goes idle. Because ineligibility implies pending
 * updates (requiredSeq counts only admitted updates), the policy
 * never deadlocks; K therefore truly bounds how far any served
 * request's epoch can lag the updates admitted before it.
 *
 * Unlike the FCFS Scheduler there is no batching wait: a batch is
 * whatever is eligible when the engine frees up (continuous
 * batching) — under load batches fill from the backlog, under light
 * load requests go out alone immediately.
 *
 * Single-threaded; decisions are a pure function of the admitted
 * request timestamps, the config, and the fault plan — the replay
 * determinism contract.
 */
class SloScheduler
{
  public:
    SloScheduler(SchedulerConfig batch_cfg, SloConfig slo,
                 const FaultPlan *faults = nullptr);

    /** Pool an admitted request (admission control happens
     *  upstream). Updates advance the admitted-update sequence that
     *  later requests' freshness is measured against. */
    void admit(Request r);

    /** Requests currently pooled (inference + updates). */
    size_t depth() const { return inf.size() + upd.size(); }
    bool empty() const { return depth() == 0; }

    /** Engine-free dispatch time for the next decision: max(busy,
     *  earliest pooled arrival), slid past engine-stall windows.
     *  Pools must be non-empty. */
    uint64_t nextDispatchTimeUs(uint64_t busy_until_us) const;

    /** What the scheduler decided to do at one dispatch point. */
    struct Decision
    {
        enum class Kind : uint8_t { Inference, Update, Drops } kind =
            Kind::Drops;
        MicroBatch batch;
        /** Per-request staleness (parallel to batch.requests;
         *  Inference only): admitted-before updates still unapplied
         *  at dispatch. */
        std::vector<uint32_t> epochsBehind;
        /** Requests dropped at this dispatch point (deadline
         *  passed). */
        std::vector<EdfQueue::Dropped> dropped;
    };

    /**
     * Form the next decision at the engine-free time busy_until_us.
     * Returns false when nothing is pooled. Kind::Drops means the
     * step only dropped expired requests (the pools may now be
     * empty); call again for the next batch.
     */
    bool next(uint64_t busy_until_us, Decision &out);

    /** Tell the scheduler an update application finished (advances
     *  the applied sequence eligibility is measured against). Called
     *  implicitly for batches it forms. */
    uint64_t appliedSeq() const { return applied; }
    uint64_t admittedUpdates() const { return admittedUpd; }

  private:
    SchedulerConfig cfg;
    SloConfig slo;
    const FaultPlan *faults;
    EdfQueue inf;
    std::deque<Request> upd;
    uint64_t admittedUpd = 0;
    uint64_t applied = 0;
};

} // namespace igcn::serve
