/**
 * @file
 * GraphCONV layer building blocks.
 *
 * The layer-wise propagation is X(l+1) = sigma(A_hat X(l) W(l)) with
 * A_hat = D^-1/2 (A + I) D^-1/2 (Kipf & Welling). I-GCN's redundancy
 * removal needs *unweighted* accumulation, so we use the standard
 * factorization A_hat = S (A + I) S with S = diag(1/sqrt(deg+1)):
 * scale rows of XW by S, aggregate over the *binary* adjacency
 * (including self loops), and scale rows by S again. This is exactly
 * equal to the normalized product and lets pre-aggregated sums be
 * reused across shared neighbors.
 */

#pragma once

#include "graph/csr.hpp"
#include "spmm/spmm.hpp"

namespace igcn {

/** S = diag(1/sqrt(degree + 1)), the symmetric-normalization scaler. */
std::vector<float> degreeScaling(const CsrGraph &g);

/** Row-scale in place: m.row(v) *= s[v]. */
void scaleRows(DenseMatrix &m, const std::vector<float> &s);

/**
 * Normalized adjacency A_hat = D^-1/2 (A + I) D^-1/2 as an explicit
 * weighted CSR matrix (reference path).
 */
CsrMatrix normalizedAdjacency(const CsrGraph &g);

/**
 * A_hat of g with caller-supplied scaling: entry (u, v) = s[u]*s[v],
 * self loop s[u]^2 inserted at its sorted position. Equal to
 * normalizedAdjacency when s = degreeScaling(g). The serving engine
 * passes *full-graph* scaling for an extracted receptive subgraph, so
 * fringe truncation never changes a node's normalization.
 */
CsrMatrix normalizedAdjacencyScaled(const CsrGraph &g,
                                    const std::vector<float> &s);

/**
 * Rebuild a_hat from (g, s) in place, reusing its storage across
 * epochs and dropping its cached CSC adjunct (mutating the non-zero
 * arrays of a CsrMatrix requires invalidateCsc; this is the one
 * mutation path the online update applier uses).
 */
void refreshNormalizedAdjacency(CsrMatrix &a_hat, const CsrGraph &g,
                                const std::vector<float> &s);

/**
 * Batched-subgraph forward entry point: the referenceForward layer
 * chain (A_hat X W with combination-first order and inter-layer
 * ReLU) over an extracted L-hop subgraph. `scale` and `x` are the
 * full-graph degree scaling and input features gathered to the
 * subgraph's local ids. Kernels, loop orders, and per-row
 * accumulation order are identical to the whole-graph pass, so rows
 * of nodes whose L-hop neighborhood is inside the subgraph — in
 * particular every extraction target — are bit-identical to
 * referenceForward on the whole graph.
 */
DenseMatrix subgraphForward(const CsrGraph &sub,
                            const std::vector<float> &scale,
                            const DenseMatrix &x,
                            const std::vector<DenseMatrix> &weights);

/**
 * Sparse-input overload: the first layer consumes CSR features
 * directly (sparseTimesDense — no densification). sparseTimesDense
 * accumulates each output element's stored entries in ascending
 * column order, the same order gemm accumulates its non-zero a(i,k)
 * terms, so on features whose dense image is x this overload is
 * bit-identical to the dense subgraphForward; layers past the first
 * share the exact dense chain.
 */
DenseMatrix subgraphForward(const CsrGraph &sub,
                            const std::vector<float> &scale,
                            const CsrFeatures &x,
                            const std::vector<DenseMatrix> &weights);

/** Binary adjacency with self loops, A + I (factored path). */
CsrMatrix binaryAdjacencyWithSelfLoops(const CsrGraph &g);

/** Element-wise ReLU in place. */
void reluInPlace(DenseMatrix &m);

} // namespace igcn
