/**
 * @file
 * GraphCONV layer building blocks.
 *
 * The layer-wise propagation is X(l+1) = sigma(A_hat X(l) W(l)) with
 * A_hat = D^-1/2 (A + I) D^-1/2 (Kipf & Welling). I-GCN's redundancy
 * removal needs *unweighted* accumulation, so we use the standard
 * factorization A_hat = S (A + I) S with S = diag(1/sqrt(deg+1)):
 * scale rows of XW by S, aggregate over the *binary* adjacency
 * (including self loops), and scale rows by S again. This is exactly
 * equal to the normalized product and lets pre-aggregated sums be
 * reused across shared neighbors.
 */

#pragma once

#include "graph/csr.hpp"
#include "spmm/spmm.hpp"

namespace igcn {

/** S = diag(1/sqrt(degree + 1)), the symmetric-normalization scaler. */
std::vector<float> degreeScaling(const CsrGraph &g);

/** Row-scale in place: m.row(v) *= s[v]. */
void scaleRows(DenseMatrix &m, const std::vector<float> &s);

/**
 * Normalized adjacency A_hat = D^-1/2 (A + I) D^-1/2 as an explicit
 * weighted CSR matrix (reference path).
 */
CsrMatrix normalizedAdjacency(const CsrGraph &g);

/** Binary adjacency with self loops, A + I (factored path). */
CsrMatrix binaryAdjacencyWithSelfLoops(const CsrGraph &g);

/** Element-wise ReLU in place. */
void reluInPlace(DenseMatrix &m);

} // namespace igcn
