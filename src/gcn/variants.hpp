/**
 * @file
 * Functional forward passes for the three GNN variants the paper
 * evaluates (Section 4.1), each expressed in the matrix form that
 * I-GCN's binary island aggregation supports (the paper cites GCNAX
 * for the reduction of "most GCNs" to A_hat X W chains):
 *
 *  - GCN (Kipf & Welling): X' = relu(D^-1/2 (A+I) D^-1/2 X W)
 *    — symmetric normalization, factored as S (A+I) S.
 *  - GraphSage (mean aggregator, matrix form): X' =
 *    relu(D^-1 (A+I) X W) — row normalization applied *after* the
 *    binary aggregation.
 *  - GIN: X' = relu(((A + (1+eps) I) X) W) — unweighted neighbor sum
 *    plus an epsilon-weighted self term; the island pass aggregates
 *    without self loops and adds (1+eps) X explicitly.
 *
 * All three run both as a golden reference and through the Island
 * Consumer with redundancy removal; the test suite checks the two
 * paths agree, proving the removal is lossless for every variant.
 */

#pragma once

#include "core/consumer.hpp"
#include "gcn/reference.hpp"

namespace igcn {

/** Per-variant execution options. */
struct VariantOptions
{
    Model model = Model::GCN;
    /** GIN's epsilon (ignored by the other variants). */
    float ginEpsilon = 0.1f;
};

/** Golden forward pass for a variant (explicit SpMM path). */
DenseMatrix variantForward(const CsrGraph &g, const Features &x,
                           const std::vector<DenseMatrix> &weights,
                           const VariantOptions &opt);

/**
 * Variant forward pass executed through the Island Consumer with
 * shared-neighbor redundancy removal.
 */
DenseMatrix variantForwardViaIslands(
    const CsrGraph &g, const IslandizationResult &isl,
    const Features &x, const std::vector<DenseMatrix> &weights,
    const VariantOptions &opt, const RedundancyConfig &cfg = {},
    AggOpStats *stats = nullptr);

} // namespace igcn
