#include "gcn/variants.hpp"

#include <stdexcept>

namespace igcn {

namespace {

DenseMatrix
combination(const Features &x, const DenseMatrix &w)
{
    if (x.sparse)
        return sparseTimesDense(x.csr, w);
    return gemm(x.dense, w);
}

/** Row scale by 1 / (degree + 1): GraphSage mean normalization. */
std::vector<float>
meanScaling(const CsrGraph &g)
{
    std::vector<float> s(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        s[v] = 1.0f / (static_cast<float>(g.degree(v)) + 1.0f);
    return s;
}

/** Add scale * y into z, row-wise. */
void
addScaled(DenseMatrix &z, const DenseMatrix &y, float scale)
{
    for (size_t i = 0; i < z.data().size(); ++i)
        z.data()[i] += scale * y.data()[i];
}

/**
 * One aggregation step, selected by variant, using the given binary
 * aggregation functor agg(y, include_self) -> (A [+I]) y.
 */
template <typename AggFn>
DenseMatrix
aggregateVariant(const CsrGraph &g, const VariantOptions &opt,
                 DenseMatrix xw, AggFn &&agg)
{
    switch (opt.model) {
      case Model::GCN: {
        std::vector<float> s = degreeScaling(g);
        scaleRows(xw, s);
        DenseMatrix z = agg(xw, /*include_self=*/true);
        scaleRows(z, s);
        return z;
      }
      case Model::GraphSage: {
        DenseMatrix z = agg(xw, /*include_self=*/true);
        std::vector<float> s = meanScaling(g);
        scaleRows(z, s);
        return z;
      }
      case Model::GIN: {
        DenseMatrix z = agg(xw, /*include_self=*/false);
        addScaled(z, xw, 1.0f + opt.ginEpsilon);
        return z;
      }
    }
    throw std::invalid_argument("unknown model variant");
}

} // namespace

DenseMatrix
variantForward(const CsrGraph &g, const Features &x,
               const std::vector<DenseMatrix> &weights,
               const VariantOptions &opt)
{
    if (weights.empty())
        throw std::invalid_argument("no layers");
    CsrMatrix a_self = binaryAdjacencyWithSelfLoops(g);
    CsrMatrix a_raw = CsrMatrix::fromGraph(g);

    DenseMatrix current;
    for (size_t l = 0; l < weights.size(); ++l) {
        DenseMatrix xw = (l == 0) ? combination(x, weights[l])
                                  : gemm(current, weights[l]);
        current = aggregateVariant(
            g, opt, std::move(xw),
            [&](const DenseMatrix &y, bool include_self) {
                return spmmPullRowWise(
                    include_self ? a_self : a_raw, y);
            });
        if (l + 1 < weights.size())
            reluInPlace(current);
    }
    return current;
}

DenseMatrix
variantForwardViaIslands(const CsrGraph &g,
                         const IslandizationResult &isl,
                         const Features &x,
                         const std::vector<DenseMatrix> &weights,
                         const VariantOptions &opt,
                         const RedundancyConfig &cfg,
                         AggOpStats *stats)
{
    if (weights.empty())
        throw std::invalid_argument("no layers");
    DenseMatrix current;
    for (size_t l = 0; l < weights.size(); ++l) {
        DenseMatrix xw = (l == 0) ? combination(x, weights[l])
                                  : gemm(current, weights[l]);
        current = aggregateVariant(
            g, opt, std::move(xw),
            [&](const DenseMatrix &y, bool include_self) {
                return aggregateViaIslands(g, isl, y, cfg, stats,
                                           include_self);
            });
        if (l + 1 < weights.size())
            reluInPlace(current);
    }
    return current;
}

} // namespace igcn
