#include "gcn/reference.hpp"

#include <algorithm>
#include <stdexcept>

namespace igcn {

EdgeId
Features::nnz() const
{
    if (sparse)
        return csr.nnz();
    return dense.countNonZeros();
}

size_t
Features::storageBytes() const
{
    if (sparse)
        return csr.storageBytes();
    return dense.rows() * dense.cols() * sizeof(float);
}

Features
makeFeatures(NodeId num_nodes, int num_features, double density, Rng &rng,
             bool force_sparse)
{
    Features f;
    // Dense storage of very sparse, very wide matrices (NELL) would
    // need tens of GB; switch to CSR beyond a size/density threshold.
    const double cells =
        static_cast<double>(num_nodes) * num_features;
    f.sparse = force_sparse || (cells > 64e6 && density < 0.05);
    if (!f.sparse) {
        f.dense = DenseMatrix(num_nodes, num_features);
        if (density >= 1.0)
            f.dense.fillRandom(rng, 1.0f);
        else
            f.dense.fillRandomSparse(rng, density, 1.0f);
        return f;
    }
    CsrFeatures &m = f.csr;
    m.numRows = num_nodes;
    m.numCols = static_cast<NodeId>(num_features);
    // `f` was default-constructed above, so the CSC cache behind this
    // reference has never been built. igcn-lint: allow(csc-invalidate)
    m.rowPtr.assign(num_nodes + 1, 0);
    // Fixed nnz-per-row expectation keeps generation O(nnz) instead of
    // O(cells) for the huge sparse case.
    const double per_row = density * num_features;
    for (NodeId v = 0; v < num_nodes; ++v) {
        auto count = static_cast<int>(per_row);
        if (rng.nextDouble() < per_row - count)
            count++;
        count = std::max(count, 1);
        std::vector<NodeId> cols;
        cols.reserve(count);
        for (int i = 0; i < count; ++i)
            cols.push_back(static_cast<NodeId>(
                rng.nextBounded(num_features)));
        std::sort(cols.begin(), cols.end());
        cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
        for (NodeId c : cols) {
            // Fresh matrix, see above. igcn-lint: allow(csc-invalidate)
            m.colIdx.push_back(c);
            float val = rng.nextFloat(1.0f);
            // igcn-lint: allow(csc-invalidate)
            m.values.push_back(val == 0.0f ? 0.5f : val);
        }
        m.rowPtr[v + 1] = m.colIdx.size();
    }
    return f;
}

std::vector<DenseMatrix>
makeWeights(const ModelConfig &cfg, Rng &rng)
{
    std::vector<DenseMatrix> weights;
    weights.reserve(cfg.layers.size());
    for (const LayerDims &l : cfg.layers) {
        DenseMatrix w(l.inChannels, l.outChannels);
        // Glorot-style scale keeps activations in range across layers.
        float scale = 1.0f / std::sqrt(static_cast<float>(l.inChannels));
        w.fillRandom(rng, scale);
        weights.push_back(std::move(w));
    }
    return weights;
}

namespace {

DenseMatrix
combination(const Features &x, const DenseMatrix &w)
{
    if (x.sparse)
        return sparseTimesDense(x.csr, w);
    return gemm(x.dense, w);
}

} // namespace

DenseMatrix
referenceForward(const CsrGraph &g, const Features &x,
                 const std::vector<DenseMatrix> &weights)
{
    if (weights.empty())
        throw std::invalid_argument("no layers");
    CsrMatrix a_hat = normalizedAdjacency(g);
    DenseMatrix current;
    for (size_t l = 0; l < weights.size(); ++l) {
        DenseMatrix xw = (l == 0)
            ? combination(x, weights[l])
            : gemm(current, weights[l]);
        current = spmmPullRowWise(a_hat, xw);
        if (l + 1 < weights.size())
            reluInPlace(current);
    }
    return current;
}

DenseMatrix
factoredForward(const CsrGraph &g, const Features &x,
                const std::vector<DenseMatrix> &weights)
{
    if (weights.empty())
        throw std::invalid_argument("no layers");
    CsrMatrix a_bin = binaryAdjacencyWithSelfLoops(g);
    std::vector<float> s = degreeScaling(g);
    DenseMatrix current;
    for (size_t l = 0; l < weights.size(); ++l) {
        DenseMatrix xw = (l == 0)
            ? combination(x, weights[l])
            : gemm(current, weights[l]);
        scaleRows(xw, s);
        current = spmmPullRowWise(a_bin, xw);
        scaleRows(current, s);
        if (l + 1 < weights.size())
            reluInPlace(current);
    }
    return current;
}

} // namespace igcn
