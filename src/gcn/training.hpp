/**
 * @file
 * GCN training through island-based aggregation (extension).
 *
 * The paper targets inference, but notes GraphACT accelerates
 * *training* with offline shared-neighbor pre-processing; runtime
 * islandization removes that preprocessing for training too. The key
 * observation: with A_hat = S (A + I) S symmetric, the backward pass
 * aggregates with the *same* binary structure as the forward pass —
 * dX(l) = A_hat dZ(l) W(l)^T (masked by the ReLU), so the Island
 * Consumer (and its redundancy removal) is reused verbatim for
 * gradients.
 *
 * Implemented: forward with cached activations, mean-squared-error
 * loss, full backward producing weight gradients, and an SGD step.
 * The test suite checks the analytic gradients against central
 * finite differences.
 */

#pragma once

#include "core/consumer.hpp"
#include "gcn/reference.hpp"

namespace igcn {

/** Cached per-layer state from the forward pass. */
struct ForwardCache
{
    /** Input to each layer's combination (X(l)); [0] unused when the
     *  input features are sparse (kept in the Features object). */
    std::vector<DenseMatrix> layerInputs;
    /** Pre-activation outputs S (A+I) S X W of each layer. */
    std::vector<DenseMatrix> preActivations;
    /** Final output. */
    DenseMatrix output;
};

/** Result of one backward pass. */
struct Gradients
{
    std::vector<DenseMatrix> weightGrads;
    /** Aggregation op accounting of the backward pass. */
    AggOpStats backwardAggOps;
};

/**
 * Forward pass with cached intermediates, executed through the
 * Island Consumer.
 */
ForwardCache trainingForward(const CsrGraph &g,
                             const IslandizationResult &isl,
                             const Features &x,
                             const std::vector<DenseMatrix> &weights,
                             const RedundancyConfig &cfg = {});

/** Mean-squared-error loss and its gradient w.r.t. the output. */
double mseLoss(const DenseMatrix &output, const DenseMatrix &target,
               DenseMatrix *grad_out = nullptr);

/**
 * Backward pass: given dL/d(output), produce dL/dW for every layer,
 * aggregating gradients through the islands.
 */
Gradients trainingBackward(const CsrGraph &g,
                           const IslandizationResult &isl,
                           const Features &x,
                           const std::vector<DenseMatrix> &weights,
                           const ForwardCache &cache,
                           const DenseMatrix &grad_output,
                           const RedundancyConfig &cfg = {});

/** In-place SGD update: w -= lr * grad. */
void sgdStep(std::vector<DenseMatrix> &weights,
             const Gradients &grads, float lr);

} // namespace igcn
