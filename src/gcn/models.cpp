#include "gcn/models.hpp"

#include <stdexcept>

namespace igcn {

std::string
modelName(Model m, NetConfig net)
{
    std::string base;
    switch (m) {
      case Model::GCN: base = "GCN"; break;
      case Model::GraphSage: base = "GS"; break;
      case Model::GIN: base = "GIN"; break;
    }
    return base + (net == NetConfig::Algo ? "-algo" : "-Hy");
}

ModelConfig
modelConfig(Model m, NetConfig net, const DatasetInfo &info)
{
    ModelConfig cfg;
    cfg.model = m;
    cfg.net = net;
    cfg.name = modelName(m, net);

    const int f = info.numFeatures;
    const int c = info.numClasses;

    int hidden = 16;
    if (net == NetConfig::Hy) {
        hidden = 128;
    } else {
        switch (m) {
          case Model::GCN:
            // Kipf & Welling: 16 hidden for the citation graphs,
            // 64 for NELL; 128 is the standard Reddit configuration.
            if (info.name == "Nell")
                hidden = 64;
            else if (info.name == "Reddit")
                hidden = 128;
            else
                hidden = 16;
            break;
          case Model::GraphSage:
            hidden = 128;
            break;
          case Model::GIN:
            hidden = 64;
            break;
        }
    }

    if (m == Model::GIN) {
        // GIN uses three GraphCONV layers in the paper's evaluation.
        cfg.layers = {{f, hidden}, {hidden, hidden}, {hidden, c}};
    } else {
        cfg.layers = {{f, hidden}, {hidden, c}};
    }
    return cfg;
}

} // namespace igcn
