#include "gcn/training.hpp"

#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace igcn {

namespace {

/** C = A^T * B for dense A (rows x k), B (rows x n). */
DenseMatrix
gemmTransposeA(const DenseMatrix &a, const DenseMatrix &b)
{
    if (a.rows() != b.rows())
        throw std::invalid_argument("shape mismatch in gemmTransposeA");
    DenseMatrix c(a.cols(), b.cols());
    KernelRegion region("gemm_at_b");
    // Workers own disjoint column ranges of A, i.e. disjoint row
    // ranges of C; every output row accumulates over r in ascending
    // order, matching the sequential result bit-for-bit.
    globalPool().parallelFor(0, a.cols(),
                             [&](int, size_t i0, size_t i1) {
        for (size_t r = 0; r < a.rows(); ++r) {
            const float *arow = a.row(r);
            const float *brow = b.row(r);
            for (size_t i = i0; i < i1; ++i) {
                const float av = arow[i];
                if (av == 0.0f)
                    continue;
                float *crow = c.row(i);
                for (size_t j = 0; j < b.cols(); ++j)
                    crow[j] += av * brow[j];
            }
        }
    }, /*min_per_worker=*/4);
    return c;
}

/** C = A * B^T for dense A (m x n), B (k x n). */
DenseMatrix
gemmTransposeB(const DenseMatrix &a, const DenseMatrix &b)
{
    if (a.cols() != b.cols())
        throw std::invalid_argument("shape mismatch in gemmTransposeB");
    DenseMatrix c(a.rows(), b.rows());
    KernelRegion region("gemm_a_bt");
    globalPool().parallelFor(0, a.rows(),
                             [&](int, size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
            const float *arow = a.row(i);
            for (size_t j = 0; j < b.rows(); ++j) {
                const float *brow = b.row(j);
                float acc = 0.0f;
                for (size_t k = 0; k < a.cols(); ++k)
                    acc += arow[k] * brow[k];
                c.at(i, j) = acc;
            }
        }
    }, /*min_per_worker=*/8);
    return c;
}

/** Elementwise mask: grad *= (pre > 0). */
void
reluBackwardInPlace(DenseMatrix &grad, const DenseMatrix &pre)
{
    auto &gd = grad.data();
    const auto &pd = pre.data();
    KernelRegion region("relu_backward");
    globalPool().parallelFor(0, gd.size(),
                             [&](int, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            if (pd[i] <= 0.0f)
                gd[i] = 0.0f;
    }, /*min_per_worker=*/65536);
}

} // namespace

ForwardCache
trainingForward(const CsrGraph &g, const IslandizationResult &isl,
                const Features &x,
                const std::vector<DenseMatrix> &weights,
                const RedundancyConfig &cfg)
{
    if (weights.empty())
        throw std::invalid_argument("no layers");
    std::vector<float> s = degreeScaling(g);

    ForwardCache cache;
    DenseMatrix current;
    for (size_t l = 0; l < weights.size(); ++l) {
        cache.layerInputs.push_back(l == 0 ? DenseMatrix{} : current);
        DenseMatrix u = (l == 0)
            ? (x.sparse ? sparseTimesDense(x.csr, weights[l])
                        : gemm(x.dense, weights[l]))
            : gemm(current, weights[l]);
        scaleRows(u, s);
        DenseMatrix z = aggregateViaIslands(g, isl, u, cfg);
        scaleRows(z, s);
        cache.preActivations.push_back(z);
        current = std::move(z);
        if (l + 1 < weights.size())
            reluInPlace(current);
    }
    cache.output = current;
    return cache;
}

double
mseLoss(const DenseMatrix &output, const DenseMatrix &target,
        DenseMatrix *grad_out)
{
    if (output.rows() != target.rows() ||
        output.cols() != target.cols())
        throw std::invalid_argument("shape mismatch in mseLoss");
    const double n = static_cast<double>(output.data().size());
    double loss = 0.0;
    if (grad_out)
        *grad_out = DenseMatrix(output.rows(), output.cols());
    for (size_t i = 0; i < output.data().size(); ++i) {
        // Serial loss accumulation: a fixed summation order, so the
        // widening is itself deterministic and the extra precision is
        // wanted here. igcn-lint: allow(no-mixed-accumulation)
        const double diff = static_cast<double>(output.data()[i]) -
            target.data()[i];
        loss += diff * diff;
        if (grad_out)
            grad_out->data()[i] =
                static_cast<float>(2.0 * diff / n);
    }
    return loss / n;
}

Gradients
trainingBackward(const CsrGraph &g, const IslandizationResult &isl,
                 const Features &x,
                 const std::vector<DenseMatrix> &weights,
                 const ForwardCache &cache,
                 const DenseMatrix &grad_output,
                 const RedundancyConfig &cfg)
{
    const size_t num_layers = weights.size();
    std::vector<float> s = degreeScaling(g);

    Gradients grads;
    grads.weightGrads.resize(num_layers);

    // G = dL/d(preActivation of layer l), walked backwards.
    DenseMatrix grad = grad_output;
    for (size_t l = num_layers; l-- > 0;) {
        if (l + 1 < num_layers)
            reluBackwardInPlace(grad, cache.preActivations[l]);

        // Backward through S (A+I) S, reusing the island consumer:
        // A_hat is symmetric, so the same binary aggregation applies.
        scaleRows(grad, s);
        DenseMatrix du = aggregateViaIslands(g, isl, grad, cfg,
                                             &grads.backwardAggOps);
        scaleRows(du, s);

        // dW = X(l)^T dU. Sparse features gather through the CSC
        // adjunct cached on x.csr: built on the first backward pass,
        // reused by every subsequent layer and epoch.
        if (l == 0) {
            grads.weightGrads[l] = x.sparse
                ? sparseTransposeTimesDense(x.csr, du)
                : gemmTransposeA(x.dense, du);
        } else {
            grads.weightGrads[l] =
                gemmTransposeA(cache.layerInputs[l], du);
        }

        // dX(l) = dU W(l)^T, the upstream gradient.
        if (l > 0)
            grad = gemmTransposeB(du, weights[l]);
    }
    return grads;
}

void
sgdStep(std::vector<DenseMatrix> &weights, const Gradients &grads,
        float lr)
{
    if (weights.size() != grads.weightGrads.size())
        throw std::invalid_argument("weight/grad count mismatch");
    for (size_t l = 0; l < weights.size(); ++l) {
        auto &w = weights[l].data();
        const auto &gw = grads.weightGrads[l].data();
        if (w.size() != gw.size())
            throw std::invalid_argument("weight/grad shape mismatch");
        for (size_t i = 0; i < w.size(); ++i)
            w[i] -= lr * gw[i];
    }
}

} // namespace igcn
