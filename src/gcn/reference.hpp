/**
 * @file
 * Reference (golden) GCN forward pass on the CPU.
 *
 * Two mathematically identical paths are provided: the textbook
 * weighted path (explicit A_hat) and the factored path (row scaling +
 * binary aggregation) that I-GCN's hardware uses. The test suite
 * checks both against each other and against the Island Consumer.
 */

#pragma once

#include "gcn/layer.hpp"
#include "gcn/models.hpp"
#include "graph/rng.hpp"
#include "spmm/spmm.hpp"

namespace igcn {

/** Input features: dense or CSR (NELL's X is far too sparse for dense). */
struct Features
{
    bool sparse = false;
    DenseMatrix dense;
    CsrFeatures csr;

    size_t rows() const { return sparse ? csr.numRows : dense.rows(); }
    size_t cols() const { return sparse ? csr.numCols : dense.cols(); }
    EdgeId nnz() const;

    /** Heap bytes of the active representation. */
    size_t storageBytes() const;
};

/** Deterministic random features with a given density. */
Features makeFeatures(NodeId num_nodes, int num_features, double density,
                      Rng &rng, bool force_sparse = false);

/** Deterministic random weight matrices for every layer of a model. */
std::vector<DenseMatrix> makeWeights(const ModelConfig &cfg, Rng &rng);

/**
 * Golden forward pass: X(l+1) = relu(A_hat X(l) W(l)), no activation
 * after the last layer. Combination-first order (A (X W)).
 */
DenseMatrix referenceForward(const CsrGraph &g, const Features &x,
                             const std::vector<DenseMatrix> &weights);

/**
 * Factored forward pass used by the accelerator: per layer,
 * Y = S (X W); Z = (A + I) Y with binary accumulation; out = S Z.
 */
DenseMatrix factoredForward(const CsrGraph &g, const Features &x,
                            const std::vector<DenseMatrix> &weights);

} // namespace igcn
