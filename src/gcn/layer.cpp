#include "gcn/layer.hpp"

#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace igcn {

std::vector<float>
degreeScaling(const CsrGraph &g)
{
    std::vector<float> s(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        s[v] = 1.0f / std::sqrt(static_cast<float>(g.degree(v)) + 1.0f);
    return s;
}

void
scaleRows(DenseMatrix &m, const std::vector<float> &s)
{
    KernelRegion region("scale_rows");
    globalPool().parallelFor(0, m.rows(),
                             [&](int, size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
            float *row = m.row(r);
            for (size_t c = 0; c < m.cols(); ++c)
                row[c] *= s[r];
        }
    }, /*min_per_worker=*/256);
}

CsrMatrix
normalizedAdjacency(const CsrGraph &g)
{
    return normalizedAdjacencyScaled(g, degreeScaling(g));
}

CsrMatrix
normalizedAdjacencyScaled(const CsrGraph &g, const std::vector<float> &s)
{
    CsrMatrix m;
    refreshNormalizedAdjacency(m, g, s);
    return m;
}

void
refreshNormalizedAdjacency(CsrMatrix &m, const CsrGraph &g,
                           const std::vector<float> &s)
{
    m.numRows = g.numNodes();
    m.numCols = g.numNodes();
    m.rowPtr.assign(g.numNodes() + 1, 0);
    m.colIdx.clear();
    m.values.clear();
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        bool self_inserted = false;
        for (NodeId v : g.neighbors(u)) {
            if (!self_inserted && v >= u) {
                m.colIdx.push_back(u);
                m.values.push_back(s[u] * s[u]);
                self_inserted = true;
                if (v == u)
                    continue; // graph already had the self loop
            }
            m.colIdx.push_back(v);
            m.values.push_back(s[u] * s[v]);
        }
        if (!self_inserted) {
            m.colIdx.push_back(u);
            m.values.push_back(s[u] * s[u]);
        }
        m.rowPtr[u + 1] = m.colIdx.size();
    }
    m.invalidateCsc();
}

namespace {

/**
 * Shared layer chain past the first combination: aggregate xw0 over
 * a_hat, then gemm/aggregate/ReLU through the remaining layers. Both
 * subgraphForward overloads funnel here, so the dense and sparse
 * entry points run the identical operation sequence after layer 0's
 * X W product.
 */
DenseMatrix
forwardChain(const CsrMatrix &a_hat, DenseMatrix xw0,
             const std::vector<DenseMatrix> &weights)
{
    DenseMatrix current = spmmPullRowWise(a_hat, xw0);
    for (size_t l = 1; l < weights.size(); ++l) {
        reluInPlace(current);
        DenseMatrix xw = gemm(current, weights[l]);
        current = spmmPullRowWise(a_hat, xw);
    }
    return current;
}

} // namespace

DenseMatrix
subgraphForward(const CsrGraph &sub, const std::vector<float> &scale,
                const DenseMatrix &x,
                const std::vector<DenseMatrix> &weights)
{
    if (weights.empty())
        throw std::invalid_argument("no layers");
    CsrMatrix a_hat = normalizedAdjacencyScaled(sub, scale);
    return forwardChain(a_hat, gemm(x, weights[0]), weights);
}

DenseMatrix
subgraphForward(const CsrGraph &sub, const std::vector<float> &scale,
                const CsrFeatures &x,
                const std::vector<DenseMatrix> &weights)
{
    if (weights.empty())
        throw std::invalid_argument("no layers");
    CsrMatrix a_hat = normalizedAdjacencyScaled(sub, scale);
    return forwardChain(a_hat, sparseTimesDense(x, weights[0]), weights);
}

CsrMatrix
binaryAdjacencyWithSelfLoops(const CsrGraph &g)
{
    CsrMatrix m;
    m.numRows = g.numNodes();
    m.numCols = g.numNodes();
    m.rowPtr.assign(g.numNodes() + 1, 0);
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        bool self_inserted = false;
        for (NodeId v : g.neighbors(u)) {
            if (!self_inserted && v >= u) {
                m.colIdx.push_back(u);
                self_inserted = true;
                if (v == u)
                    continue;
            }
            m.colIdx.push_back(v);
        }
        if (!self_inserted)
            m.colIdx.push_back(u);
        m.rowPtr[u + 1] = m.colIdx.size();
    }
    m.values.assign(m.colIdx.size(), 1.0f);
    return m;
}

void
reluInPlace(DenseMatrix &m)
{
    auto &data = m.data();
    KernelRegion region("relu");
    globalPool().parallelFor(0, data.size(),
                             [&](int, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            if (data[i] < 0.0f)
                data[i] = 0.0f;
    }, /*min_per_worker=*/65536);
}

} // namespace igcn
