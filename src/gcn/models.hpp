/**
 * @file
 * Model configurations used in the paper's evaluation: GCN,
 * GraphSage and GIN, each in the "algo" configuration (hidden sizes
 * from the original algorithm papers, as used by AWB-GCN/EnGN) and
 * the "Hy" configuration (128 hidden channels everywhere, as used by
 * HyGCN). As the paper notes (Section 2.1, citing GCNAX), the forward
 * propagation of all three reduces to the same A_hat X W SpMM chain,
 * so one LayerDims sequence per model suffices for both the
 * functional path and the op/traffic accounting.
 */

#pragma once

#include <string>
#include <vector>

#include "graph/datasets.hpp"

namespace igcn {

/** Supported GNN models. */
enum class Model { GCN, GraphSage, GIN };

/** Network configuration family. */
enum class NetConfig
{
    Algo, ///< hidden sizes from the original algorithm papers
    Hy    ///< 128 hidden channels (HyGCN's configuration)
};

/** Dimensions of one GraphCONV layer: in -> out channels. */
struct LayerDims
{
    int inChannels = 0;
    int outChannels = 0;
};

/** A full model: an ordered list of GraphCONV layers. */
struct ModelConfig
{
    Model model = Model::GCN;
    NetConfig net = NetConfig::Algo;
    std::string name;
    std::vector<LayerDims> layers;

    int numLayers() const { return static_cast<int>(layers.size()); }
};

/**
 * Build the layer dimensions for a model on a dataset.
 *
 * GCN-algo uses the hidden sizes of Kipf & Welling (16 for the
 * citation graphs, 64 for NELL) and 128 for Reddit; GraphSage-algo
 * uses 128; GIN uses three layers of 64. The Hy variants use 128
 * hidden channels for all datasets.
 */
ModelConfig modelConfig(Model m, NetConfig net, const DatasetInfo &info);

/** Short display name like "GCN-algo" / "GS-Hy" / "GIN". */
std::string modelName(Model m, NetConfig net);

} // namespace igcn
