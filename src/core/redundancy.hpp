/**
 * @file
 * Shared-neighbor redundancy removal (Section 3.3 of the paper).
 *
 * After islandization, the Island Consumer evaluates each island as a
 * small dense sub-graph. During combination it pre-aggregates the
 * combined feature vectors of every k consecutive local columns; during
 * aggregation it slides a 1 x k window over each row of the island's
 * local adjacency bitmap and, per window, either accumulates the
 * connected columns individually (cost = popcount) or takes the
 * pre-aggregated group sum and subtracts the disconnected columns
 * (cost = 1 + zeros), whichever is cheaper. Windows with no non-zeros
 * are skipped entirely.
 */

#pragma once

#include <cstdint>

#include "core/island.hpp"

namespace igcn {

/**
 * Local adjacency bitmap of one island task. Columns (and rows) are
 * ordered [island nodes..., hubs...]: the dense island block comes
 * first so the 1 x k scan windows over it are not diluted by the
 * sparse hub columns (each hub column typically holds one bit per
 * island row). The hub-row x hub-column block is always zero:
 * hub-hub connections are handled by inter-hub tasks.
 */
struct IslandBitmap
{
    int numHubs = 0;
    int numNodes = 0;
    /** Words per row = ceil((numHubs + numNodes) / 64). */
    int rowStride = 0;
    /** Row-major bit matrix, (numHubs+numNodes) x rowStride words. */
    std::vector<uint64_t> bits;

    int width() const { return numHubs + numNodes; }
    int height() const { return numHubs + numNodes; }

    bool
    test(int r, int c) const
    {
        return (bits[static_cast<size_t>(r) * rowStride + c / 64] >>
                (c % 64)) & 1;
    }

    void
    set(int r, int c)
    {
        bits[static_cast<size_t>(r) * rowStride + c / 64] |=
            uint64_t{1} << (c % 64);
    }

    /** Number of set bits in the whole bitmap. */
    uint64_t countBits() const;

    /** Number of set bits in row r, columns [c0, c1). */
    int countBitsInWindow(int r, int c0, int c1) const;
};

/**
 * Build the local bitmap of an island.
 *
 * @param include_self_loops set the diagonal for island nodes,
 *        modelling the +I of the normalized GCN adjacency. Hub self
 *        loops are handled with the inter-hub tasks instead.
 */
IslandBitmap buildIslandBitmap(const CsrGraph &g, const Island &island,
                               bool include_self_loops = true);

/** Configuration of the redundancy-removal op accounting. */
struct RedundancyConfig
{
    /** Pre-aggregation group width k (>= 2 enables removal). */
    int k = 4;
    /**
     * If true, evaluate k in {2, 4, 8, 16} plus "no removal" per
     * island and keep the cheapest (extension of the paper's
     * "k can be customized"; the ablation bench quantifies it).
     */
    bool adaptiveK = true;
    /**
     * If true, only count pre-aggregation work for column groups
     * actually consumed in subtract mode (idealized); the default
     * charges every group, as the pipelined hardware computes them
     * during combination regardless.
     */
    bool lazyPreagg = false;
};

/** Aggregation op accounting for one island (or totals over many). */
struct AggOpStats
{
    /** Vector accumulations without removal (= bitmap non-zeros). */
    uint64_t baselineOps = 0;
    /** Pre-aggregation vector adds. */
    uint64_t preaggOps = 0;
    /** Window adds (add mode) + subtracts and group adds (sub mode). */
    uint64_t windowOps = 0;
    /** Windows skipped because they contain no non-zeros. */
    uint64_t windowsSkipped = 0;
    /** Windows evaluated in subtract mode. */
    uint64_t windowsSubtractMode = 0;
    /** Chosen k (meaningful per island; 0 = removal disabled). */
    int chosenK = 0;

    uint64_t optimizedOps() const { return preaggOps + windowOps; }

    AggOpStats &
    operator+=(const AggOpStats &o)
    {
        baselineOps += o.baselineOps;
        preaggOps += o.preaggOps;
        windowOps += o.windowOps;
        windowsSkipped += o.windowsSkipped;
        windowsSubtractMode += o.windowsSubtractMode;
        return *this;
    }
};

/** Count aggregation ops for one island bitmap under config cfg. */
AggOpStats countIslandAggOps(const IslandBitmap &bm,
                             const RedundancyConfig &cfg);

/** Aggregate accounting over a full islandization result. */
struct PruningReport
{
    AggOpStats islandOps;
    /** Inter-hub aggregation ops (no removal applies). */
    uint64_t interHubOps = 0;
    /** Hub self-loop accumulations. */
    uint64_t hubSelfOps = 0;

    uint64_t
    baselineAggOps() const
    {
        return islandOps.baselineOps + interHubOps + hubSelfOps;
    }

    uint64_t
    optimizedAggOps() const
    {
        return islandOps.optimizedOps() + interHubOps + hubSelfOps;
    }

    /** Fraction of aggregation operations pruned (Figure 10, left). */
    double
    aggPruningRate() const
    {
        auto base = baselineAggOps();
        if (base == 0)
            return 0.0;
        return 1.0 - static_cast<double>(optimizedAggOps()) / base;
    }

    /**
     * Fraction of *all* operations pruned given the op count of the
     * combination phase (Figure 10, right).
     */
    double
    overallPruningRate(uint64_t combination_ops,
                       uint64_t agg_channels) const
    {
        double agg_base =
            static_cast<double>(baselineAggOps()) * agg_channels;
        double agg_opt =
            static_cast<double>(optimizedAggOps()) * agg_channels;
        double total = static_cast<double>(combination_ops) + agg_base;
        if (total == 0.0)
            return 0.0;
        return (agg_base - agg_opt) / total;
    }
};

/**
 * Run the op accounting over every island plus the inter-hub edge map.
 * The returned baseline always equals nnz(A) + numNodes (the +I self
 * loops), a property the tests assert.
 */
PruningReport countPruning(const CsrGraph &g,
                           const IslandizationResult &isl,
                           const RedundancyConfig &cfg,
                           bool include_self_loops = true);

} // namespace igcn
