/**
 * @file
 * Islandization-order permutation and density-grid rendering for the
 * adjacency-matrix figures (Figures 9 and 13).
 *
 * After islandization the non-zeros of the permuted adjacency matrix
 * fall entirely inside per-round hub rows/columns (the "L-shapes")
 * and the island diagonal blocks (the "anti-diagonal" in the paper's
 * bottom-left-origin rendering). The structural classifier quantifies
 * that: clusteredFraction == 1.0 for islandization, < 1.0 for the
 * lightweight reorderings of Section 4.5.
 */

#pragma once

#include <string>

#include "core/locator.hpp"

namespace igcn {

/**
 * Node order induced by islandization: rounds in ascending order;
 * within a round, that round's hubs first, then that round's islands
 * in discovery order. @return perm with perm[v] = new position.
 */
std::vector<NodeId> islandizationOrder(const IslandizationResult &isl);

/**
 * Density grid of the permuted adjacency matrix: grid_size x
 * grid_size cells; each cell holds the fraction of its positions
 * occupied by non-zeros, normalized so the densest cell is 1.0.
 */
std::vector<double> renderDensityGrid(const CsrGraph &g,
                                      const std::vector<NodeId> &perm,
                                      int grid_size);

/** ASCII rendering of a density grid (space . : * #). */
std::string asciiDensityPlot(const std::vector<double> &grid,
                             int grid_size);

/** Structural classification of non-zeros under a permutation. */
struct ClusterCoverage
{
    EdgeId total = 0;        ///< all non-zeros
    EdgeId inHubLShape = 0;  ///< row or column is a hub
    EdgeId inIslandBlock = 0;///< both endpoints in the same island
    EdgeId outliers = 0;     ///< everything else

    double
    clusteredFraction() const
    {
        if (total == 0)
            return 1.0;
        return 1.0 - static_cast<double>(outliers) / total;
    }
};

/** Classify every edge of g against an islandization result. */
ClusterCoverage classifyCoverage(const CsrGraph &g,
                                 const IslandizationResult &isl);

} // namespace igcn
