/**
 * @file
 * The Island Locator: Algorithms 1-4 of the I-GCN paper.
 *
 * Functional (architecture-independent) implementation of runtime
 * islandization. The locator proceeds in rounds; each round detects
 * hubs with the current degree threshold (Algorithm 2), turns each
 * detected hub's neighbors into BFS start tasks (Algorithm 3), and
 * runs Threshold-based Parallel BFS from those starting points
 * (Algorithm 4) with the paper's three task-break conditions:
 *
 *  (A) the BFS reaches a node already claimed by another engine in
 *      this round (global-visited collision) -> drop task, roll back;
 *  (B) the local visited count exceeds cmax -> drop task, keep marks;
 *  (C) query pointer catches up with the visit counter -> island found.
 *
 * The sequential software execution is observationally equivalent to
 * the paper's concurrent hardware: within a round hub-ness is decided
 * purely by the (fixed) threshold, so task interleaving only affects
 * *which* engine claims a region, not the set of islands, and
 * sequential task order is one valid interleaving.
 *
 * The default mode runs on the process-global thread pool: hub
 * detection and TP-BFS tasks are statically sharded across workers,
 * each shard explores speculatively against private visited marks,
 * and results are committed in global task order against a canonical
 * marks context (aborted tasks are replayed there, bounded by cmax
 * each). The commit therefore reconstructs the sequential execution
 * exactly: the partition — island membership, BFS node order, island
 * ids — AND every statistic and trace entry are identical at every
 * thread count, bit-identical to the sequential interleaving. The
 * cycle-level accelerator models consume these stats, so modeled
 * latency/energy never depends on IGCN_THREADS.
 */

#pragma once

#include "core/island.hpp"

namespace igcn {

/** Tunable parameters of the Island Locator (Algorithm 1 inputs). */
struct LocatorConfig
{
    /** Initial hub threshold TH0. 0 selects max(2, maxDegree/2). */
    NodeId initialThreshold = 0;
    /** Multiplicative threshold decay per round (Decay function). */
    double decay = 0.6;
    /** Maximum number of nodes an island may contain (cmax). */
    NodeId maxIslandSize = 64;
    /** Hub-detector parallel lanes P1 (timing model only). */
    int p1 = 64;
    /** Number of TP-BFS engines P2 (timing model only). */
    int p2 = 64;
    /** Adjacency entries an engine consumes per cycle (timing model
     *  only): lists arrive as 128-bit bursts of four 32-bit ids. */
    int bfsScanWidth = 4;
    /**
     * Execute TP-BFS with P2 concurrent engine states advancing in
     * round-robin interleaving, as the hardware does (Algorithm 1's
     * Th3 across P2 engines). The default sequential mode processes
     * one task at a time — a valid interleaving with fewer
     * mid-exploration collisions. Both modes satisfy the same
     * postconditions; the parallel mode exercises break condition A
     * (global-visited collision with an *in-flight* engine) the way
     * concurrent hardware does.
     */
    bool parallelEngines = false;
    /**
     * Record a per-task trace (round, outcome, edges scanned) into
     * IslandizationResult::taskTrace, consumed by the cycle-level
     * locator pipeline model. Off by default: traces are large on
     * Reddit-scale graphs.
     */
    bool recordTrace = false;
};

/**
 * Run islandization over an undirected graph.
 *
 * Postconditions (checked by the test suite):
 *  - every node is classified as Hub or IslandNode;
 *  - islands have between 1 and cmax member nodes;
 *  - every edge is covered exactly once: island-island edges inside
 *    one island, island-hub edges in that island's hub list, hub-hub
 *    edges in interHubEdges.
 */
IslandizationResult islandize(const CsrGraph &g,
                              const LocatorConfig &cfg = {});

} // namespace igcn
