#include "core/incremental.hpp"

#include <algorithm>
#include <set>

namespace igcn {

namespace {

/**
 * Local TP-BFS over the dirty region. Mirrors the locator's
 * sequential engine but only traverses unclassified nodes; any node
 * already classified as Hub (old or newly promoted) is a border.
 */
struct RepairState
{
    const CsrGraph &g;
    const LocatorConfig &cfg;
    IslandizationResult &out;
    std::vector<uint32_t> visitedRound;
    std::vector<uint64_t> visitedTask;
    uint64_t taskCounter = 0;
    uint64_t edgesScanned = 0;

    RepairState(const CsrGraph &graph, const LocatorConfig &c,
                IslandizationResult &result)
        : g(graph), cfg(c), out(result),
          visitedRound(graph.numNodes(), 0),
          visitedTask(graph.numNodes(), 0)
    {}

    bool
    isBorder(NodeId n, NodeId th) const
    {
        return out.role[n] == NodeRole::Hub || g.degree(n) >= th;
    }

    /** @return true if an island was recorded. */
    bool
    bfs(NodeId hub0, NodeId a0, NodeId th, uint32_t round)
    {
        const uint64_t task_id = ++taskCounter;
        std::vector<NodeId> v_local{a0};
        std::vector<NodeId> h_local{hub0};
        visitedTask[a0] = task_id;
        visitedRound[a0] = round;
        size_t query = 0, count = 1;
        while (query != count) {
            NodeId node = v_local[query];
            for (NodeId n : g.neighbors(node)) {
                edgesScanned++;
                if (isBorder(n, th)) {
                    h_local.push_back(n);
                } else if (visitedTask[n] == task_id) {
                    // locally explored
                } else if (visitedRound[n] == round ||
                           out.role[n] == NodeRole::IslandNode) {
                    // Region touches a claimed region or a live
                    // island: cannot be a clean island this round.
                    return false;
                } else {
                    count++;
                    v_local.push_back(n);
                    visitedTask[n] = task_id;
                    visitedRound[n] = round;
                    if (count > cfg.maxIslandSize)
                        return false;
                }
            }
            query++;
        }
        std::sort(h_local.begin(), h_local.end());
        h_local.erase(std::unique(h_local.begin(), h_local.end()),
                      h_local.end());
        Island island;
        island.nodes = std::move(v_local);
        island.hubs = std::move(h_local);
        island.round = static_cast<int>(round);
        const auto id = static_cast<uint32_t>(out.islands.size());
        for (NodeId v : island.nodes) {
            out.role[v] = NodeRole::IslandNode;
            out.islandOf[v] = id;
        }
        out.islands.push_back(std::move(island));
        return true;
    }
};

} // namespace

std::vector<uint32_t>
dirtyIslandEndpointSweep(const CsrGraph &g,
                         const IslandizationResult &result,
                         std::span<const Edge> added,
                         std::span<const Edge> removed)
{
    std::set<uint32_t> dirty;
    auto sweep_endpoint = [&](NodeId x) {
        if (result.role[x] == NodeRole::IslandNode) {
            dirty.insert(result.islandOf[x]);
        } else if (result.role[x] == NodeRole::Hub) {
            for (NodeId n : g.neighbors(x))
                if (result.role[n] == NodeRole::IslandNode)
                    dirty.insert(result.islandOf[n]);
        }
    };
    for (const auto &[u, v] : added) {
        sweep_endpoint(u);
        sweep_endpoint(v);
    }
    for (const auto &[u, v] : removed) {
        sweep_endpoint(u);
        sweep_endpoint(v);
    }
    return {dirty.begin(), dirty.end()};
}

IslandizationResult
updateIslandization(const CsrGraph &g,
                    const IslandizationResult &old_result,
                    std::span<const Edge> added,
                    std::span<const Edge> removed,
                    const LocatorConfig &cfg, IncrementalStats *stats,
                    IslandProvenance *provenance)
{
    IslandizationResult out = old_result;
    IncrementalStats local_stats;

    std::set<uint32_t> dissolve;
    std::set<Edge> inter_hub(out.interHubEdges.begin(),
                             out.interHubEdges.end());

    // --- 1a. Classify each removed edge (dissolve-on-remove). ------
    // In a valid old islandization every removed edge was covered as
    // intra-island, island-hub, or hub-hub; the rules below undo
    // exactly that coverage. Endpoints can also be Unclassified when
    // an earlier removal in this span already scheduled their island:
    // they are dirty either way and need no further work.
    std::set<NodeId> demotion_check;
    for (const auto &[u, v] : removed) {
        for (NodeId x : {u, v}) {
            if (out.role[x] == NodeRole::Hub)
                demotion_check.insert(x);
            else if (out.role[x] == NodeRole::IslandNode)
                dissolve.insert(out.islandOf[x]);
        }
        if (out.role[u] == NodeRole::Hub &&
            out.role[v] == NodeRole::Hub) {
            // A failed erase means a duplicate within the span
            // (callers pass deduplicated spans; withRemovedEdges
            // collapses duplicates the same way): not an absorbed
            // edge, so it counts nowhere.
            if (inter_hub.erase({std::min(u, v), std::max(u, v)}))
                local_stats.edgesRemovedInterHub++;
        }
    }

    // --- 1b. Demote hubs starved by the removals. ------------------
    // A hub that kept >= kDemotionFloor edges still works as a
    // border, whatever a fresh run would decide; below the floor it
    // cannot connect anything and must be re-classified. Demotion
    // dissolves every island listing the hub (all islands adjacent
    // to it — coverage says an adjacent island lists it) and erases
    // its surviving inter-hub entries; the edges resurface through
    // the repair BFS's border collection, or the new-hub promotion
    // pass if the node re-qualifies at a lower threshold.
    constexpr NodeId kDemotionFloor = 2;
    std::vector<NodeId> demoted;
    for (NodeId h : demotion_check) {
        if (out.role[h] != NodeRole::Hub ||
            g.degree(h) >= kDemotionFloor)
            continue;
        out.role[h] = NodeRole::Unclassified;
        out.hubRound[h] = 0;
        demoted.push_back(h);
        local_stats.hubsDemoted++;
        for (NodeId n : g.neighbors(h)) {
            inter_hub.erase({std::min(h, n), std::max(h, n)});
            if (out.role[n] == NodeRole::IslandNode)
                dissolve.insert(out.islandOf[n]);
        }
    }

    // --- 1c. Classify each added edge. -----------------------------
    auto island_has_hub = [&](uint32_t island_id, NodeId hub) {
        const auto &hubs = out.islands[island_id].hubs;
        return std::binary_search(hubs.begin(), hubs.end(), hub);
    };
    for (const auto &[u, v] : added) {
        if (out.role[u] == NodeRole::Unclassified ||
            out.role[v] == NodeRole::Unclassified) {
            // A dirty endpoint (scheduled by a removal above) rides
            // the repair; a live-island partner must dissolve so the
            // dirty set stays closed under adjacency.
            for (NodeId x : {u, v})
                if (out.role[x] == NodeRole::IslandNode)
                    dissolve.insert(out.islandOf[x]);
            continue;
        }
        const bool u_hub = out.role[u] == NodeRole::Hub;
        const bool v_hub = out.role[v] == NodeRole::Hub;
        if (u_hub && v_hub) {
            Edge e{std::min(u, v), std::max(u, v)};
            if (inter_hub.insert(e).second)
                local_stats.edgesInterHub++;
            else
                local_stats.edgesAbsorbed++;
        } else if (!u_hub && !v_hub) {
            if (out.islandOf[u] == out.islandOf[v]) {
                // Internal island edge: bitmap densifies, coverage
                // intact (bitmaps are built on demand from g).
                local_stats.edgesAbsorbed++;
            } else {
                dissolve.insert(out.islandOf[u]);
                dissolve.insert(out.islandOf[v]);
            }
        } else {
            const NodeId island_node = u_hub ? v : u;
            const NodeId hub = u_hub ? u : v;
            if (island_has_hub(out.islandOf[island_node], hub))
                local_stats.edgesAbsorbed++;
            else
                dissolve.insert(out.islandOf[island_node]);
        }
    }
    out.interHubEdges.assign(inter_hub.begin(), inter_hub.end());

    // --- 2. Dissolve invalidated islands. --------------------------
    std::vector<NodeId> dirty = demoted;
    for (uint32_t id : dissolve) {
        for (NodeId v : out.islands[id].nodes) {
            out.role[v] = NodeRole::Unclassified;
            out.islandOf[v] = IslandizationResult::kNoIsland;
            dirty.push_back(v);
        }
        out.islands[id].nodes.clear();
        out.islands[id].hubs.clear();
        local_stats.islandsDissolved++;
    }

    // --- 3. Local re-islandization over the dirty set. -------------
    if (!dirty.empty()) {
        RepairState st(g, cfg, out);
        NodeId th = cfg.initialThreshold;
        if (th == 0)
            th = std::max<NodeId>(2, g.maxDegree() / 2);
        uint32_t round = 0;
        std::vector<NodeId> remaining = dirty;
        bool last_round = false;
        while (!remaining.empty() && !last_round) {
            round++;
            if (th <= 1)
                last_round = true;

            // Promote dirty nodes that now qualify as hubs; record
            // their hub-hub edges (their other edges surface through
            // the BFS below or the hub lists of repaired islands).
            std::vector<NodeId> new_hubs;
            for (NodeId v : remaining) {
                if (out.role[v] == NodeRole::Unclassified &&
                    g.degree(v) >= th) {
                    out.role[v] = NodeRole::Hub;
                    out.hubRound[v] = static_cast<uint16_t>(round);
                    new_hubs.push_back(v);
                }
            }
            for (NodeId h : new_hubs)
                for (NodeId n : g.neighbors(h))
                    if (out.role[n] == NodeRole::Hub)
                        inter_hub.insert(
                            {std::min(h, n), std::max(h, n)});

            // Task generation: hubs bordering the dirty region are
            // the old islands' hub lists plus the new hubs; rather
            // than track them, BFS directly from each dirty node that
            // has a hub neighbor (equivalent start set).
            for (NodeId a0 : remaining) {
                if (out.role[a0] != NodeRole::Unclassified)
                    continue;
                if (st.visitedRound[a0] == round)
                    continue;
                NodeId hub0 = a0; // sentinel; replaced below
                bool has_hub_neighbor = false;
                for (NodeId n : g.neighbors(a0)) {
                    if (st.isBorder(n, th)) {
                        hub0 = n;
                        has_hub_neighbor = true;
                        break;
                    }
                }
                if (!has_hub_neighbor && g.degree(a0) > 0)
                    continue; // interior node; a task will reach it
                if (g.degree(a0) == 0) {
                    // Isolated: singleton island (cleanup case).
                    Island island;
                    island.nodes = {a0};
                    island.round = static_cast<int>(round);
                    out.role[a0] = NodeRole::IslandNode;
                    out.islandOf[a0] =
                        static_cast<uint32_t>(out.islands.size());
                    out.islands.push_back(std::move(island));
                    continue;
                }
                st.bfs(hub0, a0, th, round);
            }

            auto next = static_cast<NodeId>(th * cfg.decay);
            th = (next >= th) ? th - 1 : next;
            if (th < 1)
                th = 1;
            std::erase_if(remaining, [&](NodeId v) {
                return out.role[v] != NodeRole::Unclassified;
            });
        }
        local_stats.nodesReclassified = dirty.size();
        local_stats.edgesScanned = st.edgesScanned;
        out.interHubEdges.assign(inter_hub.begin(), inter_hub.end());
    }

    // --- 4. Compact away dissolved (now empty) islands. ------------
    // Slot order is lineage: a slot below the old island count holds
    // the old result's island of that id, preserved verbatim (the
    // passes above only *clear* invalidated slots and *append*
    // repaired islands); slots at or past it are repair-built. The
    // compaction walk is therefore also the provenance map.
    const size_t old_count = old_result.islands.size();
    if (provenance)
        provenance->parentOf.clear();
    std::vector<Island> compacted;
    compacted.reserve(out.islands.size());
    for (size_t idx = 0; idx < out.islands.size(); ++idx) {
        Island &island = out.islands[idx];
        if (island.nodes.empty())
            continue;
        const auto new_id = static_cast<uint32_t>(compacted.size());
        for (NodeId v : island.nodes)
            out.islandOf[v] = new_id;
        if (provenance)
            provenance->parentOf.push_back(
                idx < old_count ? static_cast<uint32_t>(idx)
                                : IslandProvenance::kNone);
        compacted.push_back(std::move(island));
    }
    out.islands = std::move(compacted);
    out.stats.islandsFound = out.islands.size();

    if (stats)
        *stats = local_stats;
    return out;
}

IslandizationResult
updateIslandization(const CsrGraph &g,
                    const IslandizationResult &old_result,
                    std::span<const Edge> added,
                    const LocatorConfig &cfg, IncrementalStats *stats)
{
    return updateIslandization(g, old_result, added,
                               std::span<const Edge>{}, cfg, stats);
}

} // namespace igcn
