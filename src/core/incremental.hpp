/**
 * @file
 * Incremental islandization for evolving graphs (extension).
 *
 * The paper motivates runtime restructuring with evolving and
 * inductive graphs (Section 1). Full re-islandization is already
 * microsecond-scale, but most edge updates touch a tiny part of the
 * structure: an added edge *inside* one island or between two hubs
 * leaves every invariant intact, and only cross-island /
 * island-to-new-hub edges force work. This module dissolves exactly
 * the invalidated islands and re-runs threshold-decayed TP-BFS over
 * the dirty region only, preserving the full coverage invariant
 * (tests verify the result is indistinguishable from a fresh run's
 * postconditions).
 *
 * Edge *deletions* use the dual, dissolve-on-remove rule:
 *  - intra-island removal dissolves the island (it may have been
 *    internally disconnected, so membership must be re-derived);
 *  - island-hub removal dissolves the island (its hub list entry may
 *    now be stale);
 *  - hub-hub removal erases the inter-hub map entry;
 *  - a hub whose degree drops below the demotion floor (2) is
 *    demoted to the dirty set and every island listing it is
 *    dissolved, so no hub list ever names a non-hub.
 * The dirty set stays *closed* — every neighbor of a dirty node is a
 * hub or itself dirty — which is the invariant that lets the local
 * TP-BFS repair treat hubs as the only borders. The repair itself is
 * shared between additions and removals, and the whole update path
 * is sequential and deterministic: the result (partition, island BFS
 * order, stats) is bit-identical at every IGCN_THREADS setting and
 * across reruns, the contract tests/test_fuzz_incremental.cpp locks
 * in differentially against from-scratch islandize.
 */

#pragma once

#include <span>

#include "core/locator.hpp"

namespace igcn {

/** Statistics of one incremental update. */
struct IncrementalStats
{
    /** Edges whose coverage was already valid (no work). */
    uint64_t edgesAbsorbed = 0;
    /** Newly recorded inter-hub edges. */
    uint64_t edgesInterHub = 0;
    /** Islands dissolved by the update. */
    uint64_t islandsDissolved = 0;
    /** Hubs demoted because removals dropped their degree below the
     *  demotion floor. */
    uint64_t hubsDemoted = 0;
    /** Removed inter-hub edges erased from the inter-hub map. */
    uint64_t edgesRemovedInterHub = 0;
    /** Nodes re-classified by the local re-islandization. */
    uint64_t nodesReclassified = 0;
    /** Adjacency entries scanned while repairing. */
    uint64_t edgesScanned = 0;

    bool operator==(const IncrementalStats &) const = default;
};

/**
 * Island provenance of one incremental update: for each island id of
 * the updated result, the old result's id of the verbatim-preserved
 * island it came from, or kNone for islands (re)built by the repair.
 *
 * "Verbatim" is structural: the island object (member BFS order, hub
 * list, round) is byte-identical to the parent's — the preservation
 * guarantee updateIslandization documents. It says nothing about the
 * island's *aggregate* staying numerically valid: an absorbed
 * intra-island edge or a degree change of a listed hub alters the
 * normalized-adjacency values inside a structurally untouched island.
 * Consumers caching per-island numeric results must intersect this
 * map with dirtyIslandEndpointSweep() (serve::UpdateApplier does).
 */
struct IslandProvenance
{
    static constexpr uint32_t kNone = ~uint32_t{0};
    /** Indexed by new island id; size == result.islands.size(). */
    std::vector<uint32_t> parentOf;
};

/**
 * The island ids (of `result`) whose per-island aggregation results
 * are invalidated by the applied edges, beyond the islands the update
 * dissolved outright. Degree-normalized aggregation (DESIGN.md) makes
 * every endpoint x of an applied edge change its scale s[x] =
 * 1/sqrt(deg(x)+1), which changes the normalized-adjacency entry of
 * *every* row containing x:
 *  - island-node endpoint: its neighbors lie inside its own island or
 *    in that island's hub list (the coverage invariant), so only its
 *    own island's member rows change -> dirty islandOf[x];
 *  - hub endpoint: its neighbors span islands, so every island-node
 *    neighbor n in the *new* graph has a changed row -> dirty
 *    islandOf[n]. (A partner detached by a removal is handled by the
 *    dissolve-on-remove rules, not this sweep.)
 *
 * Pure function of (new_graph, result, applied edges); returns sorted
 * unique ids. serve::UpdateApplier subtracts these from the published
 * provenance; the incremental fuzz tests replay the same function as
 * the cache-invalidation oracle.
 */
std::vector<uint32_t>
dirtyIslandEndpointSweep(const CsrGraph &new_graph,
                         const IslandizationResult &result,
                         std::span<const Edge> added,
                         std::span<const Edge> removed);

/**
 * Update an islandization after edges were added to and/or removed
 * from the graph.
 *
 * @param new_graph  the graph *after* the update (must contain every
 *                   edge in added and none in removed, both
 *                   directions; added and removed must be disjoint —
 *                   net-effect coalescing is the caller's job, see
 *                   serve::UpdateApplier)
 * @param old_result islandization of the pre-update graph (removed
 *                   edges are classified against its roles)
 * @param added      the added undirected edges (u, v)
 * @param removed    the removed undirected edges (u, v)
 * @param cfg        locator parameters for the local repair
 * @param stats      optional update statistics
 * @param provenance optional island lineage (see IslandProvenance)
 * @return a valid islandization of new_graph; islands not incident
 *         to the update are preserved verbatim.
 */
IslandizationResult
updateIslandization(const CsrGraph &new_graph,
                    const IslandizationResult &old_result,
                    std::span<const Edge> added,
                    std::span<const Edge> removed,
                    const LocatorConfig &cfg = {},
                    IncrementalStats *stats = nullptr,
                    IslandProvenance *provenance = nullptr);

/** Addition-only convenience overload (the pre-deletion API). */
IslandizationResult
updateIslandization(const CsrGraph &new_graph,
                    const IslandizationResult &old_result,
                    std::span<const Edge> added,
                    const LocatorConfig &cfg = {},
                    IncrementalStats *stats = nullptr);

} // namespace igcn
