/**
 * @file
 * Incremental islandization for evolving graphs (extension).
 *
 * The paper motivates runtime restructuring with evolving and
 * inductive graphs (Section 1). Full re-islandization is already
 * microsecond-scale, but most edge updates touch a tiny part of the
 * structure: an edge *inside* one island or between two hubs leaves
 * every invariant intact, and only cross-island / island-to-new-hub
 * edges force work. This module dissolves exactly the invalidated
 * islands and re-runs threshold-decayed TP-BFS over the dirty region
 * only, preserving the full coverage invariant (tests verify the
 * result is indistinguishable from a fresh run's postconditions).
 */

#pragma once

#include <span>

#include "core/locator.hpp"

namespace igcn {

/** Statistics of one incremental update. */
struct IncrementalStats
{
    /** Edges whose coverage was already valid (no work). */
    uint64_t edgesAbsorbed = 0;
    /** Newly recorded inter-hub edges. */
    uint64_t edgesInterHub = 0;
    /** Islands dissolved by the update. */
    uint64_t islandsDissolved = 0;
    /** Nodes re-classified by the local re-islandization. */
    uint64_t nodesReclassified = 0;
    /** Adjacency entries scanned while repairing. */
    uint64_t edgesScanned = 0;
};

/**
 * Update an islandization after edges were added to the graph.
 *
 * @param new_graph  the graph *after* the update (must contain every
 *                   edge in added, both directions)
 * @param old_result islandization of the pre-update graph
 * @param added      the added undirected edges (u, v)
 * @param cfg        locator parameters for the local repair
 * @param stats      optional update statistics
 * @return a valid islandization of new_graph; islands not incident
 *         to the update are preserved verbatim.
 */
IslandizationResult
updateIslandization(const CsrGraph &new_graph,
                    const IslandizationResult &old_result,
                    std::span<const Edge> added,
                    const LocatorConfig &cfg = {},
                    IncrementalStats *stats = nullptr);

} // namespace igcn
