#include "core/consumer.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace igcn {

namespace {

/**
 * Evaluate one island task: combination results of the local columns
 * are rows of y; produce aggregation updates into z (island-node
 * rows) and hub_partial (hub rows, indexed by hub_index).
 *
 * Island-node rows belong to exactly one island, so they are written
 * straight into z without synchronization. Hub rows are the only
 * cross-island accumulations (the DHUB-PRC in hardware); each worker
 * collects them in its own hub_partial buffer and the caller merges
 * the buffers afterwards in worker-index order, which keeps the
 * reduction order deterministic for a given thread count.
 */
void
evaluateIsland(const CsrGraph &g, const Island &island,
               const DenseMatrix &y, DenseMatrix &z,
               DenseMatrix &hub_partial,
               const std::vector<uint32_t> &hub_index,
               const RedundancyConfig &cfg, AggOpStats *stats,
               bool include_self_loops)
{
    IslandBitmap bm = buildIslandBitmap(g, island,
                                        include_self_loops);
    AggOpStats plan = countIslandAggOps(bm, cfg);
    if (stats)
        *stats += plan;
    const int k = plan.chosenK;
    const size_t channels = y.cols();
    const int width = bm.width();

    // Global node id per local column: island nodes first, hubs last
    // (must mirror buildIslandBitmap's ordering).
    std::vector<NodeId> col_node(width);
    for (int i = 0; i < bm.numNodes; ++i)
        col_node[i] = island.nodes[i];
    for (int h = 0; h < bm.numHubs; ++h)
        col_node[bm.numNodes + h] = island.hubs[h];

    // Pre-aggregation: group sums of combination results, computed at
    // the tail of the combination phase (k == 0 disables removal).
    const int num_groups = k >= 2 ? (width + k - 1) / k : 0;
    DenseMatrix presum(num_groups ? num_groups : 1, channels);
    for (int grp = 0; grp < num_groups; ++grp) {
        const int c0 = grp * k;
        const int c1 = std::min(width, c0 + k);
        float *dst = presum.row(grp);
        for (int c = c0; c < c1; ++c) {
            const float *src = y.row(col_node[c]);
            for (size_t ch = 0; ch < channels; ++ch)
                dst[ch] += src[ch];
        }
    }

    // Scan every row; island-node rows produce complete outputs
    // written directly, hub rows produce partial sums accumulated
    // into this worker's hub buffer.
    for (int r = 0; r < bm.height(); ++r) {
        float *out;
        if (r < bm.numNodes) {
            out = z.row(col_node[r]);
        } else {
            const uint32_t hi = hub_index[col_node[r]];
            // A hubs-list entry whose role is not Hub would index the
            // kNotHub sentinel: fail loudly instead of corrupting.
            if (hi == ~uint32_t{0})
                throw std::logic_error(
                    "island hubs list names a non-hub node");
            out = hub_partial.row(hi);
        }
        if (k < 2) {
            for (int c = 0; c < width; ++c) {
                if (!bm.test(r, c)) continue;
                const float *src = y.row(col_node[c]);
                for (size_t ch = 0; ch < channels; ++ch)
                    out[ch] += src[ch];
            }
            continue;
        }
        for (int grp = 0; grp < num_groups; ++grp) {
            const int c0 = grp * k;
            const int c1 = std::min(width, c0 + k);
            const int k_eff = c1 - c0;
            const int zbits = bm.countBitsInWindow(r, c0, c1);
            if (zbits == 0)
                continue;
            const bool subtract =
                k_eff >= 2 && (1 + (k_eff - zbits)) < zbits;
            if (subtract) {
                const float *pre = presum.row(grp);
                for (size_t ch = 0; ch < channels; ++ch)
                    out[ch] += pre[ch];
                for (int c = c0; c < c1; ++c) {
                    if (bm.test(r, c)) continue;
                    const float *src = y.row(col_node[c]);
                    for (size_t ch = 0; ch < channels; ++ch)
                        out[ch] -= src[ch];
                }
            } else {
                for (int c = c0; c < c1; ++c) {
                    if (!bm.test(r, c)) continue;
                    const float *src = y.row(col_node[c]);
                    for (size_t ch = 0; ch < channels; ++ch)
                        out[ch] += src[ch];
                }
            }
        }
    }
}

} // namespace

DenseMatrix
aggregateViaIslands(const CsrGraph &g, const IslandizationResult &isl,
                    const DenseMatrix &y, const RedundancyConfig &cfg,
                    AggOpStats *stats, bool include_self_loops)
{
    if (y.rows() != g.numNodes())
        throw std::invalid_argument("y row count != node count");
    DenseMatrix z(y.rows(), y.cols());
    const size_t channels = y.cols();

    // Compact hub indexing: hub h occupies row hub_index[h] of every
    // per-worker partial buffer.
    constexpr uint32_t kNotHub = ~uint32_t{0};
    std::vector<uint32_t> hub_index(g.numNodes(), kNotHub);
    std::vector<NodeId> hub_ids;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        if (isl.role[v] == NodeRole::Hub) {
            hub_index[v] = static_cast<uint32_t>(hub_ids.size());
            hub_ids.push_back(v);
        }
    }

    ThreadPool &pool = globalPool();
    const size_t num_hubs = hub_ids.size();
    KernelRegion region("island_aggregate");

    // Islands are embarrassingly parallel apart from hub rows:
    // static-shard them across workers via the runtime's deterministic
    // reduction helper, with one hub partial-sum buffer (plus op
    // stats) per worker merged in worker-index order below.
    struct IslandAcc
    {
        DenseMatrix hubPartial;
        AggOpStats stats;
    };
    std::vector<IslandAcc> accs = parallelAccumulate(
        pool, 0, isl.islands.size(),
        IslandAcc{DenseMatrix(num_hubs ? num_hubs : 1, channels), {}},
        [&](IslandAcc &acc, int, size_t lo, size_t hi) {
            AggOpStats *ws = stats ? &acc.stats : nullptr;
            for (size_t i = lo; i < hi; ++i)
                evaluateIsland(g, isl.islands[i], y, z,
                               acc.hubPartial, hub_index, cfg, ws,
                               include_self_loops);
        });

    if (stats)
        for (const IslandAcc &acc : accs)
            *stats += acc.stats;

    // Deterministic hub reduction: each hub row sums its per-worker
    // partials in worker-index order. Chunks are contiguous island
    // ranges, so this replays the island order of the sequential
    // pass, merely re-associated at the worker boundaries.
    pool.parallelFor(0, num_hubs, [&](int, size_t lo, size_t hi) {
        for (size_t h = lo; h < hi; ++h) {
            float *dst = z.row(hub_ids[h]);
            for (const IslandAcc &acc : accs) {
                const float *src = acc.hubPartial.row(h);
                for (size_t ch = 0; ch < channels; ++ch)
                    dst[ch] += src[ch];
            }
        }
    }, /*min_per_worker=*/16);

    // Inter-hub tasks (push-outer-product order) plus hub self loops.
    for (const auto &[h1, h2] : isl.interHubEdges) {
        const float *y1 = y.row(h1);
        const float *y2 = y.row(h2);
        float *z1 = z.row(h1);
        float *z2 = z.row(h2);
        for (size_t ch = 0; ch < channels; ++ch) {
            z1[ch] += y2[ch];
            z2[ch] += y1[ch];
        }
    }
    if (include_self_loops) {
        for (NodeId v : hub_ids) {
            const float *src = y.row(v);
            float *dst = z.row(v);
            for (size_t ch = 0; ch < channels; ++ch)
                dst[ch] += src[ch];
        }
    }
    return z;
}

DenseMatrix
gcnForwardViaIslands(const CsrGraph &g, const IslandizationResult &isl,
                     const Features &x,
                     const std::vector<DenseMatrix> &weights,
                     const RedundancyConfig &cfg, AggOpStats *stats)
{
    if (weights.empty())
        throw std::invalid_argument("no layers");
    std::vector<float> s = degreeScaling(g);
    DenseMatrix current;
    for (size_t l = 0; l < weights.size(); ++l) {
        DenseMatrix xw;
        if (l == 0) {
            xw = x.sparse ? sparseTimesDense(x.csr, weights[l])
                          : gemm(x.dense, weights[l]);
        } else {
            xw = gemm(current, weights[l]);
        }
        scaleRows(xw, s);
        current = aggregateViaIslands(g, isl, xw, cfg, stats);
        scaleRows(current, s);
        if (l + 1 < weights.size())
            reluInPlace(current);
    }
    return current;
}

} // namespace igcn
