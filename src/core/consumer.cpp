#include "core/consumer.hpp"

#include <stdexcept>

namespace igcn {

namespace {

/**
 * Evaluate one island task: combination results of the local columns
 * are rows of y; produce aggregation updates into z.
 */
void
evaluateIsland(const CsrGraph &g, const Island &island,
               const DenseMatrix &y, DenseMatrix &z,
               const RedundancyConfig &cfg, AggOpStats *stats,
               bool include_self_loops)
{
    IslandBitmap bm = buildIslandBitmap(g, island,
                                        include_self_loops);
    AggOpStats plan = countIslandAggOps(bm, cfg);
    if (stats)
        *stats += plan;
    const int k = plan.chosenK;
    const size_t channels = y.cols();
    const int width = bm.width();

    // Global node id per local column: island nodes first, hubs last
    // (must mirror buildIslandBitmap's ordering).
    std::vector<NodeId> col_node(width);
    for (int i = 0; i < bm.numNodes; ++i)
        col_node[i] = island.nodes[i];
    for (int h = 0; h < bm.numHubs; ++h)
        col_node[bm.numNodes + h] = island.hubs[h];

    // Pre-aggregation: group sums of combination results, computed at
    // the tail of the combination phase (k == 0 disables removal).
    const int num_groups = k >= 2 ? (width + k - 1) / k : 0;
    DenseMatrix presum(num_groups ? num_groups : 1, channels);
    for (int grp = 0; grp < num_groups; ++grp) {
        const int c0 = grp * k;
        const int c1 = std::min(width, c0 + k);
        float *dst = presum.row(grp);
        for (int c = c0; c < c1; ++c) {
            const float *src = y.row(col_node[c]);
            for (size_t ch = 0; ch < channels; ++ch)
                dst[ch] += src[ch];
        }
    }

    // Scan every row; island-node rows produce complete outputs, hub
    // rows produce partial sums accumulated into z (the DHUB-PRC in
    // hardware; a plain accumulation here since each bitmap bit is
    // visited exactly once across all tasks).
    for (int r = 0; r < bm.height(); ++r) {
        float *out = z.row(col_node[r]);
        if (k < 2) {
            for (int c = 0; c < width; ++c) {
                if (!bm.test(r, c)) continue;
                const float *src = y.row(col_node[c]);
                for (size_t ch = 0; ch < channels; ++ch)
                    out[ch] += src[ch];
            }
            continue;
        }
        for (int grp = 0; grp < num_groups; ++grp) {
            const int c0 = grp * k;
            const int c1 = std::min(width, c0 + k);
            const int k_eff = c1 - c0;
            const int zbits = bm.countBitsInWindow(r, c0, c1);
            if (zbits == 0)
                continue;
            const bool subtract =
                k_eff >= 2 && (1 + (k_eff - zbits)) < zbits;
            if (subtract) {
                const float *pre = presum.row(grp);
                for (size_t ch = 0; ch < channels; ++ch)
                    out[ch] += pre[ch];
                for (int c = c0; c < c1; ++c) {
                    if (bm.test(r, c)) continue;
                    const float *src = y.row(col_node[c]);
                    for (size_t ch = 0; ch < channels; ++ch)
                        out[ch] -= src[ch];
                }
            } else {
                for (int c = c0; c < c1; ++c) {
                    if (!bm.test(r, c)) continue;
                    const float *src = y.row(col_node[c]);
                    for (size_t ch = 0; ch < channels; ++ch)
                        out[ch] += src[ch];
                }
            }
        }
    }
}

} // namespace

DenseMatrix
aggregateViaIslands(const CsrGraph &g, const IslandizationResult &isl,
                    const DenseMatrix &y, const RedundancyConfig &cfg,
                    AggOpStats *stats, bool include_self_loops)
{
    if (y.rows() != g.numNodes())
        throw std::invalid_argument("y row count != node count");
    DenseMatrix z(y.rows(), y.cols());

    for (const Island &island : isl.islands)
        evaluateIsland(g, island, y, z, cfg, stats,
                       include_self_loops);

    // Inter-hub tasks (push-outer-product order) plus hub self loops.
    const size_t channels = y.cols();
    for (const auto &[h1, h2] : isl.interHubEdges) {
        const float *y1 = y.row(h1);
        const float *y2 = y.row(h2);
        float *z1 = z.row(h1);
        float *z2 = z.row(h2);
        for (size_t ch = 0; ch < channels; ++ch) {
            z1[ch] += y2[ch];
            z2[ch] += y1[ch];
        }
    }
    if (include_self_loops) {
        for (NodeId v = 0; v < g.numNodes(); ++v) {
            if (isl.role[v] != NodeRole::Hub)
                continue;
            const float *src = y.row(v);
            float *dst = z.row(v);
            for (size_t ch = 0; ch < channels; ++ch)
                dst[ch] += src[ch];
        }
    }
    return z;
}

DenseMatrix
gcnForwardViaIslands(const CsrGraph &g, const IslandizationResult &isl,
                     const Features &x,
                     const std::vector<DenseMatrix> &weights,
                     const RedundancyConfig &cfg, AggOpStats *stats)
{
    if (weights.empty())
        throw std::invalid_argument("no layers");
    std::vector<float> s = degreeScaling(g);
    DenseMatrix current;
    for (size_t l = 0; l < weights.size(); ++l) {
        DenseMatrix xw;
        if (l == 0) {
            xw = x.sparse ? csrTimesDense(x.csr, weights[l])
                          : gemm(x.dense, weights[l]);
        } else {
            xw = gemm(current, weights[l]);
        }
        scaleRows(xw, s);
        current = aggregateViaIslands(g, isl, xw, cfg, stats);
        scaleRows(current, s);
        if (l + 1 < weights.size())
            reluInPlace(current);
    }
    return current;
}

} // namespace igcn
