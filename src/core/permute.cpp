#include "core/permute.hpp"

#include <algorithm>
#include <cassert>

namespace igcn {

std::vector<NodeId>
islandizationOrder(const IslandizationResult &isl)
{
    const NodeId n = static_cast<NodeId>(isl.role.size());
    std::vector<NodeId> order;
    order.reserve(n);

    // Hubs grouped by detection round.
    std::vector<std::vector<NodeId>> hubs_by_round(isl.numRounds + 1);
    for (NodeId v = 0; v < n; ++v)
        if (isl.role[v] == NodeRole::Hub)
            hubs_by_round[isl.hubRound[v]].push_back(v);

    // Islands grouped by discovery round, discovery order preserved.
    std::vector<std::vector<const Island *>> islands_by_round(
        isl.numRounds + 1);
    for (const Island &island : isl.islands)
        islands_by_round[island.round].push_back(&island);

    for (int r = 1; r <= isl.numRounds; ++r) {
        for (NodeId h : hubs_by_round[r])
            order.push_back(h);
        for (const Island *island : islands_by_round[r])
            for (NodeId v : island->nodes)
                order.push_back(v);
    }
    assert(order.size() == n);

    std::vector<NodeId> perm(n);
    for (NodeId pos = 0; pos < n; ++pos)
        perm[order[pos]] = pos;
    return perm;
}

std::vector<double>
renderDensityGrid(const CsrGraph &g, const std::vector<NodeId> &perm,
                  int grid_size)
{
    std::vector<double> grid(static_cast<size_t>(grid_size) * grid_size,
                             0.0);
    const double scale = static_cast<double>(grid_size) / g.numNodes();
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        int gr = std::min(grid_size - 1,
                          static_cast<int>(perm[u] * scale));
        for (NodeId v : g.neighbors(u)) {
            int gc = std::min(grid_size - 1,
                              static_cast<int>(perm[v] * scale));
            grid[static_cast<size_t>(gr) * grid_size + gc] += 1.0;
        }
    }
    double max_v = 0.0;
    for (double v : grid)
        max_v = std::max(max_v, v);
    if (max_v > 0.0)
        for (double &v : grid)
            v /= max_v;
    return grid;
}

std::string
asciiDensityPlot(const std::vector<double> &grid, int grid_size)
{
    static const char shades[] = {' ', '.', ':', '*', '#'};
    std::string out;
    out.reserve(static_cast<size_t>(grid_size) * (grid_size + 1));
    for (int r = 0; r < grid_size; ++r) {
        for (int c = 0; c < grid_size; ++c) {
            // Serial plotting code, not a kernel reduction.
            // igcn-lint: allow(no-mixed-accumulation)
            double v = grid[static_cast<size_t>(r) * grid_size + c];
            int level = v <= 0.0 ? 0
                      : v < 0.02 ? 1
                      : v < 0.10 ? 2
                      : v < 0.40 ? 3 : 4;
            out.push_back(shades[level]);
        }
        out.push_back('\n');
    }
    return out;
}

ClusterCoverage
classifyCoverage(const CsrGraph &g, const IslandizationResult &isl)
{
    ClusterCoverage cov;
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        const bool u_hub = isl.role[u] == NodeRole::Hub;
        for (NodeId v : g.neighbors(u)) {
            cov.total++;
            const bool v_hub = isl.role[v] == NodeRole::Hub;
            if (u_hub || v_hub) {
                cov.inHubLShape++;
            } else if (isl.islandOf[u] == isl.islandOf[v]) {
                cov.inIslandBlock++;
            } else {
                cov.outliers++;
            }
        }
    }
    return cov;
}

} // namespace igcn
