#include "core/redundancy.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_map>

namespace igcn {

uint64_t
IslandBitmap::countBits() const
{
    uint64_t total = 0;
    for (uint64_t w : bits)
        total += std::popcount(w);
    return total;
}

int
IslandBitmap::countBitsInWindow(int r, int c0, int c1) const
{
    // Bit-parallel popcount over the word(s) the window spans.
    const uint64_t *row = bits.data() + static_cast<size_t>(r) * rowStride;
    int total = 0;
    int c = c0;
    while (c < c1) {
        const int word = c / 64;
        const int lo = c % 64;
        const int take = std::min(c1 - c, 64 - lo);
        uint64_t mask = (take == 64) ? ~uint64_t{0}
                                     : (((uint64_t{1} << take) - 1) << lo);
        total += std::popcount(row[word] & mask);
        c += take;
    }
    return total;
}

namespace {

/**
 * Reusable scratch for global->local id translation: avoids an
 * unordered_map allocation per island (the pruning accounting visits
 * hundreds of thousands of islands on Reddit-scale graphs).
 */
struct LocalIdScratch
{
    std::vector<int> local;

    void
    ensure(size_t n)
    {
        if (local.size() < n)
            local.assign(n, -1);
    }
};

thread_local LocalIdScratch tls_scratch;

} // namespace

IslandBitmap
buildIslandBitmap(const CsrGraph &g, const Island &island,
                  bool include_self_loops)
{
    IslandBitmap bm;
    bm.numHubs = static_cast<int>(island.hubs.size());
    bm.numNodes = static_cast<int>(island.nodes.size());
    bm.rowStride = (bm.width() + 63) / 64;
    bm.bits.assign(static_cast<size_t>(bm.height()) * bm.rowStride, 0);

    // Local column ids: island nodes in BFS order first, hubs last
    // (see IslandBitmap doc for why).
    auto &scratch = tls_scratch;
    scratch.ensure(g.numNodes());
    std::vector<int> &local = scratch.local;
    for (int i = 0; i < bm.numNodes; ++i)
        local[island.nodes[i]] = i;
    for (int h = 0; h < bm.numHubs; ++h)
        local[island.hubs[h]] = bm.numNodes + h;

    // Island-node rows: all neighbors are inside the task by the
    // coverage invariant.
    for (int i = 0; i < bm.numNodes; ++i) {
        for (NodeId nb : g.neighbors(island.nodes[i])) {
            const int col = local[nb];
            if (col < 0) {
                // Roll back scratch before reporting the violation.
                for (NodeId v : island.nodes) local[v] = -1;
                for (NodeId h : island.hubs) local[h] = -1;
                throw std::logic_error(
                    "island coverage invariant violated: neighbor "
                    "outside island+hubs");
            }
            bm.set(i, col);
        }
        if (include_self_loops)
            bm.set(i, i);
    }
    // Hub rows: connections into the island only (hub-hub edges are
    // inter-hub tasks; see IslandBitmap doc). Hubs can have very long
    // adjacency lists shared across many islands, so walk the island
    // columns instead and probe each hub's sorted list.
    for (int h = 0; h < bm.numHubs; ++h) {
        const int row = bm.numNodes + h;
        const NodeId hub = island.hubs[h];
        if (g.degree(hub) <=
            static_cast<NodeId>(bm.numNodes) * 8) {
            for (NodeId nb : g.neighbors(hub)) {
                const int col = local[nb];
                if (col >= 0 && col < bm.numNodes)
                    bm.set(row, col);
            }
        } else {
            for (int i = 0; i < bm.numNodes; ++i)
                if (g.hasEdge(hub, island.nodes[i]))
                    bm.set(row, i);
        }
    }

    // Clear scratch for the next island.
    for (NodeId v : island.nodes)
        local[v] = -1;
    for (NodeId h : island.hubs)
        local[h] = -1;
    return bm;
}

namespace {

/** Count ops for one bitmap at a fixed k (k >= 2). */
AggOpStats
countAtK(const IslandBitmap &bm, int k, bool lazy_preagg)
{
    AggOpStats s;
    s.chosenK = k;
    const int width = bm.width();
    const int num_groups = (width + k - 1) / k;
    std::vector<bool> group_used(num_groups, false);

    for (int r = 0; r < bm.height(); ++r) {
        for (int grp = 0; grp < num_groups; ++grp) {
            const int c0 = grp * k;
            const int c1 = std::min(width, c0 + k);
            const int k_eff = c1 - c0;
            const int z = bm.countBitsInWindow(r, c0, c1);
            s.baselineOps += z;
            if (z == 0) {
                s.windowsSkipped++;
                continue;
            }
            // Add mode: one accumulation per set bit. Subtract mode:
            // one add of the group pre-sum plus one subtraction per
            // clear bit. The hardware picks the cheaper (Sec. 3.3.1).
            const uint64_t add_cost = z;
            const uint64_t sub_cost = 1 + (k_eff - z);
            if (k_eff >= 2 && sub_cost < add_cost) {
                s.windowOps += sub_cost;
                s.windowsSubtractMode++;
                group_used[grp] = true;
            } else {
                s.windowOps += add_cost;
            }
        }
    }

    for (int grp = 0; grp < num_groups; ++grp) {
        const int c0 = grp * k;
        const int k_eff = std::min(width, c0 + k) - c0;
        if (k_eff < 2)
            continue;
        if (lazy_preagg && !group_used[grp])
            continue;
        s.preaggOps += k_eff - 1;
    }
    return s;
}

/** Baseline-only accounting (redundancy removal disabled). */
AggOpStats
countNoRemoval(const IslandBitmap &bm)
{
    AggOpStats s;
    s.chosenK = 0;
    s.baselineOps = bm.countBits();
    s.windowOps = s.baselineOps;
    return s;
}

} // namespace

AggOpStats
countIslandAggOps(const IslandBitmap &bm, const RedundancyConfig &cfg)
{
    if (!cfg.adaptiveK) {
        if (cfg.k < 2)
            return countNoRemoval(bm);
        return countAtK(bm, cfg.k, cfg.lazyPreagg);
    }
    AggOpStats best = countNoRemoval(bm);
    for (int k : {2, 4, 8, 16}) {
        if (k > bm.width() && k != 2)
            continue;
        AggOpStats candidate = countAtK(bm, k, cfg.lazyPreagg);
        if (candidate.optimizedOps() < best.optimizedOps())
            best = candidate;
    }
    return best;
}

PruningReport
countPruning(const CsrGraph &g, const IslandizationResult &isl,
             const RedundancyConfig &cfg, bool include_self_loops)
{
    PruningReport report;
    for (const Island &island : isl.islands) {
        IslandBitmap bm = buildIslandBitmap(g, island,
                                            include_self_loops);
        report.islandOps += countIslandAggOps(bm, cfg);
    }
    // Each undirected inter-hub edge contributes two accumulations
    // (each endpoint consumes the other); each hub one self loop.
    report.interHubOps = 2 * isl.interHubEdges.size();
    report.hubSelfOps = include_self_loops ? isl.numHubs() : 0;
    return report;
}

} // namespace igcn
