#include "core/locator.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <stdexcept>
#include <utility>

namespace igcn {

namespace {

/** Mutable state of one islandization run. */
struct LocatorState
{
    const CsrGraph &g;
    const LocatorConfig &cfg;
    IslandizationResult out;

    /** Round id in which a node was globally visited (0 = never). */
    std::vector<uint32_t> visitedGlobalRound;
    /** Task id that locally visited a node (0 = never). */
    std::vector<uint64_t> visitedLocalTask;
    uint64_t taskCounter = 0;

    explicit LocatorState(const CsrGraph &graph, const LocatorConfig &c)
        : g(graph), cfg(c)
    {
        const NodeId n = g.numNodes();
        out.role.assign(n, NodeRole::Unclassified);
        out.islandOf.assign(n, IslandizationResult::kNoIsland);
        out.hubRound.assign(n, 0);
        visitedGlobalRound.assign(n, 0);
        visitedLocalTask.assign(n, 0);
    }
};

/**
 * TP-BFS from start node a0 (Algorithm 4). Returns true if an island
 * was found and recorded.
 */
bool
tpBfs(LocatorState &st, NodeId hub0, NodeId a0, NodeId th, uint32_t round)
{
    auto &out = st.out;
    const uint64_t task_id = ++st.taskCounter;

    std::vector<NodeId> v_local;
    std::vector<NodeId> h_local;
    // An island holds at most maxIslandSize nodes (+1 for the push
    // that triggers break condition B); reserving once removes the
    // realloc-and-copy churn of growth inside the scan loop.
    v_local.reserve(static_cast<size_t>(st.cfg.maxIslandSize) + 1);
    h_local.reserve(8);
    v_local.push_back(a0);
    h_local.push_back(hub0);
    st.visitedLocalTask[a0] = task_id;
    st.visitedGlobalRound[a0] = round;

    size_t query = 0;
    size_t count = 1;
    EdgeId edges_scanned = 0;
    bool aborted = false;
    bool oversize = false;

    while (query != count && !aborted) {
        NodeId node = v_local[query];
        out.stats.adjListFetches++;
        for (NodeId n : st.g.neighbors(node)) {
            edges_scanned++;
            if (st.g.degree(n) >= th) {
                // Hub (this round's threshold, or an earlier round's
                // higher one): border node, never traversed through.
                h_local.push_back(n);
            } else if (st.visitedLocalTask[n] == task_id) {
                // Already explored by this engine: skip.
            } else if (st.visitedGlobalRound[n] == round) {
                // Claimed by another engine this round (break cond.
                // A): drop the task. Algorithm 4 removes v_local from
                // v_global so an *in-flight* engine can still claim
                // the nodes; in this sequential interleaving the
                // colliding region is always finished, so the marks
                // are kept (as in break condition B) and sibling
                // tasks drop at start instead of rescanning the
                // region. The parallel-engine mode implements the
                // paper's rollback verbatim.
                out.stats.tasksDroppedCollision++;
                aborted = true;
                break;
            } else {
                count++;
                v_local.push_back(n);
                st.visitedLocalTask[n] = task_id;
                st.visitedGlobalRound[n] = round;
                if (count > st.cfg.maxIslandSize) {
                    // Break condition B: too large to be an island at
                    // this threshold. Global marks are kept so sibling
                    // tasks don't rescan the region this round; the
                    // nodes stay unclassified and are retried next
                    // round at a lower threshold.
                    out.stats.tasksDroppedOversize++;
                    aborted = true;
                    oversize = true;
                    break;
                }
            }
        }
        query++;
    }

    out.stats.edgesScanned += edges_scanned;
    if (st.cfg.recordTrace) {
        TaskTrace t;
        t.round = static_cast<uint16_t>(round);
        t.edgesScanned = static_cast<uint32_t>(edges_scanned);
        t.hubDegree = st.g.degree(hub0);
        t.outcome = !aborted ? TaskOutcome::IslandFound
                  : oversize ? TaskOutcome::DroppedOversize
                             : TaskOutcome::DroppedCollision;
        out.taskTrace.push_back(t);
    }
    if (aborted) {
        out.stats.edgesScannedWasted += edges_scanned;
        return false;
    }

    // Break condition C: query caught up with count -> island found.
    std::sort(h_local.begin(), h_local.end());
    h_local.erase(std::unique(h_local.begin(), h_local.end()),
                  h_local.end());

    Island island;
    island.nodes = std::move(v_local);
    island.hubs = std::move(h_local);
    island.round = static_cast<int>(round);
    island.edgesScanned = edges_scanned;

    const auto island_id = static_cast<uint32_t>(out.islands.size());
    for (NodeId v : island.nodes) {
        out.role[v] = NodeRole::IslandNode;
        out.islandOf[v] = island_id;
    }
    out.islands.push_back(std::move(island));
    out.stats.islandsFound++;
    return true;
}

/** In-flight state of one TP-BFS engine (parallel mode). */
struct BfsEngine
{
    bool busy = false;
    NodeId hub0 = 0;
    std::vector<NodeId> vLocal;
    std::vector<NodeId> hLocal;
    size_t query = 0;
    size_t count = 0;
    uint64_t taskId = 0;
    EdgeId edgesScanned = 0;
};

/** Record the island an engine completed (break condition C). */
void
finishIsland(LocatorState &st, BfsEngine &e, uint32_t round)
{
    auto &out = st.out;
    std::sort(e.hLocal.begin(), e.hLocal.end());
    e.hLocal.erase(std::unique(e.hLocal.begin(), e.hLocal.end()),
                   e.hLocal.end());
    Island island;
    island.nodes = std::move(e.vLocal);
    island.hubs = std::move(e.hLocal);
    island.round = static_cast<int>(round);
    island.edgesScanned = e.edgesScanned;
    const auto island_id = static_cast<uint32_t>(out.islands.size());
    for (NodeId v : island.nodes) {
        out.role[v] = NodeRole::IslandNode;
        out.islandOf[v] = island_id;
    }
    out.islands.push_back(std::move(island));
    out.stats.islandsFound++;
    out.stats.edgesScanned += e.edgesScanned;
    e.busy = false;
}

/**
 * Advance one engine by one node expansion (the adjacency list of
 * the node under the query pointer). Mirrors tpBfs()'s per-neighbor
 * logic; step granularity is what makes engine interleaving visible.
 */
void
stepEngine(LocatorState &st, BfsEngine &e, NodeId th, uint32_t round)
{
    auto &out = st.out;
    if (e.query == e.count) {
        finishIsland(st, e, round);
        return;
    }
    NodeId node = e.vLocal[e.query];
    out.stats.adjListFetches++;
    for (NodeId n : st.g.neighbors(node)) {
        e.edgesScanned++;
        if (st.g.degree(n) >= th) {
            e.hLocal.push_back(n);
        } else if (st.visitedLocalTask[n] == e.taskId) {
            // already explored by this engine
        } else if (st.visitedGlobalRound[n] == round) {
            // Break condition A: claimed by a concurrent engine.
            for (NodeId v : e.vLocal)
                st.visitedGlobalRound[v] = 0;
            out.stats.tasksDroppedCollision++;
            out.stats.edgesScanned += e.edgesScanned;
            out.stats.edgesScannedWasted += e.edgesScanned;
            e.busy = false;
            return;
        } else {
            e.count++;
            e.vLocal.push_back(n);
            st.visitedLocalTask[n] = e.taskId;
            st.visitedGlobalRound[n] = round;
            if (e.count > st.cfg.maxIslandSize) {
                // Break condition B: oversize; keep global marks.
                out.stats.tasksDroppedOversize++;
                out.stats.edgesScanned += e.edgesScanned;
                out.stats.edgesScannedWasted += e.edgesScanned;
                e.busy = false;
                return;
            }
        }
    }
    e.query++;
    if (e.query == e.count)
        finishIsland(st, e, round);
}

/**
 * Run the round's task queue on P2 concurrent engines, round-robin:
 * each iteration every engine either starts a task or expands one
 * node. This is the hardware's actual execution model; the set of
 * islands found can differ from the sequential interleaving (both
 * satisfy the coverage postconditions).
 */
void
runParallelTpBfs(LocatorState &st,
                 std::deque<std::pair<NodeId, NodeId>> &tasks,
                 NodeId th, uint32_t round,
                 std::vector<std::pair<NodeId, NodeId>> &inter_hub)
{
    auto &out = st.out;
    std::vector<BfsEngine> engines(
        std::max(1, st.cfg.p2));
    bool any_busy = true;
    while (any_busy || !tasks.empty()) {
        any_busy = false;
        for (BfsEngine &e : engines) {
            if (!e.busy) {
                // Pop tasks until one is viable (checks happen at pop
                // time, as in the hardware's task queues).
                while (!tasks.empty()) {
                    auto [hub, a0] = tasks.front();
                    tasks.pop_front();
                    out.stats.tasksGenerated++;
                    if (st.g.degree(a0) >= th) {
                        out.stats.tasksInterHub++;
                        inter_hub.emplace_back(std::min(hub, a0),
                                               std::max(hub, a0));
                        continue;
                    }
                    if (out.role[a0] == NodeRole::IslandNode ||
                        st.visitedGlobalRound[a0] == round) {
                        out.stats.tasksDroppedStartVisited++;
                        continue;
                    }
                    e.busy = true;
                    e.hub0 = hub;
                    e.vLocal.clear();
                    e.hLocal.clear();
                    e.vLocal.reserve(
                        static_cast<size_t>(st.cfg.maxIslandSize) + 1);
                    e.hLocal.reserve(8);
                    e.vLocal.push_back(a0);
                    e.hLocal.push_back(hub);
                    e.query = 0;
                    e.count = 1;
                    e.edgesScanned = 0;
                    e.taskId = ++st.taskCounter;
                    st.visitedLocalTask[a0] = e.taskId;
                    st.visitedGlobalRound[a0] = round;
                    break;
                }
            }
            if (e.busy) {
                stepEngine(st, e, th, round);
                any_busy = any_busy || e.busy;
            }
        }
    }
}

} // namespace

IslandizationResult
islandize(const CsrGraph &g, const LocatorConfig &cfg)
{
    if (cfg.maxIslandSize < 1)
        throw std::invalid_argument("maxIslandSize must be >= 1");
    if (cfg.decay <= 0.0 || cfg.decay >= 1.0)
        throw std::invalid_argument("decay must be in (0, 1)");

    LocatorState st(g, cfg);
    auto &out = st.out;
    const NodeId n = g.numNodes();

    NodeId th = cfg.initialThreshold;
    if (th == 0)
        th = std::max<NodeId>(2, g.maxDegree() / 2);

    // Node Degree Buffer contents: nodes not yet classified. Rebuilt
    // (compacted) each round, mirroring the loop-back FIFOs.
    std::vector<NodeId> node_list(n);
    for (NodeId v = 0; v < n; ++v)
        node_list[v] = v;

    std::vector<std::pair<NodeId, NodeId>> inter_hub_raw;
    uint32_t round = 0;
    bool last_round_done = false;

    while (!node_list.empty() && !last_round_done) {
        round++;
        if (th <= 1)
            last_round_done = true;
        out.thresholds.push_back(th);
        RoundInfo round_info;
        round_info.threshold = th;
        round_info.nodesChecked = node_list.size();
        const uint64_t edges_before = out.stats.edgesScanned;
        const uint64_t islands_before = out.stats.islandsFound;

        // --- Th1: detect_hub (Algorithm 2) -------------------------
        std::vector<NodeId> hub_buffer;
        std::vector<NodeId> remaining;
        remaining.reserve(node_list.size());
        out.stats.hubDetectChecks += node_list.size();
        for (NodeId v : node_list) {
            if (out.role[v] != NodeRole::Unclassified)
                continue; // popped: classified in a previous round
            if (g.degree(v) >= th) {
                out.role[v] = NodeRole::Hub;
                out.hubRound[v] = static_cast<uint16_t>(round);
                hub_buffer.push_back(v);
            } else {
                remaining.push_back(v);
            }
        }
        node_list = std::move(remaining);

        // --- Th2 + Th3: task_assign (Alg. 3) + TP-BFS (Alg. 4) ----
        if (cfg.parallelEngines) {
            // P2 concurrent engines, round-robin interleaved.
            std::deque<std::pair<NodeId, NodeId>> tasks;
            for (NodeId hub : hub_buffer) {
                out.stats.adjListFetches++;
                for (NodeId a0 : g.neighbors(hub))
                    tasks.emplace_back(hub, a0);
            }
            runParallelTpBfs(st, tasks, th, round, inter_hub_raw);
        } else {
            // Tasks processed as they are generated; this sequential
            // order is one valid interleaving of the parallel engines.
            for (NodeId hub : hub_buffer) {
                out.stats.adjListFetches++;
                for (NodeId a0 : g.neighbors(hub)) {
                    out.stats.tasksGenerated++;
                    if (g.degree(a0) >= th) {
                        // a0 is itself a hub: record the inter-hub
                        // connection.
                        out.stats.tasksInterHub++;
                        inter_hub_raw.emplace_back(std::min(hub, a0),
                                                   std::max(hub, a0));
                        if (cfg.recordTrace)
                            out.taskTrace.push_back(
                                {static_cast<uint16_t>(round),
                                 TaskOutcome::InterHub, 0,
                                 g.degree(hub)});
                        continue;
                    }
                    if (out.role[a0] == NodeRole::IslandNode ||
                        st.visitedGlobalRound[a0] == round) {
                        out.stats.tasksDroppedStartVisited++;
                        if (cfg.recordTrace)
                            out.taskTrace.push_back(
                                {static_cast<uint16_t>(round),
                                 TaskOutcome::DroppedStartVisited, 0,
                                 g.degree(hub)});
                        continue;
                    }
                    tpBfs(st, hub, a0, th, round);
                }
            }
        }

        // --- End-of-round threshold decay (Algorithm 1 line 10) ----
        auto next = static_cast<NodeId>(th * cfg.decay);
        th = (next >= th) ? th - 1 : next;
        if (th < 1)
            th = 1;

        // Compact away classified nodes so the emptiness check below
        // reflects the true N.
        std::erase_if(node_list, [&](NodeId v) {
            return out.role[v] != NodeRole::Unclassified;
        });

        round_info.hubsDetected = hub_buffer.size();
        round_info.edgesScanned = out.stats.edgesScanned - edges_before;
        round_info.islandsFound =
            out.stats.islandsFound - islands_before;
        out.rounds.push_back(round_info);
    }

    // Degree-0 nodes are never anyone's neighbor and never reach the
    // hub threshold: close them out as singleton islands.
    if (!node_list.empty()) {
        round++;
        out.thresholds.push_back(0);
        RoundInfo cleanup;
        cleanup.threshold = 0;
        cleanup.nodesChecked = node_list.size();
        cleanup.islandsFound = node_list.size();
        out.rounds.push_back(cleanup);
        for (NodeId v : node_list) {
            assert(g.degree(v) == 0);
            Island island;
            island.nodes = {v};
            island.round = static_cast<int>(round);
            out.role[v] = NodeRole::IslandNode;
            out.islandOf[v] = static_cast<uint32_t>(out.islands.size());
            out.islands.push_back(std::move(island));
            out.stats.islandsFound++;
        }
    }

    std::sort(inter_hub_raw.begin(), inter_hub_raw.end());
    inter_hub_raw.erase(
        std::unique(inter_hub_raw.begin(), inter_hub_raw.end()),
        inter_hub_raw.end());
    out.interHubEdges.assign(inter_hub_raw.begin(), inter_hub_raw.end());
    out.numRounds = static_cast<int>(round);
    return out;
}

} // namespace igcn
