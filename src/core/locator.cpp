#include "core/locator.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <stdexcept>
#include <utility>

#include "runtime/thread_pool.hpp"

namespace igcn {

namespace {

/** Mutable state of one islandization run. */
struct LocatorState
{
    const CsrGraph &g;
    const LocatorConfig &cfg;
    IslandizationResult out;

    /** Round id in which a node was globally visited (0 = never). */
    std::vector<uint32_t> visitedGlobalRound;
    /** Task id that locally visited a node (0 = never). */
    std::vector<uint64_t> visitedLocalTask;
    uint64_t taskCounter = 0;

    explicit LocatorState(const CsrGraph &graph, const LocatorConfig &c)
        : g(graph), cfg(c)
    {
        const NodeId n = g.numNodes();
        out.role.assign(n, NodeRole::Unclassified);
        out.islandOf.assign(n, IslandizationResult::kNoIsland);
        out.hubRound.assign(n, 0);
        visitedGlobalRound.assign(n, 0);
        visitedLocalTask.assign(n, 0);
    }
};

/**
 * Per-shard speculative execution state (worker-sharded mode). Each
 * shard runs its slice of the round's task list with private visited
 * marks, so workers never synchronize mid-BFS; conflicting claims are
 * resolved when results are committed in global task order.
 */
struct ShardCtx
{
    /** Round id in which this shard visited a node (0 = never). */
    std::vector<uint32_t> visitedRound;
    /** Shard-local task id that visited a node (0 = never). */
    std::vector<uint64_t> visitedTask;
    uint64_t taskCounter = 0;
};

/** Outcome of one speculatively executed TP-BFS task. */
struct TaskResult
{
    TaskOutcome outcome = TaskOutcome::IslandFound;
    /** Adjacency lists fetched while exploring. */
    uint32_t adjFetches = 0;
    /** Neighbor entries scanned while exploring. */
    EdgeId edgesScanned = 0;
    /** Candidate island members in BFS order (IslandFound only). */
    std::vector<NodeId> nodes;
    /** Candidate border hubs, sorted unique (IslandFound only). */
    std::vector<NodeId> hubs;
};

/**
 * TP-BFS from start node a0 (Algorithm 4), speculative against the
 * shard's private marks. A completed task's candidate island is the
 * full connected component of sub-threshold unclassified nodes around
 * a0: BFS only stops at hubs (degree >= th), so the candidate's node
 * set, hub set and scan count do not depend on which shard explored
 * it — that is what makes the commit-in-task-order merge reproduce
 * the sequential partition at any thread count.
 */
TaskResult
runTask(const CsrGraph &g, const LocatorConfig &cfg,
        const std::vector<NodeRole> &role, ShardCtx &ctx,
        NodeId hub0, NodeId a0, NodeId th, uint32_t round)
{
    TaskResult res;
    if (g.degree(a0) >= th) {
        // a0 is itself a hub: an inter-hub connection, not a task.
        res.outcome = TaskOutcome::InterHub;
        return res;
    }
    if (role[a0] == NodeRole::IslandNode ||
        ctx.visitedRound[a0] == round) {
        res.outcome = TaskOutcome::DroppedStartVisited;
        return res;
    }

    const uint64_t task_id = ++ctx.taskCounter;
    // An island holds at most maxIslandSize nodes (+1 for the push
    // that triggers break condition B); reserving once removes the
    // realloc-and-copy churn of growth inside the scan loop.
    res.nodes.reserve(static_cast<size_t>(cfg.maxIslandSize) + 1);
    res.hubs.reserve(8);
    res.nodes.push_back(a0);
    res.hubs.push_back(hub0);
    ctx.visitedTask[a0] = task_id;
    ctx.visitedRound[a0] = round;

    size_t query = 0;
    size_t count = 1;
    while (query != count) {
        NodeId node = res.nodes[query];
        res.adjFetches++;
        for (NodeId n : g.neighbors(node)) {
            res.edgesScanned++;
            if (g.degree(n) >= th) {
                // Hub (this round's threshold, or an earlier round's
                // higher one): border node, never traversed through.
                res.hubs.push_back(n);
            } else if (ctx.visitedTask[n] == task_id) {
                // Already explored by this task: skip.
            } else if (ctx.visitedRound[n] == round) {
                // Claimed by an earlier task of this shard (break
                // cond. A): drop. The claiming region is finished, so
                // the marks are kept (as in break condition B) and
                // sibling tasks drop at start instead of rescanning.
                // The parallel-engine mode implements the paper's
                // in-flight rollback verbatim.
                res.outcome = TaskOutcome::DroppedCollision;
                return res;
            } else {
                count++;
                res.nodes.push_back(n);
                ctx.visitedTask[n] = task_id;
                ctx.visitedRound[n] = round;
                if (count > cfg.maxIslandSize) {
                    // Break condition B: too large to be an island at
                    // this threshold. Marks are kept so sibling tasks
                    // don't rescan the region this round; the nodes
                    // stay unclassified and are retried next round at
                    // a lower threshold.
                    res.outcome = TaskOutcome::DroppedOversize;
                    return res;
                }
            }
        }
        query++;
    }

    // Break condition C: query caught up with count -> island found.
    std::sort(res.hubs.begin(), res.hubs.end());
    res.hubs.erase(std::unique(res.hubs.begin(), res.hubs.end()),
                   res.hubs.end());
    res.outcome = TaskOutcome::IslandFound;
    return res;
}

/**
 * Commit one task's speculative result, in global task order,
 * reconstructing the exact sequential execution — partition AND
 * statistics — from the shard results:
 *
 *  - Island ids are assigned in commit order, identical to the
 *    sequential assignment: the earliest task into a component is the
 *    winner under every sharding (no earlier task can have claimed
 *    it), its shard recording is mark-free over the component, and
 *    later shards' duplicate candidates of the same component carry
 *    the identical node set, so a start-node claim check suffices.
 *  - A duplicate candidate that lost the commit race is charged as
 *    the sequential interleaving would have run it: by its turn the
 *    winner had claimed the whole component, so it drops at start
 *    with zero scans.
 *  - A shard-dropped task (start-visited, collision, oversize) is
 *    REPLAYED against the canonical marks `canon`, which track the
 *    sequential global-visited state (committed islands plus earlier
 *    replayed aborts). Its shard-local scan count reflects the
 *    shard's mark subset, not the sequential one; the replay —
 *    bounded by cmax, the same work the sequential pass spends on
 *    that task — recovers the exact sequential outcome, scan count
 *    and marks. Replays never find islands (a completed closure would
 *    contradict the winner having committed first, or the component
 *    being oversize), but the IslandFound arm below handles every
 *    outcome anyway, so commit semantics equal the sequential
 *    algorithm by construction.
 *
 * With one shard the recordings already are the sequential execution
 * and the caller skips the replay (`canon_needed = false`).
 */
void
commitTask(LocatorState &st, ShardCtx &canon, bool canon_needed,
           TaskResult &t, NodeId hub, NodeId a0, NodeId th,
           uint32_t round,
           std::vector<std::pair<NodeId, NodeId>> &inter_hub)
{
    auto &out = st.out;
    out.stats.tasksGenerated++;

    TaskResult replay;
    TaskResult *res = &t;
    if (canon_needed) {
        if (t.outcome == TaskOutcome::IslandFound) {
            if (out.role[a0] != NodeRole::Unclassified ||
                canon.visitedRound[a0] == round) {
                replay.outcome = TaskOutcome::DroppedStartVisited;
                res = &replay;
            }
        } else if (t.outcome != TaskOutcome::InterHub) {
            replay = runTask(st.g, st.cfg, out.role, canon, hub, a0,
                             th, round);
            res = &replay;
        }
    }

    switch (res->outcome) {
    case TaskOutcome::InterHub:
        out.stats.tasksInterHub++;
        inter_hub.emplace_back(std::min(hub, a0), std::max(hub, a0));
        break;
    case TaskOutcome::DroppedStartVisited:
        out.stats.tasksDroppedStartVisited++;
        break;
    case TaskOutcome::DroppedCollision:
    case TaskOutcome::DroppedOversize:
        if (res->outcome == TaskOutcome::DroppedCollision)
            out.stats.tasksDroppedCollision++;
        else
            out.stats.tasksDroppedOversize++;
        out.stats.adjListFetches += res->adjFetches;
        out.stats.edgesScanned += res->edgesScanned;
        out.stats.edgesScannedWasted += res->edgesScanned;
        break;
    case TaskOutcome::IslandFound: {
        out.stats.adjListFetches += res->adjFetches;
        out.stats.edgesScanned += res->edgesScanned;
        Island island;
        island.nodes = std::move(res->nodes);
        island.hubs = std::move(res->hubs);
        island.round = static_cast<int>(round);
        island.edgesScanned = res->edgesScanned;
        const auto id = static_cast<uint32_t>(out.islands.size());
        for (NodeId v : island.nodes) {
            out.role[v] = NodeRole::IslandNode;
            out.islandOf[v] = id;
            if (canon_needed)
                canon.visitedRound[v] = round;
        }
        out.islands.push_back(std::move(island));
        out.stats.islandsFound++;
        break;
    }
    }

    if (st.cfg.recordTrace) {
        TaskTrace trace;
        trace.round = static_cast<uint16_t>(round);
        trace.outcome = res->outcome;
        trace.edgesScanned = static_cast<uint32_t>(res->edgesScanned);
        trace.hubDegree = st.g.degree(hub);
        out.taskTrace.push_back(trace);
    }
}

/** In-flight state of one TP-BFS engine (parallel mode). */
struct BfsEngine
{
    bool busy = false;
    NodeId hub0 = 0;
    std::vector<NodeId> vLocal;
    std::vector<NodeId> hLocal;
    size_t query = 0;
    size_t count = 0;
    uint64_t taskId = 0;
    EdgeId edgesScanned = 0;
};

/** Record the island an engine completed (break condition C). */
void
finishIsland(LocatorState &st, BfsEngine &e, uint32_t round)
{
    auto &out = st.out;
    std::sort(e.hLocal.begin(), e.hLocal.end());
    e.hLocal.erase(std::unique(e.hLocal.begin(), e.hLocal.end()),
                   e.hLocal.end());
    Island island;
    island.nodes = std::move(e.vLocal);
    island.hubs = std::move(e.hLocal);
    island.round = static_cast<int>(round);
    island.edgesScanned = e.edgesScanned;
    const auto island_id = static_cast<uint32_t>(out.islands.size());
    for (NodeId v : island.nodes) {
        out.role[v] = NodeRole::IslandNode;
        out.islandOf[v] = island_id;
    }
    out.islands.push_back(std::move(island));
    out.stats.islandsFound++;
    out.stats.edgesScanned += e.edgesScanned;
    e.busy = false;
}

/**
 * Advance one engine by one node expansion (the adjacency list of
 * the node under the query pointer). Mirrors tpBfs()'s per-neighbor
 * logic; step granularity is what makes engine interleaving visible.
 */
void
stepEngine(LocatorState &st, BfsEngine &e, NodeId th, uint32_t round)
{
    auto &out = st.out;
    if (e.query == e.count) {
        finishIsland(st, e, round);
        return;
    }
    NodeId node = e.vLocal[e.query];
    out.stats.adjListFetches++;
    for (NodeId n : st.g.neighbors(node)) {
        e.edgesScanned++;
        if (st.g.degree(n) >= th) {
            e.hLocal.push_back(n);
        } else if (st.visitedLocalTask[n] == e.taskId) {
            // already explored by this engine
        } else if (st.visitedGlobalRound[n] == round) {
            // Break condition A: claimed by a concurrent engine.
            for (NodeId v : e.vLocal)
                st.visitedGlobalRound[v] = 0;
            out.stats.tasksDroppedCollision++;
            out.stats.edgesScanned += e.edgesScanned;
            out.stats.edgesScannedWasted += e.edgesScanned;
            e.busy = false;
            return;
        } else {
            e.count++;
            e.vLocal.push_back(n);
            st.visitedLocalTask[n] = e.taskId;
            st.visitedGlobalRound[n] = round;
            if (e.count > st.cfg.maxIslandSize) {
                // Break condition B: oversize; keep global marks.
                out.stats.tasksDroppedOversize++;
                out.stats.edgesScanned += e.edgesScanned;
                out.stats.edgesScannedWasted += e.edgesScanned;
                e.busy = false;
                return;
            }
        }
    }
    e.query++;
    if (e.query == e.count)
        finishIsland(st, e, round);
}

/**
 * Run the round's task queue on P2 concurrent engines, round-robin:
 * each iteration every engine either starts a task or expands one
 * node. This is the hardware's actual execution model; the set of
 * islands found can differ from the sequential interleaving (both
 * satisfy the coverage postconditions).
 */
void
runParallelTpBfs(LocatorState &st,
                 std::deque<std::pair<NodeId, NodeId>> &tasks,
                 NodeId th, uint32_t round,
                 std::vector<std::pair<NodeId, NodeId>> &inter_hub)
{
    auto &out = st.out;
    std::vector<BfsEngine> engines(
        std::max(1, st.cfg.p2));
    bool any_busy = true;
    while (any_busy || !tasks.empty()) {
        any_busy = false;
        for (BfsEngine &e : engines) {
            if (!e.busy) {
                // Pop tasks until one is viable (checks happen at pop
                // time, as in the hardware's task queues).
                while (!tasks.empty()) {
                    auto [hub, a0] = tasks.front();
                    tasks.pop_front();
                    out.stats.tasksGenerated++;
                    if (st.g.degree(a0) >= th) {
                        out.stats.tasksInterHub++;
                        inter_hub.emplace_back(std::min(hub, a0),
                                               std::max(hub, a0));
                        continue;
                    }
                    if (out.role[a0] == NodeRole::IslandNode ||
                        st.visitedGlobalRound[a0] == round) {
                        out.stats.tasksDroppedStartVisited++;
                        continue;
                    }
                    e.busy = true;
                    e.hub0 = hub;
                    e.vLocal.clear();
                    e.hLocal.clear();
                    e.vLocal.reserve(
                        static_cast<size_t>(st.cfg.maxIslandSize) + 1);
                    e.hLocal.reserve(8);
                    e.vLocal.push_back(a0);
                    e.hLocal.push_back(hub);
                    e.query = 0;
                    e.count = 1;
                    e.edgesScanned = 0;
                    e.taskId = ++st.taskCounter;
                    st.visitedLocalTask[a0] = e.taskId;
                    st.visitedGlobalRound[a0] = round;
                    break;
                }
            }
            if (e.busy) {
                stepEngine(st, e, th, round);
                any_busy = any_busy || e.busy;
            }
        }
    }
}

} // namespace

IslandizationResult
islandize(const CsrGraph &g, const LocatorConfig &cfg)
{
    if (cfg.maxIslandSize < 1)
        throw std::invalid_argument("maxIslandSize must be >= 1");
    if (cfg.decay <= 0.0 || cfg.decay >= 1.0)
        throw std::invalid_argument("decay must be in (0, 1)");

    LocatorState st(g, cfg);
    auto &out = st.out;
    const NodeId n = g.numNodes();

    NodeId th = cfg.initialThreshold;
    if (th == 0)
        th = std::max<NodeId>(2, g.maxDegree() / 2);

    // Node Degree Buffer contents: nodes not yet classified. Rebuilt
    // (compacted) each round, mirroring the loop-back FIFOs.
    std::vector<NodeId> node_list(n);
    for (NodeId v = 0; v < n; ++v)
        node_list[v] = v;

    std::vector<std::pair<NodeId, NodeId>> inter_hub_raw;
    uint32_t round = 0;
    bool last_round_done = false;

    // Shard contexts persist across rounds (round-tagged marks make
    // stale entries invisible); one per worker, allocated lazily.
    // `canon` tracks the canonical (sequential-interleaving) visited
    // state during multi-shard commits.
    ThreadPool &pool = globalPool();
    std::vector<ShardCtx> shard_ctxs;
    ShardCtx canon;
    constexpr size_t kMinTasksPerShard = 4;

    while (!node_list.empty() && !last_round_done) {
        round++;
        if (th <= 1)
            last_round_done = true;
        out.thresholds.push_back(th);
        RoundInfo round_info;
        round_info.threshold = th;
        round_info.nodesChecked = node_list.size();
        const uint64_t edges_before = out.stats.edgesScanned;
        const uint64_t islands_before = out.stats.islandsFound;

        // --- Th1: detect_hub (Algorithm 2) -------------------------
        // Hub-ness is a pure function of degree and threshold, so the
        // sweep shards across workers; per-worker hub/remaining lists
        // concatenated in worker order replay the sequential scan
        // order (chunks are contiguous).
        out.stats.hubDetectChecks += node_list.size();
        struct HubDetectAcc
        {
            std::vector<NodeId> hubs;
            std::vector<NodeId> remaining;
        };
        KernelRegion hub_detect_region("hub_detect");
        std::vector<HubDetectAcc> dets = parallelAccumulate(
            pool, 0, node_list.size(), HubDetectAcc{},
            [&](HubDetectAcc &acc, int, size_t lo, size_t hi) {
                for (size_t i = lo; i < hi; ++i) {
                    const NodeId v = node_list[i];
                    if (out.role[v] != NodeRole::Unclassified)
                        continue; // classified in a previous round
                    if (g.degree(v) >= th) {
                        out.role[v] = NodeRole::Hub;
                        out.hubRound[v] =
                            static_cast<uint16_t>(round);
                        acc.hubs.push_back(v);
                    } else {
                        acc.remaining.push_back(v);
                    }
                }
            }, /*min_per_worker=*/256);
        std::vector<NodeId> hub_buffer;
        std::vector<NodeId> remaining;
        remaining.reserve(node_list.size());
        for (HubDetectAcc &acc : dets) {
            hub_buffer.insert(hub_buffer.end(), acc.hubs.begin(),
                              acc.hubs.end());
            remaining.insert(remaining.end(), acc.remaining.begin(),
                             acc.remaining.end());
        }
        node_list = std::move(remaining);

        // --- Th2 + Th3: task_assign (Alg. 3) + TP-BFS (Alg. 4) ----
        // Innermost label wins, so this re-labels the rest of the
        // round away from hub_detect_region above.
        KernelRegion tpbfs_region("tpbfs_explore");
        if (cfg.parallelEngines) {
            // P2 concurrent engines, round-robin interleaved.
            std::deque<std::pair<NodeId, NodeId>> tasks;
            for (NodeId hub : hub_buffer) {
                out.stats.adjListFetches++;
                for (NodeId a0 : g.neighbors(hub))
                    tasks.emplace_back(hub, a0);
            }
            runParallelTpBfs(st, tasks, th, round, inter_hub_raw);
        } else {
            // Worker-sharded speculative execution. The task list is
            // generated in the sequential order (hub order, neighbor
            // order), statically sharded across workers that explore
            // against private marks, and the results are committed in
            // global task order. Candidate islands are full
            // components of the sub-threshold subgraph, so the
            // committed partition — including island ids and BFS node
            // order — is identical at every thread count; one shard
            // replays the sequential interleaving exactly.
            std::vector<std::pair<NodeId, NodeId>> tasks;
            for (NodeId hub : hub_buffer) {
                out.stats.adjListFetches++;
                for (NodeId a0 : g.neighbors(hub))
                    tasks.emplace_back(hub, a0);
            }
            const int shards =
                pool.planChunks(0, tasks.size(), kMinTasksPerShard);
            if (static_cast<size_t>(shards) > shard_ctxs.size())
                shard_ctxs.resize(static_cast<size_t>(shards));
            std::vector<TaskResult> results(tasks.size());
            pool.parallelFor(0, tasks.size(),
                             [&](int w, size_t lo, size_t hi) {
                ShardCtx &ctx = shard_ctxs[static_cast<size_t>(w)];
                if (ctx.visitedRound.size() != n) {
                    ctx.visitedRound.assign(n, 0);
                    ctx.visitedTask.assign(n, 0);
                }
                for (size_t i = lo; i < hi; ++i)
                    results[i] = runTask(g, cfg, out.role, ctx,
                                         tasks[i].first,
                                         tasks[i].second, th, round);
            }, kMinTasksPerShard);
            const bool canon_needed = shards > 1;
            if (canon_needed && canon.visitedRound.size() != n) {
                canon.visitedRound.assign(n, 0);
                canon.visitedTask.assign(n, 0);
            }
            for (size_t i = 0; i < results.size(); ++i)
                commitTask(st, canon, canon_needed, results[i],
                           tasks[i].first, tasks[i].second, th, round,
                           inter_hub_raw);
        }

        // --- End-of-round threshold decay (Algorithm 1 line 10) ----
        auto next = static_cast<NodeId>(th * cfg.decay);
        th = (next >= th) ? th - 1 : next;
        if (th < 1)
            th = 1;

        // Compact away classified nodes so the emptiness check below
        // reflects the true N.
        std::erase_if(node_list, [&](NodeId v) {
            return out.role[v] != NodeRole::Unclassified;
        });

        round_info.hubsDetected = hub_buffer.size();
        round_info.edgesScanned = out.stats.edgesScanned - edges_before;
        round_info.islandsFound =
            out.stats.islandsFound - islands_before;
        out.rounds.push_back(round_info);
    }

    // Degree-0 nodes are never anyone's neighbor and never reach the
    // hub threshold: close them out as singleton islands.
    if (!node_list.empty()) {
        round++;
        out.thresholds.push_back(0);
        RoundInfo cleanup;
        cleanup.threshold = 0;
        cleanup.nodesChecked = node_list.size();
        cleanup.islandsFound = node_list.size();
        out.rounds.push_back(cleanup);
        for (NodeId v : node_list) {
            assert(g.degree(v) == 0);
            Island island;
            island.nodes = {v};
            island.round = static_cast<int>(round);
            out.role[v] = NodeRole::IslandNode;
            out.islandOf[v] = static_cast<uint32_t>(out.islands.size());
            out.islands.push_back(std::move(island));
            out.stats.islandsFound++;
        }
    }

    std::sort(inter_hub_raw.begin(), inter_hub_raw.end());
    inter_hub_raw.erase(
        std::unique(inter_hub_raw.begin(), inter_hub_raw.end()),
        inter_hub_raw.end());
    out.interHubEdges.assign(inter_hub_raw.begin(), inter_hub_raw.end());
    out.numRounds = static_cast<int>(round);
    return out;
}

} // namespace igcn
