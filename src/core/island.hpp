/**
 * @file
 * Data model of islandization results.
 *
 * Islandization partitions the nodes of a graph into *hubs*
 * (high-degree connectors, detected with a per-round decaying degree
 * threshold) and *islands* (small clusters whose only external
 * connections go through hubs). Every edge of the graph is covered
 * exactly once by either an island's local adjacency bitmap
 * (island-island, island-hub and self connections) or the inter-hub
 * edge map — the invariant the Island Consumer relies on.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace igcn {

/** Role assigned to each node by the Island Locator. */
enum class NodeRole : uint8_t { Unclassified = 0, Hub = 1, IslandNode = 2 };

/** One island: its member nodes and the hubs that border it. */
struct Island
{
    /** Member nodes in BFS discovery order (defines local column ids). */
    std::vector<NodeId> nodes;
    /** Bordering hubs, sorted, unique. */
    std::vector<NodeId> hubs;
    /** Locator round (1-based) in which the island was found. */
    int round = 0;
    /** Adjacency-list entries scanned while discovering this island. */
    EdgeId edgesScanned = 0;
};

/** Runtime counters of the Island Locator, used by the timing model. */
struct LocatorStats
{
    uint64_t tasksGenerated = 0;
    uint64_t tasksDroppedStartVisited = 0;
    uint64_t tasksDroppedCollision = 0;
    uint64_t tasksDroppedOversize = 0;
    uint64_t tasksInterHub = 0;
    uint64_t islandsFound = 0;
    /** Nodes inspected by the hub detector, summed over rounds. */
    uint64_t hubDetectChecks = 0;
    /** Adjacency lists fetched from memory (task gen + BFS). */
    uint64_t adjListFetches = 0;
    /** Total neighbor entries scanned by all TP-BFS engines. */
    uint64_t edgesScanned = 0;
    /** Neighbor entries scanned by aborted tasks (wasted work). */
    uint64_t edgesScannedWasted = 0;
};

/** Per-round execution record (drives the locator timing model). */
struct RoundInfo
{
    NodeId threshold = 0;
    /** Nodes swept by the hub detector this round. */
    uint64_t nodesChecked = 0;
    /** Hubs detected this round. */
    uint64_t hubsDetected = 0;
    /** Adjacency entries scanned by TP-BFS this round. */
    uint64_t edgesScanned = 0;
    /** Islands found this round. */
    uint64_t islandsFound = 0;
};

/** Outcome of one TP-BFS task (trace record). */
enum class TaskOutcome : uint8_t
{
    IslandFound = 0,
    DroppedStartVisited = 1,
    DroppedCollision = 2,
    DroppedOversize = 3,
    InterHub = 4,
};

/** One task-level trace entry (recorded when cfg.recordTrace). */
struct TaskTrace
{
    uint16_t round = 0;
    TaskOutcome outcome = TaskOutcome::IslandFound;
    /** Adjacency entries this task scanned. */
    uint32_t edgesScanned = 0;
    /** Degree of the originating hub (task-generation cost). */
    uint32_t hubDegree = 0;
};

/** Full result of islandization over a graph. */
struct IslandizationResult
{
    std::vector<Island> islands;
    /** Per-round execution record. */
    std::vector<RoundInfo> rounds;
    /** Task-level trace (only populated when cfg.recordTrace). */
    std::vector<TaskTrace> taskTrace;
    /** Role per node (never Unclassified after a successful run). */
    std::vector<NodeRole> role;
    /** Island index per node; kNoIsland for hubs. */
    std::vector<uint32_t> islandOf;
    /** Detection round per hub (1-based); 0 for non-hubs. */
    std::vector<uint16_t> hubRound;
    /** Unique undirected hub-hub edges, stored with first <= second. */
    std::vector<Edge> interHubEdges;
    /** Degree threshold used in each round (index 0 = round 1). */
    std::vector<NodeId> thresholds;
    int numRounds = 0;
    LocatorStats stats;

    static constexpr uint32_t kNoIsland = ~uint32_t{0};

    /** Number of hub nodes. */
    NodeId
    numHubs() const
    {
        NodeId n = 0;
        for (NodeRole r : role)
            if (r == NodeRole::Hub)
                n++;
        return n;
    }

    /** Number of island nodes. */
    NodeId
    numIslandNodes() const
    {
        return static_cast<NodeId>(role.size()) - numHubs();
    }
};

} // namespace igcn
