/**
 * @file
 * Functional model of the Island Consumer (Section 3.3).
 *
 * Executes a GraphCONV layer at island granularity, with the same
 * arithmetic the hardware performs: PULL-based combination, per-group
 * pre-aggregation, 1 x k scan windows with per-window add/subtract
 * mode selection, hub partial-result accumulation (the DHUB-PRC), and
 * push-outer-product inter-hub tasks. The output is numerically equal
 * (up to float reassociation) to the reference forward pass — the
 * redundancy removal is lossless, which the test suite verifies.
 */

#pragma once

#include "core/locator.hpp"
#include "core/redundancy.hpp"
#include "gcn/reference.hpp"

namespace igcn {

/**
 * Compute Z = (A + I) * Y using islands, with redundancy removal.
 *
 * @param g    the graph (binary adjacency, self loops implied)
 * @param isl  islandization of g
 * @param y    dense input rows (already scaled by S in the GCN flow)
 * @param cfg  redundancy-removal configuration
 * @param stats optional accumulated op accounting
 */
DenseMatrix aggregateViaIslands(const CsrGraph &g,
                                const IslandizationResult &isl,
                                const DenseMatrix &y,
                                const RedundancyConfig &cfg,
                                AggOpStats *stats = nullptr,
                                bool include_self_loops = true);

/**
 * Full multi-layer GCN forward pass executed through the Island
 * Consumer: per layer, combination (X W), scaling, island-based
 * aggregation with redundancy removal, scaling, activation.
 */
DenseMatrix gcnForwardViaIslands(const CsrGraph &g,
                                 const IslandizationResult &isl,
                                 const Features &x,
                                 const std::vector<DenseMatrix> &weights,
                                 const RedundancyConfig &cfg,
                                 AggOpStats *stats = nullptr);

} // namespace igcn
