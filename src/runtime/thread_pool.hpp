/**
 * @file
 * Parallel execution runtime: a reusable fixed-size thread pool with
 * static range partitioning.
 *
 * Design goals (see DESIGN.md section 3):
 *
 *  - **Static partitioning.** parallelFor() splits [begin, end) into
 *    at most numThreads() contiguous chunks, one per worker, with the
 *    same split for the same (range, thread count). Kernels that keep
 *    per-worker partial results therefore see a reproducible
 *    assignment, which is what makes their reductions deterministic:
 *    merging per-worker buffers in worker-index order replays the
 *    contributions in a fixed, input-independent order.
 *
 *  - **Caller participation.** The calling thread executes chunk 0
 *    itself, so a pool of size 1 runs the loop inline with zero
 *    synchronization — the sequential path is the parallel path at
 *    one thread, not separate code.
 *
 *  - **No nesting.** parallelFor() from inside a parallelFor() body
 *    runs the whole range inline on the calling worker (worker index
 *    0, one chunk). Nested parallelism would deadlock on the pool's
 *    single job slot; kernels parallelize exactly one loop level, and
 *    a kernel invoked from inside another parallel region degrades to
 *    its sequential form instead of aborting.
 *
 *  - **Exception transparency.** The first exception thrown by any
 *    chunk (lowest worker index wins, deterministically) is rethrown
 *    to the caller after all workers finish.
 *
 * The global pool is sized from the IGCN_THREADS environment variable
 * when set (clamped to [1, 256]), else from hardware concurrency.
 * Tests and benches resize it with setGlobalThreads().
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/thread_annotations.hpp"

namespace igcn {

/**
 * Observation hooks for the pool (DESIGN.md section 8). The runtime
 * cannot depend on src/obs/, so the dependency is inverted: obs (or
 * a bench) implements this interface and installs it with
 * setPoolObserver(). With no observer installed the pool takes no
 * timestamps and pays one relaxed atomic load per parallelFor.
 *
 * onRegion fires on the calling thread after a top-level parallelFor
 * finished (label = the innermost KernelRegion active at the call,
 * else "unlabeled"). onChunk fires on each worker's own thread right
 * after its chunk body ran — implementations must be thread-safe
 * (the obs RuntimeProfiler aggregates into sharded counters).
 * Timestamps are runtimeNowUs() microseconds.
 */
class PoolObserver
{
  public:
    virtual ~PoolObserver() = default;
    /** A top-level parallelFor region completed. */
    virtual void onRegion(const char *label, int chunks,
                          uint64_t start_us, uint64_t end_us) = 0;
    /** Worker `worker` finished its chunk of the current region. */
    virtual void onChunk(const char *label, int worker,
                         uint64_t start_us, uint64_t end_us) = 0;
};

/** Install (or, with nullptr, remove) the process-wide observer.
 *  Not safe concurrently with running kernels; call between runs. */
void setPoolObserver(PoolObserver *observer);

/** The installed observer, or nullptr. */
PoolObserver *poolObserver();

/** Monotonic microseconds since a process-local origin; the time
 *  base of every PoolObserver callback. */
uint64_t runtimeNowUs();

/**
 * RAII kernel label: parallelFor regions started while this is alive
 * on the current thread are attributed to `label` in PoolObserver
 * callbacks (innermost label wins; the label must outlive the
 * region, so pass string literals). Purely observational — no effect
 * on partitioning or execution.
 */
class KernelRegion
{
  public:
    explicit KernelRegion(const char *label);
    ~KernelRegion();

    KernelRegion(const KernelRegion &) = delete;
    KernelRegion &operator=(const KernelRegion &) = delete;

  private:
    const char *prev;
};

/** The innermost active KernelRegion label, or nullptr. */
const char *currentKernelLabel();

/** Fixed-size worker pool executing statically partitioned ranges. */
class ThreadPool
{
  public:
    /** Chunk body: (worker index, chunk begin, chunk end). */
    using RangeFn = std::function<void(int, size_t, size_t)>;

    /** Spawn a pool of num_threads workers (clamped to >= 1). */
    explicit ThreadPool(int num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int numThreads() const { return numWorkers; }

    /**
     * Run fn over [begin, end) split into contiguous per-worker
     * chunks. Blocks until every chunk finished. min_per_worker caps
     * the split so tiny ranges run on fewer workers (down to inline
     * on the caller) instead of paying wake-up latency per thread.
     * Called from inside a chunk body, the whole range runs inline on
     * the caller as worker 0 (sequential fallback, no deadlock).
     *
     * @throws whatever a chunk body threw (first worker index wins).
     */
    void parallelFor(size_t begin, size_t end, const RangeFn &fn,
                     size_t min_per_worker = 1);

    /**
     * Number of chunks parallelFor would split [begin, end) into with
     * this min_per_worker: 0 for an empty range, 1 inside a parallel
     * region (the sequential fallback), else
     * min(numThreads(), ceil(n / min_per_worker)). Kernels that keep
     * per-worker accumulators size their buffer arrays with this so
     * buffer count and chunk assignment always agree.
     */
    int planChunks(size_t begin, size_t end,
                   size_t min_per_worker = 1) const;

    /** True while the current thread executes a parallelFor chunk. */
    static bool inParallelRegion();

  private:
    void workerLoop(int worker);
    void runChunk(int chunk, int num_chunks)
        IGCN_NO_THREAD_SAFETY_ANALYSIS;

    int numWorkers = 1;
    std::vector<std::thread> threads;

    // One job at a time: parallelFor holds jobMutex for its entire
    // duration, so concurrent callers from distinct external threads
    // serialize instead of corrupting the shared job slot.
    Mutex jobMutex;

    Mutex stateMutex;
    CondVar wakeCv;
    CondVar doneCv;
    uint64_t generation IGCN_GUARDED_BY(stateMutex) = 0;
    int chunksRemaining IGCN_GUARDED_BY(stateMutex) = 0;
    bool stopping IGCN_GUARDED_BY(stateMutex) = false;

    // Current job. Written under stateMutex by parallelFor before the
    // generation bump; workers' lock-free reads in runChunk are
    // ordered by the generation/chunksRemaining handshake (runChunk
    // opts out of the analysis for exactly those reads).
    const RangeFn *jobFn IGCN_GUARDED_BY(stateMutex) = nullptr;
    size_t jobBegin IGCN_GUARDED_BY(stateMutex) = 0;
    size_t jobEnd IGCN_GUARDED_BY(stateMutex) = 0;
    int jobChunks IGCN_GUARDED_BY(stateMutex) = 0;
    // Observer + label snapshot for the current job, published with
    // the job slot so workers see a consistent pair (the global
    // observer may change between jobs, never mid-job).
    PoolObserver *jobObserver IGCN_GUARDED_BY(stateMutex) = nullptr;
    const char *jobLabel IGCN_GUARDED_BY(stateMutex) = nullptr;
    std::vector<std::exception_ptr> jobErrors
        IGCN_GUARDED_BY(stateMutex);
};

/**
 * The process-wide pool used by the parallel kernels. Created on
 * first use, sized from IGCN_THREADS (else hardware concurrency).
 */
ThreadPool &globalPool();

/**
 * Resize the global pool to n workers (n < 1 restores the default
 * sizing). Not safe concurrently with running kernels; intended for
 * tests and benches between measurements.
 */
void setGlobalThreads(int n);

/** Worker count of the global pool without forcing other defaults. */
int globalThreads();

/**
 * Deterministic reduction: run body over [begin, end) with one
 * private accumulator per chunk (each copy-constructed from init) and
 * return the accumulators ordered by chunk index.
 *
 * This is the shared form of the per-worker-buffer-then-ordered-merge
 * pattern used by every parallel kernel with a scatter or reduction:
 * chunk w only ever touches accs[w], so the body runs without
 * synchronization, and because the partition is static the caller's
 * merge — folding the returned vector in index order — replays the
 * contributions in a fixed, input-independent order. At one thread
 * (or inside a nested parallel region) there is exactly one
 * accumulator filled in sequential order, so the merged result is
 * bit-identical to the sequential kernel.
 *
 * body is called as body(acc, chunk_index, chunk_begin, chunk_end).
 * Accumulators for chunks an exception skipped stay at init; the
 * exception propagates after all chunks finish.
 */
template <typename Acc, typename Body>
std::vector<Acc>
parallelAccumulate(ThreadPool &pool, size_t begin, size_t end,
                   const Acc &init, Body &&body,
                   size_t min_per_worker = 1)
{
    const int chunks = pool.planChunks(begin, end, min_per_worker);
    std::vector<Acc> accs(static_cast<size_t>(chunks), init);
    if (chunks == 0)
        return accs;
    pool.parallelFor(begin, end, [&](int w, size_t lo, size_t hi) {
        body(accs[static_cast<size_t>(w)], w, lo, hi);
    }, min_per_worker);
    return accs;
}

} // namespace igcn
