#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>

namespace igcn {

namespace {

thread_local bool t_in_parallel = false;

thread_local const char *t_kernel_label = nullptr;

std::atomic<PoolObserver *> g_observer{nullptr};

/** RAII flag so exceptions unwind the in-region marker correctly. */
struct RegionGuard
{
    RegionGuard() { t_in_parallel = true; }
    ~RegionGuard() { t_in_parallel = false; }
};

/** Chunk c of num_chunks over [begin, end): balanced, contiguous. */
std::pair<size_t, size_t>
chunkBounds(size_t begin, size_t end, int c, int num_chunks)
{
    const size_t n = end - begin;
    const size_t base = n / num_chunks;
    const size_t rem = n % num_chunks;
    const size_t uc = static_cast<size_t>(c);
    const size_t lo = begin + uc * base + std::min(uc, rem);
    const size_t hi = lo + base + (uc < rem ? 1 : 0);
    return {lo, hi};
}

} // namespace

void
setPoolObserver(PoolObserver *observer)
{
    g_observer.store(observer, std::memory_order_release);
}

PoolObserver *
poolObserver()
{
    return g_observer.load(std::memory_order_acquire);
}

uint64_t
runtimeNowUs()
{
    // Process-local origin fixed at first call so every callback
    // shares one time base regardless of which thread asked first.
    static const std::chrono::steady_clock::time_point origin =
        std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - origin)
            .count());
}

KernelRegion::KernelRegion(const char *label)
    : prev(t_kernel_label)
{
    t_kernel_label = label;
}

KernelRegion::~KernelRegion()
{
    t_kernel_label = prev;
}

const char *
currentKernelLabel()
{
    return t_kernel_label;
}

ThreadPool::ThreadPool(int num_threads)
    : numWorkers(std::max(1, num_threads))
{
    jobErrors.resize(numWorkers);
    threads.reserve(numWorkers - 1);
    // Workers 1..numWorkers-1 are real threads; the caller of
    // parallelFor acts as worker 0.
    for (int w = 1; w < numWorkers; ++w)
        threads.emplace_back(&ThreadPool::workerLoop, this, w);
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lk(stateMutex);
        stopping = true;
    }
    wakeCv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

bool
ThreadPool::inParallelRegion()
{
    return t_in_parallel;
}

// Opted out of the thread-safety analysis: the job-slot reads
// (jobBegin/jobEnd/jobFn) and the per-chunk jobErrors slot are
// race-free via the generation handshake — parallelFor publishes the
// slot under stateMutex before bumping generation, workers observe
// the new generation under stateMutex before calling in, and
// parallelFor does not reclaim the slot until chunksRemaining (also
// stateMutex-guarded) reaches zero. Taking stateMutex here instead
// would serialize every chunk body on one lock.
void
ThreadPool::runChunk(int chunk, int num_chunks)
{
    if (chunk < num_chunks) {
        auto [lo, hi] = chunkBounds(jobBegin, jobEnd, chunk, num_chunks);
        if (lo < hi) {
            RegionGuard guard;
            PoolObserver *obs = jobObserver;
            const uint64_t t0 = obs ? runtimeNowUs() : 0;
            try {
                (*jobFn)(chunk, lo, hi);
            } catch (...) {
                jobErrors[chunk] = std::current_exception();
            }
            // Reported even when the body threw: the worker was busy
            // either way, and utilization should not lie about it.
            if (obs)
                obs->onChunk(jobLabel, chunk, t0, runtimeNowUs());
        }
    }
}

void
ThreadPool::workerLoop(int worker)
{
    uint64_t seen = 0;
    for (;;) {
        int chunks;
        {
            MutexLock lk(stateMutex);
            while (!stopping && generation == seen)
                wakeCv.wait(stateMutex);
            if (stopping)
                return;
            seen = generation;
            chunks = jobChunks;
        }
        runChunk(worker, chunks);
        {
            MutexLock lk(stateMutex);
            if (--chunksRemaining == 0)
                doneCv.notify_all();
        }
    }
}

int
ThreadPool::planChunks(size_t begin, size_t end,
                       size_t min_per_worker) const
{
    if (begin >= end)
        return 0;
    // Inside a chunk body the pool's single job slot is occupied:
    // a nested parallelFor runs inline as one sequential chunk.
    if (t_in_parallel)
        return 1;
    const size_t n = end - begin;
    const size_t grain = std::max<size_t>(1, min_per_worker);
    return static_cast<int>(std::min<size_t>(
        static_cast<size_t>(numWorkers), (n + grain - 1) / grain));
}

void
ThreadPool::parallelFor(size_t begin, size_t end, const RangeFn &fn,
                        size_t min_per_worker)
{
    if (begin >= end)
        return;
    if (t_in_parallel) {
        // Sequential fallback for nested calls: the caller is already
        // a worker, so run the whole range inline as worker 0. The
        // in-region flag is already set; no guard needed.
        fn(0, begin, end);
        return;
    }

    const int chunks = planChunks(begin, end, min_per_worker);

    // One observer snapshot per region so start/end land on the same
    // implementation even if setPoolObserver races between jobs.
    PoolObserver *obs = poolObserver();
    const char *label = t_kernel_label ? t_kernel_label : "unlabeled";
    const uint64_t region_t0 = obs ? runtimeNowUs() : 0;

    if (chunks == 1 || numWorkers == 1) {
        {
            RegionGuard guard;
            fn(0, begin, end);
        }
        if (obs) {
            const uint64_t t1 = runtimeNowUs();
            obs->onChunk(label, 0, region_t0, t1);
            obs->onRegion(label, 1, region_t0, t1);
        }
        return;
    }

    MutexLock job(jobMutex);
    {
        MutexLock lk(stateMutex);
        jobFn = &fn;
        jobBegin = begin;
        jobEnd = end;
        jobChunks = chunks;
        jobObserver = obs;
        jobLabel = label;
        std::fill(jobErrors.begin(), jobErrors.end(), nullptr);
        // All workers wake and re-park if their chunk id is out of
        // range; completion counts every worker so the job slot is
        // provably idle once doneCv fires.
        chunksRemaining = numWorkers - 1;
        generation++;
    }
    wakeCv.notify_all();

    runChunk(0, chunks); // caller is worker 0

    // Deterministic error selection: lowest worker index wins.
    std::exception_ptr first_error;
    {
        MutexLock lk(stateMutex);
        while (chunksRemaining != 0)
            doneCv.wait(stateMutex);
        jobFn = nullptr;
        jobObserver = nullptr;
        for (int w = 0; w < numWorkers; ++w) {
            if (jobErrors[w]) {
                first_error = jobErrors[w];
                break;
            }
        }
    }
    if (obs)
        obs->onRegion(label, chunks, region_t0, runtimeNowUs());
    if (first_error)
        std::rethrow_exception(first_error);
}

namespace {

int
defaultThreadCount()
{
    if (const char *env = std::getenv("IGCN_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        // A numeric value is clamped to [1, 256]; non-numeric input
        // falls through to the hardware default.
        if (end != env)
            return static_cast<int>(std::clamp<long>(v, 1, 256));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

std::unique_ptr<ThreadPool> g_pool;
std::mutex g_pool_mutex;

} // namespace

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lk(g_pool_mutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(defaultThreadCount());
    return *g_pool;
}

void
setGlobalThreads(int n)
{
    std::lock_guard<std::mutex> lk(g_pool_mutex);
    g_pool = std::make_unique<ThreadPool>(
        n >= 1 ? n : defaultThreadCount());
}

int
globalThreads()
{
    return globalPool().numThreads();
}

} // namespace igcn
