#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace igcn {

namespace {

thread_local bool t_in_parallel = false;

/** RAII flag so exceptions unwind the in-region marker correctly. */
struct RegionGuard
{
    RegionGuard() { t_in_parallel = true; }
    ~RegionGuard() { t_in_parallel = false; }
};

/** Chunk c of num_chunks over [begin, end): balanced, contiguous. */
std::pair<size_t, size_t>
chunkBounds(size_t begin, size_t end, int c, int num_chunks)
{
    const size_t n = end - begin;
    const size_t base = n / num_chunks;
    const size_t rem = n % num_chunks;
    const size_t uc = static_cast<size_t>(c);
    const size_t lo = begin + uc * base + std::min(uc, rem);
    const size_t hi = lo + base + (uc < rem ? 1 : 0);
    return {lo, hi};
}

} // namespace

ThreadPool::ThreadPool(int num_threads)
    : numWorkers(std::max(1, num_threads))
{
    jobErrors.resize(numWorkers);
    threads.reserve(numWorkers - 1);
    // Workers 1..numWorkers-1 are real threads; the caller of
    // parallelFor acts as worker 0.
    for (int w = 1; w < numWorkers; ++w)
        threads.emplace_back(&ThreadPool::workerLoop, this, w);
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lk(stateMutex);
        stopping = true;
    }
    wakeCv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

bool
ThreadPool::inParallelRegion()
{
    return t_in_parallel;
}

// Opted out of the thread-safety analysis: the job-slot reads
// (jobBegin/jobEnd/jobFn) and the per-chunk jobErrors slot are
// race-free via the generation handshake — parallelFor publishes the
// slot under stateMutex before bumping generation, workers observe
// the new generation under stateMutex before calling in, and
// parallelFor does not reclaim the slot until chunksRemaining (also
// stateMutex-guarded) reaches zero. Taking stateMutex here instead
// would serialize every chunk body on one lock.
void
ThreadPool::runChunk(int chunk, int num_chunks)
{
    if (chunk < num_chunks) {
        auto [lo, hi] = chunkBounds(jobBegin, jobEnd, chunk, num_chunks);
        if (lo < hi) {
            RegionGuard guard;
            try {
                (*jobFn)(chunk, lo, hi);
            } catch (...) {
                jobErrors[chunk] = std::current_exception();
            }
        }
    }
}

void
ThreadPool::workerLoop(int worker)
{
    uint64_t seen = 0;
    for (;;) {
        int chunks;
        {
            MutexLock lk(stateMutex);
            while (!stopping && generation == seen)
                wakeCv.wait(stateMutex);
            if (stopping)
                return;
            seen = generation;
            chunks = jobChunks;
        }
        runChunk(worker, chunks);
        {
            MutexLock lk(stateMutex);
            if (--chunksRemaining == 0)
                doneCv.notify_all();
        }
    }
}

int
ThreadPool::planChunks(size_t begin, size_t end,
                       size_t min_per_worker) const
{
    if (begin >= end)
        return 0;
    // Inside a chunk body the pool's single job slot is occupied:
    // a nested parallelFor runs inline as one sequential chunk.
    if (t_in_parallel)
        return 1;
    const size_t n = end - begin;
    const size_t grain = std::max<size_t>(1, min_per_worker);
    return static_cast<int>(std::min<size_t>(
        static_cast<size_t>(numWorkers), (n + grain - 1) / grain));
}

void
ThreadPool::parallelFor(size_t begin, size_t end, const RangeFn &fn,
                        size_t min_per_worker)
{
    if (begin >= end)
        return;
    if (t_in_parallel) {
        // Sequential fallback for nested calls: the caller is already
        // a worker, so run the whole range inline as worker 0. The
        // in-region flag is already set; no guard needed.
        fn(0, begin, end);
        return;
    }

    const int chunks = planChunks(begin, end, min_per_worker);

    if (chunks == 1 || numWorkers == 1) {
        RegionGuard guard;
        fn(0, begin, end);
        return;
    }

    MutexLock job(jobMutex);
    {
        MutexLock lk(stateMutex);
        jobFn = &fn;
        jobBegin = begin;
        jobEnd = end;
        jobChunks = chunks;
        std::fill(jobErrors.begin(), jobErrors.end(), nullptr);
        // All workers wake and re-park if their chunk id is out of
        // range; completion counts every worker so the job slot is
        // provably idle once doneCv fires.
        chunksRemaining = numWorkers - 1;
        generation++;
    }
    wakeCv.notify_all();

    runChunk(0, chunks); // caller is worker 0

    // Deterministic error selection: lowest worker index wins.
    std::exception_ptr first_error;
    {
        MutexLock lk(stateMutex);
        while (chunksRemaining != 0)
            doneCv.wait(stateMutex);
        jobFn = nullptr;
        for (int w = 0; w < numWorkers; ++w) {
            if (jobErrors[w]) {
                first_error = jobErrors[w];
                break;
            }
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

namespace {

int
defaultThreadCount()
{
    if (const char *env = std::getenv("IGCN_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        // A numeric value is clamped to [1, 256]; non-numeric input
        // falls through to the hardware default.
        if (end != env)
            return static_cast<int>(std::clamp<long>(v, 1, 256));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

std::unique_ptr<ThreadPool> g_pool;
std::mutex g_pool_mutex;

} // namespace

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lk(g_pool_mutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(defaultThreadCount());
    return *g_pool;
}

void
setGlobalThreads(int n)
{
    std::lock_guard<std::mutex> lk(g_pool_mutex);
    g_pool = std::make_unique<ThreadPool>(
        n >= 1 ? n : defaultThreadCount());
}

int
globalThreads()
{
    return globalPool().numThreads();
}

} // namespace igcn
