/**
 * @file
 * Clang thread-safety annotations for the determinism contract's
 * static wall (DESIGN.md section 7).
 *
 * The serving subsystem's concurrency story is small and explicit:
 * every piece of shared mutable state is either (a) published through
 * the GraphStateHub as an immutable epoch, (b) guarded by exactly one
 * mutex, or (c) an atomic. Clang's `-Wthread-safety` analysis can
 * machine-check (b) — a member annotated IGCN_GUARDED_BY(mu) cannot
 * be read or written on a path that does not hold mu — but only if
 * the lock type itself carries capability annotations, which
 * libstdc++'s std::mutex does not. So this header provides both:
 *
 *  - the IGCN_* attribute macros (no-ops on non-clang compilers and
 *    on clang without the attributes), and
 *  - igcn::Mutex / igcn::MutexLock / igcn::CondVar — thin annotated
 *    wrappers over std::mutex / lock_guard / condition_variable that
 *    make acquisition visible to the analysis. They add no state and
 *    no behavior; MutexLock is exactly lock_guard with a visible
 *    capability, and CondVar::wait* run on the wrapped native mutex
 *    via adopt-and-release so the wait semantics are untouched.
 *
 * Convention (enforced by the CI `thread-safety` job building with
 * clang -Wthread-safety -Werror): mutex-protected members are
 * declared IGCN_GUARDED_BY(theirMutex); functions that must be
 * called with a lock held are IGCN_REQUIRES(mu); functions that
 * would self-deadlock if called with the lock held are
 * IGCN_EXCLUDES(mu). The few places the analysis cannot follow
 * (multi-mutex std::scoped_lock ordering in LazyAdjunct::stealFrom)
 * are opted out explicitly with IGCN_NO_THREAD_SAFETY_ANALYSIS and a
 * comment giving the manual argument.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define IGCN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IGCN_THREAD_ANNOTATION(x) // no-op outside clang
#endif

#define IGCN_CAPABILITY(x) IGCN_THREAD_ANNOTATION(capability(x))
#define IGCN_SCOPED_CAPABILITY IGCN_THREAD_ANNOTATION(scoped_lockable)
#define IGCN_GUARDED_BY(x) IGCN_THREAD_ANNOTATION(guarded_by(x))
#define IGCN_PT_GUARDED_BY(x) IGCN_THREAD_ANNOTATION(pt_guarded_by(x))
#define IGCN_REQUIRES(...) \
    IGCN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define IGCN_ACQUIRE(...) \
    IGCN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IGCN_RELEASE(...) \
    IGCN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define IGCN_TRY_ACQUIRE(...) \
    IGCN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define IGCN_EXCLUDES(...) \
    IGCN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define IGCN_RETURN_CAPABILITY(x) \
    IGCN_THREAD_ANNOTATION(lock_returned(x))
#define IGCN_NO_THREAD_SAFETY_ANALYSIS \
    IGCN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace igcn {

/**
 * std::mutex with a visible capability. Drop-in: same lock/unlock/
 * try_lock surface (usable with std::scoped_lock), plus native() for
 * the rare callers that must hand the raw mutex to a std library
 * facility (CondVar does this internally).
 */
class IGCN_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() IGCN_ACQUIRE() { m.lock(); }
    void unlock() IGCN_RELEASE() { m.unlock(); }
    bool try_lock() IGCN_TRY_ACQUIRE(true) { return m.try_lock(); }

    /** The wrapped std::mutex (for std facilities needing one). */
    std::mutex &native() { return m; }

  private:
    std::mutex m;
};

/** RAII lock (std::lock_guard with a visible scoped capability). */
class IGCN_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) IGCN_ACQUIRE(mu) : mu(mu)
    {
        mu.lock();
    }
    ~MutexLock() IGCN_RELEASE() { mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu;
};

/**
 * Condition variable usable with igcn::Mutex under the analysis: the
 * caller holds mu (IGCN_REQUIRES), the wait adopts the already-held
 * native mutex into a unique_lock for the duration of the underlying
 * std wait (which unlocks and relocks it), then releases the
 * unique_lock so ownership stays with the caller's MutexLock. The
 * capability is held on entry and on exit, which is all the analysis
 * tracks; the momentary release inside the std wait is the standard
 * condition-variable contract.
 */
class CondVar
{
  public:
    void notify_one() noexcept { cv.notify_one(); }
    void notify_all() noexcept { cv.notify_all(); }

    /** One wakeup; callers loop on their (guarded) predicate. */
    void
    wait(Mutex &mu) IGCN_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
        const Releaser rel{lk};
        cv.wait(lk);
    }

    template <typename Rep, typename Period>
    std::cv_status
    wait_for(Mutex &mu,
             const std::chrono::duration<Rep, Period> &dur)
        IGCN_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
        const Releaser rel{lk};
        return cv.wait_for(lk, dur);
    }

  private:
    // The std wait reacquires the mutex before returning *or*
    // throwing, so the adopted unique_lock must be release()d on
    // every exit path — if it ever unlocked in its destructor, the
    // caller's MutexLock would unlock the same std::mutex a second
    // time (undefined behavior).
    struct Releaser
    {
        std::unique_lock<std::mutex> &lk;
        ~Releaser() { lk.release(); }
    };

    std::condition_variable cv;
};

} // namespace igcn
