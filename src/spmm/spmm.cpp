#include "spmm/spmm.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace igcn {

CsrMatrix
CsrMatrix::fromGraph(const CsrGraph &g)
{
    CsrMatrix m;
    m.numRows = g.numNodes();
    m.numCols = g.numNodes();
    m.rowPtr = g.rows();
    m.colIdx = g.cols();
    m.values.assign(m.colIdx.size(), 1.0f);
    return m;
}

DenseMatrix
CsrMatrix::toDense() const
{
    DenseMatrix d(numRows, numCols);
    for (NodeId r = 0; r < numRows; ++r)
        for (EdgeId e = rowPtr[r]; e < rowPtr[r + 1]; ++e)
            d.at(r, colIdx[e]) += values[e];
    return d;
}

namespace {

void
checkShapes(const CsrMatrix &a, const DenseMatrix &b)
{
    if (a.numCols != b.rows())
        throw std::invalid_argument("SpMM shape mismatch");
}

} // namespace

DenseMatrix
spmmPullRowWise(const CsrMatrix &a, const DenseMatrix &b,
                SpmmCounters *counters)
{
    checkShapes(a, b);
    const size_t channels = b.cols();
    DenseMatrix c(a.numRows, channels);

    // Rows of C are independent: shard the row range across workers.
    // Channels are additionally tiled so each irregularly-fetched B
    // row contributes only a kChannelTile-float slice per pass — far
    // more distinct B rows stay resident in L1/L2 across the edges of
    // a row block. Per output element the edge accumulation order is
    // unchanged, so the result is bit-identical at any thread count.
    constexpr size_t kChannelTile = 64;
    globalPool().parallelFor(0, a.numRows,
                             [&](int, size_t r0, size_t r1) {
        for (size_t ch0 = 0; ch0 < channels; ch0 += kChannelTile) {
            const size_t ch1 = std::min(channels, ch0 + kChannelTile);
            for (size_t i = r0; i < r1; ++i) {
                float *crow = c.row(i);
                for (EdgeId e = a.rowPtr[i]; e < a.rowPtr[i + 1]; ++e) {
                    const float aval = a.values[e];
                    const float *brow = b.row(a.colIdx[e]);
                    for (size_t ch = ch0; ch < ch1; ++ch)
                        crow[ch] += aval * brow[ch];
                }
            }
        }
    }, /*min_per_worker=*/16);

    // Counters model the dataflow's access profile (Table 1), which
    // software tiling does not change: each non-zero of A is one A
    // read, pulls one full B row irregularly, and every output
    // element is written streamed once.
    if (counters) {
        SpmmCounters cnt;
        cnt.aReads = a.nnz();
        cnt.bIrregularReads = a.nnz() * channels;
        cnt.macOps = a.nnz() * channels;
        cnt.cStreamedWrites =
            static_cast<uint64_t>(a.numRows) * channels;
        *counters += cnt;
    }
    return c;
}

DenseMatrix
spmmPullInnerProduct(const CsrMatrix &a, const DenseMatrix &b,
                     SpmmCounters *counters)
{
    checkShapes(a, b);
    const size_t channels = b.cols();
    DenseMatrix c(a.numRows, channels);

    // Every output element is an independent inner product: shard the
    // row range across workers. Each element accumulates its row's
    // edges in ascending order regardless of the split, so the result
    // is bit-identical at any thread count.
    globalPool().parallelFor(0, a.numRows,
                             [&](int, size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
            for (size_t ch = 0; ch < channels; ++ch) {
                float acc = 0.0f;
                for (EdgeId e = a.rowPtr[i]; e < a.rowPtr[i + 1]; ++e)
                    acc += a.values[e] * b.at(a.colIdx[e], ch);
                c.at(i, ch) = acc;
            }
        }
    }, /*min_per_worker=*/16);

    // Dataflow profile (Table 1): the per-channel loop re-reads each
    // non-zero of A every channel and pulls single B-column elements
    // irregularly; outputs are produced streamed one element at a
    // time. Arithmetic, so exact at every thread count.
    if (counters) {
        SpmmCounters cnt;
        cnt.aReads = a.nnz() * channels;
        cnt.bIrregularReads = a.nnz() * channels;
        cnt.macOps = a.nnz() * channels;
        cnt.cStreamedWrites =
            static_cast<uint64_t>(a.numRows) * channels;
        *counters += cnt;
    }
    return c;
}

DenseMatrix
spmmPushColumnWise(const CsrMatrix &a, const DenseMatrix &b,
                   SpmmCounters *counters)
{
    checkShapes(a, b);
    const size_t channels = b.cols();
    DenseMatrix c(a.numRows, channels);

    // Outer loop over channels: each pass broadcasts one feature
    // channel of every node to its neighbors. We iterate the non-zeros
    // of A by row here, but A(i, k) consumes B(k, ch) and produces
    // C(i, ch); per channel, B is read streamed and C is written into
    // a column buffer (streamed if it fits on chip). Channels are
    // independent — workers own disjoint channel ranges, i.e. disjoint
    // columns of C, so each element keeps its sequential edge
    // accumulation order and the result is bit-identical at any
    // thread count.
    globalPool().parallelFor(0, channels,
                             [&](int, size_t ch0, size_t ch1) {
        for (size_t ch = ch0; ch < ch1; ++ch) {
            for (NodeId i = 0; i < a.numRows; ++i) {
                for (EdgeId e = a.rowPtr[i]; e < a.rowPtr[i + 1]; ++e)
                    c.at(i, ch) += a.values[e] * b.at(a.colIdx[e], ch);
            }
        }
    });

    // Per channel: every non-zero of A is re-read, consumes one
    // streamed element of B's channel column and read-modify-writes
    // one C element selected by the non-zero's row id.
    if (counters) {
        SpmmCounters cnt;
        cnt.aReads = a.nnz() * channels;
        cnt.bStreamedReads = a.nnz() * channels;
        cnt.macOps = a.nnz() * channels;
        cnt.cIrregularWrites = a.nnz() * channels;
        *counters += cnt;
    }
    return c;
}

DenseMatrix
spmmPushOuterProduct(const CsrMatrix &a, const DenseMatrix &b,
                     SpmmCounters *counters)
{
    checkShapes(a, b);
    const size_t channels = b.cols();
    // Process non-zeros of A by column k: node k broadcasts its whole
    // feature row to all nodes i with A(i, k) != 0. We emulate the
    // column order via a CSC-style traversal built on the fly.
    std::vector<EdgeId> col_count(a.numCols + 1, 0);
    for (NodeId v : a.colIdx)
        col_count[v + 1]++;
    for (NodeId k = 0; k < a.numCols; ++k)
        col_count[k + 1] += col_count[k];
    std::vector<NodeId> row_of(a.nnz());
    std::vector<float> val_of(a.nnz());
    {
        std::vector<EdgeId> cursor(col_count.begin(), col_count.end() - 1);
        for (NodeId i = 0; i < a.numRows; ++i) {
            for (EdgeId e = a.rowPtr[i]; e < a.rowPtr[i + 1]; ++e) {
                EdgeId slot = cursor[a.colIdx[e]]++;
                row_of[slot] = i;
                val_of[slot] = a.values[e];
            }
        }
    }

    // The scatter to c.row(row_of[e]) races under column sharding, so
    // each worker accumulates a private output buffer over its column
    // range and the buffers are merged in worker-index order
    // (deterministic at any fixed thread count; one buffer — and
    // therefore the sequential scatter order — at one thread). The
    // column grain caps the split at 8 buffers so speculation memory
    // stays bounded on many-core hosts.
    const size_t col_grain = std::max<size_t>(
        64, (static_cast<size_t>(a.numCols) + 7) / 8);
    ThreadPool &pool = globalPool();
    std::vector<DenseMatrix> bufs = parallelAccumulate(
        pool, 0, a.numCols, DenseMatrix(a.numRows, channels),
        [&](DenseMatrix &part, int, size_t k0, size_t k1) {
            for (size_t k = k0; k < k1; ++k) {
                const float *brow = b.row(k);
                for (EdgeId e = col_count[k]; e < col_count[k + 1];
                     ++e) {
                    float *crow = part.row(row_of[e]);
                    for (size_t ch = 0; ch < channels; ++ch)
                        crow[ch] += val_of[e] * brow[ch];
                }
            }
        }, col_grain);
    DenseMatrix c = bufs.empty() ? DenseMatrix(a.numRows, channels)
                                 : reduceWorkerBuffers(std::move(bufs));

    // Per column: one streamed read of the full B row (empty columns
    // included, as the hardware prefetches the broadcast row before
    // consulting the column's non-zeros); per non-zero: one A read
    // and a full-row irregular read-modify-write of Xo.
    if (counters) {
        SpmmCounters cnt;
        cnt.bStreamedReads =
            static_cast<uint64_t>(a.numCols) * channels;
        cnt.aReads = a.nnz();
        cnt.macOps = a.nnz() * channels;
        cnt.cIrregularWrites = a.nnz() * channels;
        *counters += cnt;
    }
    return c;
}

DenseMatrix
csrTimesDense(const CsrMatrix &x, const DenseMatrix &w,
              SpmmCounters *counters)
{
    return spmmPullRowWise(x, w, counters);
}

DenseMatrix
csrTransposeTimesDense(const CsrMatrix &x, const DenseMatrix &b)
{
    if (x.numRows != b.rows())
        throw std::invalid_argument(
            "shape mismatch in csrTransposeTimesDense");
    const size_t channels = b.cols();

    // C(colIdx[e], :) += values[e] * B(r, :) is a scatter over the
    // transposed row id: same per-worker-buffer-then-ordered-merge
    // treatment as spmmPushOuterProduct, sharded over the rows of X.
    // One buffer at one thread keeps the sequential scatter order
    // bit-for-bit; the row grain caps speculation at 8 buffers.
    const size_t row_grain = std::max<size_t>(
        64, (static_cast<size_t>(x.numRows) + 7) / 8);
    ThreadPool &pool = globalPool();
    std::vector<DenseMatrix> bufs = parallelAccumulate(
        pool, 0, x.numRows, DenseMatrix(x.numCols, channels),
        [&](DenseMatrix &part, int, size_t r0, size_t r1) {
            for (size_t r = r0; r < r1; ++r) {
                const float *brow = b.row(r);
                for (EdgeId e = x.rowPtr[r]; e < x.rowPtr[r + 1];
                     ++e) {
                    float *crow = part.row(x.colIdx[e]);
                    const float v = x.values[e];
                    for (size_t ch = 0; ch < channels; ++ch)
                        crow[ch] += v * brow[ch];
                }
            }
        }, row_grain);
    return bufs.empty() ? DenseMatrix(x.numCols, channels)
                        : reduceWorkerBuffers(std::move(bufs));
}

CsrMatrix
denseToCsr(const DenseMatrix &m)
{
    CsrMatrix out;
    out.numRows = static_cast<NodeId>(m.rows());
    out.numCols = static_cast<NodeId>(m.cols());
    out.rowPtr.assign(m.rows() + 1, 0);
    const size_t nnz = m.countNonZeros();
    out.colIdx.reserve(nnz);
    out.values.reserve(nnz);
    for (size_t r = 0; r < m.rows(); ++r) {
        for (size_t c = 0; c < m.cols(); ++c) {
            if (m.at(r, c) != 0.0f) {
                out.colIdx.push_back(static_cast<NodeId>(c));
                out.values.push_back(m.at(r, c));
            }
        }
        out.rowPtr[r + 1] = out.colIdx.size();
    }
    return out;
}

} // namespace igcn
